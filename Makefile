# Build/verify entry points. `make verify` is the pre-commit gate: build,
# vet, formatting, the full test suite, and a -race pass over the packages
# with concurrent hot paths (the obs registry, the instrumented server, and
# the parallel rollout engine in core/rl/sim), which is exactly where data
# races would hide. The rollout packages run with -short so the race pass
# stays fast; the long learning test is covered by the plain `test` target.

GO ?= go

.PHONY: all build vet fmt-check test test-short race bench bench-env equiv verify

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; fail if it prints anything.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/obs/ ./internal/serve/
	$(GO) test -race -short ./internal/core/ ./internal/rl/ ./internal/sim/

bench: bench-env
	$(GO) test -bench=. -benchmem .

# bench-env runs the Env-core benchmarks (steppable simulator vs the
# preserved seed engine) and archives the parsed results in BENCH_env.json.
bench-env:
	$(GO) test -run '^$$' -bench 'EnvInspected|LegacyInspected' -benchmem ./internal/sim/ \
		| $(GO) run ./cmd/benchjson -o BENCH_env.json
	$(GO) test -run '^$$' -bench 'BenchmarkEnvStep$$' -benchmem .

# equiv runs the golden equivalence suites that pin the Env/wave engines to
# the verbatim seed implementations, bit for bit, under the race detector.
equiv:
	$(GO) test -race -run 'Equiv' -count=1 ./internal/sim/ ./internal/core/

verify: build vet fmt-check race test
