# Build/verify entry points. `make verify` is the pre-commit gate: build,
# vet, formatting, the full test suite, and a -race pass over the packages
# with concurrent hot paths (the obs registry, the instrumented server, and
# the parallel rollout engine in core/rl/sim), which is exactly where data
# races would hide. The rollout packages run with -short so the race pass
# stays fast; the long learning test is covered by the plain `test` target.

GO ?= go
FUZZTIME ?= 30s

# Build identity stamped into the binaries (schedinspect version, the
# build_info metric on /metrics). git describe when available, "dev" in
# tarball builds.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -ldflags '-X schedinspector/internal/version.Version=$(VERSION)'

.PHONY: all build bin vet fmt-check test test-short race bench bench-env bench-check bench-serve bench-serve-check bench-fleet bench-fleet-check equiv fuzz-smoke trace-smoke dist-smoke loop-smoke fleet-smoke verify

all: build

build:
	$(GO) build ./...

# bin builds the version-stamped command binaries into ./bin/.
bin:
	$(GO) build $(LDFLAGS) -o bin/ ./cmd/...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; fail if it prints anything.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/obs/ ./internal/serve/ ./internal/rollout/ ./internal/ckpt/ ./internal/explain/ ./internal/dist/ ./internal/online/ ./internal/fleet/
	$(GO) test -race -short ./internal/core/ ./internal/rl/ ./internal/sim/

bench: bench-env
	$(GO) test -bench=. -benchmem .

# bench-env runs the Env-core benchmarks (steppable simulator vs the
# preserved seed engine) and archives the parsed results in BENCH_env.json.
bench-env:
	$(GO) test -run '^$$' -bench 'EnvInspected|LegacyInspected' -benchmem ./internal/sim/ \
		| $(GO) run ./cmd/benchjson -o BENCH_env.json
	$(GO) test -run '^$$' -bench 'BenchmarkEnvStep$$' -benchmem .

# bench-check reruns the Env benchmarks and gates them against the
# committed BENCH_env.json: fail on a >25% ns/op regression or on any new
# allocation in a benchmark the baseline records as allocation-free.
bench-check:
	$(GO) test -run '^$$' -bench 'EnvInspected|LegacyInspected' -benchmem ./internal/sim/ \
		| $(GO) run ./cmd/benchjson -check BENCH_env.json -tolerance 0.25

# bench-serve runs the serving-throughput benchmarks (decision-wave path
# vs the mutex-per-request baseline at 1/64/512 concurrent clients) and
# archives the parsed results — decisions/s, p99 latency, ns/op — in
# BENCH_serve.json.
bench-serve:
	$(GO) test -run '^$$' -bench 'InspectWave|InspectMutex' -benchmem ./internal/serve/ \
		| $(GO) run ./cmd/benchjson -o BENCH_serve.json

# bench-serve-check reruns the serving benchmarks against the committed
# BENCH_serve.json baseline (advisory in CI: serving throughput is noisy on
# shared runners, so regressions warn rather than gate).
bench-serve-check:
	$(GO) test -run '^$$' -bench 'InspectWave|InspectMutex' -benchmem ./internal/serve/ \
		| $(GO) run ./cmd/benchjson -check BENCH_serve.json -tolerance 0.25

# bench-fleet runs the fleet-plane benchmarks (exposition parse, full
# HTTP scrape, /v1/fleet aggregation) and archives the parsed results in
# BENCH_fleet.json.
bench-fleet:
	$(GO) test -run '^$$' -bench 'Fleet' -benchmem ./internal/fleet/ \
		| $(GO) run ./cmd/benchjson -o BENCH_fleet.json

# bench-fleet-check reruns the fleet benchmarks against the committed
# BENCH_fleet.json baseline (advisory in CI, same as bench-serve-check).
bench-fleet-check:
	$(GO) test -run '^$$' -bench 'Fleet' -benchmem ./internal/fleet/ \
		| $(GO) run ./cmd/benchjson -check BENCH_fleet.json -tolerance 0.25

# equiv runs the golden equivalence suites that pin the Env/wave engines to
# the verbatim seed implementations — the batched serving path to the
# scalar Explain kernel — and the distributed engine's replicas to the
# single-process trainer — bit for bit, under the race detector.
equiv:
	$(GO) test -race -run 'Equiv' -count=1 ./internal/sim/ ./internal/core/ ./internal/serve/ ./internal/dist/

# trace-smoke exercises the decision flight recorder end to end at smoke
# scale, on both recording paths: a tiny training run records a JSONL
# flight trace and every explain query plus the expreport reject plot must
# run clean over it; then the same run records a binary .ftrace, which must
# be queryable natively, convertible to JSONL offline, and queryable again
# through the converted file.
trace-smoke:
	@tmp=$$(mktemp -d) && \
	$(GO) run $(LDFLAGS) ./cmd/schedinspect train -trace SDSC-SP2 -jobs 2000 \
		-epochs 1 -batch 4 -seqlen 64 -seed 42 \
		-flight $$tmp/flight.jsonl -model $$tmp/model.gob && \
	$(GO) run ./cmd/schedinspect explain -in $$tmp/flight.jsonl && \
	$(GO) run ./cmd/schedinspect explain -in $$tmp/flight.jsonl -feature-stats && \
	$(GO) run ./cmd/schedinspect explain -in $$tmp/flight.jsonl -top-rejected 5 && \
	$(GO) run ./cmd/expreport -rejects $$tmp/flight.jsonl && \
	$(GO) run $(LDFLAGS) ./cmd/schedinspect train -trace SDSC-SP2 -jobs 2000 \
		-epochs 1 -batch 4 -seqlen 64 -seed 42 \
		-flight $$tmp/flight.ftrace -model $$tmp/model2.gob && \
	$(GO) run ./cmd/schedinspect explain -in $$tmp/flight.ftrace && \
	$(GO) run ./cmd/schedinspect explain -in $$tmp/flight.ftrace -feature-stats && \
	$(GO) run ./cmd/schedinspect explain -in $$tmp/flight.ftrace -convert $$tmp/converted.jsonl && \
	$(GO) run ./cmd/schedinspect explain -in $$tmp/converted.jsonl -feature-stats && \
	rm -rf $$tmp

# dist-smoke proves the distributed engine end to end at the process
# level: a single-process train and a 2-worker train-worker fleet over
# unix sockets, same seed and config, must write byte-identical model
# files — and every worker rank must agree. cmp is the whole oracle.
dist-smoke: bin
	@set -e; tmp=$$(mktemp -d); \
	./bin/schedinspect train -trace SDSC-SP2 -jobs 2000 \
		-epochs 2 -batch 4 -seqlen 64 -seed 42 -model $$tmp/single.gob; \
	( ./bin/schedinspect train-worker -trace SDSC-SP2 -jobs 2000 \
		-epochs 2 -batch 4 -seqlen 64 -seed 42 \
		-world 2 -rank 1 -peers $$tmp/w0.sock,$$tmp/w1.sock \
		-model $$tmp/rank1.gob ) & worker=$$!; \
	./bin/schedinspect train-worker -trace SDSC-SP2 -jobs 2000 \
		-epochs 2 -batch 4 -seqlen 64 -seed 42 \
		-world 2 -rank 0 -peers $$tmp/w0.sock,$$tmp/w1.sock \
		-model $$tmp/rank0.gob; \
	wait $$worker; \
	cmp $$tmp/single.gob $$tmp/rank0.gob; \
	cmp $$tmp/single.gob $$tmp/rank1.gob; \
	echo "dist-smoke: 2-worker model bytes identical to single-process"; \
	rm -rf $$tmp

# loop-smoke proves the online continual-learning loop end to end at the
# process level: train a tiny model, serve it with inspectord -online on a
# sub-second cycle, drive synthetic /v1/inspect traffic through it, and
# require the loop to tail the decisions, retrain a candidate, shadow-
# evaluate it, and reach a clean promote-or-reject verdict — with serving
# uninterrupted throughout and the generation gauge consistent between
# /metrics and /v1/online/status (cmd/loopsmoke holds the assertions).
# SMOKEDIR overrides the scratch dir so CI can upload the flight trace and
# final status JSON as failure artifacts; set KEEP_SMOKEDIR=1 to skip the
# cleanup.
LOOPSMOKE_ADDR ?= 127.0.0.1:18642
loop-smoke: bin
	@set -e; dir="$(SMOKEDIR)"; [ -n "$$dir" ] || dir=$$(mktemp -d); mkdir -p "$$dir"; \
	./bin/schedinspect train -trace SDSC-SP2 -jobs 2000 \
		-epochs 1 -batch 4 -seqlen 64 -seed 42 -model $$dir/model.gob; \
	./bin/inspectord -model $$dir/model.gob -addr $(LOOPSMOKE_ADDR) -seed 7 \
		-online -online-interval 500ms -online-min-window 256 \
		-online-dir $$dir/promoted -flight $$dir/serve.ftrace \
		>$$dir/inspectord.log 2>&1 & daemon=$$!; \
	trap 'kill $$daemon 2>/dev/null; wait $$daemon 2>/dev/null' EXIT; \
	rc=0; ./bin/loopsmoke -addr http://$(LOOPSMOKE_ADDR) -seed 1 \
		-status-out $$dir/online-status.json || rc=$$?; \
	kill $$daemon 2>/dev/null; wait $$daemon 2>/dev/null || true; trap - EXIT; \
	if [ $$rc -ne 0 ]; then echo "--- inspectord.log ---"; cat $$dir/inspectord.log; exit $$rc; fi; \
	[ -n "$(KEEP_SMOKEDIR)$(SMOKEDIR)" ] || rm -rf $$dir

# fleet-smoke proves the fleet observability plane end to end at the
# process level: an inspectord running the online loop, two train-workers
# exchanging deltas over unix sockets and exposing -metrics-addr, and a
# `schedinspect fleet` daemon scraping all three. cmd/fleetsmoke drives
# /v1/inspect traffic and holds the assertions: every target up with
# derived rates, dist metrics aggregated across both workers, a windowed
# histogram quantile, the rank-straggler rule evaluated against real
# per-rank data, and at least one online candidate verdict surfaced
# through /v1/online/history into /v1/fleet. The `-once` text mode runs
# last as the exit-code check. SMOKEDIR/KEEP_SMOKEDIR as in loop-smoke.
FLEETSMOKE_INSP ?= 127.0.0.1:18652
FLEETSMOKE_W0 ?= 127.0.0.1:18653
FLEETSMOKE_W1 ?= 127.0.0.1:18654
FLEETSMOKE_ADDR ?= 127.0.0.1:18655
FLEETSMOKE_TARGETS = inspectord=$(FLEETSMOKE_INSP),w0=$(FLEETSMOKE_W0),w1=$(FLEETSMOKE_W1)
fleet-smoke: bin
	@set -e; dir="$(SMOKEDIR)"; [ -n "$$dir" ] || dir=$$(mktemp -d); mkdir -p "$$dir"; \
	./bin/schedinspect train -trace SDSC-SP2 -jobs 2000 \
		-epochs 1 -batch 4 -seqlen 64 -seed 42 -model $$dir/model.gob; \
	./bin/inspectord -model $$dir/model.gob -addr $(FLEETSMOKE_INSP) -seed 7 \
		-online -online-interval 500ms -online-min-window 256 \
		-online-dir $$dir/promoted >$$dir/inspectord.log 2>&1 & insp=$$!; \
	./bin/schedinspect train-worker -trace SDSC-SP2 -jobs 2000 \
		-epochs 100000 -batch 4 -seqlen 64 -seed 42 \
		-world 2 -rank 0 -peers $$dir/w0.sock,$$dir/w1.sock \
		-metrics-addr $(FLEETSMOKE_W0) -model $$dir/rank0.gob \
		>$$dir/w0.log 2>&1 & w0=$$!; \
	./bin/schedinspect train-worker -trace SDSC-SP2 -jobs 2000 \
		-epochs 100000 -batch 4 -seqlen 64 -seed 42 \
		-world 2 -rank 1 -peers $$dir/w0.sock,$$dir/w1.sock \
		-metrics-addr $(FLEETSMOKE_W1) -model $$dir/rank1.gob \
		>$$dir/w1.log 2>&1 & w1=$$!; \
	./bin/schedinspect fleet -targets $(FLEETSMOKE_TARGETS) \
		-addr $(FLEETSMOKE_ADDR) -interval 1s -window 30s \
		>$$dir/fleet.log 2>&1 & fl=$$!; \
	trap 'kill $$insp $$w0 $$w1 $$fl 2>/dev/null; wait 2>/dev/null' EXIT; \
	rc=0; ./bin/fleetsmoke -fleet http://$(FLEETSMOKE_ADDR) \
		-inspectord http://$(FLEETSMOKE_INSP) -seed 1 \
		-out $$dir/fleet-status.json || rc=$$?; \
	if [ $$rc -eq 0 ]; then \
		./bin/schedinspect fleet -once -targets $(FLEETSMOKE_TARGETS) \
			-interval 1s || rc=$$?; fi; \
	kill $$insp $$w0 $$w1 $$fl 2>/dev/null; wait 2>/dev/null || true; trap - EXIT; \
	if [ $$rc -ne 0 ]; then for f in inspectord w0 w1 fleet; do \
		echo "--- $$f.log ---"; cat $$dir/$$f.log; done; exit $$rc; fi; \
	[ -n "$(KEEP_SMOKEDIR)$(SMOKEDIR)" ] || rm -rf $$dir

# fuzz-smoke gives every fuzz target a short budget (override with
# FUZZTIME=...) — enough to catch shallow parser/decoder regressions on
# every CI run without turning the pipeline into a fuzzing campaign.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseSWF$$' -fuzztime $(FUZZTIME) ./internal/workload/
	$(GO) test -run '^$$' -fuzz '^FuzzLoadCheckpoint$$' -fuzztime $(FUZZTIME) ./internal/ckpt/
	$(GO) test -run '^$$' -fuzz '^FuzzReadFTrace$$' -fuzztime $(FUZZTIME) ./internal/explain/
	$(GO) test -run '^$$' -fuzz '^FuzzParseProm$$' -fuzztime $(FUZZTIME) ./internal/fleet/

verify: build vet fmt-check race test
