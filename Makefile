# Build/verify entry points. `make verify` is the pre-commit gate: build,
# vet, formatting, the full test suite, and a -race pass over the packages
# with concurrent hot paths (the obs registry, the instrumented server, and
# the parallel rollout engine in core/rl/sim), which is exactly where data
# races would hide. The rollout packages run with -short so the race pass
# stays fast; the long learning test is covered by the plain `test` target.

GO ?= go

.PHONY: all build vet fmt-check test test-short race bench verify

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; fail if it prints anything.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/obs/ ./internal/serve/
	$(GO) test -race -short ./internal/core/ ./internal/rl/ ./internal/sim/

bench:
	$(GO) test -bench=. -benchmem .

verify: build vet fmt-check race test
