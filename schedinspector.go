// Package schedinspector is the public API of a from-scratch Go
// reproduction of "SchedInspector: A Batch Job Scheduling Inspector Using
// Reinforcement Learning" (Zhang, Dai, Xie — HPDC '22).
//
// SchedInspector sits on top of an unchanged base batch-job scheduler
// (FCFS, SJF, F1, Slurm multifactor, ...). At every scheduling point the
// base policy picks the top-priority job; the inspector observes runtime
// features (cluster availability, queue delays, the job's attributes) and
// either lets the decision proceed or rejects it, returning the job to the
// waiting queue so the base policy retries at the next scheduling point.
// The inspector is a small actor-critic MLP trained with PPO against a
// simulated cluster; its reward is the percentage improvement of the chosen
// metric over an uninspected run of the same job sequence.
//
// Typical use:
//
//	trace := schedinspector.GenerateTrace("SDSC-SP2", 20000, 42)
//	trainer, _ := schedinspector.NewTrainer(schedinspector.TrainConfig{
//		Trace:  trace,
//		Policy: schedinspector.SJF(),
//		Metric: schedinspector.BSLD,
//	})
//	trainer.Train(40, nil)
//	res, _ := schedinspector.Evaluate(trainer.Inspector(), schedinspector.EvalConfig{
//		Trace: trace, Policy: schedinspector.SJF(), Metric: schedinspector.BSLD,
//	})
//	fmt.Printf("bsld improvement: %.1f%%\n", 100*res.MeanImprovement(schedinspector.BSLD))
//
// The implementation lives in internal packages: workload (traces, SWF,
// synthetic generators), sim (the cluster simulator), sched (base
// policies), nn and rl (the learning machinery), core (the inspector), and
// stats/metrics (measurement).
package schedinspector

import (
	"context"
	"io"
	"math/rand"

	"schedinspector/internal/core"
	"schedinspector/internal/dist"
	"schedinspector/internal/metrics"
	"schedinspector/internal/obs"
	"schedinspector/internal/sched"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

// Re-exported types. See the internal packages for full documentation.
type (
	// Job is one batch job of a trace.
	Job = workload.Job
	// Trace is a job trace bound to a cluster size.
	Trace = workload.Trace
	// TraceStats summarizes a trace (Table 2 of the paper).
	TraceStats = workload.Stats

	// Metric is a job execution performance metric (bsld, wait, mbsld, util).
	Metric = metrics.Metric
	// Summary aggregates all metrics over one scheduled sequence.
	Summary = metrics.Summary
	// JobResult is the scheduling outcome of a single job.
	JobResult = metrics.JobResult

	// Policy is a base scheduling policy (lower score runs first).
	Policy = sched.Policy
	// Slurm is the multifactor priority policy of §4.5.
	Slurm = sched.Slurm

	// SimConfig parameterizes one simulation run.
	SimConfig = sim.Config
	// SimResult is the outcome of one simulation run.
	SimResult = sim.Result
	// SimState is the scheduling context an inspector observes.
	SimState = sim.State
	// SimEnv is the steppable simulator core: Reset starts an episode and
	// yields at every scheduling decision; Step answers it. Simulate is a
	// thin loop over it.
	SimEnv = sim.Env
	// SimSnapshot is a deep copy of a SimEnv's state for checkpoint/branch
	// workloads (SimEnv.Snapshot / SimEnv.Restore).
	SimSnapshot = sim.Snapshot

	// Inspector is a SchedInspector model.
	Inspector = core.Inspector
	// TrainConfig parameterizes training (§4.1 defaults apply).
	TrainConfig = core.TrainConfig
	// Trainer drives PPO training of an inspector.
	Trainer = core.Trainer
	// EpochStats reports one training epoch (the training-curve data).
	EpochStats = core.EpochStats
	// EvalConfig parameterizes test-time evaluation.
	EvalConfig = core.EvalConfig
	// EvalResult holds paired base/inspected per-sequence summaries.
	EvalResult = core.EvalResult
	// FeatureMode selects the feature-building mechanism (§3.3).
	FeatureMode = core.FeatureMode
	// RewardKind selects the reward function (§3.4).
	RewardKind = core.RewardKind
	// Normalizer holds the feature scaling constants of a trace.
	Normalizer = core.Normalizer
	// Recorder logs inspection decisions for the §5 analysis.
	Recorder = core.Recorder

	// Tracer records structured simulator events (set SimConfig.Tracer).
	Tracer = obs.Tracer
	// TraceEvent is one simulator event in a Tracer's buffer or JSONL sink.
	TraceEvent = obs.Event
	// FlightRecorder is the decision flight recorder: span tracing plus
	// per-decision explain records, attached via TrainConfig.Flight or
	// EvalConfig.Flight and streamed as interleaved JSONL with SetSink.
	FlightRecorder = obs.FlightRecorder
	// SpanTracer records completed trace spans (run → epoch → episode →
	// decision) into a bounded ring and, optionally, a JSONL sink.
	SpanTracer = obs.SpanTracer
	// Span is one completed trace span.
	Span = obs.Span
	// SpanID identifies a span; IDs derive deterministically from stable
	// tags (DeriveSpanID), so they match at any rollout worker count.
	SpanID = obs.SpanID
	// ExplainRecord is one fully-instrumented inspector decision: the
	// feature vector, logits, action distribution, verdict and the
	// scheduling context around it.
	ExplainRecord = obs.ExplainRecord
	// ExplainRecorder buffers ExplainRecords (the flight recorder's
	// decision half).
	ExplainRecorder = obs.ExplainRecorder
	// TraceRing is the arena-backed binary flight recorder: spans, explain
	// records and runtime samples encoded into fixed-size slots with zero
	// steady-state allocations, streamed to .ftrace sinks and converted
	// offline to the JSONL the legacy sinks write.
	TraceRing = obs.TraceRing
	// MetricsRegistry renders counters/gauges/histograms in Prometheus
	// text exposition format (the substrate behind inspectord's /metrics).
	MetricsRegistry = obs.Registry
	// TrainLogger receives per-epoch training telemetry
	// (set TrainConfig.Logger).
	TrainLogger = core.TrainLogger
	// RolloutMetrics publishes rollout-engine gauges and histograms
	// (worker utilization, trajectory latency, baseline-cache traffic)
	// into a MetricsRegistry. Set TrainConfig.Metrics / EvalConfig.Metrics.
	RolloutMetrics = core.RolloutMetrics

	// TrainerCheckpoint is a full snapshot of a training run — weights,
	// optimizer moments, normalizer, epoch and seed — sufficient to resume
	// bit-identically (Trainer.Resume) or to serve directly
	// (TrainerCheckpoint.Inspector).
	TrainerCheckpoint = core.TrainerCheckpoint
	// CheckpointConfig enables periodic durable checkpoints during
	// Trainer.TrainCtx.
	CheckpointConfig = core.CheckpointConfig

	// DistOptions parameterizes the DD-PPO-style multi-process engine's
	// transport and telemetry (see TrainDistributed).
	DistOptions = dist.Options
	// DistMetrics publishes per-epoch exchange latency/volume, straggler
	// wait and peer-failure counters into a MetricsRegistry.
	DistMetrics = dist.Metrics
)

// ErrInterrupted is returned (wrapped) by Trainer.TrainCtx when training
// stopped early because its context was canceled; a final checkpoint has
// been written when checkpointing is configured.
var ErrInterrupted = core.ErrInterrupted

// Distributed-training errors: a dead/stalled/misconfigured peer matches
// ErrDistPeer (surviving workers fail typed instead of hanging), and a
// post-apply replica digest mismatch matches ErrDistDiverged.
var (
	ErrDistPeer     = dist.ErrPeer
	ErrDistDiverged = dist.ErrDiverged
)

// TrainDistributed runs epochs of coordinator-less multi-process training:
// every worker process calls it with an identically-configured Trainer
// (TrainConfig.World, Rank and Peers set; only Rank differs), rolls out
// its shard of each epoch's trajectory batch, exchanges per-trajectory
// deltas with all peers, and applies the identical PPO update — so every
// replica's weights and Adam state stay bit-identical to a single-process
// Trainer.Train on the same seed and config. With World <= 1 it is
// exactly Trainer.TrainCtx. Checkpointing and interruption follow the
// TrainCtx contract; periodic saves are written by rank 0 only.
func TrainDistributed(ctx context.Context, t *Trainer, epochs int, ck CheckpointConfig, opt DistOptions, cb func(EpochStats)) ([]EpochStats, error) {
	return dist.Train(ctx, t, epochs, ck, opt, cb)
}

// NewDistMetrics registers the distributed-engine metric family on r.
func NewDistMetrics(r *MetricsRegistry) *DistMetrics { return dist.NewMetrics(r) }

// Metrics.
const (
	// BSLD is the average bounded job slowdown (minimize; the paper's default).
	BSLD = metrics.BSLD
	// Wait is the average job waiting time (minimize).
	Wait = metrics.Wait
	// MBSLD is the maximal bounded job slowdown (minimize).
	MBSLD = metrics.MBSLD
	// Util is the system utilization (maximize).
	Util = metrics.Util
)

// Feature modes (§3.3).
const (
	// ManualFeatures is the paper's engineered feature set.
	ManualFeatures = core.ManualFeatures
	// CompactedFeatures drops the aggregated queue/backfill features.
	CompactedFeatures = core.CompactedFeatures
	// NativeFeatures feeds the raw padded environment state.
	NativeFeatures = core.NativeFeatures
)

// Reward kinds (§3.4).
const (
	// PercentageReward is the paper's default reward.
	PercentageReward = core.PercentageReward
	// NativeReward is the raw metric difference.
	NativeReward = core.NativeReward
	// WinLossReward only scores the sign of the difference.
	WinLossReward = core.WinLossReward
)

// Simulator hyperparameters (§4.1).
const (
	// DefaultMaxInterval is the retry cut-off after a rejection (600 s).
	DefaultMaxInterval = sim.DefaultMaxInterval
	// DefaultMaxRejections caps rejections per job (72).
	DefaultMaxRejections = sim.DefaultMaxRejections
)

// Base scheduling policies (Table 3).
var (
	// FCFS is first come, first served.
	FCFS = sched.FCFS
	// LCFS is last come, first served.
	LCFS = sched.LCFS
	// SJF is shortest (estimated runtime) job first.
	SJF = sched.SJF
	// SQF is smallest resource request first.
	SQF = sched.SQF
	// SAF is smallest estimated area first.
	SAF = sched.SAF
	// SRF is smallest estimated ratio first.
	SRF = sched.SRF
	// F1 is the learned heuristic of Carastan-Santos & de Camargo (SC'17).
	F1 = sched.F1
)

// PolicyByName returns a Table 3 policy by abbreviation
// ("FCFS", "LCFS", "SJF", "SQF", "SAF", "SRF", "F1").
func PolicyByName(name string) (Policy, error) { return sched.ByName(name) }

// NewSlurm builds the Slurm multifactor policy with shares derived from the
// trace (§4.5).
func NewSlurm(t *Trace) *Slurm { return sched.NewSlurm(t) }

// GenerateTrace builds one of the paper's four workloads ("SDSC-SP2",
// "CTC-SP2", "HPC2N", "Lublin") as a calibrated synthetic trace. It panics
// on an unknown name; use workload.ByName for an error-returning variant.
func GenerateTrace(name string, jobs int, seed int64) *Trace {
	t, err := workload.ByName(name, jobs, seed)
	if err != nil {
		panic(err)
	}
	return t
}

// PaperTraces lists the four Table 2 workload names.
func PaperTraces() []string { return workload.PaperTraces() }

// ParseSWF reads a trace in Standard Workload Format.
func ParseSWF(r io.Reader, name string) (*Trace, error) { return workload.ParseSWF(r, name) }

// ParseSWFFile reads an SWF trace from disk, transparently decompressing
// ".gz" files (the format the Parallel Workloads Archive distributes).
func ParseSWFFile(path string) (*Trace, error) { return workload.ParseSWFFile(path) }

// WriteSWF writes a trace in Standard Workload Format.
func WriteSWF(w io.Writer, t *Trace) error { return workload.WriteSWF(w, t) }

// ComputeTraceStats summarizes a trace as Table 2 does.
func ComputeTraceStats(t *Trace) TraceStats { return workload.ComputeStats(t) }

// Simulate schedules a job sequence under cfg and returns the results.
func Simulate(jobs []Job, cfg SimConfig) (SimResult, error) { return sim.Run(jobs, cfg) }

// NewSimEnv returns an empty steppable environment; its Reset starts the
// first episode. A reused env reaches a steady state where full episodes
// allocate nothing.
func NewSimEnv() *SimEnv { return sim.NewEnv() }

// SimulateEnv is Simulate on a caller-owned environment, reusing its
// buffers across calls. The returned result aliases env storage and is
// invalidated by the env's next Reset.
func SimulateEnv(env *SimEnv, jobs []Job, cfg SimConfig) (SimResult, error) {
	return sim.RunEnv(env, jobs, cfg)
}

// NewTrainer builds a PPO trainer for a fresh inspector.
func NewTrainer(cfg TrainConfig) (*Trainer, error) { return core.NewTrainer(cfg) }

// Evaluate schedules sampled test sequences with and without the inspector.
func Evaluate(insp *Inspector, cfg EvalConfig) (EvalResult, error) { return core.Evaluate(insp, cfg) }

// LoadInspectorFile reads a model saved with Inspector.SaveFile.
func LoadInspectorFile(path string, rng *rand.Rand) (*Inspector, error) {
	return core.LoadInspectorFile(path, rng)
}

// LoadTrainerCheckpoint reads one durable checkpoint file, verifying its
// container (magic, version, CRC) and payload before returning.
func LoadTrainerCheckpoint(path string) (*TrainerCheckpoint, error) {
	return core.LoadTrainerCheckpoint(path)
}

// LatestTrainerCheckpoint returns the newest loadable checkpoint in dir
// and its path, falling back past torn or corrupt files.
func LatestTrainerCheckpoint(dir string) (*TrainerCheckpoint, string, error) {
	return core.LatestTrainerCheckpoint(dir)
}

// NormalizerForTrace derives feature scaling constants from a trace, used
// when applying a trained inspector to a different workload (Table 4).
func NormalizerForTrace(t *Trace, metric Metric) Normalizer {
	return core.NormalizerForTrace(t, metric)
}

// ParseMetric converts "bsld", "wait", "mbsld" or "util" into a Metric.
func ParseMetric(s string) (Metric, error) { return metrics.ParseMetric(s) }

// NewTracer returns a simulator event tracer holding the last capacity
// events (a default of 4096 for capacity <= 0). Attach it via
// SimConfig.Tracer; stream JSONL with its SetSink method.
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewFlightRecorder returns a decision flight recorder with the given span
// and explain-record ring capacities (<= 0 selects the package defaults).
// Attach via TrainConfig.Flight / EvalConfig.Flight; stream interleaved
// JSONL with SetSink.
func NewFlightRecorder(spanCap, decisionCap int) *FlightRecorder {
	return obs.NewFlightRecorder(spanCap, decisionCap)
}

// NewBinaryFlightRecorder returns a flight recorder backed by an
// arena-backed binary TraceRing of the given geometry (<= 0 selects the
// package defaults) — the production-cheap always-on configuration. Stream
// .ftrace bytes with SetSink; convert offline with schedinspect explain
// -convert.
func NewBinaryFlightRecorder(slots, slotSize int) *FlightRecorder {
	return obs.NewBinaryFlightRecorder(slots, slotSize)
}

// DeriveSpanID hashes a chain of stable tags into a SpanID using the same
// SplitMix64 discipline as the rollout engine's RNG streams.
func DeriveSpanID(tags ...uint64) SpanID { return obs.DeriveSpanID(tags...) }

// NewRolloutMetrics registers the rollout-engine instruments on r and
// returns the bundle to set on TrainConfig.Metrics or EvalConfig.Metrics.
func NewRolloutMetrics(r *MetricsRegistry) *RolloutMetrics { return core.NewRolloutMetrics(r) }

// NewCSVTrainLogger writes per-epoch training telemetry to w as CSV (one
// header row, then one row per epoch).
func NewCSVTrainLogger(w io.Writer) TrainLogger { return core.NewCSVTrainLogger(w) }

// NewJSONLTrainLogger writes per-epoch training telemetry to w as JSON
// lines.
func NewJSONLTrainLogger(w io.Writer) TrainLogger { return core.NewJSONLTrainLogger(w) }
