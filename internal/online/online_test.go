package online

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"schedinspector/internal/ckpt"
	"schedinspector/internal/core"
	"schedinspector/internal/explain"
	"schedinspector/internal/metrics"
	"schedinspector/internal/obs"
	"schedinspector/internal/workload"
)

func testInspector(seed int64) *core.Inspector {
	tr := workload.SDSCSP2Like(400, 3)
	return core.NewInspector(rand.New(rand.NewSource(seed)), core.ManualFeatures,
		core.NormalizerForTrace(tr, metrics.BSLD), nil)
}

// fakeServer is a minimal Server for unit tests that must not spin up the
// full serve handler.
type fakeServer struct {
	mu    sync.Mutex
	insp  *core.Inspector
	gen   int64
	swaps []*core.Inspector
}

func newFakeServer(insp *core.Inspector) *fakeServer {
	return &fakeServer{insp: insp, gen: 1}
}

func (f *fakeServer) Current() (*core.Inspector, int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.insp, f.gen
}

func (f *fakeServer) Swap(insp *core.Inspector) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.insp = insp
	f.gen++
	f.swaps = append(f.swaps, insp)
}

// fillRing emits n plausible first-inspection decision records (plus a
// sprinkle of re-inspections) starting at sequence lo.
func fillRing(r *obs.TraceRing, lo, n int, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		rec := obs.ExplainRecord{
			Seq:        lo + i,
			Time:       float64(lo+i) * 30,
			JobID:      lo + i + 1,
			Wait:       float64(rng.Intn(3600)),
			Procs:      1 + rng.Intn(32),
			Est:        float64(60 + rng.Intn(7200)),
			QueueLen:   1 + rng.Intn(20),
			FreeProcs:  rng.Intn(128),
			TotalProcs: 128,
			Features:   []float64{0.1, 0.2, 0.3},
			Logits:     []float64{0.5, -0.5},
			Probs:      []float64{0.7, 0.3},
		}
		if i%7 == 3 {
			rec.Rejections = 1 // re-inspection of an already-counted job
		}
		r.EmitDecision(&rec)
	}
}

type ringSource struct{ r *obs.TraceRing }

func (s ringSource) Snapshot() []byte { return s.r.Snapshot() }

func newTestRing(n int) *obs.TraceRing {
	r := obs.NewTraceRing(4096, 512)
	r.SetMeta([]string{"a", "b", "c"}, "manual", 5)
	fillRing(r, 0, n, rand.New(rand.NewSource(7)))
	return r
}

func TestTailDedupeAndWindowBound(t *testing.T) {
	ring := newTestRing(100)
	srv := newFakeServer(testInspector(1))
	l, err := New(Config{
		Source: ringSource{ring}, Serving: srv,
		MinWindow: 1000, MaxWindow: 1000, // stay in collecting
	})
	if err != nil {
		t.Fatal(err)
	}
	l.RunCycle(context.Background())
	st := l.Status()
	if st.State != "collecting" || st.WindowRecords != 100 || st.TailedTotal != 100 {
		t.Fatalf("after first tail: %+v", st)
	}

	// Same image again: everything dedupes.
	l.RunCycle(context.Background())
	if st := l.Status(); st.WindowRecords != 100 || st.TailedTotal != 100 {
		t.Fatalf("dedupe failed: %+v", st)
	}

	// New decisions arrive; only they are tailed.
	fillRing(ring, 100, 50, rand.New(rand.NewSource(8)))
	l.RunCycle(context.Background())
	if st := l.Status(); st.WindowRecords != 150 || st.TailedTotal != 150 || st.LastSeq != 149 {
		t.Fatalf("incremental tail: %+v", st)
	}

	// The window is a bounded slide: overflow evicts the oldest. Margin 1
	// keeps the cycle's outcome a rejection so only the bound is under test.
	lb, err := New(Config{
		Source: ringSource{ring}, Serving: srv,
		MinWindow: 40, MaxWindow: 40, Margin: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	lb.scoreFn = func(*core.Inspector, *workload.Trace, int64) (float64, error) { return 0, nil }
	lb.candidateFn = func(_ context.Context, s *core.Inspector, _ *workload.Trace, _ int64) (*core.Inspector, *core.TrainerCheckpoint, error) {
		return s, nil, nil
	}
	lb.RunCycle(context.Background())
	if got := len(lb.window); got != 40 {
		t.Fatalf("window not bounded: %d records", got)
	}
	if lb.window[0].Seq != 110 {
		t.Fatalf("expected oldest surviving Seq 110, got %d", lb.window[0].Seq)
	}
}

func TestCorruptSourceKeepsServing(t *testing.T) {
	srv := newFakeServer(testInspector(1))
	bad := sourceFunc(func() []byte { return []byte("definitely not an ftrace image") })
	l, err := New(Config{Source: bad, Serving: srv, MinWindow: 10})
	if err != nil {
		t.Fatal(err)
	}
	l.RunCycle(context.Background())
	st := l.Status()
	if st.LastError == "" {
		t.Fatal("corrupt image should surface an error")
	}
	if l.m.corruptWindows.Value() != 1 {
		t.Fatalf("corrupt_windows = %v, want 1", l.m.corruptWindows.Value())
	}
	if len(srv.swaps) != 0 || st.ServingGeneration != 1 {
		t.Fatalf("serving must be untouched: %+v", st)
	}
}

type sourceFunc func() []byte

func (f sourceFunc) Snapshot() []byte { return f() }

func TestReconstructTrace(t *testing.T) {
	ring := newTestRing(70)
	recs, _, err := explain.TailDecisions(ring.Snapshot(), -1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ReconstructTrace(recs, "w")
	if err != nil {
		t.Fatal(err)
	}
	// 70 records minus the i%7==3 re-inspections (10 of them).
	if tr.Len() != 60 {
		t.Fatalf("reconstructed %d jobs, want 60 (re-inspections dropped)", tr.Len())
	}
	if tr.MaxProcs != 128 {
		t.Fatalf("MaxProcs %d, want cluster size 128", tr.MaxProcs)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < tr.Len(); i++ {
		if tr.Jobs[i].Submit < tr.Jobs[i-1].Submit {
			t.Fatal("submit order violated")
		}
	}

	// A window of nothing but re-inspections cannot be replayed.
	allRej := make([]obs.ExplainRecord, 5)
	for i := range allRej {
		allRej[i] = obs.ExplainRecord{Seq: i, Rejections: 2, Procs: 1, Est: 10}
	}
	if _, err := ReconstructTrace(allRej, "rej"); err == nil {
		t.Fatal("want error for all-reinspection window")
	}
}

func TestMarginGateAndRollback(t *testing.T) {
	ring := newTestRing(120)
	serving := testInspector(1)
	srv := newFakeServer(serving)
	cand := testInspector(2)
	l, err := New(Config{
		Source: ringSource{ring}, Serving: srv,
		MinWindow: 50, Margin: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	l.candidateFn = func(context.Context, *core.Inspector, *workload.Trace, int64) (*core.Inspector, *core.TrainerCheckpoint, error) {
		return cand, nil, nil
	}
	scores := map[*core.Inspector]float64{cand: 0.10, serving: 0.08}
	l.scoreFn = func(in *core.Inspector, _ *workload.Trace, _ int64) (float64, error) {
		return scores[in], nil
	}

	// 0.10 - 0.08 = 0.02 < margin 0.05: rejected, serving untouched.
	l.RunCycle(context.Background())
	st := l.Status()
	if st.Rejections != 1 || st.Promotions != 0 || st.ServingGeneration != 1 {
		t.Fatalf("margin gate failed: %+v", st)
	}

	// Clear the margin: promoted, generation bumps, probation armed.
	scores[cand] = 0.20
	l.RunCycle(context.Background())
	st = l.Status()
	if st.Promotions != 1 || st.ServingGeneration != 2 {
		t.Fatalf("promotion failed: %+v", st)
	}
	if l.prev != serving {
		t.Fatal("probation must remember the pre-promotion model")
	}

	// Next cycle: the old model wildly outscores the promoted one on the
	// fresh holdout — rollback (a forward swap back to the old weights).
	scores[serving] = 0.9
	scores[cand] = 0.1
	l.RunCycle(context.Background())
	st = l.Status()
	if st.Rollbacks != 1 || st.ServingGeneration != 3 {
		t.Fatalf("rollback failed: %+v", st)
	}
	if got, _ := srv.Current(); got != serving {
		t.Fatal("rollback must restore the pre-promotion model")
	}
	if l.prev != nil {
		t.Fatal("probation must end after the check")
	}

	// Promote again and confirm this time (serving keeps its score edge).
	scores[cand] = 2.0
	scores[serving] = 0.0
	l.RunCycle(context.Background()) // promotes cand at gen 4
	scores[cand] = 2.0               // serving (== cand) still ahead of prev
	l.RunCycle(context.Background()) // confirmation
	st = l.Status()
	if st.Promotions != 2 || st.Rollbacks != 1 || st.ServingGeneration != 4 {
		t.Fatalf("confirmation failed: %+v", st)
	}
}

func TestDivergedCandidateRejected(t *testing.T) {
	ring := newTestRing(120)
	srv := newFakeServer(testInspector(1))
	l, err := New(Config{Source: ringSource{ring}, Serving: srv, MinWindow: 50})
	if err != nil {
		t.Fatal(err)
	}
	bad := testInspector(3)
	bad.Agent.Policy.W[0][0] = math.NaN()
	l.candidateFn = func(context.Context, *core.Inspector, *workload.Trace, int64) (*core.Inspector, *core.TrainerCheckpoint, error) {
		return bad, nil, nil
	}
	l.scoreFn = func(*core.Inspector, *workload.Trace, int64) (float64, error) {
		t.Fatal("a diverged candidate must never reach shadow eval")
		return 0, nil
	}
	l.RunCycle(context.Background())
	st := l.Status()
	if st.Rejections != 1 || st.Promotions != 0 || st.ServingGeneration != 1 {
		t.Fatalf("diverged candidate not rejected: %+v", st)
	}
}

func TestStatusHandler(t *testing.T) {
	srv := newFakeServer(testInspector(1))
	l, err := New(Config{Source: ringSource{newTestRing(1)}, Serving: srv})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	l.StatusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/online/status", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.ServingGeneration != 1 {
		t.Fatalf("status payload: %+v", st)
	}
	rec = httptest.NewRecorder()
	l.StatusHandler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/online/status", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status %d, want 405", rec.Code)
	}
}

// TestFullCycleRealRetrain runs one genuine cycle — real warm-start
// retrain through the trainer phases and a real paired shadow evaluation —
// against a synthetic decision window, and requires the cycle to land in
// exactly one of the two legal terminal states with serving intact
// throughout (any promotion must come from the margin gate, not a crash).
func TestFullCycleRealRetrain(t *testing.T) {
	if testing.Short() {
		t.Skip("real retrain cycle")
	}
	ring := newTestRing(400)
	serving := testInspector(1)
	srv := newFakeServer(serving)
	dir := t.TempDir()
	l, err := New(Config{
		Source: ringSource{ring}, Serving: srv,
		MinWindow: 200, Epochs: 1, Batch: 4, SeqLen: 32,
		ShadowSequences: 4, ShadowSeqLen: 32,
		Seed: 42, PromotedDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	l.RunCycle(context.Background())
	st := l.Status()
	if st.Retrains != 1 || st.RetrainFailures != 0 {
		t.Fatalf("retrain did not run cleanly: %+v", st)
	}
	if st.ShadowEvals != 1 {
		t.Fatalf("shadow eval did not run: %+v", st)
	}
	if st.Promotions+st.Rejections != 1 {
		t.Fatalf("cycle must end promoted or rejected: %+v", st)
	}
	if st.Promotions == 1 {
		if st.ServingGeneration != 2 {
			t.Fatalf("promotion must bump generation: %+v", st)
		}
		// The promoted candidate is persisted as a loadable checkpoint.
		entries, err := ckpt.List(dir)
		if err != nil || len(entries) != 1 {
			t.Fatalf("promoted dir: entries=%v err=%v", entries, err)
		}
		insp, err := core.LoadServable(entries[0].Path, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		cur, _ := srv.Current()
		if insp.Mode != cur.Mode || insp.Norm != cur.Norm {
			t.Fatal("persisted checkpoint must match the promoted model's contract")
		}
	} else if st.ServingGeneration != 1 {
		t.Fatalf("rejection must leave serving untouched: %+v", st)
	}
}

func TestStartStop(t *testing.T) {
	srv := newFakeServer(testInspector(1))
	l, err := New(Config{
		Source: ringSource{newTestRing(10)}, Serving: srv,
		Interval: time.Millisecond, MinWindow: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := l.Start(context.Background())
	deadline := time.Now().Add(5 * time.Second)
	for l.Status().Cycles == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	if l.Status().Cycles == 0 {
		t.Fatal("ticker never fired")
	}
}
