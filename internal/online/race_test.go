package online

// The two loop-safety properties the issue pins under the race detector:
//
//   - Promotion under load: concurrent /v1/inspect traffic across online
//     promotions must never observe a torn snapshot or mixed-generation
//     explain metadata — every request serves 200, the generation only
//     moves forward, and the flight ring image stays decodable end to end.
//   - Kill mid-retrain: cancelling a retrain in flight leaves the serving
//     model and the checkpoint directory byte-identical — the candidate
//     is discarded before it can touch anything.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"schedinspector/internal/ckpt"
	"schedinspector/internal/core"
	"schedinspector/internal/explain"
	"schedinspector/internal/serve"
	"schedinspector/internal/workload"
)

func inspectBody(rng *rand.Rand) []byte {
	var req serve.InspectRequest
	req.Job.Wait = float64(rng.Intn(3600))
	req.Job.Est = float64(60 + rng.Intn(7200))
	req.Job.Procs = 1 + rng.Intn(32)
	req.TotalProcs = 128
	req.FreeProcs = rng.Intn(129)
	req.Queue = []serve.QueueItem{{Wait: 60, Est: 600, Procs: 4}}
	b, _ := json.Marshal(req)
	return b
}

func TestPromotionUnderLoadRace(t *testing.T) {
	h := serve.NewHandler(testInspector(1))
	defer h.Close()

	l, err := New(Config{
		Source: h.TraceRing(), Serving: h,
		MinWindow: 32, Registry: h.Registry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stub the expensive stages: the property under test is the promotion
	// path's interaction with live traffic, not training quality. Each
	// candidate is a freshly initialized model — distinct weights every
	// generation.
	var candSeed atomic.Int64
	l.candidateFn = func(context.Context, *core.Inspector, *workload.Trace, int64) (*core.Inspector, *core.TrainerCheckpoint, error) {
		return testInspector(100 + candSeed.Add(1)), nil, nil
	}
	// RunCycle scores the candidate first, then the serving model; the
	// toggle hands the first call the winning score. In the rollback check
	// the first call is the (promoted) serving model, so promotions are
	// always confirmed and every second cycle promotes.
	var scoreCalls int
	l.scoreFn = func(*core.Inspector, *workload.Trace, int64) (float64, error) {
		scoreCalls++
		if scoreCalls%2 == 1 {
			return 1, nil
		}
		return 0, nil
	}

	const clients = 4
	stop := make(chan struct{})
	var failures atomic.Int64
	var served atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest(http.MethodPost, "/v1/inspect", bytes.NewReader(inspectBody(rng)))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					failures.Add(1)
					t.Errorf("inspect returned %d during promotion: %s", rec.Code, rec.Body)
					return
				}
				var resp serve.InspectResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					failures.Add(1)
					t.Errorf("torn response: %v", err)
					return
				}
				served.Add(1)
			}
		}(int64(c))
	}

	_, startGen := h.Current()
	deadline := time.Now().Add(30 * time.Second)
	for l.Status().Promotions < 3 && time.Now().Before(deadline) {
		l.RunCycle(context.Background())
		time.Sleep(time.Millisecond) // let traffic land between cycles
	}
	close(stop)
	wg.Wait()

	st := l.Status()
	if failures.Load() != 0 {
		t.Fatalf("%d requests failed across promotions", failures.Load())
	}
	if st.Promotions < 3 {
		t.Fatalf("expected several promotions under load, got %+v", st)
	}
	_, endGen := h.Current()
	if endGen != startGen+int64(st.Promotions)+int64(st.Rollbacks) {
		t.Fatalf("generation %d -> %d does not match %d promotions + %d rollbacks",
			startGen, endGen, st.Promotions, st.Rollbacks)
	}
	if served.Load() == 0 {
		t.Fatal("no traffic was served during the test")
	}

	// The flight ring must still decode cleanly after every swap re-emitted
	// meta: no mixed-generation tear is visible to a reader.
	if _, _, err := explain.TailDecisions(h.TraceRing().Snapshot(), -1); err != nil {
		t.Fatalf("post-promotion ring image torn: %v", err)
	}
}

// dirDigest hashes every file in dir (names + bytes) into one digest.
func dirDigest(t *testing.T, dir string) string {
	t.Helper()
	sum := sha256.New()
	var files []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files)
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(sum, "%s\n", f)
		sum.Write(b)
	}
	return fmt.Sprintf("%x", sum.Sum(nil))
}

func TestKillMidRetrainLeavesServingUntouched(t *testing.T) {
	h := serve.NewHandler(testInspector(1))
	defer h.Close()

	// A checkpoint directory with prior state, doubling as PromotedDir:
	// the interrupted cycle must not add, remove, or rewrite anything.
	dir := t.TempDir()
	if err := ckpt.Write(filepath.Join(dir, ckpt.FileName(7)), 1, []byte("prior checkpoint")); err != nil {
		t.Fatal(err)
	}
	before := dirDigest(t, dir)

	// Fill the window through the real serving path.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/inspect", bytes.NewReader(inspectBody(rng)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("seed traffic failed: %d", rec.Code)
		}
	}

	l, err := New(Config{
		Source: h.TraceRing(), Serving: h,
		MinWindow: 128, Epochs: 3, Batch: 4, SeqLen: 16,
		PromotedDir: dir, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the retrain mid-flight: cancel after the first of three epochs
	// completes, so DriveEpochs has done real training work before the
	// interrupt lands and the candidate is discarded.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	l.epochHook = func(int) { cancel() }
	l.scoreFn = func(*core.Inspector, *workload.Trace, int64) (float64, error) {
		t.Error("an interrupted retrain must never reach shadow eval")
		return 0, nil
	}

	servingBefore, genBefore := h.Current()
	// Concurrent traffic across the kill keeps the race detector honest.
	stopTraffic := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		trng := rand.New(rand.NewSource(11))
		for {
			select {
			case <-stopTraffic:
				return
			default:
			}
			req := httptest.NewRequest(http.MethodPost, "/v1/inspect", bytes.NewReader(inspectBody(trng)))
			h.ServeHTTP(httptest.NewRecorder(), req)
		}
	}()

	l.RunCycle(ctx)
	close(stopTraffic)
	wg.Wait()

	st := l.Status()
	if st.Retrains != 1 || st.RetrainFailures != 1 {
		t.Fatalf("retrain was not interrupted: %+v", st)
	}
	if st.RetrainEpochs == 0 {
		t.Fatalf("the kill must land mid-retrain, after real work: %+v", st)
	}
	servingAfter, genAfter := h.Current()
	if servingAfter != servingBefore || genAfter != genBefore {
		t.Fatalf("serving snapshot changed across an interrupted retrain: gen %d -> %d", genBefore, genAfter)
	}
	if after := dirDigest(t, dir); after != before {
		t.Fatal("checkpoint directory changed across an interrupted retrain")
	}
	if st.Promotions != 0 || st.Rejections != 0 {
		t.Fatalf("interrupted cycle must not reach a verdict: %+v", st)
	}
}
