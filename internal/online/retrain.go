package online

import (
	"fmt"
	"math/rand"

	"context"

	"schedinspector/internal/core"
	"schedinspector/internal/workload"
)

// Candidate production and shadow scoring — the two model-touching stages
// of the cycle. Both run entirely off the serving path: the serving
// inspector's weights are immutable, Clone never perturbs its RNG, and the
// only write back into the daemon is the Swap a winning candidate earns.

// retrainCandidate fine-tunes a candidate from the serving model on a
// reconstructed window trace. The trainer is warm-started with
// core.NewTrainerFrom, which clones the serving weights and — critically —
// keeps the serving normalizer, so the feature contract the model was
// deployed under survives retraining on a window whose raw statistics
// differ. The epochs run through the same BeginEpoch / RolloutShard /
// ApplyDeltas phases as offline training, driven by DriveEpochs with an
// empty checkpoint config: nothing is ever written to disk mid-retrain, so
// a crash or cancellation discards the candidate by construction and
// cannot touch the serving checkpoint directory.
func (l *Loop) retrainCandidate(ctx context.Context, serving *core.Inspector, tr *workload.Trace, seed int64) (*core.Inspector, *core.TrainerCheckpoint, error) {
	seqLen := l.cfg.SeqLen
	if seqLen > tr.Len() {
		seqLen = tr.Len()
	}
	cfg := core.TrainConfig{
		Trace:         tr,
		Policy:        l.cfg.Policy,
		Metric:        serving.Norm.Metric,
		RewardKind:    core.PercentageReward,
		FeatureMode:   serving.Mode,
		SeqLen:        seqLen,
		Batch:         l.cfg.Batch,
		LR:            l.cfg.LR,
		Seed:          seed,
		TrainFrac:     1, // the holdout was already carved off the window
		MaxInterval:   serving.Norm.MaxInterval,
		MaxRejections: serving.Norm.MaxRejections,
		Workers:       l.cfg.Workers,
	}
	t, err := core.NewTrainerFrom(cfg, serving)
	if err != nil {
		return nil, nil, err
	}
	epoch := 0
	_, err = t.DriveEpochs(ctx, l.cfg.Epochs, core.CheckpointConfig{}, t.RunEpoch, func(core.EpochStats) {
		epoch++
		l.m.retrainEpochs.Inc()
		l.mirror(func(st *Status) { st.RetrainEpochs++ })
		if l.epochHook != nil {
			l.epochHook(epoch)
		}
	})
	if err != nil {
		return nil, nil, err
	}
	// Hand the candidate its own sampling RNG: the trainer's stream dies
	// with the trainer, and the serving collector must never share one.
	cand := t.Inspector().Clone(rand.New(rand.NewSource(cycleSeed(seed, 0x5eed))))
	return cand, t.Checkpoint(), nil
}

// shadowScore evaluates one model on the held-out window trace and
// returns the paper's relative-improvement score (EvalResult
// MeanImprovement on the model's own training metric): how much better
// the trace runs with this inspector filtering decisions than with the
// base policy alone. Candidate and serving model are scored with the same
// config and seed, so the sampled sequences — the "same decisions" of the
// shadow comparison — are identical across the two arms.
func (l *Loop) shadowScore(insp *core.Inspector, tr *workload.Trace, seed int64) (float64, error) {
	seqLen := l.cfg.ShadowSeqLen
	if seqLen > tr.Len() {
		seqLen = tr.Len()
	}
	res, err := core.Evaluate(insp, core.EvalConfig{
		Trace:     tr,
		Policy:    l.cfg.Policy,
		Metric:    insp.Norm.Metric,
		Sequences: l.cfg.ShadowSequences,
		SeqLen:    seqLen,
		// The whole holdout is test data; the epsilon defeats the 0.2
		// zero-value default without excluding any of it.
		TestFrom:      1e-12,
		Seed:          seed,
		MaxInterval:   insp.Norm.MaxInterval,
		MaxRejections: insp.Norm.MaxRejections,
		Workers:       l.cfg.Workers,
	})
	if err != nil {
		return 0, fmt.Errorf("shadow eval on %q: %w", tr.Name, err)
	}
	return res.MeanImprovement(insp.Norm.Metric), nil
}
