package online

import (
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"time"
)

// CandidateRecord is one entry in the loop's audit trail: every candidate
// that reached a verdict — promoted, rejected on margin, diverged, voided
// by a generation race, confirmed after probation, or rolled back — with
// both shadow-eval arms, so "why is generation N serving?" is answerable
// after the fact without log archaeology.
type CandidateRecord struct {
	Unix       int64  `json:"unix"`
	Cycle      uint64 `json:"cycle"`
	Generation int64  `json:"generation"`
	// Verdict is one of: promoted, confirmed, rolled-back, rejected,
	// diverged, eval-failed, stale-generation.
	Verdict string `json:"verdict"`
	// CandidateScore and ServingScore are the two shadow-eval arms
	// (candidate vs incumbent; on probation verdicts, promoted model vs
	// pre-promotion model). Zero when the verdict precedes scoring.
	CandidateScore float64 `json:"candidate_score"`
	ServingScore   float64 `json:"serving_score"`
	// Margin is CandidateScore - ServingScore, the number the promotion
	// gate compared against Config.Margin.
	Margin     float64 `json:"margin"`
	WindowSize int     `json:"window_size"`
	Detail     string  `json:"detail,omitempty"`
}

// DefaultHistoryCap bounds the verdict ring when Config.HistoryCap is
// unset.
const DefaultHistoryCap = 64

// candHistory is a bounded ring of verdict records.
type candHistory struct {
	mu   sync.Mutex
	buf  []CandidateRecord
	head int
	n    int
}

func newCandHistory(capRecords int) *candHistory {
	if capRecords <= 0 {
		capRecords = DefaultHistoryCap
	}
	return &candHistory{buf: make([]CandidateRecord, capRecords)}
}

func (h *candHistory) add(rec CandidateRecord) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buf[h.head] = rec
	h.head = (h.head + 1) % len(h.buf)
	if h.n < len(h.buf) {
		h.n++
	}
}

func (h *candHistory) list() []CandidateRecord {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]CandidateRecord, 0, h.n)
	for i := 0; i < h.n; i++ {
		out = append(out, h.buf[(h.head-h.n+i+len(h.buf))%len(h.buf)])
	}
	return out
}

// record stamps and stores one verdict. Non-finite scores are zeroed —
// the record must survive encoding/json, and a diverged candidate's NaN
// score carries no information the verdict doesn't.
func (l *Loop) record(rec CandidateRecord) {
	rec.Unix = time.Now().Unix()
	rec.CandidateScore = finiteOrZero(rec.CandidateScore)
	rec.ServingScore = finiteOrZero(rec.ServingScore)
	rec.Margin = finiteOrZero(rec.Margin)
	l.hist.add(rec)
}

func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// History returns the retained verdict records, oldest first.
func (l *Loop) History() []CandidateRecord {
	return l.hist.list()
}

// HistoryHandler serves GET /v1/online/history:
// {"capacity": N, "candidates": [...oldest first...]}.
func (l *Loop) HistoryHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		recs := l.History()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Capacity   int               `json:"capacity"`
			Candidates []CandidateRecord `json:"candidates"`
		}{Capacity: len(l.hist.buf), Candidates: recs})
	})
}
