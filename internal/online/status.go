package online

import (
	"encoding/json"
	"net/http"
)

// loopState enumerates the cycle's phases for the state gauge and status
// endpoint.
type loopState int

const (
	stateIdle loopState = iota
	stateTailing
	stateCollecting
	stateRetraining
	stateShadowEval
	statePromoting
)

func (s loopState) String() string {
	switch s {
	case stateIdle:
		return "idle"
	case stateTailing:
		return "tailing"
	case stateCollecting:
		return "collecting"
	case stateRetraining:
		return "retraining"
	case stateShadowEval:
		return "shadow-eval"
	case statePromoting:
		return "promoting"
	}
	return "unknown"
}

func (l *Loop) setState(s loopState) {
	l.m.state.Set(float64(s))
	l.mirror(func(st *Status) { st.State = s.String() })
}

// Status is the externally visible snapshot of the state machine, served
// as JSON on GET /v1/online/status and consumed by the loop-smoke gate.
type Status struct {
	Enabled bool   `json:"enabled"`
	State   string `json:"state"`
	Cycles  uint64 `json:"cycles"`

	WindowRecords  int    `json:"window_records"`
	WindowCapacity int    `json:"window_capacity"`
	MinWindow      int    `json:"min_window"`
	LastSeq        int    `json:"last_seq"`
	TailedTotal    uint64 `json:"tailed_total"`

	Retrains        uint64 `json:"retrains"`
	RetrainEpochs   uint64 `json:"retrain_epochs"`
	RetrainFailures uint64 `json:"retrain_failures"`

	ShadowEvals        uint64  `json:"shadow_evals"`
	LastCandidateScore float64 `json:"last_candidate_score"`
	LastServingScore   float64 `json:"last_serving_score"`
	Margin             float64 `json:"margin"`

	Promotions        uint64 `json:"promotions"`
	Rejections        uint64 `json:"rejections"`
	Rollbacks         uint64 `json:"rollbacks"`
	ServingGeneration int64  `json:"serving_generation"`

	LastError     string `json:"last_error,omitempty"`
	LastCycleUnix int64  `json:"last_cycle_unix,omitempty"`
}

// Status returns a consistent copy of the loop's externally visible state.
func (l *Loop) Status() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.st
	// The generation can move outside cycles (operator reloads); report
	// the live value so the smoke gate and dashboards never read stale.
	_, st.ServingGeneration = l.cfg.Serving.Current()
	return st
}

// StatusHandler serves GET /v1/online/status.
func (l *Loop) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(l.Status())
	})
}
