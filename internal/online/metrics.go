package online

import "schedinspector/internal/obs"

// The schedinspector_online_* family mirrors the state machine onto
// /metrics so the loop is operable from a dashboard alone: window fill,
// retrain throughput, shadow-eval scores, and the
// promotion/rejection/rollback ledger.

type metricsSet struct {
	state           *obs.Gauge
	windowRecords   *obs.Gauge
	tailed          *obs.Counter
	corruptWindows  *obs.Counter
	cycles          *obs.Counter
	retrains        *obs.Counter
	retrainEpochs   *obs.Counter
	retrainFailures *obs.Counter
	shadowEvals     *obs.Counter
	candScore       *obs.Gauge
	servScore       *obs.Gauge
	promotions      *obs.Counter
	rejections      *obs.Counter
	rollbacks       *obs.Counter
}

func newMetricsSet(r *obs.Registry) *metricsSet {
	if r == nil {
		// A private registry keeps every metric pointer non-nil so the
		// loop never branches on instrumentation.
		r = obs.NewRegistry()
	}
	return &metricsSet{
		state: r.Gauge("schedinspector_online_state",
			"Online loop state: 0 idle, 1 tailing, 2 collecting, 3 retraining, 4 shadow-eval, 5 promoting.", nil),
		windowRecords: r.Gauge("schedinspector_online_window_records",
			"Decisions currently in the replay window.", nil),
		tailed: r.Counter("schedinspector_online_tailed_decisions_total",
			"Decisions tailed from the flight ring into the replay window.", nil),
		corruptWindows: r.Counter("schedinspector_online_corrupt_windows_total",
			"Ring images or window reconstructions that failed to decode/validate (the loop kept serving).", nil),
		cycles: r.Counter("schedinspector_online_cycles_total",
			"Online loop cycles started.", nil),
		retrains: r.Counter("schedinspector_online_retrains_total",
			"Candidate retrains started.", nil),
		retrainEpochs: r.Counter("schedinspector_online_retrain_epochs_total",
			"Fine-tuning epochs completed across all retrains.", nil),
		retrainFailures: r.Counter("schedinspector_online_retrain_failures_total",
			"Retrains that errored or were interrupted (candidate discarded).", nil),
		shadowEvals: r.Counter("schedinspector_online_shadow_evals_total",
			"Shadow evaluations run (candidate-vs-serving and rollback checks).", nil),
		candScore: r.Gauge("schedinspector_online_candidate_score",
			"Latest candidate shadow-eval score (mean relative improvement on the held-out window).", nil),
		servScore: r.Gauge("schedinspector_online_serving_score",
			"Latest serving-model shadow-eval score on the same held-out window.", nil),
		promotions: r.Counter("schedinspector_online_promotions_total",
			"Candidates promoted into serving.", nil),
		rejections: r.Counter("schedinspector_online_rejections_total",
			"Candidates rejected (margin not cleared, diverged, or shadow eval failed).", nil),
		rollbacks: r.Counter("schedinspector_online_rollbacks_total",
			"Promotions rolled back after regressing on a fresh holdout.", nil),
	}
}
