// Package online closes the continual-learning loop inside inspectord:
// record → retrain → shadow-evaluate → promote.
//
// The daemon already records every served decision (features, logits,
// action, cluster context) into the flight-recorder ring, and already
// hot-swaps generations atomically through the serve collector. This
// package wires those pieces into a background retrainer:
//
//  1. Tail the live decision stream (obs.TraceRing.Snapshot images,
//     deduplicated by the serving path's lifetime Seq counter) into a
//     bounded sliding replay window.
//  2. Once the window is full enough, reconstruct a synthetic training
//     trace from the older portion of the window and fine-tune a
//     candidate off the serving path: a warm-started trainer
//     (core.NewTrainerFrom — same weights, feature mode, and normalizer
//     as the serving model) runs a few epochs through the exact
//     BeginEpoch/RolloutShard/ApplyDeltas phases offline training uses.
//  3. Shadow-evaluate: score the candidate AND the serving model with
//     core.Evaluate on a held-out trace reconstructed from the newest
//     portion of the window — same sequences, same seeds, the paper's
//     reward metric — and promote only if the candidate clears a
//     configurable margin.
//  4. Promote through the existing swap path (generation-tracked, never
//     tears against in-flight waves), then re-check on the next cycle's
//     fresh holdout and roll back if the promotion regressed.
//
// Every failure mode — corrupt window image, reconstruction that does not
// validate, diverging candidate, retrain crash or cancellation — degrades
// to "keep serving the current model": the loop only ever touches the
// served snapshot through one Swap call on a candidate that won its
// shadow evaluation.
package online

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"schedinspector/internal/ckpt"
	"schedinspector/internal/core"
	"schedinspector/internal/obs"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

// Snapshotter supplies self-contained .ftrace images of the live decision
// stream. *obs.TraceRing implements it; serve.Handler.TraceRing() is the
// production source.
type Snapshotter interface {
	Snapshot() []byte
}

// Server is the serving surface the loop reads candidates' competition
// from and promotes into. serve.Handler implements it.
type Server interface {
	// Current returns the inspector presently answering decisions and its
	// generation, as one consistent pair.
	Current() (*core.Inspector, int64)
	// Swap atomically replaces the served inspector (next generation).
	Swap(*core.Inspector)
}

// Config parameterizes the loop. Source and Serving are required;
// everything else has serving-friendly defaults.
type Config struct {
	Source  Snapshotter
	Serving Server

	// Registry, when non-nil, receives the schedinspector_online_* metric
	// family (pass the serve handler's registry so the state machine shows
	// up on the daemon's /metrics).
	Registry *obs.Registry

	Policy   sched.Policy  // base scheduler for replay/eval (default SJF)
	Interval time.Duration // cycle period (default 30s)

	// Margin is the shadow-evaluation improvement a candidate must clear
	// over the serving model to be promoted, in absolute units of
	// EvalResult.MeanImprovement (0 = any non-regression promotes).
	Margin float64

	MinWindow   int     // decisions required before retraining (default 512)
	MaxWindow   int     // sliding-window bound (default 8192)
	HoldoutFrac float64 // newest fraction of the window held out for shadow eval (default 0.2)

	// Fine-tuning shape. Deliberately small: the loop runs on the serving
	// box and must stay off the hot path's CPU budget.
	Epochs int     // retrain epochs per cycle (default 2)
	Batch  int     // trajectories per epoch (default 8)
	SeqLen int     // jobs per trajectory, clamped to the window (default 64)
	LR     float64 // fine-tune learning rate (default 1e-4)

	ShadowSequences int // eval sequences per shadow arm (default 8)
	ShadowSeqLen    int // jobs per eval sequence, clamped (default 64)

	Workers int   // rollout/eval parallelism (0 = one per CPU)
	Seed    int64 // base seed; each cycle derives its own streams

	// PromotedDir, when set, persists every promoted candidate as a full
	// trainer checkpoint (ckpt container, CRC-verified) named by serving
	// generation, so a restarted daemon can -model the newest survivor.
	PromotedDir  string
	PromotedKeep int // checkpoints retained in PromotedDir (default 4)

	// HistoryCap bounds the candidate-verdict audit ring served at
	// /v1/online/history (default DefaultHistoryCap).
	HistoryCap int

	Logf func(string, ...any) // optional progress log
}

func (c Config) withDefaults() Config {
	if c.Policy == nil {
		c.Policy, _ = sched.ByName("SJF")
	}
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 512
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 8192
	}
	if c.MaxWindow < c.MinWindow {
		c.MaxWindow = c.MinWindow
	}
	if c.HoldoutFrac <= 0 || c.HoldoutFrac >= 1 {
		c.HoldoutFrac = 0.2
	}
	if c.Epochs <= 0 {
		c.Epochs = 2
	}
	if c.Batch <= 0 {
		c.Batch = 8
	}
	if c.SeqLen <= 0 {
		c.SeqLen = 64
	}
	if c.LR <= 0 {
		c.LR = 1e-4
	}
	if c.ShadowSequences <= 0 {
		c.ShadowSequences = 8
	}
	if c.ShadowSeqLen <= 0 {
		c.ShadowSeqLen = 64
	}
	if c.PromotedKeep <= 0 {
		c.PromotedKeep = 4
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Loop is the continual-learning state machine. Construct with New, drive
// with Start (or RunCycle directly in tests), observe via Status and the
// registered metrics.
type Loop struct {
	cfg Config
	m   *metricsSet

	// runMu serializes cycles: the ticker goroutine and any direct
	// RunCycle callers (tests) never overlap.
	runMu sync.Mutex

	// Window state, touched only while runMu is held.
	window  []obs.ExplainRecord
	lastSeq int
	prev    *core.Inspector // pre-promotion model awaiting confirmation
	prevGen int64           // generation the promotion produced

	// mu guards the externally visible status mirror.
	mu sync.Mutex
	st Status

	// hist is the bounded candidate-verdict audit ring (own lock).
	hist *candHistory

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}

	// Test seams. Production uses the defaults installed by New.
	candidateFn func(ctx context.Context, serving *core.Inspector, tr *workload.Trace, seed int64) (*core.Inspector, *core.TrainerCheckpoint, error)
	scoreFn     func(insp *core.Inspector, tr *workload.Trace, seed int64) (float64, error)
	epochHook   func(epoch int) // called after each completed retrain epoch
}

// New validates the configuration and builds a loop. The loop is inert
// until Start (or RunCycle) is called.
func New(cfg Config) (*Loop, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("online: Config.Source is required")
	}
	if cfg.Serving == nil {
		return nil, fmt.Errorf("online: Config.Serving is required")
	}
	cfg = cfg.withDefaults()
	if cfg.Policy == nil {
		return nil, fmt.Errorf("online: Config.Policy is required (default SJF unavailable)")
	}
	l := &Loop{
		cfg:     cfg,
		m:       newMetricsSet(cfg.Registry),
		hist:    newCandHistory(cfg.HistoryCap),
		lastSeq: -1,
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	l.candidateFn = l.retrainCandidate
	l.scoreFn = l.shadowScore
	l.st.Enabled = true
	l.st.State = stateIdle.String()
	l.st.Margin = cfg.Margin
	l.st.MinWindow = cfg.MinWindow
	l.st.WindowCapacity = cfg.MaxWindow
	_, l.st.ServingGeneration = cfg.Serving.Current()
	return l, nil
}

// Start launches the background cycle ticker and returns a stop function.
// Stop is idempotent; it cancels any in-flight retrain (which discards the
// candidate and keeps serving) and waits for the cycle goroutine to exit.
// Call stop before tearing down the serving handler.
func (l *Loop) Start(ctx context.Context) (stop func()) {
	ctx, cancel := context.WithCancel(ctx)
	go func() {
		defer close(l.doneCh)
		tick := time.NewTicker(l.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-l.stopCh:
				return
			case <-tick.C:
				l.RunCycle(ctx)
			}
		}
	}()
	return func() {
		l.stopOnce.Do(func() { close(l.stopCh) })
		cancel()
		<-l.doneCh
	}
}

// cycleSeed derives the per-cycle seed stream with a SplitMix64 step so
// consecutive cycles are decorrelated even with Seed = 0.
func cycleSeed(base int64, cycle uint64) int64 {
	z := uint64(base) + (cycle+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// RunCycle executes one pass of the state machine: tail, then — if the
// window is ready — either the post-promotion confirmation check or a
// retrain + shadow evaluation. It never blocks the serving path; every
// error path keeps the current model serving. Safe for concurrent use
// (cycles serialize).
func (l *Loop) RunCycle(ctx context.Context) {
	l.runMu.Lock()
	defer l.runMu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			l.fail(fmt.Errorf("cycle panic: %v", r))
		}
		// Rest at "collecting" while the window is still filling — that is
		// the loop's actual situation between cycles — and "idle" otherwise.
		l.mu.Lock()
		resting := l.st.State == stateCollecting.String()
		l.mu.Unlock()
		if !resting {
			l.setState(stateIdle)
		}
		l.mirror(func(st *Status) {
			st.LastCycleUnix = time.Now().Unix()
			_, st.ServingGeneration = l.cfg.Serving.Current()
		})
	}()
	l.m.cycles.Inc()
	var cycle uint64
	l.mirror(func(st *Status) { st.Cycles++; cycle = st.Cycles })
	seed := cycleSeed(l.cfg.Seed, cycle)

	l.setState(stateTailing)
	l.tail()

	if len(l.window) < l.cfg.MinWindow {
		l.setState(stateCollecting)
		return
	}

	trainTrace, holdTrace, err := l.reconstruct()
	if err != nil {
		l.m.corruptWindows.Inc()
		l.fail(fmt.Errorf("window reconstruction: %w", err))
		return
	}

	if l.prev != nil {
		// A promotion from the last cycle is on probation: judge it on
		// this cycle's fresh holdout before training anything new.
		l.confirmOrRollback(holdTrace, seed, cycle)
		return
	}

	serving, gen := l.cfg.Serving.Current()

	l.setState(stateRetraining)
	l.m.retrains.Inc()
	l.mirror(func(st *Status) { st.Retrains++ })
	cand, candCk, err := l.candidateFn(ctx, serving, trainTrace, seed)
	if err != nil {
		l.m.retrainFailures.Inc()
		l.mirror(func(st *Status) { st.RetrainFailures++ })
		l.fail(fmt.Errorf("retrain: %w", err))
		return
	}
	if !finiteInspector(cand) {
		// Divergence is a rejection, not an error: the loop is healthy,
		// the candidate is not.
		l.m.rejections.Inc()
		l.mirror(func(st *Status) { st.Rejections++ })
		l.record(CandidateRecord{Cycle: cycle, Generation: gen, Verdict: "diverged",
			WindowSize: len(l.window), Detail: "non-finite weights after retrain"})
		l.fail(fmt.Errorf("candidate diverged (non-finite weights)"))
		return
	}

	l.setState(stateShadowEval)
	candScore, errC := l.scoreFn(cand, holdTrace, seed)
	servScore, errS := l.scoreFn(serving, holdTrace, seed)
	l.m.shadowEvals.Inc()
	l.mirror(func(st *Status) { st.ShadowEvals++ })
	if errC != nil || errS != nil || math.IsNaN(candScore) || math.IsNaN(servScore) {
		l.m.rejections.Inc()
		l.mirror(func(st *Status) { st.Rejections++ })
		l.record(CandidateRecord{Cycle: cycle, Generation: gen, Verdict: "eval-failed",
			CandidateScore: candScore, ServingScore: servScore,
			WindowSize: len(l.window),
			Detail:     fmt.Sprintf("cand err=%v serving err=%v", errC, errS)})
		l.fail(fmt.Errorf("shadow eval: cand=(%v, %v) serving=(%v, %v)", candScore, errC, servScore, errS))
		return
	}
	l.m.candScore.Set(candScore)
	l.m.servScore.Set(servScore)
	l.mirror(func(st *Status) {
		st.LastCandidateScore = candScore
		st.LastServingScore = servScore
	})

	if candScore-servScore < l.cfg.Margin {
		l.m.rejections.Inc()
		l.mirror(func(st *Status) { st.Rejections++ })
		l.record(CandidateRecord{Cycle: cycle, Generation: gen, Verdict: "rejected",
			CandidateScore: candScore, ServingScore: servScore,
			Margin: candScore - servScore, WindowSize: len(l.window)})
		l.cfg.Logf("online: cycle %d rejected candidate (%.4f vs %.4f, margin %.4f)",
			cycle, candScore, servScore, l.cfg.Margin)
		return
	}

	l.setState(statePromoting)
	// The generation could have moved under us (operator reload) while we
	// were training; a promotion decided against a stale serving model is
	// void.
	if _, now := l.cfg.Serving.Current(); now != gen {
		l.m.rejections.Inc()
		l.mirror(func(st *Status) { st.Rejections++ })
		l.record(CandidateRecord{Cycle: cycle, Generation: now, Verdict: "stale-generation",
			CandidateScore: candScore, ServingScore: servScore,
			Margin:     candScore - servScore,
			WindowSize: len(l.window),
			Detail:     fmt.Sprintf("serving generation moved %d -> %d during retrain", gen, now)})
		l.fail(fmt.Errorf("serving generation moved %d -> %d during retrain; discarding candidate", gen, now))
		return
	}
	l.cfg.Serving.Swap(cand)
	_, newGen := l.cfg.Serving.Current()
	l.prev, l.prevGen = serving, newGen
	l.m.promotions.Inc()
	l.mirror(func(st *Status) {
		st.Promotions++
		st.ServingGeneration = newGen
	})
	l.record(CandidateRecord{Cycle: cycle, Generation: newGen, Verdict: "promoted",
		CandidateScore: candScore, ServingScore: servScore,
		Margin: candScore - servScore, WindowSize: len(l.window)})
	l.cfg.Logf("online: cycle %d promoted candidate at generation %d (%.4f vs %.4f)",
		cycle, newGen, candScore, servScore)
	l.persistPromoted(candCk, newGen)
}

// confirmOrRollback judges the previous cycle's promotion on a fresh
// holdout: if the pre-promotion model now outscores the serving model by
// more than the margin, the promotion regressed and is rolled back (a
// forward swap to the old weights — generations never rewind). Either way
// the probation ends.
func (l *Loop) confirmOrRollback(hold *workload.Trace, seed int64, cycle uint64) {
	prev := l.prev
	l.prev = nil
	if _, now := l.cfg.Serving.Current(); now != l.prevGen {
		// Someone else swapped since the promotion; the comparison is moot.
		return
	}
	serving, _ := l.cfg.Serving.Current()
	l.setState(stateShadowEval)
	servScore, errS := l.scoreFn(serving, hold, seed)
	prevScore, errP := l.scoreFn(prev, hold, seed)
	l.m.shadowEvals.Inc()
	l.mirror(func(st *Status) { st.ShadowEvals++ })
	if errS != nil || errP != nil || math.IsNaN(servScore) || math.IsNaN(prevScore) {
		// Can't judge: keep the promoted model serving, end probation.
		l.fail(fmt.Errorf("rollback check: serving=(%v, %v) prev=(%v, %v)", servScore, errS, prevScore, errP))
		return
	}
	if prevScore-servScore > math.Max(l.cfg.Margin, 0) {
		l.cfg.Serving.Swap(prev)
		_, gen := l.cfg.Serving.Current()
		l.m.rollbacks.Inc()
		l.mirror(func(st *Status) {
			st.Rollbacks++
			st.ServingGeneration = gen
		})
		l.record(CandidateRecord{Cycle: cycle, Generation: gen, Verdict: "rolled-back",
			CandidateScore: servScore, ServingScore: prevScore,
			Margin: servScore - prevScore, WindowSize: len(l.window),
			Detail: "promoted model regressed on the probation holdout"})
		l.cfg.Logf("online: rolled back promotion (%.4f vs %.4f) at generation %d",
			servScore, prevScore, gen)
		return
	}
	l.record(CandidateRecord{Cycle: cycle, Generation: l.prevGen, Verdict: "confirmed",
		CandidateScore: servScore, ServingScore: prevScore,
		Margin: servScore - prevScore, WindowSize: len(l.window)})
	l.cfg.Logf("online: promotion confirmed (%.4f vs %.4f)", servScore, prevScore)
}

// persistPromoted writes the promoted candidate's full trainer checkpoint
// into PromotedDir (CRC-verified ckpt container, pruned to PromotedKeep).
// Persistence failures never affect serving; they are logged and surfaced
// on status.
func (l *Loop) persistPromoted(ck *core.TrainerCheckpoint, gen int64) {
	if l.cfg.PromotedDir == "" || ck == nil {
		return
	}
	err := func() error {
		payload, err := ck.Encode()
		if err != nil {
			return err
		}
		if err := os.MkdirAll(l.cfg.PromotedDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(l.cfg.PromotedDir, ckpt.FileName(int(gen)))
		if err := ckpt.Write(path, core.TrainerCheckpointVersion, payload); err != nil {
			return err
		}
		return ckpt.Prune(l.cfg.PromotedDir, l.cfg.PromotedKeep)
	}()
	if err != nil {
		l.fail(fmt.Errorf("persist promoted generation %d: %w", gen, err))
	}
}

// fail records a degraded-but-serving outcome: the error is logged and
// mirrored to status, nothing else changes.
func (l *Loop) fail(err error) {
	l.cfg.Logf("online: %v", err)
	l.mirror(func(st *Status) { st.LastError = err.Error() })
}

func (l *Loop) mirror(fn func(*Status)) {
	l.mu.Lock()
	fn(&l.st)
	l.mu.Unlock()
}

// finiteInspector reports whether every policy/value weight is finite. A
// fine-tune on a weird window can diverge; non-finite weights must never
// reach the serving snapshot.
func finiteInspector(in *core.Inspector) bool {
	if in == nil || in.Agent == nil {
		return false
	}
	finite := func(rows [][]float64) bool {
		for _, row := range rows {
			for _, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	p, v := in.Agent.Policy, in.Agent.Value
	if p == nil || v == nil {
		return false
	}
	return finite(p.W) && finite(p.B) && finite(v.W) && finite(v.B)
}
