package online

import (
	"fmt"

	"schedinspector/internal/explain"
	"schedinspector/internal/obs"
	"schedinspector/internal/workload"
)

// Replay-window management: tailing the live flight ring and turning a
// window of served decisions back into a workload trace the trainer and
// evaluator can replay.

// Reconstruction floors: a window that deduplicates down to fewer jobs
// than this cannot support even a clamped training sequence or a
// meaningful shadow evaluation, so the cycle keeps collecting instead.
const (
	minTrainJobs   = 8
	minHoldoutJobs = 4
)

// tail pulls a fresh ring snapshot and appends the decisions the loop has
// not seen yet (Seq-deduplicated) to the sliding window. A corrupt image
// counts against corrupt_windows but its decoded prefix is still consumed
// — a torn tail loses the torn records, never the loop.
func (l *Loop) tail() {
	img := l.cfg.Source.Snapshot()
	recs, newest, err := explain.TailDecisions(img, l.lastSeq)
	if err != nil {
		l.m.corruptWindows.Inc()
		l.fail(fmt.Errorf("tail: %w", err))
	}
	l.lastSeq = newest
	if len(recs) > 0 {
		l.window = append(l.window, recs...)
		l.m.tailed.Add(float64(len(recs)))
	}
	if over := len(l.window) - l.cfg.MaxWindow; over > 0 {
		// Copy down so the evicted records' backing array is released.
		l.window = append(l.window[:0:0], l.window[over:]...)
	}
	l.m.windowRecords.Set(float64(len(l.window)))
	l.mirror(func(st *Status) {
		st.WindowRecords = len(l.window)
		st.TailedTotal += uint64(len(recs))
		st.LastSeq = l.lastSeq
	})
}

// reconstruct splits the window by time — older records train, the newest
// HoldoutFrac are held out for shadow evaluation — and rebuilds a
// validated workload trace from each part. Held-out decisions are by
// construction decisions the candidate never trained on.
func (l *Loop) reconstruct() (train, hold *workload.Trace, err error) {
	n := len(l.window)
	holdN := int(float64(n) * l.cfg.HoldoutFrac)
	if holdN < minHoldoutJobs {
		holdN = minHoldoutJobs
	}
	if holdN >= n {
		return nil, nil, fmt.Errorf("window of %d records cannot spare a holdout", n)
	}
	train, err = ReconstructTrace(l.window[:n-holdN], "online-train")
	if err != nil {
		return nil, nil, err
	}
	hold, err = ReconstructTrace(l.window[n-holdN:], "online-holdout")
	if err != nil {
		return nil, nil, err
	}
	if train.Len() < minTrainJobs || hold.Len() < minHoldoutJobs {
		return nil, nil, fmt.Errorf("window reconstructs to %d train / %d holdout jobs, need %d/%d",
			train.Len(), hold.Len(), minTrainJobs, minHoldoutJobs)
	}
	return train, hold, nil
}

// ReconstructTrace converts a window of served decision records into a
// synthetic replay trace for retraining and shadow evaluation.
//
// What the decision stream does and does not contain shapes the mapping:
//
//   - Re-inspections are dropped: a record with Rejections > 0 is the same
//     job coming back after an earlier rejection, not a new arrival.
//   - Run is unobservable at decision time (the job had not finished when
//     the record was emitted), so the estimate stands in for the runtime —
//     the same information the serving model itself decided on.
//   - Exact arrival times are likewise not in the record, so arrivals are
//     spaced evenly at a Little's-law estimate of the inter-arrival gap:
//     mean waiting time over mean queue length. This preserves the
//     window's load level, which is what the features the model trains on
//     (queue length, utilization, wait) actually respond to.
//
// The result is validated; an error means the window cannot be replayed
// and the cycle must keep the current model serving.
func ReconstructTrace(recs []obs.ExplainRecord, name string) (*workload.Trace, error) {
	var (
		kept              []obs.ExplainRecord
		waitSum, queueSum float64
		maxProcs          int
	)
	for _, r := range recs {
		if r.Rejections > 0 {
			continue
		}
		if r.Procs <= 0 || r.Est <= 0 {
			continue
		}
		kept = append(kept, r)
		if r.Wait > 0 {
			waitSum += r.Wait
		}
		if r.QueueLen > 1 {
			queueSum += float64(r.QueueLen)
		} else {
			queueSum++
		}
		if r.TotalProcs > maxProcs {
			maxProcs = r.TotalProcs
		}
		if r.Procs > maxProcs {
			maxProcs = r.Procs
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("online: window %q reconstructs to no first-inspection jobs", name)
	}
	gap := 1.0
	if waitSum > 0 && queueSum > 0 {
		if g := (waitSum / float64(len(kept))) / (queueSum / float64(len(kept))); g > 0 {
			gap = g
		}
	}
	jobs := make([]workload.Job, len(kept))
	for i, r := range kept {
		jobs[i] = workload.Job{
			ID:     i + 1,
			Submit: float64(i) * gap,
			Run:    r.Est,
			Est:    r.Est,
			Procs:  r.Procs,
		}
	}
	tr := &workload.Trace{Name: name, MaxProcs: maxProcs, Jobs: jobs}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("online: reconstructed window %q invalid: %w", name, err)
	}
	return tr, nil
}
