package online

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"schedinspector/internal/core"
	"schedinspector/internal/workload"
)

// TestHistoryRecordsVerdicts drives the loop through reject → promote →
// rollback → promote → confirm and checks the audit ring saw every
// verdict in order, with both shadow-eval arms attached.
func TestHistoryRecordsVerdicts(t *testing.T) {
	ring := newTestRing(120)
	serving := testInspector(1)
	srv := newFakeServer(serving)
	cand := testInspector(2)
	l, err := New(Config{
		Source: ringSource{ring}, Serving: srv,
		MinWindow: 50, Margin: 0.05, HistoryCap: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	l.candidateFn = func(context.Context, *core.Inspector, *workload.Trace, int64) (*core.Inspector, *core.TrainerCheckpoint, error) {
		return cand, nil, nil
	}
	scores := map[*core.Inspector]float64{cand: 0.10, serving: 0.08}
	l.scoreFn = func(in *core.Inspector, _ *workload.Trace, _ int64) (float64, error) {
		return scores[in], nil
	}

	l.RunCycle(context.Background()) // rejected (0.02 < 0.05)
	scores[cand] = 0.20
	l.RunCycle(context.Background()) // promoted → gen 2
	scores[serving] = 0.9
	scores[cand] = 0.1
	l.RunCycle(context.Background()) // rolled back → gen 3
	scores[cand] = 2.0
	scores[serving] = 0.0
	l.RunCycle(context.Background()) // promoted → gen 4
	l.RunCycle(context.Background()) // confirmed

	recs := l.History()
	wantVerdicts := []string{"rejected", "promoted", "rolled-back", "promoted", "confirmed"}
	if len(recs) != len(wantVerdicts) {
		t.Fatalf("records: %+v", recs)
	}
	for i, want := range wantVerdicts {
		if recs[i].Verdict != want {
			t.Errorf("record %d verdict = %q, want %q (%+v)", i, recs[i].Verdict, want, recs[i])
		}
		if recs[i].Unix == 0 || recs[i].Cycle != uint64(i+1) || recs[i].WindowSize == 0 {
			t.Errorf("record %d missing bookkeeping: %+v", i, recs[i])
		}
	}
	if recs[0].CandidateScore != 0.10 || recs[0].ServingScore != 0.08 {
		t.Errorf("rejection scores: %+v", recs[0])
	}
	if recs[1].Generation != 2 || recs[1].Margin <= 0 {
		t.Errorf("promotion record: %+v", recs[1])
	}
	if recs[2].Generation != 3 {
		t.Errorf("rollback record: %+v", recs[2])
	}
	if recs[4].Generation != 4 {
		t.Errorf("confirmation record: %+v", recs[4])
	}
}

func TestHistoryRingBound(t *testing.T) {
	h := newCandHistory(3)
	for i := 1; i <= 10; i++ {
		h.add(CandidateRecord{Cycle: uint64(i)})
	}
	recs := h.list()
	if len(recs) != 3 || recs[0].Cycle != 8 || recs[2].Cycle != 10 {
		t.Fatalf("ring contents: %+v", recs)
	}
}

func TestHistoryHandler(t *testing.T) {
	srv := newFakeServer(testInspector(1))
	l, err := New(Config{Source: ringSource{newTestRing(1)}, Serving: srv})
	if err != nil {
		t.Fatal(err)
	}
	l.record(CandidateRecord{Cycle: 1, Generation: 2, Verdict: "promoted",
		CandidateScore: 1.5, ServingScore: 1.2, Margin: 0.3, WindowSize: 512})

	rec := httptest.NewRecorder()
	l.HistoryHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/online/history", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var doc struct {
		Capacity   int               `json:"capacity"`
		Candidates []CandidateRecord `json:"candidates"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, rec.Body.String())
	}
	if doc.Capacity != DefaultHistoryCap || len(doc.Candidates) != 1 {
		t.Fatalf("doc: %+v", doc)
	}
	c := doc.Candidates[0]
	if c.Verdict != "promoted" || c.CandidateScore != 1.5 || c.Margin != 0.3 || c.Unix == 0 {
		t.Fatalf("candidate: %+v", c)
	}

	post := httptest.NewRecorder()
	l.HistoryHandler().ServeHTTP(post, httptest.NewRequest("POST", "/v1/online/history", nil))
	if post.Code != 405 {
		t.Fatalf("POST status %d, want 405", post.Code)
	}
}
