package expt

import (
	"fmt"
	"text/tabwriter"

	"schedinspector/internal/core"
	"schedinspector/internal/metrics"
	"schedinspector/internal/sched"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

// Table1 reproduces the motivating example (Figure 1 / Table 1): the two
// hand-built scenarios on a 5-node cluster under SJF, with and without an
// inspector that rejects J0's first decision. One figure-minute is 60 s.
func Table1(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Table 1: performance metrics of the motivating example")
	fmt.Fprintln(o.Out, "(paper: a-NoInspect 3 / 1.77, a-Inspected 1.53; b-NoInspect 5 / 2.45, b-Inspected 2 / 1.40)")

	caseA := []workload.Job{
		{ID: 1, Submit: 0, Run: 60, Est: 60, Procs: 2},    // Jp
		{ID: 2, Submit: 0, Run: 300, Est: 300, Procs: 3},  // J0
		{ID: 3, Submit: 0, Run: 300, Est: 300, Procs: 2},  // J1
		{ID: 4, Submit: 60, Run: 180, Est: 180, Procs: 3}, // J2
	}
	caseB := []workload.Job{
		{ID: 1, Submit: 0, Run: 180, Est: 180, Procs: 3},  // Jp
		{ID: 2, Submit: 0, Run: 300, Est: 300, Procs: 4},  // J0
		{ID: 3, Submit: 60, Run: 180, Est: 180, Procs: 2}, // J1
	}
	rejectJ0Once := func(s *sim.State) bool { return s.Job.ID == 2 && s.Rejections == 0 }

	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  case\twait (min)\tbsld\n")
	for _, c := range []struct {
		name string
		jobs []workload.Job
		insp sim.Inspector
	}{
		{"Case(a)-NoInspect", caseA, nil},
		{"Case(a)-Inspected", caseA, rejectJ0Once},
		{"Case(b)-NoInspect", caseB, nil},
		{"Case(b)-Inspected", caseB, rejectJ0Once},
	} {
		res, err := sim.Run(c.jobs, sim.Config{MaxProcs: 5, Policy: sched.SJF(), Inspector: c.insp})
		if err != nil {
			return err
		}
		// Metrics exclude the preliminary job Jp (ID 1), as the paper does.
		var keep []metrics.JobResult
		for _, r := range res.Results {
			if r.ID != 1 {
				keep = append(keep, r)
			}
		}
		s := metrics.Compute(keep, 5)
		fmt.Fprintf(tw, "  %s\t%.2f\t%.2f\n", c.name, s.AvgWait/60, s.AvgBSLD)
	}
	return tw.Flush()
}

// Table2 reproduces the trace-statistics table over the synthetic
// substitutes for the archive logs.
func Table2(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Table 2: job traces in use")
	fmt.Fprintln(o.Out, "(paper: SDSC-SP2 128/1055/6687/11, CTC-SP2 338/379/11277/11, HPC2N 240/538/17024/6, Lublin 256/771/4862/22)")
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  name\tcluster size\tinterval (s)\test_j (s)\tres_j\tjobs\toffered load\n")
	for _, name := range workload.PaperTraces() {
		tr, err := o.trace(name)
		if err != nil {
			return err
		}
		s := workload.ComputeStats(tr)
		fmt.Fprintf(tw, "  %s\t%d\t%.0f\t%.0f\t%.1f\t%d\t%.2f\n",
			name, s.MaxProcs, s.MeanInterval, s.MeanEst, s.MeanProcs, s.Jobs, workload.OfferedLoad(tr))
	}
	return tw.Flush()
}

// Table4 reproduces the cross-trace generalization study: the base SJF
// scheduler on each trace Y, an inspector trained on SDSC-SP2 applied to Y
// (rebinding only the feature normalizer), and an inspector trained on Y
// itself.
func Table4(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Table 4: SchedInspector generalization across traces (bsld; SJF base)")
	fmt.Fprintln(o.Out, "(paper: SDSC-trained helps every trace; same-trace training helps most)")

	spec := trainSpec{traceName: "SDSC-SP2", policy: "SJF", metric: metrics.BSLD}
	sdscTrainer, _, _, err := o.train(spec)
	if err != nil {
		return err
	}
	sdscModel := sdscTrainer.Inspector()

	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  trace Y\tBase->Y\t'SDSC-SP2'->Y\tY->Y\n")
	for _, name := range workload.PaperTraces() {
		ySpec := trainSpec{traceName: name, policy: "SJF", metric: metrics.BSLD}

		var ownModel *core.Inspector
		var tr *workload.Trace
		if name == spec.traceName {
			ownModel = sdscModel
			tr, err = o.trace(name)
			if err != nil {
				return err
			}
		} else {
			var yTrainer *core.Trainer
			yTrainer, _, tr, err = o.train(ySpec)
			if err != nil {
				return err
			}
			ownModel = yTrainer.Inspector()
		}

		evalCfg, err := o.evalConfig(tr, ySpec)
		if err != nil {
			return err
		}
		cross := sdscModel.WithNormalizer(core.NormalizerForTrace(tr, metrics.BSLD))
		crossRes, err := core.Evaluate(cross, evalCfg)
		if err != nil {
			return err
		}
		ownRes, err := core.Evaluate(ownModel, evalCfg)
		if err != nil {
			return err
		}
		baseBox, crossBox := crossRes.Boxes(metrics.BSLD)
		_, ownBox := ownRes.Boxes(metrics.BSLD)
		fmt.Fprintf(tw, "  %s\t%.2f\t%.2f\t%.2f\n", name, baseBox.Mean, crossBox.Mean, ownBox.Mean)
	}
	return tw.Flush()
}

// Table5 reproduces the utilization study: system utilization of the base
// SJF and F1 schedulers against their inspected counterparts, with and
// without backfilling, across all four traces.
func Table5(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Table 5: system utilization with/without SchedInspector")
	fmt.Fprintln(o.Out, "(paper: deltas are ~1% or less in almost all cases)")
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  backfill\ttrace\tpolicy\tBASE util\tINSP util\tdelta\tbsld impr.\n")
	for _, backfill := range []bool{false, true} {
		for _, traceName := range workload.PaperTraces() {
			for _, polName := range []string{"SJF", "F1"} {
				spec := trainSpec{traceName: traceName, policy: polName, metric: metrics.BSLD, backfill: backfill}
				trainer, _, tr, err := o.train(spec)
				if err != nil {
					return err
				}
				evalCfg, err := o.evalConfig(tr, spec)
				if err != nil {
					return err
				}
				res, err := core.Evaluate(trainer.Inspector(), evalCfg)
				if err != nil {
					return err
				}
				baseU, inspU := res.Boxes(metrics.Util)
				fmt.Fprintf(tw, "  %v\t%s\t%s\t%.2f%%\t%.2f%%\t%+.2f%%\t%+.1f%%\n",
					backfill, traceName, polName,
					100*baseU.Mean, 100*inspU.Mean, 100*(inspU.Mean-baseU.Mean),
					100*res.MeanImprovement(metrics.BSLD))
			}
		}
	}
	return tw.Flush()
}
