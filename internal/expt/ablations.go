package expt

import (
	"fmt"
	"text/tabwriter"

	"schedinspector/internal/core"
	"schedinspector/internal/metrics"
	"schedinspector/internal/rl"
	"schedinspector/internal/rlsched"
	"schedinspector/internal/sched"
	"schedinspector/internal/sim"
	"schedinspector/internal/stats"
	"schedinspector/internal/workload"
)

// Extension experiments: ablations of the design choices DESIGN.md calls
// out (the rejection hyperparameters of §4.1, the actor-critic of §3.1, the
// backfilling variant of §3.2) and the paper's §7 future-work item —
// SchedInspector on top of a learned RLScheduler-style policy.

// AblateInterval sweeps MAX_INTERVAL, the retry cut-off after a rejection.
// The paper fixes it at 600 s "to avoid idling resources for too long";
// this sweep shows the trade-off directly: longer intervals buy bigger
// bsld improvements at growing utilization cost.
func AblateInterval(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Ablation: MAX_INTERVAL retry cut-off (SJF, SDSC-SP2, bsld; paper fixes 600s)")
	tr, err := o.trace("SDSC-SP2")
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  MAX_INTERVAL\tbsld impr.\tutil delta\trej.ratio\n")
	for _, interval := range []float64{60, 300, 600, 1800, 3600} {
		trainer, err := core.NewTrainer(core.TrainConfig{
			Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
			SeqLen: o.SeqLen, Batch: o.Batch, Seed: o.Seed + 1, Workers: o.Workers,
			MaxInterval: interval,
		})
		if err != nil {
			return err
		}
		if _, err := trainer.Train(o.Epochs, nil); err != nil {
			return err
		}
		res, err := core.Evaluate(trainer.Inspector(), core.EvalConfig{
			Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
			Sequences: o.EvalSequences, SeqLen: o.EvalSeqLen, Seed: o.Seed + 2, Workers: o.Workers,
			MaxInterval: interval,
		})
		if err != nil {
			return err
		}
		ub, ui := res.Boxes(metrics.Util)
		fmt.Fprintf(tw, "  %.0fs\t%+.1f%%\t%+.2f%%\t%.2f\n",
			interval, 100*res.MeanImprovement(metrics.BSLD), 100*(ui.Mean-ub.Mean), res.RejectionRatio())
	}
	return tw.Flush()
}

// AblateRejectionCap sweeps MAX_REJECTION_TIMES, the per-job rejection cap
// (paper: 72, i.e. up to 12 hours of deferral).
func AblateRejectionCap(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Ablation: MAX_REJECTION_TIMES cap (SJF, SDSC-SP2, bsld; paper fixes 72)")
	tr, err := o.trace("SDSC-SP2")
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  cap\tbsld impr.\tutil delta\tmbsld impr.\n")
	for _, cap := range []int{4, 16, 72, 288} {
		trainer, err := core.NewTrainer(core.TrainConfig{
			Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
			SeqLen: o.SeqLen, Batch: o.Batch, Seed: o.Seed + 1, Workers: o.Workers,
			MaxRejections: cap,
		})
		if err != nil {
			return err
		}
		if _, err := trainer.Train(o.Epochs, nil); err != nil {
			return err
		}
		res, err := core.Evaluate(trainer.Inspector(), core.EvalConfig{
			Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
			Sequences: o.EvalSequences, SeqLen: o.EvalSeqLen, Seed: o.Seed + 2, Workers: o.Workers,
			MaxRejections: cap,
		})
		if err != nil {
			return err
		}
		ub, ui := res.Boxes(metrics.Util)
		fmt.Fprintf(tw, "  %d\t%+.1f%%\t%+.2f%%\t%+.1f%%\n",
			cap, 100*res.MeanImprovement(metrics.BSLD), 100*(ui.Mean-ub.Mean),
			100*res.MeanImprovement(metrics.MBSLD))
	}
	return tw.Flush()
}

// AblateCritic compares the full actor-critic against a critic-less
// REINFORCE-style agent. The paper (§3.1) reports high training variance
// without the value network; this quantifies it as the standard deviation
// of the per-epoch improvement over the back half of training.
func AblateCritic(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Ablation: actor-critic vs no-critic training variance (SJF, SDSC-SP2, bsld)")
	fmt.Fprintln(o.Out, "(paper §3.1: 'Without the value network, we observed high variations during the training')")
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  agent\tconverged impr.\timpr. stddev (2nd half)\tfinal rej.ratio\n")
	for _, noCritic := range []bool{false, true} {
		tr, err := o.trace("SDSC-SP2")
		if err != nil {
			return err
		}
		trainer, err := core.NewTrainer(core.TrainConfig{
			Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
			SeqLen: o.SeqLen, Batch: o.Batch, Seed: o.Seed + 1, Workers: o.Workers,
			PPO: rl.PPOConfig{NoCritic: noCritic},
		})
		if err != nil {
			return err
		}
		hist, err := trainer.Train(o.Epochs, nil)
		if err != nil {
			return err
		}
		half := hist[len(hist)/2:]
		vals := make([]float64, len(half))
		for i, h := range half {
			vals[i] = h.MeanImprovement
		}
		name := "actor-critic"
		if noCritic {
			name = "no critic"
		}
		fmt.Fprintf(tw, "  %s\t%.2f\t%.2f\t%.2f\n",
			name, converged(hist, func(h core.EpochStats) float64 { return h.MeanImprovement }, 5),
			stats.Std(vals), hist[len(hist)-1].RejectionRatio)
	}
	return tw.Flush()
}

// AblateBackfillVariant compares no backfilling, EASY, and conservative
// backfilling as the simulated environment, with and without a trained
// inspector on top.
func AblateBackfillVariant(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Ablation: backfilling variant in the simulated environment (SJF, SDSC-SP2, bsld)")
	tr, err := o.trace("SDSC-SP2")
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  variant\tbase bsld\tinsp bsld\timprovement\tbase util\n")
	for _, v := range []struct {
		name                   string
		backfill, conservative bool
	}{
		{"none", false, false},
		{"EASY", true, false},
		{"conservative", true, true},
	} {
		trainer, err := core.NewTrainer(core.TrainConfig{
			Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD, Backfill: v.backfill,
			SeqLen: o.SeqLen, Batch: o.Batch, Seed: o.Seed + 1, Workers: o.Workers,
		})
		if err != nil {
			return err
		}
		if _, err := trainer.Train(o.Epochs, nil); err != nil {
			return err
		}
		// Evaluation must use the matching simulator variant, including the
		// conservative planner the trainer does not model.
		res, err := evalWithVariant(trainer.Inspector(), tr, o, v.backfill, v.conservative)
		if err != nil {
			return err
		}
		b, i := res.Boxes(metrics.BSLD)
		ub, _ := res.Boxes(metrics.Util)
		fmt.Fprintf(tw, "  %s\t%.1f\t%.1f\t%+.1f%%\t%.1f%%\n",
			v.name, b.Mean, i.Mean, 100*res.MeanImprovement(metrics.BSLD), 100*ub.Mean)
	}
	return tw.Flush()
}

// evalWithVariant mirrors core.Evaluate but allows the conservative
// backfilling variant, which EvalConfig does not expose.
func evalWithVariant(insp *core.Inspector, tr *workload.Trace, o Options, backfill, conservative bool) (core.EvalResult, error) {
	rng := newSeededRNG(o.Seed + 2)
	lo := tr.Split(0.2)
	hi := tr.Len() - o.EvalSeqLen + 1
	if hi <= lo {
		lo = 0
	}
	simCfg := sim.Config{
		MaxProcs: tr.MaxProcs, Policy: sched.SJF(),
		Backfill: backfill, Conservative: conservative,
	}
	var out core.EvalResult
	for i := 0; i < o.EvalSequences; i++ {
		jobs := tr.RandomWindow(rng, o.EvalSeqLen, lo, hi)
		simCfg.Inspector = nil
		base, err := sim.Run(jobs, simCfg)
		if err != nil {
			return out, err
		}
		out.Base = append(out.Base, base.Summary(tr.MaxProcs))
		simCfg.Inspector = insp.Stochastic()
		ins, err := sim.Run(jobs, simCfg)
		if err != nil {
			return out, err
		}
		out.Insp = append(out.Insp, ins.Summary(tr.MaxProcs))
		out.Inspections += ins.Inspections
		out.Rejections += ins.Rejections
	}
	return out, nil
}

// RLSchedExperiment trains an RLScheduler-style learned policy, compares it
// against SJF and F1, and then trains a SchedInspector on top of the frozen
// learned policy — the paper's §7 future-work item.
func RLSchedExperiment(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Extension: SchedInspector over a learned RLScheduler-style policy (SDSC-SP2, bsld)")
	tr, err := o.trace("SDSC-SP2")
	if err != nil {
		return err
	}

	rlTrainer, err := rlsched.NewTrainer(rlsched.TrainConfig{
		Trace: tr, Metric: metrics.BSLD,
		SeqLen: o.SeqLen, Batch: o.Batch, Seed: o.Seed + 1,
	})
	if err != nil {
		return err
	}
	hist, err := rlTrainer.Train(o.Epochs, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "  RLSched training: reward (pct vs SJF) %.3f -> %.3f over %d epochs\n",
		hist[0].MeanReward, hist[len(hist)-1].MeanReward, len(hist))

	pol := rlTrainer.Policy()
	pol.SetSampling(false, nil)

	// Head-to-head on held-out sequences.
	rng := newSeededRNG(o.Seed + 2)
	lo := tr.Split(0.2)
	var sjfB, f1B, rlB stats.Welford
	for i := 0; i < o.EvalSequences; i++ {
		jobs := tr.RandomWindow(rng, o.EvalSeqLen, lo, 0)
		for _, c := range []struct {
			p sched.Policy
			w *stats.Welford
		}{{sched.SJF(), &sjfB}, {sched.F1(), &f1B}, {pol, &rlB}} {
			res, err := sim.Run(jobs, sim.Config{MaxProcs: tr.MaxProcs, Policy: c.p})
			if err != nil {
				return err
			}
			c.w.Add(res.Summary(tr.MaxProcs).AvgBSLD)
		}
	}
	fmt.Fprintf(o.Out, "  head-to-head mean bsld: SJF %.1f, F1 %.1f, RLSched %.1f\n",
		sjfB.Mean(), f1B.Mean(), rlB.Mean())

	// Inspector on top of the frozen learned policy.
	inspTrainer, err := core.NewTrainer(core.TrainConfig{
		Trace: tr, Policy: pol, Metric: metrics.BSLD,
		SeqLen: o.SeqLen, Batch: o.Batch, Seed: o.Seed + 3, Workers: o.Workers,
	})
	if err != nil {
		return err
	}
	if _, err := inspTrainer.Train(o.Epochs, nil); err != nil {
		return err
	}
	res, err := core.Evaluate(inspTrainer.Inspector(), core.EvalConfig{
		Trace: tr, Policy: pol, Metric: metrics.BSLD,
		Sequences: o.EvalSequences, SeqLen: o.EvalSeqLen, Seed: o.Seed + 4, Workers: o.Workers,
	})
	if err != nil {
		return err
	}
	b, i := res.Boxes(metrics.BSLD)
	fmt.Fprintf(o.Out, "  inspector over RLSched: base %.1f -> inspected %.1f (%+.1f%%), rejection ratio %.2f\n",
		b.Mean, i.Mean, 100*res.MeanImprovement(metrics.BSLD), res.RejectionRatio())
	return nil
}
