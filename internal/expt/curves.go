package expt

import (
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"schedinspector/internal/core"
)

// PlotTelemetry reads a per-epoch training-telemetry file written by the
// TrainLogger hook (`schedinspect train -telemetry out.csv` / `.jsonl`)
// and renders the learning curves as ASCII sparklines — the quick-look
// equivalent of the paper's training-curve figures.
func PlotTelemetry(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var hist []core.EpochStats
	if strings.HasSuffix(path, ".jsonl") {
		hist, err = core.ReadEpochJSONL(f)
	} else {
		hist, err = core.ReadEpochCSV(f)
	}
	if err != nil {
		return err
	}
	if len(hist) == 0 {
		return fmt.Errorf("expt: %s holds no epochs", path)
	}
	fmt.Fprintf(w, "learning curves from %s (%d epochs)\n", path, len(hist))
	series := []struct {
		name string
		get  func(core.EpochStats) float64
	}{
		{"mean_reward", func(h core.EpochStats) float64 { return h.MeanReward }},
		{"pct_improvement", func(h core.EpochStats) float64 { return h.MeanPctImprovement }},
		{"rejection_ratio", func(h core.EpochStats) float64 { return h.RejectionRatio }},
		{"entropy", func(h core.EpochStats) float64 { return h.Entropy }},
		{"approx_kl", func(h core.EpochStats) float64 { return h.ApproxKL }},
		{"policy_loss", func(h core.EpochStats) float64 { return h.PolicyLoss }},
		{"value_loss", func(h core.EpochStats) float64 { return h.ValueLoss }},
	}
	for _, s := range series {
		vals := make([]float64, len(hist))
		for i, h := range hist {
			vals[i] = s.get(h)
		}
		fmt.Fprintf(w, "  %-16s %s  first %.4g  last %.4g  min %.4g  max %.4g\n",
			s.name, sparkline(vals, 40), vals[0], vals[len(vals)-1], minOf(vals), maxOf(vals))
	}
	total := 0.0
	for _, h := range hist {
		total += h.Seconds
	}
	fmt.Fprintf(w, "  total training wall-clock: %.1fs (%.2fs/epoch)\n", total, total/float64(len(hist)))
	return nil
}

// sparkline compresses vals into width cells of eight-level bars.
func sparkline(vals []float64, width int) string {
	levels := []rune("▁▂▃▄▅▆▇█")
	if len(vals) < width {
		width = len(vals)
	}
	lo, hi := minOf(vals), maxOf(vals)
	span := hi - lo
	var b strings.Builder
	for c := 0; c < width; c++ {
		// mean of the epochs mapping to this cell
		i0, i1 := c*len(vals)/width, (c+1)*len(vals)/width
		if i1 == i0 {
			i1 = i0 + 1
		}
		var m float64
		for _, v := range vals[i0:i1] {
			m += v
		}
		m /= float64(i1 - i0)
		lvl := 0
		if span > 0 {
			lvl = int((m - lo) / span * 7)
		}
		if lvl < 0 {
			lvl = 0
		}
		if lvl > 7 {
			lvl = 7
		}
		b.WriteRune(levels[lvl])
	}
	return b.String()
}

func minOf(vals []float64) float64 {
	m := math.Inf(1)
	for _, v := range vals {
		m = math.Min(m, v)
	}
	return m
}

func maxOf(vals []float64) float64 {
	m := math.Inf(-1)
	for _, v := range vals {
		m = math.Max(m, v)
	}
	return m
}
