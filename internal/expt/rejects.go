package expt

import (
	"fmt"
	"io"

	"schedinspector/internal/explain"
)

// PlotRejects renders the reject-rate-vs-utilization curve from a recorded
// decision flight trace (schedinspect train/eval -flight): the behavioral
// signature of §5 — a trained inspector should reject more when the cluster
// is busy, since sending a job back only pays off when the near future
// offers a better slot.
func PlotRejects(w io.Writer, path string) error {
	tr, err := explain.ReadTraceFile(path)
	if err != nil {
		return err
	}
	if len(tr.Records) == 0 {
		return fmt.Errorf("expt: %s holds no decision records", path)
	}
	rejects := 0
	for _, r := range tr.Records {
		if r.Rejected {
			rejects++
		}
	}
	fmt.Fprintf(w, "reject rate vs utilization from %s (%d decisions, %d rejected)\n",
		path, len(tr.Records), rejects)
	return explain.WriteRejectByUtilization(w, tr.RejectByUtilization(10))
}
