package expt

import (
	"bytes"
	"strings"
	"testing"

	"schedinspector/internal/core"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Fatalf("registry has %d experiments, want 20", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.Name == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.Name] {
			t.Errorf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		got, err := ByName(e.Name)
		if err != nil || got.Name != e.Name {
			t.Errorf("ByName(%q): %v", e.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTinyOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Jobs != 20000 || o.Epochs != 25 || o.Batch != 40 {
		t.Errorf("defaults wrong: %+v", o)
	}
	tiny := Tiny(nil).withDefaults()
	if tiny.Jobs != 3000 || tiny.Epochs != 3 {
		t.Errorf("tiny wrong: %+v", tiny)
	}
}

// TestTable1ExactValues checks the motivating example report against the
// values derived in internal/sim's motivating tests (which match Table 1).
func TestTable1ExactValues(t *testing.T) {
	var buf bytes.Buffer
	o := Tiny(&buf)
	if err := Table1(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Case(a)-NoInspect", "3.00", "1.78",
		"Case(a)-Inspected", "1.53",
		"Case(b)-NoInspect", "5.00", "2.47",
		"Case(b)-Inspected", "2.00", "1.40",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2ReportsAllTraces(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(Tiny(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"SDSC-SP2", "CTC-SP2", "HPC2N", "Lublin"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table2 missing %s", name)
		}
	}
}

// TestEveryExperimentRunsTiny smoke-runs the complete registry at tiny
// scale: each experiment must complete without error and produce output.
func TestEveryExperimentRunsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(Tiny(&buf)); err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.Name)
			}
		})
	}
}

func TestConvergedHelper(t *testing.T) {
	hist := []core.EpochStats{
		{MeanImprovement: 0}, {MeanImprovement: 10}, {MeanImprovement: 20}, {MeanImprovement: 30},
	}
	f := func(h core.EpochStats) float64 { return h.MeanImprovement }
	if got := converged(hist, f, 2); got != 25 {
		t.Errorf("converged(last 2) = %v, want 25", got)
	}
	if got := converged(hist, f, 10); got != 15 {
		t.Errorf("converged(clamped) = %v, want 15", got)
	}
	if got := converged(nil, f, 5); got != 0 {
		t.Errorf("converged(empty) = %v", got)
	}
}

func TestPrintCurveSubsamples(t *testing.T) {
	hist := make([]core.EpochStats, 45)
	for i := range hist {
		hist[i] = core.EpochStats{Epoch: i + 1, MeanImprovement: float64(i)}
	}
	var buf bytes.Buffer
	printCurve(&buf, "label:", hist)
	out := buf.String()
	if !strings.Contains(out, "label:") || !strings.Contains(out, "converged:") {
		t.Fatalf("curve output malformed:\n%s", out)
	}
	// the final epoch must always be printed
	if !strings.Contains(out, "45") {
		t.Errorf("final epoch missing:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines > 16 {
		t.Errorf("curve not subsampled: %d lines", lines)
	}
}

func TestMemoKeyDistinguishesConfigs(t *testing.T) {
	o := Tiny(nil).withDefaults()
	a := o.memoKey(trainSpec{traceName: "SDSC-SP2", policy: "SJF"})
	b := o.memoKey(trainSpec{traceName: "SDSC-SP2", policy: "F1"})
	c := o.memoKey(trainSpec{traceName: "SDSC-SP2", policy: "SJF", backfill: true})
	if a == b || a == c || b == c {
		t.Error("memo keys collide across configs")
	}
	o2 := o
	o2.Batch++
	if o2.memoKey(trainSpec{traceName: "SDSC-SP2", policy: "SJF"}) == a {
		t.Error("memo key ignores batch size")
	}
}

func TestResetMemo(t *testing.T) {
	o := Tiny(nil).withDefaults()
	trainMemo[o.memoKey(trainSpec{traceName: "x"})] = cachedTrain{}
	ResetMemo()
	if len(trainMemo) != 0 {
		t.Error("ResetMemo did not clear the cache")
	}
}
