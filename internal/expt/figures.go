package expt

import (
	"fmt"
	"text/tabwriter"

	"schedinspector/internal/core"
	"schedinspector/internal/metrics"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

// Fig4 reproduces the main training curves: SchedInspector on SJF and F1
// across all four traces, optimizing bsld. The paper's claim: curves start
// negative and converge positive on every trace under both policies.
func Fig4(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Figure 4: training curves of SchedInspector (metric bsld)")
	fmt.Fprintln(o.Out, "(paper: all 8 curves converge above 0; e.g. F1 improves 40% on SDSC-SP2, 95% on Lublin)")
	for _, polName := range []string{"SJF", "F1"} {
		for _, traceName := range workload.PaperTraces() {
			spec := trainSpec{traceName: traceName, policy: polName, metric: metrics.BSLD}
			_, hist, _, err := o.train(spec)
			if err != nil {
				return err
			}
			printCurve(o.Out, fmt.Sprintf("%s on %s:", polName, traceName), hist)
		}
	}
	return nil
}

// Fig5 reproduces the feature-building ablation on [SJF, bsld, SDSC-SP2]:
// manual features must beat compacted features, and native (raw) features
// must do worst (the paper observes native never converges positive).
func Fig5(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Figure 5: feature building ablation (SJF, SDSC-SP2, bsld)")
	fmt.Fprintln(o.Out, "(paper: manual 25.1 converged improvement vs compacted 8.7; native never positive)")
	for _, mode := range []core.FeatureMode{core.ManualFeatures, core.CompactedFeatures, core.NativeFeatures} {
		spec := trainSpec{traceName: "SDSC-SP2", policy: "SJF", metric: metrics.BSLD, features: mode}
		_, hist, _, err := o.train(spec)
		if err != nil {
			return err
		}
		printCurve(o.Out, fmt.Sprintf("features=%s:", mode), hist)
	}
	return nil
}

// Fig6 reproduces the reward-function ablation on [SJF, bsld, SDSC-SP2]:
// the percentage reward should converge to the best raw bsld difference
// even though the y-axis metric is exactly what the native reward optimizes.
func Fig6(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Figure 6: reward function ablation (SJF, SDSC-SP2, bsld)")
	fmt.Fprintln(o.Out, "(paper: percentage reward best, then win/loss; native reward suffers high variance)")
	for _, kind := range []core.RewardKind{core.PercentageReward, core.WinLossReward, core.NativeReward} {
		spec := trainSpec{traceName: "SDSC-SP2", policy: "SJF", metric: metrics.BSLD, reward: kind}
		_, hist, _, err := o.train(spec)
		if err != nil {
			return err
		}
		printCurve(o.Out, fmt.Sprintf("reward=%s:", kind), hist)
	}
	return nil
}

// Fig7 reproduces training on the remaining base policies (FCFS, LCFS, SRF,
// SAF) with their rejection ratios. The paper's key observation: FCFS gains
// nothing and its rejection ratio collapses toward zero, because rejecting
// never changes which job FCFS picks next; the others converge positive
// with ratios around 40-50%.
func Fig7(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Figure 7: SchedInspector on other base policies (SDSC-SP2, bsld)")
	fmt.Fprintln(o.Out, "(paper: FCFS converges to ~0 improvement and <10% rejection; LCFS/SRF/SAF converge to 144.9/52.9/34.5)")
	for _, polName := range []string{"FCFS", "LCFS", "SRF", "SAF"} {
		spec := trainSpec{traceName: "SDSC-SP2", policy: polName, metric: metrics.BSLD}
		_, hist, _, err := o.train(spec)
		if err != nil {
			return err
		}
		printCurve(o.Out, polName+":", hist)
	}
	return nil
}

// Fig8 reproduces the test-time study: 50 sequences of 256 jobs sampled
// from the held-out 80% of each trace, scheduled by the base policy and by
// its inspected counterpart; box statistics of bsld.
func Fig8(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Figure 8: test-time scheduling performance (bsld; box stats over sampled sequences)")
	fmt.Fprintln(o.Out, "(paper: inspected mean bsld better by 13.6%-91.6% across traces and policies)")
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  policy\ttrace\tbase mean\tinsp mean\timprovement\twins\tsign-p\t95%% CI on delta\n")
	for _, polName := range []string{"SJF", "F1"} {
		for _, traceName := range workload.PaperTraces() {
			spec := trainSpec{traceName: traceName, policy: polName, metric: metrics.BSLD}
			trainer, _, tr, err := o.train(spec)
			if err != nil {
				return err
			}
			evalCfg, err := o.evalConfig(tr, spec)
			if err != nil {
				return err
			}
			res, err := core.Evaluate(trainer.Inspector(), evalCfg)
			if err != nil {
				return err
			}
			b, i := res.Boxes(metrics.BSLD)
			d := res.Compare(metrics.BSLD, o.Seed+3)
			fmt.Fprintf(tw, "  %s\t%s\t%.1f\t%.1f\t%+.1f%%\t%d/%d\t%.3f\t[%.1f, %.1f]\n",
				polName, traceName, b.Mean, i.Mean, 100*res.MeanImprovement(metrics.BSLD),
				d.Wins, d.N, d.SignPValue, d.CILow, d.CIHigh)
		}
	}
	return tw.Flush()
}

// Fig9 reproduces training toward the two alternative job-execution
// metrics, wait and mbsld, on SDSC-SP2 with SJF and F1.
func Fig9(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Figure 9: training toward other metrics (SDSC-SP2)")
	fmt.Fprintln(o.Out, "(paper: both wait and mbsld converge to 25-50% relative improvement)")
	for _, metric := range []metrics.Metric{metrics.Wait, metrics.MBSLD} {
		for _, polName := range []string{"SJF", "F1"} {
			spec := trainSpec{traceName: "SDSC-SP2", policy: polName, metric: metric}
			_, hist, _, err := o.train(spec)
			if err != nil {
				return err
			}
			printCurve(o.Out, fmt.Sprintf("metric=%s policy=%s:", metric, polName), hist)
		}
	}
	return nil
}

// Fig10 reproduces the trade-off study: models trained on bsld, evaluated
// on bsld, mbsld and util. The paper's claims: mbsld is not sacrificed
// (no starving of long jobs) and util drops by ~1% or less.
func Fig10(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Figure 10: trade-offs across metrics (trained on bsld)")
	fmt.Fprintln(o.Out, "(paper: mbsld also improves; util impact typically < 1%)")
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  policy\ttrace\tbsld base\tbsld insp\tmbsld base\tmbsld insp\tutil base\tutil insp\n")
	for _, polName := range []string{"SJF", "F1"} {
		for _, traceName := range workload.PaperTraces() {
			spec := trainSpec{traceName: traceName, policy: polName, metric: metrics.BSLD}
			trainer, _, tr, err := o.train(spec)
			if err != nil {
				return err
			}
			evalCfg, err := o.evalConfig(tr, spec)
			if err != nil {
				return err
			}
			res, err := core.Evaluate(trainer.Inspector(), evalCfg)
			if err != nil {
				return err
			}
			bB, bI := res.Boxes(metrics.BSLD)
			mB, mI := res.Boxes(metrics.MBSLD)
			uB, uI := res.Boxes(metrics.Util)
			fmt.Fprintf(tw, "  %s\t%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f%%\t%.2f%%\n",
				polName, traceName, bB.Mean, bI.Mean, mB.Mean, mI.Mean, 100*uB.Mean, 100*uI.Mean)
		}
	}
	return tw.Flush()
}

// Fig11 reproduces the backfilling study: training curves with EASY
// backfilling enabled, for bsld and wait on SDSC-SP2 with SJF and F1. The
// paper expects smaller but still positive converged improvements (~10%).
func Fig11(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Figure 11: training with EASY backfilling enabled (SDSC-SP2)")
	fmt.Fprintln(o.Out, "(paper: converges to ~10% improvement; less headroom than without backfilling)")
	for _, metric := range []metrics.Metric{metrics.BSLD, metrics.Wait} {
		for _, polName := range []string{"SJF", "F1"} {
			spec := trainSpec{traceName: "SDSC-SP2", policy: polName, metric: metric, backfill: true}
			_, hist, _, err := o.train(spec)
			if err != nil {
				return err
			}
			printCurve(o.Out, fmt.Sprintf("metric=%s policy=%s (backfill):", metric, polName), hist)
		}
	}
	return nil
}

// Fig12 reproduces the realistic-settings study: the Slurm multifactor
// priority policy (age + fairshare + job attribute + partition factors)
// with backfilling, inspected by SchedInspector, on the SDSC-SP2-like trace
// (whose generator assigns users and queues).
func Fig12(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Figure 12: SchedInspector working with Slurm multifactor + backfilling (SDSC-SP2)")
	fmt.Fprintln(o.Out, "(paper: 24.7% better bsld, 0.49% utilization reduction)")
	spec := trainSpec{traceName: "SDSC-SP2", policy: "Slurm", metric: metrics.BSLD, backfill: true}
	trainer, hist, tr, err := o.train(spec)
	if err != nil {
		return err
	}
	printCurve(o.Out, "Slurm training:", hist)
	evalCfg, err := o.evalConfig(tr, spec)
	if err != nil {
		return err
	}
	res, err := core.Evaluate(trainer.Inspector(), evalCfg)
	if err != nil {
		return err
	}
	b, i := res.Boxes(metrics.BSLD)
	uB, uI := res.Boxes(metrics.Util)
	fmt.Fprintf(o.Out, "  bsld: base %.1f vs inspected %.1f (%+.1f%%)\n",
		b.Mean, i.Mean, 100*res.MeanImprovement(metrics.BSLD))
	fmt.Fprintf(o.Out, "  util: base %.2f%% vs inspected %.2f%% (%+.2f%%)\n",
		100*uB.Mean, 100*uI.Mean, 100*(uI.Mean-uB.Mean))
	return nil
}

// Fig13 reproduces the "what SchedInspector learns" analysis: train on
// [SJF, bsld, SDSC-SP2], replay the whole trace with the trained model, and
// compare the CDFs of each input feature over rejected samples vs all
// samples. A rejected-CDF rising faster at low x means the model rejects
// more often when that feature is small.
func Fig13(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Figure 13: CDFs of input features, rejected vs total samples (SJF, SDSC-SP2, bsld)")
	fmt.Fprintln(o.Out, "(paper: rejects short-waiting, long, wide jobs; queue delays have a hard cap)")
	spec := trainSpec{traceName: "SDSC-SP2", policy: "SJF", metric: metrics.BSLD}
	trainer, _, tr, err := o.train(spec)
	if err != nil {
		return err
	}
	rec, err := core.ReplayWhole(trainer.Inspector(), core.EvalConfig{
		Trace: tr, Policy: mustPolicy("SJF"), Metric: metrics.BSLD,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "  total samples: %d, rejected samples: %d (ratio %.2f)\n",
		len(rec.Records), int(rec.RejectionRatio()*float64(len(rec.Records))+0.5), rec.RejectionRatio())
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  feature\tCDF@0.25 total/rej\tCDF@0.5 total/rej\tCDF@0.75 total/rej\tmax rejected x\n")
	for _, c := range rec.Analyze(core.ManualFeatureNames()) {
		if c.Rejected.N() == 0 {
			fmt.Fprintf(tw, "  %s\t-\t-\t-\t(never rejected)\n", c.Name)
			continue
		}
		fmt.Fprintf(tw, "  %s\t%.2f/%.2f\t%.2f/%.2f\t%.2f/%.2f\t%.2f\n",
			c.Name,
			c.Total.At(0.25), c.Rejected.At(0.25),
			c.Total.At(0.5), c.Rejected.At(0.5),
			c.Total.At(0.75), c.Rejected.At(0.75),
			c.Rejected.Quantile(1.0))
	}
	return tw.Flush()
}

func mustPolicy(name string) sched.Policy {
	p, err := policyFor(name, nil)
	if err != nil {
		panic(err)
	}
	return p
}
