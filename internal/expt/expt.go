// Package expt implements the paper's evaluation section: every table and
// figure of "SchedInspector" (HPDC '22) has a function here that regenerates
// it against the synthetic workload substitutes. The cmd/expreport binary
// and the repository's root benchmarks are thin wrappers over this package.
//
// Absolute numbers differ from the paper (our substrate is a calibrated
// synthetic workload, not the archive logs), but the shapes the paper
// claims — who wins, roughly by how much, where the approach fails (FCFS) —
// are asserted by the test suite and visible in every report.
package expt

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"schedinspector/internal/core"
	"schedinspector/internal/metrics"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

// Options scales the experiments. The zero value takes report defaults
// (close to the paper's setup but sized for minutes, not hours); the Tiny
// preset is used by benchmarks and smoke tests.
type Options struct {
	Jobs          int   // jobs per generated trace (default 20000)
	Epochs        int   // training epochs (default 25)
	Batch         int   // trajectories per epoch (default 40; paper 100)
	SeqLen        int   // jobs per training trajectory (default 128)
	EvalSequences int   // sampled test sequences (default 30; paper 50)
	EvalSeqLen    int   // jobs per test sequence (default 256)
	Seed          int64 // base RNG seed
	Workers       int   // rollout fan-out for training and evaluation (0 = one per CPU)
	Out           io.Writer
	Verbose       bool // print every training epoch instead of a summary curve
}

func (o Options) withDefaults() Options {
	if o.Jobs == 0 {
		o.Jobs = 20000
	}
	if o.Epochs == 0 {
		o.Epochs = 25
	}
	if o.Batch == 0 {
		o.Batch = 40
	}
	if o.SeqLen == 0 {
		o.SeqLen = 128
	}
	if o.EvalSequences == 0 {
		o.EvalSequences = 30
	}
	if o.EvalSeqLen == 0 {
		o.EvalSeqLen = 256
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// Tiny returns options small enough for unit tests and testing.B bench
// iterations (seconds per experiment).
func Tiny(out io.Writer) Options {
	return Options{
		Jobs: 3000, Epochs: 3, Batch: 6, SeqLen: 64,
		EvalSequences: 4, EvalSeqLen: 64, Seed: 42, Out: out,
	}
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	Name  string // e.g. "fig4"
	Title string // what the paper shows there
	Run   func(Options) error
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Motivating example metrics (Table 1 / Figure 1)", Table1},
		{"table2", "Job trace statistics (Table 2)", Table2},
		{"fig4", "Training curves: SJF and F1 on four traces (Figure 4)", Fig4},
		{"fig5", "Feature-building ablation (Figure 5)", Fig5},
		{"fig6", "Reward-function ablation (Figure 6)", Fig6},
		{"fig7", "Other base policies + rejection ratios (Figure 7)", Fig7},
		{"fig8", "Test-time performance on four traces (Figure 8)", Fig8},
		{"table4", "Cross-trace generalization (Table 4)", Table4},
		{"fig9", "Other metrics: wait and mbsld (Figure 9)", Fig9},
		{"fig10", "Metric trade-offs: bsld vs mbsld vs util (Figure 10)", Fig10},
		{"fig11", "Training with backfilling enabled (Figure 11)", Fig11},
		{"table5", "System utilization impact (Table 5)", Table5},
		{"fig12", "Slurm multifactor scheduler (Figure 12)", Fig12},
		{"fig13", "What SchedInspector learns: feature CDFs (Figure 13)", Fig13},
		{"cost", "Computational cost: training and inference (§4.6)", Cost},
		{"ablate-interval", "Extension: MAX_INTERVAL sweep", AblateInterval},
		{"ablate-cap", "Extension: MAX_REJECTION_TIMES sweep", AblateRejectionCap},
		{"ablate-critic", "Extension: actor-critic vs REINFORCE variance", AblateCritic},
		{"ablate-backfill", "Extension: none/EASY/conservative backfilling", AblateBackfillVariant},
		{"rlsched", "Extension: inspector over a learned RLScheduler policy (§7)", RLSchedExperiment},
	}
}

// newSeededRNG returns a deterministic RNG for evaluation sampling.
func newSeededRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// ByName returns the experiment with the given name.
func ByName(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("expt: unknown experiment %q", name)
}

// trace builds one of the four paper workloads at the configured size.
func (o Options) trace(name string) (*workload.Trace, error) {
	return workload.ByName(name, o.Jobs, o.Seed)
}

// trainSpec fully describes one training configuration.
type trainSpec struct {
	traceName string
	policy    string // sched.ByName abbreviation, or "Slurm"
	metric    metrics.Metric
	reward    core.RewardKind
	features  core.FeatureMode
	backfill  bool
}

// cachedTrain memoizes one completed training run. Several experiments
// train identical configurations (e.g. Figures 4, 8 and 10 and Table 5 all
// need [SJF|F1, trace, bsld] models); experiments run sequentially, so a
// plain package-level map is safe and cuts the full-report wall clock by
// more than half.
type cachedTrain struct {
	trainer *core.Trainer
	hist    []core.EpochStats
	trace   *workload.Trace
}

var trainMemo = map[string]cachedTrain{}

// ResetMemo clears the training cache. Benchmarks call it between
// iterations so each measured run performs real training instead of a
// cache lookup.
func ResetMemo() { trainMemo = map[string]cachedTrain{} }

func (o Options) memoKey(spec trainSpec) string {
	return fmt.Sprintf("%s|%s|%v|%v|%v|%v|j%d|e%d|b%d|s%d|seed%d",
		spec.traceName, spec.policy, spec.metric, spec.reward, spec.features, spec.backfill,
		o.Jobs, o.Epochs, o.Batch, o.SeqLen, o.Seed)
}

// train runs one training configuration (memoized) and returns the trainer
// holding the trained inspector plus the per-epoch history.
func (o Options) train(spec trainSpec) (*core.Trainer, []core.EpochStats, *workload.Trace, error) {
	if c, ok := trainMemo[o.memoKey(spec)]; ok {
		return c.trainer, c.hist, c.trace, nil
	}
	trainer, hist, tr, err := o.trainUncached(spec)
	if err == nil {
		trainMemo[o.memoKey(spec)] = cachedTrain{trainer, hist, tr}
	}
	return trainer, hist, tr, err
}

func (o Options) trainUncached(spec trainSpec) (*core.Trainer, []core.EpochStats, *workload.Trace, error) {
	tr, err := o.trace(spec.traceName)
	if err != nil {
		return nil, nil, nil, err
	}
	pol, err := policyFor(spec.policy, tr)
	if err != nil {
		return nil, nil, nil, err
	}
	trainer, err := core.NewTrainer(core.TrainConfig{
		Trace: tr, Policy: pol, Metric: spec.metric,
		RewardKind: spec.reward, FeatureMode: spec.features, Backfill: spec.backfill,
		SeqLen: o.SeqLen, Batch: o.Batch, Seed: o.Seed + 1, Workers: o.Workers,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	var cb func(core.EpochStats)
	if o.Verbose {
		cb = func(st core.EpochStats) {
			fmt.Fprintf(o.Out, "    epoch %3d: improvement %9.2f (%.1f%%), rejection ratio %.2f\n",
				st.Epoch, st.MeanImprovement, 100*st.MeanPctImprovement, st.RejectionRatio)
		}
	}
	hist, err := trainer.Train(o.Epochs, cb)
	if err != nil {
		return nil, nil, nil, err
	}
	return trainer, hist, tr, nil
}

// evalOpts builds the evaluation configuration for a trained spec.
func (o Options) evalConfig(tr *workload.Trace, spec trainSpec) (core.EvalConfig, error) {
	pol, err := policyFor(spec.policy, tr)
	if err != nil {
		return core.EvalConfig{}, err
	}
	return core.EvalConfig{
		Trace: tr, Policy: pol, Metric: spec.metric, Backfill: spec.backfill,
		Sequences: o.EvalSequences, SeqLen: o.EvalSeqLen, Seed: o.Seed + 2,
		Workers: o.Workers,
	}, nil
}

func policyFor(name string, tr *workload.Trace) (sched.Policy, error) {
	if name == "Slurm" {
		return sched.NewSlurm(tr), nil
	}
	return sched.ByName(name)
}

// converged returns the mean of the last k epochs' value, the number the
// paper quotes as "converges to".
func converged(hist []core.EpochStats, f func(core.EpochStats) float64, k int) float64 {
	if len(hist) == 0 {
		return 0
	}
	if k > len(hist) {
		k = len(hist)
	}
	var s float64
	for _, h := range hist[len(hist)-k:] {
		s += f(h)
	}
	return s / float64(k)
}

// printCurve renders a training curve compactly: roughly 10 sampled epochs.
func printCurve(w io.Writer, label string, hist []core.EpochStats) {
	fmt.Fprintf(w, "  %s\n", label)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "    epoch\timprovement\tpct\trej.ratio\n")
	step := (len(hist) + 9) / 10
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(hist); i += step {
		h := hist[i]
		fmt.Fprintf(tw, "    %d\t%.2f\t%.1f%%\t%.2f\n", h.Epoch, h.MeanImprovement, 100*h.MeanPctImprovement, h.RejectionRatio)
	}
	last := hist[len(hist)-1]
	if (len(hist)-1)%step != 0 {
		fmt.Fprintf(tw, "    %d\t%.2f\t%.1f%%\t%.2f\n", last.Epoch, last.MeanImprovement, 100*last.MeanPctImprovement, last.RejectionRatio)
	}
	tw.Flush()
	fmt.Fprintf(w, "    converged: improvement %.2f (%.1f%%), rejection ratio %.2f\n",
		converged(hist, func(h core.EpochStats) float64 { return h.MeanImprovement }, 5),
		100*converged(hist, func(h core.EpochStats) float64 { return h.MeanPctImprovement }, 5),
		converged(hist, func(h core.EpochStats) float64 { return h.RejectionRatio }, 5))
}
