package expt

import (
	"fmt"
	"time"

	"schedinspector/internal/core"
	"schedinspector/internal/metrics"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

// Cost reproduces the §4.6 computational-cost analysis: wall-clock time per
// training epoch (the paper trains ~35 minutes total on its setup) and the
// per-decision inference latency (the paper reports 0.7 ms; this pure-Go
// 938-parameter MLP is far below that).
func Cost(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "§4.6: computational cost")
	fmt.Fprintln(o.Out, "(paper: ~35 min training, 0.7 ms inference per decision)")

	spec := trainSpec{traceName: "SDSC-SP2", policy: "SJF", metric: metrics.BSLD}
	tr, err := o.trace(spec.traceName)
	if err != nil {
		return err
	}
	trainer, err := core.NewTrainer(core.TrainConfig{
		Trace: tr, Policy: mustPolicy(spec.policy), Metric: spec.metric,
		SeqLen: o.SeqLen, Batch: o.Batch, Seed: o.Seed + 1, Workers: o.Workers,
	})
	if err != nil {
		return err
	}
	epochs := min(o.Epochs, 5)
	t0 := time.Now()
	if _, err := trainer.Train(epochs, nil); err != nil {
		return err
	}
	perEpoch := time.Since(t0) / time.Duration(epochs)
	fmt.Fprintf(o.Out, "  training: %v per epoch (%d trajectories x %d jobs); a %d-epoch run takes ~%v\n",
		perEpoch.Round(time.Millisecond), o.Batch, o.SeqLen, o.Epochs,
		(perEpoch * time.Duration(o.Epochs)).Round(time.Second))

	// Inference: time greedy decisions over a fixed scheduling state.
	insp := trainer.Inspector().Greedy()
	st := &sim.State{
		Job:     workload.Job{Est: 3600, Procs: 16},
		JobWait: 120, FreeProcs: 64, TotalProcs: 128, Runnable: true,
		Queue: []sim.QueueItem{{Wait: 60, Est: 600, Procs: 4}, {Wait: 10, Est: 7200, Procs: 32}},
	}
	const n = 200000
	t0 = time.Now()
	for i := 0; i < n; i++ {
		insp(st)
	}
	perDecision := time.Since(t0) / n
	fmt.Fprintf(o.Out, "  inference: %v per scheduling decision (%d-parameter policy network)\n",
		perDecision, trainer.Inspector().Agent.Policy.NumParams())
	return nil
}
