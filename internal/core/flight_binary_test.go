package core

import (
	"bytes"
	"reflect"
	"testing"

	"schedinspector/internal/explain"
	"schedinspector/internal/metrics"
	"schedinspector/internal/obs"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

// TestBinaryFlightByteIdentityEndToEnd is the golden acceptance pin for the
// binary flight recorder: ONE training run dual-emits every span and
// decision through both the legacy JSONL sinks and the binary ring, so both
// files share wall timestamps; converting the .ftrace stream must reproduce
// the JSONL file byte for byte.
func TestBinaryFlightByteIdentityEndToEnd(t *testing.T) {
	var jsonl, ftrace bytes.Buffer
	flight := &obs.FlightRecorder{
		Spans:     obs.NewSpanTracer(1 << 14),
		Decisions: obs.NewExplainRecorder(1 << 14),
		Ring:      obs.NewTraceRing(1<<13, 1024),
	}
	// Sinks attach to the halves directly (a single sequential worker, so
	// the shared JSONL buffer needs no locking), before NewTrainer's SetMeta
	// emits the headers into both streams.
	flight.Spans.SetSink(&jsonl)
	flight.Decisions.SetSink(&jsonl)
	flight.Ring.SetSink(&ftrace)

	tr := workload.SDSCSP2Like(3000, 7)
	trainer, err := NewTrainer(TrainConfig{
		Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
		Batch: 6, SeqLen: 64, Seed: 11, Workers: 1, Flight: flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.Train(2, nil); err != nil {
		t.Fatal(err)
	}
	if err := flight.Flush(); err != nil {
		t.Fatal(err)
	}
	if flight.Decisions.Total() == 0 {
		t.Fatal("training recorded nothing")
	}
	if flight.Ring.Dropped() > 0 || flight.Ring.Oversized() > 0 {
		t.Fatalf("ring overflow invalidates the comparison (dropped %d, oversize %d); raise capacities",
			flight.Ring.Dropped(), flight.Ring.Oversized())
	}

	var converted bytes.Buffer
	if err := explain.ConvertFTrace(bytes.NewReader(ftrace.Bytes()), &converted); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(converted.Bytes(), jsonl.Bytes()) {
		a, b := converted.Bytes(), jsonl.Bytes()
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		at := n
		for i := 0; i < n; i++ {
			if a[i] != b[i] {
				at = i
				break
			}
		}
		lo := at - 120
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("converted .ftrace differs from the legacy JSONL at byte %d (sizes %d vs %d):\nconverted: %q\nlegacy:    %q",
			at, len(a), len(b), a[lo:min(at+120, len(a))], b[lo:min(at+120, len(b))])
	}
}

// TestBinaryFlightWorkerEquivalence carries the PR-5 worker-count pin over
// to the binary ring: workers=1 and workers=8 runs yield the identical
// decision-record set (order-normalized) and span ID set when read back from
// the ring's own .ftrace snapshot.
func TestBinaryFlightWorkerEquivalence(t *testing.T) {
	run := func(workers int) ([]obs.ExplainRecord, map[obs.SpanID]bool) {
		flight := obs.NewBinaryFlightRecorder(1<<13, 1024)
		trainer, err := NewTrainer(TrainConfig{
			Trace: workload.SDSCSP2Like(3000, 7), Policy: sched.SJF(), Metric: metrics.BSLD,
			Batch: 6, SeqLen: 64, Seed: 11, Workers: workers, Flight: flight,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := trainer.Train(2, nil); err != nil {
			t.Fatal(err)
		}
		ring := flight.TraceRing()
		if ring.Dropped() > 0 || ring.Oversized() > 0 {
			t.Fatalf("ring overflow invalidates the comparison; raise capacities")
		}
		tr, err := explain.ReadFTrace(bytes.NewReader(ring.Snapshot()))
		if err != nil {
			t.Fatal(err)
		}
		ids := make(map[obs.SpanID]bool)
		for _, sp := range tr.Spans {
			ids[sp.ID] = true
		}
		return tr.Records, ids
	}
	seqRecs, seqIDs := run(1)
	parRecs, parIDs := run(8)
	if len(seqRecs) == 0 {
		t.Fatal("training recorded no decision records")
	}
	// ReadFTrace order-normalizes records by (Epoch, Traj, Seq) already.
	if !reflect.DeepEqual(seqRecs, parRecs) {
		t.Fatalf("decision records differ between worker counts: %d vs %d records",
			len(seqRecs), len(parRecs))
	}
	if !reflect.DeepEqual(seqIDs, parIDs) {
		t.Fatalf("span ID sets differ: workers=1 has %d, workers=8 has %d", len(seqIDs), len(parIDs))
	}
}
