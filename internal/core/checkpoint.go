package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"

	"schedinspector/internal/ckpt"
	"schedinspector/internal/metrics"
	"schedinspector/internal/nn"
	"schedinspector/internal/rl"
)

// TrainerCheckpointVersion is the payload schema number written into the
// ckpt container header. Bump it when TrainerCheckpoint changes shape.
const TrainerCheckpointVersion = 1

// TrainerCheckpoint is the full mutable state of a training run — enough
// that killing a run after epoch N and resuming from this snapshot
// produces bit-identical model bytes to never having stopped.
//
// The captured set is deliberately exact:
//
//   - Policy/Value are the network weights (the model itself).
//   - Opt holds both Adam optimizers' first/second moments and step
//     counters; restarting Adam cold would change every post-resume
//     update even with identical weights.
//   - Seed and Epoch pin the RNG: every trajectory stream is derived from
//     (Seed, purpose, epoch, index) via SplitMix64 (see rng.go), so no
//     generator cursor needs saving — the derivation is the cursor.
//   - Mode and Norm are the feature contract the weights were trained
//     under; they make a checkpoint self-describing enough to serve
//     directly (see Inspector) and let Resume reject a mismatched config.
type TrainerCheckpoint struct {
	Epoch  int
	Seed   int64
	Mode   FeatureMode
	Norm   Normalizer
	Policy *nn.MLP
	Value  *nn.MLP
	Opt    rl.OptimizerState
}

// Checkpoint snapshots the trainer's state. Everything is deep-copied, so
// the snapshot can be serialized while training continues.
func (t *Trainer) Checkpoint() *TrainerCheckpoint {
	return &TrainerCheckpoint{
		Epoch:  t.epoch,
		Seed:   t.cfg.Seed,
		Mode:   t.cfg.FeatureMode,
		Norm:   t.insp.Norm,
		Policy: t.insp.Agent.Policy.Clone(),
		Value:  t.insp.Agent.Value.Clone(),
		Opt:    t.ppo.OptimizerState(),
	}
}

// The payload codec is a hand-rolled binary format (big-endian, float64s
// as IEEE-754 bits) rather than gob on purpose: gob assigns wire type IDs
// from a process-global registry in first-use order, so its bytes depend
// on which other gob types the process touched earlier. A resumed process
// decodes a checkpoint before saving its model; with gob in the
// checkpoint path that shifted the model file's type IDs and broke the
// "resumed run produces bit-identical model bytes" guarantee across
// process boundaries. The custom codec is canonical: equal state encodes
// to equal bytes in any process, and Decode rejects trailing junk.

// Encode serializes the checkpoint payload.
func (c *TrainerCheckpoint) Encode() ([]byte, error) {
	if c.Policy == nil || c.Value == nil {
		return nil, fmt.Errorf("core: encode checkpoint: missing networks")
	}
	w := &binWriter{}
	w.i64(int64(c.Epoch))
	w.i64(c.Seed)
	w.u32(uint32(c.Mode))
	w.f64(c.Norm.MaxEst)
	w.f64(c.Norm.MeanEst)
	w.i64(int64(c.Norm.MaxProcs))
	w.i64(int64(c.Norm.MaxRejections))
	w.f64(c.Norm.MaxInterval)
	w.u32(uint32(c.Norm.Metric))
	w.mlp(c.Policy)
	w.mlp(c.Value)
	w.adam(c.Opt.Policy)
	w.adam(c.Opt.Value)
	return w.buf.Bytes(), nil
}

// DecodeTrainerCheckpoint parses a payload previously produced by Encode,
// validating the schema version and internal consistency. It never
// returns a partially filled checkpoint.
func DecodeTrainerCheckpoint(version uint32, payload []byte) (*TrainerCheckpoint, error) {
	if version != TrainerCheckpointVersion {
		return nil, fmt.Errorf("core: checkpoint schema version %d, this build reads %d",
			version, TrainerCheckpointVersion)
	}
	r := &binReader{data: payload}
	var c TrainerCheckpoint
	c.Epoch = int(r.i64())
	c.Seed = r.i64()
	c.Mode = FeatureMode(r.u32())
	c.Norm.MaxEst = r.f64()
	c.Norm.MeanEst = r.f64()
	c.Norm.MaxProcs = int(r.i64())
	c.Norm.MaxRejections = int(r.i64())
	c.Norm.MaxInterval = r.f64()
	c.Norm.Metric = metrics.Metric(r.u32())
	c.Policy = r.mlp()
	c.Value = r.mlp()
	c.Opt.Policy = r.adam()
	c.Opt.Value = r.adam()
	if r.err != nil {
		return nil, fmt.Errorf("core: decode checkpoint: %w", r.err)
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("core: decode checkpoint: %d trailing bytes", len(r.data)-r.off)
	}
	if c.Epoch < 0 {
		return nil, fmt.Errorf("core: decode checkpoint: negative epoch %d", c.Epoch)
	}
	if c.Policy.InputSize() != c.Mode.Dim() {
		return nil, fmt.Errorf("core: decode checkpoint: policy input %d does not match mode %v (%d)",
			c.Policy.InputSize(), c.Mode, c.Mode.Dim())
	}
	if got, want := c.Value.InputSize(), c.Policy.InputSize(); got != want {
		return nil, fmt.Errorf("core: decode checkpoint: value input %d, policy input %d", got, want)
	}
	return &c, nil
}

// maxCheckpointDim bounds layer counts and widths read from a checkpoint,
// so a crafted (CRC-valid) payload cannot demand absurd allocations.
const maxCheckpointDim = 1 << 20

// binWriter accumulates the canonical big-endian encoding.
type binWriter struct{ buf bytes.Buffer }

func (w *binWriter) u32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	w.buf.Write(b[:])
}

func (w *binWriter) i64(v int64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	w.buf.Write(b[:])
}

func (w *binWriter) f64(v float64) { w.i64(int64(math.Float64bits(v))) }

func (w *binWriter) f64s(s []float64) {
	w.u32(uint32(len(s)))
	for _, v := range s {
		w.f64(v)
	}
}

func (w *binWriter) layers(s [][]float64) {
	w.u32(uint32(len(s)))
	for _, l := range s {
		w.f64s(l)
	}
}

func (w *binWriter) mlp(m *nn.MLP) {
	w.u32(uint32(len(m.Sizes)))
	for _, s := range m.Sizes {
		w.u32(uint32(s))
	}
	w.u32(uint32(len(m.Acts)))
	for _, a := range m.Acts {
		w.u32(uint32(a))
	}
	w.layers(m.W)
	w.layers(m.B)
}

func (w *binWriter) adam(s nn.AdamState) {
	w.i64(int64(s.T))
	w.layers(s.MW)
	w.layers(s.VW)
	w.layers(s.MB)
	w.layers(s.VB)
}

// binReader decodes the canonical encoding with a sticky error and strict
// bounds checks — a short or forged payload fails, it never over-reads or
// over-allocates.
type binReader struct {
	data []byte
	off  int
	err  error
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *binReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.data)-r.off < n {
		r.fail("truncated payload: need %d bytes at offset %d, have %d", n, r.off, len(r.data)-r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *binReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *binReader) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

func (r *binReader) f64() float64 { return math.Float64frombits(uint64(r.i64())) }

func (r *binReader) f64s() []float64 {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if int64(n)*8 > int64(len(r.data)-r.off) {
		r.fail("slice length %d exceeds remaining payload", n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func (r *binReader) layers() [][]float64 {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if n > maxCheckpointDim {
		r.fail("layer count %d exceeds limit", n)
		return nil
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = r.f64s()
		if r.err != nil {
			return nil
		}
	}
	return out
}

func (r *binReader) mlp() *nn.MLP {
	nSizes := r.u32()
	if r.err != nil {
		return nil
	}
	if nSizes < 2 || nSizes > maxCheckpointDim {
		r.fail("network with %d layer sizes", nSizes)
		return nil
	}
	m := &nn.MLP{Sizes: make([]int, nSizes)}
	for i := range m.Sizes {
		s := r.u32()
		if s == 0 || s > maxCheckpointDim {
			r.fail("layer size %d out of range", s)
			return nil
		}
		m.Sizes[i] = int(s)
	}
	nActs := r.u32()
	if r.err != nil {
		return nil
	}
	if int(nActs) != len(m.Sizes)-1 {
		r.fail("%d activations for %d weight layers", nActs, len(m.Sizes)-1)
		return nil
	}
	m.Acts = make([]nn.Activation, nActs)
	for i := range m.Acts {
		a := r.u32()
		if a > uint32(nn.ReLU) {
			r.fail("unknown activation %d", a)
			return nil
		}
		m.Acts[i] = nn.Activation(a)
	}
	m.W = r.layers()
	m.B = r.layers()
	if r.err != nil {
		return nil
	}
	if len(m.W) != len(m.Sizes)-1 || len(m.B) != len(m.W) {
		r.fail("network has %d weight and %d bias layers, want %d", len(m.W), len(m.B), len(m.Sizes)-1)
		return nil
	}
	for l := range m.W {
		if len(m.W[l]) != m.Sizes[l]*m.Sizes[l+1] || len(m.B[l]) != m.Sizes[l+1] {
			r.fail("layer %d has wrong parameter count", l)
			return nil
		}
	}
	return m
}

func (r *binReader) adam() nn.AdamState {
	var s nn.AdamState
	s.T = int(r.i64())
	if r.err == nil && s.T < 0 {
		r.fail("negative optimizer step count %d", s.T)
		return s
	}
	s.MW = r.layers()
	s.VW = r.layers()
	s.MB = r.layers()
	s.VB = r.layers()
	return s
}

// SaveCheckpoint writes the trainer's state to dir (created if needed) as
// ckpt-<epoch>.ckpt through the atomic, CRC-guarded ckpt container, and
// returns the file path.
func (t *Trainer) SaveCheckpoint(dir string) (string, error) {
	c := t.Checkpoint()
	payload, err := c.Encode()
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("core: checkpoint dir: %w", err)
	}
	path := filepath.Join(dir, ckpt.FileName(c.Epoch))
	if err := ckpt.Write(path, TrainerCheckpointVersion, payload); err != nil {
		return "", err
	}
	return path, nil
}

// LoadTrainerCheckpoint reads one checkpoint file. Torn or corrupt files
// fail with an error matching ckpt.ErrCorrupt.
func LoadTrainerCheckpoint(path string) (*TrainerCheckpoint, error) {
	version, payload, err := ckpt.Read(path)
	if err != nil {
		return nil, err
	}
	return DecodeTrainerCheckpoint(version, payload)
}

// LoadServable loads a servable inspector from path, accepting either a
// saved model (gob, from Inspector.Save / schedinspect train) or a
// trainer checkpoint container, sniffed by the ckpt magic. It lets
// inspectord serve straight from a training run's checkpoint directory
// artifacts without an export step.
func LoadServable(path string, rng *rand.Rand) (*Inspector, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if ckpt.IsContainer(data) {
		version, payload, err := ckpt.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		c, err := DecodeTrainerCheckpoint(version, payload)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return c.Inspector(rng), nil
	}
	return LoadInspector(bytes.NewReader(data), rng)
}

// LatestTrainerCheckpoint returns the newest loadable checkpoint in dir
// and its path, skipping corrupt files (a torn final write falls back to
// the previous checkpoint). With no loadable checkpoint the error matches
// ckpt.ErrNoCheckpoint.
func LatestTrainerCheckpoint(dir string) (*TrainerCheckpoint, string, error) {
	entry, version, payload, err := ckpt.Latest(dir)
	if err != nil {
		return nil, "", err
	}
	c, err := DecodeTrainerCheckpoint(version, payload)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", entry.Path, err)
	}
	return c, entry.Path, nil
}

// Inspector materializes the checkpointed model as a servable inspector —
// how inspectord serves straight from a training checkpoint. rng drives
// sampling-mode decisions and may be nil for greedy-only use. The
// checkpoint's networks are deep-copied so the snapshot stays immutable.
func (c *TrainerCheckpoint) Inspector(rng *rand.Rand) *Inspector {
	return &Inspector{
		Agent: rl.AgentFromNets(c.Policy.Clone(), c.Value.Clone(), rng),
		Mode:  c.Mode,
		Norm:  c.Norm,
	}
}

// Resume installs a checkpoint into the trainer, which must have been
// built with the same configuration the checkpointed run used. Seed,
// feature mode, normalizer and network shapes are all verified — a
// mismatch would not crash, it would silently break the bit-identical
// kill-and-resume guarantee, so each is a hard error. On success the
// trainer continues from epoch c.Epoch+1 exactly as the original run
// would have.
func (t *Trainer) Resume(c *TrainerCheckpoint) error {
	switch {
	case c.Seed != t.cfg.Seed:
		return fmt.Errorf("core: resume: checkpoint seed %d, trainer configured with %d", c.Seed, t.cfg.Seed)
	case c.Mode != t.cfg.FeatureMode:
		return fmt.Errorf("core: resume: checkpoint feature mode %v, trainer configured with %v",
			c.Mode, t.cfg.FeatureMode)
	case c.Norm != t.insp.Norm:
		return fmt.Errorf("core: resume: checkpoint normalizer %+v does not match the trainer's trace (%+v)",
			c.Norm, t.insp.Norm)
	case !reflect.DeepEqual(c.Policy.Sizes, t.insp.Agent.Policy.Sizes):
		return fmt.Errorf("core: resume: checkpoint policy layers %v, trainer configured with %v",
			c.Policy.Sizes, t.insp.Agent.Policy.Sizes)
	case !reflect.DeepEqual(c.Value.Sizes, t.insp.Agent.Value.Sizes):
		return fmt.Errorf("core: resume: checkpoint value layers %v, trainer configured with %v",
			c.Value.Sizes, t.insp.Agent.Value.Sizes)
	}
	// Install weights first; RestoreOptimizer validates moment shapes
	// against the (already shape-checked) networks, so a failure here
	// leaves the trainer unusable only in ways the caller was warned of.
	t.insp.Agent.Policy = c.Policy.Clone()
	t.insp.Agent.Value = c.Value.Clone()
	if err := t.ppo.RestoreOptimizer(c.Opt); err != nil {
		return fmt.Errorf("core: resume: %w", err)
	}
	t.epoch = c.Epoch
	return nil
}

// ResumeLatest is the one-call resume path: load the newest valid
// checkpoint from dir and install it, returning the checkpoint for
// inspection (its Epoch tells the caller how much work remains).
func (t *Trainer) ResumeLatest(dir string) (*TrainerCheckpoint, error) {
	c, _, err := LatestTrainerCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	if err := t.Resume(c); err != nil {
		return nil, err
	}
	return c, nil
}

// ErrInterrupted reports that TrainCtx stopped early because its context
// was canceled — after finishing the in-flight epoch and (when a
// checkpoint directory is configured) persisting a checkpoint. An error
// matching ErrInterrupted therefore guarantees progress is safe on disk;
// if the final save fails, TrainCtx returns the save error instead, and
// it does NOT match ErrInterrupted.
var ErrInterrupted = errors.New("core: training interrupted")

// CheckpointConfig controls durable checkpointing during TrainCtx.
type CheckpointConfig struct {
	// Dir is the checkpoint directory. Empty disables checkpointing.
	Dir string
	// Every saves a checkpoint after each Every-th epoch (0 = only on
	// interruption and completion).
	Every int
	// Keep bounds how many checkpoint files are retained, oldest pruned
	// first (0 = keep all).
	Keep int
}

// EpochFunc produces one training epoch's statistics. It is the pluggable
// heart of DriveEpochs: the single-process trainer passes Trainer.RunEpoch,
// a distributed worker passes its rollout-shard → exchange → reduce → apply
// cycle (internal/dist). Implementations must leave the trainer on an epoch
// boundary on success; on error the epoch is considered failed and no
// checkpoint is written (the trainer's weights are still those of the last
// completed epoch, so the newest on-disk checkpoint remains the truth).
type EpochFunc func() (EpochStats, error)

// DriveEpochs is the one epoch loop every training front-end shares —
// Train, TrainCtx and the distributed worker loop all delegate here, so
// checkpointing and interrupt handling exist exactly once. It runs up to
// epochs iterations of run: a checkpoint is written to ck.Dir every
// ck.Every epochs (atomically — a crash mid-save leaves the previous
// file), and when ctx is canceled (SIGINT/SIGTERM in the CLI) the
// in-flight epoch finishes, a final checkpoint is saved, and the loop
// returns the stats so far with an error matching ErrInterrupted.
// Completion also writes a final checkpoint, so a follow-up run can extend
// training seamlessly.
//
// Epochs are atomic with respect to interruption: checkpoints land only
// on epoch boundaries, which is what keeps kill-and-resume bit-identical
// to an uninterrupted run.
func (t *Trainer) DriveEpochs(ctx context.Context, epochs int, ck CheckpointConfig, run EpochFunc, cb func(EpochStats)) ([]EpochStats, error) {
	out := make([]EpochStats, 0, epochs)
	save := func() error {
		if ck.Dir == "" {
			return nil
		}
		if _, err := t.SaveCheckpoint(ck.Dir); err != nil {
			return err
		}
		return ckpt.Prune(ck.Dir, ck.Keep)
	}
	for i := 0; i < epochs; i++ {
		if err := ctx.Err(); err != nil {
			// A failed save must NOT match ErrInterrupted: callers treat
			// ErrInterrupted as "progress is safe on disk" (the CLI prints
			// a resume hint and exits 0), so a disk-full or permission
			// error here has to surface as a plain failure.
			if serr := save(); serr != nil {
				return out, fmt.Errorf("core: training interrupted after epoch %d, but the final checkpoint save failed (progress NOT persisted): %w", t.epoch, serr)
			}
			return out, fmt.Errorf("%w after epoch %d: %w", ErrInterrupted, t.epoch, err)
		}
		st, err := run()
		if err != nil {
			return out, err
		}
		out = append(out, st)
		if cb != nil {
			cb(st)
		}
		if ck.Dir != "" && ck.Every > 0 && t.epoch%ck.Every == 0 && i != epochs-1 {
			if err := save(); err != nil {
				return out, err
			}
		}
	}
	if err := save(); err != nil {
		return out, err
	}
	return out, nil
}

// TrainCtx runs up to epochs single-process training epochs through
// DriveEpochs — see there for the checkpoint and interruption contract.
func (t *Trainer) TrainCtx(ctx context.Context, epochs int, ck CheckpointConfig, cb func(EpochStats)) ([]EpochStats, error) {
	return t.DriveEpochs(ctx, epochs, ck, t.RunEpoch, cb)
}
