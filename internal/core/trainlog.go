package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// TrainLogger receives per-epoch training telemetry. Implementations must
// not retain the EpochStats value beyond the call (it is plain data, so a
// copy is free).
type TrainLogger interface {
	LogEpoch(EpochStats)
}

// EpochColumns is the canonical telemetry column order used by the CSV
// logger and readable by ReadEpochCSV.
func EpochColumns() []string {
	return []string{
		"epoch", "mean_reward", "reward_std", "mean_improvement",
		"mean_pct_improvement", "rejection_ratio", "policy_loss",
		"value_loss", "entropy", "approx_kl", "policy_iters", "steps",
		"seconds",
	}
}

// epochRow flattens st in EpochColumns order.
func epochRow(st EpochStats) []float64 {
	return []float64{
		float64(st.Epoch), st.MeanReward, st.RewardStd, st.MeanImprovement,
		st.MeanPctImprovement, st.RejectionRatio, st.PolicyLoss,
		st.ValueLoss, st.Entropy, st.ApproxKL, float64(st.PolicyIters),
		float64(st.Steps), st.Seconds,
	}
}

// CSVTrainLogger writes one telemetry row per epoch, with a header on the
// first row. Call Flush (or Close on the underlying file) when done.
type CSVTrainLogger struct {
	w      *csv.Writer
	header bool
}

// NewCSVTrainLogger writes epochs to w as CSV.
func NewCSVTrainLogger(w io.Writer) *CSVTrainLogger {
	return &CSVTrainLogger{w: csv.NewWriter(w)}
}

// LogEpoch implements TrainLogger.
func (l *CSVTrainLogger) LogEpoch(st EpochStats) {
	if !l.header {
		l.w.Write(EpochColumns())
		l.header = true
	}
	row := epochRow(st)
	rec := make([]string, len(row))
	for i, v := range row {
		rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	l.w.Write(rec)
	l.w.Flush() // a crash mid-training keeps every completed epoch on disk
}

// Flush forces buffered rows out and reports any write error.
func (l *CSVTrainLogger) Flush() error {
	l.w.Flush()
	return l.w.Error()
}

// JSONLTrainLogger writes one JSON object per epoch.
type JSONLTrainLogger struct {
	enc *json.Encoder
}

// NewJSONLTrainLogger writes epochs to w as JSON lines.
func NewJSONLTrainLogger(w io.Writer) *JSONLTrainLogger {
	return &JSONLTrainLogger{enc: json.NewEncoder(w)}
}

// jsonEpoch fixes the wire names of the JSONL telemetry records to the
// same vocabulary as the CSV columns.
type jsonEpoch struct {
	Epoch              int     `json:"epoch"`
	MeanReward         float64 `json:"mean_reward"`
	RewardStd          float64 `json:"reward_std"`
	MeanImprovement    float64 `json:"mean_improvement"`
	MeanPctImprovement float64 `json:"mean_pct_improvement"`
	RejectionRatio     float64 `json:"rejection_ratio"`
	PolicyLoss         float64 `json:"policy_loss"`
	ValueLoss          float64 `json:"value_loss"`
	Entropy            float64 `json:"entropy"`
	ApproxKL           float64 `json:"approx_kl"`
	PolicyIters        int     `json:"policy_iters"`
	Steps              int     `json:"steps"`
	Seconds            float64 `json:"seconds"`
}

// LogEpoch implements TrainLogger.
func (l *JSONLTrainLogger) LogEpoch(st EpochStats) {
	l.enc.Encode(jsonEpoch{
		Epoch: st.Epoch, MeanReward: st.MeanReward, RewardStd: st.RewardStd,
		MeanImprovement: st.MeanImprovement, MeanPctImprovement: st.MeanPctImprovement,
		RejectionRatio: st.RejectionRatio, PolicyLoss: st.PolicyLoss,
		ValueLoss: st.ValueLoss, Entropy: st.Entropy, ApproxKL: st.ApproxKL,
		PolicyIters: st.PolicyIters, Steps: st.Steps, Seconds: st.Seconds,
	})
}

// MultiTrainLogger fans one epoch out to several loggers.
func MultiTrainLogger(ls ...TrainLogger) TrainLogger { return multiLogger(ls) }

type multiLogger []TrainLogger

func (m multiLogger) LogEpoch(st EpochStats) {
	for _, l := range m {
		l.LogEpoch(st)
	}
}

// FuncTrainLogger adapts a plain function to the TrainLogger interface.
type FuncTrainLogger func(EpochStats)

// LogEpoch implements TrainLogger.
func (f FuncTrainLogger) LogEpoch(st EpochStats) { f(st) }

// ReadEpochJSONL parses telemetry written by JSONLTrainLogger back into
// EpochStats.
func ReadEpochJSONL(r io.Reader) ([]EpochStats, error) {
	dec := json.NewDecoder(r)
	var out []EpochStats
	for dec.More() {
		var e jsonEpoch
		if err := dec.Decode(&e); err != nil {
			return out, fmt.Errorf("core: telemetry JSONL record %d: %w", len(out)+1, err)
		}
		out = append(out, EpochStats{
			Epoch: e.Epoch, MeanReward: e.MeanReward, RewardStd: e.RewardStd,
			MeanImprovement: e.MeanImprovement, MeanPctImprovement: e.MeanPctImprovement,
			RejectionRatio: e.RejectionRatio, PolicyLoss: e.PolicyLoss,
			ValueLoss: e.ValueLoss, Entropy: e.Entropy, ApproxKL: e.ApproxKL,
			PolicyIters: e.PolicyIters, Steps: e.Steps, Seconds: e.Seconds,
		})
	}
	return out, nil
}

// ReadEpochCSV parses telemetry written by CSVTrainLogger back into
// EpochStats, tolerating extra or reordered columns (it matches by header
// name and ignores names it does not know).
func ReadEpochCSV(r io.Reader) ([]EpochStats, error) {
	cr := csv.NewReader(r)
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("core: telemetry header: %w", err)
	}
	col := make(map[string]int, len(head))
	for i, name := range head {
		col[name] = i
	}
	if _, ok := col["epoch"]; !ok {
		return nil, fmt.Errorf("core: telemetry CSV has no epoch column")
	}
	field := func(rec []string, name string) float64 {
		i, ok := col[name]
		if !ok || i >= len(rec) {
			return 0
		}
		v, _ := strconv.ParseFloat(rec[i], 64)
		return v
	}
	var out []EpochStats
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, fmt.Errorf("core: telemetry row %d: %w", len(out)+2, err)
		}
		out = append(out, EpochStats{
			Epoch:              int(field(rec, "epoch")),
			MeanReward:         field(rec, "mean_reward"),
			RewardStd:          field(rec, "reward_std"),
			MeanImprovement:    field(rec, "mean_improvement"),
			MeanPctImprovement: field(rec, "mean_pct_improvement"),
			RejectionRatio:     field(rec, "rejection_ratio"),
			PolicyLoss:         field(rec, "policy_loss"),
			ValueLoss:          field(rec, "value_loss"),
			Entropy:            field(rec, "entropy"),
			ApproxKL:           field(rec, "approx_kl"),
			PolicyIters:        int(field(rec, "policy_iters")),
			Steps:              int(field(rec, "steps")),
			Seconds:            field(rec, "seconds"),
		})
	}
}
