package core

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteTrainingCSV(t *testing.T) {
	hist := []EpochStats{
		{Epoch: 1, MeanReward: -0.3, MeanImprovement: -2, RejectionRatio: 0.5},
		{Epoch: 2, MeanReward: 0.1, MeanImprovement: 3, RejectionRatio: 0.4, ApproxKL: 0.001},
	}
	var buf bytes.Buffer
	if err := WriteTrainingCSV(&buf, hist); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want header + 2", len(rows))
	}
	if rows[0][0] != "epoch" || rows[1][0] != "1" || rows[2][0] != "2" {
		t.Errorf("unexpected rows: %v", rows)
	}
	if rows[2][4] != "0.4" {
		t.Errorf("rejection ratio column = %q", rows[2][4])
	}
}

func TestWriteDecisionsCSV(t *testing.T) {
	r := &Recorder{Records: []DecisionRecord{
		{Features: []float64{0.1, 0.2, 0.3}, Rejected: true},
		{Features: []float64{0.4, 0.5, 0.6}, Rejected: false},
	}}
	var buf bytes.Buffer
	if err := r.WriteDecisionsCSV(&buf, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if strings.Join(rows[0], ",") != "a,b,f2,rejected" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][3] != "1" || rows[2][3] != "0" {
		t.Errorf("rejected flags wrong: %v %v", rows[1], rows[2])
	}
	// empty recorder writes nothing but succeeds
	var empty bytes.Buffer
	if err := (&Recorder{}).WriteDecisionsCSV(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Error("empty recorder produced output")
	}
}
