package core

import (
	"encoding/json"
	"strings"
	"testing"

	"schedinspector/internal/metrics"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

func sampleEpoch() EpochStats {
	return EpochStats{
		Epoch: 3, MeanReward: 0.25, RewardStd: 0.5, MeanImprovement: 1.5,
		MeanPctImprovement: 0.1, RejectionRatio: 0.2, PolicyLoss: -0.01,
		ValueLoss: 0.4, Entropy: 0.69, ApproxKL: 0.002, PolicyIters: 7,
		Steps: 1280, Seconds: 1.25,
	}
}

func TestCSVTrainLoggerRoundTrip(t *testing.T) {
	var buf strings.Builder
	l := NewCSVTrainLogger(&buf)
	want := sampleEpoch()
	l.LogEpoch(want)
	next := want
	next.Epoch = 4
	l.LogEpoch(next)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "epoch,mean_reward,") {
		t.Fatalf("header missing:\n%s", out)
	}
	if strings.Count(out, "epoch,") != 1 {
		t.Fatalf("header repeated:\n%s", out)
	}
	got, err := ReadEpochCSV(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d epochs", len(got))
	}
	if got[0] != want {
		t.Errorf("round trip:\n got %+v\nwant %+v", got[0], want)
	}
	if got[1].Epoch != 4 {
		t.Errorf("second epoch %d", got[1].Epoch)
	}
}

func TestReadEpochCSVReordered(t *testing.T) {
	in := "mean_reward,epoch,unknown_column\n0.5,7,999\n"
	got, err := ReadEpochCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Epoch != 7 || got[0].MeanReward != 0.5 {
		t.Errorf("reordered parse: %+v", got)
	}
	if _, err := ReadEpochCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("no error for CSV without epoch column")
	}
}

func TestJSONLTrainLogger(t *testing.T) {
	var buf strings.Builder
	NewJSONLTrainLogger(&buf).LogEpoch(sampleEpoch())
	var m map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range EpochColumns() {
		if _, ok := m[k]; !ok {
			t.Errorf("JSONL record missing %q: %v", k, m)
		}
	}
	if m["epoch"] != 3.0 || m["entropy"] != 0.69 {
		t.Errorf("JSONL values: %v", m)
	}
}

func TestMultiAndFuncLogger(t *testing.T) {
	var a, b int
	l := MultiTrainLogger(
		FuncTrainLogger(func(EpochStats) { a++ }),
		FuncTrainLogger(func(EpochStats) { b++ }),
	)
	l.LogEpoch(EpochStats{})
	l.LogEpoch(EpochStats{})
	if a != 2 || b != 2 {
		t.Errorf("fan-out counts %d/%d", a, b)
	}
}

// TestTrainerEmitsTelemetry runs a tiny real training loop and checks the
// logger hook fires with populated PPO fields — the acceptance path for
// "a training run writes per-epoch telemetry with loss/entropy/KL/reward".
func TestTrainerEmitsTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short mode")
	}
	var buf strings.Builder
	tr := workload.SDSCSP2Like(3000, 5)
	trainer, err := NewTrainer(TrainConfig{
		Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
		Batch: 4, SeqLen: 64, Seed: 1,
		Logger: NewCSVTrainLogger(&buf),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.Train(2, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEpochCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("logged %d epochs, want 2", len(got))
	}
	for _, st := range got {
		if st.Entropy <= 0 || st.Steps <= 0 || st.PolicyIters <= 0 || st.Seconds <= 0 {
			t.Errorf("epoch %d telemetry not populated: %+v", st.Epoch, st)
		}
	}
	if got[0].Epoch != 1 || got[1].Epoch != 2 {
		t.Errorf("epoch numbering %d,%d", got[0].Epoch, got[1].Epoch)
	}
}
