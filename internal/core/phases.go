package core

import (
	"fmt"
	"math/rand"
	"time"

	"schedinspector/internal/metrics"
	"schedinspector/internal/obs"
	"schedinspector/internal/rl"
	"schedinspector/internal/rollout"
)

// The trainer's epoch is split into explicit, separately-invokable phases so
// a shard of trajectory indices can be computed in any process and merged in
// index order (the DD-PPO-style multi-process engine in internal/dist):
//
//	BeginEpoch    — advance the epoch counter; pure bookkeeping.
//	RolloutShard  — simulate trajectory indices [lo, hi) and return one
//	                TrajDelta per index. Every per-index quantity (RNG
//	                stream, window start, sampled actions, reward) is a pure
//	                function of (Seed, epoch, index), so shards computed in
//	                different processes are bit-identical to the same
//	                indices of a single-process epoch.
//	ApplyDeltas   — fold the complete, index-ordered delta set into the PPO
//	                update (the Adam step) and produce the epoch statistics.
//	                The fold visits deltas strictly in index order, so the
//	                statistics, the PPO batch and the updated weights never
//	                depend on which process produced which shard.
//
// RunEpoch is exactly BeginEpoch + RolloutShard(0, Batch) + ApplyDeltas, so
// the single-process trainer and an N-worker distributed run execute the
// same code over the same per-index streams — which is what pins them
// bit-identical (see internal/dist's equivalence suite).

// TrajDelta is the rollout-shard phase's contribution for one trajectory
// index: the PPO transitions plus the scalar statistics the epoch fold
// consumes. It is the unit of exchange between distributed workers —
// internal/dist serializes these through the canonical delta codec — and
// deliberately contains only data, no references into trainer state.
type TrajDelta struct {
	// Index is the trajectory's position in the epoch batch [0, Batch).
	Index int

	// Steps are the trajectory's RL transitions (observation, sampled
	// action, behavior log-probability).
	Steps []rl.Step

	// Reward is the clamped terminal reward of the trajectory.
	Reward float64

	// Improvement is the raw metric difference m_orig - m_insp
	// (sign-flipped for maximized metrics); PctImprovement the relative
	// form. Both are summed, in index order, into the epoch means.
	Improvement    float64
	PctImprovement float64

	// Inspections and Rejections count the inspector's decisions in this
	// trajectory, the inputs of the epoch rejection ratio.
	Inspections int
	Rejections  int
}

// ShardRange returns the contiguous trajectory-index range [lo, hi) that
// rank owns out of batch indices split across world workers. Remainder
// indices go to the lowest ranks, so shard sizes differ by at most one and
// every index is owned by exactly one rank.
func ShardRange(batch, world, rank int) (lo, hi int) {
	if world < 1 || rank < 0 || rank >= world {
		panic(fmt.Sprintf("core: ShardRange(batch=%d, world=%d, rank=%d) out of range", batch, world, rank))
	}
	size, rem := batch/world, batch%world
	lo = rank*size + min(rank, rem)
	hi = lo + size
	if rank < rem {
		hi++
	}
	return lo, hi
}

// BeginEpoch advances the trainer into its next epoch and returns the epoch
// number. It starts the epoch's wall clock (EpochStats.Seconds spans
// BeginEpoch to ApplyDeltas) but performs no simulation: distributed
// workers call it in lockstep so every process derives the same
// (Seed, epoch, index) RNG streams before rolling out its own shard.
func (t *Trainer) BeginEpoch() int {
	t.epoch++
	t.epochT0 = time.Now()
	return t.epoch
}

// RolloutShard simulates trajectory indices [lo, hi) of the current epoch —
// baseline summaries fanned over cfg.Workers goroutines and deduplicated
// through the cache, then the inspected episodes through the decision-wave
// driver — and returns one TrajDelta per index, in index order.
//
// Each index b draws its window start and every action from the private
// stream derived from (Seed, epoch, b), and the wave driver reports slots
// under their global index (rollout.Config.SlotBase), so the deltas for
// [lo, hi) are bit-identical whether the shard is computed alone in a
// worker process or as part of a full single-process epoch.
func (t *Trainer) RolloutShard(lo, hi int) ([]TrajDelta, error) {
	B := t.cfg.Batch
	if lo < 0 || hi > B || lo >= hi {
		return nil, fmt.Errorf("core: RolloutShard [%d, %d) out of range for batch %d", lo, hi, B)
	}
	n := hi - lo

	// Per-index streams, global-indexed: entry b exists for b in [lo, hi).
	rngs := make([]*rand.Rand, hi)
	starts := make([]int, hi)
	for b := lo; b < hi; b++ {
		rngs[b] = streamRNG(t.cfg.Seed, streamTrain, uint64(t.epoch), uint64(b))
		starts[b] = t.trainLo + rngs[b].Intn(t.trainHi-t.trainLo)
	}

	workers := t.cfg.Workers
	if workers > n {
		workers = n
	}
	basePols, ok := rollout.PolicyClones(t.cfg.Policy, workers)
	if !ok {
		workers = 1 // stateful, uncloneable policy: stay sequential
	}

	// Phase 1: baseline summaries of every drawn window, deduped and
	// memoized by the cache.
	baseSums := make([]metrics.Summary, n)
	baseErrs := make([]error, n)
	busy, wall := rollout.RunIndexed(workers, n, func(w, k int) {
		baseSums[k], baseErrs[k] = t.baseline(starts[lo+k], basePols[w])
	})

	// Phase 2: inspected episodes through the wave driver. Concurrent
	// episodes each need their own stateful-policy instance; the inspector
	// itself needs only one read-only snapshot, since decision waves are
	// evaluated on the coordinating goroutine.
	epPols, ok := rollout.PolicyClones(t.cfg.Policy, n)
	epWorkers := workers
	if !ok {
		epWorkers = 1
	}
	eps := make([]rollout.Episode, n)
	for k := range eps {
		pol := epPols[0]
		if len(epPols) > 1 {
			pol = epPols[k]
		}
		eps[k] = rollout.Episode{
			Jobs:        t.cfg.Trace.Window(starts[lo+k], t.cfg.SeqLen),
			Cfg:         t.simConfig(pol),
			Interactive: true,
		}
	}
	sampler := newWaveSampler(t.insp.Clone(nil), rngs, hi, true)
	rollCfg := rollout.Config{Workers: epWorkers, Decide: sampler.decide, SlotBase: lo}
	if t.cfg.Flight != nil {
		// The epoch span roots this epoch's episode and decision spans; its
		// ID is a pure function of (seed, epoch), never of scheduling, so
		// every worker's shard records under the same root.
		epochID := obs.DeriveSpanID(uint64(t.cfg.Seed), streamTrain, uint64(t.epoch))
		if !t.epochSpanOpen {
			t.epochSpan = obs.StartSpan("epoch", epochID, 0, 0)
			t.epochSpanOpen = true
		}
		rollCfg.Spans = t.cfg.Flight.SpanTracer()
		rollCfg.Ring = t.cfg.Flight.TraceRing()
		rollCfg.SpanRoot = epochID
		sampler.explainTo(t.cfg.Flight, t.epoch, t.cfg.MaxRejections)
	}
	results, rep, runErr := rollout.Run(eps, rollCfg)
	busy += rep.Busy
	wall += rep.Wall
	t.cfg.Metrics.observeRollout(workers, busy.Seconds(), wall.Seconds())
	t.cfg.Metrics.observeCache(t.baseCache, &t.cacheSeen)
	if t.cfg.Metrics != nil {
		for _, s := range rep.EpisodeSeconds {
			t.cfg.Metrics.TrajectorySeconds.Observe(s)
		}
	}
	for k := range baseErrs {
		if baseErrs[k] != nil {
			return nil, baseErrs[k]
		}
	}
	if runErr != nil {
		return nil, runErr
	}

	deltas := make([]TrajDelta, n)
	for k := range results {
		b := lo + k
		orig, insp := baseSums[k], results[k].Summary(t.cfg.Trace.MaxProcs)
		diff := orig.Of(t.cfg.Metric) - insp.Of(t.cfg.Metric)
		if !t.cfg.Metric.Minimize() {
			diff = -diff
		}
		deltas[k] = TrajDelta{
			Index:          b,
			Steps:          sampler.steps[b],
			Reward:         clampReward(Reward(t.cfg.RewardKind, t.cfg.Metric, orig, insp)),
			Improvement:    diff,
			PctImprovement: metrics.Improvement(t.cfg.Metric, orig, insp),
			Inspections:    results[k].Inspections,
			Rejections:     results[k].Rejections,
		}
	}
	return deltas, nil
}

// ApplyDeltas folds a complete epoch's deltas — all Batch trajectory
// indices, in index order — into one PPO update and returns the epoch
// statistics. The fold order is part of the contract: statistics accumulate
// and trajectories enter the PPO batch strictly by ascending index, so the
// update is bit-identical however the deltas were produced (one process or
// many). An incomplete, duplicated or out-of-order delta set is rejected
// before any state changes.
func (t *Trainer) ApplyDeltas(deltas []TrajDelta) (EpochStats, error) {
	stats := EpochStats{Epoch: t.epoch}
	B := t.cfg.Batch
	if len(deltas) != B {
		return stats, fmt.Errorf("core: ApplyDeltas got %d deltas, epoch batch is %d", len(deltas), B)
	}
	for i := range deltas {
		if deltas[i].Index != i {
			return stats, fmt.Errorf("core: ApplyDeltas delta %d carries index %d; deltas must cover 0..%d in order",
				i, deltas[i].Index, B-1)
		}
	}

	batch := make([]rl.Trajectory, 0, B)
	var inspections, rejections int
	for i := range deltas {
		d := &deltas[i]
		batch = append(batch, rl.Trajectory{Steps: d.Steps, Reward: d.Reward})
		stats.MeanImprovement += d.Improvement
		stats.MeanPctImprovement += d.PctImprovement
		inspections += d.Inspections
		rejections += d.Rejections
	}
	n := float64(B)
	stats.MeanImprovement /= n
	stats.MeanPctImprovement /= n
	if inspections > 0 {
		stats.RejectionRatio = float64(rejections) / float64(inspections)
	}
	up, err := t.ppo.Update(batch)
	if err != nil {
		return stats, err
	}
	stats.MeanReward = up.MeanReward
	stats.RewardStd = up.RewardStd
	stats.ApproxKL = up.ApproxKL
	stats.PolicyLoss = up.PolicyLoss
	stats.ValueLoss = up.ValueLoss
	stats.Entropy = up.Entropy
	stats.PolicyIters = up.PolicyIters
	stats.Steps = up.Steps
	stats.Seconds = time.Since(t.epochT0).Seconds()
	if t.cfg.Flight != nil && t.epochSpanOpen {
		t.epochSpan.Attrs = append(t.epochSpan.Attrs,
			obs.Attr{Key: "epoch", Num: float64(t.epoch)},
			obs.Attr{Key: "steps", Num: float64(stats.Steps)},
			obs.Attr{Key: "reject_ratio", Num: stats.RejectionRatio},
			obs.Attr{Key: "mean_reward", Num: stats.MeanReward},
		)
		t.epochSpan.End(0)
		t.cfg.Flight.EmitSpan(t.epochSpan)
		t.epochSpan = obs.Span{}
		t.epochSpanOpen = false
	}
	if t.cfg.Logger != nil {
		t.cfg.Logger.LogEpoch(stats)
	}
	return stats, nil
}
