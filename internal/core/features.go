// Package core implements SchedInspector itself: the feature-building
// mechanism (§3.3), the reward functions (§3.4), the RL inspector that
// accepts or rejects base-scheduler decisions, its PPO training loop
// (Figure 3), evaluation helpers for the paper's experiments, and the
// decision recorder behind the §5 "what SchedInspector learns" analysis.
package core

import (
	"fmt"
	"math"

	"schedinspector/internal/metrics"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

// FeatureMode selects how the environment state is summarized for the RL
// agent. The paper compares three mechanisms (§4.3.1, Figure 5).
type FeatureMode int

const (
	// ManualFeatures is the paper's engineered set: scheduled-job
	// attributes, rejected times, metric-aware queue delays, cluster
	// availability, runnable bit and backfilling contributions.
	ManualFeatures FeatureMode = iota
	// CompactedFeatures keeps only the scheduled job and cluster state,
	// dropping the aggregated queue-delay and backfill features.
	CompactedFeatures
	// NativeFeatures feeds the (padded) raw environment state: the scheduled
	// job plus the first NativeQueueSlots waiting jobs' raw attributes.
	NativeFeatures
)

// NativeQueueSlots is how many waiting jobs the native feature vector
// exposes verbatim.
const NativeQueueSlots = 32

// String returns the mode's name.
func (m FeatureMode) String() string {
	switch m {
	case ManualFeatures:
		return "manual"
	case CompactedFeatures:
		return "compacted"
	case NativeFeatures:
		return "native"
	}
	return fmt.Sprintf("FeatureMode(%d)", int(m))
}

// ParseFeatureMode converts a name into a FeatureMode.
func ParseFeatureMode(s string) (FeatureMode, error) {
	switch s {
	case "manual":
		return ManualFeatures, nil
	case "compacted":
		return CompactedFeatures, nil
	case "native":
		return NativeFeatures, nil
	}
	return 0, fmt.Errorf("core: unknown feature mode %q", s)
}

// Dim returns the feature vector length of the mode.
func (m FeatureMode) Dim() int {
	switch m {
	case ManualFeatures:
		return 8
	case CompactedFeatures:
		return 5
	case NativeFeatures:
		return 6 + 3*NativeQueueSlots
	}
	panic("core: unknown feature mode")
}

// Normalizer scales raw state quantities into the [0,1)-ish ranges the
// network trains on, using historical statistics of the (training) trace —
// the "historical job trace statistics" the paper's statistical strategy
// relies on (§2.2).
type Normalizer struct {
	MaxEst        float64 // largest estimated runtime seen in the trace
	MeanEst       float64 // mean estimated runtime
	MaxProcs      int     // cluster size
	MaxRejections int     // per-job rejection cap (feature scale)
	MaxInterval   float64 // retry cut-off used for queue-delay scaling
	Metric        metrics.Metric
}

// NewNormalizer derives normalization constants from trace statistics for
// the given metric and the simulator's rejection hyperparameters.
func NewNormalizer(s workload.Stats, metric metrics.Metric, maxRejections int, maxInterval float64) Normalizer {
	n := Normalizer{
		MaxEst:        s.MaxEst,
		MeanEst:       s.MeanEst,
		MaxProcs:      s.MaxProcs,
		MaxRejections: maxRejections,
		MaxInterval:   maxInterval,
		Metric:        metric,
	}
	if n.MaxEst <= 0 {
		n.MaxEst = 1
	}
	if n.MeanEst <= 0 {
		n.MeanEst = 1
	}
	if n.MaxProcs <= 0 {
		n.MaxProcs = 1
	}
	if n.MaxRejections <= 0 {
		n.MaxRejections = sim.DefaultMaxRejections
	}
	if n.MaxInterval <= 0 {
		n.MaxInterval = sim.DefaultMaxInterval
	}
	return n
}

// squash maps x >= 0 into [0,1) with half-point at c.
func squash(x, c float64) float64 {
	if x <= 0 {
		return 0
	}
	return x / (x + c)
}

// QueueDelay computes the raw metric-aware queue-delay aggregate (§3.3): the
// summed expected penalty of idling the cluster for one retry interval
// across all waiting jobs.
func (n Normalizer) QueueDelay(queue []sim.QueueItem) float64 {
	var sum float64
	for _, q := range queue {
		sum += metrics.DeltaPerWaitingJob(n.Metric, n.MaxInterval, q.Est)
	}
	return sum
}

// queueDelayScale is the squash half-point for the queue-delay feature: the
// penalty of ten average jobs waiting one retry interval, so the feature
// self-adapts to whichever metric is optimized.
func (n Normalizer) queueDelayScale() float64 {
	return 10 * metrics.DeltaPerWaitingJob(n.Metric, n.MaxInterval, n.MeanEst)
}

// Features builds the feature vector for state s under mode, reusing dst
// when it has the right capacity. Values are all in [0,1].
//
// Manual layout (indices matter to the §5 analysis):
//
//	0 wait     — scheduled job's waiting time, squashed at the mean estimate
//	1 est      — scheduled job's estimated runtime / max estimate
//	2 procs    — scheduled job's requested processors / cluster size
//	3 rejected — rejections so far / MAX_REJECTION_TIMES
//	4 qdelay   — metric-aware queue-delay aggregate, squashed
//	5 avail    — free processors / cluster size
//	6 runnable — 1 if the job fits right now
//	7 backfill — backfillable-job count, squashed at 5 (0 when disabled)
func (n Normalizer) Features(dst []float64, mode FeatureMode, s *sim.State) []float64 {
	dst = resize(dst, mode.Dim())
	switch mode {
	case ManualFeatures:
		dst[0] = squash(s.JobWait, n.MeanEst)
		dst[1] = math.Min(s.Job.Est/n.MaxEst, 1)
		dst[2] = math.Min(float64(s.Job.Procs)/float64(n.MaxProcs), 1)
		dst[3] = math.Min(float64(s.Rejections)/float64(n.MaxRejections), 1)
		dst[4] = squash(n.QueueDelay(s.Queue), n.queueDelayScale())
		dst[5] = float64(s.FreeProcs) / float64(n.MaxProcs)
		dst[6] = b2f(s.Runnable)
		dst[7] = squash(float64(s.BackfillCount), 5)
	case CompactedFeatures:
		dst[0] = squash(s.JobWait, n.MeanEst)
		dst[1] = math.Min(s.Job.Est/n.MaxEst, 1)
		dst[2] = math.Min(float64(s.Job.Procs)/float64(n.MaxProcs), 1)
		dst[3] = float64(s.FreeProcs) / float64(n.MaxProcs)
		dst[4] = b2f(s.Runnable)
	case NativeFeatures:
		dst[0] = squash(s.JobWait, n.MeanEst)
		dst[1] = math.Min(s.Job.Est/n.MaxEst, 1)
		dst[2] = math.Min(float64(s.Job.Procs)/float64(n.MaxProcs), 1)
		dst[3] = math.Min(float64(s.Rejections)/float64(n.MaxRejections), 1)
		dst[4] = float64(s.FreeProcs) / float64(n.MaxProcs)
		dst[5] = b2f(s.Runnable)
		for i := 0; i < NativeQueueSlots; i++ {
			base := 6 + 3*i
			if i < len(s.Queue) {
				q := s.Queue[i]
				dst[base] = squash(q.Wait, n.MeanEst)
				dst[base+1] = math.Min(q.Est/n.MaxEst, 1)
				dst[base+2] = math.Min(float64(q.Procs)/float64(n.MaxProcs), 1)
			} else {
				dst[base], dst[base+1], dst[base+2] = 0, 0, 0
			}
		}
	default:
		panic("core: unknown feature mode")
	}
	return dst
}

func resize(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ManualFeatureNames labels the manual feature vector, used by the §5
// analysis and Figure 13 reproduction.
func ManualFeatureNames() []string {
	return []string{
		"waiting_time", "job_execution_time", "requested_nodes",
		"rejected_times", "queue_delays", "free_nodes", "runnable", "backfill_contributions",
	}
}

// FeatureNames labels the feature vector of any mode, index-aligned with
// Normalizer.Features output — the explain-record header that lets the
// analysis layer report per-feature statistics by name.
func (m FeatureMode) FeatureNames() []string {
	switch m {
	case ManualFeatures:
		return ManualFeatureNames()
	case CompactedFeatures:
		return []string{
			"waiting_time", "job_execution_time", "requested_nodes", "free_nodes", "runnable",
		}
	case NativeFeatures:
		names := []string{
			"waiting_time", "job_execution_time", "requested_nodes",
			"rejected_times", "free_nodes", "runnable",
		}
		for i := 0; i < NativeQueueSlots; i++ {
			names = append(names,
				fmt.Sprintf("queue%d_wait", i),
				fmt.Sprintf("queue%d_est", i),
				fmt.Sprintf("queue%d_procs", i),
			)
		}
		return names
	}
	panic("core: unknown feature mode")
}
