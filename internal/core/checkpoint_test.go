package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"schedinspector/internal/ckpt"
	"schedinspector/internal/metrics"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

func saveModel(t *testing.T, tr *Trainer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Inspector().Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func evalSummaries(t *testing.T, insp *Inspector, trace *workload.Trace) EvalResult {
	t.Helper()
	res, err := Evaluate(insp, EvalConfig{
		Trace: trace, Policy: sched.SJF(), Metric: metrics.BSLD,
		Sequences: 4, SeqLen: 64, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCheckpointResumeBitIdentical is the tentpole guarantee: training 2N
// epochs straight and training N epochs, "dying", and resuming from the
// checkpoint for N more produce bit-identical serialized models and
// identical evaluation results — at one worker and at many (the same
// invariant the workers=1≡workers=8 suite pins for parallelism).
func TestCheckpointResumeBitIdentical(t *testing.T) {
	trace := workload.SDSCSP2Like(3000, 7)
	for _, workers := range []int{1, 4} {
		cfg := TrainConfig{
			Trace: trace, Policy: sched.SJF(), Metric: metrics.BSLD,
			Batch: 6, SeqLen: 64, Seed: 11, Workers: workers,
		}

		// Uninterrupted: 4 epochs straight.
		straight, err := NewTrainer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		statsA, err := straight.Train(4, nil)
		if err != nil {
			t.Fatal(err)
		}
		modelA := saveModel(t, straight)

		// Interrupted: 2 epochs, checkpoint, drop the trainer (the "kill"),
		// rebuild from config, resume, 2 more epochs.
		dir := t.TempDir()
		first, err := NewTrainer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := first.Train(2, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := first.SaveCheckpoint(dir); err != nil {
			t.Fatal(err)
		}
		first = nil

		resumed, err := NewTrainer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ck, err := resumed.ResumeLatest(dir)
		if err != nil {
			t.Fatal(err)
		}
		if ck.Epoch != 2 {
			t.Fatalf("workers=%d: resumed checkpoint epoch %d, want 2", workers, ck.Epoch)
		}
		statsB, err := resumed.Train(2, nil)
		if err != nil {
			t.Fatal(err)
		}
		modelB := saveModel(t, resumed)

		if !bytes.Equal(modelA, modelB) {
			t.Errorf("workers=%d: resumed model bytes differ from the uninterrupted run", workers)
		}
		// Post-resume epochs must match the straight run's epochs 3 and 4
		// stat for stat (wall clock aside).
		for i, b := range statsB {
			a := statsA[2+i]
			a.Seconds, b.Seconds = 0, 0
			if a != b {
				t.Errorf("workers=%d: epoch %d stats differ:\n  straight: %+v\n  resumed:  %+v",
					workers, a.Epoch, a, b)
			}
		}
		evA := evalSummaries(t, straight.Inspector(), trace)
		evB := evalSummaries(t, resumed.Inspector(), trace)
		if evA.Inspections != evB.Inspections || evA.Rejections != evB.Rejections {
			t.Errorf("workers=%d: eval counts differ: %d/%d vs %d/%d", workers,
				evA.Inspections, evA.Rejections, evB.Inspections, evB.Rejections)
		}
		for i := range evA.Base {
			if evA.Base[i] != evB.Base[i] || evA.Insp[i] != evB.Insp[i] {
				t.Errorf("workers=%d: eval sequence %d summaries differ", workers, i)
			}
		}
	}
}

// TestCheckpointTornWriteFallsBack covers the crash-during-save story: a
// truncated or corrupted newest checkpoint is rejected with a typed error
// and resume falls back to the previous good checkpoint.
func TestCheckpointTornWriteFallsBack(t *testing.T) {
	trace := workload.SDSCSP2Like(2500, 3)
	cfg := TrainConfig{
		Trace: trace, Policy: sched.SJF(), Metric: metrics.BSLD,
		Batch: 4, SeqLen: 64, Seed: 9,
	}
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := tr.Train(1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.SaveCheckpoint(dir); err != nil {
		t.Fatal(err)
	}
	goodModel := saveModel(t, tr)
	if _, err := tr.Train(1, nil); err != nil {
		t.Fatal(err)
	}
	path2, err := tr.SaveCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		mut  func() []byte
	}{
		{"truncated header", func() []byte { return data[:10] }},
		{"truncated payload", func() []byte { return data[:len(data)/2] }},
		{"missing final bytes", func() []byte { return data[:len(data)-3] }},
		{"flipped payload bit", func() []byte {
			d := append([]byte(nil), data...)
			d[len(d)/2] ^= 0x01
			return d
		}},
		{"flipped magic", func() []byte {
			d := append([]byte(nil), data...)
			d[0] ^= 0xFF
			return d
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path2, tc.mut(), 0o644); err != nil {
				t.Fatal(err)
			}
			// Direct load: typed corruption error, never a partial state.
			if _, err := LoadTrainerCheckpoint(path2); !errors.Is(err, ckpt.ErrCorrupt) {
				t.Fatalf("load of damaged checkpoint: err=%v, want ckpt.ErrCorrupt", err)
			}
			// Resume: silently falls back to the epoch-1 checkpoint.
			fresh, err := NewTrainer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ck, err := fresh.ResumeLatest(dir)
			if err != nil {
				t.Fatal(err)
			}
			if ck.Epoch != 1 {
				t.Fatalf("fell back to epoch %d, want 1", ck.Epoch)
			}
			if got := saveModel(t, fresh); !bytes.Equal(got, goodModel) {
				t.Error("fallback checkpoint did not restore the epoch-1 model")
			}
		})
	}

	// With every file damaged, resume reports "no checkpoint" rather than
	// loading garbage.
	entries, err := ckpt.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.WriteFile(e.Path, []byte("scrambled"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fresh, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.ResumeLatest(dir); !errors.Is(err, ckpt.ErrNoCheckpoint) {
		t.Fatalf("all-corrupt resume: err=%v, want ckpt.ErrNoCheckpoint", err)
	}
}

// TestResumeRejectsMismatchedConfig: a checkpoint from a different seed,
// feature mode or architecture must be refused — installing it would
// silently break determinism or crash mid-epoch.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	trace := workload.SDSCSP2Like(2500, 4)
	base := TrainConfig{
		Trace: trace, Policy: sched.SJF(), Metric: metrics.BSLD,
		Batch: 4, SeqLen: 64, Seed: 9,
	}
	src, err := NewTrainer(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Train(1, nil); err != nil {
		t.Fatal(err)
	}
	c := src.Checkpoint()

	cases := []struct {
		name string
		mut  func(*TrainConfig)
		want string
	}{
		{"seed", func(cfg *TrainConfig) { cfg.Seed = 10 }, "seed"},
		{"feature mode", func(cfg *TrainConfig) { cfg.FeatureMode = CompactedFeatures }, "feature mode"},
		{"architecture", func(cfg *TrainConfig) { cfg.Hidden = []int{16, 16} }, "layers"},
		{"metric", func(cfg *TrainConfig) { cfg.Metric = metrics.Wait }, "normalizer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			dst, err := NewTrainer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			err = dst.Resume(c)
			if err == nil {
				t.Fatal("mismatched checkpoint accepted")
			}
			if !contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

// TestTrainCtxInterruptAndResume drives the interruption path end to end
// in-process: cancel after the first epoch, observe ErrInterrupted plus a
// checkpoint on disk, resume into a fresh trainer and finish — matching
// the uninterrupted run bit for bit.
func TestTrainCtxInterruptAndResume(t *testing.T) {
	trace := workload.SDSCSP2Like(2500, 6)
	cfg := TrainConfig{
		Trace: trace, Policy: sched.SJF(), Metric: metrics.BSLD,
		Batch: 4, SeqLen: 64, Seed: 13,
	}

	straight, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := straight.Train(3, nil); err != nil {
		t.Fatal(err)
	}
	want := saveModel(t, straight)

	dir := t.TempDir()
	victim, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	stats, err := victim.TrainCtx(ctx, 3, CheckpointConfig{Dir: dir}, func(EpochStats) { cancel() })
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("TrainCtx err=%v, want ErrInterrupted", err)
	}
	if len(stats) != 1 {
		t.Fatalf("interrupted run reported %d epochs, want 1", len(stats))
	}

	resumed, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := resumed.ResumeLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Epoch != 1 {
		t.Fatalf("checkpoint epoch %d, want 1", ck.Epoch)
	}
	if _, err := resumed.TrainCtx(context.Background(), 2, CheckpointConfig{Dir: dir}, nil); err != nil {
		t.Fatal(err)
	}
	if got := saveModel(t, resumed); !bytes.Equal(got, want) {
		t.Error("interrupted+resumed model differs from the uninterrupted run")
	}
	// Completion wrote a final checkpoint at epoch 3.
	c, _, err := LatestTrainerCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Epoch != 3 {
		t.Errorf("final checkpoint epoch %d, want 3", c.Epoch)
	}
}

// TestTrainCtxInterruptSaveFailure: when interruption's final checkpoint
// save fails, the returned error must NOT match ErrInterrupted — callers
// read ErrInterrupted as "progress is safe on disk" (the CLI prints a
// resume hint and exits 0), so a disk-full or permission error here has to
// surface as a plain failure.
func TestTrainCtxInterruptSaveFailure(t *testing.T) {
	tr, err := NewTrainer(TrainConfig{
		Trace: workload.SDSCSP2Like(2500, 6), Policy: sched.SJF(), Metric: metrics.BSLD,
		Batch: 2, SeqLen: 64, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A regular file where the checkpoint directory should be makes
	// MkdirAll (and therefore every save) fail.
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = tr.TrainCtx(ctx, 3, CheckpointConfig{Dir: blocker}, nil)
	if err == nil {
		t.Fatal("TrainCtx reported success with an unwritable checkpoint dir")
	}
	if errors.Is(err, ErrInterrupted) {
		t.Fatalf("err=%v matches ErrInterrupted; a failed save must not look like a clean interruption", err)
	}
}

// TestTrainCtxPeriodicSavesAndPrune: Every controls checkpoint cadence and
// Keep bounds the directory.
func TestTrainCtxPeriodicSavesAndPrune(t *testing.T) {
	trace := workload.SDSCSP2Like(2500, 8)
	tr, err := NewTrainer(TrainConfig{
		Trace: trace, Policy: sched.SJF(), Metric: metrics.BSLD,
		Batch: 3, SeqLen: 64, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := tr.TrainCtx(context.Background(), 3, CheckpointConfig{Dir: dir, Every: 1, Keep: 2}, nil); err != nil {
		t.Fatal(err)
	}
	entries, err := ckpt.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Seq != 2 || entries[1].Seq != 3 {
		t.Fatalf("retained checkpoints %+v, want epochs 2 and 3", entries)
	}
}

// TestCheckpointInspectorServes: a checkpoint is directly servable and
// agrees with the trainer's live model.
func TestCheckpointInspectorServes(t *testing.T) {
	trace := workload.SDSCSP2Like(2500, 2)
	tr, err := NewTrainer(TrainConfig{
		Trace: trace, Policy: sched.SJF(), Metric: metrics.BSLD,
		Batch: 3, SeqLen: 64, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Train(1, nil); err != nil {
		t.Fatal(err)
	}
	c := tr.Checkpoint()
	payload, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTrainerCheckpoint(TrainerCheckpointVersion, payload)
	if err != nil {
		t.Fatal(err)
	}
	live := saveModel(t, tr)
	var buf bytes.Buffer
	if err := back.Inspector(nil).Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, buf.Bytes()) {
		t.Error("checkpoint-served inspector differs from the live model")
	}
	// Wrong schema version is refused.
	if _, err := DecodeTrainerCheckpoint(TrainerCheckpointVersion+1, payload); err == nil {
		t.Error("future schema version accepted")
	}
}
