package core

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"schedinspector/internal/metrics"
	"schedinspector/internal/rl"
	"schedinspector/internal/rollout"
	"schedinspector/internal/sched"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

// ---------------------------------------------------------------------------
// Legacy reference engine.
//
// This is the pre-driver rollout engine, preserved verbatim in test form:
// callback inspectors (one scalar policy forward per decision), one
// inspector snapshot per worker, and per-trajectory work fanned out with
// runIndexed. The batched wave driver must reproduce it bit for bit — same
// epoch statistics, same PPO batches, same serialized models, same
// evaluation summaries.
// ---------------------------------------------------------------------------

type legacyTrajResult struct {
	steps       []rl.Step
	reward      float64
	diff, pct   float64
	inspections int
	rejections  int
	err         error
}

func legacySimConfig(t *Trainer, pol sched.Policy, insp sim.Inspector) sim.Config {
	return sim.Config{
		MaxProcs:      t.cfg.Trace.MaxProcs,
		Policy:        pol,
		Backfill:      t.cfg.Backfill,
		Inspector:     insp,
		MaxInterval:   t.cfg.MaxInterval,
		MaxRejections: t.cfg.MaxRejections,
	}
}

func legacyRollout(t *Trainer, b int, pol sched.Policy, snap *Inspector, out *legacyTrajResult) {
	rng := streamRNG(t.cfg.Seed, streamTrain, uint64(t.epoch), uint64(b))
	start := t.trainLo + rng.Intn(t.trainHi-t.trainLo)
	orig, err := t.baseline(start, pol)
	if err != nil {
		out.err = err
		return
	}
	jobs := t.cfg.Trace.Window(start, t.cfg.SeqLen)
	snap.Agent.Reseed(rng)
	var steps []rl.Step
	res, err := sim.Run(jobs, legacySimConfig(t, pol, snap.Sampling(&steps)))
	if err != nil {
		out.err = err
		return
	}
	insp := res.Summary(t.cfg.Trace.MaxProcs)
	out.steps = steps
	out.reward = clampReward(Reward(t.cfg.RewardKind, t.cfg.Metric, orig, insp))
	out.diff = orig.Of(t.cfg.Metric) - insp.Of(t.cfg.Metric)
	if !t.cfg.Metric.Minimize() {
		out.diff = -out.diff
	}
	out.pct = metrics.Improvement(t.cfg.Metric, orig, insp)
	out.inspections = res.Inspections
	out.rejections = res.Rejections
}

func legacyRunEpoch(t *Trainer) (EpochStats, error) {
	t.epoch++
	t0 := time.Now()
	stats := EpochStats{Epoch: t.epoch}

	workers := t.cfg.Workers
	if workers > t.cfg.Batch {
		workers = t.cfg.Batch
	}
	pols, ok := rollout.PolicyClones(t.cfg.Policy, workers)
	if !ok {
		workers = 1
	}
	snaps := make([]*Inspector, workers)
	for w := range snaps {
		snaps[w] = t.insp.Clone(nil)
	}

	results := make([]legacyTrajResult, t.cfg.Batch)
	rollout.RunIndexed(workers, t.cfg.Batch, func(w, b int) {
		legacyRollout(t, b, pols[w], snaps[w], &results[b])
	})

	batch := make([]rl.Trajectory, 0, t.cfg.Batch)
	var inspections, rejections int
	for b := range results {
		r := &results[b]
		if r.err != nil {
			return stats, r.err
		}
		batch = append(batch, rl.Trajectory{Steps: r.steps, Reward: r.reward})
		stats.MeanImprovement += r.diff
		stats.MeanPctImprovement += r.pct
		inspections += r.inspections
		rejections += r.rejections
	}
	n := float64(t.cfg.Batch)
	stats.MeanImprovement /= n
	stats.MeanPctImprovement /= n
	if inspections > 0 {
		stats.RejectionRatio = float64(rejections) / float64(inspections)
	}
	up, err := t.ppo.Update(batch)
	if err != nil {
		return stats, err
	}
	stats.MeanReward = up.MeanReward
	stats.RewardStd = up.RewardStd
	stats.ApproxKL = up.ApproxKL
	stats.PolicyLoss = up.PolicyLoss
	stats.ValueLoss = up.ValueLoss
	stats.Entropy = up.Entropy
	stats.PolicyIters = up.PolicyIters
	stats.Steps = up.Steps
	stats.Seconds = time.Since(t0).Seconds()
	return stats, nil
}

func legacyEvaluate(insp *Inspector, cfg EvalConfig) (EvalResult, error) {
	cfg = cfg.withDefaults()
	lo := cfg.Trace.Split(cfg.TestFrom)
	hi := cfg.Trace.Len() - cfg.SeqLen + 1
	if hi <= lo {
		lo = 0
	}

	workers := cfg.Workers
	if workers > cfg.Sequences {
		workers = cfg.Sequences
	}
	pols, ok := rollout.PolicyClones(cfg.Policy, workers)
	if !ok {
		workers = 1
	}
	snaps := make([]*Inspector, workers)
	if insp != nil {
		for w := range snaps {
			snaps[w] = insp.Clone(nil)
		}
	}

	type seqResult struct {
		base, insp  metrics.Summary
		inspections int
		rejections  int
		err         error
	}
	results := make([]seqResult, cfg.Sequences)
	rollout.RunIndexed(workers, cfg.Sequences, func(w, i int) {
		r := &results[i]
		rng := streamRNG(cfg.Seed, streamEval, uint64(i))
		jobs := cfg.Trace.RandomWindow(rng, cfg.SeqLen, lo, hi)
		simCfg := sim.Config{
			MaxProcs:      cfg.Trace.MaxProcs,
			Policy:        pols[w],
			Backfill:      cfg.Backfill,
			MaxInterval:   cfg.MaxInterval,
			MaxRejections: cfg.MaxRejections,
		}
		base, err := sim.Run(jobs, simCfg)
		if err != nil {
			r.err = err
			return
		}
		r.base = base.Summary(cfg.Trace.MaxProcs)

		if insp != nil {
			if cfg.Greedy {
				simCfg.Inspector = snaps[w].Greedy()
			} else {
				snaps[w].Agent.Reseed(rng)
				simCfg.Inspector = snaps[w].Stochastic()
			}
		}
		ins, err := sim.Run(jobs, simCfg)
		if err != nil {
			r.err = err
			return
		}
		r.insp = ins.Summary(cfg.Trace.MaxProcs)
		r.inspections = ins.Inspections
		r.rejections = ins.Rejections
	})

	var out EvalResult
	out.Base = make([]metrics.Summary, 0, cfg.Sequences)
	out.Insp = make([]metrics.Summary, 0, cfg.Sequences)
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return EvalResult{}, r.err
		}
		out.Base = append(out.Base, r.base)
		out.Insp = append(out.Insp, r.insp)
		out.Inspections += r.inspections
		out.Rejections += r.rejections
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Golden equivalence: batched wave engine vs the legacy callback engine.
// ---------------------------------------------------------------------------

// TestEquivTrainerVsLegacy trains two identically-seeded trainers — one
// through the wave driver, one through the verbatim legacy engine — and
// requires identical epoch statistics (wall clock aside) and identical
// serialized models, across a stateless and a stateful base policy and
// across worker counts.
func TestEquivTrainerVsLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("full equivalence training skipped in -short mode (run via make equiv)")
	}
	tr := workload.SDSCSP2Like(3000, 19)
	for _, tc := range []struct {
		name    string
		policy  func() sched.Policy
		workers int
	}{
		{"SJF/seq", sched.SJF, 1},
		{"SJF/par", sched.SJF, 8},
		{"Slurm/par", func() sched.Policy { return sched.NewSlurm(tr) }, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mk := func() *Trainer {
				trainer, err := NewTrainer(TrainConfig{
					Trace: tr, Policy: tc.policy(), Metric: metrics.BSLD,
					Batch: 6, SeqLen: 64, Seed: 23, Workers: tc.workers,
					Backfill: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				return trainer
			}
			newT, oldT := mk(), mk()
			for epoch := 0; epoch < 3; epoch++ {
				got, err := newT.RunEpoch()
				if err != nil {
					t.Fatal(err)
				}
				want, err := legacyRunEpoch(oldT)
				if err != nil {
					t.Fatal(err)
				}
				got.Seconds, want.Seconds = 0, 0
				if got != want {
					t.Fatalf("epoch %d stats diverged\nlegacy: %+v\nwave:   %+v", epoch+1, want, got)
				}
			}
			var newBuf, oldBuf bytes.Buffer
			if err := newT.Inspector().Save(&newBuf); err != nil {
				t.Fatal(err)
			}
			if err := oldT.Inspector().Save(&oldBuf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(newBuf.Bytes(), oldBuf.Bytes()) {
				t.Error("serialized models diverged between the wave and legacy engines")
			}
		})
	}
}

// TestEquivEvaluateVsLegacy compares Evaluate against the verbatim legacy
// evaluator: identical per-sequence summaries and rejection accounting
// across policies, inspection modes and worker counts.
func TestEquivEvaluateVsLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("full equivalence evaluation skipped in -short mode (run via make equiv)")
	}
	tr := workload.SDSCSP2Like(3000, 29)
	insp := newTestInspector(t, ManualFeatures)
	for _, tc := range []struct {
		name    string
		policy  func() sched.Policy
		insp    *Inspector
		greedy  bool
		workers int
	}{
		{"SJF/stochastic/seq", sched.SJF, insp, false, 1},
		{"SJF/stochastic/par", sched.SJF, insp, false, 8},
		{"SJF/greedy/par", sched.SJF, insp, true, 8},
		{"Slurm/stochastic/par", func() sched.Policy { return sched.NewSlurm(tr) }, insp, false, 8},
		{"SJF/nil-inspector/par", sched.SJF, nil, false, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := EvalConfig{
				Trace: tr, Policy: tc.policy(), Metric: metrics.BSLD,
				Sequences: 6, SeqLen: 64, Seed: 31, Workers: tc.workers,
				Backfill: true, Greedy: tc.greedy,
			}
			got, err := Evaluate(tc.insp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Policy = tc.policy() // fresh stateful instance for the legacy pass
			want, err := legacyEvaluate(tc.insp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("evaluation diverged\nlegacy: %+v\nwave:   %+v", want, got)
			}
		})
	}
}
