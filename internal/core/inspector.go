package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"

	"schedinspector/internal/metrics"
	"schedinspector/internal/nn"
	"schedinspector/internal/rl"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

// Actions of the inspector's binary policy head.
const (
	ActionAccept = 0
	ActionReject = 1
)

// Inspector is a trained (or in-training) SchedInspector model: the RL
// agent, the feature mode it observes through, and the normalization
// constants of the trace it was fitted to.
type Inspector struct {
	Agent *rl.Agent
	Mode  FeatureMode
	Norm  Normalizer

	feat []float64 // scratch feature buffer
}

// DefaultHidden is the paper's network architecture: three hidden layers of
// 32, 16 and 8 neurons (§3.1).
func DefaultHidden() []int { return []int{32, 16, 8} }

// NewInspector creates an untrained inspector with the paper's architecture
// (or custom hidden sizes) for the given feature mode and normalizer.
func NewInspector(rng *rand.Rand, mode FeatureMode, norm Normalizer, hidden []int) *Inspector {
	if len(hidden) == 0 {
		hidden = DefaultHidden()
	}
	return &Inspector{
		Agent: rl.NewAgent(rng, mode.Dim(), hidden, 2),
		Mode:  mode,
		Norm:  norm,
	}
}

// Clone returns a deep copy of the inspector whose sampling draws from rng —
// the read-only policy snapshot each rollout worker owns. Both networks are
// copied (via nn.MLP.Clone), so concurrent sampling from the clone can never
// race with PPO updates to the original. rng may be nil for greedy-only use;
// the rollout engine installs per-trajectory streams with Agent.Reseed.
func (in *Inspector) Clone(rng *rand.Rand) *Inspector {
	return &Inspector{Agent: in.Agent.Clone(rng), Mode: in.Mode, Norm: in.Norm}
}

// WithNormalizer returns a copy of the inspector bound to different trace
// statistics — how a model trained on trace X is applied to trace Y
// (Table 4). The underlying networks are shared, not copied.
func (in *Inspector) WithNormalizer(norm Normalizer) *Inspector {
	return &Inspector{Agent: in.Agent, Mode: in.Mode, Norm: norm}
}

// Greedy returns a deterministic sim.Inspector that rejects whenever the
// policy's argmax action is reject — the inference mode used at evaluation
// time and in production.
func (in *Inspector) Greedy() sim.Inspector {
	return func(s *sim.State) bool {
		in.feat = in.Norm.Features(in.feat, in.Mode, s)
		return in.Agent.Greedy(in.feat) == ActionReject
	}
}

// Stochastic returns a sim.Inspector that samples actions from the policy
// without recording. Per §3.2 of the paper, inference "acts similarly as it
// does in the training process": the deployed inspector keeps the policy's
// action distribution rather than taking its argmax, so rejection rates at
// evaluation time match what training converged to (the argmax variant,
// Greedy, systematically amplifies any state whose reject probability
// crosses one half and with it the utilization cost).
func (in *Inspector) Stochastic() sim.Inspector {
	return func(s *sim.State) bool {
		in.feat = in.Norm.Features(in.feat, in.Mode, s)
		action, _ := in.Agent.Sample(in.feat)
		return action == ActionReject
	}
}

// Sampling returns a stochastic sim.Inspector that samples actions from the
// policy and appends each (observation, action, logp) step to rec — the
// exploration mode that builds training trajectories.
func (in *Inspector) Sampling(rec *[]rl.Step) sim.Inspector {
	return func(s *sim.State) bool {
		in.feat = in.Norm.Features(in.feat, in.Mode, s)
		action, logp := in.Agent.Sample(in.feat)
		*rec = append(*rec, rl.Step{
			Obs:    append([]float64(nil), in.feat...),
			Action: action,
			LogP:   logp,
		})
		return action == ActionReject
	}
}

// Explain runs one decision with the policy's internals exported: the
// chosen action plus copies of the observed feature vector, the raw logits
// and the softmax probabilities — the flight recorder's per-decision
// payload. In stochastic mode (greedy=false) it consumes exactly one draw
// from the agent's RNG stream, identically to Stochastic, so serving paths
// can switch between the two without perturbing the decision sequence;
// greedy mode consumes none.
func (in *Inspector) Explain(s *sim.State, greedy bool) (action int, features, logits, probs []float64) {
	in.feat = in.Norm.Features(in.feat, in.Mode, s)
	if greedy {
		action, logits, probs = in.Agent.GreedyExplain(in.feat)
	} else {
		action, _, logits, probs = in.Agent.SampleExplain(in.feat)
	}
	return action, append([]float64(nil), in.feat...), logits, probs
}

// RejectProb returns the policy's probability of rejecting in state s,
// useful for analysis and debugging.
func (in *Inspector) RejectProb(s *sim.State) float64 {
	in.feat = in.Norm.Features(in.feat, in.Mode, s)
	return in.Agent.ActionProb(in.feat, ActionReject)
}

// savedInspector is the on-disk format.
type savedInspector struct {
	Policy *nn.MLP
	Value  *nn.MLP
	Mode   FeatureMode
	Norm   Normalizer
}

// Save serializes the inspector (both networks, feature mode, normalizer).
func (in *Inspector) Save(w io.Writer) error {
	s := savedInspector{Policy: in.Agent.Policy, Value: in.Agent.Value, Mode: in.Mode, Norm: in.Norm}
	if err := gob.NewEncoder(w).Encode(&s); err != nil {
		return fmt.Errorf("core: save inspector: %w", err)
	}
	return nil
}

// LoadInspector reads an inspector written by Save. The returned model uses
// rng for any sampling-mode exploration. Loading never draws from rng —
// the networks come from the stream, not from fresh initialization — so a
// caller may hand over an rng that concurrent decision paths are sampling
// from under their own lock (inspectord's hot-reload does exactly that).
func LoadInspector(r io.Reader, rng *rand.Rand) (*Inspector, error) {
	var s savedInspector
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: load inspector: %w", err)
	}
	if s.Policy == nil || s.Value == nil {
		return nil, fmt.Errorf("core: load inspector: missing networks")
	}
	if s.Policy.InputSize() != s.Mode.Dim() {
		return nil, fmt.Errorf("core: load inspector: policy input %d does not match mode %v (%d)",
			s.Policy.InputSize(), s.Mode, s.Mode.Dim())
	}
	if s.Policy.OutputSize() < 2 {
		return nil, fmt.Errorf("core: load inspector: policy has %d actions, need at least 2",
			s.Policy.OutputSize())
	}
	return &Inspector{Agent: rl.AgentFromNets(s.Policy, s.Value, rng), Mode: s.Mode, Norm: s.Norm}, nil
}

// SaveFile writes the inspector to path.
func (in *Inspector) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	if err := in.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadInspectorFile reads an inspector from path.
func LoadInspectorFile(path string, rng *rand.Rand) (*Inspector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return LoadInspector(f, rng)
}

// NormalizerForTrace is a convenience that derives a Normalizer from a
// trace's statistics with the simulator defaults.
func NormalizerForTrace(t *workload.Trace, metric metrics.Metric) Normalizer {
	return NewNormalizer(workload.ComputeStats(t), metric, sim.DefaultMaxRejections, sim.DefaultMaxInterval)
}
