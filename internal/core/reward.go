package core

import (
	"fmt"
	"math"

	"schedinspector/internal/metrics"
)

// RewardKind selects the trajectory reward function (§3.4). The paper's
// default, PercentageReward, both removes the cross-sequence variance of
// raw metric values and still pays big-gain actions more.
type RewardKind int

const (
	// PercentageReward is (m_orig - m_insp)/m_orig for minimized metrics.
	PercentageReward RewardKind = iota
	// NativeReward is the raw difference m_orig - m_insp.
	NativeReward
	// WinLossReward is +1 when the inspected run beats the baseline, -1
	// when it loses, 0 on ties.
	WinLossReward
)

// String returns the reward kind's name.
func (k RewardKind) String() string {
	switch k {
	case PercentageReward:
		return "percentage"
	case NativeReward:
		return "native"
	case WinLossReward:
		return "winloss"
	}
	return fmt.Sprintf("RewardKind(%d)", int(k))
}

// ParseRewardKind converts a name into a RewardKind.
func ParseRewardKind(s string) (RewardKind, error) {
	switch s {
	case "percentage":
		return PercentageReward, nil
	case "native":
		return NativeReward, nil
	case "winloss":
		return WinLossReward, nil
	}
	return 0, fmt.Errorf("core: unknown reward kind %q", s)
}

// Reward computes the terminal trajectory reward for metric m given the
// baseline (uninspected) and inspected summaries of the same job sequence.
// Positive always means the inspector helped.
func Reward(kind RewardKind, m metrics.Metric, orig, insp metrics.Summary) float64 {
	switch kind {
	case PercentageReward:
		return metrics.Improvement(m, orig, insp)
	case NativeReward:
		d := orig.Of(m) - insp.Of(m)
		if !m.Minimize() {
			d = -d
		}
		return d
	case WinLossReward:
		d := orig.Of(m) - insp.Of(m)
		if !m.Minimize() {
			d = -d
		}
		if d > 0 {
			return 1
		}
		if d < 0 {
			return -1
		}
		return 0
	}
	panic("core: unknown reward kind")
}

// clampReward guards PPO against the unbounded tails of the native reward;
// percentage and win/loss rewards are naturally bounded.
func clampReward(r float64) float64 {
	if math.IsNaN(r) {
		return 0
	}
	return math.Max(-1e6, math.Min(1e6, r))
}
