package core

import "math/rand"

// Deterministic RNG streams for the parallel rollout engine.
//
// The sequential trainer used to draw window starts and policy actions from
// one shared *rand.Rand, which ties every trajectory's randomness to the
// exact interleaving of the loop — impossible to parallelize without
// changing results. Instead, each trajectory owns a private stream derived
// from (Seed, purpose, epoch, index) through a SplitMix64 hash, so the
// numbers a trajectory sees depend only on its identity, never on which
// worker runs it or in what order. workers=1 and workers=N are therefore
// bit-identical by construction.

// Stream purposes, hashed into the derivation so training and evaluation
// draws never collide even under the same seed.
const (
	streamTrain uint64 = 0x7261696e // "rain"
	streamEval  uint64 = 0x6576616c // "eval"
)

// splitmix64 is the SplitMix64 finalizer (Steele, Lea, Flood 2014) — a
// cheap, well-mixed bijection used to decorrelate derived seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// streamSeed derives a decorrelated seed from the run seed and a chain of
// stream tags (purpose, epoch, trajectory index, ...).
func streamSeed(seed int64, tags ...uint64) int64 {
	x := splitmix64(uint64(seed))
	for _, t := range tags {
		x = splitmix64(x ^ t)
	}
	return int64(x)
}

// streamRNG returns a fresh RNG positioned at the start of the derived
// stream.
func streamRNG(seed int64, tags ...uint64) *rand.Rand {
	return rand.New(rand.NewSource(streamSeed(seed, tags...)))
}
