package core

import (
	"math/rand"
	"reflect"
	"testing"

	"schedinspector/internal/metrics"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

// batchTestStates builds n distinct, valid inspector states covering a
// spread of utilizations, queue depths and rejection counts.
func batchTestStates(n int, rng *rand.Rand) []*sim.State {
	states := make([]*sim.State, n)
	for i := range states {
		total := 64 + rng.Intn(4)*64
		free := rng.Intn(total + 1)
		qlen := rng.Intn(6)
		queue := make([]sim.QueueItem, qlen)
		for j := range queue {
			queue[j] = sim.QueueItem{
				Wait:  float64(rng.Intn(7200)),
				Est:   float64(1 + rng.Intn(36000)),
				Procs: 1 + rng.Intn(total),
			}
		}
		job := workload.Job{
			ID:    i + 1,
			Est:   float64(1 + rng.Intn(36000)),
			Procs: 1 + rng.Intn(total),
		}
		states[i] = sim.NewState(job, float64(rng.Intn(7200)), rng.Intn(4),
			free, total, i%2 == 0, rng.Intn(3), queue)
	}
	return states
}

// TestBatchExplainEquivScalar pins the batch-explain kernel to the scalar
// Explain path bit for bit: for every wave size, running one wave through
// BatchExplainer.Explain must produce exactly the actions, features, logits
// and probabilities of sequential Inspector.Explain calls consuming the
// same RNG stream in row order — in both sampled and greedy mode.
func TestBatchExplainEquivScalar(t *testing.T) {
	tr := workload.SDSCSP2Like(500, 3)
	norm := NormalizerForTrace(tr, metrics.BSLD)
	base := NewInspector(rand.New(rand.NewSource(1)), ManualFeatures, norm, nil)

	for _, greedy := range []bool{false, true} {
		for _, waveSize := range []int{1, 7, 64} {
			states := batchTestStates(waveSize, rand.New(rand.NewSource(int64(waveSize))))

			scalar := base.Clone(rand.New(rand.NewSource(42)))
			want := make([]ExplainOut, waveSize)
			for i, s := range states {
				var o ExplainOut
				o.Action, o.Features, o.Logits, o.Probs = scalar.Explain(s, greedy)
				want[i] = o
			}

			batched := base.Clone(rand.New(rand.NewSource(42)))
			got := make([]ExplainOut, waveSize)
			var be BatchExplainer
			be.Explain(batched, states, greedy, got)

			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("greedy=%v wave=%d row %d:\nbatch  %+v\nscalar %+v",
						greedy, waveSize, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBatchExplainReuse pins that one BatchExplainer reused across waves of
// different sizes keeps matching the scalar stream — the serving collector
// reuses a single kernel for every wave it drains.
func TestBatchExplainReuse(t *testing.T) {
	tr := workload.SDSCSP2Like(500, 3)
	norm := NormalizerForTrace(tr, metrics.BSLD)
	base := NewInspector(rand.New(rand.NewSource(1)), ManualFeatures, norm, nil)

	states := batchTestStates(37, rand.New(rand.NewSource(9)))
	scalar := base.Clone(rand.New(rand.NewSource(7)))
	batched := base.Clone(rand.New(rand.NewSource(7)))

	var be BatchExplainer
	next := 0
	for _, size := range []int{5, 1, 16, 2, 13} {
		wave := states[next : next+size]
		next += size
		got := make([]ExplainOut, size)
		be.Explain(batched, wave, false, got)
		for i, s := range wave {
			var want ExplainOut
			want.Action, want.Features, want.Logits, want.Probs = scalar.Explain(s, false)
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("wave size %d row %d diverged from scalar stream", size, i)
			}
		}
	}
}
