package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"schedinspector/internal/metrics"
	"schedinspector/internal/rl"
	"schedinspector/internal/sched"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

func TestRewardKinds(t *testing.T) {
	orig := metrics.Summary{AvgBSLD: 100}
	better := metrics.Summary{AvgBSLD: 60}
	worse := metrics.Summary{AvgBSLD: 150}

	if got := Reward(PercentageReward, metrics.BSLD, orig, better); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("percentage = %v, want 0.4", got)
	}
	if got := Reward(NativeReward, metrics.BSLD, orig, better); got != 40 {
		t.Errorf("native = %v, want 40", got)
	}
	if got := Reward(WinLossReward, metrics.BSLD, orig, better); got != 1 {
		t.Errorf("winloss = %v, want 1", got)
	}
	if got := Reward(WinLossReward, metrics.BSLD, orig, worse); got != -1 {
		t.Errorf("winloss worse = %v, want -1", got)
	}
	if got := Reward(WinLossReward, metrics.BSLD, orig, orig); got != 0 {
		t.Errorf("winloss tie = %v, want 0", got)
	}
	// util is maximized: higher util must be positive reward.
	uo := metrics.Summary{Util: 0.5}
	ui := metrics.Summary{Util: 0.6}
	for _, k := range []RewardKind{PercentageReward, NativeReward, WinLossReward} {
		if got := Reward(k, metrics.Util, uo, ui); got <= 0 {
			t.Errorf("%v util reward = %v, want positive", k, got)
		}
	}
}

func TestRewardKindParse(t *testing.T) {
	for _, k := range []RewardKind{PercentageReward, NativeReward, WinLossReward} {
		got, err := ParseRewardKind(k.String())
		if err != nil || got != k {
			t.Errorf("round trip %v: %v %v", k, got, err)
		}
	}
	if _, err := ParseRewardKind("zzz"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestClampReward(t *testing.T) {
	if clampReward(math.NaN()) != 0 {
		t.Error("NaN not clamped to 0")
	}
	if clampReward(1e9) != 1e6 || clampReward(-1e9) != -1e6 {
		t.Error("extremes not clamped")
	}
	if clampReward(0.5) != 0.5 {
		t.Error("normal value altered")
	}
}

func newTestInspector(t *testing.T, mode FeatureMode) *Inspector {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	return NewInspector(rng, mode, testNormalizer(metrics.BSLD), nil)
}

func TestInspectorGreedySamplingConsistency(t *testing.T) {
	in := newTestInspector(t, ManualFeatures)
	s := sampleState()
	greedy := in.Greedy()
	want := greedy(s)
	for i := 0; i < 5; i++ {
		if greedy(s) != want {
			t.Fatal("greedy decision not deterministic")
		}
	}
	p := in.RejectProb(s)
	if p < 0 || p > 1 {
		t.Fatalf("reject prob %v", p)
	}
	if want != (p > 0.5) {
		t.Errorf("greedy=%v inconsistent with reject prob %v", want, p)
	}
}

func TestInspectorSamplingRecordsSteps(t *testing.T) {
	in := newTestInspector(t, ManualFeatures)
	s := sampleState()
	var steps []rl.Step
	rec := in.Sampling(&steps)
	for i := 0; i < 10; i++ {
		rec(s)
	}
	if len(steps) != 10 {
		t.Fatalf("recorded %d steps", len(steps))
	}
	for _, st := range steps {
		if len(st.Obs) != ManualFeatures.Dim() {
			t.Fatalf("obs dim %d", len(st.Obs))
		}
		if st.Action != ActionAccept && st.Action != ActionReject {
			t.Fatalf("bad action %d", st.Action)
		}
		if st.LogP > 0 {
			t.Fatalf("positive logp %v", st.LogP)
		}
	}
	// Observations must be independent copies.
	if &steps[0].Obs[0] == &steps[1].Obs[0] {
		t.Error("recorded observations alias each other")
	}
}

func TestInspectorSaveLoad(t *testing.T) {
	in := newTestInspector(t, ManualFeatures)
	var buf bytes.Buffer
	if err := in.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadInspector(&buf, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	s := sampleState()
	if got.Greedy()(s) != in.Greedy()(s) {
		t.Error("loaded inspector decides differently")
	}
	if math.Abs(got.RejectProb(s)-in.RejectProb(s)) > 1e-12 {
		t.Error("loaded inspector probabilities differ")
	}
	if got.Mode != in.Mode || got.Norm != in.Norm {
		t.Error("mode/norm not preserved")
	}
	if _, err := LoadInspector(bytes.NewReader([]byte("garbage")), nil); err == nil {
		t.Error("garbage accepted")
	}
}

func TestInspectorSaveLoadFile(t *testing.T) {
	in := newTestInspector(t, CompactedFeatures)
	path := t.TempDir() + "/model.gob"
	if err := in.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadInspectorFile(path, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode != CompactedFeatures {
		t.Error("mode lost")
	}
	if _, err := LoadInspectorFile(path+".nope", nil); err == nil {
		t.Error("missing file accepted")
	}
}

func TestWithNormalizer(t *testing.T) {
	in := newTestInspector(t, ManualFeatures)
	n2 := testNormalizer(metrics.Wait)
	n2.MaxProcs = 999
	re := in.WithNormalizer(n2)
	if re.Agent != in.Agent {
		t.Error("WithNormalizer must share the agent")
	}
	if re.Norm.MaxProcs != 999 || in.Norm.MaxProcs == 999 {
		t.Error("normalizer not rebound")
	}
}

func TestNewTrainerValidation(t *testing.T) {
	tr := workload.SDSCSP2Like(2000, 1)
	if _, err := NewTrainer(TrainConfig{Policy: sched.SJF()}); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := NewTrainer(TrainConfig{Trace: tr}); err == nil {
		t.Error("nil policy accepted")
	}
	// training region smaller than one sequence
	small := workload.SDSCSP2Like(300, 1)
	if _, err := NewTrainer(TrainConfig{Trace: small, Policy: sched.SJF(), SeqLen: 128, TrainFrac: 0.2}); err == nil {
		t.Error("too-small training region accepted")
	}
	tr2 := &workload.Trace{Name: "bad", MaxProcs: 4, Jobs: []workload.Job{{ID: 1, Submit: 0, Run: 1, Est: 1, Procs: 99}}}
	if _, err := NewTrainer(TrainConfig{Trace: tr2, Policy: sched.SJF()}); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestTrainerEpochMechanics(t *testing.T) {
	tr := workload.SDSCSP2Like(4000, 5)
	trainer, err := NewTrainer(TrainConfig{
		Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
		Batch: 4, SeqLen: 64, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if trainer.Config().Batch != 4 || trainer.Config().LR != 1e-3 {
		t.Errorf("config defaults wrong: %+v", trainer.Config())
	}
	st, err := trainer.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 {
		t.Errorf("epoch = %d", st.Epoch)
	}
	if st.RejectionRatio < 0 || st.RejectionRatio > 1 {
		t.Errorf("rejection ratio %v", st.RejectionRatio)
	}
	// baseline cache fills as windows are sampled
	if trainer.baseCache.Len() == 0 {
		t.Error("baseline cache empty after epoch")
	}
	// Train() accumulates stats and invokes the callback.
	calls := 0
	hist, err := trainer.Train(2, func(EpochStats) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 || calls != 2 {
		t.Errorf("Train ran %d epochs, %d callbacks", len(hist), calls)
	}
	if hist[1].Epoch != 3 {
		t.Errorf("epoch numbering wrong: %d", hist[1].Epoch)
	}
}

// TestTrainingLearnsImprovement is the package's headline test: with a
// modest budget the inspector must move from hurting the base scheduler to
// helping it, and the evaluated greedy policy must beat the base SJF on
// bsld — the paper's central claim, in miniature.
func TestTrainingLearnsImprovement(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short mode")
	}
	tr := workload.SDSCSP2Like(20000, 42)
	// The paper's batch size (100) matters: smaller batches make this
	// sparse-reward training unstable (see EXPERIMENTS.md).
	trainer, err := NewTrainer(TrainConfig{
		Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
		Batch: 100, SeqLen: 128, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := trainer.Train(35, nil)
	if err != nil {
		t.Fatal(err)
	}
	early := 0.0
	for _, h := range hist[:5] {
		early += h.MeanPctImprovement / 5
	}
	late := 0.0
	for _, h := range hist[len(hist)-5:] {
		late += h.MeanPctImprovement / 5
	}
	t.Logf("training pct improvement: early %.3f, late %.3f", early, late)
	if late <= early {
		t.Errorf("no learning: early %.3f late %.3f", early, late)
	}
	if late <= 0 {
		t.Errorf("converged improvement %.3f, want positive", late)
	}

	res, err := Evaluate(trainer.Inspector(), EvalConfig{
		Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
		Sequences: 20, SeqLen: 256, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	imp := res.MeanImprovement(metrics.BSLD)
	t.Logf("held-out bsld improvement: %.1f%%", 100*imp)
	if imp <= 0.05 {
		t.Errorf("eval improvement %.3f, want > 0.05", imp)
	}
}

func TestEvaluatePlumbing(t *testing.T) {
	tr := workload.SDSCSP2Like(3000, 6)
	cfg := EvalConfig{
		Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
		Sequences: 5, SeqLen: 64, Seed: 3,
	}
	// nil inspector: base and "inspected" runs are identical.
	res, err := Evaluate(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Base) != 5 || len(res.Insp) != 5 {
		t.Fatalf("sequence counts %d/%d", len(res.Base), len(res.Insp))
	}
	for i := range res.Base {
		if res.Base[i] != res.Insp[i] {
			t.Errorf("sequence %d differs with nil inspector", i)
		}
	}
	if res.RejectionRatio() != 0 {
		t.Error("nil inspector rejected something")
	}
	b, i := res.Boxes(metrics.BSLD)
	if b.N != 5 || i.N != 5 || b.Mean != i.Mean {
		t.Errorf("boxes wrong: %+v vs %+v", b, i)
	}
	if imp := res.MeanImprovement(metrics.BSLD); imp != 0 {
		t.Errorf("self improvement = %v", imp)
	}

	// error paths
	if _, err := Evaluate(nil, EvalConfig{Policy: sched.SJF()}); err == nil {
		t.Error("missing trace accepted")
	}
	if _, err := Evaluate(nil, EvalConfig{Trace: tr}); err == nil {
		t.Error("missing policy accepted")
	}
	if _, err := Evaluate(nil, EvalConfig{Trace: tr, Policy: sched.SJF(), SeqLen: 10000}); err == nil {
		t.Error("oversized SeqLen accepted")
	}
}

func TestValuesAndSummaryWith(t *testing.T) {
	sums := []metrics.Summary{{AvgBSLD: 1, AvgWait: 10}, {AvgBSLD: 3, AvgWait: 30}}
	v := Values(sums, metrics.BSLD)
	if v[0] != 1 || v[1] != 3 {
		t.Errorf("Values = %v", v)
	}
	for _, m := range []metrics.Metric{metrics.BSLD, metrics.Wait, metrics.MBSLD, metrics.Util} {
		if got := summaryWith(m, 7.5).Of(m); got != 7.5 {
			t.Errorf("summaryWith(%v) = %v", m, got)
		}
	}
}

func TestRecorder(t *testing.T) {
	tr := workload.SDSCSP2Like(1200, 9)
	in := NewInspector(rand.New(rand.NewSource(4)), ManualFeatures, NormalizerForTrace(tr, metrics.BSLD), nil)
	rec, err := ReplayWhole(in, EvalConfig{Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) == 0 {
		t.Fatal("no decisions recorded")
	}
	ratio := rec.RejectionRatio()
	if ratio < 0 || ratio > 1 {
		t.Fatalf("ratio %v", ratio)
	}
	cdfs := rec.Analyze(ManualFeatureNames())
	if len(cdfs) != 8 {
		t.Fatalf("analyzed %d features", len(cdfs))
	}
	for _, c := range cdfs {
		if c.Total.N() != len(rec.Records) {
			t.Errorf("%s: total CDF has %d of %d", c.Name, c.Total.N(), len(rec.Records))
		}
		if c.Total.At(1.01) != 1 {
			t.Errorf("%s: CDF does not reach 1", c.Name)
		}
	}
	// empty recorder edge cases
	empty := &Recorder{}
	if empty.RejectionRatio() != 0 || empty.Analyze(ManualFeatureNames()) != nil {
		t.Error("empty recorder misbehaves")
	}
	if _, err := ReplayWhole(in, EvalConfig{Policy: sched.SJF()}); err == nil {
		t.Error("missing trace accepted")
	}
}

func TestRecorderMatchesInspections(t *testing.T) {
	tr := workload.SDSCSP2Like(2000, 11)
	in := NewInspector(rand.New(rand.NewSource(4)), ManualFeatures, NormalizerForTrace(tr, metrics.BSLD), nil)
	rec := &Recorder{}
	jobs := tr.Window(0, 200)
	res, err := sim.Run(jobs, sim.Config{
		MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Inspector: rec.Recording(in),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != res.Inspections {
		t.Errorf("recorded %d, simulator reports %d inspections", len(rec.Records), res.Inspections)
	}
	rejects := 0
	for _, r := range rec.Records {
		if r.Rejected {
			rejects++
		}
	}
	if rejects != res.Rejections {
		t.Errorf("recorded %d rejections, simulator %d", rejects, res.Rejections)
	}
}
