package core

import (
	"schedinspector/internal/nn"
	"schedinspector/internal/sim"
)

// Batch-explain kernel: the serving-path sibling of the rollout driver's
// waveSampler. Where waveSampler answers decision waves inside the training
// loop (borrowed scratch, per-slot RNG streams), BatchExplain answers a wave
// of independent serving requests against one inspector snapshot and exports
// the full explain payload per row — owned copies, exactly as the scalar
// Explain contract promises — so the serving collector can batch concurrent
// /v1/inspect requests into one ForwardBatch call without changing a single
// recorded bit.

// ExplainOut is one row of a batch-explain call: the chosen action plus the
// observed feature vector, raw logits and softmax probabilities. All slices
// are owned by the caller, mirroring Inspector.Explain's return values.
type ExplainOut struct {
	Action   int
	Features []float64
	Logits   []float64
	Probs    []float64
}

// BatchExplainer runs the explain kernel over whole decision waves with one
// matrix-shaped policy forward per wave. The zero value is ready; reusing
// one across waves amortizes the feature-matrix and activation allocations.
// It is not safe for concurrent use — the serving collector is the single
// goroutine that owns one.
type BatchExplainer struct {
	feats  []float64 // wave feature matrix, rows x Mode.Dim()
	bcache nn.BatchCache
}

// Explain answers len(states) decisions with one ForwardBatch call, filling
// out[i] for row i (out must have at least len(states) elements).
//
// Bit-identity with the scalar path holds row by row and draw by draw:
// ForwardBatch reproduces Forward's accumulation order exactly, each row
// samples through the shared rl.SampleCategorical kernel, and rows consume
// the inspector's RNG stream in index order — so calling Explain on a wave
// of N states produces precisely the actions, logits and probabilities of N
// sequential Inspector.Explain calls on the same stream. Greedy mode takes
// each row's argmax and consumes no RNG draws, like Inspector.Explain with
// greedy=true.
func (b *BatchExplainer) Explain(in *Inspector, states []*sim.State, greedy bool, out []ExplainOut) {
	dim := in.Mode.Dim()
	rows := len(states)
	if cap(b.feats) < rows*dim {
		b.feats = make([]float64, rows*dim)
	}
	b.feats = b.feats[:rows*dim]
	for i, s := range states {
		// Full-capacity subslices: Features fills the matrix row in place.
		in.Norm.Features(b.feats[i*dim:(i+1)*dim:(i+1)*dim], in.Mode, s)
	}
	logits := in.Agent.Policy.ForwardBatch(b.feats, rows, &b.bcache)
	nAct := in.Agent.Policy.OutputSize()
	for i := 0; i < rows; i++ {
		lg := logits[i*nAct : (i+1)*nAct]
		o := &out[i]
		if greedy {
			action := 0
			for a := 1; a < len(lg); a++ {
				if lg[a] > lg[action] {
					action = a
				}
			}
			probs := make([]float64, len(lg))
			nn.Softmax(lg, probs)
			o.Action, o.Probs = action, probs
		} else {
			o.Action, _, o.Probs = in.Agent.SampleExplainLogits(lg)
		}
		o.Features = append([]float64(nil), b.feats[i*dim:(i+1)*dim]...)
		o.Logits = append([]float64(nil), lg...)
	}
}
