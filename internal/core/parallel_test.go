package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"schedinspector/internal/metrics"
	"schedinspector/internal/obs"
	"schedinspector/internal/rlsched"
	"schedinspector/internal/rollout"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

// TestStreamRNGDeterministic pins the derivation property the whole engine
// rests on: a trajectory's stream depends only on (seed, tags), never on
// which worker or in what order it runs.
func TestStreamRNGDeterministic(t *testing.T) {
	a := streamRNG(42, streamTrain, 3, 7)
	b := streamRNG(42, streamTrain, 3, 7)
	for i := 0; i < 10; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("same tags diverged at draw %d: %d vs %d", i, x, y)
		}
	}
	if streamSeed(42, streamTrain, 3, 7) == streamSeed(42, streamTrain, 3, 8) {
		t.Error("adjacent trajectory indices produced the same stream seed")
	}
	if streamSeed(42, streamTrain, 3) == streamSeed(42, streamEval, 3) {
		t.Error("train and eval purposes produced the same stream seed")
	}
	if streamSeed(1, streamTrain) == streamSeed(2, streamTrain) {
		t.Error("different base seeds produced the same stream seed")
	}
}

// trainStats runs a short training with the given worker count and returns
// the per-epoch statistics plus the serialized trained model.
func trainStats(t *testing.T, tr *workload.Trace, pol sched.Policy, workers int) ([]EpochStats, []byte) {
	t.Helper()
	trainer, err := NewTrainer(TrainConfig{
		Trace: tr, Policy: pol, Metric: metrics.BSLD,
		Batch: 6, SeqLen: 64, Seed: 11, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := trainer.Train(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trainer.Inspector().Save(&buf); err != nil {
		t.Fatal(err)
	}
	return hist, buf.Bytes()
}

// TestRunEpochWorkerEquivalence is the tentpole guarantee: training with a
// worker pool is bit-identical to sequential training — same epoch
// statistics (wall clock aside) and the same serialized model.
func TestRunEpochWorkerEquivalence(t *testing.T) {
	tr := workload.SDSCSP2Like(3000, 7)
	for _, pol := range []sched.Policy{sched.SJF(), sched.NewSlurm(tr)} {
		seqHist, seqModel := trainStats(t, tr, pol, 1)
		parHist, parModel := trainStats(t, tr, pol, 8)
		if len(seqHist) != len(parHist) {
			t.Fatalf("%s: epoch counts differ: %d vs %d", pol.Name(), len(seqHist), len(parHist))
		}
		for i := range seqHist {
			a, b := seqHist[i], parHist[i]
			a.Seconds, b.Seconds = 0, 0 // wall clock is the one legitimate difference
			if a != b {
				t.Errorf("%s: epoch %d stats differ:\n  workers=1: %+v\n  workers=8: %+v", pol.Name(), i+1, a, b)
			}
		}
		if !bytes.Equal(seqModel, parModel) {
			t.Errorf("%s: serialized models differ between workers=1 and workers=8", pol.Name())
		}
	}
}

// TestEvaluateWorkerEquivalence checks the evaluation half of the guarantee,
// including order independence: with 8 workers the completion order of
// sequences is scheduler-dependent, yet the reduced result must be identical
// to the sequential run.
func TestEvaluateWorkerEquivalence(t *testing.T) {
	tr := workload.SDSCSP2Like(3000, 6)
	insp := newTestInspector(t, ManualFeatures)
	for _, pol := range []sched.Policy{sched.SJF(), sched.NewSlurm(tr)} {
		cfg := EvalConfig{
			Trace: tr, Policy: pol, Metric: metrics.BSLD,
			Sequences: 8, SeqLen: 64, Seed: 3,
		}
		cfg.Workers = 1
		seq, err := Evaluate(insp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 8
		par, err := Evaluate(insp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Inspections != par.Inspections || seq.Rejections != par.Rejections {
			t.Errorf("%s: counts differ: %d/%d vs %d/%d", pol.Name(),
				seq.Inspections, seq.Rejections, par.Inspections, par.Rejections)
		}
		for i := range seq.Base {
			if seq.Base[i] != par.Base[i] || seq.Insp[i] != par.Insp[i] {
				t.Errorf("%s: sequence %d summaries differ between worker counts", pol.Name(), i)
			}
		}
	}
}

// TestTrainConfigValidate covers the satellite: deliberately out-of-range
// fields are rejected with errors naming the field, instead of being
// silently zero-defaulted or crashing mid-training.
func TestTrainConfigValidate(t *testing.T) {
	tr := workload.SDSCSP2Like(2000, 1)
	base := func() TrainConfig {
		return TrainConfig{Trace: tr, Policy: sched.SJF(), Batch: 4, SeqLen: 64}
	}
	cases := []struct {
		name string
		mut  func(*TrainConfig)
		want string // substring the error must contain
	}{
		{"negative SeqLen", func(c *TrainConfig) { c.SeqLen = -1 }, "SeqLen"},
		{"negative Batch", func(c *TrainConfig) { c.Batch = -2 }, "Batch"},
		{"negative LR", func(c *TrainConfig) { c.LR = -1e-3 }, "LR"},
		{"NaN LR", func(c *TrainConfig) { c.LR = math.NaN() }, "LR"},
		{"infinite LR", func(c *TrainConfig) { c.LR = math.Inf(1) }, "LR"},
		{"negative TrainFrac", func(c *TrainConfig) { c.TrainFrac = -0.1 }, "TrainFrac"},
		{"TrainFrac above 1", func(c *TrainConfig) { c.TrainFrac = 1.5 }, "TrainFrac"},
		{"negative MaxInterval", func(c *TrainConfig) { c.MaxInterval = -600 }, "MaxInterval"},
		{"NaN MaxInterval", func(c *TrainConfig) { c.MaxInterval = math.NaN() }, "MaxInterval"},
		{"negative MaxRejections", func(c *TrainConfig) { c.MaxRejections = -1 }, "MaxRejections"},
		{"negative Workers", func(c *TrainConfig) { c.Workers = -4 }, "Workers"},
		{"negative BaselineCacheSize", func(c *TrainConfig) { c.BaselineCacheSize = -1 }, "BaselineCacheSize"},
		{"zero hidden layer", func(c *TrainConfig) { c.Hidden = []int{32, 0} }, "Hidden"},
		{"negative World", func(c *TrainConfig) { c.World = -1 }, "World"},
		{"World above Batch", func(c *TrainConfig) { c.World = 5 /* Batch is 4 */ }, "World"},
		{"negative Rank", func(c *TrainConfig) {
			c.World, c.Rank, c.Peers = 2, -1, []string{"a.sock", "b.sock"}
		}, "Rank"},
		{"Rank at World", func(c *TrainConfig) {
			c.World, c.Rank, c.Peers = 2, 2, []string{"a.sock", "b.sock"}
		}, "Rank"},
		{"too few peers", func(c *TrainConfig) {
			c.World, c.Peers = 3, []string{"a.sock", "b.sock"}
		}, "Peers"},
		{"too many peers", func(c *TrainConfig) {
			c.World, c.Peers = 2, []string{"a.sock", "b.sock", "c.sock"}
		}, "Peers"},
		{"peers without world", func(c *TrainConfig) { c.Peers = []string{"a.sock"} }, "Peers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			_, err := NewTrainer(cfg)
			if err == nil {
				t.Fatalf("config accepted: %+v", cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name %q", err, tc.want)
			}
		})
	}
	// The zero-valued optional fields must still take their defaults.
	if _, err := NewTrainer(base()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	// A well-formed distributed config must pass.
	dc := base()
	dc.World, dc.Rank, dc.Peers = 2, 1, []string{"a.sock", "b.sock"}
	if _, err := NewTrainer(dc); err != nil {
		t.Fatalf("valid distributed config rejected: %v", err)
	}
}

func TestBaselineCacheBound(t *testing.T) {
	c := newBaselineCache(4)
	compute := func(k int) func() (metrics.Summary, error) {
		return func() (metrics.Summary, error) { return metrics.Summary{Jobs: k}, nil }
	}
	for k := 0; k < 10; k++ {
		if _, err := c.Get(k, compute(k)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() > 4 {
		t.Errorf("cache holds %d entries, bound is 4", c.Len())
	}
	if _, _, ev := c.Stats(); ev != 6 {
		t.Errorf("evictions = %d, want 6", ev)
	}
}

func TestBaselineCacheLRU(t *testing.T) {
	c := newBaselineCache(3)
	var computes atomic.Int64
	get := func(k int) {
		t.Helper()
		if _, err := c.Get(k, func() (metrics.Summary, error) {
			computes.Add(1)
			return metrics.Summary{Jobs: k}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	get(1)
	get(2)
	get(3)
	get(1) // refresh 1: the LRU entry is now 2
	get(4) // evicts 2
	n := computes.Load()
	get(1) // still cached
	get(3) // still cached
	if computes.Load() != n {
		t.Error("recently used entries were evicted")
	}
	get(2) // was evicted: must recompute
	if computes.Load() != n+1 {
		t.Error("evicted entry served stale data")
	}
}

func TestBaselineCacheSingleflight(t *testing.T) {
	c := newBaselineCache(0)
	var computes atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	sums := make([]metrics.Summary, 16)
	for i := range sums {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			s, err := c.Get(7, func() (metrics.Summary, error) {
				computes.Add(1)
				return metrics.Summary{Jobs: 7, AvgBSLD: 1.5}, nil
			})
			if err != nil {
				t.Error(err)
			}
			sums[i] = s
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times under concurrent callers, want 1", n)
	}
	for i, s := range sums {
		if s != sums[0] {
			t.Fatalf("caller %d saw a different summary", i)
		}
	}
}

func TestBaselineCacheErrorRetry(t *testing.T) {
	c := newBaselineCache(0)
	boom := errors.New("boom")
	calls := 0
	_, err := c.Get(1, func() (metrics.Summary, error) { calls++; return metrics.Summary{}, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("error not surfaced: %v", err)
	}
	if c.Len() != 0 {
		t.Error("failed computation left a poisoned entry")
	}
	s, err := c.Get(1, func() (metrics.Summary, error) { calls++; return metrics.Summary{Jobs: 9}, nil })
	if err != nil || s.Jobs != 9 || calls != 2 {
		t.Errorf("retry after error: sum=%+v err=%v calls=%d", s, err, calls)
	}
}

// statefulNoClone is a stateful policy without ClonePolicy — the case that
// must force the pool back to a single worker.
type statefulNoClone struct{ sched.Policy }

func (statefulNoClone) Reset() {}

func TestPolicyClones(t *testing.T) {
	// Stateless policies are shared across workers (the dynamic value is an
	// uncomparable struct, so assert sharing through behavior: every slot is
	// populated with a working policy).
	sjf := sched.SJF()
	pols, ok := rollout.PolicyClones(sjf, 4)
	if !ok || len(pols) != 4 {
		t.Fatalf("stateless: ok=%v len=%d", ok, len(pols))
	}
	for i, p := range pols {
		if p == nil || p.Name() != sjf.Name() {
			t.Errorf("slot %d does not hold the stateless policy: %v", i, p)
		}
	}

	// Cloneable stateful policies get one private instance per worker.
	tr := workload.SDSCSP2Like(500, 2)
	slurm := sched.NewSlurm(tr)
	pols, ok = rollout.PolicyClones(slurm, 3)
	if !ok || len(pols) != 3 {
		t.Fatalf("slurm: ok=%v len=%d", ok, len(pols))
	}
	if pols[0] != sched.Policy(slurm) {
		t.Error("original policy not at index 0")
	}
	if pols[1] == pols[0] || pols[2] == pols[0] || pols[1] == pols[2] {
		t.Error("slurm clones are not distinct instances")
	}

	// Stateful without Cloner: sequential fallback.
	if pols, ok = rollout.PolicyClones(statefulNoClone{sched.SJF()}, 4); ok || len(pols) != 1 {
		t.Errorf("stateful non-cloner: ok=%v len=%d, want fallback", ok, len(pols))
	}

	// rlsched in sampling mode declines to clone: sequential fallback.
	rp := rlsched.New(rand.New(rand.NewSource(1)), rlsched.NormForTrace(tr), nil)
	rp.SetSampling(true, &[]rlsched.Step{})
	if pols, ok = rollout.PolicyClones(rp, 4); ok || len(pols) != 1 {
		t.Errorf("sampling rlsched: ok=%v len=%d, want fallback", ok, len(pols))
	}
	// ...but clones fine outside sampling mode.
	rp.SetSampling(false, nil)
	if pols, ok = rollout.PolicyClones(rp, 2); !ok || len(pols) != 2 || pols[0] == pols[1] {
		t.Errorf("plain rlsched: ok=%v len=%d", ok, len(pols))
	}

	// One worker never needs clones, whatever the policy.
	if pols, ok = rollout.PolicyClones(statefulNoClone{sched.SJF()}, 1); !ok || len(pols) != 1 {
		t.Errorf("single worker: ok=%v len=%d", ok, len(pols))
	}
}

// TestRolloutMetricsPublished checks that a training epoch and an evaluation
// pass feed the obs instruments: worker gauges, trajectory latency samples,
// and the baseline-cache counters all appear in the rendered registry.
func TestRolloutMetricsPublished(t *testing.T) {
	tr := workload.SDSCSP2Like(3000, 8)
	reg := obs.NewRegistry()
	m := NewRolloutMetrics(reg)
	trainer, err := NewTrainer(TrainConfig{
		Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
		Batch: 4, SeqLen: 64, Seed: 2, Workers: 2, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(trainer.Inspector(), EvalConfig{
		Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
		Sequences: 3, SeqLen: 64, Seed: 4, Workers: 2, Metrics: m,
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"schedinspector_rollout_workers 2",
		"schedinspector_rollout_worker_utilization",
		"schedinspector_rollout_trajectory_seconds",
		"schedinspector_baseline_cache_entries",
		"schedinspector_baseline_cache_misses_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered metrics missing %q", want)
		}
	}
	if !strings.Contains(out, "schedinspector_rollout_trajectory_seconds_count 7") {
		t.Errorf("expected 7 trajectory observations (4 train + 3 eval) in:\n%s", out)
	}
}

func TestRunIndexed(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		var sum atomic.Int64
		seen := make([]atomic.Bool, 20)
		busy, wall := rollout.RunIndexed(workers, 20, func(w, i int) {
			if w < 0 || w >= workers {
				t.Errorf("worker id %d out of range", w)
			}
			if seen[i].Swap(true) {
				t.Errorf("index %d executed twice", i)
			}
			sum.Add(int64(i))
		})
		if sum.Load() != 190 {
			t.Errorf("workers=%d: indices incomplete, sum=%d", workers, sum.Load())
		}
		if busy < 0 || wall < 0 {
			t.Errorf("negative durations: busy=%v wall=%v", busy, wall)
		}
	}
	if busy, wall := rollout.RunIndexed(4, 0, func(int, int) { t.Error("fn called for n=0") }); busy != 0 || wall != 0 {
		t.Error("n=0 reported nonzero durations")
	}
}

// BenchmarkRunEpochWorkers measures one training epoch at increasing worker
// counts. On a multi-core machine the 4-worker case should run roughly
// min(4, cores)x faster than sequential; on a single core all cases
// degenerate to the same cost (the pool adds only scheduling noise).
func BenchmarkRunEpochWorkers(b *testing.B) {
	tr := workload.SDSCSP2Like(6000, 17)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			trainer, err := NewTrainer(TrainConfig{
				Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
				Batch: 16, SeqLen: 64, Seed: 29, Workers: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := trainer.RunEpoch(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
