package core

import (
	"encoding/csv"
	"fmt"
	"io"
)

// CSV exports for downstream plotting: training curves (the figures' raw
// data) and recorded inspection decisions (the §5 analysis data).

// WriteTrainingCSV writes per-epoch training statistics as CSV with a
// header row — one row per epoch, matching the paper's training-curve axes.
func WriteTrainingCSV(w io.Writer, hist []EpochStats) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"epoch", "mean_reward", "improvement", "pct_improvement",
		"rejection_ratio", "approx_kl", "value_loss", "entropy",
	}); err != nil {
		return fmt.Errorf("core: csv: %w", err)
	}
	for _, h := range hist {
		rec := []string{
			fmt.Sprintf("%d", h.Epoch),
			fmt.Sprintf("%g", h.MeanReward),
			fmt.Sprintf("%g", h.MeanImprovement),
			fmt.Sprintf("%g", h.MeanPctImprovement),
			fmt.Sprintf("%g", h.RejectionRatio),
			fmt.Sprintf("%g", h.ApproxKL),
			fmt.Sprintf("%g", h.ValueLoss),
			fmt.Sprintf("%g", h.Entropy),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("core: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteDecisionsCSV writes the recorded inspection decisions as CSV: one
// row per inspection with the named feature columns plus a "rejected" flag.
// Feature indices beyond the provided names are labeled f<i>.
func (r *Recorder) WriteDecisionsCSV(w io.Writer, names []string) error {
	cw := csv.NewWriter(w)
	if len(r.Records) == 0 {
		cw.Flush()
		return cw.Error()
	}
	nf := len(r.Records[0].Features)
	header := make([]string, 0, nf+1)
	for i := 0; i < nf; i++ {
		if i < len(names) {
			header = append(header, names[i])
		} else {
			header = append(header, fmt.Sprintf("f%d", i))
		}
	}
	header = append(header, "rejected")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("core: csv: %w", err)
	}
	row := make([]string, nf+1)
	for _, rec := range r.Records {
		for i, v := range rec.Features {
			row[i] = fmt.Sprintf("%g", v)
		}
		if rec.Rejected {
			row[nf] = "1"
		} else {
			row[nf] = "0"
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("core: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
