package core

import "schedinspector/internal/obs"

// RolloutMetrics is the obs instrumentation of the parallel rollout engine.
// Attach one (via TrainConfig.Metrics or EvalConfig.Metrics) to export
// worker utilization, per-trajectory rollout latency and baseline-cache
// behavior through an obs.Registry — e.g. mounted at /metrics.
type RolloutMetrics struct {
	// Workers is the effective worker count of the most recent rollout.
	Workers *obs.Gauge
	// WorkerUtilization is busy-time / (workers x wall) of the most recent
	// rollout in [0, 1] — how much of the pool the fan-out actually used.
	WorkerUtilization *obs.Gauge
	// TrajectorySeconds observes the latency of each simulated trajectory
	// (baseline lookup + inspected run).
	TrajectorySeconds *obs.Histogram
	// BaselineCacheSize tracks the bounded baseline cache's entry count.
	BaselineCacheSize *obs.Gauge

	BaselineCacheHits      *obs.Counter
	BaselineCacheMisses    *obs.Counter
	BaselineCacheEvictions *obs.Counter
}

// NewRolloutMetrics registers the rollout metric family on r.
func NewRolloutMetrics(r *obs.Registry) *RolloutMetrics {
	return &RolloutMetrics{
		Workers: r.Gauge("schedinspector_rollout_workers",
			"Effective worker count of the most recent rollout fan-out.", nil),
		WorkerUtilization: r.Gauge("schedinspector_rollout_worker_utilization",
			"Busy-time share of the worker pool during the most recent rollout (0-1).", nil),
		TrajectorySeconds: r.Histogram("schedinspector_rollout_trajectory_seconds",
			"Latency of one simulated trajectory (baseline + inspected run).", nil, nil),
		BaselineCacheSize: r.Gauge("schedinspector_baseline_cache_entries",
			"Entries currently held by the bounded baseline summary cache.", nil),
		BaselineCacheHits: r.Counter("schedinspector_baseline_cache_hits_total",
			"Baseline cache lookups served from memory.", nil),
		BaselineCacheMisses: r.Counter("schedinspector_baseline_cache_misses_total",
			"Baseline cache lookups that computed a fresh summary.", nil),
		BaselineCacheEvictions: r.Counter("schedinspector_baseline_cache_evictions_total",
			"Baseline cache entries evicted by the LRU bound.", nil),
	}
}

// observeRollout publishes one rollout's pool statistics. Nil receivers are
// a no-op so the un-instrumented path costs a single branch.
func (m *RolloutMetrics) observeRollout(workers int, busySec, wallSec float64) {
	if m == nil {
		return
	}
	m.Workers.Set(float64(workers))
	if wallSec > 0 && workers > 0 {
		m.WorkerUtilization.Set(busySec / (float64(workers) * wallSec))
	}
}

// observeCache publishes the baseline cache's size and the counter deltas
// since the previous call (prev is updated in place).
func (m *RolloutMetrics) observeCache(c *baselineCache, prev *[3]uint64) {
	if m == nil || c == nil {
		return
	}
	hits, misses, evictions := c.Stats()
	m.BaselineCacheSize.Set(float64(c.Len()))
	m.BaselineCacheHits.Add(float64(hits - prev[0]))
	m.BaselineCacheMisses.Add(float64(misses - prev[1]))
	m.BaselineCacheEvictions.Add(float64(evictions - prev[2]))
	prev[0], prev[1], prev[2] = hits, misses, evictions
}
