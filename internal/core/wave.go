package core

import (
	"math/rand"

	"schedinspector/internal/nn"
	"schedinspector/internal/obs"
	"schedinspector/internal/rl"
	"schedinspector/internal/rollout"
)

// waveSampler turns the rollout driver's decision waves into inspector
// actions with one matrix-shaped policy forward per wave. Where the old
// engine ran one scalar MLP forward inside every simulator callback, the
// sampler stacks the features of every concurrently-pending decision into
// one batch, forwards it once, and then samples (or argmaxes) each row.
//
// Bit-identity with the callback path holds row by row: ForwardBatch
// reproduces Forward's accumulation order exactly, Softmax and the
// categorical draw are the shared rl.SampleCategorical kernel, and each
// row draws from its own slot's trajectory stream — so wave composition
// cannot influence any decision.
//
// The sampler is coordinator-only: Decide is never called concurrently, so
// one snapshot of the inspector serves every slot.
type waveSampler struct {
	insp   *Inspector
	rngs   []*rand.Rand // per-slot streams; indexed by episode slot
	steps  [][]rl.Step  // per-slot transition records when recording
	greedy bool

	feats  []float64 // wave feature matrix, rows x Mode.Dim()
	probs  []float64 // softmax scratch
	bcache nn.BatchCache

	// Flight-recorder hookup (explainTo): every decision emits one explain
	// record keyed (epoch, slot, per-slot sequence). The sampler is
	// coordinator-only and a slot's decisions arrive in its episode's step
	// order, so the key — and with it every record field — is independent
	// of wave composition and worker count.
	flight     *obs.FlightRecorder
	epoch      int
	maxRej     int
	seqs       map[int]int       // per-slot decision counters
	recScratch obs.ExplainRecord // reused record; RecordDecision copies
}

// newWaveSampler builds a sampler over slots episode slots using insp as
// the read-only policy snapshot. rngs[slot] supplies the slot's action
// draws (stochastic modes); record allocates per-slot step logs for
// training. Greedy mode (rngs nil) takes the argmax instead of sampling.
func newWaveSampler(insp *Inspector, rngs []*rand.Rand, slots int, record bool) *waveSampler {
	s := &waveSampler{
		insp:   insp,
		rngs:   rngs,
		greedy: rngs == nil,
		probs:  make([]float64, insp.Agent.Policy.OutputSize()),
	}
	if record {
		s.steps = make([][]rl.Step, slots)
	}
	return s
}

// explainTo attaches a flight recorder: every subsequent decision emits one
// explain record to each of its halves (JSONL recorder and/or binary ring).
// A nil f disables recording.
func (s *waveSampler) explainTo(f *obs.FlightRecorder, epoch, maxRejections int) {
	s.flight = f
	s.epoch = epoch
	s.maxRej = maxRejections
	if f != nil && s.seqs == nil {
		s.seqs = make(map[int]int)
	}
}

func (s *waveSampler) decide(pending []rollout.Pending, rejects []bool) {
	dim := s.insp.Mode.Dim()
	rows := len(pending)
	if cap(s.feats) < rows*dim {
		s.feats = make([]float64, rows*dim)
	}
	s.feats = s.feats[:rows*dim]
	for i := range pending {
		// Full-capacity subslices: Features fills the matrix row in place.
		s.insp.Norm.Features(s.feats[i*dim:(i+1)*dim:(i+1)*dim], s.insp.Mode, pending[i].State)
	}
	logits := s.insp.Agent.Policy.ForwardBatch(s.feats, rows, &s.bcache)
	nAct := s.insp.Agent.Policy.OutputSize()
	for i := range pending {
		lg := logits[i*nAct : (i+1)*nAct]
		var action int
		var logp float64
		if s.greedy {
			for a := 1; a < len(lg); a++ {
				if lg[a] > lg[action] {
					action = a
				}
			}
		} else {
			action, logp = rl.SampleCategorical(s.rngs[pending[i].Slot], lg, s.probs)
		}
		if s.steps != nil {
			slot := pending[i].Slot
			s.steps[slot] = append(s.steps[slot], rl.Step{
				Obs:    append([]float64(nil), s.feats[i*dim:(i+1)*dim]...),
				Action: action,
				LogP:   logp,
			})
		}
		rejects[i] = action == ActionReject
		if s.flight != nil {
			if s.greedy {
				// Sampling left softmax(lg) in s.probs; the greedy branch
				// skipped it, so fill the scratch now for the record.
				nn.Softmax(lg, s.probs)
			}
			st := pending[i].State
			slot := pending[i].Slot
			seq := s.seqs[slot]
			s.seqs[slot] = seq + 1
			util := 0.0
			if st.TotalProcs > 0 {
				util = 1 - float64(st.FreeProcs)/float64(st.TotalProcs)
			}
			// The record borrows the sampler's scratch slices:
			// RecordDecision copies them into whichever halves retain data
			// (the ring's arena, the JSONL recorder's owned slices).
			s.recScratch = obs.ExplainRecord{
				Epoch: s.epoch, Traj: slot, Seq: seq, Time: st.Now,
				JobID: st.Job.ID, Wait: st.JobWait, Procs: st.Job.Procs, Est: st.Job.Est,
				Rejections: st.Rejections, MaxRejections: s.maxRej,
				QueueLen: len(st.Queue) + 1, FreeProcs: st.FreeProcs,
				TotalProcs: st.TotalProcs, Utilization: util,
				Features: s.feats[i*dim : (i+1)*dim],
				Logits:   lg,
				Probs:    s.probs[:len(lg)],
				Action:   action, Sampled: !s.greedy, Rejected: rejects[i],
			}
			s.flight.RecordDecision(&s.recScratch)
		}
	}
}
