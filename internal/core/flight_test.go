package core

import (
	"reflect"
	"sort"
	"testing"

	"schedinspector/internal/metrics"
	"schedinspector/internal/obs"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

// sortRecords order-normalizes explain records: the ring order of a
// multi-worker run is scheduler-dependent, but the set keyed by
// (Epoch, Traj, Seq) must be identical across worker counts.
func sortRecords(recs []obs.ExplainRecord) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.Traj != b.Traj {
			return a.Traj < b.Traj
		}
		return a.Seq < b.Seq
	})
}

// trainFlight runs a short training with the flight recorder attached and
// returns the order-normalized explain records plus the set of span IDs.
func trainFlight(t *testing.T, tr *workload.Trace, workers int) ([]obs.ExplainRecord, map[obs.SpanID]bool) {
	t.Helper()
	flight := obs.NewFlightRecorder(1<<16, 1<<16)
	trainer, err := NewTrainer(TrainConfig{
		Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
		Batch: 6, SeqLen: 64, Seed: 11, Workers: workers, Flight: flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.Train(2, nil); err != nil {
		t.Fatal(err)
	}
	if flight.Spans.Dropped() > 0 || flight.Decisions.Total() > 1<<16 {
		t.Fatalf("ring overflow invalidates the comparison; raise capacities")
	}
	recs := flight.Decisions.Records()
	sortRecords(recs)
	ids := make(map[obs.SpanID]bool)
	for _, sp := range flight.Spans.Spans() {
		ids[sp.ID] = true
	}
	return recs, ids
}

// TestFlightRecorderWorkerEquivalence is the acceptance pin: with tracing
// enabled, workers=1 and workers=8 runs over the same seed produce the
// identical set of explain records (order-normalized) and the identical set
// of span IDs.
func TestFlightRecorderWorkerEquivalence(t *testing.T) {
	tr := workload.SDSCSP2Like(3000, 7)
	seqRecs, seqIDs := trainFlight(t, tr, 1)
	parRecs, parIDs := trainFlight(t, tr, 8)
	if len(seqRecs) == 0 {
		t.Fatal("training recorded no explain records")
	}
	if len(seqRecs) != len(parRecs) {
		t.Fatalf("record counts differ: workers=1 %d vs workers=8 %d", len(seqRecs), len(parRecs))
	}
	for i := range seqRecs {
		if !reflect.DeepEqual(seqRecs[i], parRecs[i]) {
			t.Fatalf("record %d differs between worker counts:\n  workers=1: %+v\n  workers=8: %+v",
				i, seqRecs[i], parRecs[i])
		}
	}
	if !reflect.DeepEqual(seqIDs, parIDs) {
		t.Fatalf("span ID sets differ: workers=1 has %d, workers=8 has %d", len(seqIDs), len(parIDs))
	}
}

// TestEvaluateFlightEquivalence covers the evaluation path: same explain
// record set at any worker count, both stochastic and greedy.
func TestEvaluateFlightEquivalence(t *testing.T) {
	tr := workload.SDSCSP2Like(3000, 6)
	insp := newTestInspector(t, ManualFeatures)
	for _, greedy := range []bool{false, true} {
		run := func(workers int) []obs.ExplainRecord {
			flight := obs.NewFlightRecorder(1<<15, 1<<15)
			_, err := Evaluate(insp, EvalConfig{
				Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
				Sequences: 6, SeqLen: 64, Seed: 3, Workers: workers,
				Greedy: greedy, Flight: flight,
			})
			if err != nil {
				t.Fatal(err)
			}
			recs := flight.Decisions.Records()
			sortRecords(recs)
			return recs
		}
		seq, par := run(1), run(8)
		if len(seq) == 0 {
			t.Fatalf("greedy=%v: evaluation recorded no explain records", greedy)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("greedy=%v: explain records differ between worker counts", greedy)
		}
		for _, r := range seq {
			if r.Sampled == greedy {
				t.Fatalf("greedy=%v: record claims Sampled=%v", greedy, r.Sampled)
			}
			if len(r.Features) != ManualFeatures.Dim() || len(r.Logits) != 2 || len(r.Probs) != 2 {
				t.Fatalf("record shapes wrong: %+v", r)
			}
		}
	}
}

// TestFlightRecorderDoesNotPerturbTraining pins that attaching the flight
// recorder leaves the trained model bit-identical: recording reads the
// sampler's state but never draws from any RNG stream.
func TestFlightRecorderDoesNotPerturbTraining(t *testing.T) {
	tr := workload.SDSCSP2Like(3000, 7)
	_, plain := trainStats(t, tr, sched.SJF(), 4)
	flight := obs.NewFlightRecorder(1<<14, 1<<14)
	trainer, err := NewTrainer(TrainConfig{
		Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
		Batch: 6, SeqLen: 64, Seed: 11, Workers: 4, Flight: flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.Train(2, nil); err != nil {
		t.Fatal(err)
	}
	var buf lenWriter
	if err := trainer.Inspector().Save(&buf); err != nil {
		t.Fatal(err)
	}
	if string(buf.b) != string(plain) {
		t.Fatal("flight recorder perturbed the trained model")
	}
	if flight.Decisions.Total() == 0 {
		t.Fatal("flight recorder attached but recorded nothing")
	}
}

type lenWriter struct{ b []byte }

func (w *lenWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// TestFeatureNamesAlignWithDim pins that every mode's label list matches
// its feature vector length — the explain header contract.
func TestFeatureNamesAlignWithDim(t *testing.T) {
	for _, m := range []FeatureMode{ManualFeatures, CompactedFeatures, NativeFeatures} {
		if got := len(m.FeatureNames()); got != m.Dim() {
			t.Errorf("%s: %d names for %d features", m, got, m.Dim())
		}
	}
}
