package core

import (
	"fmt"

	"schedinspector/internal/sim"
	"schedinspector/internal/stats"
)

// DecisionRecord captures one inspection: the manual feature vector the
// agent saw and whether it rejected. The §5 analysis is built from millions
// of these.
type DecisionRecord struct {
	Features []float64
	Rejected bool
}

// Recorder wraps an inspector and logs every decision.
type Recorder struct {
	Records []DecisionRecord
}

// Recording returns a sim.Inspector that behaves like insp.Stochastic()
// (the deployment mode, §3.2) while appending every decision to r.
func (r *Recorder) Recording(insp *Inspector) sim.Inspector {
	decide := insp.Stochastic()
	return func(s *sim.State) bool {
		reject := decide(s)
		feat := insp.Norm.Features(nil, insp.Mode, s)
		r.Records = append(r.Records, DecisionRecord{Features: feat, Rejected: reject})
		return reject
	}
}

// FeatureCDFs holds, for one input feature, the empirical CDFs over all
// inspected samples and over the rejected subset — exactly the paired
// curves of Figure 13.
type FeatureCDFs struct {
	Name     string
	Total    *stats.CDF
	Rejected *stats.CDF
}

// Analyze builds per-feature CDFs from the recorded decisions. Names label
// the feature indices; indices beyond len(names) are skipped.
func (r *Recorder) Analyze(names []string) []FeatureCDFs {
	if len(r.Records) == 0 {
		return nil
	}
	nf := min(len(names), len(r.Records[0].Features))
	out := make([]FeatureCDFs, 0, nf)
	for f := 0; f < nf; f++ {
		total := make([]float64, 0, len(r.Records))
		var rejected []float64
		for _, rec := range r.Records {
			v := rec.Features[f]
			total = append(total, v)
			if rec.Rejected {
				rejected = append(rejected, v)
			}
		}
		out = append(out, FeatureCDFs{
			Name:     names[f],
			Total:    stats.NewCDF(total),
			Rejected: stats.NewCDF(rejected),
		})
	}
	return out
}

// RejectionRatio returns the fraction of recorded decisions that rejected.
func (r *Recorder) RejectionRatio() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	n := 0
	for _, rec := range r.Records {
		if rec.Rejected {
			n++
		}
	}
	return float64(n) / float64(len(r.Records))
}

// ReplayWhole schedules the entire trace under the base policy with the
// recording inspector on top, as §5 does ("used the trained model to
// schedule the whole SDSC-SP2 job trace from beginning to the end"), and
// returns the recorder. cfg.Trace and cfg.Policy are required; the eval
// sequence fields are ignored.
func ReplayWhole(insp *Inspector, cfg EvalConfig) (*Recorder, error) {
	cfg = cfg.withDefaults()
	if cfg.Trace == nil || cfg.Policy == nil {
		return nil, fmt.Errorf("core: ReplayWhole needs Trace and Policy")
	}
	rec := &Recorder{}
	_, err := sim.Run(cfg.Trace.Jobs, sim.Config{
		MaxProcs:      cfg.Trace.MaxProcs,
		Policy:        cfg.Policy,
		Backfill:      cfg.Backfill,
		Inspector:     rec.Recording(insp),
		MaxInterval:   cfg.MaxInterval,
		MaxRejections: cfg.MaxRejections,
	})
	if err != nil {
		return nil, err
	}
	return rec, nil
}
