package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"schedinspector/internal/metrics"
	"schedinspector/internal/obs"
	"schedinspector/internal/rl"
	"schedinspector/internal/rollout"
	"schedinspector/internal/sched"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

// TrainConfig parameterizes one SchedInspector training run (§4.1 defaults
// in parentheses).
type TrainConfig struct {
	Trace  *workload.Trace // job trace; required
	Policy sched.Policy    // base scheduling policy; required
	Metric metrics.Metric  // performance metric to optimize (bsld)

	RewardKind  RewardKind  // reward function (percentage)
	FeatureMode FeatureMode // feature building mechanism (manual)
	Backfill    bool        // EASY backfilling in the simulated environment

	Hidden    []int   // policy/value hidden sizes (32, 16, 8)
	SeqLen    int     // jobs per trajectory (128)
	Batch     int     // trajectories per epoch (100)
	LR        float64 // learning rate (1e-3)
	Seed      int64   // RNG seed for sampling and initialization
	TrainFrac float64 // fraction of the trace used for training (0.2)

	MaxInterval   float64 // simulator retry cut-off (600 s)
	MaxRejections int     // simulator per-job rejection cap (72)

	// Workers is the rollout fan-out: trajectories per epoch are simulated
	// on this many goroutines (0 = one per CPU). Any worker count produces
	// bit-identical results — per-trajectory RNG streams are derived from
	// (Seed, epoch, trajectory index), never from execution order.
	Workers int

	// BaselineCacheSize bounds the per-window baseline summary cache
	// (0 = DefaultBaselineCacheSize).
	BaselineCacheSize int

	// World, Rank and Peers configure DD-PPO-style multi-process training
	// (internal/dist). World is the number of cooperating worker processes
	// (0 = 1, single-process); Rank is this process's index in [0, World);
	// Peers lists every rank's listen address in rank order — exactly World
	// entries when World > 1, and empty when single-process. Each worker
	// rolls out its ShardRange of the epoch batch and exchanges trajectory
	// deltas with all peers, so World must not exceed Batch.
	World int
	Rank  int
	Peers []string

	PPO rl.PPOConfig // optional PPO overrides (zero values take defaults)

	// Logger, when non-nil, receives every epoch's statistics as soon as
	// the PPO update completes — the telemetry hook behind the CSV/JSONL
	// learning-curve exports (see NewCSVTrainLogger, NewJSONLTrainLogger).
	Logger TrainLogger

	// Metrics, when non-nil, receives worker-utilization, rollout-latency
	// and baseline-cache observations (see NewRolloutMetrics).
	Metrics *RolloutMetrics

	// Flight, when non-nil, attaches the decision flight recorder: each
	// epoch emits an "epoch" span rooting per-episode and per-decision
	// spans, and every inspector decision records an explain record
	// (features, logits, probabilities, verdict, scheduling context). The
	// set of explain records is identical for any Workers value; only ring
	// order and wall timestamps depend on execution.
	Flight *obs.FlightRecorder
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.SeqLen == 0 {
		c.SeqLen = 128
	}
	if c.Batch == 0 {
		c.Batch = 100
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.TrainFrac == 0 {
		c.TrainFrac = 0.2
	}
	if c.MaxInterval == 0 {
		c.MaxInterval = sim.DefaultMaxInterval
	}
	if c.MaxRejections == 0 {
		c.MaxRejections = sim.DefaultMaxRejections
	}
	if c.Workers == 0 {
		c.Workers = rollout.ResolveWorkers(0)
	}
	if c.BaselineCacheSize == 0 {
		c.BaselineCacheSize = DefaultBaselineCacheSize
	}
	if c.World == 0 {
		c.World = 1
	}
	if c.PPO.LR == 0 {
		c.PPO.LR = c.LR
	}
	return c
}

// validate rejects configurations that zero-defaulting would otherwise
// silently accept. It runs after withDefaults, so a zero ("unset") field has
// already taken its documented default and anything still out of range was
// set deliberately — and wrongly.
func (c TrainConfig) validate() error {
	switch {
	case c.SeqLen < 1:
		return fmt.Errorf("core: TrainConfig.SeqLen = %d, must be >= 1 (0 means the default 128)", c.SeqLen)
	case c.Batch < 1:
		return fmt.Errorf("core: TrainConfig.Batch = %d, must be >= 1 (0 means the default 100)", c.Batch)
	case c.LR < 0 || math.IsNaN(c.LR) || math.IsInf(c.LR, 0):
		return fmt.Errorf("core: TrainConfig.LR = %v, must be positive and finite (0 means the default 1e-3)", c.LR)
	case c.TrainFrac < 0 || c.TrainFrac > 1:
		return fmt.Errorf("core: TrainConfig.TrainFrac = %v, must be in (0, 1] (0 means the default 0.2)", c.TrainFrac)
	case c.MaxInterval < 0 || math.IsNaN(c.MaxInterval):
		return fmt.Errorf("core: TrainConfig.MaxInterval = %v, must be positive (0 means the default %g)",
			c.MaxInterval, sim.DefaultMaxInterval)
	case c.MaxRejections < 0:
		return fmt.Errorf("core: TrainConfig.MaxRejections = %d, must be >= 1 (0 means the default %d)",
			c.MaxRejections, sim.DefaultMaxRejections)
	case c.Workers < 0:
		return fmt.Errorf("core: TrainConfig.Workers = %d, must be >= 0 (0 means one per CPU)", c.Workers)
	case c.BaselineCacheSize < 0:
		return fmt.Errorf("core: TrainConfig.BaselineCacheSize = %d, must be >= 0 (0 means the default %d)",
			c.BaselineCacheSize, DefaultBaselineCacheSize)
	case c.World < 1:
		return fmt.Errorf("core: TrainConfig.World = %d, must be >= 1 (0 means single-process)", c.World)
	case c.World > c.Batch:
		return fmt.Errorf("core: TrainConfig.World = %d exceeds Batch = %d; every worker needs at least one trajectory",
			c.World, c.Batch)
	case c.Rank < 0 || c.Rank >= c.World:
		return fmt.Errorf("core: TrainConfig.Rank = %d, must be in [0, World=%d)", c.Rank, c.World)
	case c.World > 1 && len(c.Peers) != c.World:
		return fmt.Errorf("core: TrainConfig.Peers has %d entries, need exactly World = %d (one listen address per rank)",
			len(c.Peers), c.World)
	case c.World == 1 && len(c.Peers) > 0:
		return fmt.Errorf("core: TrainConfig.Peers set with World = 1; peer addresses only apply to distributed runs")
	}
	for _, h := range c.Hidden {
		if h < 1 {
			return fmt.Errorf("core: TrainConfig.Hidden contains %d, layer sizes must be >= 1", h)
		}
	}
	return nil
}

// EpochStats summarizes one training epoch — the quantities plotted in the
// paper's training-curve figures.
type EpochStats struct {
	Epoch int

	// MeanReward is the mean terminal reward under the configured kind.
	MeanReward float64
	// MeanImprovement is the mean raw metric difference m_orig - m_insp
	// (sign-flipped for maximized metrics), the y-axis of Figures 4-7.
	MeanImprovement float64
	// MeanPctImprovement is the mean relative improvement, the y-axis of
	// Figures 9 and 11.
	MeanPctImprovement float64
	// RejectionRatio is rejections/inspections across the epoch's
	// trajectories, the orange curves of Figures 7, 9 and 11.
	RejectionRatio float64

	// RewardStd is the standard deviation of terminal rewards across the
	// epoch's trajectories — the variance signal the §3.1 critic-ablation
	// discussion turns on.
	RewardStd float64

	ApproxKL   float64
	PolicyLoss float64 // clipped-surrogate loss at the last policy pass
	ValueLoss  float64
	Entropy    float64

	PolicyIters int     // PPO policy passes actually run (KL early stop may cut them)
	Steps       int     // RL transitions (inspections) gathered this epoch
	Seconds     float64 // wall-clock duration of the epoch (sampling + update)
}

// Trainer drives the Figure 3 workflow: sample job sequences, run the base
// scheduler and the inspector-enabled scheduler, convert the outcome into a
// terminal reward, and improve the policy with PPO.
type Trainer struct {
	cfg   TrainConfig
	insp  *Inspector
	ppo   *rl.PPO
	rng   *rand.Rand
	epoch int

	trainLo, trainHi int            // window-start range for training sequences
	baseCache        *baselineCache // bounded baseline summaries keyed by window start
	cacheSeen        [3]uint64      // last cache stats published to Metrics

	epochT0       time.Time // set by BeginEpoch; EpochStats.Seconds measures from here
	epochSpan     obs.Span  // open epoch span while the flight recorder is attached
	epochSpanOpen bool
}

// NewTrainer validates the configuration and builds a trainer with a fresh
// untrained inspector.
func NewTrainer(cfg TrainConfig) (*Trainer, error) {
	return newTrainer(cfg, nil)
}

// NewTrainerFrom validates the configuration and builds a trainer
// warm-started from an existing inspector: the trainer clones warm's
// weights, feature mode, and — critically — its normalizer, so the feature
// contract the model was originally trained under is preserved even though
// cfg.Trace (e.g. a replay window reconstructed from live decisions) would
// yield different normalization statistics. cfg.FeatureMode must match
// warm.Mode. Optimizer state starts cold: PPO's Adam moments are not part
// of the inspector, so fine-tuning begins with fresh moments at cfg.LR.
func NewTrainerFrom(cfg TrainConfig, warm *Inspector) (*Trainer, error) {
	if warm == nil {
		return nil, fmt.Errorf("core: NewTrainerFrom requires a warm-start inspector")
	}
	return newTrainer(cfg, warm)
}

func newTrainer(cfg TrainConfig, warm *Inspector) (*Trainer, error) {
	cfg = cfg.withDefaults()
	if cfg.Trace == nil {
		return nil, fmt.Errorf("core: TrainConfig.Trace is required")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("core: TrainConfig.Policy is required")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := cfg.Trace.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	split := cfg.Trace.Split(cfg.TrainFrac)
	hi := split - cfg.SeqLen + 1
	if hi < 1 {
		return nil, fmt.Errorf("core: training region has %d jobs, need at least SeqLen=%d",
			split, cfg.SeqLen)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var insp *Inspector
	if warm != nil {
		if warm.Mode != cfg.FeatureMode {
			return nil, fmt.Errorf("core: warm-start inspector uses feature mode %q, config wants %q",
				warm.Mode, cfg.FeatureMode)
		}
		insp = warm.Clone(rng)
	} else {
		norm := NewNormalizer(workload.ComputeStats(cfg.Trace), cfg.Metric, cfg.MaxRejections, cfg.MaxInterval)
		insp = NewInspector(rng, cfg.FeatureMode, norm, cfg.Hidden)
	}
	if cfg.Flight != nil {
		cfg.Flight.SetMeta(cfg.FeatureMode.FeatureNames(), cfg.FeatureMode.String(), cfg.MaxRejections)
	}
	return &Trainer{
		cfg:       cfg,
		insp:      insp,
		ppo:       rl.NewPPO(insp.Agent, cfg.PPO),
		rng:       rng,
		trainLo:   0,
		trainHi:   hi,
		baseCache: newBaselineCache(cfg.BaselineCacheSize),
	}, nil
}

// Inspector returns the model being trained. It is live: it improves as
// epochs run.
func (t *Trainer) Inspector() *Inspector { return t.insp }

// Config returns the (defaulted) configuration.
func (t *Trainer) Config() TrainConfig { return t.cfg }

// simConfig builds the simulator configuration with the given policy
// instance. Per-job validation is skipped: every window the trainer
// schedules comes from the trace, which NewTrainer validated once —
// re-checking each of the thousands of baseline-cache and rollout replays
// was pure hot-path overhead.
func (t *Trainer) simConfig(pol sched.Policy) sim.Config {
	return sim.Config{
		MaxProcs:      t.cfg.Trace.MaxProcs,
		Policy:        pol,
		Backfill:      t.cfg.Backfill,
		MaxInterval:   t.cfg.MaxInterval,
		MaxRejections: t.cfg.MaxRejections,
		NoValidate:    true,
	}
}

// baseline returns the uninspected summary of the window starting at start,
// computing it (under pol, the calling worker's policy instance) and caching
// it on first use. Concurrent callers hitting the same uncached window block
// on a single computation.
func (t *Trainer) baseline(start int, pol sched.Policy) (metrics.Summary, error) {
	return t.baseCache.Get(start, func() (metrics.Summary, error) {
		jobs := t.cfg.Trace.Window(start, t.cfg.SeqLen)
		res, err := sim.Run(jobs, t.simConfig(pol))
		if err != nil {
			return metrics.Summary{}, err
		}
		return res.Summary(t.cfg.Trace.MaxProcs), nil
	})
}

// RunEpoch samples one batch of trajectories through the rollout driver —
// baselines fan out over cfg.Workers goroutines and deduplicate through the
// cache, then every inspected episode steps concurrently with the policy
// forwarded once per decision wave — performs a PPO update, and returns the
// epoch statistics. Results are reduced in trajectory-index order and every
// trajectory draws from its own derived RNG stream (window start first,
// then each sampled action), so the statistics, the PPO batch, and the
// trained model are bit-identical for any worker count and any wave
// composition.
//
// RunEpoch is the single-process composition of the separately-invokable
// epoch phases (see phases.go): BeginEpoch, one full-batch RolloutShard,
// and ApplyDeltas. Distributed workers call the phases directly, rolling
// out only their shard and merging peer deltas before applying.
func (t *Trainer) RunEpoch() (EpochStats, error) {
	t.BeginEpoch()
	deltas, err := t.RolloutShard(0, t.cfg.Batch)
	if err != nil {
		return EpochStats{Epoch: t.epoch}, err
	}
	return t.ApplyDeltas(deltas)
}

// Train runs the given number of epochs, invoking cb (if non-nil) after
// each, and returns the per-epoch statistics — the data behind every
// training-curve figure in the paper. It is TrainCtx without checkpointing
// or interruption: the same epoch driver, never canceled.
func (t *Trainer) Train(epochs int, cb func(EpochStats)) ([]EpochStats, error) {
	return t.TrainCtx(context.Background(), epochs, CheckpointConfig{}, cb)
}
