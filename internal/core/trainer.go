package core

import (
	"fmt"
	"math/rand"
	"time"

	"schedinspector/internal/metrics"
	"schedinspector/internal/rl"
	"schedinspector/internal/sched"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

// TrainConfig parameterizes one SchedInspector training run (§4.1 defaults
// in parentheses).
type TrainConfig struct {
	Trace  *workload.Trace // job trace; required
	Policy sched.Policy    // base scheduling policy; required
	Metric metrics.Metric  // performance metric to optimize (bsld)

	RewardKind  RewardKind  // reward function (percentage)
	FeatureMode FeatureMode // feature building mechanism (manual)
	Backfill    bool        // EASY backfilling in the simulated environment

	Hidden    []int   // policy/value hidden sizes (32, 16, 8)
	SeqLen    int     // jobs per trajectory (128)
	Batch     int     // trajectories per epoch (100)
	LR        float64 // learning rate (1e-3)
	Seed      int64   // RNG seed for sampling and initialization
	TrainFrac float64 // fraction of the trace used for training (0.2)

	MaxInterval   float64 // simulator retry cut-off (600 s)
	MaxRejections int     // simulator per-job rejection cap (72)

	PPO rl.PPOConfig // optional PPO overrides (zero values take defaults)

	// Logger, when non-nil, receives every epoch's statistics as soon as
	// the PPO update completes — the telemetry hook behind the CSV/JSONL
	// learning-curve exports (see NewCSVTrainLogger, NewJSONLTrainLogger).
	Logger TrainLogger
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.SeqLen == 0 {
		c.SeqLen = 128
	}
	if c.Batch == 0 {
		c.Batch = 100
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.TrainFrac == 0 {
		c.TrainFrac = 0.2
	}
	if c.MaxInterval == 0 {
		c.MaxInterval = sim.DefaultMaxInterval
	}
	if c.MaxRejections == 0 {
		c.MaxRejections = sim.DefaultMaxRejections
	}
	if c.PPO.LR == 0 {
		c.PPO.LR = c.LR
	}
	return c
}

// EpochStats summarizes one training epoch — the quantities plotted in the
// paper's training-curve figures.
type EpochStats struct {
	Epoch int

	// MeanReward is the mean terminal reward under the configured kind.
	MeanReward float64
	// MeanImprovement is the mean raw metric difference m_orig - m_insp
	// (sign-flipped for maximized metrics), the y-axis of Figures 4-7.
	MeanImprovement float64
	// MeanPctImprovement is the mean relative improvement, the y-axis of
	// Figures 9 and 11.
	MeanPctImprovement float64
	// RejectionRatio is rejections/inspections across the epoch's
	// trajectories, the orange curves of Figures 7, 9 and 11.
	RejectionRatio float64

	// RewardStd is the standard deviation of terminal rewards across the
	// epoch's trajectories — the variance signal the §3.1 critic-ablation
	// discussion turns on.
	RewardStd float64

	ApproxKL   float64
	PolicyLoss float64 // clipped-surrogate loss at the last policy pass
	ValueLoss  float64
	Entropy    float64

	PolicyIters int     // PPO policy passes actually run (KL early stop may cut them)
	Steps       int     // RL transitions (inspections) gathered this epoch
	Seconds     float64 // wall-clock duration of the epoch (sampling + update)
}

// Trainer drives the Figure 3 workflow: sample job sequences, run the base
// scheduler and the inspector-enabled scheduler, convert the outcome into a
// terminal reward, and improve the policy with PPO.
type Trainer struct {
	cfg   TrainConfig
	insp  *Inspector
	ppo   *rl.PPO
	rng   *rand.Rand
	epoch int

	trainLo, trainHi int                     // window-start range for training sequences
	baseCache        map[int]metrics.Summary // baseline summaries keyed by window start
}

// NewTrainer validates the configuration and builds a trainer with a fresh
// untrained inspector.
func NewTrainer(cfg TrainConfig) (*Trainer, error) {
	cfg = cfg.withDefaults()
	if cfg.Trace == nil {
		return nil, fmt.Errorf("core: TrainConfig.Trace is required")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("core: TrainConfig.Policy is required")
	}
	if err := cfg.Trace.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	split := cfg.Trace.Split(cfg.TrainFrac)
	hi := split - cfg.SeqLen + 1
	if hi < 1 {
		return nil, fmt.Errorf("core: training region has %d jobs, need at least SeqLen=%d",
			split, cfg.SeqLen)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	norm := NewNormalizer(workload.ComputeStats(cfg.Trace), cfg.Metric, cfg.MaxRejections, cfg.MaxInterval)
	insp := NewInspector(rng, cfg.FeatureMode, norm, cfg.Hidden)
	return &Trainer{
		cfg:       cfg,
		insp:      insp,
		ppo:       rl.NewPPO(insp.Agent, cfg.PPO),
		rng:       rng,
		trainLo:   0,
		trainHi:   hi,
		baseCache: make(map[int]metrics.Summary),
	}, nil
}

// Inspector returns the model being trained. It is live: it improves as
// epochs run.
func (t *Trainer) Inspector() *Inspector { return t.insp }

// Config returns the (defaulted) configuration.
func (t *Trainer) Config() TrainConfig { return t.cfg }

// simConfig builds the simulator configuration with the given inspector.
func (t *Trainer) simConfig(insp sim.Inspector) sim.Config {
	return sim.Config{
		MaxProcs:      t.cfg.Trace.MaxProcs,
		Policy:        t.cfg.Policy,
		Backfill:      t.cfg.Backfill,
		Inspector:     insp,
		MaxInterval:   t.cfg.MaxInterval,
		MaxRejections: t.cfg.MaxRejections,
	}
}

// baseline returns the uninspected summary of the window starting at start,
// computing and caching it on first use.
func (t *Trainer) baseline(start int) (metrics.Summary, error) {
	if s, ok := t.baseCache[start]; ok {
		return s, nil
	}
	jobs := t.cfg.Trace.Window(start, t.cfg.SeqLen)
	res, err := sim.Run(jobs, t.simConfig(nil))
	if err != nil {
		return metrics.Summary{}, err
	}
	s := res.Summary(t.cfg.Trace.MaxProcs)
	t.baseCache[start] = s
	return s, nil
}

// RunEpoch samples one batch of trajectories, performs a PPO update, and
// returns the epoch statistics.
func (t *Trainer) RunEpoch() (EpochStats, error) {
	t.epoch++
	t0 := time.Now()
	stats := EpochStats{Epoch: t.epoch}
	batch := make([]rl.Trajectory, 0, t.cfg.Batch)
	var inspections, rejections int
	for b := 0; b < t.cfg.Batch; b++ {
		start := t.trainLo + t.rng.Intn(t.trainHi-t.trainLo)
		orig, err := t.baseline(start)
		if err != nil {
			return stats, err
		}
		jobs := t.cfg.Trace.Window(start, t.cfg.SeqLen)
		var steps []rl.Step
		res, err := sim.Run(jobs, t.simConfig(t.insp.Sampling(&steps)))
		if err != nil {
			return stats, err
		}
		insp := res.Summary(t.cfg.Trace.MaxProcs)
		reward := clampReward(Reward(t.cfg.RewardKind, t.cfg.Metric, orig, insp))
		batch = append(batch, rl.Trajectory{Steps: steps, Reward: reward})

		diff := orig.Of(t.cfg.Metric) - insp.Of(t.cfg.Metric)
		if !t.cfg.Metric.Minimize() {
			diff = -diff
		}
		stats.MeanImprovement += diff
		stats.MeanPctImprovement += metrics.Improvement(t.cfg.Metric, orig, insp)
		inspections += res.Inspections
		rejections += res.Rejections
	}
	n := float64(t.cfg.Batch)
	stats.MeanImprovement /= n
	stats.MeanPctImprovement /= n
	if inspections > 0 {
		stats.RejectionRatio = float64(rejections) / float64(inspections)
	}
	up, err := t.ppo.Update(batch)
	if err != nil {
		return stats, err
	}
	stats.MeanReward = up.MeanReward
	stats.RewardStd = up.RewardStd
	stats.ApproxKL = up.ApproxKL
	stats.PolicyLoss = up.PolicyLoss
	stats.ValueLoss = up.ValueLoss
	stats.Entropy = up.Entropy
	stats.PolicyIters = up.PolicyIters
	stats.Steps = up.Steps
	stats.Seconds = time.Since(t0).Seconds()
	if t.cfg.Logger != nil {
		t.cfg.Logger.LogEpoch(stats)
	}
	return stats, nil
}

// Train runs the given number of epochs, invoking cb (if non-nil) after
// each, and returns the per-epoch statistics — the data behind every
// training-curve figure in the paper.
func (t *Trainer) Train(epochs int, cb func(EpochStats)) ([]EpochStats, error) {
	out := make([]EpochStats, 0, epochs)
	for i := 0; i < epochs; i++ {
		st, err := t.RunEpoch()
		if err != nil {
			return out, err
		}
		out = append(out, st)
		if cb != nil {
			cb(st)
		}
	}
	return out, nil
}
