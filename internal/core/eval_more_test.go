package core

import (
	"math"
	"math/rand"
	"testing"

	"schedinspector/internal/metrics"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

// TestStochasticMatchesPolicyDistribution verifies that the deployment-mode
// inspector rejects at the policy's probability, per §3.2 ("acts similarly
// as it does in the training process").
func TestStochasticMatchesPolicyDistribution(t *testing.T) {
	in := newTestInspector(t, ManualFeatures)
	s := sampleState()
	p := in.RejectProb(s)
	dec := in.Stochastic()
	rejects := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if dec(s) {
			rejects++
		}
	}
	if emp := float64(rejects) / n; math.Abs(emp-p) > 0.03 {
		t.Errorf("empirical reject rate %.3f vs policy prob %.3f", emp, p)
	}
}

func TestEvaluateGreedyVsStochastic(t *testing.T) {
	tr := workload.SDSCSP2Like(3000, 6)
	in := NewInspector(rand.New(rand.NewSource(8)), ManualFeatures, NormalizerForTrace(tr, metrics.BSLD), nil)
	base := EvalConfig{
		Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
		Sequences: 5, SeqLen: 64, Seed: 3,
	}
	// Greedy runs are deterministic: two greedy evaluations agree exactly.
	g := base
	g.Greedy = true
	r1, err := Evaluate(in, g)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Evaluate(in, g)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Insp {
		if r1.Insp[i] != r2.Insp[i] {
			t.Fatalf("greedy evaluation not deterministic at %d", i)
		}
	}
	// An untrained inspector rejects roughly half the time under the
	// stochastic mode; greedy collapses to one side per state. Both must
	// produce valid summaries.
	st, err := Evaluate(in, base)
	if err != nil {
		t.Fatal(err)
	}
	if st.Inspections == 0 {
		t.Error("stochastic evaluation made no inspections")
	}
	for _, s := range st.Insp {
		if s.Jobs == 0 || math.IsNaN(s.AvgBSLD) {
			t.Errorf("bad inspected summary %+v", s)
		}
	}
}

// TestTrainerRejectsBadPPOConfig exercises the PPO override plumbing.
func TestTrainerPPOOverrides(t *testing.T) {
	tr := workload.SDSCSP2Like(2000, 5)
	trainer, err := NewTrainer(TrainConfig{
		Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
		Batch: 2, SeqLen: 64, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.RunEpoch(); err != nil {
		t.Fatal(err)
	}
}

// TestWaitMetricTraining runs one epoch optimizing wait instead of bsld,
// covering the metric-aware queue-delay path end to end.
func TestWaitMetricTraining(t *testing.T) {
	tr := workload.SDSCSP2Like(2500, 5)
	for _, m := range []metrics.Metric{metrics.Wait, metrics.MBSLD} {
		trainer, err := NewTrainer(TrainConfig{
			Trace: tr, Policy: sched.SJF(), Metric: m,
			Batch: 3, SeqLen: 64, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := trainer.RunEpoch()
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if math.IsNaN(st.MeanReward) || math.IsNaN(st.MeanImprovement) {
			t.Errorf("%v: NaN stats %+v", m, st)
		}
	}
}

// TestBackfillTraining runs one epoch with EASY backfilling enabled,
// covering the backfill-contribution feature path end to end.
func TestBackfillTraining(t *testing.T) {
	tr := workload.SDSCSP2Like(2500, 5)
	trainer, err := NewTrainer(TrainConfig{
		Trace: tr, Policy: sched.F1(), Metric: metrics.BSLD, Backfill: true,
		Batch: 3, SeqLen: 64, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.RunEpoch(); err != nil {
		t.Fatal(err)
	}
}

// TestFeatureModesTrainEndToEnd runs one epoch per feature mode.
func TestFeatureModesTrainEndToEnd(t *testing.T) {
	tr := workload.SDSCSP2Like(2500, 5)
	for _, mode := range []FeatureMode{ManualFeatures, CompactedFeatures, NativeFeatures} {
		trainer, err := NewTrainer(TrainConfig{
			Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD, FeatureMode: mode,
			Batch: 2, SeqLen: 64, Seed: 2,
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if _, err := trainer.RunEpoch(); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
}

// TestRewardKindsTrainEndToEnd runs one epoch per reward kind.
func TestRewardKindsTrainEndToEnd(t *testing.T) {
	tr := workload.SDSCSP2Like(2500, 5)
	for _, kind := range []RewardKind{PercentageReward, NativeReward, WinLossReward} {
		trainer, err := NewTrainer(TrainConfig{
			Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD, RewardKind: kind,
			Batch: 2, SeqLen: 64, Seed: 2,
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if _, err := trainer.RunEpoch(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

// TestSlurmPolicyTraining covers the stateful-policy (Resetter) interaction
// inside the trainer's repeated simulations.
func TestSlurmPolicyTraining(t *testing.T) {
	tr := workload.SDSCSP2Like(2500, 5)
	trainer, err := NewTrainer(TrainConfig{
		Trace: tr, Policy: sched.NewSlurm(tr), Metric: metrics.BSLD, Backfill: true,
		Batch: 2, SeqLen: 64, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.RunEpoch(); err != nil {
		t.Fatal(err)
	}
}

// TestCompareStatistics covers the paired-comparison wrapper.
func TestCompareStatistics(t *testing.T) {
	r := EvalResult{
		Base: []metrics.Summary{{AvgBSLD: 10, Util: 0.5}, {AvgBSLD: 12, Util: 0.5}, {AvgBSLD: 14, Util: 0.6}},
		Insp: []metrics.Summary{{AvgBSLD: 8, Util: 0.6}, {AvgBSLD: 9, Util: 0.7}, {AvgBSLD: 10, Util: 0.7}},
	}
	d := r.Compare(metrics.BSLD, 1)
	if d.N != 3 || d.Wins != 3 || d.MeanDelta <= 0 {
		t.Errorf("bsld comparison: %+v", d)
	}
	// util is maximized: the inspected runs are better there too, so the
	// sign-adjusted delta must also be positive.
	du := r.Compare(metrics.Util, 1)
	if du.Wins != 3 || du.MeanDelta <= 0 {
		t.Errorf("util comparison: %+v", du)
	}
}
