package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"schedinspector/internal/metrics"
)

// DefaultBaselineCacheSize bounds how many per-window baseline summaries a
// trainer retains. Each entry is one metrics.Summary (a few words), so the
// default is generous, but on long traces with large training regions an
// unbounded map would otherwise grow for the life of the run.
const DefaultBaselineCacheSize = 4096

// baselineCache memoizes baseline (uninspected) window summaries with three
// properties the parallel rollout engine needs:
//
//   - concurrency safety: any number of workers may call Get at once;
//   - duplicate suppression: two workers hitting the same uncached window
//     block on one computation instead of running it twice (singleflight);
//   - a bound: least-recently-used completed entries are evicted once the
//     cache exceeds max, so memory is O(max) regardless of trace length.
//
// Baseline summaries are pure functions of the window, so cache hits are
// bit-identical to recomputation and the cache never affects determinism.
type baselineCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used, values *baselineEntry
	byKey map[int]*list.Element

	hits, misses, evictions atomic.Uint64
}

type baselineEntry struct {
	key  int
	once sync.Once
	done atomic.Bool // set after once completes; in-flight entries are never evicted
	sum  metrics.Summary
	err  error
}

func newBaselineCache(max int) *baselineCache {
	if max <= 0 {
		max = DefaultBaselineCacheSize
	}
	return &baselineCache{max: max, ll: list.New(), byKey: make(map[int]*list.Element)}
}

// Get returns the cached summary for key, or runs compute exactly once —
// even under concurrent callers — and caches the result.
func (c *baselineCache) Get(key int, compute func() (metrics.Summary, error)) (metrics.Summary, error) {
	c.mu.Lock()
	el, ok := c.byKey[key]
	if ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
		el = c.ll.PushFront(&baselineEntry{key: key})
		c.byKey[key] = el
		c.evictLocked()
	}
	e := el.Value.(*baselineEntry)
	c.mu.Unlock()

	e.once.Do(func() {
		e.sum, e.err = compute()
		e.done.Store(true)
	})
	if e.err != nil {
		// Do not poison the cache with failures; a later Get may retry.
		c.mu.Lock()
		if el, ok := c.byKey[key]; ok && el.Value.(*baselineEntry) == e {
			c.ll.Remove(el)
			delete(c.byKey, key)
		}
		c.mu.Unlock()
	}
	return e.sum, e.err
}

// evictLocked drops least-recently-used completed entries until the cache
// fits the bound. Entries still being computed are skipped: their waiters
// hold the entry pointer, and evicting them would only force a duplicate
// computation later.
func (c *baselineCache) evictLocked() {
	for el := c.ll.Back(); el != nil && c.ll.Len() > c.max; {
		prev := el.Prev()
		if e := el.Value.(*baselineEntry); e.done.Load() {
			c.ll.Remove(el)
			delete(c.byKey, e.key)
			c.evictions.Add(1)
		}
		el = prev
	}
}

// Len returns the current number of entries (including in-flight ones).
func (c *baselineCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit, miss and eviction counts.
func (c *baselineCache) Stats() (hits, misses, evictions uint64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}
