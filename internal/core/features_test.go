package core

import (
	"math"
	"testing"
	"testing/quick"

	"schedinspector/internal/metrics"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

func testNormalizer(metric metrics.Metric) Normalizer {
	return Normalizer{
		MaxEst: 36000, MeanEst: 6000, MaxProcs: 128,
		MaxRejections: 72, MaxInterval: 600, Metric: metric,
	}
}

func sampleState() *sim.State {
	return &sim.State{
		Now:        1000,
		Job:        workload.Job{ID: 5, Submit: 400, Est: 3600, Run: 1800, Procs: 32},
		JobWait:    600,
		Rejections: 18,
		FreeProcs:  64, TotalProcs: 128,
		Runnable:        true,
		BackfillEnabled: true,
		BackfillCount:   5,
		Queue: []sim.QueueItem{
			{Wait: 100, Est: 600, Procs: 4},
			{Wait: 50, Est: 7200, Procs: 16},
		},
	}
}

func TestFeatureModeBasics(t *testing.T) {
	for _, m := range []FeatureMode{ManualFeatures, CompactedFeatures, NativeFeatures} {
		got, err := ParseFeatureMode(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %v failed: %v %v", m, got, err)
		}
		if m.Dim() <= 0 {
			t.Errorf("%v dim %d", m, m.Dim())
		}
	}
	if _, err := ParseFeatureMode("bogus"); err == nil {
		t.Error("unknown mode accepted")
	}
	if ManualFeatures.Dim() != 8 || CompactedFeatures.Dim() != 5 {
		t.Errorf("dims: manual %d compacted %d", ManualFeatures.Dim(), CompactedFeatures.Dim())
	}
	if NativeFeatures.Dim() != 6+3*NativeQueueSlots {
		t.Errorf("native dim %d", NativeFeatures.Dim())
	}
	if len(ManualFeatureNames()) != ManualFeatures.Dim() {
		t.Error("feature names do not cover manual dims")
	}
}

func TestManualFeatureSemantics(t *testing.T) {
	n := testNormalizer(metrics.BSLD)
	s := sampleState()
	f := n.Features(nil, ManualFeatures, s)
	if len(f) != 8 {
		t.Fatalf("len = %d", len(f))
	}
	// wait: 600/(600+6000)
	if math.Abs(f[0]-600.0/6600) > 1e-12 {
		t.Errorf("wait feature = %v", f[0])
	}
	// est: 3600/36000
	if math.Abs(f[1]-0.1) > 1e-12 {
		t.Errorf("est feature = %v", f[1])
	}
	// procs: 32/128
	if math.Abs(f[2]-0.25) > 1e-12 {
		t.Errorf("procs feature = %v", f[2])
	}
	// rejected: 18/72
	if math.Abs(f[3]-0.25) > 1e-12 {
		t.Errorf("rejected feature = %v", f[3])
	}
	// queue delay raw: 600/600 + 600/7200 = 1.0833; scale = 10*600/6000 = 1
	raw := 600.0/600 + 600.0/7200
	if math.Abs(f[4]-raw/(raw+1)) > 1e-12 {
		t.Errorf("queue delay feature = %v, want %v", f[4], raw/(raw+1))
	}
	// avail: 64/128
	if f[5] != 0.5 {
		t.Errorf("avail feature = %v", f[5])
	}
	if f[6] != 1 {
		t.Errorf("runnable feature = %v", f[6])
	}
	// backfill: 5/(5+5)
	if math.Abs(f[7]-0.5) > 1e-12 {
		t.Errorf("backfill feature = %v", f[7])
	}

	// runnable off, backfill disabled
	s.Runnable = false
	s.BackfillEnabled = false
	s.BackfillCount = 0
	f = n.Features(f, ManualFeatures, s)
	if f[6] != 0 || f[7] != 0 {
		t.Errorf("off bits: runnable=%v backfill=%v", f[6], f[7])
	}
}

func TestQueueDelayMetricAware(t *testing.T) {
	s := sampleState()
	nB := testNormalizer(metrics.BSLD)
	nW := testNormalizer(metrics.Wait)
	// For wait, each queued job contributes the full interval.
	if got := nW.QueueDelay(s.Queue); got != 1200 {
		t.Errorf("wait queue delay = %v, want 1200", got)
	}
	if got := nB.QueueDelay(s.Queue); math.Abs(got-(1.0+600.0/7200)) > 1e-12 {
		t.Errorf("bsld queue delay = %v", got)
	}
	// Both normalize into [0,1).
	fB := nB.Features(nil, ManualFeatures, s)
	fW := nW.Features(nil, ManualFeatures, s)
	if fB[4] <= 0 || fB[4] >= 1 || fW[4] <= 0 || fW[4] >= 1 {
		t.Errorf("queue delay features out of range: %v %v", fB[4], fW[4])
	}
}

func TestCompactedAndNativeFeatures(t *testing.T) {
	n := testNormalizer(metrics.BSLD)
	s := sampleState()
	c := n.Features(nil, CompactedFeatures, s)
	if len(c) != 5 {
		t.Fatalf("compacted len %d", len(c))
	}
	if c[4] != 1 {
		t.Errorf("compacted runnable = %v", c[4])
	}
	nat := n.Features(nil, NativeFeatures, s)
	if len(nat) != NativeFeatures.Dim() {
		t.Fatalf("native len %d", len(nat))
	}
	// first queue slot populated, third slot zero
	if nat[6] == 0 || nat[7] == 0 {
		t.Error("first queue slot empty")
	}
	base := 6 + 3*2
	if nat[base] != 0 || nat[base+1] != 0 || nat[base+2] != 0 {
		t.Error("unused queue slot not zeroed")
	}
}

func TestFeaturesReuseBuffer(t *testing.T) {
	n := testNormalizer(metrics.BSLD)
	s := sampleState()
	buf := make([]float64, 8)
	f := n.Features(buf, ManualFeatures, s)
	if &f[0] != &buf[0] {
		t.Error("buffer with right capacity not reused")
	}
	// A stale larger buffer is resliced, not grown.
	big := make([]float64, 64)
	f = n.Features(big, ManualFeatures, s)
	if len(f) != 8 {
		t.Errorf("resized len = %d", len(f))
	}
}

func TestNewNormalizerDefaults(t *testing.T) {
	n := NewNormalizer(workload.Stats{}, metrics.BSLD, 0, 0)
	if n.MaxEst <= 0 || n.MeanEst <= 0 || n.MaxProcs <= 0 {
		t.Errorf("degenerate stats not defended: %+v", n)
	}
	if n.MaxRejections != sim.DefaultMaxRejections || n.MaxInterval != sim.DefaultMaxInterval {
		t.Errorf("defaults not applied: %+v", n)
	}
	tr := workload.SDSCSP2Like(500, 1)
	n = NormalizerForTrace(tr, metrics.Wait)
	if n.MaxProcs != 128 || n.Metric != metrics.Wait {
		t.Errorf("NormalizerForTrace: %+v", n)
	}
}

// Property: every feature of every mode stays in [0,1] for arbitrary states.
func TestFeatureRangeProperty(t *testing.T) {
	n := testNormalizer(metrics.BSLD)
	f := func(wait, est uint32, procs, rej, free uint16, runnable bool, bc uint8, qn uint8) bool {
		s := &sim.State{
			Job:        workload.Job{Est: 1 + float64(est%100000), Procs: 1 + int(procs%512)},
			JobWait:    float64(wait % 1000000),
			Rejections: int(rej % 100),
			FreeProcs:  int(free % 200), TotalProcs: 128,
			Runnable:        runnable,
			BackfillEnabled: true,
			BackfillCount:   int(bc),
		}
		for i := 0; i < int(qn%40); i++ {
			s.Queue = append(s.Queue, sim.QueueItem{Wait: float64(i), Est: 1 + float64(i*97), Procs: 1 + i%16})
		}
		for _, mode := range []FeatureMode{ManualFeatures, CompactedFeatures, NativeFeatures} {
			for _, v := range n.Features(nil, mode, s) {
				if v < 0 || v > 1.6 || math.IsNaN(v) { // avail can exceed 1 only if free > total; allow slack
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
