package core

import (
	"fmt"
	"math/rand"

	"schedinspector/internal/metrics"
	"schedinspector/internal/obs"
	"schedinspector/internal/rollout"
	"schedinspector/internal/sched"
	"schedinspector/internal/sim"
	"schedinspector/internal/stats"
	"schedinspector/internal/workload"
)

// EvalConfig parameterizes test-time evaluation (§4.4: 50 random sequences
// of 256 consecutive jobs sampled from the testing 80% of the trace).
type EvalConfig struct {
	Trace  *workload.Trace
	Policy sched.Policy
	Metric metrics.Metric

	Backfill      bool
	Greedy        bool    // use argmax decisions instead of the default stochastic policy
	Sequences     int     // number of sampled sequences (50)
	SeqLen        int     // jobs per sequence (256)
	TestFrom      float64 // fraction of the trace where the test region starts (0.2)
	Seed          int64
	MaxInterval   float64
	MaxRejections int

	// Workers fans the sequences out over this many goroutines (0 = one
	// per CPU). Results are independent of the worker count: each sequence
	// draws from a private RNG stream derived from (Seed, index) and the
	// summaries are reduced in index order.
	Workers int

	// Metrics, when non-nil, receives worker-utilization and per-sequence
	// latency observations (see NewRolloutMetrics).
	Metrics *RolloutMetrics

	// Flight, when non-nil, attaches the decision flight recorder: an
	// "eval" span roots per-episode and per-decision spans, and every
	// inspector decision records an explain record (Epoch 0; Traj is the
	// episode slot — inspected arms occupy slots Sequences..2*Sequences-1).
	Flight *obs.FlightRecorder
}

func (c EvalConfig) withDefaults() EvalConfig {
	if c.Sequences == 0 {
		c.Sequences = 50
	}
	if c.SeqLen == 0 {
		c.SeqLen = 256
	}
	if c.TestFrom == 0 {
		c.TestFrom = 0.2
	}
	if c.MaxInterval == 0 {
		c.MaxInterval = sim.DefaultMaxInterval
	}
	if c.MaxRejections == 0 {
		c.MaxRejections = sim.DefaultMaxRejections
	}
	if c.Workers == 0 {
		c.Workers = rollout.ResolveWorkers(0)
	}
	return c
}

// EvalResult holds per-sequence summaries for the base scheduler and the
// SchedInspector-enabled counterpart, plus rejection accounting.
type EvalResult struct {
	Base []metrics.Summary // one per sampled sequence
	Insp []metrics.Summary

	Inspections int
	Rejections  int
}

// Values extracts the per-sequence values of metric m for box plotting.
func Values(sums []metrics.Summary, m metrics.Metric) []float64 {
	out := make([]float64, len(sums))
	for i, s := range sums {
		out[i] = s.Of(m)
	}
	return out
}

// Boxes returns box-and-whisker summaries of the base and inspected runs on
// metric m — the Figure 8/10/12 presentation.
func (r EvalResult) Boxes(m metrics.Metric) (base, insp stats.Box) {
	return stats.Summarize(Values(r.Base, m)), stats.Summarize(Values(r.Insp, m))
}

// MeanImprovement returns the relative improvement of the mean metric value
// (positive = inspector wins).
func (r EvalResult) MeanImprovement(m metrics.Metric) float64 {
	base := stats.Mean(Values(r.Base, m))
	insp := stats.Mean(Values(r.Insp, m))
	return metrics.Improvement(m, summaryWith(m, base), summaryWith(m, insp))
}

// summaryWith builds a Summary carrying v in metric m's slot.
func summaryWith(m metrics.Metric, v float64) metrics.Summary {
	var s metrics.Summary
	switch m {
	case metrics.BSLD:
		s.AvgBSLD = v
	case metrics.Wait:
		s.AvgWait = v
	case metrics.MBSLD:
		s.MaxBSLD = v
	case metrics.Util:
		s.Util = v
	}
	return s
}

// Compare runs a paired statistical comparison of the base and inspected
// per-sequence values of metric m: mean delta (positive = inspector wins),
// a 95% bootstrap confidence interval, and a two-sided sign test. For
// maximized metrics the sign convention flips so positive still means the
// inspector won.
func (r EvalResult) Compare(m metrics.Metric, seed int64) stats.PairedDelta {
	base := Values(r.Base, m)
	insp := Values(r.Insp, m)
	if !m.Minimize() {
		base, insp = insp, base
	}
	return stats.ComparePaired(base, insp, 0.95, 2000, rand.New(rand.NewSource(seed)))
}

// RejectionRatio returns rejections/inspections over all evaluated
// sequences.
func (r EvalResult) RejectionRatio() float64 {
	if r.Inspections == 0 {
		return 0
	}
	return float64(r.Rejections) / float64(r.Inspections)
}

// Evaluate schedules cfg.Sequences randomly sampled test sequences twice —
// with the base policy alone and with the inspector on top — and returns
// the paired summaries. Both arms of every sequence are submitted to the
// rollout driver as one batch of 2*Sequences episodes: the uninspected arms
// run straight through, while the inspected arms step concurrently with the
// inspector's policy forwarded once per decision wave. Every sequence draws
// its window and the inspector's sampled actions from a private RNG stream
// derived from (Seed, index), and summaries are reduced in index order, so
// the result is identical for any worker count and wave composition.
//
// The inspector runs in stochastic mode by default (inference mirrors
// training, §3.2); set cfg.Greedy for argmax decisions. A nil inspector
// evaluates the base policy against itself (useful for harness plumbing
// tests).
func Evaluate(insp *Inspector, cfg EvalConfig) (EvalResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Trace == nil || cfg.Policy == nil {
		return EvalResult{}, fmt.Errorf("core: Evaluate needs Trace and Policy")
	}
	if cfg.Workers < 0 {
		return EvalResult{}, fmt.Errorf("core: EvalConfig.Workers = %d, must be >= 0 (0 means one per CPU)", cfg.Workers)
	}
	if err := cfg.Trace.Validate(); err != nil {
		return EvalResult{}, fmt.Errorf("core: %w", err)
	}
	lo := cfg.Trace.Split(cfg.TestFrom)
	hi := cfg.Trace.Len() - cfg.SeqLen + 1
	if hi <= lo {
		// test region too small; fall back to the whole trace
		lo = 0
	}
	if hi < 1 {
		return EvalResult{}, fmt.Errorf("core: trace has %d jobs, need at least SeqLen=%d",
			cfg.Trace.Len(), cfg.SeqLen)
	}

	n := cfg.Sequences
	workers := cfg.Workers
	if workers > n {
		workers = n
	}
	// Slots 0..n-1 are the uninspected arms, n..2n-1 the inspected ones.
	// Concurrent episodes each need a private stateful-policy instance; an
	// uncloneable one forces the driver's sequential mode.
	pols, ok := rollout.PolicyClones(cfg.Policy, 2*n)
	if !ok {
		workers = 1
	}
	pol := func(slot int) sched.Policy {
		if len(pols) > 1 {
			return pols[slot]
		}
		return pols[0]
	}

	rngs := make([]*rand.Rand, 2*n)
	episodes := make([]rollout.Episode, 2*n)
	mkCfg := func(slot int) sim.Config {
		return sim.Config{
			MaxProcs:      cfg.Trace.MaxProcs,
			Policy:        pol(slot),
			Backfill:      cfg.Backfill,
			MaxInterval:   cfg.MaxInterval,
			MaxRejections: cfg.MaxRejections,
			NoValidate:    true, // windows of the trace validated above
		}
	}
	for i := 0; i < n; i++ {
		// The sequence's stream draws the window first; the remainder
		// drives the inspected arm's action sampling.
		rng := streamRNG(cfg.Seed, streamEval, uint64(i))
		jobs := cfg.Trace.RandomWindow(rng, cfg.SeqLen, lo, hi)
		rngs[n+i] = rng
		episodes[i] = rollout.Episode{Jobs: jobs, Cfg: mkCfg(i)}
		episodes[n+i] = rollout.Episode{Jobs: jobs, Cfg: mkCfg(n + i), Interactive: insp != nil}
	}
	var decide rollout.Decide
	var sampler *waveSampler
	if insp != nil {
		if cfg.Greedy {
			rngs = nil // argmax decisions consume no randomness
		}
		sampler = newWaveSampler(insp.Clone(nil), rngs, 0, false)
		decide = sampler.decide
	}

	rollCfg := rollout.Config{Workers: workers, Decide: decide}
	var evalSpan obs.Span
	if cfg.Flight != nil {
		evalID := obs.DeriveSpanID(uint64(cfg.Seed), streamEval)
		evalSpan = obs.StartSpan("eval", evalID, 0, 0)
		rollCfg.Spans = cfg.Flight.SpanTracer()
		rollCfg.Ring = cfg.Flight.TraceRing()
		rollCfg.SpanRoot = evalID
		if insp != nil {
			cfg.Flight.SetMeta(insp.Mode.FeatureNames(), insp.Mode.String(), cfg.MaxRejections)
			sampler.explainTo(cfg.Flight, 0, cfg.MaxRejections)
		}
	}
	results, rep, err := rollout.Run(episodes, rollCfg)
	cfg.Metrics.observeRollout(workers, rep.Busy.Seconds(), rep.Wall.Seconds())
	if cfg.Metrics != nil {
		for i := 0; i < n; i++ {
			cfg.Metrics.TrajectorySeconds.Observe(rep.EpisodeSeconds[i] + rep.EpisodeSeconds[n+i])
		}
	}
	if err != nil {
		return EvalResult{}, err
	}

	var out EvalResult
	out.Base = make([]metrics.Summary, 0, n)
	out.Insp = make([]metrics.Summary, 0, n)
	for i := 0; i < n; i++ {
		out.Base = append(out.Base, results[i].Summary(cfg.Trace.MaxProcs))
		out.Insp = append(out.Insp, results[n+i].Summary(cfg.Trace.MaxProcs))
		out.Inspections += results[n+i].Inspections
		out.Rejections += results[n+i].Rejections
	}
	if cfg.Flight != nil {
		evalSpan.Attrs = append(evalSpan.Attrs,
			obs.Attr{Key: "sequences", Num: float64(n)},
			obs.Attr{Key: "inspections", Num: float64(out.Inspections)},
			obs.Attr{Key: "rejections", Num: float64(out.Rejections)},
		)
		evalSpan.End(0)
		cfg.Flight.EmitSpan(evalSpan)
	}
	return out, nil
}
