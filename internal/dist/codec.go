package dist

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"schedinspector/internal/core"
	"schedinspector/internal/rl"
)

// WireVersion is the dist frame schema number, carried as the version
// field of every ckpt container frame on the wire. Bump it whenever the
// message layout below changes; peers built at different versions refuse
// each other at the first frame instead of mis-decoding.
const WireVersion = 1

// Every frame payload is [kind u8][body...], all integers big-endian and
// floats as IEEE-754 bit patterns — the same canonical encoding the
// checkpoint codec uses, so a byte stream has exactly one meaning on every
// architecture.
const (
	msgHello  = 1 // handshake: who is dialing, and over which config
	msgShard  = 2 // one epoch's trajectory deltas for a rank's shard
	msgDigest = 3 // post-apply replica state digest
)

// maxFrame bounds how large a peer frame the transport will believe.
// Shards carry per-step observation vectors, so frames scale with
// Batch x SeqLen x features; 256 MiB is far above any real epoch while
// still refusing a corrupt length field's absurd allocation.
const maxFrame = 256 << 20

// binWriter appends the canonical big-endian encoding.
type binWriter struct{ buf []byte }

func (w *binWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *binWriter) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *binWriter) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *binWriter) f64(v float64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// binReader consumes the canonical encoding, tracking one sticky error so
// decode paths read linearly and check once at the end.
type binReader struct {
	data []byte
	err  error
}

func (r *binReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.data) < n {
		r.err = fmt.Errorf("dist: message truncated: need %d bytes, have %d", n, len(r.data))
		return nil
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b
}

func (r *binReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *binReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *binReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *binReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *binReader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.data) != 0 {
		return fmt.Errorf("dist: message has %d trailing bytes", len(r.data))
	}
	return nil
}

// hello is the handshake message each connection opens with. The
// fingerprint hashes the training parameters every replica must agree on;
// a mismatch means the processes would silently train different models, so
// the connection is refused instead.
type hello struct {
	World       int
	Rank        int
	Fingerprint uint64
}

// Fingerprint hashes the TrainConfig fields that determine the epoch
// computation: any two workers agreeing on these (and on the wire version,
// checked per frame) produce bit-identical epochs.
func Fingerprint(cfg core.TrainConfig) uint64 {
	var w binWriter
	w.u64(uint64(cfg.Seed))
	w.u32(uint32(cfg.Batch))
	w.u32(uint32(cfg.SeqLen))
	w.u32(uint32(cfg.World))
	w.f64(cfg.LR)
	w.f64(cfg.TrainFrac)
	w.u32(uint32(len(cfg.Hidden)))
	for _, h := range cfg.Hidden {
		w.u32(uint32(h))
	}
	h := fnv.New64a()
	h.Write(w.buf)
	return h.Sum64()
}

func encodeHello(h hello) []byte {
	var w binWriter
	w.u8(msgHello)
	w.u32(uint32(h.World))
	w.u32(uint32(h.Rank))
	w.u64(h.Fingerprint)
	return w.buf
}

func decodeHello(payload []byte) (hello, error) {
	r := &binReader{data: payload}
	if k := r.u8(); r.err == nil && k != msgHello {
		return hello{}, fmt.Errorf("dist: expected hello, got message kind %d", k)
	}
	h := hello{World: int(r.u32()), Rank: int(r.u32()), Fingerprint: r.u64()}
	if err := r.done(); err != nil {
		return hello{}, err
	}
	return h, nil
}

// shardMsg is one worker's rollout contribution for one epoch: the
// TrajDeltas of its index range, in index order.
type shardMsg struct {
	Epoch  int
	Rank   int
	Lo, Hi int
	Deltas []core.TrajDelta
}

func encodeShard(m shardMsg) []byte {
	w := binWriter{buf: make([]byte, 0, 1<<16)}
	w.u8(msgShard)
	w.u64(uint64(m.Epoch))
	w.u32(uint32(m.Rank))
	w.u32(uint32(m.Lo))
	w.u32(uint32(m.Hi))
	w.u32(uint32(len(m.Deltas)))
	for i := range m.Deltas {
		d := &m.Deltas[i]
		w.u32(uint32(d.Index))
		w.f64(d.Reward)
		w.f64(d.Improvement)
		w.f64(d.PctImprovement)
		w.u32(uint32(d.Inspections))
		w.u32(uint32(d.Rejections))
		w.u32(uint32(len(d.Steps)))
		for j := range d.Steps {
			s := &d.Steps[j]
			w.u32(uint32(len(s.Obs)))
			for _, o := range s.Obs {
				w.f64(o)
			}
			w.u32(uint32(s.Action))
			w.f64(s.LogP)
		}
	}
	return w.buf
}

func decodeShard(payload []byte) (shardMsg, error) {
	r := &binReader{data: payload}
	if k := r.u8(); r.err == nil && k != msgShard {
		return shardMsg{}, fmt.Errorf("dist: expected shard, got message kind %d", k)
	}
	m := shardMsg{
		Epoch: int(r.u64()),
		Rank:  int(r.u32()),
		Lo:    int(r.u32()),
		Hi:    int(r.u32()),
	}
	n := int(r.u32())
	if r.err == nil && (n < 0 || n > len(r.data)) {
		return shardMsg{}, fmt.Errorf("dist: shard claims %d deltas in %d bytes", n, len(r.data))
	}
	m.Deltas = make([]core.TrajDelta, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		d := core.TrajDelta{
			Index:          int(r.u32()),
			Reward:         r.f64(),
			Improvement:    r.f64(),
			PctImprovement: r.f64(),
			Inspections:    int(r.u32()),
			Rejections:     int(r.u32()),
		}
		steps := int(r.u32())
		if r.err == nil && (steps < 0 || steps > len(r.data)) {
			return shardMsg{}, fmt.Errorf("dist: delta claims %d steps in %d bytes", steps, len(r.data))
		}
		d.Steps = make([]rl.Step, 0, steps)
		for j := 0; j < steps && r.err == nil; j++ {
			obsN := int(r.u32())
			if r.err == nil && (obsN < 0 || obsN*8 > len(r.data)) {
				return shardMsg{}, fmt.Errorf("dist: step claims %d features in %d bytes", obsN, len(r.data))
			}
			s := rl.Step{Obs: make([]float64, obsN)}
			for k := range s.Obs {
				s.Obs[k] = r.f64()
			}
			s.Action = int(r.u32())
			s.LogP = r.f64()
			d.Steps = append(d.Steps, s)
		}
		m.Deltas = append(m.Deltas, d)
	}
	if err := r.done(); err != nil {
		return shardMsg{}, err
	}
	return m, nil
}

// Digest summarizes a replica's full trainer state (the canonical
// checkpoint encoding: weights, Adam moments, epoch counter) for the
// post-apply divergence check. FNV-64a plus the exact byte length is cheap
// per epoch and catches any bit drift.
type Digest struct {
	Sum uint64
	Len int
}

// StateDigest digests the canonical checkpoint encoding of t's state.
func StateDigest(t *core.Trainer) (Digest, error) {
	payload, err := t.Checkpoint().Encode()
	if err != nil {
		return Digest{}, err
	}
	h := fnv.New64a()
	h.Write(payload)
	return Digest{Sum: h.Sum64(), Len: len(payload)}, nil
}

type digestMsg struct {
	Epoch int
	Rank  int
	State Digest
}

func encodeDigest(m digestMsg) []byte {
	var w binWriter
	w.u8(msgDigest)
	w.u64(uint64(m.Epoch))
	w.u32(uint32(m.Rank))
	w.u64(m.State.Sum)
	w.u64(uint64(m.State.Len))
	return w.buf
}

func decodeDigest(payload []byte) (digestMsg, error) {
	r := &binReader{data: payload}
	if k := r.u8(); r.err == nil && k != msgDigest {
		return digestMsg{}, fmt.Errorf("dist: expected digest, got message kind %d", k)
	}
	m := digestMsg{Epoch: int(r.u64()), Rank: int(r.u32())}
	m.State = Digest{Sum: r.u64(), Len: int(r.u64())}
	if err := r.done(); err != nil {
		return digestMsg{}, err
	}
	return m, nil
}
