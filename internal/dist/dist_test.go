package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"schedinspector/internal/core"
	"schedinspector/internal/metrics"
	"schedinspector/internal/rl"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

// testTrace is shared across tests: workload synthesis is deterministic,
// so one trace serves every trainer.
var testTrace = workload.SDSCSP2Like(2500, 3)

// testConfig builds the canonical test TrainConfig for one rank of a
// world-sized run (world 1 means single-process: no peers).
func testConfig(world, rank int, peers []string) core.TrainConfig {
	return core.TrainConfig{
		Trace: testTrace, Policy: sched.SJF(), Metric: metrics.BSLD,
		Batch: 4, SeqLen: 64, Seed: 17, Workers: 2,
		World: world, Rank: rank, Peers: peers,
	}
}

// sockets returns one short unix-socket path per rank. Socket paths count
// against the ~104-byte sun_path limit, hence the terse names.
func sockets(t *testing.T, world int) []string {
	t.Helper()
	dir := t.TempDir()
	peers := make([]string, world)
	for i := range peers {
		peers[i] = filepath.Join(dir, fmt.Sprintf("w%d.sock", i))
	}
	return peers
}

// zeroSeconds strips the only wall-clock-dependent field so EpochStats
// compare bit-exactly.
func zeroSeconds(stats []core.EpochStats) []core.EpochStats {
	out := append([]core.EpochStats(nil), stats...)
	for i := range out {
		out[i].Seconds = 0
	}
	return out
}

// stateBytes returns the canonical serialized trainer state — weights,
// Adam moments, epoch counter — the bytes the equivalence criteria pin.
func stateBytes(t *testing.T, tr *core.Trainer) []byte {
	t.Helper()
	b, err := tr.Checkpoint().Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runWorld trains a world-sized in-process fleet over unix sockets and
// returns each rank's per-epoch stats and final serialized state. ck maps
// rank to its checkpoint config (nil means no checkpointing anywhere).
func runWorld(t *testing.T, world, epochs int, ck func(rank int) core.CheckpointConfig) ([][]core.EpochStats, [][]byte) {
	t.Helper()
	peers := sockets(t, world)
	statsBy := make([][]core.EpochStats, world)
	bytesBy := make([][]byte, world)
	errsBy := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := core.NewTrainer(testConfig(world, r, peers))
			if err != nil {
				errsBy[r] = err
				return
			}
			var cc core.CheckpointConfig
			if ck != nil {
				cc = ck(r)
			}
			stats, err := Train(context.Background(), tr, epochs, cc, Options{}, nil)
			if err != nil {
				errsBy[r] = err
				return
			}
			statsBy[r] = stats
			bytesBy[r] = stateBytes(t, tr)
		}(r)
	}
	wg.Wait()
	for r, err := range errsBy {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return statsBy, bytesBy
}

// TestEquivDistWorldSizes is the golden distributed-equivalence suite the
// tentpole demands: 2- and 4-worker runs must produce serialized model +
// Adam state bytes — and epoch statistics — identical to the
// single-process Trainer.Train on the same seed and config.
func TestEquivDistWorldSizes(t *testing.T) {
	const epochs = 2
	ref, err := core.NewTrainer(testConfig(1, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	wantStats, err := ref.Train(epochs, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantStats = zeroSeconds(wantStats)
	wantBytes := stateBytes(t, ref)

	for _, world := range []int{2, 4} {
		world := world
		t.Run(fmt.Sprintf("world=%d", world), func(t *testing.T) {
			statsBy, bytesBy := runWorld(t, world, epochs, nil)
			for r := 0; r < world; r++ {
				got := zeroSeconds(statsBy[r])
				if len(got) != len(wantStats) {
					t.Fatalf("rank %d: %d epochs, want %d", r, len(got), len(wantStats))
				}
				for e := range got {
					if got[e] != wantStats[e] {
						t.Errorf("rank %d epoch %d stats diverge:\n got %+v\nwant %+v", r, e, got[e], wantStats[e])
					}
				}
				if !bytes.Equal(bytesBy[r], wantBytes) {
					t.Errorf("rank %d: serialized trainer state differs from single-process run (%d vs %d bytes)",
						r, len(bytesBy[r]), len(wantBytes))
				}
			}
		})
	}
}

// TestDistPeerDeathTypedError covers the kill-one-worker-mid-epoch
// satellite: when a peer dies between epochs, the survivor's next barrier
// fails promptly with an error matching ErrPeer — no hang.
func TestDistPeerDeathTypedError(t *testing.T) {
	peers := sockets(t, 2)
	opt := Options{ExchangeTimeout: 5 * time.Second}
	type outcome struct {
		rank int
		err  error
	}
	results := make(chan outcome, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := core.NewTrainer(testConfig(2, r, peers))
			if err != nil {
				results <- outcome{r, err}
				return
			}
			w, err := NewWorker(context.Background(), tr, opt)
			if err != nil {
				results <- outcome{r, err}
				return
			}
			defer w.Close()
			if _, err := w.RunEpoch(); err != nil { // epoch 1: both alive
				results <- outcome{r, err}
				return
			}
			if r == 1 { // rank 1 dies between epochs
				w.Close()
				results <- outcome{r, nil}
				return
			}
			_, err = w.RunEpoch() // rank 0's epoch-2 barrier must fail
			results <- outcome{r, err}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("workers hung after peer death")
	}
	close(results)
	for o := range results {
		switch o.rank {
		case 1:
			if o.err != nil {
				t.Errorf("rank 1 (the dying peer): unexpected error %v", o.err)
			}
		case 0:
			if !errors.Is(o.err, ErrPeer) {
				t.Errorf("rank 0: err = %v, want one matching ErrPeer", o.err)
			}
			var pe *PeerError
			if !errors.As(o.err, &pe) || pe.Rank != 1 {
				t.Errorf("rank 0: err = %v, want *PeerError naming rank 1", o.err)
			}
		}
	}
}

// TestDistSilentPeerTimesOut pins the other failure shape: a peer that
// stays connected but never sends (stalled, wedged) trips the exchange
// deadline instead of blocking the survivor forever.
func TestDistSilentPeerTimesOut(t *testing.T) {
	peers := sockets(t, 2)
	opt := Options{ExchangeTimeout: 1 * time.Second}
	errCh := make(chan error, 1)
	release := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := core.NewTrainer(testConfig(2, r, peers))
			if err != nil {
				if r == 0 {
					errCh <- err
				}
				return
			}
			w, err := NewWorker(context.Background(), tr, opt)
			if err != nil {
				if r == 0 {
					errCh <- err
				}
				return
			}
			defer w.Close()
			if r == 1 {
				<-release // hold the connection open, never enter the barrier
				return
			}
			_, err = w.RunEpoch()
			errCh <- err
		}(r)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrPeer) {
			t.Errorf("err = %v, want one matching ErrPeer", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("survivor did not time out on the silent peer")
	}
	close(release)
	wg.Wait()
}

// TestEquivDistRestartResume covers the restart half of the satellite: a
// fleet stopped after an epoch boundary and restarted from the shared
// checkpoint directory finishes bit-identical to an uninterrupted run.
func TestEquivDistRestartResume(t *testing.T) {
	const world, epochs = 2, 3

	ref, err := core.NewTrainer(testConfig(1, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Train(epochs, nil); err != nil {
		t.Fatal(err)
	}
	want := stateBytes(t, ref)

	ckDir := t.TempDir()
	ck := func(rank int) core.CheckpointConfig {
		return core.CheckpointConfig{Dir: ckDir, Every: 1}
	}
	// Leg 1: one epoch, then the whole fleet stops (the final save lands
	// the epoch-1 checkpoint in the shared directory).
	runWorld(t, world, 1, ck)

	// Leg 2: fresh processes resume from the shared directory and finish.
	peers := sockets(t, world)
	bytesBy := make([][]byte, world)
	errsBy := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := core.NewTrainer(testConfig(world, r, peers))
			if err == nil {
				_, err = tr.ResumeLatest(ckDir)
			}
			if err == nil {
				_, err = Train(context.Background(), tr, epochs-1, ck(r), Options{}, nil)
			}
			if err != nil {
				errsBy[r] = err
				return
			}
			bytesBy[r] = stateBytes(t, tr)
		}(r)
	}
	wg.Wait()
	for r, err := range errsBy {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 0; r < world; r++ {
		if !bytes.Equal(bytesBy[r], want) {
			t.Errorf("rank %d: resumed state differs from uninterrupted single-process run", r)
		}
	}
}

// TestConnectRejectsFingerprintMismatch pins the handshake guard: peers
// configured with different training parameters must refuse each other.
func TestConnectRejectsFingerprintMismatch(t *testing.T) {
	peers := sockets(t, 2)
	opt := Options{DialTimeout: 10 * time.Second}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := testConfig(2, r, peers)
			if r == 1 {
				cfg.Seed = 99 // diverging config
			}
			m, err := Connect(context.Background(), r, peers, Fingerprint(cfg), opt)
			if err == nil {
				m.Close()
			}
			errs[r] = err
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if !errors.Is(err, ErrPeer) {
			t.Errorf("rank %d: err = %v, want a fingerprint refusal matching ErrPeer", r, err)
		}
	}
}

func TestShardCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := shardMsg{Epoch: 7, Rank: 2, Lo: 5, Hi: 8}
	for i := m.Lo; i < m.Hi; i++ {
		d := core.TrajDelta{
			Index:          i,
			Reward:         rng.NormFloat64(),
			Improvement:    rng.NormFloat64(),
			PctImprovement: rng.NormFloat64(),
			Inspections:    rng.Intn(100),
			Rejections:     rng.Intn(50),
		}
		for s := 0; s < rng.Intn(4)+1; s++ {
			step := rl.Step{Action: rng.Intn(2), LogP: rng.NormFloat64()}
			for f := 0; f < 6; f++ {
				step.Obs = append(step.Obs, rng.NormFloat64())
			}
			d.Steps = append(d.Steps, step)
		}
		m.Deltas = append(m.Deltas, d)
	}
	got, err := decodeShard(encodeShard(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != m.Epoch || got.Rank != m.Rank || got.Lo != m.Lo || got.Hi != m.Hi {
		t.Fatalf("header round trip: got %+v", got)
	}
	if len(got.Deltas) != len(m.Deltas) {
		t.Fatalf("%d deltas, want %d", len(got.Deltas), len(m.Deltas))
	}
	for i := range m.Deltas {
		a, b := m.Deltas[i], got.Deltas[i]
		if a.Index != b.Index || a.Reward != b.Reward || a.Improvement != b.Improvement ||
			a.PctImprovement != b.PctImprovement || a.Inspections != b.Inspections || a.Rejections != b.Rejections {
			t.Errorf("delta %d scalars diverge: %+v vs %+v", i, a, b)
		}
		if len(a.Steps) != len(b.Steps) {
			t.Fatalf("delta %d: %d steps, want %d", i, len(b.Steps), len(a.Steps))
		}
		for j := range a.Steps {
			if a.Steps[j].Action != b.Steps[j].Action || a.Steps[j].LogP != b.Steps[j].LogP ||
				!floatsEqual(a.Steps[j].Obs, b.Steps[j].Obs) {
				t.Errorf("delta %d step %d diverges", i, j)
			}
		}
	}
	// Truncated payloads must fail, never mis-decode.
	enc := encodeShard(m)
	for _, cut := range []int{1, len(enc) / 2, len(enc) - 1} {
		if _, err := decodeShard(enc[:cut]); err == nil {
			t.Errorf("decode of %d/%d bytes succeeded", cut, len(enc))
		}
	}
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReduceValidation pins the reducer's refusal of every malformed
// cover: wrong epoch, duplicate rank, wrong shard bounds, short shard,
// mis-indexed delta.
func TestReduceValidation(t *testing.T) {
	const batch, world, epoch = 6, 2, 3
	mkShard := func(rank int) shardMsg {
		lo, hi := core.ShardRange(batch, world, rank)
		m := shardMsg{Epoch: epoch, Rank: rank, Lo: lo, Hi: hi}
		for i := lo; i < hi; i++ {
			m.Deltas = append(m.Deltas, core.TrajDelta{Index: i})
		}
		return m
	}
	good := func() []shardMsg { return []shardMsg{mkShard(0), mkShard(1)} }

	if deltas, err := Reduce(batch, world, epoch, good()); err != nil {
		t.Fatal(err)
	} else if len(deltas) != batch {
		t.Fatalf("reduced %d deltas, want %d", len(deltas), batch)
	}
	// Arrival order must not matter.
	if _, err := Reduce(batch, world, epoch, []shardMsg{mkShard(1), mkShard(0)}); err != nil {
		t.Fatalf("reversed arrival order rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func([]shardMsg) []shardMsg
	}{
		{"missing shard", func(s []shardMsg) []shardMsg { return s[:1] }},
		{"stale epoch", func(s []shardMsg) []shardMsg { s[1].Epoch = epoch - 1; return s }},
		{"duplicate rank", func(s []shardMsg) []shardMsg { s[1] = s[0]; return s }},
		{"wrong bounds", func(s []shardMsg) []shardMsg { s[1].Lo--; return s }},
		{"short shard", func(s []shardMsg) []shardMsg { s[1].Deltas = s[1].Deltas[:1]; return s }},
		{"mis-indexed delta", func(s []shardMsg) []shardMsg { s[0].Deltas[0].Index = 99; return s }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Reduce(batch, world, epoch, tc.mut(good())); err == nil {
				t.Error("malformed cover accepted")
			}
		})
	}
}

// TestShardRangeCovers sanity-checks the canonical split the reducer and
// every worker rely on.
func TestShardRangeCovers(t *testing.T) {
	for _, tc := range []struct{ batch, world int }{{4, 2}, {5, 2}, {100, 4}, {7, 7}, {3, 2}} {
		prev := 0
		for r := 0; r < tc.world; r++ {
			lo, hi := core.ShardRange(tc.batch, tc.world, r)
			if lo != prev || hi < lo {
				t.Errorf("ShardRange(%d, %d, %d) = [%d, %d), want lo %d", tc.batch, tc.world, r, lo, hi, prev)
			}
			prev = hi
		}
		if prev != tc.batch {
			t.Errorf("ShardRange(%d, %d, *) covers %d indices", tc.batch, tc.world, prev)
		}
	}
}
