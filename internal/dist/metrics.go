package dist

import "schedinspector/internal/obs"

// Metrics is the obs instrumentation of the distributed engine: per-epoch
// exchange latency and volume, straggler wait, and peer failures. Attach
// one via Options.Metrics to export it through an obs.Registry (e.g.
// mounted at /metrics next to the rollout family).
type Metrics struct {
	// ExchangeSeconds observes the wall time of each all-to-all barrier
	// round (shard exchange and digest exchange alike).
	ExchangeSeconds *obs.Histogram
	// StragglerSeconds observes, per epoch, how long this rank waited at
	// the shard barrier after finishing its own rollout — the time spent
	// idle on the slowest peer.
	StragglerSeconds *obs.Histogram
	// BytesSent / BytesReceived count frame payload bytes moved through
	// the mesh (excluding the 24-byte container headers).
	BytesSent     *obs.Counter
	BytesReceived *obs.Counter
	// PeerFailures counts barrier rounds aborted by a peer error (dead
	// connection, timeout, corrupt frame).
	PeerFailures *obs.Counter
	// Epochs counts epochs completed by this worker, divergence checks
	// included.
	Epochs *obs.Counter
}

// NewMetrics registers the distributed-engine metric family on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		ExchangeSeconds: r.Histogram("schedinspector_dist_exchange_seconds",
			"Wall time of one all-to-all exchange barrier round.", nil, nil),
		StragglerSeconds: r.Histogram("schedinspector_dist_straggler_seconds",
			"Time spent waiting on the slowest peer after the local rollout shard finished.", nil, nil),
		BytesSent: r.Counter("schedinspector_dist_bytes_sent_total",
			"Frame payload bytes sent to peers.", nil),
		BytesReceived: r.Counter("schedinspector_dist_bytes_received_total",
			"Frame payload bytes received from peers.", nil),
		PeerFailures: r.Counter("schedinspector_dist_peer_failures_total",
			"Exchange rounds aborted by a peer failure or timeout.", nil),
		Epochs: r.Counter("schedinspector_dist_epochs_total",
			"Distributed epochs completed by this worker.", nil),
	}
}

// Nil receivers make every observation a no-op, so the un-instrumented
// path costs one branch.

func (m *Metrics) observeSent(n int) {
	if m != nil {
		m.BytesSent.Add(float64(n))
	}
}

func (m *Metrics) observeRecv(n int) {
	if m != nil {
		m.BytesReceived.Add(float64(n))
	}
}

func (m *Metrics) observeFailure() {
	if m != nil {
		m.PeerFailures.Add(1)
	}
}

func (m *Metrics) observeExchange(seconds float64) {
	if m != nil {
		m.ExchangeSeconds.Observe(seconds)
	}
}

func (m *Metrics) observeStraggler(seconds float64) {
	if m != nil {
		m.StragglerSeconds.Observe(seconds)
	}
}

func (m *Metrics) observeEpoch() {
	if m != nil {
		m.Epochs.Add(1)
	}
}
