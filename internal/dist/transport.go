package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"schedinspector/internal/ckpt"
)

// ErrPeer is the sentinel every transport-level peer failure matches via
// errors.Is — dial refusals, handshake mismatches, a peer dying mid-epoch,
// or a barrier read timing out on a silent peer. Surviving workers get a
// *PeerError naming the rank instead of hanging.
var ErrPeer = errors.New("dist: peer failure")

// PeerError reports a failure attributable to one peer rank. It matches
// ErrPeer with errors.Is and unwraps to the underlying cause (so deadline
// expiries still match os.ErrDeadlineExceeded, closed connections match
// net.ErrClosed, and so on).
type PeerError struct {
	Rank int    // the peer rank the failure is attributed to
	Op   string // what was being attempted: "dial", "accept", "hello", "send", "recv"
	Err  error
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("dist: peer rank %d: %s: %v", e.Rank, e.Op, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

// Is reports whether target is ErrPeer.
func (e *PeerError) Is(target error) bool { return target == ErrPeer }

func peerErr(rank int, op string, err error) error {
	return &PeerError{Rank: rank, Op: op, Err: err}
}

// networkFor infers the network of a peer address when Options.Network is
// unset: anything shaped like a filesystem path is a unix socket,
// everything else TCP.
func networkFor(network, addr string) string {
	if network != "" {
		return network
	}
	if strings.ContainsAny(addr, "/") || strings.HasSuffix(addr, ".sock") {
		return "unix"
	}
	return "tcp"
}

// Mesh is the coordinator-less peer transport: a fully-connected set of
// World workers, one duplex connection per peer pair. Rank r listens on
// peers[r], dials every lower rank and accepts from every higher rank, so
// each pair establishes exactly one connection with no central broker.
// Frames are ckpt containers (magic + version + length + CRC-32C), making
// the wire self-delimiting and corruption-evident.
//
// Exchange implements the per-epoch barrier: every rank sends its payload
// to all peers and the call returns only once a frame from every peer has
// arrived (or a peer failed / the timeout expired), so no rank can advance
// an epoch without the full delta set.
type Mesh struct {
	rank, world int
	opt         Options

	ln    net.Listener
	conns []net.Conn      // by peer rank; nil at own rank
	rds   []*bufio.Reader // buffered readers over conns

	closeOnce sync.Once
	stopWatch func() bool // cancels the ctx watchdog
}

// Connect establishes the full mesh for rank within peers (one listen
// address per rank, in rank order). It blocks until every pairwise
// connection is up and its handshake verified, or until ctx is canceled or
// opt.DialTimeout expires. fp is the local config fingerprint; a peer
// whose hello disagrees is refused with a *PeerError.
func Connect(ctx context.Context, rank int, peers []string, fp uint64, opt Options) (*Mesh, error) {
	opt = opt.withDefaults()
	world := len(peers)
	if world < 2 {
		return nil, fmt.Errorf("dist: mesh needs at least 2 peers, got %d", world)
	}
	if rank < 0 || rank >= world {
		return nil, fmt.Errorf("dist: rank %d out of range for %d peers", rank, world)
	}
	network := networkFor(opt.Network, peers[rank])
	if network == "unix" {
		// A stale socket file from a crashed run blocks the bind.
		os.Remove(peers[rank])
	}
	ln, err := net.Listen(network, peers[rank])
	if err != nil {
		return nil, fmt.Errorf("dist: listen %s %s: %w", network, peers[rank], err)
	}
	m := &Mesh{
		rank:  rank,
		world: world,
		opt:   opt,
		ln:    ln,
		conns: make([]net.Conn, world),
		rds:   make([]*bufio.Reader, world),
	}

	deadline := time.Now().Add(opt.DialTimeout)
	cctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	// Cancellation watchdog: closing the listener and every live
	// connection is what turns blocked accepts/reads into prompt errors.
	watchDone := context.AfterFunc(cctx, func() {
		ln.Close()
		for _, c := range m.conns {
			if c != nil {
				c.Close()
			}
		}
	})

	myHello := encodeHello(hello{World: world, Rank: rank, Fingerprint: fp})
	check := func(peerRank int, h hello) error {
		if h.World != world {
			return fmt.Errorf("peer says world=%d, we have %d", h.World, world)
		}
		if h.Fingerprint != fp {
			return fmt.Errorf("config fingerprint mismatch (%016x vs local %016x): peers must share seed/batch/seqlen/world", h.Fingerprint, fp)
		}
		if peerRank >= 0 && h.Rank != peerRank {
			return fmt.Errorf("dialed rank %d, peer claims rank %d", peerRank, h.Rank)
		}
		return nil
	}

	var (
		mu    sync.Mutex
		errs  []error
		wg    sync.WaitGroup
		fail  = func(err error) { mu.Lock(); errs = append(errs, err); mu.Unlock() }
		admit = func(r int, c net.Conn) { mu.Lock(); m.conns[r], m.rds[r] = c, bufio.NewReader(c); mu.Unlock() }
	)

	// Dial every lower rank, retrying while the peer's listener comes up.
	for p := 0; p < rank; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			pn := networkFor(opt.Network, peers[p])
			var d net.Dialer
			var c net.Conn
			var err error
			for {
				c, err = d.DialContext(cctx, pn, peers[p])
				if err == nil || cctx.Err() != nil {
					break
				}
				select {
				case <-time.After(dialRetryInterval):
				case <-cctx.Done():
				}
			}
			if err != nil {
				fail(peerErr(p, "dial", err))
				return
			}
			c.SetDeadline(deadline)
			if err := ckpt.WriteFrame(c, WireVersion, myHello); err != nil {
				c.Close()
				fail(peerErr(p, "hello", err))
				return
			}
			h, err := readHello(c)
			if err == nil {
				err = check(p, h)
			}
			if err != nil {
				c.Close()
				fail(peerErr(p, "hello", err))
				return
			}
			c.SetDeadline(time.Time{})
			admit(p, c)
		}(p)
	}

	// Accept from every higher rank; the dialer's hello identifies it.
	expect := world - 1 - rank
	wg.Add(1)
	go func() {
		defer wg.Done()
		for got := 0; got < expect; got++ {
			c, err := ln.Accept()
			if err != nil {
				fail(peerErr(-1, "accept", fmt.Errorf("%w (waiting for %d more peers)", err, expect-got)))
				return
			}
			c.SetDeadline(deadline)
			h, err := readHello(c)
			if err == nil {
				err = check(-1, h)
			}
			if err == nil && (h.Rank <= rank || h.Rank >= world) {
				err = fmt.Errorf("peer claims rank %d, expected a rank in (%d, %d)", h.Rank, rank, world)
			}
			if err != nil {
				c.Close()
				fail(peerErr(-1, "hello", err))
				return
			}
			if err := ckpt.WriteFrame(c, WireVersion, myHello); err != nil {
				c.Close()
				fail(peerErr(h.Rank, "hello", err))
				return
			}
			c.SetDeadline(time.Time{})
			admit(h.Rank, c)
		}
	}()
	wg.Wait()
	watchDone()

	if len(errs) > 0 {
		m.Close()
		return nil, errors.Join(errs...)
	}
	// Re-arm the watchdog for the mesh's lifetime: a ctx cancellation
	// during a later Exchange must also unblock reads.
	m.stopWatch = context.AfterFunc(ctx, func() { m.closeConns() })
	m.opt.Logf("dist: rank %d mesh up (%d peers)", rank, world-1)
	return m, nil
}

// dialRetryInterval paces dial retries while a peer's listener starts.
const dialRetryInterval = 100 * time.Millisecond

// readHello reads and decodes one hello frame straight off the connection
// — deliberately unbuffered, so no byte of the frame that follows the
// handshake can be swallowed before the persistent buffered reader takes
// over.
func readHello(c net.Conn) (hello, error) {
	ver, payload, err := ckpt.ReadFrame(c, maxFrame)
	if err != nil {
		return hello{}, err
	}
	if ver != WireVersion {
		return hello{}, fmt.Errorf("peer speaks wire version %d, this build speaks %d", ver, WireVersion)
	}
	return decodeHello(payload)
}

// Exchange runs one all-to-all barrier round: payload goes to every peer,
// and the returned slice holds each rank's payload (the local one included
// at m.Rank()) once every peer's frame has arrived. Reads and writes are
// bounded by opt.ExchangeTimeout — a dead or silent peer surfaces as a
// *PeerError (deadline or closed-connection cause) instead of a hang.
//
// The returned elapsed duration is the barrier's wall time: since Exchange
// is called the moment local work finishes, it measures the wait on the
// slowest peer (the straggler) plus transfer.
func (m *Mesh) Exchange(payload []byte) ([][]byte, time.Duration, error) {
	t0 := time.Now()
	out := make([][]byte, m.world)
	out[m.rank] = payload
	// Sends and receives run on independent goroutines per peer. This is
	// load-bearing, not style: if both sides of a pair block writing a
	// frame larger than the socket buffers while neither is reading, the
	// barrier deadlocks until the timeout. A dedicated reader per peer
	// keeps draining, so opposing large frames always make progress.
	sendErrs := make([]error, m.world)
	recvErrs := make([]error, m.world)
	var wg sync.WaitGroup
	for p := 0; p < m.world; p++ {
		if p == m.rank {
			continue
		}
		c := m.conns[p]
		if c == nil {
			sendErrs[p] = peerErr(p, "send", net.ErrClosed)
			continue
		}
		wg.Add(2)
		go func(p int, c net.Conn) {
			defer wg.Done()
			c.SetWriteDeadline(time.Now().Add(m.opt.ExchangeTimeout))
			if err := ckpt.WriteFrame(c, WireVersion, payload); err != nil {
				sendErrs[p] = peerErr(p, "send", err)
				return
			}
			m.opt.Metrics.observeSent(len(payload))
		}(p, c)
		go func(p int, c net.Conn) {
			defer wg.Done()
			c.SetReadDeadline(time.Now().Add(m.opt.ExchangeTimeout))
			ver, reply, err := ckpt.ReadFrame(m.rds[p], maxFrame)
			if err != nil {
				recvErrs[p] = peerErr(p, "recv", err)
				return
			}
			if ver != WireVersion {
				recvErrs[p] = peerErr(p, "recv", fmt.Errorf("wire version %d, want %d", ver, WireVersion))
				return
			}
			m.opt.Metrics.observeRecv(len(reply))
			out[p] = reply
		}(p, c)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	for p := 0; p < m.world; p++ {
		err := recvErrs[p]
		if err == nil {
			err = sendErrs[p]
		}
		if err != nil {
			m.opt.Metrics.observeFailure()
			return nil, elapsed, err
		}
	}
	return out, elapsed, nil
}

// Rank returns the mesh's local rank.
func (m *Mesh) Rank() int { return m.rank }

// World returns the mesh's world size.
func (m *Mesh) World() int { return m.world }

func (m *Mesh) closeConns() {
	for _, c := range m.conns {
		if c != nil {
			c.Close()
		}
	}
}

// Close tears the mesh down: listener and every peer connection. Safe to
// call more than once; blocked peers see closed-connection errors.
func (m *Mesh) Close() error {
	m.closeOnce.Do(func() {
		if m.stopWatch != nil {
			m.stopWatch()
		}
		if m.ln != nil {
			m.ln.Close()
		}
		m.closeConns()
	})
	return nil
}
