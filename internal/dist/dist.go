// Package dist is the DD-PPO-style multi-process training engine: a set
// of coordinator-less worker processes that each roll out a shard of every
// epoch's trajectory batch, exchange per-trajectory deltas all-to-all, and
// apply the identical PPO update — so every replica holds bit-identical
// weights and Adam state at every epoch boundary, pinned against the
// single-process Trainer.Train by the golden equivalence suite.
//
// The design choice that makes bit-identity possible is WHAT is exchanged.
// Averaging per-shard gradients (classic DD-PPO) computes a mathematically
// different update than full-batch PPO and is non-associative in floating
// point, so it can never match the single-process trainer byte for byte.
// Instead, workers exchange rollout results: each trajectory's transitions
// and scalar statistics (core.TrajDelta), which are pure functions of
// (seed, epoch, index) and therefore identical wherever they are computed.
// Every worker then reduces the full delta set in ascending index order
// and runs the same full-batch update — replicated apply. The model is
// tiny (three small MLP layers); simulation dominates epoch cost, so
// sharding the rollout is where the speedup lives and replicating the
// update costs almost nothing.
//
// A post-apply digest round (FNV-64a over the canonical checkpoint bytes)
// verifies the replicas actually agree each epoch; any drift — a cosmic
// ray, a mixed-build fleet — surfaces as an error matching ErrDiverged
// instead of workers silently training different models.
package dist

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"schedinspector/internal/core"
)

// ErrDiverged is the sentinel matched (via errors.Is) by post-apply digest
// mismatches: two replicas no longer hold identical trainer state.
var ErrDiverged = errors.New("dist: replica state diverged")

// DivergenceError reports which peer's post-apply state digest disagreed
// with the local one. It matches ErrDiverged with errors.Is.
type DivergenceError struct {
	Epoch         int
	Rank          int // the disagreeing peer
	Local, Remote Digest
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("dist: replica state diverged at epoch %d: rank %d digest %016x/%d bytes, local %016x/%d bytes",
		e.Epoch, e.Rank, e.Remote.Sum, e.Remote.Len, e.Local.Sum, e.Local.Len)
}

// Is reports whether target is ErrDiverged.
func (e *DivergenceError) Is(target error) bool { return target == ErrDiverged }

// Options parameterizes the distributed engine's transport and telemetry.
type Options struct {
	// Network forces the peer-address network ("tcp" or "unix"); empty
	// infers it per address (filesystem-path shapes are unix sockets).
	Network string

	// DialTimeout bounds mesh establishment — listeners coming up, dials
	// retrying, handshakes completing (default 30s).
	DialTimeout time.Duration

	// ExchangeTimeout bounds each per-epoch barrier round; a peer that
	// dies or stalls longer than this yields a *PeerError instead of a
	// hang (default 10m — it must cover the slowest peer's rollout).
	ExchangeTimeout time.Duration

	// Metrics, when non-nil, receives exchange latency/volume, straggler
	// wait and failure observations (see NewMetrics).
	Metrics *Metrics

	// Logf, when non-nil, receives progress lines (mesh up, epoch done).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.DialTimeout == 0 {
		o.DialTimeout = 30 * time.Second
	}
	if o.ExchangeTimeout == 0 {
		o.ExchangeTimeout = 10 * time.Minute
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Reduce merges the per-rank shard messages of one epoch into the
// complete, index-ordered delta set ApplyDeltas requires. It validates
// the cover exactly — every rank present once, every shard matching its
// declared [lo, hi) range and the canonical ShardRange split, every delta
// under its claimed index — so a mis-sharded or replayed message is
// rejected before it can corrupt an update. Reduction order is fixed by
// index, never by message arrival.
func Reduce(batch, world, epoch int, shards []shardMsg) ([]core.TrajDelta, error) {
	if len(shards) != world {
		return nil, fmt.Errorf("dist: epoch %d: have %d shards, world is %d", epoch, len(shards), world)
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i].Lo < shards[j].Lo })
	seen := make([]bool, world)
	deltas := make([]core.TrajDelta, 0, batch)
	for _, s := range shards {
		if s.Epoch != epoch {
			return nil, fmt.Errorf("dist: rank %d sent epoch %d, expected %d (replayed or skipped barrier)", s.Rank, s.Epoch, epoch)
		}
		if s.Rank < 0 || s.Rank >= world || seen[s.Rank] {
			return nil, fmt.Errorf("dist: epoch %d: duplicate or out-of-range rank %d", epoch, s.Rank)
		}
		seen[s.Rank] = true
		lo, hi := core.ShardRange(batch, world, s.Rank)
		if s.Lo != lo || s.Hi != hi {
			return nil, fmt.Errorf("dist: epoch %d: rank %d claims shard [%d, %d), canonical split owns [%d, %d)",
				epoch, s.Rank, s.Lo, s.Hi, lo, hi)
		}
		if len(s.Deltas) != hi-lo {
			return nil, fmt.Errorf("dist: epoch %d: rank %d sent %d deltas for shard [%d, %d)",
				epoch, s.Rank, len(s.Deltas), lo, hi)
		}
		for k := range s.Deltas {
			if s.Deltas[k].Index != lo+k {
				return nil, fmt.Errorf("dist: epoch %d: rank %d delta %d carries index %d, want %d",
					epoch, s.Rank, k, s.Deltas[k].Index, lo+k)
			}
		}
		if len(deltas) != lo {
			return nil, fmt.Errorf("dist: epoch %d: shard [%d, %d) leaves a gap after index %d", epoch, lo, hi, len(deltas))
		}
		deltas = append(deltas, s.Deltas...)
	}
	if len(deltas) != batch {
		return nil, fmt.Errorf("dist: epoch %d: shards cover %d of %d trajectories", epoch, len(deltas), batch)
	}
	return deltas, nil
}

// Worker couples a trainer to a connected mesh and runs the distributed
// epoch cycle. Build one with NewWorker, then call Train.
type Worker struct {
	t    *core.Trainer
	mesh *Mesh
	opt  Options
}

// NewWorker connects the mesh for t's configured rank/world/peers and
// returns the worker. The trainer's config must carry World > 1 with a
// full peer list (TrainConfig validation enforces the shape); every
// cooperating process must construct its trainer from an identical config
// apart from Rank — the handshake fingerprint rejects anything else.
// Close the worker when done.
func NewWorker(ctx context.Context, t *core.Trainer, opt Options) (*Worker, error) {
	cfg := t.Config()
	if cfg.World < 2 {
		return nil, fmt.Errorf("dist: TrainConfig.World = %d; the distributed engine needs World >= 2 (use Trainer.TrainCtx single-process)", cfg.World)
	}
	opt = opt.withDefaults()
	mesh, err := Connect(ctx, cfg.Rank, cfg.Peers, Fingerprint(cfg), opt)
	if err != nil {
		return nil, err
	}
	return &Worker{t: t, mesh: mesh, opt: opt}, nil
}

// Close tears down the worker's mesh.
func (w *Worker) Close() error { return w.mesh.Close() }

// RunEpoch executes one distributed epoch: roll out the local shard,
// exchange deltas with every peer (the epoch barrier), reduce the full
// set in index order, apply the replicated PPO update, then exchange and
// verify post-apply state digests. It is the distributed counterpart of
// core.Trainer.RunEpoch and satisfies core.EpochFunc.
func (w *Worker) RunEpoch() (core.EpochStats, error) {
	t, cfg := w.t, w.t.Config()
	epoch := t.BeginEpoch()
	lo, hi := core.ShardRange(cfg.Batch, cfg.World, cfg.Rank)
	local, err := t.RolloutShard(lo, hi)
	if err != nil {
		return core.EpochStats{Epoch: epoch}, err
	}

	own := shardMsg{Epoch: epoch, Rank: cfg.Rank, Lo: lo, Hi: hi, Deltas: local}
	frames, wait, err := w.mesh.Exchange(encodeShard(own))
	w.opt.Metrics.observeExchange(wait.Seconds())
	w.opt.Metrics.observeStraggler(wait.Seconds())
	if err != nil {
		return core.EpochStats{Epoch: epoch}, err
	}
	shards := make([]shardMsg, 0, cfg.World)
	for p, frame := range frames {
		if p == cfg.Rank {
			shards = append(shards, own)
			continue
		}
		m, err := decodeShard(frame)
		if err != nil {
			return core.EpochStats{Epoch: epoch}, peerErr(p, "decode", err)
		}
		shards = append(shards, m)
	}
	deltas, err := Reduce(cfg.Batch, cfg.World, epoch, shards)
	if err != nil {
		return core.EpochStats{Epoch: epoch}, err
	}

	stats, err := t.ApplyDeltas(deltas)
	if err != nil {
		return stats, err
	}

	// Replicas applied the same update to the same state, so their
	// digests must agree; checking every epoch turns any drift into a
	// prompt typed error at the boundary where it happened.
	dg, err := StateDigest(t)
	if err != nil {
		return stats, err
	}
	dframes, dwait, err := w.mesh.Exchange(encodeDigest(digestMsg{Epoch: epoch, Rank: cfg.Rank, State: dg}))
	w.opt.Metrics.observeExchange(dwait.Seconds())
	if err != nil {
		return stats, err
	}
	for p, frame := range dframes {
		if p == cfg.Rank {
			continue
		}
		m, err := decodeDigest(frame)
		if err != nil {
			return stats, peerErr(p, "decode", err)
		}
		if m.Epoch != epoch {
			return stats, peerErr(p, "digest", fmt.Errorf("epoch %d, expected %d", m.Epoch, epoch))
		}
		if m.State != dg {
			return stats, &DivergenceError{Epoch: epoch, Rank: p, Local: dg, Remote: m.State}
		}
	}
	w.opt.Metrics.observeEpoch()
	w.opt.Logf("dist: rank %d epoch %d done (barrier %.3fs)", cfg.Rank, epoch, wait.Seconds())
	return stats, nil
}

// Train runs epochs distributed epochs through the shared phase driver
// (core.Trainer.DriveEpochs), so checkpointing and interruption behave
// exactly as in single-process TrainCtx. Two distributed adjustments:
// periodic checkpoints are written by rank 0 only (every rank's state is
// identical, so one writer suffices and a shared checkpoint directory
// sees no redundant churn), while the final and interrupt saves run on
// every rank — the bytes are identical and the container write is atomic,
// so concurrent writers to a shared directory are safe, and per-rank
// directories stay self-contained for restart.
func (w *Worker) Train(ctx context.Context, epochs int, ck core.CheckpointConfig, cb func(core.EpochStats)) ([]core.EpochStats, error) {
	if w.t.Config().Rank != 0 {
		ck.Every = 0
	}
	return w.t.DriveEpochs(ctx, epochs, ck, w.RunEpoch, cb)
}

// Train is the package-level convenience: connect, train, close. The
// trainer's config selects single-process (World <= 1, plain TrainCtx) or
// distributed execution, so callers can drive both paths through one
// entry point.
func Train(ctx context.Context, t *core.Trainer, epochs int, ck core.CheckpointConfig, opt Options, cb func(core.EpochStats)) ([]core.EpochStats, error) {
	if t.Config().World < 2 {
		return t.TrainCtx(ctx, epochs, ck, cb)
	}
	w, err := NewWorker(ctx, t, opt)
	if err != nil {
		return nil, err
	}
	defer w.Close()
	return w.Train(ctx, epochs, ck, cb)
}
