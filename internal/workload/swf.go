package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// SWF (Standard Workload Format) field indices, per the Parallel Workloads
// Archive definition. Every data line has 18 whitespace-separated fields;
// -1 marks a missing value.
const (
	swfJobNumber = iota
	swfSubmitTime
	swfWaitTime
	swfRunTime
	swfAllocProcs
	swfAvgCPUTime
	swfUsedMemory
	swfReqProcs
	swfReqTime
	swfReqMemory
	swfStatus
	swfUserID
	swfGroupID
	swfExecutable
	swfQueueNumber
	swfPartition
	swfPrecedingJob
	swfThinkTime
	swfNumFields
)

// ParseSWF reads a trace in Standard Workload Format. Header comments of the
// form "; MaxProcs: N" (or "; MaxNodes: N" as a fallback) set the cluster
// size; it can be overridden afterwards by assigning Trace.MaxProcs.
//
// Jobs with no usable runtime or processor count (cancelled entries) are
// skipped, matching how RLScheduler's SchedGym loads these logs. If a job
// has no requested (estimated) runtime, the actual runtime is used, so that
// estimate-driven schedulers such as SJF stay well defined.
func ParseSWF(r io.Reader, name string) (*Trace, error) {
	t := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	var t0 float64
	first := true
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == ';' {
			parseSWFHeader(t, line)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < swfNumFields {
			return nil, fmt.Errorf("swf %s:%d: %d fields, want %d", name, lineNo, len(fields), swfNumFields)
		}
		v := make([]float64, swfNumFields)
		for i := 0; i < swfNumFields; i++ {
			f, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("swf %s:%d field %d: %v", name, lineNo, i, err)
			}
			v[i] = f
		}
		procs := int(v[swfReqProcs])
		if procs <= 0 {
			procs = int(v[swfAllocProcs])
		}
		run := v[swfRunTime]
		est := v[swfReqTime]
		if est <= 0 {
			est = run
		}
		if run < 0 {
			run = est
		}
		if procs <= 0 || run < 0 || est <= 0 {
			continue // cancelled or unusable entry
		}
		if first || v[swfSubmitTime] < t0 {
			// rebase to the earliest submit seen; lines are not guaranteed
			// to be sorted in archive files
			t0 = v[swfSubmitTime]
			first = false
		}
		t.Jobs = append(t.Jobs, Job{
			ID:        int(v[swfJobNumber]),
			Submit:    v[swfSubmitTime],
			Run:       run,
			Est:       est,
			Procs:     procs,
			User:      int(v[swfUserID]),
			Group:     int(v[swfGroupID]),
			Queue:     int(v[swfQueueNumber]),
			Partition: int(v[swfPartition]),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("swf %s: %v", name, err)
	}
	for i := range t.Jobs {
		t.Jobs[i].Submit -= t0
	}
	t.SortBySubmit()
	if t.MaxProcs == 0 {
		for _, j := range t.Jobs {
			if j.Procs > t.MaxProcs {
				t.MaxProcs = j.Procs
			}
		}
	}
	return t, nil
}

func parseSWFHeader(t *Trace, line string) {
	body := strings.TrimLeft(line, "; \t")
	for _, key := range []string{"MaxProcs:", "MaxNodes:"} {
		if strings.HasPrefix(body, key) {
			if n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(body, key))); err == nil && n > 0 {
				if key == "MaxProcs:" || t.MaxProcs == 0 {
					t.MaxProcs = n
				}
			}
		}
	}
}

// WriteSWF writes the trace in Standard Workload Format with a MaxProcs
// header, suitable for consumption by other SWF tools or re-parsing.
func WriteSWF(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; Trace: %s\n; MaxProcs: %d\n", t.Name, t.MaxProcs)
	for _, j := range t.Jobs {
		// job submit wait run alloc cpu mem reqprocs reqtime reqmem status user group exe queue partition preceding think
		fmt.Fprintf(bw, "%d %.0f -1 %.0f %d -1 -1 %d %.0f -1 1 %d %d -1 %d %d -1 -1\n",
			j.ID, j.Submit, j.Run, j.Procs, j.Procs, j.Est, j.User, j.Group, j.Queue, j.Partition)
	}
	return bw.Flush()
}
