package workload

import (
	"math"
	"math/rand"
)

// Sampling helpers for the synthetic workload models. All samplers take an
// explicit *rand.Rand so trace generation is deterministic per seed.

// sampleExp draws from an exponential distribution with the given mean.
func sampleExp(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// sampleGamma draws from Gamma(shape, scale) using the Marsaglia-Tsang
// method, with Johnk-style boosting for shape < 1.
func sampleGamma(rng *rand.Rand, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	if shape < 1 {
		// boost: Gamma(a) = Gamma(a+1) * U^(1/a)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return sampleGamma(rng, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// sampleLogNormal draws from a log-normal with the given log-mean mu and
// log-stddev sigma.
func sampleLogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// logNormalMu returns the mu that makes a log-normal with log-stddev sigma
// have the requested arithmetic mean: mean = exp(mu + sigma^2/2).
func logNormalMu(mean, sigma float64) float64 {
	return math.Log(mean) - sigma*sigma/2
}

// pow2Dist is a discrete distribution over processor counts
// {1, 2, 4, ..., 2^k <= maxProcs} with geometric weights w_i = q^i,
// calibrated so the distribution mean hits a target. Parallel workloads are
// strongly biased toward power-of-two allocations, so this is the standard
// shape for synthetic size models.
type pow2Dist struct {
	sizes []int
	cum   []float64 // cumulative probabilities
	mean  float64
}

// newPow2Dist builds the distribution and calibrates q by bisection so that
// the mean processor count is targetMean (clamped to the feasible range).
func newPow2Dist(maxProcs int, targetMean float64) *pow2Dist {
	var sizes []int
	for s := 1; s <= maxProcs; s *= 2 {
		sizes = append(sizes, s)
	}
	meanFor := func(q float64) float64 {
		var wsum, m float64
		w := 1.0
		for _, s := range sizes {
			wsum += w
			m += w * float64(s)
			w *= q
		}
		return m / wsum
	}
	lo, hi := 1e-6, 1.0
	// meanFor is increasing in q; clamp the target into range.
	if targetMean <= meanFor(lo) {
		targetMean = meanFor(lo)
	}
	if targetMean >= meanFor(hi) {
		targetMean = meanFor(hi)
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if meanFor(mid) < targetMean {
			lo = mid
		} else {
			hi = mid
		}
	}
	q := (lo + hi) / 2
	d := &pow2Dist{sizes: sizes}
	var wsum float64
	w := 1.0
	weights := make([]float64, len(sizes))
	for i := range sizes {
		weights[i] = w
		wsum += w
		w *= q
	}
	d.cum = make([]float64, len(sizes))
	acc := 0.0
	for i, wt := range weights {
		acc += wt / wsum
		d.cum[i] = acc
		d.mean += wt / wsum * float64(sizes[i])
	}
	return d
}

// quantile returns the processor count at cumulative probability u in
// [0,1), used by the rank-coupling that correlates job size with runtime.
func (d *pow2Dist) quantile(u float64) int {
	for i, c := range d.cum {
		if u <= c {
			return d.sizes[i]
		}
	}
	return d.sizes[len(d.sizes)-1]
}

// invNormalCDF approximates the standard normal quantile function using
// Acklam's rational approximation (relative error below 1.15e-9), enough
// for workload generation.
func invNormalCDF(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// sample draws a processor count. With probability perturb, the power of two
// is nudged to a nearby non-power-of-two value, which keeps the simulator's
// packing realistic (real logs are not purely powers of two).
func (d *pow2Dist) sample(rng *rand.Rand, maxProcs int, perturb float64) int {
	u := rng.Float64()
	idx := len(d.sizes) - 1
	for i, c := range d.cum {
		if u <= c {
			idx = i
			break
		}
	}
	n := d.sizes[idx]
	if n > 2 && rng.Float64() < perturb {
		// nudge down by up to 25% so the mean calibration is barely moved
		n -= rng.Intn(n / 4)
	}
	if n < 1 {
		n = 1
	}
	if n > maxProcs {
		n = maxProcs
	}
	return n
}
