package workload

import "fmt"

// Trace transformation utilities: real evaluation workflows routinely slice
// logs, rescale their load, or splice workloads together; these helpers do
// so without disturbing the fields the simulator depends on.

// Head returns a new trace containing the first n jobs (all of them if the
// trace is shorter), re-based to submit at time 0.
func (t *Trace) Head(n int) *Trace {
	if n > len(t.Jobs) {
		n = len(t.Jobs)
	}
	out := &Trace{Name: t.Name, MaxProcs: t.MaxProcs}
	if n > 0 {
		out.Jobs = t.Window(0, n)
	}
	return out
}

// Tail returns a new trace containing the last n jobs, re-based to submit
// at time 0.
func (t *Trace) Tail(n int) *Trace {
	if n > len(t.Jobs) {
		n = len(t.Jobs)
	}
	out := &Trace{Name: t.Name, MaxProcs: t.MaxProcs}
	if n > 0 {
		out.Jobs = t.Window(len(t.Jobs)-n, n)
	}
	return out
}

// ScaleInterval multiplies every interarrival gap by f (f < 1 compresses
// the trace, raising its offered load by 1/f), returning a new trace.
// It panics on nonpositive f.
func (t *Trace) ScaleInterval(f float64) *Trace {
	if f <= 0 {
		panic(fmt.Sprintf("workload: ScaleInterval factor %v must be positive", f))
	}
	out := t.Clone()
	if len(out.Jobs) == 0 {
		return out
	}
	base := out.Jobs[0].Submit
	for i := range out.Jobs {
		out.Jobs[i].Submit = base + (out.Jobs[i].Submit-base)*f
	}
	return out
}

// Concat appends other's jobs after t's last arrival plus gap seconds,
// renumbering IDs sequentially. Both traces must target clusters of the
// same size.
func Concat(t, other *Trace, gap float64) (*Trace, error) {
	if t.MaxProcs != other.MaxProcs {
		return nil, fmt.Errorf("workload: cannot concat traces with cluster sizes %d and %d",
			t.MaxProcs, other.MaxProcs)
	}
	out := t.Clone()
	offset := gap
	if n := len(out.Jobs); n > 0 {
		offset += out.Jobs[n-1].Submit
	}
	if len(other.Jobs) > 0 {
		base := other.Jobs[0].Submit
		for _, j := range other.Jobs {
			j.Submit = j.Submit - base + offset
			out.Jobs = append(out.Jobs, j)
		}
	}
	for i := range out.Jobs {
		out.Jobs[i].ID = i + 1
	}
	out.Name = t.Name + "+" + other.Name
	return out, nil
}

// FilterProcs returns a new trace keeping only jobs with Procs in
// [minProcs, maxProcs], re-based to submit at time 0 and renumbered.
func (t *Trace) FilterProcs(minProcs, maxProcs int) *Trace {
	out := &Trace{Name: t.Name, MaxProcs: t.MaxProcs}
	for _, j := range t.Jobs {
		if j.Procs >= minProcs && j.Procs <= maxProcs {
			out.Jobs = append(out.Jobs, j)
		}
	}
	if len(out.Jobs) > 0 {
		base := out.Jobs[0].Submit
		for i := range out.Jobs {
			out.Jobs[i].Submit -= base
			out.Jobs[i].ID = i + 1
		}
	}
	return out
}
