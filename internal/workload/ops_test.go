package workload

import (
	"math"
	"os"
	"testing"
)

func opsTrace() *Trace {
	return &Trace{Name: "t", MaxProcs: 16, Jobs: []Job{
		{ID: 1, Submit: 100, Run: 10, Est: 20, Procs: 1},
		{ID: 2, Submit: 200, Run: 10, Est: 20, Procs: 4},
		{ID: 3, Submit: 400, Run: 10, Est: 20, Procs: 8},
		{ID: 4, Submit: 700, Run: 10, Est: 20, Procs: 2},
	}}
}

func TestHeadTail(t *testing.T) {
	tr := opsTrace()
	h := tr.Head(2)
	if h.Len() != 2 || h.Jobs[0].Submit != 0 || h.Jobs[1].Submit != 100 {
		t.Errorf("Head wrong: %+v", h.Jobs)
	}
	if h.Jobs[0].ID != 1 {
		t.Errorf("Head should keep IDs: %d", h.Jobs[0].ID)
	}
	tl := tr.Tail(2)
	if tl.Len() != 2 || tl.Jobs[0].Submit != 0 || tl.Jobs[1].Submit != 300 {
		t.Errorf("Tail wrong: %+v", tl.Jobs)
	}
	// oversize requests clamp
	if tr.Head(99).Len() != 4 || tr.Tail(99).Len() != 4 {
		t.Error("oversize Head/Tail did not clamp")
	}
	if (&Trace{}).Head(3).Len() != 0 {
		t.Error("empty Head broken")
	}
	// original untouched
	if tr.Jobs[0].Submit != 100 {
		t.Error("Head mutated source")
	}
}

func TestScaleInterval(t *testing.T) {
	tr := opsTrace()
	half := tr.ScaleInterval(0.5)
	// gaps 100,200,300 become 50,100,150 from base 100
	wants := []float64{100, 150, 250, 400}
	for i, w := range wants {
		if math.Abs(half.Jobs[i].Submit-w) > 1e-9 {
			t.Errorf("job %d submit %v, want %v", i, half.Jobs[i].Submit, w)
		}
	}
	if tr.Jobs[1].Submit != 200 {
		t.Error("ScaleInterval mutated source")
	}
	defer func() {
		if recover() == nil {
			t.Error("nonpositive factor did not panic")
		}
	}()
	tr.ScaleInterval(0)
}

func TestConcat(t *testing.T) {
	a := opsTrace()
	b := opsTrace()
	out, err := Concat(a, b, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 8 {
		t.Fatalf("concat len %d", out.Len())
	}
	// second trace starts at last submit (700) + 1000
	if out.Jobs[4].Submit != 1700 {
		t.Errorf("spliced submit %v, want 1700", out.Jobs[4].Submit)
	}
	for i, j := range out.Jobs {
		if j.ID != i+1 {
			t.Fatalf("IDs not renumbered at %d: %d", i, j.ID)
		}
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// mismatched clusters rejected
	c := opsTrace()
	c.MaxProcs = 8
	if _, err := Concat(a, c, 0); err == nil {
		t.Error("cluster mismatch accepted")
	}
}

func TestFilterProcs(t *testing.T) {
	tr := opsTrace()
	f := tr.FilterProcs(2, 4)
	if f.Len() != 2 {
		t.Fatalf("filtered %d jobs, want 2", f.Len())
	}
	if f.Jobs[0].Procs != 4 || f.Jobs[1].Procs != 2 {
		t.Errorf("wrong jobs kept: %+v", f.Jobs)
	}
	if f.Jobs[0].Submit != 0 || f.Jobs[0].ID != 1 {
		t.Error("filtered trace not rebased/renumbered")
	}
	if tr.FilterProcs(99, 100).Len() != 0 {
		t.Error("empty filter broken")
	}
}

func TestScaleIntervalChangesLoad(t *testing.T) {
	tr := SDSCSP2Like(2000, 3)
	compressed := tr.ScaleInterval(0.5)
	if got, want := OfferedLoad(compressed), 2*OfferedLoad(tr); math.Abs(got-want)/want > 0.01 {
		t.Errorf("compressed load %v, want ~%v", got, want)
	}
}

func TestSWFFileGzipRoundTrip(t *testing.T) {
	tr := SDSCSP2Like(200, 4)
	dir := t.TempDir()
	for _, name := range []string{"plain.swf", "zipped.swf.gz"} {
		path := dir + "/" + name
		if err := WriteSWFFile(path, tr); err != nil {
			t.Fatal(err)
		}
		got, err := ParseSWFFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != tr.Len() || got.MaxProcs != tr.MaxProcs {
			t.Fatalf("%s: %d jobs procs %d", name, got.Len(), got.MaxProcs)
		}
	}
	if _, err := ParseSWFFile(dir + "/missing.swf"); err == nil {
		t.Error("missing file accepted")
	}
	// corrupt gz
	if err := WriteSWFFile(dir+"/bad.gz", tr); err != nil {
		t.Fatal(err)
	}
	raw, _ := ParseSWFFile(dir + "/plain.swf")
	_ = raw
	if err := os.WriteFile(dir+"/bad.gz", []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSWFFile(dir + "/bad.gz"); err == nil {
		t.Error("corrupt gzip accepted")
	}
}
