package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// SynthConfig parameterizes the calibrated synthetic trace generator. The
// generator substitutes for the Parallel Workloads Archive logs used by the
// paper: it reproduces each log's published aggregate statistics (Table 2)
// with heavy-tailed, bursty distributions of the kind those logs exhibit.
type SynthConfig struct {
	Name     string
	MaxProcs int     // cluster size
	Jobs     int     // number of jobs to generate
	Seed     int64   // RNG seed; same seed, same trace
	Interval float64 // target mean arrival interval, seconds
	Burst    float64 // gamma shape for interarrival times; <1 is bursty, 1 is Poisson
	MeanEst  float64 // target mean estimated runtime, seconds
	EstSigma float64 // log-stddev of the log-normal runtime-estimate distribution
	MaxEst   float64 // wallclock cap for estimates, seconds
	MinEst   float64 // floor for estimates, seconds
	RunFrac  float64 // exponent a in run = est * U^a (larger a, earlier finishes)
	ExactRun float64 // probability that a job runs exactly to its estimate
	Procs    float64 // target mean requested processors
	Users    int     // number of distinct users (for Slurm multifactor)
	Queues   int     // number of distinct queues (for Slurm multifactor)
	Diurnal  float64 // 0..1 strength of the day/night arrival cycle

	// RegimeStrength turns on a Markov-modulated arrival process: the
	// arrival rate is multiplied by a log-normal regime factor with this
	// log-stddev, redrawn every RegimeDwell seconds on average. Real logs
	// alternate between busy flurries and quiet stretches at the scale of
	// days; this is what produces occasional saturated windows (and high
	// slowdowns) on a cluster whose average utilization is low.
	RegimeStrength float64
	// RegimeDwell is the mean duration of one arrival regime in seconds
	// (default 2 days when RegimeStrength > 0).
	RegimeDwell float64

	// DefaultEstProb is the probability that a job's estimate is a canonical
	// wallclock request (30 min, 1 h, 4 h, 12 h, 24 h, 36 h) instead of being
	// tied to its actual runtime. Real users overwhelmingly request default
	// wallclocks far above what their jobs use; the est/run mismatch this
	// creates is what lets short-running jobs with long requests rot in an
	// SJF queue and drives bounded slowdown up even on lightly loaded
	// machines.
	DefaultEstProb float64

	// Corr is the probability that a job's size and runtime estimate are
	// drawn comonotonically (same uniform rank). Real parallel workloads
	// show a positive size-runtime correlation, which is what pushes their
	// offered load well above the product of the means.
	Corr float64
	// TargetLoad, when positive, rescales actual runtimes (capped at the
	// estimates) so the trace's offered load — actual core-seconds over
	// cluster capacity across the span — matches the target. The Table 2
	// statistics (interval, mean estimate, mean size) are unaffected.
	TargetLoad float64
}

func (c SynthConfig) withDefaults() SynthConfig {
	if c.Jobs == 0 {
		c.Jobs = 20000
	}
	if c.Burst == 0 {
		c.Burst = 0.45
	}
	if c.EstSigma == 0 {
		c.EstSigma = 1.6
	}
	if c.MaxEst == 0 {
		c.MaxEst = 36 * 3600
	}
	if c.MinEst == 0 {
		c.MinEst = 60
	}
	if c.RunFrac == 0 {
		c.RunFrac = 1.1
	}
	if c.ExactRun == 0 {
		c.ExactRun = 0.12
	}
	if c.Users == 0 {
		c.Users = 64
	}
	if c.Queues == 0 {
		c.Queues = 4
	}
	return c
}

// Generate builds the synthetic trace. Submit times and estimates are
// empirically recalibrated after sampling so that the trace's measured mean
// interval and mean estimate match the targets closely (the distribution
// shape is preserved; only a scalar factor is applied).
func Generate(cfg SynthConfig) *Trace {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	procDist := newPow2Dist(cfg.MaxProcs, cfg.Procs)

	jobs := make([]Job, cfg.Jobs)
	mu := logNormalMu(cfg.MeanEst, cfg.EstSigma)
	now := 0.0
	regimeRate := 1.0
	regimeUntil := 0.0
	if cfg.RegimeDwell == 0 {
		cfg.RegimeDwell = 2 * 86400
	}
	for i := range jobs {
		gap := sampleGamma(rng, cfg.Burst, cfg.Interval/cfg.Burst)
		if cfg.Diurnal > 0 {
			gap /= diurnalRate(now, cfg.Diurnal)
		}
		if cfg.RegimeStrength > 0 {
			if now >= regimeUntil {
				// clamp the multiplier so one extreme regime cannot dominate
				// the whole trace
				regimeRate = clamp(sampleLogNormal(rng, 0, cfg.RegimeStrength), 0.2, 8)
				regimeUntil = now + sampleExp(rng, cfg.RegimeDwell)
			}
			gap /= regimeRate
		}
		now += gap

		var est float64
		var procs int
		if rng.Float64() < cfg.Corr {
			// comonotone draw: big jobs run long
			u := rng.Float64()
			est = math.Exp(mu + cfg.EstSigma*invNormalCDF(u))
			procs = procDist.quantile(u)
			if procs > 2 && rng.Float64() < 0.25 {
				procs -= rng.Intn(procs / 4)
			}
			if procs > cfg.MaxProcs {
				procs = cfg.MaxProcs
			}
		} else {
			est = sampleLogNormal(rng, mu, cfg.EstSigma)
			procs = procDist.sample(rng, cfg.MaxProcs, 0.25)
		}
		est = clamp(est, cfg.MinEst, cfg.MaxEst)
		run := est
		if rng.Float64() >= cfg.ExactRun {
			run = est * math.Pow(rng.Float64(), cfg.RunFrac)
		}
		if run < 1 {
			run = 1
		}
		if rng.Float64() < cfg.DefaultEstProb {
			est = canonicalEst(rng, run, cfg.MaxEst)
		}
		jobs[i] = Job{
			ID:        i + 1,
			Submit:    now,
			Est:       est,
			Run:       run,
			Procs:     procs,
			User:      zipfInt(rng, cfg.Users),
			Group:     zipfInt(rng, cfg.Users/4+1),
			Queue:     zipfInt(rng, cfg.Queues),
			Partition: 1,
		}
	}

	recalibrateSubmit(jobs, cfg.Interval)
	recalibrateEst(jobs, cfg.MeanEst, cfg.MinEst, cfg.MaxEst)
	calibrateLoad(jobs, cfg.MaxProcs, cfg.TargetLoad)

	t := &Trace{Name: cfg.Name, MaxProcs: cfg.MaxProcs, Jobs: jobs}
	t.SortBySubmit()
	return t
}

// diurnalRate is a smooth day/night arrival-rate modulation with mean ~1,
// peaking in working hours. strength 0 disables it; 1 is a strong cycle.
func diurnalRate(now, strength float64) float64 {
	const day = 86400.0
	phase := 2 * math.Pi * (math.Mod(now, day)/day - 0.58) // peak mid-afternoon
	return 1 + strength*0.8*math.Cos(phase)
}

// recalibrateSubmit rescales submit times so the measured mean interval
// matches the target exactly, preserving burstiness.
func recalibrateSubmit(jobs []Job, interval float64) {
	if len(jobs) < 2 {
		return
	}
	span := jobs[len(jobs)-1].Submit - jobs[0].Submit
	if span <= 0 {
		return
	}
	factor := interval * float64(len(jobs)-1) / span
	base := jobs[0].Submit
	for i := range jobs {
		jobs[i].Submit = (jobs[i].Submit - base) * factor
	}
}

// recalibrateEst rescales estimates (and runtimes with them) toward the
// target mean. A few iterations converge despite the clamping.
func recalibrateEst(jobs []Job, meanEst, minEst, maxEst float64) {
	for iter := 0; iter < 6; iter++ {
		var sum float64
		for i := range jobs {
			sum += jobs[i].Est
		}
		cur := sum / float64(len(jobs))
		f := meanEst / cur
		if math.Abs(f-1) < 0.002 {
			return
		}
		for i := range jobs {
			ratio := jobs[i].Run / jobs[i].Est
			jobs[i].Est = clamp(jobs[i].Est*f, minEst, maxEst)
			jobs[i].Run = math.Max(1, jobs[i].Est*ratio)
		}
	}
}

// canonicalEst picks a canonical wallclock request at or above run,
// skewed toward over-requesting by one or two notches.
func canonicalEst(rng *rand.Rand, run, maxEst float64) float64 {
	buckets := [...]float64{1800, 3600, 4 * 3600, 12 * 3600, 24 * 3600, 36 * 3600}
	lo := 0
	for lo < len(buckets) && buckets[lo] < run {
		lo++
	}
	if lo >= len(buckets) {
		return maxEst
	}
	// over-request by a geometric number of notches
	idx := lo
	for idx < len(buckets)-1 && rng.Float64() < 0.4 {
		idx++
	}
	e := buckets[idx]
	if e > maxEst {
		e = maxEst
	}
	if e < run {
		e = run
	}
	return e
}

// calibrateLoad rescales actual runtimes by a single factor (capped at each
// job's estimate) so the offered load matches target. A no-op when target
// is zero or unreachable within run <= est.
func calibrateLoad(jobs []Job, maxProcs int, target float64) {
	if target <= 0 || len(jobs) < 2 {
		return
	}
	span := jobs[len(jobs)-1].Submit - jobs[0].Submit
	if span <= 0 {
		return
	}
	capacity := span * float64(maxProcs)
	loadFor := func(f float64) float64 {
		var work float64
		for i := range jobs {
			work += math.Min(jobs[i].Run*f, jobs[i].Est) * float64(jobs[i].Procs)
		}
		return work / capacity
	}
	if loadFor(1e6) < target {
		// even run == est everywhere cannot reach the target; saturate
		for i := range jobs {
			jobs[i].Run = jobs[i].Est
		}
		return
	}
	lo, hi := 1e-3, 1e6
	for iter := 0; iter < 60; iter++ {
		mid := math.Sqrt(lo * hi)
		if loadFor(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := math.Sqrt(lo * hi)
	for i := range jobs {
		jobs[i].Run = math.Max(1, math.Min(jobs[i].Run*f, jobs[i].Est))
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// zipfInt draws an int in [1, n] with a Zipf-like (1/rank) skew, matching
// how real logs concentrate jobs on a few heavy users/queues.
func zipfInt(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 1
	}
	// inverse-CDF of 1/k over [1, n], harmonic approximation
	h := math.Log(float64(n)) + 0.5772
	u := rng.Float64() * h
	k := int(math.Exp(u))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Predefined generators calibrated to Table 2 of the paper. Each returns a
// fresh trace; vary seed to get a different realization of the same model.

// SDSCSP2Like mimics the SDSC-SP2 log: 128 processors, mean arrival interval
// 1055 s, mean estimated runtime 6687 s, mean requested processors 11.
func SDSCSP2Like(jobs int, seed int64) *Trace {
	return Generate(SynthConfig{
		Name: "SDSC-SP2", MaxProcs: 128, Jobs: jobs, Seed: seed,
		Interval: 1055, MeanEst: 6687, Procs: 11, Diurnal: 0.7,
		Corr: 0.45, TargetLoad: 0.60,
	})
}

// CTCSP2Like mimics the CTC-SP2 log: 338 processors, interval 379 s,
// mean estimate 11277 s, mean processors 11.
func CTCSP2Like(jobs int, seed int64) *Trace {
	return Generate(SynthConfig{
		Name: "CTC-SP2", MaxProcs: 338, Jobs: jobs, Seed: seed,
		Interval: 379, MeanEst: 11277, Procs: 11, Diurnal: 0.7,
		Corr: 0.30, TargetLoad: 0.51,
	})
}

// HPC2NLike mimics the HPC2N log: 240 processors, interval 538 s,
// mean estimate 17024 s, mean processors 6.
func HPC2NLike(jobs int, seed int64) *Trace {
	return Generate(SynthConfig{
		Name: "HPC2N", MaxProcs: 240, Jobs: jobs, Seed: seed,
		Interval: 538, MeanEst: 17024, Procs: 6, Diurnal: 0.6,
		Corr: 0.20, TargetLoad: 0.24, RegimeStrength: 1.3, RegimeDwell: 21600, DefaultEstProb: 0.5,
	})
}

// ByName returns one of the four paper traces ("SDSC-SP2", "CTC-SP2",
// "HPC2N", "Lublin") by name.
func ByName(name string, jobs int, seed int64) (*Trace, error) {
	switch name {
	case "SDSC-SP2":
		return SDSCSP2Like(jobs, seed), nil
	case "CTC-SP2":
		return CTCSP2Like(jobs, seed), nil
	case "HPC2N":
		return HPC2NLike(jobs, seed), nil
	case "Lublin":
		return LublinTrace(jobs, seed), nil
	}
	return nil, fmt.Errorf("workload: unknown trace %q", name)
}

// PaperTraces lists the trace names of Table 2 in paper order.
func PaperTraces() []string { return []string{"SDSC-SP2", "CTC-SP2", "HPC2N", "Lublin"} }
