package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInvNormalCDF(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.841344746, 1},
		{0.158655254, -1},
		{0.977249868, 2},
		{0.999968329, 4},
	}
	for _, c := range cases {
		if got := invNormalCDF(c.p); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("invNormalCDF(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(invNormalCDF(0), -1) || !math.IsInf(invNormalCDF(1), 1) {
		t.Error("boundary quantiles not infinite")
	}
	// round trip against the CDF via the error function
	for _, p := range []float64{0.01, 0.1, 0.3, 0.7, 0.9, 0.99} {
		z := invNormalCDF(p)
		back := 0.5 * (1 + math.Erf(z/math.Sqrt2))
		if math.Abs(back-p) > 1e-8 {
			t.Errorf("round trip p=%v: got %v", p, back)
		}
	}
}

func TestPow2Quantile(t *testing.T) {
	d := newPow2Dist(64, 8)
	if got := d.quantile(0); got != 1 {
		t.Errorf("quantile(0) = %d, want 1", got)
	}
	if got := d.quantile(0.9999999); got != 64 {
		t.Errorf("quantile(~1) = %d, want 64", got)
	}
	prev := 0
	for _, u := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		v := d.quantile(u)
		if v < prev {
			t.Errorf("quantile not monotone at %v: %d < %d", u, v, prev)
		}
		prev = v
	}
}

func TestCanonicalEst(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		run := math.Exp(rng.Float64()*12) / 10 // 0.1s .. ~16000s
		est := canonicalEst(rng, run, 36*3600)
		if est < run {
			t.Fatalf("canonical est %v below run %v", est, run)
		}
		if est > 36*3600 {
			t.Fatalf("canonical est %v above cap", est)
		}
	}
	// run beyond the largest bucket: falls back to the cap
	if got := canonicalEst(rng, 200000, 36*3600); got != 36*3600 {
		t.Errorf("huge run est = %v, want cap", got)
	}
}

func TestCorrelationRaisesAreaMean(t *testing.T) {
	base := SynthConfig{
		Name: "c", MaxProcs: 256, Jobs: 8000, Seed: 5,
		Interval: 600, MeanEst: 6000, Procs: 12,
	}
	ind := Generate(base)
	base.Corr = 0.8
	cor := Generate(base)
	si, sc := ComputeStats(ind), ComputeStats(cor)
	// mean est and procs are calibrated in both...
	if rel(sc.MeanEst, si.MeanEst) > 0.1 || rel(sc.MeanProcs, si.MeanProcs) > 0.25 {
		t.Fatalf("marginals moved too much: est %v vs %v, procs %v vs %v",
			sc.MeanEst, si.MeanEst, sc.MeanProcs, si.MeanProcs)
	}
	// ...but the mean area (est*procs) must rise with correlation.
	if sc.MeanArea <= si.MeanArea*1.2 {
		t.Errorf("correlated area %v not above independent %v", sc.MeanArea, si.MeanArea)
	}
}

func TestCalibrateLoad(t *testing.T) {
	mk := func() []Job {
		jobs := make([]Job, 100)
		for i := range jobs {
			jobs[i] = Job{ID: i + 1, Submit: float64(i * 100), Est: 1000, Run: 500, Procs: 2}
		}
		return jobs
	}
	jobs := mk()
	calibrateLoad(jobs, 10, 0.15)
	tr := &Trace{MaxProcs: 10, Jobs: jobs}
	if got := OfferedLoad(tr); math.Abs(got-0.15) > 0.01 {
		t.Errorf("calibrated load %v, want 0.15", got)
	}
	for _, j := range jobs {
		if j.Run > j.Est {
			t.Fatal("run exceeds est after calibration")
		}
	}
	// Unreachable target (max load with run=est is ~2.0) saturates run = est.
	jobs = mk()
	calibrateLoad(jobs, 10, 5.0)
	for _, j := range jobs {
		if j.Run != j.Est {
			t.Fatal("unreachable target should saturate runs at estimates")
		}
	}
	// target 0 is a no-op
	jobs = mk()
	calibrateLoad(jobs, 10, 0)
	if jobs[0].Run != 500 {
		t.Error("zero target modified runs")
	}
}

func TestRegimeModulationPreservesStats(t *testing.T) {
	cfg := SynthConfig{
		Name: "r", MaxProcs: 240, Jobs: 8000, Seed: 9,
		Interval: 538, MeanEst: 17024, Procs: 6,
		RegimeStrength: 1.3, RegimeDwell: 21600,
	}
	tr := Generate(cfg)
	s := ComputeStats(tr)
	if rel(s.MeanInterval, 538) > 0.02 {
		t.Errorf("interval %v drifted", s.MeanInterval)
	}
	if rel(s.MeanEst, 17024) > 0.05 {
		t.Errorf("est %v drifted", s.MeanEst)
	}
	// Regimes must create visible burstiness: the coefficient of variation
	// of 100-job window durations should exceed the regime-free case.
	cv := windowDurationCV(tr)
	cfg.RegimeStrength = 0
	cvFlat := windowDurationCV(Generate(cfg))
	if cv <= cvFlat {
		t.Errorf("regime CV %v not above flat CV %v", cv, cvFlat)
	}
}

func windowDurationCV(tr *Trace) float64 {
	var durs []float64
	for s := 0; s+100 < len(tr.Jobs); s += 100 {
		durs = append(durs, tr.Jobs[s+100].Submit-tr.Jobs[s].Submit)
	}
	var mean, m2 float64
	for i, d := range durs {
		delta := d - mean
		mean += delta / float64(i+1)
		m2 += delta * (d - mean)
	}
	return math.Sqrt(m2/float64(len(durs))) / mean
}

// Property: generated jobs always satisfy run <= est... (not guaranteed in
// SWF inputs, but the generators promise it) and positive fields.
func TestGeneratorInvariantProperty(t *testing.T) {
	f := func(seed int64, corr, defProb uint8) bool {
		tr := Generate(SynthConfig{
			Name: "p", MaxProcs: 64, Jobs: 300, Seed: seed,
			Interval: 300, MeanEst: 3000, Procs: 8,
			Corr:           float64(corr%100) / 100,
			DefaultEstProb: float64(defProb%100) / 100,
			TargetLoad:     0.4,
		})
		if tr.Validate() != nil {
			return false
		}
		for _, j := range tr.Jobs {
			if j.Run <= 0 || j.Est <= 0 || j.Run > j.Est+1e-9 || j.Procs < 1 || j.Procs > 64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
