package workload

import (
	"compress/gzip"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// ParseSWFFile reads a Standard Workload Format trace from disk. Files
// ending in ".gz" are transparently decompressed — the Parallel Workloads
// Archive distributes its logs gzipped, so this accepts them as downloaded.
func ParseSWFFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), ".gz")
	name = strings.TrimSuffix(name, ".swf")
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", path, err)
		}
		defer gz.Close()
		return ParseSWF(gz, name)
	}
	return ParseSWF(f, name)
}

// WriteSWFFile writes the trace to disk, gzipping when the path ends in
// ".gz".
func WriteSWFFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		if err := WriteSWF(gz, t); err != nil {
			return err
		}
		if err := gz.Close(); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
	} else if err := WriteSWF(f, t); err != nil {
		return err
	}
	return f.Close()
}
