package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// Trace is an ordered sequence of jobs together with the size of the cluster
// that produced (or should replay) it.
type Trace struct {
	Name     string
	MaxProcs int   // total processors in the cluster
	Jobs     []Job // sorted by Submit, ties by ID
}

// Len returns the number of jobs in the trace.
func (t *Trace) Len() int { return len(t.Jobs) }

// SortBySubmit orders jobs by submission time, breaking ties by job ID.
// Simulation and window sampling require this ordering.
func (t *Trace) SortBySubmit() {
	sort.SliceStable(t.Jobs, func(i, k int) bool {
		a, b := t.Jobs[i], t.Jobs[k]
		if a.Submit != b.Submit {
			return a.Submit < b.Submit
		}
		return a.ID < b.ID
	})
}

// Validate checks every job against the cluster size and the submit ordering.
func (t *Trace) Validate() error {
	if t.MaxProcs <= 0 {
		return fmt.Errorf("trace %q: nonpositive cluster size %d", t.Name, t.MaxProcs)
	}
	prev := -1.0
	for i, j := range t.Jobs {
		if err := j.Validate(t.MaxProcs); err != nil {
			return fmt.Errorf("trace %q: %w", t.Name, err)
		}
		if j.Submit < prev {
			return fmt.Errorf("trace %q: job index %d out of submit order (%.1f < %.1f)", t.Name, i, j.Submit, prev)
		}
		prev = j.Submit
	}
	return nil
}

// Window returns n consecutive jobs starting at index start, re-based so the
// first job submits at time 0. Job IDs are preserved. It panics if the range
// is out of bounds; use CanWindow to check.
func (t *Trace) Window(start, n int) []Job {
	if start < 0 || n <= 0 || start+n > len(t.Jobs) {
		panic(fmt.Sprintf("workload: window [%d,%d) out of range for %d jobs", start, start+n, len(t.Jobs)))
	}
	base := t.Jobs[start].Submit
	out := make([]Job, n)
	copy(out, t.Jobs[start:start+n])
	for i := range out {
		out[i].Submit -= base
	}
	return out
}

// CanWindow reports whether Window(start, n) is in range.
func (t *Trace) CanWindow(start, n int) bool {
	return start >= 0 && n > 0 && start+n <= len(t.Jobs)
}

// RandomWindow samples a window of n consecutive jobs uniformly from
// [lo, hi) start indices using rng. hi <= 0 means "to the end of the trace".
// It is the sampling primitive behind both training trajectories and the
// 50-sequence test evaluations in the paper (§4.4).
func (t *Trace) RandomWindow(rng *rand.Rand, n, lo, hi int) []Job {
	if hi <= 0 || hi > len(t.Jobs)-n+1 {
		hi = len(t.Jobs) - n + 1
	}
	if lo < 0 {
		lo = 0
	}
	if hi <= lo {
		panic(fmt.Sprintf("workload: no window of %d jobs in [%d,%d) of %d jobs", n, lo, hi, len(t.Jobs)))
	}
	start := lo + rng.Intn(hi-lo)
	return t.Window(start, n)
}

// Split returns the index that separates the first frac of jobs (training
// data) from the rest (testing data), following the paper's 20%/80% split.
func (t *Trace) Split(frac float64) int {
	n := int(float64(len(t.Jobs)) * frac)
	if n < 0 {
		n = 0
	}
	if n > len(t.Jobs) {
		n = len(t.Jobs)
	}
	return n
}

// Clone deep-copies the trace.
func (t *Trace) Clone() *Trace {
	jobs := make([]Job, len(t.Jobs))
	copy(jobs, t.Jobs)
	return &Trace{Name: t.Name, MaxProcs: t.MaxProcs, Jobs: jobs}
}
