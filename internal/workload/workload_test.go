package workload

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestJobValidate(t *testing.T) {
	good := Job{ID: 1, Submit: 0, Run: 10, Est: 20, Procs: 4}
	if err := good.Validate(8); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Job)
	}{
		{"zero procs", func(j *Job) { j.Procs = 0 }},
		{"negative procs", func(j *Job) { j.Procs = -2 }},
		{"procs over cluster", func(j *Job) { j.Procs = 9 }},
		{"negative runtime", func(j *Job) { j.Run = -1 }},
		{"nan runtime", func(j *Job) { j.Run = math.NaN() }},
		{"zero estimate", func(j *Job) { j.Est = 0 }},
		{"inf estimate", func(j *Job) { j.Est = math.Inf(1) }},
		{"negative submit", func(j *Job) { j.Submit = -5 }},
	}
	for _, c := range cases {
		j := good
		c.mut(&j)
		if err := j.Validate(8); err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
}

func TestJobAreaRatio(t *testing.T) {
	j := Job{Est: 100, Procs: 4}
	if got := j.Area(); got != 400 {
		t.Errorf("Area = %v, want 400", got)
	}
	if got := j.Ratio(); got != 25 {
		t.Errorf("Ratio = %v, want 25", got)
	}
	// Ratio must not divide by zero even for malformed jobs.
	j.Procs = 0
	if got := j.Ratio(); got != 100 {
		t.Errorf("Ratio with 0 procs = %v, want 100", got)
	}
}

func TestTraceSortAndValidate(t *testing.T) {
	tr := &Trace{Name: "x", MaxProcs: 16, Jobs: []Job{
		{ID: 2, Submit: 10, Run: 1, Est: 1, Procs: 1},
		{ID: 1, Submit: 5, Run: 1, Est: 1, Procs: 1},
		{ID: 3, Submit: 5, Run: 1, Est: 1, Procs: 1},
	}}
	if err := tr.Validate(); err == nil {
		t.Fatal("unsorted trace passed Validate")
	}
	tr.SortBySubmit()
	if err := tr.Validate(); err != nil {
		t.Fatalf("sorted trace failed Validate: %v", err)
	}
	if tr.Jobs[0].ID != 1 || tr.Jobs[1].ID != 3 || tr.Jobs[2].ID != 2 {
		t.Errorf("sort order wrong: %v", []int{tr.Jobs[0].ID, tr.Jobs[1].ID, tr.Jobs[2].ID})
	}
}

func TestTraceWindow(t *testing.T) {
	tr := &Trace{MaxProcs: 4}
	for i := 0; i < 10; i++ {
		tr.Jobs = append(tr.Jobs, Job{ID: i + 1, Submit: float64(100 + i*10), Run: 1, Est: 1, Procs: 1})
	}
	w := tr.Window(3, 4)
	if len(w) != 4 {
		t.Fatalf("window len = %d, want 4", len(w))
	}
	if w[0].Submit != 0 {
		t.Errorf("window not rebased: first submit %v", w[0].Submit)
	}
	if w[3].Submit != 30 {
		t.Errorf("relative submit = %v, want 30", w[3].Submit)
	}
	if w[0].ID != 4 {
		t.Errorf("window start job ID = %d, want 4", w[0].ID)
	}
	// Window must not alias trace storage.
	w[0].Submit = 999
	if tr.Jobs[3].Submit == 999 {
		t.Error("window aliases trace jobs")
	}
	if tr.CanWindow(7, 4) {
		t.Error("CanWindow(7,4) = true for 10 jobs")
	}
	if !tr.CanWindow(6, 4) {
		t.Error("CanWindow(6,4) = false for 10 jobs")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Window did not panic")
		}
	}()
	tr.Window(8, 4)
}

func TestRandomWindowRespectsBounds(t *testing.T) {
	tr := &Trace{MaxProcs: 4}
	for i := 0; i < 100; i++ {
		tr.Jobs = append(tr.Jobs, Job{ID: i + 1, Submit: float64(i), Run: 1, Est: 1, Procs: 1})
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		w := tr.RandomWindow(rng, 10, 20, 50)
		first := w[0].ID
		if first < 21 || first > 50 {
			t.Fatalf("window start job ID %d outside [21,50]", first)
		}
	}
	// hi<=0 means to the end
	for i := 0; i < 200; i++ {
		w := tr.RandomWindow(rng, 10, 0, 0)
		if w[0].ID < 1 || w[0].ID > 91 {
			t.Fatalf("window start job ID %d outside [1,91]", w[0].ID)
		}
	}
}

func TestTraceSplit(t *testing.T) {
	tr := &Trace{Jobs: make([]Job, 100)}
	if got := tr.Split(0.2); got != 20 {
		t.Errorf("Split(0.2) = %d, want 20", got)
	}
	if got := tr.Split(-1); got != 0 {
		t.Errorf("Split(-1) = %d, want 0", got)
	}
	if got := tr.Split(2); got != 100 {
		t.Errorf("Split(2) = %d, want 100", got)
	}
}

func TestSWFRoundTrip(t *testing.T) {
	orig := SDSCSP2Like(500, 7)
	var buf bytes.Buffer
	if err := WriteSWF(&buf, orig); err != nil {
		t.Fatalf("WriteSWF: %v", err)
	}
	got, err := ParseSWF(&buf, "roundtrip")
	if err != nil {
		t.Fatalf("ParseSWF: %v", err)
	}
	if got.MaxProcs != orig.MaxProcs {
		t.Errorf("MaxProcs = %d, want %d", got.MaxProcs, orig.MaxProcs)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("jobs = %d, want %d", got.Len(), orig.Len())
	}
	for i := range got.Jobs {
		g, o := got.Jobs[i], orig.Jobs[i]
		if g.ID != o.ID || g.Procs != o.Procs || g.User != o.User || g.Queue != o.Queue {
			t.Fatalf("job %d identity fields differ: got %+v want %+v", i, g, o)
		}
		if math.Abs(g.Run-o.Run) > 0.5 || math.Abs(g.Est-o.Est) > 0.5 || math.Abs(g.Submit-o.Submit) > 0.5 {
			t.Fatalf("job %d times differ beyond rounding: got %+v want %+v", i, g, o)
		}
	}
}

func TestParseSWFHeaderAndSkips(t *testing.T) {
	const swf = `; Comment line
; MaxProcs: 64
1 0 -1 100 4 -1 -1 4 200 -1 1 3 1 -1 2 1 -1 -1
2 10 -1 -1 -1 -1 -1 -1 -1 -1 0 1 1 -1 1 1 -1 -1
3 20 -1 50 2 -1 -1 -1 100 -1 1 5 1 -1 1 1 -1 -1
4 30 -1 80 8 -1 -1 8 -1 -1 1 2 1 -1 3 1 -1 -1
`
	tr, err := ParseSWF(strings.NewReader(swf), "test")
	if err != nil {
		t.Fatalf("ParseSWF: %v", err)
	}
	if tr.MaxProcs != 64 {
		t.Errorf("MaxProcs = %d, want 64 from header", tr.MaxProcs)
	}
	if tr.Len() != 3 {
		t.Fatalf("jobs = %d, want 3 (cancelled job 2 skipped)", tr.Len())
	}
	// job 3: ReqProcs missing, falls back to AllocProcs
	if tr.Jobs[1].Procs != 2 {
		t.Errorf("job 3 procs = %d, want 2 via alloc fallback", tr.Jobs[1].Procs)
	}
	// job 4: ReqTime missing, estimate falls back to runtime
	if tr.Jobs[2].Est != 80 {
		t.Errorf("job 4 est = %v, want 80 via runtime fallback", tr.Jobs[2].Est)
	}
	if tr.Jobs[0].User != 3 || tr.Jobs[0].Queue != 2 {
		t.Errorf("job 1 user/queue = %d/%d, want 3/2", tr.Jobs[0].User, tr.Jobs[0].Queue)
	}
}

func TestParseSWFErrors(t *testing.T) {
	if _, err := ParseSWF(strings.NewReader("1 2 3\n"), "short"); err == nil {
		t.Error("short line accepted")
	}
	if _, err := ParseSWF(strings.NewReader("a b c d e f g h i j k l m n o p q r\n"), "garbage"); err == nil {
		t.Error("non-numeric line accepted")
	}
}

func TestParseSWFInfersMaxProcs(t *testing.T) {
	const swf = "1 0 -1 100 4 -1 -1 16 200 -1 1 1 1 -1 1 1 -1 -1\n"
	tr, err := ParseSWF(strings.NewReader(swf), "noheader")
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxProcs != 16 {
		t.Errorf("inferred MaxProcs = %d, want 16", tr.MaxProcs)
	}
}

func TestPow2DistCalibration(t *testing.T) {
	for _, target := range []float64{6, 11, 22} {
		d := newPow2Dist(256, target)
		if math.Abs(d.mean-target) > 0.5 {
			t.Errorf("pow2 dist mean %v, want %v", d.mean, target)
		}
		rng := rand.New(rand.NewSource(3))
		var sum float64
		const n = 200000
		for i := 0; i < n; i++ {
			v := d.sample(rng, 256, 0)
			if v < 1 || v > 256 {
				t.Fatalf("sample %d out of range", v)
			}
			sum += float64(v)
		}
		if got := sum / n; math.Abs(got-target)/target > 0.05 {
			t.Errorf("empirical pow2 mean %v, want ~%v", got, target)
		}
	}
}

// TestTable2Calibration checks each generated trace against the statistics
// the paper reports in Table 2 (our substitute for the archive logs).
func TestTable2Calibration(t *testing.T) {
	// load targets come from the paper's Table 5 base-scheduler utilizations
	cases := []struct {
		name                     string
		maxProcs                 int
		interval, est, res, load float64
	}{
		{"SDSC-SP2", 128, 1055, 6687, 11, 0.60},
		{"CTC-SP2", 338, 379, 11277, 11, 0.51},
		{"HPC2N", 240, 538, 17024, 6, 0.24},
		{"Lublin", 256, 771, 4862, 22, 0.59},
	}
	for _, c := range cases {
		tr, err := ByName(c.name, 20000, 42)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		s := ComputeStats(tr)
		if s.MaxProcs != c.maxProcs {
			t.Errorf("%s: cluster %d, want %d", c.name, s.MaxProcs, c.maxProcs)
		}
		if rel(s.MeanInterval, c.interval) > 0.02 {
			t.Errorf("%s: mean interval %.0f, want ~%.0f", c.name, s.MeanInterval, c.interval)
		}
		if rel(s.MeanEst, c.est) > 0.05 {
			t.Errorf("%s: mean est %.0f, want ~%.0f", c.name, s.MeanEst, c.est)
		}
		if rel(s.MeanProcs, c.res) > 0.15 {
			t.Errorf("%s: mean procs %.1f, want ~%.1f", c.name, s.MeanProcs, c.res)
		}
		if s.MeanRun > s.MeanEst {
			t.Errorf("%s: mean run %.0f exceeds mean est %.0f", c.name, s.MeanRun, s.MeanEst)
		}
		if got := OfferedLoad(tr); rel(got, c.load) > 0.08 {
			t.Errorf("%s: offered load %.2f, want ~%.2f", c.name, got, c.load)
		}
	}
}

func rel(got, want float64) float64 { return math.Abs(got-want) / want }

func TestGenerateDeterminism(t *testing.T) {
	a := SDSCSP2Like(1000, 11)
	b := SDSCSP2Like(1000, 11)
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs across identical seeds", i)
		}
	}
	c := SDSCSP2Like(1000, 12)
	same := 0
	for i := range a.Jobs {
		if a.Jobs[i].Est == c.Jobs[i].Est {
			same++
		}
	}
	if same == len(a.Jobs) {
		t.Error("different seeds produced identical traces")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", 10, 1); err == nil {
		t.Error("unknown trace name accepted")
	}
}

func TestOfferedLoad(t *testing.T) {
	tr := &Trace{MaxProcs: 10, Jobs: []Job{
		{ID: 1, Submit: 0, Run: 100, Est: 100, Procs: 5},
		{ID: 2, Submit: 100, Run: 100, Est: 100, Procs: 5},
	}}
	// work = 2*500 = 1000, span = 100, capacity = 10 → load 1.0
	if got := OfferedLoad(tr); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("OfferedLoad = %v, want 1.0", got)
	}
	if got := OfferedLoad(&Trace{MaxProcs: 10}); got != 0 {
		t.Errorf("empty trace load = %v, want 0", got)
	}
}

func TestLublinShape(t *testing.T) {
	tr := LublinTrace(20000, 9)
	// Serial jobs should be a visible fraction (model prob 0.24 plus rounding).
	serial := 0
	for _, j := range tr.Jobs {
		if j.Procs == 1 {
			serial++
		}
	}
	frac := float64(serial) / float64(tr.Len())
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("serial fraction %.2f, want within [0.15, 0.45]", frac)
	}
	// Runtimes must be bimodal-ish: both very short and very long jobs exist.
	short, long := 0, 0
	for _, j := range tr.Jobs {
		if j.Run < 120 {
			short++
		}
		if j.Run > 3600 {
			long++
		}
	}
	if short < tr.Len()/20 || long < tr.Len()/20 {
		t.Errorf("runtime modes thin: %d short, %d long of %d", short, long, tr.Len())
	}
}

func TestGammaSamplerMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, c := range []struct{ shape, scale float64 }{{0.45, 2}, {1, 3}, {4.2, 0.94}, {312, 0.03}} {
		var sum, sumsq float64
		const n = 300000
		for i := 0; i < n; i++ {
			v := sampleGamma(rng, c.shape, c.scale)
			if v < 0 {
				t.Fatalf("negative gamma sample %v", v)
			}
			sum += v
			sumsq += v * v
		}
		mean := sum / n
		wantMean := c.shape * c.scale
		if math.Abs(mean-wantMean)/wantMean > 0.03 {
			t.Errorf("gamma(%v,%v) mean %v, want %v", c.shape, c.scale, mean, wantMean)
		}
		varr := sumsq/n - mean*mean
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(varr-wantVar)/wantVar > 0.1 {
			t.Errorf("gamma(%v,%v) var %v, want %v", c.shape, c.scale, varr, wantVar)
		}
	}
}

func TestZipfIntBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seen := map[int]int{}
	for i := 0; i < 10000; i++ {
		v := zipfInt(rng, 8)
		if v < 1 || v > 8 {
			t.Fatalf("zipfInt out of range: %d", v)
		}
		seen[v]++
	}
	if seen[1] <= seen[8] {
		t.Errorf("zipf not skewed: rank1=%d rank8=%d", seen[1], seen[8])
	}
	if zipfInt(rng, 1) != 1 || zipfInt(rng, 0) != 1 {
		t.Error("degenerate n should return 1")
	}
}

// Property: any window of any generated trace is itself a valid re-based
// job sequence.
func TestWindowProperty(t *testing.T) {
	tr := HPC2NLike(2000, 3)
	f := func(start, n uint16) bool {
		s := int(start) % (tr.Len() - 1)
		k := 1 + int(n)%256
		if !tr.CanWindow(s, k) {
			return true
		}
		w := tr.Window(s, k)
		if w[0].Submit != 0 {
			return false
		}
		prev := 0.0
		for _, j := range w {
			if j.Submit < prev {
				return false
			}
			prev = j.Submit
			if j.Validate(tr.MaxProcs) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := SDSCSP2Like(100, 1)
	cl := tr.Clone()
	cl.Jobs[0].Submit = 12345
	if tr.Jobs[0].Submit == 12345 {
		t.Error("Clone shares job storage")
	}
}

func TestPaperTracesList(t *testing.T) {
	names := PaperTraces()
	if len(names) != 4 || names[0] != "SDSC-SP2" || names[3] != "Lublin" {
		t.Errorf("paper traces = %v", names)
	}
}
