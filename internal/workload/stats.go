package workload

import "math"

// Stats summarizes a trace the way Table 2 of the paper does, plus a few
// extra aggregates that the calibration tests rely on.
type Stats struct {
	Jobs          int
	MaxProcs      int     // cluster size
	MeanInterval  float64 // mean job arrival interval, seconds
	MeanEst       float64 // mean estimated runtime, seconds
	MeanRun       float64 // mean actual runtime, seconds
	MeanProcs     float64 // mean requested processors
	MaxEst        float64
	MaxJobProcs   int
	TotalSpan     float64 // last submit - first submit
	MeanArea      float64 // mean est*procs
	EstOverRunAvg float64 // mean est/run over jobs with run > 0
}

// ComputeStats computes summary statistics over the full trace.
func ComputeStats(t *Trace) Stats {
	s := Stats{Jobs: len(t.Jobs), MaxProcs: t.MaxProcs}
	if len(t.Jobs) == 0 {
		return s
	}
	var sumEst, sumRun, sumProcs, sumArea, sumRatio float64
	nRatio := 0
	for _, j := range t.Jobs {
		sumEst += j.Est
		sumRun += j.Run
		sumProcs += float64(j.Procs)
		sumArea += j.Area()
		if j.Run > 0 {
			sumRatio += j.Est / j.Run
			nRatio++
		}
		if j.Est > s.MaxEst {
			s.MaxEst = j.Est
		}
		if j.Procs > s.MaxJobProcs {
			s.MaxJobProcs = j.Procs
		}
	}
	n := float64(len(t.Jobs))
	s.MeanEst = sumEst / n
	s.MeanRun = sumRun / n
	s.MeanProcs = sumProcs / n
	s.MeanArea = sumArea / n
	if nRatio > 0 {
		s.EstOverRunAvg = sumRatio / float64(nRatio)
	}
	s.TotalSpan = t.Jobs[len(t.Jobs)-1].Submit - t.Jobs[0].Submit
	if len(t.Jobs) > 1 {
		s.MeanInterval = s.TotalSpan / float64(len(t.Jobs)-1)
	}
	return s
}

// OfferedLoad estimates the offered utilization of the trace: the total
// actual core-seconds divided by cluster capacity over the trace span.
// Values near or above 1 indicate a saturated system.
func OfferedLoad(t *Trace) float64 {
	if len(t.Jobs) < 2 || t.MaxProcs <= 0 {
		return 0
	}
	var work float64
	for _, j := range t.Jobs {
		work += j.Run * float64(j.Procs)
	}
	span := t.Jobs[len(t.Jobs)-1].Submit - t.Jobs[0].Submit
	if span <= 0 {
		return math.Inf(1)
	}
	return work / (span * float64(t.MaxProcs))
}
