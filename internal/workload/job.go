// Package workload defines batch jobs and job traces, parses and writes the
// Standard Workload Format (SWF) used by the Parallel Workloads Archive, and
// generates synthetic traces calibrated to the statistics of the logs the
// SchedInspector paper evaluates on (SDSC-SP2, CTC-SP2, HPC2N) as well as a
// Lublin-Feitelson model trace.
package workload

import (
	"fmt"
	"math"
)

// Job is one batch job. Times are in seconds relative to the trace start.
//
// Two runtimes are tracked, mirroring §3.2 of the paper: Run is the actual
// execution time and decides when the job finishes in the simulator; Est is
// the user-estimated (requested) runtime and is the only runtime visible to
// schedulers and to the inspector.
type Job struct {
	ID     int     // 1-based job number within the trace
	Submit float64 // arrival time, seconds since trace start
	Run    float64 // actual runtime, seconds
	Est    float64 // user-estimated runtime, seconds (Est >= Run is typical, not required)
	Procs  int     // requested processors

	// Optional accounting attributes, used by the Slurm multifactor policy.
	User      int
	Group     int
	Queue     int
	Partition int
}

// Area returns the estimated resource area est_j * res_j used by the SAF policy.
func (j Job) Area() float64 { return j.Est * float64(j.Procs) }

// Ratio returns the estimated ratio est_j / res_j used by the SRF policy.
func (j Job) Ratio() float64 { return j.Est / float64(max(1, j.Procs)) }

// Validate reports whether the job is well formed for simulation.
func (j Job) Validate(maxProcs int) error {
	switch {
	case j.Procs <= 0:
		return fmt.Errorf("job %d: nonpositive procs %d", j.ID, j.Procs)
	case maxProcs > 0 && j.Procs > maxProcs:
		return fmt.Errorf("job %d: procs %d exceeds cluster size %d", j.ID, j.Procs, maxProcs)
	case j.Run < 0 || math.IsNaN(j.Run) || math.IsInf(j.Run, 0):
		return fmt.Errorf("job %d: bad runtime %v", j.ID, j.Run)
	case j.Est <= 0 || math.IsNaN(j.Est) || math.IsInf(j.Est, 0):
		return fmt.Errorf("job %d: bad estimated runtime %v", j.ID, j.Est)
	case j.Submit < 0 || math.IsNaN(j.Submit) || math.IsInf(j.Submit, 0):
		return fmt.Errorf("job %d: bad submit time %v", j.ID, j.Submit)
	}
	return nil
}
