package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseSWF checks that the SWF parser never panics and that any trace
// it accepts satisfies the package invariants (sorted, positive fields).
// Seeds cover headers, cancelled jobs, missing fields and junk. Run with
// `go test -fuzz FuzzParseSWF ./internal/workload` for exploratory fuzzing;
// the seeds execute as part of the normal test suite.
func FuzzParseSWF(f *testing.F) {
	f.Add("; MaxProcs: 64\n1 0 -1 100 4 -1 -1 4 200 -1 1 3 1 -1 2 1 -1 -1\n")
	f.Add("1 10 -1 -1 -1 -1 -1 -1 -1 -1 0 1 1 -1 1 1 -1 -1\n")
	f.Add("; only a comment\n")
	f.Add("garbage line\n")
	f.Add("2 5 -1 50 2 -1 -1 -1 100 -1 1 5 1 -1 1 1 -1 -1\n1 0 -1 9 1 -1 -1 1 9 -1 1 1 1 -1 1 1 -1 -1\n")
	f.Add("1 0 -1 1e300 1 -1 -1 1 1e300 -1 1 1 1 -1 1 1 -1 -1\n")
	f.Add(strings.Repeat("1 0 -1 1 1 -1 -1 1 1 -1 1 1 1 -1 1 1 -1 -1\n", 5))
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ParseSWF(strings.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		prev := -1.0
		for _, j := range tr.Jobs {
			if j.Procs <= 0 || j.Est <= 0 || j.Run < 0 {
				t.Fatalf("parser accepted invalid job %+v", j)
			}
			if j.Submit < prev {
				t.Fatal("parser output not sorted")
			}
			prev = j.Submit
		}
		// Round-trip: whatever parses must serialize and re-parse.
		var buf bytes.Buffer
		if err := WriteSWF(&buf, tr); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
		if _, err := ParseSWF(&buf, "fuzz2"); err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
	})
}
