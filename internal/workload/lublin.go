package workload

import (
	"math"
	"math/rand"
)

// Lublin-Feitelson synthetic workload model (Lublin & Feitelson, JPDC 2003),
// the generative model behind the "Lublin" trace in Table 2 of the paper.
//
// The model has three parts:
//
//   - Job size (processors): with probability lublinSerialProb the job is
//     serial; otherwise log2(size) is drawn from a two-stage uniform
//     distribution over [uLow, uMed] (probability lublinUProb) or
//     [uMed, uHi], and with probability lublinPow2Prob the size is rounded
//     to the nearest power of two.
//   - Runtime: log runtime is drawn from a hyper-Gamma distribution whose
//     mixing probability depends linearly on the job size
//     (p = pA*size + pB), so bigger jobs skew longer.
//   - Arrivals: log interarrival time is Gamma-distributed, modulated by a
//     daily cycle.
//
// After sampling, estimates and intervals are linearly recalibrated to hit
// the aggregate statistics the paper reports for its Lublin trace (cluster
// 256, interval 771 s, mean estimate 4862 s, mean size 22); the calibration
// is a single scalar per quantity, so the characteristic bimodal runtime and
// bursty arrival shapes of the model are preserved.
const (
	lublinSerialProb = 0.24  // probability of a one-processor job
	lublinPow2Prob   = 0.625 // probability of rounding size to a power of two
	lublinUProb      = 0.86  // probability of the low range in the two-stage uniform
	lublinULow       = 0.8   // log2 lower bound of job sizes
	lublinUMedOff    = 2.5   // uMed = uHi - lublinUMedOff

	// hyper-Gamma log-runtime parameters
	lublinA1 = 4.2
	lublinB1 = 0.94
	lublinA2 = 312.0
	lublinB2 = 0.03
	lublinPA = -0.0054
	lublinPB = 0.78

	// Gamma log-interarrival parameters
	lublinAArr = 10.23
	lublinBArr = 0.4871
)

// LublinConfig controls the Lublin model generator.
type LublinConfig struct {
	Name     string
	MaxProcs int
	Jobs     int
	Seed     int64
	Interval float64 // target mean interarrival after calibration (seconds)
	MeanEst  float64 // target mean estimate after calibration (seconds)
	MaxEst   float64 // estimate cap (seconds)
	Diurnal  float64 // daily-cycle strength, 0..1
	Overest  float64 // mean multiplicative user over-estimation factor (>= 1)
}

func (c LublinConfig) withDefaults() LublinConfig {
	if c.Name == "" {
		c.Name = "Lublin"
	}
	if c.MaxProcs == 0 {
		c.MaxProcs = 256
	}
	if c.Jobs == 0 {
		c.Jobs = 20000
	}
	if c.Interval == 0 {
		c.Interval = 771
	}
	if c.MeanEst == 0 {
		c.MeanEst = 4862
	}
	if c.MaxEst == 0 {
		c.MaxEst = 36 * 3600
	}
	if c.Diurnal == 0 {
		c.Diurnal = 0.8
	}
	if c.Overest == 0 {
		c.Overest = 1.7
	}
	return c
}

// GenerateLublin builds a trace from the Lublin-Feitelson model.
func GenerateLublin(cfg LublinConfig) *Trace {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	uHi := math.Log2(float64(cfg.MaxProcs))
	uMed := uHi - lublinUMedOff

	jobs := make([]Job, cfg.Jobs)
	now := 0.0
	for i := range jobs {
		gap := math.Exp(sampleGamma(rng, lublinAArr, lublinBArr))
		if cfg.Diurnal > 0 {
			gap /= diurnalRate(now, cfg.Diurnal)
		}
		now += gap

		size := lublinSize(rng, cfg.MaxProcs, uMed, uHi)
		run := lublinRuntime(rng, size)
		if run < 1 {
			run = 1
		}
		// Users over-estimate: est = run * (1 + Exp(mean Overest-1)).
		est := run * (1 + rng.ExpFloat64()*(cfg.Overest-1))
		est = clamp(est, 30, cfg.MaxEst)
		if run > est {
			run = est
		}
		jobs[i] = Job{
			ID: i + 1, Submit: now, Run: run, Est: est, Procs: size,
			User: zipfInt(rng, 64), Group: zipfInt(rng, 16), Queue: zipfInt(rng, 4), Partition: 1,
		}
	}

	recalibrateSubmit(jobs, cfg.Interval)
	recalibrateEst(jobs, cfg.MeanEst, 30, cfg.MaxEst)

	t := &Trace{Name: cfg.Name, MaxProcs: cfg.MaxProcs, Jobs: jobs}
	t.SortBySubmit()
	return t
}

// LublinTrace returns the paper's "Lublin" trace: 256 processors,
// interval 771 s, mean estimate 4862 s, mean size 22.
func LublinTrace(jobs int, seed int64) *Trace {
	return GenerateLublin(LublinConfig{Jobs: jobs, Seed: seed})
}

// lublinSize samples the processor count.
func lublinSize(rng *rand.Rand, maxProcs int, uMed, uHi float64) int {
	if rng.Float64() < lublinSerialProb {
		return 1
	}
	var u float64
	if rng.Float64() < lublinUProb {
		u = lublinULow + rng.Float64()*(uMed-lublinULow)
	} else {
		u = uMed + rng.Float64()*(uHi-uMed)
	}
	size := math.Exp2(u)
	if rng.Float64() < lublinPow2Prob {
		size = math.Exp2(math.Round(u))
	}
	n := int(math.Round(size))
	if n < 1 {
		n = 1
	}
	if n > maxProcs {
		n = maxProcs
	}
	return n
}

// lublinRuntime samples the actual runtime in seconds for a job of the given
// size: exp of a hyper-Gamma draw whose mixing probability depends on size.
func lublinRuntime(rng *rand.Rand, size int) float64 {
	p := lublinPA*float64(size) + lublinPB
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	var x float64
	if rng.Float64() < p {
		x = sampleGamma(rng, lublinA1, lublinB1)
	} else {
		x = sampleGamma(rng, lublinA2, lublinB2)
	}
	// cap the log draw: e^13 ~ 4.9 days, beyond any wallclock limit here
	if x > 13 {
		x = 13
	}
	return math.Exp(x)
}
