package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"schedinspector/internal/core"
	"schedinspector/internal/metrics"
	"schedinspector/internal/workload"
)

// Serving-throughput benchmarks: the decision-wave path against a faithful
// replica of the pre-wave serving path (one model mutex, a scalar forward
// per request), at 1, 64 and 512 concurrent clients. Results are archived
// in BENCH_serve.json by `make bench-serve` and gated advisorily by
// `make bench-serve-check`; each benchmark reports decisions/s and the p99
// request latency alongside the standard ns/op.

func benchInspector() *core.Inspector {
	tr := workload.SDSCSP2Like(500, 3)
	return core.NewInspector(rand.New(rand.NewSource(17)), core.ManualFeatures,
		core.NormalizerForTrace(tr, metrics.BSLD), nil)
}

// mutexBaseline rebuilds the pre-wave /v1/inspect route on a handler whose
// collector has been stopped: full decode and validation, then a scalar
// Explain under one model mutex — the exact critical section this PR
// replaced — followed by the same recordDecision call.
func mutexBaseline(h *Handler) http.Handler {
	var mu sync.Mutex
	return http.HandlerFunc(h.instrument("/v1/inspect-mutex", func(w http.ResponseWriter, r *http.Request) {
		var req InspectRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		if req.Job.Procs <= 0 || req.Job.Est <= 0 || req.TotalProcs <= 0 ||
			req.FreeProcs < 0 || req.FreeProcs > req.TotalProcs {
			http.Error(w, "invalid", http.StatusBadRequest)
			return
		}
		st := waveState(&req)
		mu.Lock()
		snap := h.snap.Load()
		action, feat, logits, probs := snap.insp.Explain(st, false)
		maxRej := snap.maxRej
		mu.Unlock()
		reject := action == core.ActionReject
		h.recordDecision(&req, feat, logits, probs, action, maxRej, reject)
		writeJSON(w, InspectResponse{Reject: reject, RejectProb: probs[core.ActionReject]})
	}))
}

// benchInspect drives b.N requests through target from the given number of
// concurrent clients, reporting decisions/s and p99 request latency.
func benchInspect(b *testing.B, clients int, target http.Handler) {
	b.Helper()
	body, err := json.Marshal(validRequest())
	if err != nil {
		b.Fatal(err)
	}
	if clients > b.N {
		clients = b.N
	}
	lat := make([][]int64, clients)
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for c := 0; c < clients; c++ {
		n := b.N / clients
		if c < b.N%clients {
			n++
		}
		wg.Add(1)
		go func(c, n int) {
			defer wg.Done()
			ls := make([]int64, 0, n)
			for i := 0; i < n; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/inspect", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				t0 := time.Now()
				target.ServeHTTP(rec, req)
				ls = append(ls, time.Since(t0).Nanoseconds())
				if rec.Code != http.StatusOK {
					b.Errorf("status %d: %s", rec.Code, rec.Body.String())
					return
				}
			}
			lat[c] = ls
		}(c, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	all := make([]int64, 0, b.N)
	for _, ls := range lat {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		b.ReportMetric(float64(all[(len(all)-1)*99/100]), "p99-ns")
	}
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "decisions/s")
	}
}

func benchWave(b *testing.B, clients int) {
	h := NewHandlerOptions(benchInspector(), Options{})
	defer h.Close()
	benchInspect(b, clients, h)
}

func benchMutex(b *testing.B, clients int) {
	h := NewHandlerOptions(benchInspector(), Options{})
	h.Close() // requests go straight to the model under the baseline mutex
	benchInspect(b, clients, mutexBaseline(h))
}

func BenchmarkInspectWaveC1(b *testing.B)    { benchWave(b, 1) }
func BenchmarkInspectWaveC64(b *testing.B)   { benchWave(b, 64) }
func BenchmarkInspectWaveC512(b *testing.B)  { benchWave(b, 512) }
func BenchmarkInspectMutexC1(b *testing.B)   { benchMutex(b, 1) }
func BenchmarkInspectMutexC64(b *testing.B)  { benchMutex(b, 64) }
func BenchmarkInspectMutexC512(b *testing.B) { benchMutex(b, 512) }
