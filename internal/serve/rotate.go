package serve

import (
	"fmt"
	"os"
	"sync"
)

// RotatingWriter is a size-bounded append-only log file: when the file
// would exceed maxBytes, it is renamed to path+".1" (replacing any previous
// rotation) and a fresh file is opened. At most two generations therefore
// exist on disk — 2*maxBytes bounds the total footprint — which is all a
// long-running inspectord's audit log needs to never grow without limit.
// Writes are serialized; a Write is never split across the rotation.
type RotatingWriter struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	f        *os.File
	size     int64
}

// NewRotatingWriter opens (appending) the log at path, rotating whenever it
// would exceed maxBytes. maxBytes <= 0 disables rotation — the file grows
// unbounded, exactly like a plain os.OpenFile append.
func NewRotatingWriter(path string, maxBytes int64) (*RotatingWriter, error) {
	w := &RotatingWriter{path: path, maxBytes: maxBytes}
	if err := w.open(); err != nil {
		return nil, err
	}
	return w, nil
}

// open (re)opens the current-generation file and records its size. Caller
// holds w.mu (or is the constructor).
func (w *RotatingWriter) open() error {
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("serve: rotating log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("serve: rotating log: %w", err)
	}
	w.f = f
	w.size = st.Size()
	return nil
}

// Write appends p, rotating first when the write would push the current
// file past the size bound (an oversized single write still lands whole in
// a fresh file).
func (w *RotatingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, fmt.Errorf("serve: rotating log: closed")
	}
	if w.maxBytes > 0 && w.size > 0 && w.size+int64(len(p)) > w.maxBytes {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	return n, err
}

// rotate closes the current generation, shifts it to path+".1" and opens a
// fresh file. Caller holds w.mu.
func (w *RotatingWriter) rotate() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("serve: rotating log: %w", err)
	}
	w.f = nil
	if err := os.Rename(w.path, w.path+".1"); err != nil {
		return fmt.Errorf("serve: rotating log: %w", err)
	}
	return w.open()
}

// Close closes the underlying file. Subsequent writes fail.
func (w *RotatingWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
