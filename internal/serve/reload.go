package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"schedinspector/internal/core"
)

// Model hot-swap. A running inspectord can pick up a newly trained model
// without dropping in-flight requests: the replacement is loaded and
// validated entirely off the serving path, then installed under the same
// mutex the request handlers already take, so every request sees either
// the old model or the new one — never a half-swapped hybrid.

// Swap atomically replaces the served inspector. In-flight requests
// holding the model lock finish against the model they started with;
// requests arriving after Swap returns see the new one.
func (h *Handler) Swap(insp *core.Inspector) {
	h.mu.Lock()
	h.insp = insp
	h.mu.Unlock()
	// The replacement may observe through a different feature mode; keep
	// the explain and trace rings' headers in step with the served model.
	h.explains.SetMeta(insp.Mode.FeatureNames(), insp.Mode.String(), insp.Norm.MaxRejections)
	h.ring.SetMeta(insp.Mode.FeatureNames(), insp.Mode.String(), insp.Norm.MaxRejections)
	h.params.Set(float64(insp.Agent.Policy.NumParams()))
	h.reloads.Inc()
	h.generation.Add(1)
}

// SetReloader installs the function the reload triggers call to produce a
// replacement model (typically re-reading the model file from disk). Set
// it once before serving; a nil reloader leaves /v1/admin/reload disabled.
func (h *Handler) SetReloader(fn func() (*core.Inspector, error)) {
	h.reloadMu.Lock()
	h.reloader = fn
	h.reloadMu.Unlock()
}

// ReloadResponse reports the outcome of a successful reload.
type ReloadResponse struct {
	Generation int `json:"generation"`
	Params     int `json:"policy_params"`
}

// Reload runs the configured reloader and swaps the result in. The load
// happens without holding the model lock, so serving continues at full
// speed while the replacement is read and validated; a failed load leaves
// the current model serving and increments the failure counter.
func (h *Handler) Reload() (ReloadResponse, error) {
	h.reloadMu.Lock()
	defer h.reloadMu.Unlock()
	if h.reloader == nil {
		return ReloadResponse{}, fmt.Errorf("serve: no reloader configured")
	}
	insp, err := h.reloader()
	if err != nil {
		h.loadFailures.Inc()
		return ReloadResponse{}, fmt.Errorf("serve: reload: %w", err)
	}
	h.Swap(insp)
	return ReloadResponse{
		Generation: int(h.generation.Value()),
		Params:     insp.Agent.Policy.NumParams(),
	}, nil
}

// reload is the POST /v1/admin/reload route.
func (h *Handler) reload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	h.reloadMu.Lock()
	configured := h.reloader != nil
	h.reloadMu.Unlock()
	if !configured {
		http.Error(w, "model reload not configured", http.StatusNotImplemented)
		return
	}
	resp, err := h.Reload()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
