package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"schedinspector/internal/core"
)

// Model hot-swap. A running inspectord can pick up a newly trained model
// without dropping in-flight requests: the replacement is loaded and
// validated entirely off the serving path, then handed to the collector
// goroutine, which installs it as one atomic snapshot between decision
// waves. Decisions and swaps share one total order, so every decision —
// and every explain/trace record it emits — is computed against exactly
// one model, and the rings' meta headers can never tear against the
// records around them.

// Swap replaces the served inspector. The swap is applied by the
// collector between waves (never mid-wave); when Swap returns, the new
// snapshot and its explain/trace meta are visible, and every later
// decision is answered by the replacement.
func (h *Handler) Swap(insp *core.Inspector) {
	s := swapRequest{insp: insp, done: make(chan struct{})}
	h.stopMu.RLock()
	if !h.stopped {
		// The read lock held across the send pairs with Close's write lock:
		// a completed send is always serviced before the collector exits.
		h.swapCh <- s
		h.stopMu.RUnlock()
		<-s.done
		return
	}
	h.stopMu.RUnlock()
	// Collector gone; no decisions are in flight, apply inline.
	h.applySwap(insp)
}

// Current returns the inspector presently answering decisions and its
// generation number. The pair is read from one atomic snapshot, so it is
// always internally consistent even across concurrent swaps; the returned
// inspector's weights are immutable (swaps install new models, they never
// mutate the old one), so callers may evaluate or clone it freely.
func (h *Handler) Current() (*core.Inspector, int64) {
	s := h.snap.Load()
	return s.insp, s.gen
}

// SetReloader installs the function the reload triggers call to produce a
// replacement model (typically re-reading the model file from disk). Set
// it once before serving; a nil reloader leaves /v1/admin/reload disabled.
func (h *Handler) SetReloader(fn func() (*core.Inspector, error)) {
	h.reloadMu.Lock()
	h.reloader = fn
	h.reloadMu.Unlock()
}

// ReloadResponse reports the outcome of a successful reload.
type ReloadResponse struct {
	Generation int `json:"generation"`
	Params     int `json:"policy_params"`
}

// Reload runs the configured reloader and swaps the result in. The load
// happens without holding the model lock, so serving continues at full
// speed while the replacement is read and validated; a failed load leaves
// the current model serving and increments the failure counter.
func (h *Handler) Reload() (ReloadResponse, error) {
	h.reloadMu.Lock()
	defer h.reloadMu.Unlock()
	if h.reloader == nil {
		return ReloadResponse{}, fmt.Errorf("serve: no reloader configured")
	}
	insp, err := h.reloader()
	if err != nil {
		h.loadFailures.Inc()
		return ReloadResponse{}, fmt.Errorf("serve: reload: %w", err)
	}
	h.Swap(insp)
	return ReloadResponse{
		Generation: int(h.generation.Value()),
		Params:     insp.Agent.Policy.NumParams(),
	}, nil
}

// reload is the POST /v1/admin/reload route.
func (h *Handler) reload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	h.reloadMu.Lock()
	configured := h.reloader != nil
	h.reloadMu.Unlock()
	if !configured {
		http.Error(w, "model reload not configured", http.StatusNotImplemented)
		return
	}
	resp, err := h.Reload()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
