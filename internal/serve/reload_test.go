package serve

import (
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"schedinspector/internal/core"
	"schedinspector/internal/metrics"
	"schedinspector/internal/workload"
)

// reloadPair builds two distinguishable inspectors over the same feature
// contract: different hidden sizes mean different parameter counts and a
// different rejection probability for the same request.
func reloadPair(t *testing.T) (*core.Inspector, *core.Inspector) {
	t.Helper()
	tr := workload.SDSCSP2Like(500, 3)
	norm := core.NormalizerForTrace(tr, metrics.BSLD)
	a := core.NewInspector(rand.New(rand.NewSource(1)), core.ManualFeatures, norm, nil)
	b := core.NewInspector(rand.New(rand.NewSource(2)), core.ManualFeatures, norm, []int{8, 8})
	return a, b
}

func postReload(t *testing.T, h http.Handler) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/admin/reload", nil))
	return rec
}

func metricsPage(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	return rec.Body.String()
}

func TestReloadSwapsModel(t *testing.T) {
	a, b := reloadPair(t)
	h := NewHandler(a)
	h.SetReloader(func() (*core.Inspector, error) { return b, nil })

	rec := postReload(t, h)
	if rec.Code != http.StatusOK {
		t.Fatalf("reload status %d: %s", rec.Code, rec.Body)
	}
	var resp ReloadResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Generation != 2 {
		t.Errorf("generation %d after first reload, want 2", resp.Generation)
	}
	if want := b.Agent.Policy.NumParams(); resp.Params != want {
		t.Errorf("params %d, want %d", resp.Params, want)
	}

	// /v1/info now describes the new model.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/info", nil))
	var info InfoResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if want := b.Agent.Policy.NumParams(); info.Params != want {
		t.Errorf("info params %d after swap, want %d", info.Params, want)
	}

	page := metricsPage(t, h)
	for _, want := range []string{
		"schedinspector_model_reloads_total 1",
		"schedinspector_model_load_failures_total 0",
		"schedinspector_model_generation 2",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}

func TestReloadFailureKeepsModel(t *testing.T) {
	a, _ := reloadPair(t)
	h := NewHandler(a)
	boom := errors.New("disk on fire")
	h.SetReloader(func() (*core.Inspector, error) { return nil, boom })

	rec := postReload(t, h)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("failed reload status %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "disk on fire") {
		t.Errorf("error body %q does not name the cause", rec.Body)
	}

	// The old model still serves.
	rec = postInspect(t, h, validRequest())
	if rec.Code != http.StatusOK {
		t.Fatalf("inspect after failed reload: status %d", rec.Code)
	}

	page := metricsPage(t, h)
	for _, want := range []string{
		"schedinspector_model_reloads_total 0",
		"schedinspector_model_load_failures_total 1",
		"schedinspector_model_generation 1",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}

func TestReloadNotConfigured(t *testing.T) {
	a, _ := reloadPair(t)
	h := NewHandler(a)
	if rec := postReload(t, h); rec.Code != http.StatusNotImplemented {
		t.Fatalf("unconfigured reload status %d, want 501", rec.Code)
	}
}

func TestReloadRequiresPost(t *testing.T) {
	a, b := reloadPair(t)
	h := NewHandler(a)
	h.SetReloader(func() (*core.Inspector, error) { return b, nil })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/admin/reload", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload status %d, want 405", rec.Code)
	}
}

// TestSwapUnderLoad hammers /v1/inspect from many goroutines while the
// model is swapped back and forth. Every response must succeed and report
// a rejection probability belonging to exactly one of the two models —
// a torn swap would surface as a third value or a non-200 (and as a data
// race under -race, which the Makefile race target runs for this package).
func TestSwapUnderLoad(t *testing.T) {
	a, b := reloadPair(t)
	h := NewHandler(a)
	req := validRequest()

	// Establish each model's deterministic probability for the request.
	probOf := func(insp *core.Inspector) float64 {
		t.Helper()
		h.Swap(insp)
		rec := postInspect(t, h, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("probe status %d: %s", rec.Code, rec.Body)
		}
		var resp InspectResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp.RejectProb
	}
	probA, probB := probOf(a), probOf(b)
	if probA == probB {
		t.Fatalf("test models indistinguishable: both answer %v", probA)
	}

	const (
		clients   = 8
		perClient = 50
	)
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				rec := postInspect(t, h, req)
				if rec.Code != http.StatusOK {
					errc <- errors.New(rec.Body.String())
					return
				}
				var resp InspectResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					errc <- err
					return
				}
				if resp.RejectProb != probA && resp.RejectProb != probB {
					errc <- errors.New("response from neither model")
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			h.Swap(b)
		} else {
			h.Swap(a)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Errorf("client: %v", err)
	}

	page := metricsPage(t, h)
	if !strings.Contains(page, "schedinspector_model_reloads_total 202") {
		t.Errorf("expected 202 recorded swaps (2 probes + 200 loop); metrics page:\n%s",
			pageLine(page, "schedinspector_model_reloads_total"))
	}
}

// TestReloadFromDiskUnderLoad mirrors cmd/inspectord's wiring exactly: one
// process-lifetime sampling rng shared between the serving path (which
// draws from it under the model lock) and the reload closure (which loads
// the model file off the lock, by design, so serving never stalls on I/O).
// That sharing is only sound because loading never draws from the rng —
// core.LoadInspector installs the stored networks via rl.AgentFromNets
// instead of initializing throwaway ones — and this test pins it: it runs
// real disk loads concurrently with live /v1/inspect sampling, so any
// draw on the load path is a data race under -race (which the Makefile
// race target runs for this package).
func TestReloadFromDiskUnderLoad(t *testing.T) {
	a, _ := reloadPair(t)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	boot, err := core.LoadServable(path, rng)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(boot)
	h.SetReloader(func() (*core.Inspector, error) { return core.LoadServable(path, rng) })

	body, err := json.Marshal(validRequest())
	if err != nil {
		t.Fatal(err)
	}
	const clients = 4
	done := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if rec := postInspect(t, h, string(body)); rec.Code != http.StatusOK {
					t.Errorf("inspect status %d: %s", rec.Code, rec.Body)
					return
				}
			}
		}()
	}
	for i := 0; i < 25; i++ {
		if _, err := h.Reload(); err != nil {
			t.Errorf("reload %d: %v", i, err)
			break
		}
	}
	close(done)
	wg.Wait()
}

// pageLine extracts the metric line for a name, for focused failure output.
func pageLine(page, name string) string {
	for _, l := range strings.Split(page, "\n") {
		if strings.HasPrefix(l, name) {
			return l
		}
	}
	return "(missing)"
}
