package serve

import (
	"net/http"
	"strconv"

	"schedinspector/internal/obs"
)

// Per-decision explainability for the serving path: every /v1/inspect
// verdict is recorded — feature vector, logits, probabilities, verdict,
// scheduling context — into a bounded in-memory ring, and the last N
// records are served back over GET /v1/explain/last. This is the
// flight-recorder answer to "why did the model reject job X at 03:12"
// without restarting the daemon or attaching a debugger: the audit log
// (when enabled) has the full history on disk, the explain ring has the
// recent past queryable over HTTP.

// DefaultServeExplainCap bounds the serving explain ring.
const DefaultServeExplainCap = 512

// defaultExplainLast is how many records /v1/explain/last returns when the
// n query parameter is absent.
const defaultExplainLast = 32

// ExplainLastResponse is the GET /v1/explain/last payload.
type ExplainLastResponse struct {
	// Total counts decisions served over the process lifetime, including
	// those the ring has since dropped.
	Total uint64 `json:"total"`
	// FeatureNames labels the indices of every record's features array,
	// per the served model's feature mode.
	FeatureNames []string `json:"feature_names"`
	// Records are the most recent decisions, oldest first.
	Records []obs.ExplainRecord `json:"records"`
}

// explainLast is the GET /v1/explain/last route. The optional n query
// parameter (default 32) bounds how many records return; the ring capacity
// caps it.
func (h *Handler) explainLast(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	n := defaultExplainLast
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	recs := h.explains.Last(n)
	if recs == nil {
		recs = []obs.ExplainRecord{} // serve [] rather than null
	}
	writeJSON(w, ExplainLastResponse{
		Total:        h.explains.Total(),
		FeatureNames: h.explains.FeatureNames(),
		Records:      recs,
	})
}
