package serve

import (
	"time"

	"schedinspector/internal/core"
	"schedinspector/internal/sim"
)

// The batched serving hot path. Concurrent /v1/inspect requests do their
// own parsing and validation, then enqueue one pending decision onto a
// bounded queue and wait. A single collector goroutine drains up to
// MaxWave pending decisions into a decision wave and answers the whole
// wave with one core.BatchExplainer call (one nn.ForwardBatch) — the same
// wave machinery the rollout driver uses, pointed at live traffic.
//
// The collector is the only goroutine that touches the served model, so
// the request path holds no lock at all: under load, waves form naturally
// (requests pile up while the previous wave forwards) and the per-decision
// cost amortizes; at concurrency 1 every wave has size 1 and the path
// degenerates to the scalar forward plus one channel handoff.
//
// Model swaps travel through the same collector (see reload.go), which
// gives decisions and swaps one total order: every decision is computed,
// recorded and answered against exactly one snapshot, and the explain/trace
// meta headers can never tear against the records around them.

// DefaultMaxWave bounds how many pending decisions one wave may coalesce.
const DefaultMaxWave = 64

// Options tunes the batched serving path.
type Options struct {
	// MaxWave bounds the decisions answered by one batched forward
	// (default DefaultMaxWave).
	MaxWave int
	// WaveTimeout is how long the collector waits for stragglers to fill a
	// wave once at least one decision is pending. The default 0 never
	// waits: the collector drains whatever is queued and forwards
	// immediately, which batches under load without adding latency at low
	// concurrency.
	WaveTimeout time.Duration
	// QueueDepth bounds the pending-decision queue (default 4*MaxWave).
	// A full queue applies backpressure: requests block in submit order.
	QueueDepth int
}

// withDefaults normalizes unset options.
func (o Options) withDefaults() Options {
	if o.MaxWave <= 0 {
		o.MaxWave = DefaultMaxWave
	}
	if o.WaveTimeout < 0 {
		o.WaveTimeout = 0
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.MaxWave
	}
	return o
}

// snapshot is the atomically-published serving state: the model plus every
// per-decision constant derived from it. Readers load it once and see one
// consistent model+meta; a swap installs a complete replacement, never a
// field-by-field mutation.
type snapshot struct {
	insp   *core.Inspector
	maxRej int
	gen    int64 // 1 = boot model, +1 per swap
}

// inspectOutcome is the collector's answer to one pending decision.
type inspectOutcome struct {
	reject     bool
	rejectProb float64
}

// pendingDecision is one enqueued /v1/inspect request. done is buffered
// (capacity 1) so the collector never blocks answering; the pool reuses
// the channel after the waiter has consumed the outcome.
type pendingDecision struct {
	req      *InspectRequest
	state    *sim.State
	enqueued time.Time
	done     chan inspectOutcome
}

// swapRequest asks the collector to install a new model snapshot. done
// closes after the swap (and its meta update) is visible.
type swapRequest struct {
	insp *core.Inspector
	done chan struct{}
}

// submit enqueues a pending decision, returning false when the handler is
// closed. The read lock is held across the (possibly blocking) send so
// Close cannot tear the queue down while a sender is parked on it.
func (h *Handler) submit(p *pendingDecision) bool {
	h.stopMu.RLock()
	defer h.stopMu.RUnlock()
	if h.stopped {
		return false
	}
	h.queue <- p
	return true
}

// Close stops the collector after draining every enqueued decision. Call
// it after the HTTP server has shut down; requests arriving later are
// answered 503. Closing twice is a no-op.
func (h *Handler) Close() {
	h.stopMu.Lock()
	if h.stopped {
		h.stopMu.Unlock()
		return
	}
	h.stopped = true
	h.stopMu.Unlock()
	// No submit/Swap can be in flight past this point: both hold the read
	// lock across their send, so the write lock above waited them out.
	close(h.queue)
	<-h.collectorDone
}

// collect is the collector goroutine: the single owner of the served
// model's forward pass, the decision records, and the swap application.
func (h *Handler) collect() {
	defer close(h.collectorDone)
	wave := make([]*pendingDecision, 0, h.opts.MaxWave)
	states := make([]*sim.State, h.opts.MaxWave)
	outs := make([]core.ExplainOut, h.opts.MaxWave)
	for {
		select {
		case s := <-h.swapCh:
			h.applySwap(s.insp)
			close(s.done)
		case p, ok := <-h.queue:
			if !ok {
				return
			}
			wave = h.gather(p, wave[:0])
			h.processWave(wave, states, outs)
		}
	}
}

// gather drains the queue into a wave, starting from first: everything
// already pending joins immediately (up to MaxWave), and with a positive
// WaveTimeout the collector waits that long for stragglers before
// forwarding a partial wave.
func (h *Handler) gather(first *pendingDecision, wave []*pendingDecision) []*pendingDecision {
	wave = append(wave, first)
	var timeout <-chan time.Time
	for len(wave) < h.opts.MaxWave {
		select {
		case p, ok := <-h.queue:
			if !ok {
				return wave // closing; the main loop exits after this wave
			}
			wave = append(wave, p)
			continue
		default:
		}
		if h.opts.WaveTimeout <= 0 {
			return wave
		}
		if timeout == nil {
			timeout = time.After(h.opts.WaveTimeout)
		}
		select {
		case p, ok := <-h.queue:
			if !ok {
				return wave
			}
			wave = append(wave, p)
		case <-timeout:
			return wave
		}
	}
	return wave
}

// processWave answers one wave: a single batched forward under the current
// snapshot, then per row — in wave order — one decision record and one
// response. Recording before responding keeps the synchronous contract the
// HTTP tests rely on: by the time a client has its verdict, the metrics,
// explain ring, trace ring and audit log all reflect it.
func (h *Handler) processWave(wave []*pendingDecision, states []*sim.State, outs []core.ExplainOut) {
	snap := h.snap.Load()
	for i, p := range wave {
		states[i] = p.state
	}
	start := time.Now()
	for _, p := range wave {
		h.coalesce.Observe(start.Sub(p.enqueued).Seconds())
	}
	h.batcher.Explain(snap.insp, states[:len(wave)], false, outs[:len(wave)])
	h.waveSize.Observe(float64(len(wave)))
	for i, p := range wave {
		o := &outs[i]
		reject := o.Action == core.ActionReject
		h.recordDecision(p.req, o.Features, o.Logits, o.Probs, o.Action, snap.maxRej, reject)
		p.done <- inspectOutcome{reject: reject, rejectProb: o.Probs[core.ActionReject]}
		states[i] = nil
	}
}

// applySwap installs a new model snapshot and brings the explain/trace
// meta and model metrics in step. It runs on the collector goroutine
// (between waves) or, after Close, inline on the swapper — either way it
// is serialized against every decision, so no record can be emitted under
// a header that does not describe it.
func (h *Handler) applySwap(insp *core.Inspector) {
	old := h.snap.Load()
	h.snap.Store(&snapshot{insp: insp, maxRej: insp.Norm.MaxRejections, gen: old.gen + 1})
	h.explains.SetMeta(insp.Mode.FeatureNames(), insp.Mode.String(), insp.Norm.MaxRejections)
	h.ring.SetMeta(insp.Mode.FeatureNames(), insp.Mode.String(), insp.Norm.MaxRejections)
	h.params.Set(float64(insp.Agent.Policy.NumParams()))
	h.reloads.Inc()
	h.generation.Add(1)
}
