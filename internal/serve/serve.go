// Package serve exposes a trained SchedInspector model over HTTP/JSON —
// the integration surface a production scheduler (e.g. a Slurm plugin, the
// paper's §7 future-work item) would call at each scheduling point. The
// handler is stateless per request and safe for concurrent use.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"schedinspector/internal/core"
	"schedinspector/internal/obs"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

// InspectRequest is the scheduling context of one decision, mirroring
// sim.State. Times are seconds; processor counts are absolute.
type InspectRequest struct {
	Job struct {
		Wait  float64 `json:"wait"`
		Est   float64 `json:"est"`
		Procs int     `json:"procs"`
	} `json:"job"`
	Rejections      int         `json:"rejections"`
	FreeProcs       int         `json:"free_procs"`
	TotalProcs      int         `json:"total_procs"`
	BackfillEnabled bool        `json:"backfill_enabled"`
	BackfillCount   int         `json:"backfill_count"`
	Queue           []QueueItem `json:"queue"`
}

// QueueItem is one waiting job in the request.
type QueueItem struct {
	Wait  float64 `json:"wait"`
	Est   float64 `json:"est"`
	Procs int     `json:"procs"`
}

// InspectResponse is the inspector's verdict.
type InspectResponse struct {
	Reject     bool    `json:"reject"`      // sampled decision (deployment mode)
	RejectProb float64 `json:"reject_prob"` // the policy's rejection probability
}

// InfoResponse describes the served model.
type InfoResponse struct {
	FeatureMode string  `json:"feature_mode"`
	Metric      string  `json:"metric"`
	MaxProcs    int     `json:"max_procs"`
	MaxEst      float64 `json:"max_est"`
	Params      int     `json:"policy_params"`
}

// Handler serves one inspector model.
type Handler struct {
	mu   sync.Mutex // the inspector reuses internal buffers
	insp *core.Inspector
	mux  *http.ServeMux

	// Telemetry.
	reg       *obs.Registry
	reqMu     sync.Mutex
	reqCounts map[string]*obs.Counter // "route code" -> requests_total series
	latency   map[string]*obs.Histogram
	accepts   *obs.Counter
	rejects   *obs.Counter
	rejRatio  *obs.Gauge
	probHist  *obs.Histogram

	auditMu sync.Mutex
	audit   *json.Encoder // decision audit log (JSONL), nil unless enabled
}

// NewHandler wraps the inspector in an http.Handler with routes
// POST /v1/inspect, GET /v1/info (also served at /healthz) and
// GET /metrics (Prometheus text exposition).
func NewHandler(insp *core.Inspector) *Handler {
	h := &Handler{
		insp:      insp,
		mux:       http.NewServeMux(),
		reg:       obs.NewRegistry(),
		reqCounts: make(map[string]*obs.Counter),
		latency:   make(map[string]*obs.Histogram),
	}
	h.accepts = h.reg.Counter("schedinspector_inspect_decisions_total",
		"Inspection verdicts served, by outcome.", obs.Labels{"verdict": "accept"})
	h.rejects = h.reg.Counter("schedinspector_inspect_decisions_total",
		"Inspection verdicts served, by outcome.", obs.Labels{"verdict": "reject"})
	h.rejRatio = h.reg.Gauge("schedinspector_inspect_reject_ratio",
		"Fraction of served decisions that rejected (lifetime).", nil)
	h.probHist = h.reg.Histogram("schedinspector_inspect_reject_prob",
		"Distribution of the policy's rejection probability.",
		obs.LinearBuckets(0.1, 0.1, 9), nil)
	h.reg.Gauge("schedinspector_model_params",
		"Parameters of the served policy network.", nil).
		Set(float64(insp.Agent.Policy.NumParams()))
	h.mux.HandleFunc("/v1/inspect", h.instrument("/v1/inspect", h.inspect))
	h.mux.HandleFunc("/v1/info", h.instrument("/v1/info", h.info))
	h.mux.HandleFunc("/healthz", h.instrument("/healthz", h.info))
	h.mux.Handle("/metrics", h.reg.Handler())
	return h
}

// Registry exposes the handler's metrics registry so callers (e.g.
// cmd/inspectord) can add process-level series to the same /metrics page.
func (h *Handler) Registry() *obs.Registry { return h.reg }

// SetAuditSink enables the decision audit log: one JSON line per
// /v1/inspect decision, recording the request, the normalized feature
// vector the model saw, and the verdict. Pass nil to disable.
func (h *Handler) SetAuditSink(w io.Writer) {
	h.auditMu.Lock()
	if w == nil {
		h.audit = nil
	} else {
		h.audit = json.NewEncoder(w)
	}
	h.auditMu.Unlock()
}

// statusWriter captures the response code for the request counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a route with a request counter (by status code) and a
// latency histogram.
func (h *Handler) instrument(route string, fn http.HandlerFunc) http.HandlerFunc {
	hist := h.reg.Histogram("schedinspector_http_request_duration_seconds",
		"HTTP request latency by route.", nil, obs.Labels{"route": route})
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		fn(sw, r)
		hist.Observe(time.Since(start).Seconds())
		h.requestCounter(route, sw.code).Inc()
	}
}

// requestCounter lazily creates the requests_total series for route+code
// (codes are not enumerable up front).
func (h *Handler) requestCounter(route string, code int) *obs.Counter {
	key := route + " " + strconv.Itoa(code)
	h.reqMu.Lock()
	defer h.reqMu.Unlock()
	c := h.reqCounts[key]
	if c == nil {
		c = h.reg.Counter("schedinspector_http_requests_total",
			"HTTP requests served, by route and status code.",
			obs.Labels{"route": route, "code": strconv.Itoa(code)})
		h.reqCounts[key] = c
	}
	return c
}

// auditRecord is one line of the decision audit log.
type auditRecord struct {
	Time       string    `json:"time"`
	Request    any       `json:"request"`
	Features   []float64 `json:"features"`
	RejectProb float64   `json:"reject_prob"`
	Reject     bool      `json:"reject"`
}

// recordDecision updates the decision metrics and, if enabled, the audit
// log.
func (h *Handler) recordDecision(req *InspectRequest, feat []float64, prob float64, reject bool) {
	if reject {
		h.rejects.Inc()
	} else {
		h.accepts.Inc()
	}
	total := h.accepts.Value() + h.rejects.Value()
	h.rejRatio.Set(h.rejects.Value() / total)
	h.probHist.Observe(prob)

	h.auditMu.Lock()
	if h.audit != nil {
		h.audit.Encode(auditRecord{
			Time:       time.Now().UTC().Format(time.RFC3339Nano),
			Request:    req,
			Features:   feat,
			RejectProb: prob,
			Reject:     reject,
		})
	}
	h.auditMu.Unlock()
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func (h *Handler) inspect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req InspectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if req.Job.Procs <= 0 || req.Job.Est <= 0 || req.TotalProcs <= 0 {
		http.Error(w, "job.procs, job.est and total_procs must be positive", http.StatusBadRequest)
		return
	}
	if req.FreeProcs < 0 || req.FreeProcs > req.TotalProcs {
		http.Error(w, "free_procs out of range", http.StatusBadRequest)
		return
	}

	st := &sim.State{
		Job:             workload.Job{Est: req.Job.Est, Procs: req.Job.Procs},
		JobWait:         req.Job.Wait,
		Rejections:      req.Rejections,
		FreeProcs:       req.FreeProcs,
		TotalProcs:      req.TotalProcs,
		Runnable:        req.Job.Procs <= req.FreeProcs,
		BackfillEnabled: req.BackfillEnabled,
		BackfillCount:   req.BackfillCount,
	}
	for _, q := range req.Queue {
		st.Queue = append(st.Queue, sim.QueueItem{Wait: q.Wait, Est: q.Est, Procs: q.Procs})
	}

	h.auditMu.Lock()
	auditing := h.audit != nil
	h.auditMu.Unlock()

	h.mu.Lock()
	prob := h.insp.RejectProb(st)
	reject := h.insp.Stochastic()(st)
	var feat []float64
	if auditing {
		feat = h.insp.Norm.Features(nil, h.insp.Mode, st)
	}
	h.mu.Unlock()

	h.recordDecision(&req, feat, prob, reject)
	writeJSON(w, InspectResponse{Reject: reject, RejectProb: prob})
}

func (h *Handler) info(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	h.mu.Lock()
	resp := InfoResponse{
		FeatureMode: h.insp.Mode.String(),
		Metric:      h.insp.Norm.Metric.String(),
		MaxProcs:    h.insp.Norm.MaxProcs,
		MaxEst:      h.insp.Norm.MaxEst,
		Params:      h.insp.Agent.Policy.NumParams(),
	}
	h.mu.Unlock()
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
