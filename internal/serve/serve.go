// Package serve exposes a trained SchedInspector model over HTTP/JSON —
// the integration surface a production scheduler (e.g. a Slurm plugin, the
// paper's §7 future-work item) would call at each scheduling point. The
// handler is stateless per request and safe for concurrent use.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"schedinspector/internal/core"
	"schedinspector/internal/obs"
	"schedinspector/internal/sched"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

// InspectRequest is the scheduling context of one decision, mirroring
// sim.State. Times are seconds; processor counts are absolute.
type InspectRequest struct {
	Job struct {
		Wait  float64 `json:"wait"`
		Est   float64 `json:"est"`
		Procs int     `json:"procs"`
	} `json:"job"`
	Rejections      int         `json:"rejections"`
	FreeProcs       int         `json:"free_procs"`
	TotalProcs      int         `json:"total_procs"`
	BackfillEnabled bool        `json:"backfill_enabled"`
	BackfillCount   int         `json:"backfill_count"`
	Queue           []QueueItem `json:"queue"`
}

// QueueItem is one waiting job in the request.
type QueueItem struct {
	Wait  float64 `json:"wait"`
	Est   float64 `json:"est"`
	Procs int     `json:"procs"`
}

// InspectResponse is the inspector's verdict.
type InspectResponse struct {
	Reject     bool    `json:"reject"`      // sampled decision (deployment mode)
	RejectProb float64 `json:"reject_prob"` // the policy's rejection probability
}

// SimulateRequest describes one what-if simulation: a job sequence to
// schedule on a virtual cluster under a base policy, with the served
// inspector optionally second-guessing every scheduling decision.
type SimulateRequest struct {
	// Policy is the base scheduling policy by its Table 3 abbreviation
	// (FCFS, LCFS, SJF, SQF, SAF, SRF, F1). Default SJF.
	Policy       string `json:"policy"`
	Backfill     bool   `json:"backfill"`
	Conservative bool   `json:"conservative"`
	MaxProcs     int    `json:"max_procs"`

	// Inspector selects how the served model drives the decisions:
	// "stochastic" (default) samples the policy distribution, "greedy"
	// takes the argmax, and "off" runs the base policy alone.
	Inspector string `json:"inspector"`
	Seed      int64  `json:"seed"` // RNG seed for stochastic mode

	Jobs []SimJob `json:"jobs"` // sorted by submit time
}

// SimJob is one job of a simulation request. IDs are assigned by arrival
// order (1-based).
type SimJob struct {
	Submit float64 `json:"submit"`
	Run    float64 `json:"run"`
	Est    float64 `json:"est"`
	Procs  int     `json:"procs"`
}

// SimulateResponse summarizes the simulated schedule.
type SimulateResponse struct {
	Jobs        int     `json:"jobs"`
	Inspections int     `json:"inspections"`
	Rejections  int     `json:"rejections"`
	Backfills   int     `json:"backfills"`
	IdleDelay   float64 `json:"idle_delay"`
	AvgBSLD     float64 `json:"avg_bsld"`
	AvgWait     float64 `json:"avg_wait"`
	MaxBSLD     float64 `json:"max_bsld"`
	Util        float64 `json:"util"`
	Makespan    float64 `json:"makespan"`
}

// InfoResponse describes the served model.
type InfoResponse struct {
	FeatureMode string  `json:"feature_mode"`
	Metric      string  `json:"metric"`
	MaxProcs    int     `json:"max_procs"`
	MaxEst      float64 `json:"max_est"`
	Params      int     `json:"policy_params"`
}

// Handler serves one inspector model.
type Handler struct {
	// The served model, published as one atomic snapshot (model + derived
	// constants + generation). Request paths load it lock-free; only the
	// collector goroutine stores it (see batch.go / reload.go).
	snap atomic.Pointer[snapshot]
	mux  *http.ServeMux

	// Batched serving path (see batch.go): requests enqueue pending
	// decisions, the collector drains them into waves and answers each
	// wave with one batched forward.
	opts          Options
	queue         chan *pendingDecision
	swapCh        chan swapRequest
	collectorDone chan struct{}
	stopMu        sync.RWMutex // guards stopped; held (R) across queue sends
	stopped       bool
	batcher       core.BatchExplainer // collector-only
	pendPool      sync.Pool

	// Hot reload (see reload.go). reloader is set once before serving.
	reloadMu sync.Mutex // serializes reloads, NOT held while serving
	reloader func() (*core.Inspector, error)

	// Telemetry.
	reg           *obs.Registry
	reqMu         sync.Mutex
	reqCounts     map[string]*obs.Counter // "route code" -> requests_total series
	latency       map[string]*obs.Histogram
	accepts       *obs.Counter
	rejects       *obs.Counter
	probHist      *obs.Histogram
	params        *obs.Gauge
	reloads       *obs.Counter
	loadFailures  *obs.Counter
	generation    *obs.Gauge
	waveSize      *obs.Histogram
	coalesce      *obs.Histogram
	auditFailures *obs.Counter

	auditMu sync.Mutex
	audit   *json.Encoder // decision audit log (JSONL), nil unless enabled

	// Per-decision explainability (see explain.go): the last decisions in
	// a bounded ring served over GET /v1/explain/last.
	explains *obs.ExplainRecorder
	decSeq   atomic.Int64 // lifetime decision sequence for explain records

	// Always-on binary flight recorder (see trace.go): every served
	// decision is also encoded into the arena-backed trace ring, dumped
	// over GET /v1/trace/snapshot and optionally streamed to a .ftrace
	// sink. The ring has its own lock; the request path never blocks on it.
	ring *obs.TraceRing
}

// NewHandler wraps the inspector in an http.Handler with the default
// Options. See NewHandlerOptions.
func NewHandler(insp *core.Inspector) *Handler {
	return NewHandlerOptions(insp, Options{})
}

// NewHandlerOptions wraps the inspector in an http.Handler with routes
// POST /v1/inspect, POST /v1/simulate, GET /v1/info (also served at
// /healthz) and GET /metrics (Prometheus text exposition). It starts the
// decision-wave collector goroutine; call Close to stop it after the HTTP
// server has drained.
func NewHandlerOptions(insp *core.Inspector, opts Options) *Handler {
	opts = opts.withDefaults()
	h := &Handler{
		mux:           http.NewServeMux(),
		opts:          opts,
		queue:         make(chan *pendingDecision, opts.QueueDepth),
		swapCh:        make(chan swapRequest),
		collectorDone: make(chan struct{}),
		reg:           obs.NewRegistry(),
		reqCounts:     make(map[string]*obs.Counter),
		latency:       make(map[string]*obs.Histogram),
		explains:      obs.NewExplainRecorder(DefaultServeExplainCap),
		ring:          obs.NewTraceRing(0, 0),
	}
	h.snap.Store(&snapshot{insp: insp, maxRej: insp.Norm.MaxRejections, gen: 1})
	h.pendPool.New = func() any {
		return &pendingDecision{done: make(chan inspectOutcome, 1)}
	}
	h.ring.Instrument(h.reg)
	h.explains.SetMeta(insp.Mode.FeatureNames(), insp.Mode.String(), insp.Norm.MaxRejections)
	h.ring.SetMeta(insp.Mode.FeatureNames(), insp.Mode.String(), insp.Norm.MaxRejections)
	h.accepts = h.reg.Counter("schedinspector_inspect_decisions_total",
		"Inspection verdicts served, by outcome.", obs.Labels{"verdict": "accept"})
	h.rejects = h.reg.Counter("schedinspector_inspect_decisions_total",
		"Inspection verdicts served, by outcome.", obs.Labels{"verdict": "reject"})
	// The reject ratio derives from the two verdict counters at scrape
	// time; a per-decision read-modify-write of a gauge would interleave
	// under concurrency and publish torn ratios.
	h.reg.GaugeFunc("schedinspector_inspect_reject_ratio",
		"Fraction of served decisions that rejected (lifetime).", nil,
		func() float64 {
			total := h.accepts.Value() + h.rejects.Value()
			if total == 0 {
				return 0
			}
			return h.rejects.Value() / total
		})
	h.probHist = h.reg.Histogram("schedinspector_inspect_reject_prob",
		"Distribution of the policy's rejection probability.",
		obs.LinearBuckets(0.1, 0.1, 9), nil)
	h.params = h.reg.Gauge("schedinspector_model_params",
		"Parameters of the served policy network.", nil)
	h.params.Set(float64(insp.Agent.Policy.NumParams()))
	h.reloads = h.reg.Counter("schedinspector_model_reloads_total",
		"Successful model hot-swaps since start.", nil)
	h.loadFailures = h.reg.Counter("schedinspector_model_load_failures_total",
		"Model reload attempts that failed validation or loading.", nil)
	h.generation = h.reg.Gauge("schedinspector_model_generation",
		"Generation of the served model (1 = boot model, +1 per swap).", nil)
	h.generation.Set(1)
	h.reg.GaugeFunc("schedinspector_inspect_queue_depth",
		"Pending decisions in the decision-wave queue.", nil,
		func() float64 { return float64(len(h.queue)) })
	h.reg.Gauge("schedinspector_inspect_queue_capacity",
		"Capacity of the decision-wave queue.", nil).Set(float64(opts.QueueDepth))
	h.waveSize = h.reg.Histogram("schedinspector_inspect_wave_size",
		"Decisions answered per batched forward.",
		obs.ExponentialBuckets(1, 2, 10), nil)
	h.coalesce = h.reg.Histogram("schedinspector_inspect_coalesce_seconds",
		"Time a decision waited in the queue before its wave was forwarded.",
		obs.ExponentialBuckets(1e-6, 4, 10), nil)
	// Scrape-time quantile gauges over the live wave histograms, through
	// the same estimator the fleet plane uses on parsed expositions — a
	// dashboard reading either surface sees the same number for the same
	// buckets. GaugeFunc evaluates at render, so the gauges cost nothing
	// between scrapes; NaN (empty histogram) renders as NaN, which every
	// Prometheus-compatible consumer treats as absent.
	h.reg.GaugeFunc("schedinspector_inspect_coalesce_seconds_p50",
		"Median queue wait before a decision's wave forwarded (lifetime buckets).", nil,
		func() float64 { return h.coalesce.Quantile(0.5) })
	h.reg.GaugeFunc("schedinspector_inspect_coalesce_seconds_p99",
		"p99 queue wait before a decision's wave forwarded (lifetime buckets).", nil,
		func() float64 { return h.coalesce.Quantile(0.99) })
	h.reg.GaugeFunc("schedinspector_inspect_wave_size_p50",
		"Median decisions answered per batched forward (lifetime buckets).", nil,
		func() float64 { return h.waveSize.Quantile(0.5) })
	h.reg.GaugeFunc("schedinspector_inspect_wave_size_p99",
		"p99 decisions answered per batched forward (lifetime buckets).", nil,
		func() float64 { return h.waveSize.Quantile(0.99) })
	h.auditFailures = h.reg.Counter("schedinspector_audit_write_failures_total",
		"Decision audit log encode/write failures (the decision still serves).", nil)
	h.mux.HandleFunc("/v1/inspect", h.instrument("/v1/inspect", h.inspect))
	h.mux.HandleFunc("/v1/simulate", h.instrument("/v1/simulate", h.simulate))
	h.mux.HandleFunc("/v1/info", h.instrument("/v1/info", h.info))
	h.mux.HandleFunc("/healthz", h.instrument("/healthz", h.info))
	h.mux.HandleFunc("/v1/admin/reload", h.instrument("/v1/admin/reload", h.reload))
	h.mux.HandleFunc("/v1/explain/last", h.instrument("/v1/explain/last", h.explainLast))
	h.mux.HandleFunc("/v1/trace/snapshot", h.instrument("/v1/trace/snapshot", h.traceSnapshot))
	h.mux.Handle("/metrics", h.reg.Handler())
	go h.collect()
	return h
}

// Registry exposes the handler's metrics registry so callers (e.g.
// cmd/inspectord) can add process-level series to the same /metrics page.
func (h *Handler) Registry() *obs.Registry { return h.reg }

// SetAuditSink enables the decision audit log: one JSON line per
// /v1/inspect decision, recording the request, the normalized feature
// vector the model saw, and the verdict. Pass nil to disable.
func (h *Handler) SetAuditSink(w io.Writer) {
	h.auditMu.Lock()
	if w == nil {
		h.audit = nil
	} else {
		h.audit = json.NewEncoder(w)
	}
	h.auditMu.Unlock()
}

// statusWriter captures the response code for the request counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer when it supports streaming, so
// wrapping a route does not silently strip http.Flusher.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a route with a request counter (by status code) and a
// latency histogram.
func (h *Handler) instrument(route string, fn http.HandlerFunc) http.HandlerFunc {
	hist := h.reg.Histogram("schedinspector_http_request_duration_seconds",
		"HTTP request latency by route.", nil, obs.Labels{"route": route})
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		fn(sw, r)
		hist.Observe(time.Since(start).Seconds())
		h.requestCounter(route, sw.code).Inc()
	}
}

// requestCounter lazily creates the requests_total series for route+code
// (codes are not enumerable up front).
func (h *Handler) requestCounter(route string, code int) *obs.Counter {
	key := route + " " + strconv.Itoa(code)
	h.reqMu.Lock()
	defer h.reqMu.Unlock()
	c := h.reqCounts[key]
	if c == nil {
		c = h.reg.Counter("schedinspector_http_requests_total",
			"HTTP requests served, by route and status code.",
			obs.Labels{"route": route, "code": strconv.Itoa(code)})
		h.reqCounts[key] = c
	}
	return c
}

// auditRecord is one line of the decision audit log.
type auditRecord struct {
	Time       string    `json:"time"`
	Request    any       `json:"request"`
	Features   []float64 `json:"features"`
	RejectProb float64   `json:"reject_prob"`
	Reject     bool      `json:"reject"`
}

// recordDecision updates the decision metrics, the explain ring, and (if
// enabled) the audit log. maxRej is the served model's rejection cap,
// read from the same snapshot the decision was computed under. It runs on
// the collector goroutine, before the decision's response is released.
func (h *Handler) recordDecision(req *InspectRequest, feat, logits, probs []float64, action, maxRej int, reject bool) {
	prob := probs[core.ActionReject]
	if reject {
		h.rejects.Inc()
	} else {
		h.accepts.Inc()
	}
	h.probHist.Observe(prob)

	util := 0.0
	if req.TotalProcs > 0 {
		util = 1 - float64(req.FreeProcs)/float64(req.TotalProcs)
	}
	rec := obs.ExplainRecord{
		Seq:  int(h.decSeq.Add(1)) - 1,
		Wait: req.Job.Wait, Procs: req.Job.Procs, Est: req.Job.Est,
		Rejections: req.Rejections, MaxRejections: maxRej,
		QueueLen: len(req.Queue) + 1, FreeProcs: req.FreeProcs,
		TotalProcs: req.TotalProcs, Utilization: util,
		Features: feat, Logits: logits, Probs: probs,
		Action: action, Sampled: true, Rejected: reject,
	}
	h.ring.EmitDecision(&rec) // copies; the explain ring takes ownership below
	h.explains.Record(rec)

	h.auditMu.Lock()
	if h.audit != nil {
		err := h.audit.Encode(auditRecord{
			Time:       time.Now().UTC().Format(time.RFC3339Nano),
			Request:    req,
			Features:   feat,
			RejectProb: prob,
			Reject:     reject,
		})
		if err != nil {
			// The sink tore mid-stream (disk full, closed pipe). The decision
			// still serves; the gap is observable instead of silent.
			h.auditFailures.Inc()
		}
	}
	h.auditMu.Unlock()
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func (h *Handler) inspect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req InspectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if req.Job.Procs <= 0 || req.Job.Est <= 0 || req.TotalProcs <= 0 {
		http.Error(w, "job.procs, job.est and total_procs must be positive", http.StatusBadRequest)
		return
	}
	if req.FreeProcs < 0 || req.FreeProcs > req.TotalProcs {
		http.Error(w, "free_procs out of range", http.StatusBadRequest)
		return
	}

	queue := make([]sim.QueueItem, 0, len(req.Queue))
	for _, q := range req.Queue {
		queue = append(queue, sim.QueueItem{Wait: q.Wait, Est: q.Est, Procs: q.Procs})
	}
	st := sim.NewState(workload.Job{Est: req.Job.Est, Procs: req.Job.Procs},
		req.Job.Wait, req.Rejections, req.FreeProcs, req.TotalProcs,
		req.BackfillEnabled, req.BackfillCount, queue)

	// The forward pass happens on the collector goroutine: enqueue one
	// pending decision and wait for its wave. Under load the wave coalesces
	// many requests into one batched forward; at concurrency 1 it
	// degenerates to a scalar forward plus one channel handoff. By the time
	// the outcome arrives, the decision is already recorded (metrics,
	// explain ring, trace ring, audit log) — see processWave.
	p := h.pendPool.Get().(*pendingDecision)
	p.req, p.state, p.enqueued = &req, st, time.Now()
	if !h.submit(p) {
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}
	out := <-p.done
	p.req, p.state = nil, nil
	h.pendPool.Put(p)
	writeJSON(w, InspectResponse{Reject: out.reject, RejectProb: out.rejectProb})
}

// simulate runs a full what-if schedule over the submitted job sequence by
// driving a live sim.Env: the environment yields at every scheduling
// decision and the served model answers it, exactly as a production
// deployment would. The request's inspector mode picks the decision rule;
// "off" runs the base policy straight through.
func (h *Handler) simulate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req SimulateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if req.MaxProcs <= 0 {
		http.Error(w, "max_procs must be positive", http.StatusBadRequest)
		return
	}
	if len(req.Jobs) == 0 {
		http.Error(w, "jobs must be non-empty", http.StatusBadRequest)
		return
	}
	if req.Policy == "" {
		req.Policy = "SJF"
	}
	pol, err := sched.ByName(req.Policy)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	mode := req.Inspector
	if mode == "" {
		mode = "stochastic"
	}
	switch mode {
	case "stochastic", "greedy", "off":
	default:
		http.Error(w, fmt.Sprintf("unknown inspector mode %q (want stochastic, greedy or off)", mode),
			http.StatusBadRequest)
		return
	}

	jobs := make([]workload.Job, len(req.Jobs))
	for i, j := range req.Jobs {
		jobs[i] = workload.Job{ID: i + 1, Submit: j.Submit, Run: j.Run, Est: j.Est, Procs: j.Procs}
	}
	cfg := sim.Config{
		MaxProcs:     req.MaxProcs,
		Policy:       pol,
		Backfill:     req.Backfill,
		Conservative: req.Conservative,
	}
	if err := sim.ValidateJobs(jobs, req.MaxProcs); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cfg.NoValidate = true

	var res sim.Result
	if mode == "off" {
		// No decisions to answer: the straight-through run never yields.
		if res, err = sim.Run(jobs, cfg); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	} else {
		// Clone from the current snapshot so a long simulation shares no
		// buffers with the live serving path; stochastic mode draws from a
		// request-seeded stream so responses are reproducible.
		clone := h.snap.Load().insp.Clone(rand.New(rand.NewSource(req.Seed)))
		decide := clone.Stochastic()
		if mode == "greedy" {
			decide = clone.Greedy()
		}
		env := sim.NewEnv()
		st, done, err := env.Reset(jobs, cfg)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for !done {
			st, done = env.Step(decide(st))
		}
		res = env.Result()
	}

	sum := res.Summary(req.MaxProcs)
	writeJSON(w, SimulateResponse{
		Jobs:        sum.Jobs,
		Inspections: res.Inspections,
		Rejections:  res.Rejections,
		Backfills:   res.Backfills,
		IdleDelay:   res.IdleDelay,
		AvgBSLD:     sum.AvgBSLD,
		AvgWait:     sum.AvgWait,
		MaxBSLD:     sum.MaxBSLD,
		Util:        sum.Util,
		Makespan:    sum.Makespan,
	})
}

func (h *Handler) info(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	insp := h.snap.Load().insp
	writeJSON(w, InfoResponse{
		FeatureMode: insp.Mode.String(),
		Metric:      insp.Norm.Metric.String(),
		MaxProcs:    insp.Norm.MaxProcs,
		MaxEst:      insp.Norm.MaxEst,
		Params:      insp.Agent.Policy.NumParams(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
