// Package serve exposes a trained SchedInspector model over HTTP/JSON —
// the integration surface a production scheduler (e.g. a Slurm plugin, the
// paper's §7 future-work item) would call at each scheduling point. The
// handler is stateless per request and safe for concurrent use.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"schedinspector/internal/core"
	"schedinspector/internal/obs"
	"schedinspector/internal/sched"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

// InspectRequest is the scheduling context of one decision, mirroring
// sim.State. Times are seconds; processor counts are absolute.
type InspectRequest struct {
	Job struct {
		Wait  float64 `json:"wait"`
		Est   float64 `json:"est"`
		Procs int     `json:"procs"`
	} `json:"job"`
	Rejections      int         `json:"rejections"`
	FreeProcs       int         `json:"free_procs"`
	TotalProcs      int         `json:"total_procs"`
	BackfillEnabled bool        `json:"backfill_enabled"`
	BackfillCount   int         `json:"backfill_count"`
	Queue           []QueueItem `json:"queue"`
}

// QueueItem is one waiting job in the request.
type QueueItem struct {
	Wait  float64 `json:"wait"`
	Est   float64 `json:"est"`
	Procs int     `json:"procs"`
}

// InspectResponse is the inspector's verdict.
type InspectResponse struct {
	Reject     bool    `json:"reject"`      // sampled decision (deployment mode)
	RejectProb float64 `json:"reject_prob"` // the policy's rejection probability
}

// SimulateRequest describes one what-if simulation: a job sequence to
// schedule on a virtual cluster under a base policy, with the served
// inspector optionally second-guessing every scheduling decision.
type SimulateRequest struct {
	// Policy is the base scheduling policy by its Table 3 abbreviation
	// (FCFS, LCFS, SJF, SQF, SAF, SRF, F1). Default SJF.
	Policy       string `json:"policy"`
	Backfill     bool   `json:"backfill"`
	Conservative bool   `json:"conservative"`
	MaxProcs     int    `json:"max_procs"`

	// Inspector selects how the served model drives the decisions:
	// "stochastic" (default) samples the policy distribution, "greedy"
	// takes the argmax, and "off" runs the base policy alone.
	Inspector string `json:"inspector"`
	Seed      int64  `json:"seed"` // RNG seed for stochastic mode

	Jobs []SimJob `json:"jobs"` // sorted by submit time
}

// SimJob is one job of a simulation request. IDs are assigned by arrival
// order (1-based).
type SimJob struct {
	Submit float64 `json:"submit"`
	Run    float64 `json:"run"`
	Est    float64 `json:"est"`
	Procs  int     `json:"procs"`
}

// SimulateResponse summarizes the simulated schedule.
type SimulateResponse struct {
	Jobs        int     `json:"jobs"`
	Inspections int     `json:"inspections"`
	Rejections  int     `json:"rejections"`
	Backfills   int     `json:"backfills"`
	IdleDelay   float64 `json:"idle_delay"`
	AvgBSLD     float64 `json:"avg_bsld"`
	AvgWait     float64 `json:"avg_wait"`
	MaxBSLD     float64 `json:"max_bsld"`
	Util        float64 `json:"util"`
	Makespan    float64 `json:"makespan"`
}

// InfoResponse describes the served model.
type InfoResponse struct {
	FeatureMode string  `json:"feature_mode"`
	Metric      string  `json:"metric"`
	MaxProcs    int     `json:"max_procs"`
	MaxEst      float64 `json:"max_est"`
	Params      int     `json:"policy_params"`
}

// Handler serves one inspector model.
type Handler struct {
	mu   sync.Mutex // the inspector reuses internal buffers
	insp *core.Inspector
	mux  *http.ServeMux

	// Hot reload (see reload.go). reloader is set once before serving;
	// generation counts successful swaps, starting at 1 for the boot model.
	reloadMu sync.Mutex // serializes reloads, NOT held while serving
	reloader func() (*core.Inspector, error)

	// Telemetry.
	reg          *obs.Registry
	reqMu        sync.Mutex
	reqCounts    map[string]*obs.Counter // "route code" -> requests_total series
	latency      map[string]*obs.Histogram
	accepts      *obs.Counter
	rejects      *obs.Counter
	rejRatio     *obs.Gauge
	probHist     *obs.Histogram
	params       *obs.Gauge
	reloads      *obs.Counter
	loadFailures *obs.Counter
	generation   *obs.Gauge

	auditMu sync.Mutex
	audit   *json.Encoder // decision audit log (JSONL), nil unless enabled

	// Per-decision explainability (see explain.go): the last decisions in
	// a bounded ring served over GET /v1/explain/last.
	explains *obs.ExplainRecorder
	decSeq   atomic.Int64 // lifetime decision sequence for explain records

	// Always-on binary flight recorder (see trace.go): every served
	// decision is also encoded into the arena-backed trace ring, dumped
	// over GET /v1/trace/snapshot and optionally streamed to a .ftrace
	// sink. The ring has its own lock; the serving path never holds h.mu
	// while emitting.
	ring *obs.TraceRing
}

// NewHandler wraps the inspector in an http.Handler with routes
// POST /v1/inspect, POST /v1/simulate, GET /v1/info (also served at
// /healthz) and GET /metrics (Prometheus text exposition).
func NewHandler(insp *core.Inspector) *Handler {
	h := &Handler{
		insp:      insp,
		mux:       http.NewServeMux(),
		reg:       obs.NewRegistry(),
		reqCounts: make(map[string]*obs.Counter),
		latency:   make(map[string]*obs.Histogram),
		explains:  obs.NewExplainRecorder(DefaultServeExplainCap),
		ring:      obs.NewTraceRing(0, 0),
	}
	h.ring.Instrument(h.reg)
	h.explains.SetMeta(insp.Mode.FeatureNames(), insp.Mode.String(), insp.Norm.MaxRejections)
	h.ring.SetMeta(insp.Mode.FeatureNames(), insp.Mode.String(), insp.Norm.MaxRejections)
	h.accepts = h.reg.Counter("schedinspector_inspect_decisions_total",
		"Inspection verdicts served, by outcome.", obs.Labels{"verdict": "accept"})
	h.rejects = h.reg.Counter("schedinspector_inspect_decisions_total",
		"Inspection verdicts served, by outcome.", obs.Labels{"verdict": "reject"})
	h.rejRatio = h.reg.Gauge("schedinspector_inspect_reject_ratio",
		"Fraction of served decisions that rejected (lifetime).", nil)
	h.probHist = h.reg.Histogram("schedinspector_inspect_reject_prob",
		"Distribution of the policy's rejection probability.",
		obs.LinearBuckets(0.1, 0.1, 9), nil)
	h.params = h.reg.Gauge("schedinspector_model_params",
		"Parameters of the served policy network.", nil)
	h.params.Set(float64(insp.Agent.Policy.NumParams()))
	h.reloads = h.reg.Counter("schedinspector_model_reloads_total",
		"Successful model hot-swaps since start.", nil)
	h.loadFailures = h.reg.Counter("schedinspector_model_load_failures_total",
		"Model reload attempts that failed validation or loading.", nil)
	h.generation = h.reg.Gauge("schedinspector_model_generation",
		"Generation of the served model (1 = boot model, +1 per swap).", nil)
	h.generation.Set(1)
	h.mux.HandleFunc("/v1/inspect", h.instrument("/v1/inspect", h.inspect))
	h.mux.HandleFunc("/v1/simulate", h.instrument("/v1/simulate", h.simulate))
	h.mux.HandleFunc("/v1/info", h.instrument("/v1/info", h.info))
	h.mux.HandleFunc("/healthz", h.instrument("/healthz", h.info))
	h.mux.HandleFunc("/v1/admin/reload", h.instrument("/v1/admin/reload", h.reload))
	h.mux.HandleFunc("/v1/explain/last", h.instrument("/v1/explain/last", h.explainLast))
	h.mux.HandleFunc("/v1/trace/snapshot", h.instrument("/v1/trace/snapshot", h.traceSnapshot))
	h.mux.Handle("/metrics", h.reg.Handler())
	return h
}

// Registry exposes the handler's metrics registry so callers (e.g.
// cmd/inspectord) can add process-level series to the same /metrics page.
func (h *Handler) Registry() *obs.Registry { return h.reg }

// SetAuditSink enables the decision audit log: one JSON line per
// /v1/inspect decision, recording the request, the normalized feature
// vector the model saw, and the verdict. Pass nil to disable.
func (h *Handler) SetAuditSink(w io.Writer) {
	h.auditMu.Lock()
	if w == nil {
		h.audit = nil
	} else {
		h.audit = json.NewEncoder(w)
	}
	h.auditMu.Unlock()
}

// statusWriter captures the response code for the request counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a route with a request counter (by status code) and a
// latency histogram.
func (h *Handler) instrument(route string, fn http.HandlerFunc) http.HandlerFunc {
	hist := h.reg.Histogram("schedinspector_http_request_duration_seconds",
		"HTTP request latency by route.", nil, obs.Labels{"route": route})
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		fn(sw, r)
		hist.Observe(time.Since(start).Seconds())
		h.requestCounter(route, sw.code).Inc()
	}
}

// requestCounter lazily creates the requests_total series for route+code
// (codes are not enumerable up front).
func (h *Handler) requestCounter(route string, code int) *obs.Counter {
	key := route + " " + strconv.Itoa(code)
	h.reqMu.Lock()
	defer h.reqMu.Unlock()
	c := h.reqCounts[key]
	if c == nil {
		c = h.reg.Counter("schedinspector_http_requests_total",
			"HTTP requests served, by route and status code.",
			obs.Labels{"route": route, "code": strconv.Itoa(code)})
		h.reqCounts[key] = c
	}
	return c
}

// auditRecord is one line of the decision audit log.
type auditRecord struct {
	Time       string    `json:"time"`
	Request    any       `json:"request"`
	Features   []float64 `json:"features"`
	RejectProb float64   `json:"reject_prob"`
	Reject     bool      `json:"reject"`
}

// recordDecision updates the decision metrics, the explain ring, and (if
// enabled) the audit log. maxRej is the served model's rejection cap,
// captured under the model lock by the caller.
func (h *Handler) recordDecision(req *InspectRequest, feat, logits, probs []float64, action, maxRej int, reject bool) {
	prob := probs[core.ActionReject]
	if reject {
		h.rejects.Inc()
	} else {
		h.accepts.Inc()
	}
	total := h.accepts.Value() + h.rejects.Value()
	h.rejRatio.Set(h.rejects.Value() / total)
	h.probHist.Observe(prob)

	util := 0.0
	if req.TotalProcs > 0 {
		util = 1 - float64(req.FreeProcs)/float64(req.TotalProcs)
	}
	rec := obs.ExplainRecord{
		Seq:  int(h.decSeq.Add(1)) - 1,
		Wait: req.Job.Wait, Procs: req.Job.Procs, Est: req.Job.Est,
		Rejections: req.Rejections, MaxRejections: maxRej,
		QueueLen: len(req.Queue) + 1, FreeProcs: req.FreeProcs,
		TotalProcs: req.TotalProcs, Utilization: util,
		Features: feat, Logits: logits, Probs: probs,
		Action: action, Sampled: true, Rejected: reject,
	}
	h.ring.EmitDecision(&rec) // copies; the explain ring takes ownership below
	h.explains.Record(rec)

	h.auditMu.Lock()
	if h.audit != nil {
		h.audit.Encode(auditRecord{
			Time:       time.Now().UTC().Format(time.RFC3339Nano),
			Request:    req,
			Features:   feat,
			RejectProb: prob,
			Reject:     reject,
		})
	}
	h.auditMu.Unlock()
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func (h *Handler) inspect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req InspectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if req.Job.Procs <= 0 || req.Job.Est <= 0 || req.TotalProcs <= 0 {
		http.Error(w, "job.procs, job.est and total_procs must be positive", http.StatusBadRequest)
		return
	}
	if req.FreeProcs < 0 || req.FreeProcs > req.TotalProcs {
		http.Error(w, "free_procs out of range", http.StatusBadRequest)
		return
	}

	queue := make([]sim.QueueItem, 0, len(req.Queue))
	for _, q := range req.Queue {
		queue = append(queue, sim.QueueItem{Wait: q.Wait, Est: q.Est, Procs: q.Procs})
	}
	st := sim.NewState(workload.Job{Est: req.Job.Est, Procs: req.Job.Procs},
		req.Job.Wait, req.Rejections, req.FreeProcs, req.TotalProcs,
		req.BackfillEnabled, req.BackfillCount, queue)

	// One forward pass and exactly one RNG draw per request: Explain
	// samples through the same kernel Stochastic does and exports the
	// features, logits and probabilities the explain ring and audit log
	// record — the previous RejectProb+Stochastic pair forwarded twice for
	// the same numbers.
	h.mu.Lock()
	action, feat, logits, probs := h.insp.Explain(st, false)
	maxRej := h.insp.Norm.MaxRejections
	h.mu.Unlock()
	reject := action == core.ActionReject

	h.recordDecision(&req, feat, logits, probs, action, maxRej, reject)
	writeJSON(w, InspectResponse{Reject: reject, RejectProb: probs[core.ActionReject]})
}

// simulate runs a full what-if schedule over the submitted job sequence by
// driving a live sim.Env: the environment yields at every scheduling
// decision and the served model answers it, exactly as a production
// deployment would. The request's inspector mode picks the decision rule;
// "off" runs the base policy straight through.
func (h *Handler) simulate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req SimulateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if req.MaxProcs <= 0 {
		http.Error(w, "max_procs must be positive", http.StatusBadRequest)
		return
	}
	if len(req.Jobs) == 0 {
		http.Error(w, "jobs must be non-empty", http.StatusBadRequest)
		return
	}
	if req.Policy == "" {
		req.Policy = "SJF"
	}
	pol, err := sched.ByName(req.Policy)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	mode := req.Inspector
	if mode == "" {
		mode = "stochastic"
	}
	switch mode {
	case "stochastic", "greedy", "off":
	default:
		http.Error(w, fmt.Sprintf("unknown inspector mode %q (want stochastic, greedy or off)", mode),
			http.StatusBadRequest)
		return
	}

	jobs := make([]workload.Job, len(req.Jobs))
	for i, j := range req.Jobs {
		jobs[i] = workload.Job{ID: i + 1, Submit: j.Submit, Run: j.Run, Est: j.Est, Procs: j.Procs}
	}
	cfg := sim.Config{
		MaxProcs:     req.MaxProcs,
		Policy:       pol,
		Backfill:     req.Backfill,
		Conservative: req.Conservative,
	}
	if err := sim.ValidateJobs(jobs, req.MaxProcs); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cfg.NoValidate = true

	var res sim.Result
	if mode == "off" {
		// No decisions to answer: the straight-through run never yields.
		if res, err = sim.Run(jobs, cfg); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	} else {
		// Snapshot the model so a long simulation does not hold the
		// /v1/inspect path's lock; stochastic mode draws from a
		// request-seeded stream so responses are reproducible.
		h.mu.Lock()
		snap := h.insp.Clone(rand.New(rand.NewSource(req.Seed)))
		h.mu.Unlock()
		decide := snap.Stochastic()
		if mode == "greedy" {
			decide = snap.Greedy()
		}
		env := sim.NewEnv()
		st, done, err := env.Reset(jobs, cfg)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for !done {
			st, done = env.Step(decide(st))
		}
		res = env.Result()
	}

	sum := res.Summary(req.MaxProcs)
	writeJSON(w, SimulateResponse{
		Jobs:        sum.Jobs,
		Inspections: res.Inspections,
		Rejections:  res.Rejections,
		Backfills:   res.Backfills,
		IdleDelay:   res.IdleDelay,
		AvgBSLD:     sum.AvgBSLD,
		AvgWait:     sum.AvgWait,
		MaxBSLD:     sum.MaxBSLD,
		Util:        sum.Util,
		Makespan:    sum.Makespan,
	})
}

func (h *Handler) info(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	h.mu.Lock()
	resp := InfoResponse{
		FeatureMode: h.insp.Mode.String(),
		Metric:      h.insp.Norm.Metric.String(),
		MaxProcs:    h.insp.Norm.MaxProcs,
		MaxEst:      h.insp.Norm.MaxEst,
		Params:      h.insp.Agent.Policy.NumParams(),
	}
	h.mu.Unlock()
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
