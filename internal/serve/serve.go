// Package serve exposes a trained SchedInspector model over HTTP/JSON —
// the integration surface a production scheduler (e.g. a Slurm plugin, the
// paper's §7 future-work item) would call at each scheduling point. The
// handler is stateless per request and safe for concurrent use.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"schedinspector/internal/core"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

// InspectRequest is the scheduling context of one decision, mirroring
// sim.State. Times are seconds; processor counts are absolute.
type InspectRequest struct {
	Job struct {
		Wait  float64 `json:"wait"`
		Est   float64 `json:"est"`
		Procs int     `json:"procs"`
	} `json:"job"`
	Rejections      int         `json:"rejections"`
	FreeProcs       int         `json:"free_procs"`
	TotalProcs      int         `json:"total_procs"`
	BackfillEnabled bool        `json:"backfill_enabled"`
	BackfillCount   int         `json:"backfill_count"`
	Queue           []QueueItem `json:"queue"`
}

// QueueItem is one waiting job in the request.
type QueueItem struct {
	Wait  float64 `json:"wait"`
	Est   float64 `json:"est"`
	Procs int     `json:"procs"`
}

// InspectResponse is the inspector's verdict.
type InspectResponse struct {
	Reject     bool    `json:"reject"`      // sampled decision (deployment mode)
	RejectProb float64 `json:"reject_prob"` // the policy's rejection probability
}

// InfoResponse describes the served model.
type InfoResponse struct {
	FeatureMode string  `json:"feature_mode"`
	Metric      string  `json:"metric"`
	MaxProcs    int     `json:"max_procs"`
	MaxEst      float64 `json:"max_est"`
	Params      int     `json:"policy_params"`
}

// Handler serves one inspector model.
type Handler struct {
	mu   sync.Mutex // the inspector reuses internal buffers
	insp *core.Inspector
	mux  *http.ServeMux
}

// NewHandler wraps the inspector in an http.Handler with routes
// POST /v1/inspect and GET /v1/info (also served at /healthz).
func NewHandler(insp *core.Inspector) *Handler {
	h := &Handler{insp: insp, mux: http.NewServeMux()}
	h.mux.HandleFunc("/v1/inspect", h.inspect)
	h.mux.HandleFunc("/v1/info", h.info)
	h.mux.HandleFunc("/healthz", h.info)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func (h *Handler) inspect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req InspectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if req.Job.Procs <= 0 || req.Job.Est <= 0 || req.TotalProcs <= 0 {
		http.Error(w, "job.procs, job.est and total_procs must be positive", http.StatusBadRequest)
		return
	}
	if req.FreeProcs < 0 || req.FreeProcs > req.TotalProcs {
		http.Error(w, "free_procs out of range", http.StatusBadRequest)
		return
	}

	st := &sim.State{
		Job:             workload.Job{Est: req.Job.Est, Procs: req.Job.Procs},
		JobWait:         req.Job.Wait,
		Rejections:      req.Rejections,
		FreeProcs:       req.FreeProcs,
		TotalProcs:      req.TotalProcs,
		Runnable:        req.Job.Procs <= req.FreeProcs,
		BackfillEnabled: req.BackfillEnabled,
		BackfillCount:   req.BackfillCount,
	}
	for _, q := range req.Queue {
		st.Queue = append(st.Queue, sim.QueueItem{Wait: q.Wait, Est: q.Est, Procs: q.Procs})
	}

	h.mu.Lock()
	prob := h.insp.RejectProb(st)
	reject := h.insp.Stochastic()(st)
	h.mu.Unlock()

	writeJSON(w, InspectResponse{Reject: reject, RejectProb: prob})
}

func (h *Handler) info(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	h.mu.Lock()
	resp := InfoResponse{
		FeatureMode: h.insp.Mode.String(),
		Metric:      h.insp.Norm.Metric.String(),
		MaxProcs:    h.insp.Norm.MaxProcs,
		MaxEst:      h.insp.Norm.MaxEst,
		Params:      h.insp.Agent.Policy.NumParams(),
	}
	h.mu.Unlock()
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
