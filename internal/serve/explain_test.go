package serve

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"schedinspector/internal/core"
	"schedinspector/internal/metrics"
	"schedinspector/internal/workload"
)

func getExplain(t *testing.T, h http.Handler, query string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/explain/last"+query, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestExplainLastEmpty(t *testing.T) {
	h := testHandler(t)
	rec := getExplain(t, h, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp ExplainLastResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != 0 || len(resp.Records) != 0 {
		t.Errorf("fresh handler: total %d, %d records", resp.Total, len(resp.Records))
	}
	if resp.Records == nil {
		t.Error("records should serialize as [], not null")
	}
	if len(resp.FeatureNames) != core.ManualFeatures.Dim() {
		t.Errorf("feature names %v, want %d manual names", resp.FeatureNames, core.ManualFeatures.Dim())
	}
}

func TestExplainLastAfterInspects(t *testing.T) {
	h := testHandler(t)
	const n = 5
	for i := 0; i < n; i++ {
		if rec := postInspect(t, h, validRequest()); rec.Code != http.StatusOK {
			t.Fatalf("inspect %d: status %d", i, rec.Code)
		}
	}
	rec := getExplain(t, h, "?n=3")
	var resp ExplainLastResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != n {
		t.Errorf("total %d, want %d", resp.Total, n)
	}
	if len(resp.Records) != 3 {
		t.Fatalf("got %d records, want 3", len(resp.Records))
	}
	// Records come back oldest-first; the seq counter pins the order.
	for i, r := range resp.Records {
		if want := n - 3 + i; r.Seq != want {
			t.Errorf("record %d: seq %d, want %d", i, r.Seq, want)
		}
		if len(r.Features) != core.ManualFeatures.Dim() {
			t.Errorf("record %d: %d features", i, len(r.Features))
		}
		if len(r.Probs) != 2 || len(r.Logits) != 2 {
			t.Errorf("record %d: logits/probs lengths %d/%d", i, len(r.Logits), len(r.Probs))
		}
		if !r.Sampled {
			t.Errorf("record %d: served decisions are sampled", i)
		}
		if r.Rejected != (r.Action == core.ActionReject) {
			t.Errorf("record %d: rejected flag disagrees with action", i)
		}
		if r.JobID != 0 || r.Wait != 120 || r.Procs != 16 {
			t.Errorf("record %d: job fields %d/%v/%d", i, r.JobID, r.Wait, r.Procs)
		}
		if r.QueueLen != 2 { // the job under inspection plus one queued peer
			t.Errorf("record %d: queue len %d", i, r.QueueLen)
		}
	}
}

func TestExplainLastValidation(t *testing.T) {
	h := testHandler(t)
	if rec := getExplain(t, h, "?n=0"); rec.Code != http.StatusBadRequest {
		t.Errorf("n=0: status %d, want 400", rec.Code)
	}
	if rec := getExplain(t, h, "?n=-2"); rec.Code != http.StatusBadRequest {
		t.Errorf("n=-2: status %d, want 400", rec.Code)
	}
	if rec := getExplain(t, h, "?n=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("n=bogus: status %d, want 400", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/explain/last", strings.NewReader("{}"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d, want 405", rec.Code)
	}
}

func TestSwapRefreshesExplainMeta(t *testing.T) {
	h := testHandler(t)
	tr := workload.SDSCSP2Like(500, 3)
	repl := core.NewInspector(rand.New(rand.NewSource(2)), core.CompactedFeatures,
		core.NormalizerForTrace(tr, metrics.BSLD), nil)
	h.Swap(repl)
	var resp ExplainLastResponse
	rec := getExplain(t, h, "")
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.FeatureNames) != core.CompactedFeatures.Dim() {
		t.Errorf("after swap: %d feature names, want %d", len(resp.FeatureNames), core.CompactedFeatures.Dim())
	}
}

func TestRotatingWriter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	w, err := NewRotatingWriter(path, 34)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	line := []byte("0123456789\n") // 11 bytes
	for i := 0; i < 5; i++ {
		if _, err := w.Write(line); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// 3 lines fit under 34 bytes; the 4th write rotates. Current file holds
	// lines 4-5, the .1 generation holds 1-3.
	cur, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatal(err)
	}
	if len(cur) != 2*len(line) {
		t.Errorf("current file %d bytes, want %d", len(cur), 2*len(line))
	}
	if len(prev) != 3*len(line) {
		t.Errorf("rotated file %d bytes, want %d", len(prev), 3*len(line))
	}
}

func TestRotatingWriterOversizedWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	w, err := NewRotatingWriter(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	big := []byte("this single line exceeds the bound\n")
	if _, err := w.Write([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(big); err != nil {
		t.Fatal(err)
	}
	cur, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(cur) != string(big) {
		t.Errorf("oversized write split across rotation: %q", cur)
	}
}

func TestRotatingWriterUnbounded(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	w, err := NewRotatingWriter(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 100; i++ {
		if _, err := w.Write([]byte("xxxxxxxxxx\n")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Errorf("maxBytes=0 must never rotate, found %s.1", path)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 100*11 {
		t.Errorf("file size %d, want 1100", st.Size())
	}
}

func TestRotatingWriterClosed(t *testing.T) {
	dir := t.TempDir()
	w, err := NewRotatingWriter(filepath.Join(dir, "a.log"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("write after Close should fail")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}
