package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"schedinspector/internal/core"
	"schedinspector/internal/metrics"
	"schedinspector/internal/sched"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

func testHandler(t *testing.T) *Handler {
	t.Helper()
	tr := workload.SDSCSP2Like(500, 3)
	insp := core.NewInspector(rand.New(rand.NewSource(1)), core.ManualFeatures,
		core.NormalizerForTrace(tr, metrics.BSLD), nil)
	return NewHandler(insp)
}

func validRequest() InspectRequest {
	var req InspectRequest
	req.Job.Wait = 120
	req.Job.Est = 3600
	req.Job.Procs = 16
	req.FreeProcs = 32
	req.TotalProcs = 128
	req.Queue = []QueueItem{{Wait: 60, Est: 600, Procs: 4}}
	return req
}

func postInspect(t *testing.T, h http.Handler, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if s, ok := body.(string); ok {
		buf.WriteString(s)
	} else if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/inspect", &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestInspectEndpoint(t *testing.T) {
	h := testHandler(t)
	rec := postInspect(t, h, validRequest())
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp InspectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.RejectProb < 0 || resp.RejectProb > 1 {
		t.Errorf("reject prob %v", resp.RejectProb)
	}
}

func TestInspectSamplesPolicy(t *testing.T) {
	h := testHandler(t)
	req := validRequest()
	rejects := 0
	var prob float64
	const n = 400
	for i := 0; i < n; i++ {
		rec := postInspect(t, h, req)
		var resp InspectResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		prob = resp.RejectProb
		if resp.Reject {
			rejects++
		}
	}
	emp := float64(rejects) / n
	if diff := emp - prob; diff > 0.1 || diff < -0.1 {
		t.Errorf("empirical reject rate %.2f vs policy prob %.2f", emp, prob)
	}
}

func TestInspectValidation(t *testing.T) {
	h := testHandler(t)
	cases := []struct {
		name string
		mut  func(*InspectRequest)
	}{
		{"zero procs", func(r *InspectRequest) { r.Job.Procs = 0 }},
		{"zero est", func(r *InspectRequest) { r.Job.Est = 0 }},
		{"zero total", func(r *InspectRequest) { r.TotalProcs = 0 }},
		{"negative free", func(r *InspectRequest) { r.FreeProcs = -1 }},
		{"free over total", func(r *InspectRequest) { r.FreeProcs = 999 }},
	}
	for _, c := range cases {
		req := validRequest()
		c.mut(&req)
		if rec := postInspect(t, h, req); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, rec.Code)
		}
	}
	if rec := postInspect(t, h, "{not json"); rec.Code != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", rec.Code)
	}
	// wrong method
	req := httptest.NewRequest(http.MethodGet, "/v1/inspect", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET inspect: status %d, want 405", rec.Code)
	}
}

func validSimRequest() SimulateRequest {
	return SimulateRequest{
		Policy:   "SJF",
		Backfill: true,
		MaxProcs: 64,
		Jobs: []SimJob{
			{Submit: 0, Run: 600, Est: 900, Procs: 48},
			{Submit: 10, Run: 300, Est: 400, Procs: 32},
			{Submit: 20, Run: 100, Est: 120, Procs: 8},
			{Submit: 30, Run: 900, Est: 1000, Procs: 16},
			{Submit: 40, Run: 50, Est: 60, Procs: 4},
		},
	}
}

func postSimulate(t *testing.T, h http.Handler, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if s, ok := body.(string); ok {
		buf.WriteString(s)
	} else if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeSimulate(t *testing.T, rec *httptest.ResponseRecorder) SimulateResponse {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSimulateOffMatchesSimRun(t *testing.T) {
	h := testHandler(t)
	req := validSimRequest()
	req.Inspector = "off"
	resp := decodeSimulate(t, postSimulate(t, h, req))

	jobs := make([]workload.Job, len(req.Jobs))
	for i, j := range req.Jobs {
		jobs[i] = workload.Job{ID: i + 1, Submit: j.Submit, Run: j.Run, Est: j.Est, Procs: j.Procs}
	}
	res, err := sim.Run(jobs, sim.Config{MaxProcs: req.MaxProcs, Policy: sched.SJF(), Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary(req.MaxProcs)
	if resp.Jobs != sum.Jobs || resp.AvgBSLD != sum.AvgBSLD || resp.AvgWait != sum.AvgWait ||
		resp.Util != sum.Util || resp.Makespan != sum.Makespan || resp.Backfills != res.Backfills {
		t.Errorf("off-mode response %+v does not match direct run %+v / %+v", resp, sum, res)
	}
	if resp.Inspections != 0 || resp.Rejections != 0 {
		t.Errorf("off mode consulted the inspector: %+v", resp)
	}
}

func TestSimulateInspectorModes(t *testing.T) {
	h := testHandler(t)
	for _, mode := range []string{"stochastic", "greedy"} {
		req := validSimRequest()
		req.Inspector = mode
		req.Seed = 7
		resp := decodeSimulate(t, postSimulate(t, h, req))
		if resp.Jobs != len(req.Jobs) {
			t.Errorf("%s: scheduled %d of %d jobs", mode, resp.Jobs, len(req.Jobs))
		}
		if resp.Inspections == 0 {
			t.Errorf("%s: inspector never consulted", mode)
		}
		if resp.Rejections > resp.Inspections {
			t.Errorf("%s: rejections %d > inspections %d", mode, resp.Rejections, resp.Inspections)
		}
		// Identical request, identical seed: the response must reproduce.
		again := decodeSimulate(t, postSimulate(t, h, req))
		if again != resp {
			t.Errorf("%s: responses diverged across identical requests:\n%+v\n%+v", mode, resp, again)
		}
	}
	// Default mode is stochastic with seed 0 — still reproducible.
	req := validSimRequest()
	a := decodeSimulate(t, postSimulate(t, h, req))
	b := decodeSimulate(t, postSimulate(t, h, req))
	if a != b {
		t.Errorf("default mode not reproducible:\n%+v\n%+v", a, b)
	}
}

func TestSimulateValidation(t *testing.T) {
	h := testHandler(t)
	cases := []struct {
		name string
		mut  func(*SimulateRequest)
	}{
		{"zero max_procs", func(r *SimulateRequest) { r.MaxProcs = 0 }},
		{"no jobs", func(r *SimulateRequest) { r.Jobs = nil }},
		{"unknown policy", func(r *SimulateRequest) { r.Policy = "LOTTERY" }},
		{"unknown mode", func(r *SimulateRequest) { r.Inspector = "maybe" }},
		{"oversized job", func(r *SimulateRequest) { r.Jobs[0].Procs = r.MaxProcs + 1 }},
		{"zero procs", func(r *SimulateRequest) { r.Jobs[0].Procs = 0 }},
		{"unsorted submits", func(r *SimulateRequest) { r.Jobs[0].Submit = 999 }},
	}
	for _, c := range cases {
		req := validSimRequest()
		c.mut(&req)
		if rec := postSimulate(t, h, req); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, rec.Code)
		}
	}
	if rec := postSimulate(t, h, "{not json"); rec.Code != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/simulate", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET simulate: status %d, want 405", rec.Code)
	}
}

func TestInfoEndpoint(t *testing.T) {
	h := testHandler(t)
	for _, path := range []string{"/v1/info", "/healthz"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", path, rec.Code)
		}
		var info InfoResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
			t.Fatal(err)
		}
		if info.FeatureMode != "manual" || info.Metric != "bsld" {
			t.Errorf("%s: info %+v", path, info)
		}
		if info.MaxProcs != 128 || info.Params == 0 {
			t.Errorf("%s: info %+v", path, info)
		}
	}
	rec := postInspect(t, h, validRequest())
	if rec.Code != http.StatusOK {
		t.Fatal("inspect broken after info")
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/info", strings.NewReader("{}"))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST info: status %d, want 405", rr.Code)
	}
}

func TestConcurrentInspect(t *testing.T) {
	h := testHandler(t)
	srv := httptest.NewServer(h)
	defer srv.Close()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			var buf bytes.Buffer
			json.NewEncoder(&buf).Encode(validRequest())
			body := buf.Bytes()
			for i := 0; i < 50; i++ {
				resp, err := http.Post(srv.URL+"/v1/inspect", "application/json", bytes.NewReader(body))
				if err != nil {
					done <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
