package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"schedinspector/internal/core"
	"schedinspector/internal/metrics"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

// equivInspector builds a deterministic inspector: the same seed yields
// identical weights AND an identical sampling stream, so two instances can
// serve as a batched path and its scalar reference.
func equivInspector(seed int64, mode core.FeatureMode) *core.Inspector {
	tr := workload.SDSCSP2Like(500, 3)
	return core.NewInspector(rand.New(rand.NewSource(seed)), mode,
		core.NormalizerForTrace(tr, metrics.BSLD), nil)
}

// waveRequest varies the scheduling context per index so a wave exercises
// distinct feature vectors.
func waveRequest(i int) InspectRequest {
	var req InspectRequest
	req.Job.Wait = 30 + float64(i%11)*45
	req.Job.Est = 300 + float64(i%7)*700
	req.Job.Procs = 1 + i%24
	req.Rejections = i % 4
	req.FreeProcs = (i * 13) % 129
	req.TotalProcs = 128
	req.BackfillEnabled = i%2 == 0
	req.BackfillCount = i % 3
	for q := 0; q < i%5; q++ {
		req.Queue = append(req.Queue, QueueItem{
			Wait: float64(10 * (q + 1)), Est: float64(100 * (q + 1)), Procs: q + 1,
		})
	}
	return req
}

func waveState(req *InspectRequest) *sim.State {
	queue := make([]sim.QueueItem, 0, len(req.Queue))
	for _, q := range req.Queue {
		queue = append(queue, sim.QueueItem{Wait: q.Wait, Est: q.Est, Procs: q.Procs})
	}
	return sim.NewState(workload.Job{Est: req.Job.Est, Procs: req.Job.Procs},
		req.Job.Wait, req.Rejections, req.FreeProcs, req.TotalProcs,
		req.BackfillEnabled, req.BackfillCount, queue)
}

// TestWaveEquivScalar is the batched-vs-scalar golden test at the serving
// layer: a wave of N pending decisions answered by one processWave call
// must produce outcomes and explain records identical to N sequential
// scalar Explain calls on a reference inspector with the same seed —
// features, logits, probabilities, sampled actions, and the RNG stream
// they consumed.
func TestWaveEquivScalar(t *testing.T) {
	for _, waveSize := range []int{1, 7, DefaultMaxWave} {
		t.Run(strconv.Itoa(waveSize), func(t *testing.T) {
			h := NewHandlerOptions(equivInspector(5, core.ManualFeatures), Options{})
			h.Close() // stop the collector; the test drives waves by hand
			ref := equivInspector(5, core.ManualFeatures)

			wave := make([]*pendingDecision, waveSize)
			reqs := make([]InspectRequest, waveSize)
			for i := range wave {
				reqs[i] = waveRequest(i)
				wave[i] = &pendingDecision{
					req:   &reqs[i],
					state: waveState(&reqs[i]),
					done:  make(chan inspectOutcome, 1),
				}
			}
			states := make([]*sim.State, waveSize)
			outs := make([]core.ExplainOut, waveSize)
			h.processWave(wave, states, outs)

			recs := h.explains.Records()
			if len(recs) != waveSize {
				t.Fatalf("recorded %d explain records, want %d", len(recs), waveSize)
			}
			for i, p := range wave {
				action, feat, logits, probs := ref.Explain(waveState(&reqs[i]), false)
				out := <-p.done
				wantReject := action == core.ActionReject
				if out.reject != wantReject || out.rejectProb != probs[core.ActionReject] {
					t.Fatalf("row %d: outcome (%v, %v), scalar (%v, %v)",
						i, out.reject, out.rejectProb, wantReject, probs[core.ActionReject])
				}
				rec := recs[i]
				if !reflect.DeepEqual(rec.Features, feat) ||
					!reflect.DeepEqual(rec.Logits, logits) ||
					!reflect.DeepEqual(rec.Probs, probs) || rec.Action != action {
					t.Fatalf("row %d: explain record diverges from scalar:\nbatch  %+v\nscalar action=%d feat=%v logits=%v probs=%v",
						i, rec, action, feat, logits, probs)
				}
				if rec.Seq != i {
					t.Errorf("row %d: seq %d", i, rec.Seq)
				}
			}
		})
	}
}

// TestInspectEquivScalarHTTP pins byte-identical responses at the HTTP
// boundary: sequential requests against the batched handler (every wave
// has size 1) must produce exactly the JSON bodies a scalar reference
// inspector predicts.
func TestInspectEquivScalarHTTP(t *testing.T) {
	h := NewHandlerOptions(equivInspector(11, core.ManualFeatures), Options{})
	defer h.Close()
	ref := equivInspector(11, core.ManualFeatures)

	for i := 0; i < 25; i++ {
		req := waveRequest(i)
		rec := postInspect(t, h, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, rec.Code, rec.Body)
		}
		action, _, _, probs := ref.Explain(waveState(&req), false)
		want, err := json.Marshal(InspectResponse{
			Reject:     action == core.ActionReject,
			RejectProb: probs[core.ActionReject],
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := rec.Body.String(); got != string(want)+"\n" {
			t.Fatalf("request %d: body %q, scalar predicts %q", i, got, want)
		}
	}
}

// TestReloadMetaTearRegression reloads across feature modes (8-feature
// manual vs 5-feature compacted) while clients hammer /v1/inspect, then
// checks the explain JSONL sink: every decision line must decode against
// the most recent preceding header. Before swaps were serialized through
// the collector, Swap updated the recorder meta after publishing the
// model, so a concurrent decision could land an 8-feature record under a
// 5-feature header (and vice versa). Run under -race by the Makefile race
// target.
func TestReloadMetaTearRegression(t *testing.T) {
	manual := equivInspector(1, core.ManualFeatures)
	compact := equivInspector(2, core.CompactedFeatures)
	h := NewHandlerOptions(manual, Options{})
	defer h.Close()
	var sink bytes.Buffer
	h.explains.SetSink(&sink)

	const clients = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if rec := postInspect(t, h, waveRequest(c*31+i)); rec.Code != http.StatusOK {
					t.Errorf("inspect status %d: %s", rec.Code, rec.Body)
					return
				}
			}
		}(c)
	}
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			h.Swap(compact)
		} else {
			h.Swap(manual)
		}
	}
	close(stop)
	wg.Wait()
	if err := h.explains.SinkErr(); err != nil {
		t.Fatal(err)
	}

	headers, decisions, curFeatures := 0, 0, -1
	sc := bufio.NewScanner(bytes.NewReader(sink.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		switch probe.Kind {
		case "explain_header":
			var hdr struct {
				Features []string `json:"features"`
			}
			if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
				t.Fatal(err)
			}
			curFeatures = len(hdr.Features)
			headers++
		case "decision":
			var dec struct {
				Features []float64 `json:"features"`
			}
			if err := json.Unmarshal(sc.Bytes(), &dec); err != nil {
				t.Fatal(err)
			}
			if len(dec.Features) != curFeatures {
				t.Fatalf("decision %d carries %d features under a %d-feature header",
					decisions, len(dec.Features), curFeatures)
			}
			decisions++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if headers < 2 {
		t.Errorf("stream holds %d headers across 50 mode-changing swaps, want >= 2", headers)
	}
	if decisions == 0 {
		t.Error("no decisions recorded under load")
	}

	page := metricsPage(t, h)
	if !strings.Contains(page, "schedinspector_model_reloads_total 50") {
		t.Errorf("swap count: %s", pageLine(page, "schedinspector_model_reloads_total"))
	}
}

// failAfterWriter accepts the first ok writes, then fails forever —
// an audit sink tearing mid-stream (disk full, closed pipe).
type failAfterWriter struct {
	mu sync.Mutex
	ok int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ok <= 0 {
		return 0, errors.New("audit sink torn")
	}
	w.ok--
	return len(p), nil
}

// TestAuditWriteFailureMidStream pins satellite behavior: when the audit
// sink starts failing mid-stream, decisions keep serving and every dropped
// line is counted instead of vanishing silently.
func TestAuditWriteFailureMidStream(t *testing.T) {
	h := testHandler(t)
	defer h.Close()
	h.SetAuditSink(&failAfterWriter{ok: 3})

	const n = 10
	for i := 0; i < n; i++ {
		if rec := postInspect(t, h, validRequest()); rec.Code != http.StatusOK {
			t.Fatalf("inspect %d failed once the audit sink tore: status %d", i, rec.Code)
		}
	}
	page := metricsPage(t, h)
	if want := "schedinspector_audit_write_failures_total 7"; !strings.Contains(page, want) {
		t.Errorf("want %q (3 of %d lines written), got %s",
			want, n, pageLine(page, "schedinspector_audit_write_failures_total"))
	}
	// Decisions themselves were all still recorded.
	if !strings.Contains(page, `schedinspector_http_requests_total{code="200",route="/v1/inspect"} 10`) {
		t.Errorf("request counter: %s", pageLine(page, "schedinspector_http_requests_total"))
	}
}

// flushRecorder is an httptest.ResponseRecorder that counts Flush calls.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushes int
}

func (f *flushRecorder) Flush() { f.flushes++ }

// TestStatusWriterForwardsFlusher pins that instrumenting a route does not
// strip http.Flusher from the response writer.
func TestStatusWriterForwardsFlusher(t *testing.T) {
	sw := &statusWriter{ResponseWriter: &flushRecorder{ResponseRecorder: httptest.NewRecorder()}}
	fl, ok := interface{}(sw).(http.Flusher)
	if !ok {
		t.Fatal("statusWriter does not implement http.Flusher")
	}
	fl.Flush()
	if got := sw.ResponseWriter.(*flushRecorder).flushes; got != 1 {
		t.Errorf("underlying Flush called %d times, want 1", got)
	}
	if sw.Unwrap() != sw.ResponseWriter {
		t.Error("Unwrap does not return the wrapped writer")
	}
	// A non-Flusher underlying writer must not panic.
	plain := &statusWriter{ResponseWriter: httptest.NewRecorder()}
	// httptest.ResponseRecorder implements Flush; wrap it to hide it.
	type bare struct{ http.ResponseWriter }
	plain.ResponseWriter = bare{httptest.NewRecorder()}
	plain.Flush()
}

// TestCloseDrainsAndRejects pins shutdown: Close is idempotent, later
// requests answer 503, and a post-Close Swap still applies (inline).
func TestCloseDrainsAndRejects(t *testing.T) {
	a, b := reloadPair(t)
	h := NewHandler(a)
	if rec := postInspect(t, h, validRequest()); rec.Code != http.StatusOK {
		t.Fatalf("pre-close inspect: %d", rec.Code)
	}
	h.Close()
	h.Close() // idempotent
	if rec := postInspect(t, h, validRequest()); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-close inspect status %d, want 503", rec.Code)
	}
	h.Swap(b)
	page := metricsPage(t, h)
	if !strings.Contains(page, "schedinspector_model_generation 2") {
		t.Errorf("post-close swap not applied: %s", pageLine(page, "schedinspector_model_generation"))
	}
}

// TestWaveMetricsUnderLoad checks the coalescing telemetry: after
// concurrent traffic, the wave-size histogram has observed every decision
// exactly once (sum of wave sizes == decisions) and the queue gauges render.
func TestWaveMetricsUnderLoad(t *testing.T) {
	h := testHandler(t)
	defer h.Close()
	srv := httptest.NewServer(h)
	defer srv.Close()

	const clients, perClient = 8, 25
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			json.NewEncoder(&buf).Encode(validRequest())
			body := buf.Bytes()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(srv.URL+"/v1/inspect", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	page := metricsPage(t, h)
	if !strings.Contains(page, "schedinspector_inspect_wave_size_sum 200") {
		t.Errorf("wave sizes must sum to the %d decisions served: %s",
			clients*perClient, pageLine(page, "schedinspector_inspect_wave_size_sum"))
	}
	for _, name := range []string{
		"schedinspector_inspect_queue_depth",
		"schedinspector_inspect_queue_capacity",
		"schedinspector_inspect_coalesce_seconds_count",
	} {
		if !strings.Contains(page, name) {
			t.Errorf("metrics page missing %s", name)
		}
	}
}
