package serve

import (
	"bytes"
	"fmt"
	"net/http"

	"schedinspector/internal/explain"
	"schedinspector/internal/obs"
)

// GET /v1/trace/snapshot: dump the live binary flight-recorder ring. The
// default response converts the ring server-side to the flight-recorder
// JSONL (the format schedinspect explain reads); ?format=ftrace returns the
// raw binary .ftrace image instead. Snapshot and conversion run off the
// serving lock — the ring has its own mutex and the copy is taken in one
// short hold — so a dump never stalls /v1/inspect.

// TraceRing exposes the handler's binary flight-recorder ring so callers
// (e.g. cmd/inspectord) can attach a .ftrace sink or thread ProcSampler
// samples into the same trace stream.
func (h *Handler) TraceRing() *obs.TraceRing { return h.ring }

func (h *Handler) traceSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	format := r.URL.Query().Get("format")
	snap := h.ring.Snapshot()
	switch format {
	case "", "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := explain.ConvertFTrace(bytes.NewReader(snap), w); err != nil {
			// Headers are out; all we can do is log the conversion failure
			// into the response trailer position. A snapshot of a live ring
			// should never fail to convert — it would indicate an encoder /
			// decoder mismatch.
			fmt.Fprintf(w, "# snapshot conversion error: %v\n", err)
		}
	case "ftrace", "binary":
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.ftrace"`)
		w.Write(snap)
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (want jsonl or ftrace)", format), http.StatusBadRequest)
	}
}
