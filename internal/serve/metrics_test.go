package serve

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"schedinspector/internal/obs"
)

func scrape(t *testing.T, h *Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	return rec.Body.String()
}

// metricValue extracts one sample value from an exposition page; labels is
// the exact rendered label set (or "" for none).
func metricValue(t *testing.T, page, name, labels string) float64 {
	t.Helper()
	prefix := name + labels + " "
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, prefix) {
			v, err := strconv.ParseFloat(line[len(prefix):], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no sample %s%s in:\n%s", name, labels, page)
	return 0
}

func TestMetricsReflectTraffic(t *testing.T) {
	h := testHandler(t)

	// Fresh handler: decision counters exist at zero.
	page := scrape(t, h)
	if v := metricValue(t, page, "schedinspector_inspect_decisions_total", `{verdict="accept"}`); v != 0 {
		t.Errorf("accept counter starts at %v", v)
	}
	if v := metricValue(t, page, "schedinspector_model_params", ""); v <= 0 {
		t.Errorf("model params gauge %v", v)
	}

	const n = 30
	for i := 0; i < n; i++ {
		if rec := postInspect(t, h, validRequest()); rec.Code != 200 {
			t.Fatalf("inspect status %d", rec.Code)
		}
	}
	postInspect(t, h, "{not json") // one 400

	page = scrape(t, h)
	ok := metricValue(t, page, "schedinspector_http_requests_total", `{code="200",route="/v1/inspect"}`)
	bad := metricValue(t, page, "schedinspector_http_requests_total", `{code="400",route="/v1/inspect"}`)
	if ok != n || bad != 1 {
		t.Errorf("request counters 200=%v 400=%v, want %d/1", ok, bad, n)
	}
	accepts := metricValue(t, page, "schedinspector_inspect_decisions_total", `{verdict="accept"}`)
	rejects := metricValue(t, page, "schedinspector_inspect_decisions_total", `{verdict="reject"}`)
	if accepts+rejects != n {
		t.Errorf("decision counters %v+%v != %d", accepts, rejects, n)
	}
	ratio := metricValue(t, page, "schedinspector_inspect_reject_ratio", "")
	if want := rejects / n; ratio != want {
		t.Errorf("reject ratio %v, want %v", ratio, want)
	}
	// Latency histogram: count equals inspect requests (200s + the 400).
	cnt := metricValue(t, page, "schedinspector_http_request_duration_seconds_count", `{route="/v1/inspect"}`)
	if cnt != n+1 {
		t.Errorf("latency histogram count %v, want %d", cnt, n+1)
	}
	if !regexp.MustCompile(`schedinspector_http_request_duration_seconds_bucket\{route="/v1/inspect",le="\+Inf"\} ` + strconv.Itoa(n+1)).MatchString(page) {
		t.Errorf("+Inf bucket missing:\n%s", page)
	}
	// Reject-prob histogram saw one observation per decision.
	if c := metricValue(t, page, "schedinspector_inspect_reject_prob_count", ""); c != n {
		t.Errorf("prob histogram count %v", c)
	}
	// Exposition is well-formed: HELP/TYPE precede samples of each family.
	if !strings.Contains(page, "# TYPE schedinspector_http_requests_total counter") ||
		!strings.Contains(page, "# TYPE schedinspector_http_request_duration_seconds histogram") {
		t.Errorf("missing TYPE lines:\n%s", page)
	}
}

func TestScrapeTimeQuantileGauges(t *testing.T) {
	h := testHandler(t)

	// No waves yet: the quantile gauges render NaN (absent-by-convention),
	// never a fake zero latency.
	page := scrape(t, h)
	if v := metricValue(t, page, "schedinspector_inspect_coalesce_seconds_p99", ""); !math.IsNaN(v) {
		t.Errorf("empty-histogram p99 = %v, want NaN", v)
	}

	for i := 0; i < 20; i++ {
		if rec := postInspect(t, h, validRequest()); rec.Code != 200 {
			t.Fatalf("inspect status %d", rec.Code)
		}
	}
	page = scrape(t, h)
	p50 := metricValue(t, page, "schedinspector_inspect_coalesce_seconds_p50", "")
	p99 := metricValue(t, page, "schedinspector_inspect_coalesce_seconds_p99", "")
	if math.IsNaN(p50) || math.IsNaN(p99) || p50 < 0 || p99 < p50 {
		t.Errorf("coalesce quantiles p50=%v p99=%v", p50, p99)
	}
	ws50 := metricValue(t, page, "schedinspector_inspect_wave_size_p50", "")
	if math.IsNaN(ws50) || ws50 < 0.5 {
		t.Errorf("wave-size p50 = %v, want >= ~1", ws50)
	}
	// The gauges must agree with the estimator run over the rendered
	// buckets — same math on both surfaces.
	uppers, cum := h.coalesce.Buckets()
	if est := obs.HistQuantile(0.99, uppers, cum); math.Abs(est-p99) > 1e-9 {
		t.Errorf("gauge p99 %v != estimator %v", p99, est)
	}
}

func TestHealthzInstrumented(t *testing.T) {
	h := testHandler(t)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatal("healthz broken")
	}
	page := scrape(t, h)
	if v := metricValue(t, page, "schedinspector_http_requests_total", `{code="200",route="/healthz"}`); v != 1 {
		t.Errorf("healthz counter %v", v)
	}
}

func TestAuditSink(t *testing.T) {
	h := testHandler(t)
	var buf strings.Builder
	h.SetAuditSink(&buf)
	for i := 0; i < 3; i++ {
		if rec := postInspect(t, h, validRequest()); rec.Code != 200 {
			t.Fatalf("inspect status %d", rec.Code)
		}
	}
	h.SetAuditSink(nil)
	postInspect(t, h, validRequest()) // not audited

	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	lines := 0
	for sc.Scan() {
		lines++
		var rec struct {
			Time       string    `json:"time"`
			Features   []float64 `json:"features"`
			RejectProb float64   `json:"reject_prob"`
			Request    struct {
				TotalProcs int `json:"total_procs"`
			} `json:"request"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("audit line %q: %v", sc.Text(), err)
		}
		if rec.Time == "" || len(rec.Features) == 0 || rec.Request.TotalProcs != 128 {
			t.Errorf("audit record incomplete: %s", sc.Text())
		}
		if rec.RejectProb < 0 || rec.RejectProb > 1 {
			t.Errorf("audit prob %v", rec.RejectProb)
		}
	}
	if lines != 3 {
		t.Errorf("audited %d decisions, want 3", lines)
	}
}
