package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"schedinspector/internal/explain"
)

func getTraceSnapshot(t *testing.T, h http.Handler, query string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/trace/snapshot"+query, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestTraceSnapshotEndpoint pins the self-observability surface: every
// /v1/inspect decision lands in the binary flight-recorder ring, and
// GET /v1/trace/snapshot dumps that ring — converted server-side to the
// flight-recorder JSONL by default, or as the raw .ftrace image with
// ?format=ftrace. Both views must decode to the same records.
func TestTraceSnapshotEndpoint(t *testing.T) {
	h := testHandler(t)
	const decisions = 3
	for i := 0; i < decisions; i++ {
		if rec := postInspect(t, h, validRequest()); rec.Code != http.StatusOK {
			t.Fatalf("inspect %d: status %d: %s", i, rec.Code, rec.Body)
		}
	}

	rec := getTraceSnapshot(t, h, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot: status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("jsonl snapshot Content-Type %q", ct)
	}
	jsonl, err := explain.ReadTrace(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("converted snapshot unreadable: %v\n%s", err, rec.Body)
	}
	if len(jsonl.Records) != decisions {
		t.Fatalf("converted snapshot has %d decisions, want %d", len(jsonl.Records), decisions)
	}
	if jsonl.Header == nil {
		t.Fatal("converted snapshot missing the explain header line")
	}

	raw := getTraceSnapshot(t, h, "?format=ftrace")
	if raw.Code != http.StatusOK {
		t.Fatalf("ftrace snapshot: status %d", raw.Code)
	}
	if ct := raw.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("ftrace snapshot Content-Type %q", ct)
	}
	binary, err := explain.ReadFTrace(bytes.NewReader(raw.Body.Bytes()))
	if err != nil {
		t.Fatalf("ftrace snapshot unreadable: %v", err)
	}
	if len(binary.Records) != decisions {
		t.Fatalf("ftrace snapshot has %d decisions, want %d", len(binary.Records), decisions)
	}
	for i := range binary.Records {
		if binary.Records[i].Action != jsonl.Records[i].Action ||
			binary.Records[i].JobID != jsonl.Records[i].JobID {
			t.Errorf("record %d diverges between views: %+v vs %+v",
				i, binary.Records[i], jsonl.Records[i])
		}
	}

	if rec := getTraceSnapshot(t, h, "?format=yaml"); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown format: status %d, want 400", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/trace/snapshot", strings.NewReader("{}"))
	post := httptest.NewRecorder()
	h.ServeHTTP(post, req)
	if post.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST snapshot: status %d, want 405", post.Code)
	}

	// The ring's own health shows up on /metrics.
	mreq := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, mreq)
	if mrec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", mrec.Code)
	}
	for _, want := range []string{
		"schedinspector_ftrace_ring_records",
		"schedinspector_ftrace_ring_evicted_total 0",
		"schedinspector_ftrace_sink_errors_total 0",
	} {
		if !strings.Contains(mrec.Body.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
