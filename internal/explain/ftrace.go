package explain

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"schedinspector/internal/obs"
)

// Binary .ftrace ingestion: the offline half of the arena-backed flight
// recorder. ReadFTrace decodes a .ftrace stream into the same Trace the
// JSONL reader produces; ConvertFTrace re-renders one as the exact JSONL
// the legacy sinks would have written, byte for byte, by marshaling the
// decoded records through the obs wire-form helpers.
//
// Both readers are resilient to torn tails: a crash mid-write leaves a
// partial segment after the last complete flush, so they return everything
// decoded up to the corruption alongside the error. Callers that care about
// integrity (schedinspect explain) surface the error; the partial prefix
// remains usable for triage.

// ftraceWalker streams segments of a .ftrace container, validating the
// file header, segment framing and per-segment CRC-32C.
type ftraceWalker struct {
	r      *bufio.Reader
	seg    []byte // reused segment payload buffer
	segNo  int
	hdrBuf [12]byte
}

func newFTraceWalker(r io.Reader) (*ftraceWalker, error) {
	w := &ftraceWalker{r: bufio.NewReaderSize(r, 64*1024)}
	if _, err := io.ReadFull(w.r, w.hdrBuf[:]); err != nil {
		return nil, fmt.Errorf("explain: ftrace file header: %w", err)
	}
	if _, err := obs.ParseFTraceFileHeader(w.hdrBuf[:]); err != nil {
		return nil, fmt.Errorf("explain: %w", err)
	}
	return w, nil
}

// next returns the next verified segment payload, io.EOF at a clean end of
// stream, or an error describing the corruption. The returned slice is
// valid until the next call.
func (w *ftraceWalker) next() ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(w.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("explain: ftrace segment %d: truncated header: %w", w.segNo, err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:])
	if length == 0 || length > obs.MaxFTraceSegment {
		return nil, fmt.Errorf("explain: ftrace segment %d: implausible length %d", w.segNo, length)
	}
	if cap(w.seg) < int(length) {
		w.seg = make([]byte, length)
	}
	w.seg = w.seg[:length]
	if _, err := io.ReadFull(w.r, w.seg); err != nil {
		return nil, fmt.Errorf("explain: ftrace segment %d: truncated payload: %w", w.segNo, err)
	}
	if got := obs.FTraceSegmentCRC(w.seg); got != wantCRC {
		return nil, fmt.Errorf("explain: ftrace segment %d: CRC mismatch (got %08x want %08x)", w.segNo, got, wantCRC)
	}
	w.segNo++
	return w.seg, nil
}

// walkRecords iterates the framed records of one segment payload, calling
// visit with each record's kind and body. Unknown kinds are skipped by
// length for forward compatibility.
func walkRecords(segNo int, payload []byte, visit func(kind byte, body []byte) error) error {
	o := 0
	for o < len(payload) {
		if o+5 > len(payload) {
			return fmt.Errorf("explain: ftrace segment %d: truncated record frame at offset %d", segNo, o)
		}
		kind := payload[o]
		length := int(binary.LittleEndian.Uint32(payload[o+1:]))
		o += 5
		if length < 0 || o+length > len(payload) {
			return fmt.Errorf("explain: ftrace segment %d: record body overruns segment at offset %d", segNo, o-5)
		}
		if err := visit(kind, payload[o:o+length]); err != nil {
			return err
		}
		o += length
	}
	return nil
}

// ReadFTrace decodes a binary .ftrace stream into a Trace. On corruption or
// truncation it returns the records decoded so far together with the error,
// so a torn tail still yields the usable prefix.
func ReadFTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	w, err := newFTraceWalker(r)
	if err != nil {
		return tr, err
	}
	for {
		seg, err := w.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			sortRecords(tr.Records)
			return tr, err
		}
		err = walkRecords(w.segNo-1, seg, func(kind byte, body []byte) error {
			switch kind {
			case obs.FTraceKindHeader:
				h, err := obs.DecodeFTraceHeader(body)
				if err != nil {
					return err
				}
				tr.Header = &h
			case obs.FTraceKindSpan:
				s, err := obs.DecodeFTraceSpan(body)
				if err != nil {
					return err
				}
				tr.Spans = append(tr.Spans, s)
			case obs.FTraceKindDecision:
				d, err := obs.DecodeFTraceDecision(body)
				if err != nil {
					return err
				}
				tr.Records = append(tr.Records, d)
			case obs.FTraceKindProc:
				p, err := obs.DecodeFTraceProc(body)
				if err != nil {
					return err
				}
				tr.Procs = append(tr.Procs, p)
			}
			return nil
		})
		if err != nil {
			sortRecords(tr.Records)
			return tr, err
		}
	}
	sortRecords(tr.Records)
	return tr, nil
}

// ConvertFTrace streams a binary .ftrace trace to w as the exact JSONL the
// legacy sinks emit — record order preserved, one {"kind":...} object per
// line, byte-identical to what SpanTracer/ExplainRecorder would have
// written for the same records. Lines decoded before a corruption are
// written before the error returns.
func ConvertFTrace(r io.Reader, w io.Writer) error {
	walker, err := newFTraceWalker(r)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 64*1024)
	var line []byte
	for {
		seg, err := walker.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			bw.Flush()
			return err
		}
		err = walkRecords(walker.segNo-1, seg, func(kind byte, body []byte) error {
			line = line[:0]
			var err error
			switch kind {
			case obs.FTraceKindHeader:
				var h obs.ExplainHeader
				if h, err = obs.DecodeFTraceHeader(body); err == nil {
					line, err = obs.AppendExplainHeaderJSONL(line, h)
				}
			case obs.FTraceKindSpan:
				var s obs.Span
				if s, err = obs.DecodeFTraceSpan(body); err == nil {
					line, err = obs.AppendSpanJSONL(line, &s)
				}
			case obs.FTraceKindDecision:
				var d obs.ExplainRecord
				if d, err = obs.DecodeFTraceDecision(body); err == nil {
					line, err = obs.AppendDecisionJSONL(line, &d)
				}
			case obs.FTraceKindProc:
				var p obs.ProcStats
				if p, err = obs.DecodeFTraceProc(body); err == nil {
					line, err = obs.AppendProcJSONL(line, p)
				}
			}
			if err != nil {
				return err
			}
			_, err = bw.Write(line)
			return err
		})
		if err != nil {
			bw.Flush()
			return err
		}
	}
	return bw.Flush()
}
