package explain

import (
	"testing"

	"schedinspector/internal/obs"
)

func tailFixtureRing(n int) *obs.TraceRing {
	r := obs.NewTraceRing(256, 512)
	r.SetMeta([]string{"fa", "fb"}, "manual", 5)
	for i := 0; i < n; i++ {
		r.EmitDecision(&obs.ExplainRecord{
			Seq: i, Time: float64(i), JobID: i + 1,
			Procs: 4, Est: 100, QueueLen: 3, FreeProcs: 8, TotalProcs: 16,
			Features: []float64{0.1, 0.2}, Logits: []float64{1, -1}, Probs: []float64{0.7, 0.3},
		})
	}
	return r
}

func TestTailDecisions(t *testing.T) {
	r := tailFixtureRing(10)
	recs, newest, err := TailDecisions(r.Snapshot(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 || newest != 9 {
		t.Fatalf("got %d records, newest %d; want 10, 9", len(recs), newest)
	}
	for i, rec := range recs {
		if rec.Seq != i {
			t.Fatalf("record %d has Seq %d, want ascending order", i, rec.Seq)
		}
	}

	// A second tail from the same image must dedupe everything.
	recs, newest, err = TailDecisions(r.Snapshot(), newest)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || newest != 9 {
		t.Fatalf("dedupe tail: got %d records, newest %d; want 0, 9", len(recs), newest)
	}

	// New decisions after the cursor are picked up.
	r.EmitDecision(&obs.ExplainRecord{Seq: 10, JobID: 11, Procs: 1, Est: 1,
		Features: []float64{0, 0}, Logits: []float64{0, 0}, Probs: []float64{0.5, 0.5}})
	recs, newest, err = TailDecisions(r.Snapshot(), newest)
	if err != nil || len(recs) != 1 || recs[0].Seq != 10 || newest != 10 {
		t.Fatalf("incremental tail: recs=%d newest=%d err=%v", len(recs), newest, err)
	}
}

func TestTailDecisionsEmptyAndCorrupt(t *testing.T) {
	empty := obs.NewTraceRing(16, 256)
	recs, newest, err := TailDecisions(empty.Snapshot(), 41)
	if err != nil || len(recs) != 0 || newest != 41 {
		t.Fatalf("empty ring: recs=%d newest=%d err=%v", len(recs), newest, err)
	}

	// A truncated image must fail loudly but still return the decoded
	// prefix: the online loop counts the corruption and keeps the records.
	img := tailFixtureRing(10).Snapshot()
	recs, _, err = TailDecisions(img[:len(img)-3], -1)
	if err == nil {
		t.Fatal("want error for truncated image")
	}
	if len(recs) != 0 {
		// The whole payload lives in one CRC-framed segment, so a torn
		// tail invalidates that segment; tolerate either an empty or
		// partial prefix, but records that do come back must be ordered.
		for i := 1; i < len(recs); i++ {
			if recs[i].Seq <= recs[i-1].Seq {
				t.Fatalf("corrupt-prefix records out of order at %d", i)
			}
		}
	}

	// Garbage that is not an .ftrace image at all: error, no records.
	recs, newest, err = TailDecisions([]byte("not a trace"), 7)
	if err == nil {
		t.Fatal("want error for garbage image")
	}
	if len(recs) != 0 || newest != 7 {
		t.Fatalf("garbage image: recs=%d newest=%d", len(recs), newest)
	}
}
