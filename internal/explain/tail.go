package explain

import (
	"bytes"
	"sort"

	"schedinspector/internal/obs"
)

// Tailing a live flight-recorder ring. The serving path stamps every
// decision record with a process-lifetime sequence number (Seq), so a
// reader that remembers the newest Seq it has consumed can poll
// TraceRing.Snapshot() images and extract exactly the decisions it has not
// seen yet, regardless of how the ring's eviction window moved between
// polls. This is the ingestion primitive behind the online
// continual-learning loop: replay windows are built from successive tails
// of the same ring the operator inspects via /v1/trace/snapshot.

// TailDecisions decodes a self-contained .ftrace image (as produced by
// obs.TraceRing.Snapshot) and returns the decision records with
// Seq > afterSeq, in ascending Seq order, along with the newest Seq seen
// anywhere in the image (afterSeq when the image holds no decisions).
//
// Corruption is tolerated the way ReadFTrace tolerates it: the decoded
// prefix is returned alongside the error, so a torn tail yields the
// records before the tear rather than nothing. Callers should count the
// error but may still consume the records.
func TailDecisions(image []byte, afterSeq int) ([]obs.ExplainRecord, int, error) {
	tr, err := ReadFTrace(bytes.NewReader(image))
	newest := afterSeq
	if tr == nil {
		return nil, newest, err
	}
	var out []obs.ExplainRecord
	for i := range tr.Records {
		seq := tr.Records[i].Seq
		if seq > newest {
			newest = seq
		}
		if seq > afterSeq {
			out = append(out, tr.Records[i])
		}
	}
	// ReadFTrace sorts by (Epoch, Traj, Seq); a serving ring emits
	// everything under epoch/traj 0 so that is already Seq order, but keep
	// the contract independent of the writer.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, newest, err
}
