package explain

import (
	"math"
	"strings"
	"testing"

	"schedinspector/internal/obs"
)

// fixture is a small handcrafted flight trace: a header, four decisions
// (deliberately out of (Epoch,Traj,Seq) order, as a parallel rollout's ring
// would produce them), one span, a blank line and an unknown kind.
const fixture = `{"kind":"explain_header","mode":"manual","features":["fa","fb"],"max_rejections":72}
{"kind":"decision","epoch":1,"traj":1,"seq":0,"t":200,"job":7,"wait":60,"procs":4,"est":600,"rejections":0,"max_rejections":72,"queue":3,"free":16,"total":64,"util":0.75,"features":[0.2,0.4],"logits":[0.1,-0.1],"probs":[0.55,0.45],"action":0,"sampled":true,"rejected":false}
{"kind":"decision","traj":0,"seq":1,"t":150,"job":7,"wait":30,"procs":4,"est":600,"rejections":1,"max_rejections":72,"queue":2,"free":8,"total":64,"util":0.875,"features":[0.4,0.8],"logits":[-0.3,0.3],"probs":[0.35,0.65],"action":1,"sampled":true,"rejected":true}
{"kind":"span","id":12,"parent":3,"name":"decision","wall0":10,"wall1":20,"t0":100,"t1":100,"attrs":[{"k":"action","s":"reject"}]}

{"kind":"future_thing","whatever":1}
{"kind":"decision","traj":0,"seq":0,"t":100,"job":7,"wait":10,"procs":4,"est":600,"rejections":0,"max_rejections":72,"queue":2,"free":32,"total":64,"util":0.5,"features":[0.1,0.2],"logits":[0.5,-0.5],"probs":[0.73,0.27],"action":1,"sampled":true,"rejected":true}
{"kind":"decision","traj":0,"seq":2,"t":300,"job":9,"wait":5,"procs":8,"est":120,"rejections":0,"max_rejections":72,"queue":1,"free":40,"total":64,"util":0.375,"features":[0.3,0.1],"logits":[0.9,-0.9],"probs":[0.86,0.14],"action":0,"sampled":false,"rejected":false}
`

func parseFixture(t *testing.T) *Trace {
	t.Helper()
	tr, err := ReadTrace(strings.NewReader(fixture))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestReadTrace(t *testing.T) {
	tr := parseFixture(t)
	if tr.Header == nil || tr.Header.Mode != "manual" || len(tr.Header.Features) != 2 {
		t.Fatalf("header %+v", tr.Header)
	}
	if len(tr.Records) != 4 {
		t.Fatalf("%d records, want 4", len(tr.Records))
	}
	if len(tr.Spans) != 1 || tr.Spans[0].ID != 12 || tr.Spans[0].Attrs[0].Str != "reject" {
		t.Fatalf("spans %+v", tr.Spans)
	}
	// Sorted by (Epoch, Traj, Seq) regardless of file order.
	want := [][3]int{{0, 0, 0}, {0, 0, 1}, {0, 0, 2}, {1, 1, 0}}
	for i, r := range tr.Records {
		if got := [3]int{r.Epoch, r.Traj, r.Seq}; got != want[i] {
			t.Errorf("record %d: key %v, want %v", i, got, want[i])
		}
	}
}

func TestReadTraceBadLine(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{broken\n")); err == nil {
		t.Fatal("malformed line should error")
	}
}

func TestJobTimelineAndWindow(t *testing.T) {
	tr := parseFixture(t)
	tl := tr.JobTimeline(7)
	if len(tl) != 3 {
		t.Fatalf("job 7 timeline: %d records, want 3", len(tl))
	}
	for i := 1; i < len(tl); i++ {
		a, b := tl[i-1], tl[i]
		if a.Epoch > b.Epoch || (a.Epoch == b.Epoch && a.Traj == b.Traj && a.Seq > b.Seq) {
			t.Errorf("timeline out of order at %d", i)
		}
	}
	win := tr.Window(100, 250)
	if len(win) != 3 {
		t.Fatalf("window [100,250): %d records, want 3", len(win))
	}
	if out := tr.Window(300.5, 300.6); len(out) != 0 {
		t.Errorf("empty window returned %d records", len(out))
	}
}

func TestTopRejected(t *testing.T) {
	tr := parseFixture(t)
	top := tr.TopRejected(10)
	if len(top) != 2 {
		t.Fatalf("%d jobs, want 2", len(top))
	}
	if top[0].JobID != 7 || top[0].Rejects != 2 || top[0].Decisions != 3 || top[0].MaxRejections != 1 {
		t.Errorf("top job %+v", top[0])
	}
	if top[1].JobID != 9 || top[1].Rejects != 0 {
		t.Errorf("second job %+v", top[1])
	}
	wantProb := (0.45 + 0.65 + 0.27) / 3
	if math.Abs(top[0].MeanProb-wantProb) > 1e-12 {
		t.Errorf("mean prob %v, want %v", top[0].MeanProb, wantProb)
	}
	if got := tr.TopRejected(1); len(got) != 1 || got[0].JobID != 7 {
		t.Errorf("n=1 truncation: %+v", got)
	}
}

func TestFeatureStats(t *testing.T) {
	tr := parseFixture(t)
	stats, accepts, rejects := tr.FeatureStats()
	if accepts != 2 || rejects != 2 {
		t.Fatalf("accepts %d rejects %d", accepts, rejects)
	}
	if len(stats) != 2 || stats[0].Name != "fa" || stats[1].Name != "fb" {
		t.Fatalf("stats %+v", stats)
	}
	// accepts: features [0.2,0.4] and [0.3,0.1]; rejects: [0.4,0.8] and [0.1,0.2].
	if math.Abs(stats[0].MeanAccept-0.25) > 1e-12 || math.Abs(stats[0].MeanReject-0.25) > 1e-12 {
		t.Errorf("fa means %+v", stats[0])
	}
	if math.Abs(stats[1].MeanAccept-0.25) > 1e-12 || math.Abs(stats[1].MeanReject-0.5) > 1e-12 {
		t.Errorf("fb means %+v", stats[1])
	}
	if math.Abs(stats[1].Delta-0.25) > 1e-12 {
		t.Errorf("fb delta %v", stats[1].Delta)
	}
}

func TestRejectByUtilization(t *testing.T) {
	tr := parseFixture(t)
	buckets := tr.RejectByUtilization(4)
	if len(buckets) != 4 {
		t.Fatalf("%d buckets", len(buckets))
	}
	// utils: 0.5, 0.875, 0.75, 0.375 → buckets 2, 3, 3, 1.
	wantDec := []int{0, 1, 1, 2}
	wantRej := []int{0, 0, 1, 1}
	for i, b := range buckets {
		if b.Decisions != wantDec[i] || b.Rejects != wantRej[i] {
			t.Errorf("bucket %d: %d/%d decisions/rejects, want %d/%d",
				i, b.Decisions, b.Rejects, wantDec[i], wantRej[i])
		}
	}
	if !math.IsNaN(buckets[0].Rate()) {
		t.Error("empty bucket rate should be NaN")
	}
	if buckets[3].Rate() != 0.5 {
		t.Errorf("bucket 3 rate %v", buckets[3].Rate())
	}
}

func TestFeatureNamesFallback(t *testing.T) {
	tr, err := ReadTrace(strings.NewReader(
		`{"kind":"decision","traj":0,"seq":0,"t":1,"job":1,"features":[1,2,3],"probs":[0.5,0.5]}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	names := tr.FeatureNames()
	if len(names) != 3 || names[0] != "f0" || names[2] != "f2" {
		t.Errorf("fallback names %v", names)
	}
}

// Golden renderer outputs: the analysis layer's whole value is that the
// same trace file always produces the same bytes, so the renderings are
// pinned verbatim. Tabwriter pads rows to the bar column's width; the
// comparison strips that trailing padding so the goldens survive editors
// that trim trailing whitespace.

func stripTrailing(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = strings.TrimRight(l, " ")
	}
	return strings.Join(lines, "\n")
}

func checkGolden(t *testing.T, name, got, want string) {
	t.Helper()
	if stripTrailing(got) != stripTrailing(want) {
		t.Errorf("%s:\n%s\nwant:\n%s", name, got, want)
	}
}

const goldenFeatureStats = `4 decisions (2 accepted, 2 rejected)
feature  mean(accept)  mean(reject)  delta
fa       0.2500        0.2500        +0.0000
fb       0.2500        0.5000        +0.2500  ####################
`

const goldenTopRejected = `job  rejects  decisions  max streak  mean p(rej)
7    2        3          1           0.457
9    0        1          0           0.140
`

const goldenRecords = `epoch  traj  seq  t    job  wait  procs  est  rej   queue  util  p(rej)  verdict
0      0     0    100  7    10    4      600  0/72  2      0.50  0.270   reject
0      0     1    150  7    30    4      600  1/72  2      0.88  0.650   reject
0      0     2    300  9    5     8      120  0/72  1      0.38  0.140   accept*
1      1     0    200  7    60    4      600  0/72  3      0.75  0.450   accept
`

const goldenRejectPlot = `util     decisions  rejects  rate
0.0-0.2  0          0        -
0.2-0.5  1          0        0.000
0.5-0.8  1          1        1.000  ########################################
0.8-1.0  2          1        0.500  ####################
`

func TestGoldenRenderings(t *testing.T) {
	tr := parseFixture(t)

	var b strings.Builder
	stats, acc, rej := tr.FeatureStats()
	if err := WriteFeatureStats(&b, stats, acc, rej); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "feature stats", b.String(), goldenFeatureStats)

	b.Reset()
	if err := WriteTopRejected(&b, tr.TopRejected(0)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "top rejected", b.String(), goldenTopRejected)

	b.Reset()
	if err := WriteRecords(&b, tr.Records); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "records", b.String(), goldenRecords)

	b.Reset()
	if err := WriteRejectByUtilization(&b, tr.RejectByUtilization(4)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "reject plot", b.String(), goldenRejectPlot)
}

// TestRoundTrip pins that what a FlightRecorder writes, ReadTrace reads
// back verbatim.
func TestRoundTrip(t *testing.T) {
	var buf strings.Builder
	fr := obs.NewFlightRecorder(8, 8)
	fr.SetSink(&buf)
	fr.Explains().SetMeta([]string{"x", "y"}, "test", 72)
	sp := obs.StartSpan("decision", 5, 3, 100)
	sp.End(110)
	fr.SpanTracer().Emit(sp)
	fr.Explains().Record(obs.ExplainRecord{
		Traj: 2, Seq: 4, Time: 110, JobID: 17, Features: []float64{1, 2},
		Logits: []float64{0.5, -0.5}, Probs: []float64{0.7, 0.3}, Rejected: true,
	})
	if err := fr.SinkErr(); err != nil {
		t.Fatal(err)
	}

	tr, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header == nil || tr.Header.Mode != "test" {
		t.Fatalf("header %+v", tr.Header)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].ID != 5 || tr.Spans[0].SimEnd != 110 {
		t.Fatalf("spans %+v", tr.Spans)
	}
	if len(tr.Records) != 1 {
		t.Fatalf("records %+v", tr.Records)
	}
	r := tr.Records[0]
	if r.JobID != 17 || r.Traj != 2 || r.Seq != 4 || !r.Rejected || r.Features[1] != 2 {
		t.Errorf("record %+v", r)
	}
}
