package explain

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"

	"schedinspector/internal/obs"
)

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// recordFixture drives one fixed sequence of trace emissions — meta, two
// spans, three decisions, one proc sample — through any recorder front-end.
// Spans carry explicit wall times so the legacy JSONL sink and the binary
// ring see bit-identical inputs.
type traceSink interface {
	SetMeta(names []string, mode string, maxRejections int)
	EmitSpan(s *obs.Span)
	EmitDecision(r *obs.ExplainRecord)
}

func fixtureSpans() []obs.Span {
	return []obs.Span{
		{ID: 11, Parent: 3, Name: "decision", WallStart: 1000, WallEnd: 1050,
			SimStart: 10, SimEnd: 10,
			Attrs: []obs.Attr{{Key: "job", Num: 7}, {Key: "verdict", Str: "reject"}}},
		{ID: 12, Parent: 3, Name: "episode", WallStart: 900, WallEnd: 2000,
			SimStart: 0, SimEnd: 500, Attrs: []obs.Attr{{Key: "slot", Num: 2}}},
	}
}

func fixtureDecisions() []obs.ExplainRecord {
	return []obs.ExplainRecord{
		{Epoch: 0, Traj: 0, Seq: 0, Time: 100, JobID: 7, Wait: 10, Procs: 4, Est: 600,
			Rejections: 0, MaxRejections: 72, QueueLen: 2, FreeProcs: 32, TotalProcs: 64,
			Utilization: 0.5, Action: 1, Sampled: true, Rejected: true,
			Features: []float64{0.1, 0.2}, Logits: []float64{0.5, -0.5}, Probs: []float64{0.73, 0.27}},
		{Epoch: 0, Traj: 1, Seq: 0, Time: 150, JobID: 9, Wait: 0.5, Procs: 8, Est: 120,
			Rejections: 1, MaxRejections: 72, QueueLen: 1, FreeProcs: 8, TotalProcs: 64,
			Utilization: 0.875, Action: 0, Sampled: false, Rejected: false,
			Features: []float64{0.4, 0.8}, Logits: []float64{-0.3, 0.3}, Probs: []float64{0.35, 0.65}},
		// Nil slices: the wire forms must round-trip "absent" faithfully.
		{Epoch: 1, Traj: 0, Seq: 2, Time: 300, JobID: 13, MaxRejections: 72,
			TotalProcs: 64, Action: 1, Rejected: true},
	}
}

var fixtureProc = obs.ProcStats{Wall: 1700000000, Goroutines: 12,
	HeapAlloc: 5 << 20, HeapSys: 32 << 20, NumGC: 4, PauseTotal: 123456}

func emitFixture(s traceSink, procs func(obs.ProcStats)) {
	s.SetMeta([]string{"fa", "fb"}, "manual", 72)
	spans, decs := fixtureSpans(), fixtureDecisions()
	s.EmitSpan(&spans[0])
	s.EmitDecision(&decs[0])
	s.EmitDecision(&decs[1])
	if procs != nil {
		procs(fixtureProc)
	}
	s.EmitSpan(&spans[1])
	s.EmitDecision(&decs[2])
}

// legacySink adapts the JSONL SpanTracer/ExplainRecorder pair to traceSink.
type legacySink struct {
	spans *obs.SpanTracer
	decs  *obs.ExplainRecorder
}

func (l legacySink) SetMeta(names []string, mode string, maxRej int) {
	l.decs.SetMeta(names, mode, maxRej)
}
func (l legacySink) EmitSpan(s *obs.Span) { l.spans.Emit(*s) }
func (l legacySink) EmitDecision(r *obs.ExplainRecord) {
	cp := *r
	cp.Features = append([]float64(nil), r.Features...)
	cp.Logits = append([]float64(nil), r.Logits...)
	cp.Probs = append([]float64(nil), r.Probs...)
	l.decs.Record(cp)
}

// ftraceFixture returns the fixture encoded as a flushed .ftrace stream.
func ftraceFixture(t *testing.T, procs bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	r := obs.NewTraceRing(64, 512)
	r.SetSink(&buf)
	var emitProc func(obs.ProcStats)
	if procs {
		emitProc = r.EmitProc
	}
	emitFixture(r, emitProc)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadFTraceRoundTrip(t *testing.T) {
	tr, err := ReadFTrace(bytes.NewReader(ftraceFixture(t, true)))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header == nil || tr.Header.Mode != "manual" || tr.Header.MaxRejections != 72 ||
		!reflect.DeepEqual(tr.Header.Features, []string{"fa", "fb"}) {
		t.Fatalf("header %+v", tr.Header)
	}
	if !reflect.DeepEqual(tr.Spans, fixtureSpans()) {
		t.Fatalf("spans:\n got %+v\nwant %+v", tr.Spans, fixtureSpans())
	}
	// Records come back sorted by (Epoch, Traj, Seq); the fixture already is.
	if !reflect.DeepEqual(tr.Records, fixtureDecisions()) {
		t.Fatalf("records:\n got %+v\nwant %+v", tr.Records, fixtureDecisions())
	}
	if len(tr.Procs) != 1 || tr.Procs[0] != fixtureProc {
		t.Fatalf("procs %+v", tr.Procs)
	}
}

// TestConvertFTraceByteIdentity is the tentpole's golden pin: converting a
// binary .ftrace trace yields byte-for-byte the JSONL the legacy sinks write
// for the same records, so every downstream JSONL consumer works unchanged.
func TestConvertFTraceByteIdentity(t *testing.T) {
	var jsonl bytes.Buffer
	spans := obs.NewSpanTracer(64)
	decs := obs.NewExplainRecorder(64)
	spans.SetSink(&jsonl)
	decs.SetSink(&jsonl)
	emitFixture(legacySink{spans: spans, decs: decs}, nil)
	if err := spans.SinkErr(); err != nil {
		t.Fatal(err)
	}
	if err := decs.SinkErr(); err != nil {
		t.Fatal(err)
	}

	var converted bytes.Buffer
	if err := ConvertFTrace(bytes.NewReader(ftraceFixture(t, false)), &converted); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(converted.Bytes(), jsonl.Bytes()) {
		t.Fatalf("converted JSONL differs from the legacy sink:\n--- converted ---\n%s\n--- legacy ---\n%s",
			converted.String(), jsonl.String())
	}
	// And the converted output reads back through the JSONL reader.
	tr, err := ReadTrace(bytes.NewReader(converted.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 3 || len(tr.Spans) != 2 || tr.Header == nil {
		t.Fatalf("converted trace shape wrong: %d records, %d spans", len(tr.Records), len(tr.Spans))
	}
}

// TestConvertFTraceProcLines pins the proc-sample wire form in the converted
// output: a {"kind":"proc",...} line the JSONL reader files under Procs.
func TestConvertFTraceProcLines(t *testing.T) {
	var converted bytes.Buffer
	if err := ConvertFTrace(bytes.NewReader(ftraceFixture(t, true)), &converted); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(converted.String(), `{"kind":"proc",`) {
		t.Fatalf("no proc line in converted output:\n%s", converted.String())
	}
	tr, err := ReadTrace(bytes.NewReader(converted.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Procs) != 1 || tr.Procs[0] != fixtureProc {
		t.Fatalf("proc sample did not survive conversion: %+v", tr.Procs)
	}
}

// TestReadFTraceTornTail pins crash resilience: truncating mid-segment
// yields the records of every complete segment plus an error.
func TestReadFTraceTornTail(t *testing.T) {
	full := ftraceFixture(t, false)
	for _, cut := range []int{len(full) - 1, len(full) - 7, 15} {
		tr, err := ReadFTrace(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("cut at %d: truncation not reported", cut)
		}
		if tr == nil {
			t.Fatalf("cut at %d: no partial trace returned", cut)
		}
	}
	// Too short for even the file header.
	if _, err := ReadFTrace(bytes.NewReader(full[:4])); err == nil {
		t.Fatal("header truncation not reported")
	}
	// Not an ftrace stream at all.
	if _, err := ReadFTrace(strings.NewReader(`{"kind":"span"}`)); err == nil {
		t.Fatal("JSONL input accepted as ftrace")
	}
}

func TestReadFTraceCRCMismatch(t *testing.T) {
	full := ftraceFixture(t, false)
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)-3] ^= 0xFF // flip a payload byte after the CRC was set
	if _, err := ReadFTrace(bytes.NewReader(corrupt)); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corruption not caught by CRC: %v", err)
	}
	var w bytes.Buffer
	if err := ConvertFTrace(bytes.NewReader(corrupt), &w); err == nil {
		t.Fatal("ConvertFTrace accepted a corrupt segment")
	}
}

// TestReadFTraceMultiSegment pins that segment boundaries are invisible to
// the reader: a stream flushed every record decodes identically to one
// flushed once.
func TestReadFTraceMultiSegment(t *testing.T) {
	var buf bytes.Buffer
	r := obs.NewTraceRing(64, 512)
	r.SetSink(&buf)
	r.SetMeta([]string{"fa", "fb"}, "manual", 72)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, d := range fixtureDecisions() {
		d := d
		r.EmitDecision(&d)
		if err := r.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := ReadFTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Records, fixtureDecisions()) {
		t.Fatalf("per-record segments decoded differently:\n%+v", tr.Records)
	}
}

// TestReadTraceFileSniffsFTrace pins the explain front door: ReadTraceFile
// dispatches on the leading magic, so .ftrace and JSONL files are equally
// valid inputs to every query.
func TestReadTraceFileSniffsFTrace(t *testing.T) {
	dir := t.TempDir()
	bin := dir + "/flight.ftrace"
	if err := writeFile(bin, ftraceFixture(t, false)); err != nil {
		t.Fatal(err)
	}
	trBin, err := ReadTraceFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	var jsonl bytes.Buffer
	if err := ConvertFTrace(bytes.NewReader(ftraceFixture(t, false)), &jsonl); err != nil {
		t.Fatal(err)
	}
	txt := dir + "/flight.jsonl"
	if err := writeFile(txt, jsonl.Bytes()); err != nil {
		t.Fatal(err)
	}
	trTxt, err := ReadTraceFile(txt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trBin.Records, trTxt.Records) || !reflect.DeepEqual(trBin.Spans, trTxt.Spans) {
		t.Fatal("sniffed binary and JSONL reads disagree")
	}
	if !reflect.DeepEqual(trBin.FeatureNames(), []string{"fa", "fb"}) {
		t.Fatalf("feature names %v", trBin.FeatureNames())
	}
}

// TestFTraceQueriesWork runs the analysis layer over a binary-sourced trace:
// the tentpole's point is that the cheap format answers the same questions.
func TestFTraceQueriesWork(t *testing.T) {
	tr, err := ReadFTrace(bytes.NewReader(ftraceFixture(t, false)))
	if err != nil {
		t.Fatal(err)
	}
	if tl := tr.JobTimeline(7); len(tl) != 1 || !tl[0].Rejected {
		t.Fatalf("timeline %+v", tl)
	}
	stats, acc, rej := tr.FeatureStats()
	if len(stats) != 2 || acc != 1 || rej != 1 {
		t.Fatalf("feature stats %d/%d over %d features", acc, rej, len(stats))
	}
	if top := tr.TopRejected(5); len(top) == 0 {
		t.Fatal("no top-rejected rows")
	}
}
