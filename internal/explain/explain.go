// Package explain reads decision flight-recorder traces (the JSONL files
// written by TrainConfig.Flight / EvalConfig.Flight / inspectord) back into
// memory and answers the questions the paper's §5 behavior analysis poses:
// why was this job rejected, what was the cluster doing at the time, and
// which features separate accepted from rejected decisions.
//
// Everything here is deterministic: records are sorted by their stable
// (Epoch, Traj, Seq) key on load, so the same trace file produces the same
// analysis bytes regardless of the worker count or ring order that
// produced it.
package explain

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"schedinspector/internal/obs"
)

// Trace is a parsed flight-recorder trace.
type Trace struct {
	// Header is the explain_header line (nil when the trace has none, e.g.
	// a spans-only file). When several headers appear — a served model was
	// hot-swapped mid-trace — the last one wins.
	Header *obs.ExplainHeader
	// Records holds every decision line, sorted by (Epoch, Traj, Seq).
	Records []obs.ExplainRecord
	// Spans holds every span line in file order.
	Spans []obs.Span
	// Procs holds every runtime-sampler record in file order — the GC/heap
	// context stream a ProcSampler threads into binary traces.
	Procs []obs.ProcStats
}

// kindProbe peeks at the line discriminator before a full decode.
type kindProbe struct {
	Kind string `json:"kind"`
}

// ReadTrace parses an interleaved flight-recorder JSONL stream. Lines are
// discriminated by their "kind" field ("span", "explain_header",
// "decision", "proc"); blank lines are skipped and unknown kinds are
// ignored so traces remain forward-compatible.
func ReadTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe kindProbe
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("explain: line %d: %w", lineNo, err)
		}
		switch probe.Kind {
		case "span":
			var s obs.Span
			if err := json.Unmarshal(line, &s); err != nil {
				return nil, fmt.Errorf("explain: line %d: %w", lineNo, err)
			}
			tr.Spans = append(tr.Spans, s)
		case "explain_header":
			var h obs.ExplainHeader
			if err := json.Unmarshal(line, &h); err != nil {
				return nil, fmt.Errorf("explain: line %d: %w", lineNo, err)
			}
			tr.Header = &h
		case "decision":
			var d obs.ExplainRecord
			if err := json.Unmarshal(line, &d); err != nil {
				return nil, fmt.Errorf("explain: line %d: %w", lineNo, err)
			}
			tr.Records = append(tr.Records, d)
		case "proc":
			var p obs.ProcStats
			if err := json.Unmarshal(line, &p); err != nil {
				return nil, fmt.Errorf("explain: line %d: %w", lineNo, err)
			}
			tr.Procs = append(tr.Procs, p)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("explain: %w", err)
	}
	sortRecords(tr.Records)
	return tr, nil
}

// ReadTraceFile reads a flight-recorder trace from a file path, sniffing
// the format: files opening with the .ftrace magic decode through
// ReadFTrace, everything else parses as JSONL via ReadTrace.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("explain: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64*1024)
	head, _ := br.Peek(8)
	if obs.IsFTrace(head) {
		return ReadFTrace(br)
	}
	return ReadTrace(br)
}

// sortRecords orders by the stable decision key (Epoch, Traj, Seq) — the
// one ordering that is identical at any worker count.
func sortRecords(recs []obs.ExplainRecord) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.Traj != b.Traj {
			return a.Traj < b.Traj
		}
		return a.Seq < b.Seq
	})
}

// FeatureNames returns the header's feature labels, or synthesized
// "f0".."fN" labels sized to the first record when the trace has no header.
func (t *Trace) FeatureNames() []string {
	if t.Header != nil && len(t.Header.Features) > 0 {
		return t.Header.Features
	}
	if len(t.Records) == 0 {
		return nil
	}
	names := make([]string, len(t.Records[0].Features))
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
	}
	return names
}

// JobTimeline returns every decision about jobID, in (Epoch, Traj, Seq)
// order — the job's full inspection history across trajectories.
func (t *Trace) JobTimeline(jobID int) []obs.ExplainRecord {
	var out []obs.ExplainRecord
	for _, r := range t.Records {
		if r.JobID == jobID {
			out = append(out, r)
		}
	}
	return out
}

// Window returns the decisions whose simulation time falls in [t0, t1).
func (t *Trace) Window(t0, t1 float64) []obs.ExplainRecord {
	var out []obs.ExplainRecord
	for _, r := range t.Records {
		if r.Time >= t0 && r.Time < t1 {
			out = append(out, r)
		}
	}
	return out
}

// JobSummary aggregates every decision that inspected one job.
type JobSummary struct {
	JobID         int
	Decisions     int     // times the job was the base policy's pick
	Rejects       int     // times the inspector sent it back
	MaxRejections int     // highest rejection count observed for it
	MeanProb      float64 // mean modeled reject probability across decisions
}

// TopRejected aggregates per job and returns the n most-rejected jobs,
// most rejections first (ties broken by job ID for determinism).
func (t *Trace) TopRejected(n int) []JobSummary {
	byJob := map[int]*JobSummary{}
	for _, r := range t.Records {
		s := byJob[r.JobID]
		if s == nil {
			s = &JobSummary{JobID: r.JobID}
			byJob[r.JobID] = s
		}
		s.Decisions++
		if r.Rejected {
			s.Rejects++
		}
		if r.Rejections > s.MaxRejections {
			s.MaxRejections = r.Rejections
		}
		if len(r.Probs) > 1 {
			s.MeanProb += r.Probs[1]
		}
	}
	out := make([]JobSummary, 0, len(byJob))
	for _, s := range byJob {
		s.MeanProb /= float64(s.Decisions)
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rejects != out[j].Rejects {
			return out[i].Rejects > out[j].Rejects
		}
		return out[i].JobID < out[j].JobID
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// FeatureStat is the reject-attribution summary for one feature: its mean
// over accepted vs rejected decisions and the delta between them. A large
// |Delta| marks a feature the policy's verdict correlates with — the §5
// analysis, over normalized features instead of raw CDFs.
type FeatureStat struct {
	Name       string
	MeanAccept float64
	MeanReject float64
	Delta      float64 // MeanReject - MeanAccept
}

// FeatureStats computes the per-feature accept/reject means over all
// decisions, plus the accept and reject counts. Records whose feature
// vector length disagrees with the first record's are skipped.
func (t *Trace) FeatureStats() (stats []FeatureStat, accepts, rejects int) {
	names := t.FeatureNames()
	if len(names) == 0 {
		return nil, 0, 0
	}
	dim := len(names)
	accSum := make([]float64, dim)
	rejSum := make([]float64, dim)
	for _, r := range t.Records {
		if len(r.Features) != dim {
			continue
		}
		if r.Rejected {
			rejects++
			for i, v := range r.Features {
				rejSum[i] += v
			}
		} else {
			accepts++
			for i, v := range r.Features {
				accSum[i] += v
			}
		}
	}
	stats = make([]FeatureStat, dim)
	for i := range stats {
		st := FeatureStat{Name: names[i]}
		if accepts > 0 {
			st.MeanAccept = accSum[i] / float64(accepts)
		}
		if rejects > 0 {
			st.MeanReject = rejSum[i] / float64(rejects)
		}
		st.Delta = st.MeanReject - st.MeanAccept
		stats[i] = st
	}
	return stats, accepts, rejects
}

// UtilBucket is one bin of the reject-rate-vs-utilization curve.
type UtilBucket struct {
	Lo, Hi    float64
	Decisions int
	Rejects   int
}

// Rate returns the bucket's reject rate, NaN when empty.
func (b UtilBucket) Rate() float64 {
	if b.Decisions == 0 {
		return math.NaN()
	}
	return float64(b.Rejects) / float64(b.Decisions)
}

// RejectByUtilization bins every decision by cluster utilization into n
// uniform buckets over [0, 1] (utilization exactly 1 lands in the last
// bucket) and counts rejects per bin.
func (t *Trace) RejectByUtilization(n int) []UtilBucket {
	if n <= 0 {
		n = 10
	}
	out := make([]UtilBucket, n)
	for i := range out {
		out[i].Lo = float64(i) / float64(n)
		out[i].Hi = float64(i+1) / float64(n)
	}
	for _, r := range t.Records {
		i := int(r.Utilization * float64(n))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		out[i].Decisions++
		if r.Rejected {
			out[i].Rejects++
		}
	}
	return out
}

// WriteRecords renders decisions as a table, one row per decision.
func WriteRecords(w io.Writer, recs []obs.ExplainRecord) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "epoch\ttraj\tseq\tt\tjob\twait\tprocs\test\trej\tqueue\tutil\tp(rej)\tverdict")
	for _, r := range recs {
		p := math.NaN()
		if len(r.Probs) > 1 {
			p = r.Probs[1]
		}
		verdict := "accept"
		if r.Rejected {
			verdict = "reject"
		}
		if !r.Sampled {
			verdict += "*" // greedy argmax, not sampled
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.0f\t%d\t%.0f\t%d\t%.0f\t%d/%d\t%d\t%.2f\t%.3f\t%s\n",
			r.Epoch, r.Traj, r.Seq, r.Time, r.JobID, r.Wait, r.Procs, r.Est,
			r.Rejections, r.MaxRejections, r.QueueLen, r.Utilization, p, verdict)
	}
	return tw.Flush()
}

// WriteTopRejected renders a TopRejected summary table.
func WriteTopRejected(w io.Writer, jobs []JobSummary) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "job\trejects\tdecisions\tmax streak\tmean p(rej)")
	for _, j := range jobs {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.3f\n",
			j.JobID, j.Rejects, j.Decisions, j.MaxRejections, j.MeanProb)
	}
	return tw.Flush()
}

// WriteFeatureStats renders the reject-attribution table, features ordered
// as in the trace header, with a bar visualizing |Delta| relative to the
// largest delta.
func WriteFeatureStats(w io.Writer, stats []FeatureStat, accepts, rejects int) error {
	fmt.Fprintf(w, "%d decisions (%d accepted, %d rejected)\n", accepts+rejects, accepts, rejects)
	maxDelta := 0.0
	for _, s := range stats {
		if d := math.Abs(s.Delta); d > maxDelta {
			maxDelta = d
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "feature\tmean(accept)\tmean(reject)\tdelta\t")
	for _, s := range stats {
		bar := ""
		if maxDelta > 0 {
			n := int(math.Round(math.Abs(s.Delta) / maxDelta * 20))
			bar = strings.Repeat("#", n)
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%+.4f\t%s\n", s.Name, s.MeanAccept, s.MeanReject, s.Delta, bar)
	}
	return tw.Flush()
}

// WriteRejectByUtilization renders the reject-rate-vs-utilization curve as
// an ASCII bar plot (one row per bucket, bar length ∝ reject rate).
func WriteRejectByUtilization(w io.Writer, buckets []UtilBucket) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "util\tdecisions\trejects\trate\t")
	for _, b := range buckets {
		rate := b.Rate()
		if math.IsNaN(rate) {
			fmt.Fprintf(tw, "%.1f-%.1f\t0\t0\t-\t\n", b.Lo, b.Hi)
			continue
		}
		bar := strings.Repeat("#", int(math.Round(rate*40)))
		fmt.Fprintf(tw, "%.1f-%.1f\t%d\t%d\t%.3f\t%s\n", b.Lo, b.Hi, b.Decisions, b.Rejects, rate, bar)
	}
	return tw.Flush()
}
