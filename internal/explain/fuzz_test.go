package explain

import (
	"bytes"
	"io"
	"testing"

	"schedinspector/internal/obs"
)

// FuzzReadFTrace throws arbitrary bytes at the binary flight-trace reader:
// it must never panic or over-allocate, and whatever it accepts must also
// convert to JSONL cleanly (the decoded structs are by definition valid
// records). Seeds cover the empty input, a bare file header, a valid
// multi-record stream, its truncations and a CRC-corrupted copy. Run with
// `go test -fuzz FuzzReadFTrace ./internal/explain` (the CI fuzz-smoke job
// does); the seeds run in the normal test suite.
func FuzzReadFTrace(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SCHDFTR\x01"))
	f.Add(obs.AppendFTraceFileHeader(nil))
	f.Add([]byte("SCHDFTR\x02\x01\x00\x00\x00")) // wrong magic version byte
	var buf bytes.Buffer
	r := obs.NewTraceRing(16, 512)
	r.SetSink(&buf)
	r.SetMeta([]string{"fa", "fb"}, "manual", 72)
	sp := obs.Span{ID: 5, Parent: 1, Name: "decision", WallStart: 10, WallEnd: 20,
		Attrs: []obs.Attr{{Key: "job", Num: 3}}}
	r.EmitSpan(&sp)
	dec := obs.ExplainRecord{Traj: 1, Seq: 2, Time: 50, JobID: 9, MaxRejections: 72,
		Features: []float64{1, 2}, Logits: []float64{0.5, -0.5}, Probs: []float64{0.7, 0.3},
		Sampled: true, Rejected: true}
	r.EmitDecision(&dec)
	r.EmitProc(obs.ProcStats{Wall: 1, Goroutines: 2, HeapAlloc: 3, HeapSys: 4, NumGC: 5, PauseTotal: 6})
	if err := r.Flush(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:14])
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0x55
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadFTrace(bytes.NewReader(data))
		if tr == nil {
			t.Fatal("ReadFTrace returned a nil trace")
		}
		if err != nil {
			return
		}
		// A cleanly decoded stream must convert without error.
		if cerr := ConvertFTrace(bytes.NewReader(data), io.Discard); cerr != nil {
			t.Fatalf("ReadFTrace accepted what ConvertFTrace rejects: %v", cerr)
		}
	})
}
