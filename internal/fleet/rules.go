package fleet

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Severity ranks an alert. The fleet plane is advisory — severities feed
// dashboards and exit codes, never automatic remediation.
type Severity string

const (
	SevInfo     Severity = "info"
	SevWarning  Severity = "warning"
	SevCritical Severity = "critical"
)

// Alert is one active, deduplicated finding: the same rule firing on the
// same target across consecutive cycles is a single alert whose Count
// and LastSeenUnix advance.
type Alert struct {
	Rule         string   `json:"rule"`
	Severity     Severity `json:"severity"`
	Target       string   `json:"target"`
	Message      string   `json:"message"`
	Value        float64  `json:"value"`
	FiredAtUnix  float64  `json:"fired_at_unix"`
	LastSeenUnix float64  `json:"last_seen_unix"`
	Count        uint64   `json:"count"`
}

// Finding is what a rule reports for one target in one cycle, before
// dedup.
type Finding struct {
	Target   string
	Severity Severity
	Message  string
	Value    float64
}

// TargetView is the read-only slice of a target's state a rule sees.
type TargetView struct {
	Target     Target
	Kind       string // "inspectord", "train-worker", or "unknown"
	Up         bool
	LastErr    string
	LastOKUnix float64
	Hist       *History
}

// RuleContext is one evaluation cycle's input: every target, the wall
// clock, and the derivation window.
type RuleContext struct {
	NowUnix     float64
	IntervalSec float64
	WindowSec   float64
	Targets     []*TargetView
}

// Rule evaluates one grounded health condition over the whole fleet each
// cycle and reports zero or more findings.
type Rule struct {
	Name string
	Eval func(ctx *RuleContext) []Finding
}

// RuleStatus reports a rule's lifetime evaluation count and how many
// alerts it currently has active — so "the straggler rule ran and found
// nothing" is distinguishable from "the straggler rule never ran".
type RuleStatus struct {
	Name      string `json:"name"`
	Evaluated uint64 `json:"evaluated"`
	Active    int    `json:"active"`
}

// Engine runs rules each cycle and maintains the deduplicated active
// set. Alerts resolve (drop from the active set) the first cycle their
// condition no longer holds.
type Engine struct {
	rules []Rule

	mu        sync.Mutex
	active    map[string]*Alert // keyed rule + "\x00" + target
	evaluated map[string]uint64
	fired     uint64 // lifetime distinct firings
}

// NewEngine builds an engine over the given rules (DefaultRules() when
// nil).
func NewEngine(rules []Rule) *Engine {
	if rules == nil {
		rules = DefaultRules()
	}
	return &Engine{
		rules:     rules,
		active:    make(map[string]*Alert),
		evaluated: make(map[string]uint64),
	}
}

// Evaluate runs every rule against the cycle's context, folds findings
// into the active set, resolves cleared alerts, and returns the active
// alerts sorted by severity then rule then target. newlyFired counts
// alerts that did not exist last cycle.
func (e *Engine) Evaluate(ctx *RuleContext) (alerts []Alert, newlyFired int) {
	type keyed struct {
		rule string
		f    Finding
	}
	var found []keyed
	for _, r := range e.rules {
		fs := r.Eval(ctx)
		e.mu.Lock()
		e.evaluated[r.Name]++
		e.mu.Unlock()
		for _, f := range fs {
			found = append(found, keyed{rule: r.Name, f: f})
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	seen := make(map[string]bool, len(found))
	for _, kf := range found {
		key := kf.rule + "\x00" + kf.f.Target
		seen[key] = true
		if a, ok := e.active[key]; ok {
			a.LastSeenUnix = ctx.NowUnix
			a.Count++
			a.Message = kf.f.Message
			a.Value = kf.f.Value
			a.Severity = kf.f.Severity
			continue
		}
		e.active[key] = &Alert{
			Rule:         kf.rule,
			Severity:     kf.f.Severity,
			Target:       kf.f.Target,
			Message:      kf.f.Message,
			Value:        kf.f.Value,
			FiredAtUnix:  ctx.NowUnix,
			LastSeenUnix: ctx.NowUnix,
			Count:        1,
		}
		e.fired++
		newlyFired++
	}
	for key := range e.active {
		if !seen[key] {
			delete(e.active, key)
		}
	}
	alerts = make([]Alert, 0, len(e.active))
	for _, a := range e.active {
		alerts = append(alerts, *a)
	}
	sort.Slice(alerts, func(i, j int) bool {
		if alerts[i].Severity != alerts[j].Severity {
			return sevRank(alerts[i].Severity) < sevRank(alerts[j].Severity)
		}
		if alerts[i].Rule != alerts[j].Rule {
			return alerts[i].Rule < alerts[j].Rule
		}
		return alerts[i].Target < alerts[j].Target
	})
	return alerts, newlyFired
}

func sevRank(s Severity) int {
	switch s {
	case SevCritical:
		return 0
	case SevWarning:
		return 1
	default:
		return 2
	}
}

// FiredTotal is the lifetime count of distinct alert firings.
func (e *Engine) FiredTotal() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fired
}

// ActiveCount is the current active-alert count.
func (e *Engine) ActiveCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.active)
}

// RuleStatuses reports every rule's evaluation and active-alert counts,
// in rule order.
func (e *Engine) RuleStatuses() []RuleStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	activeByRule := make(map[string]int)
	for _, a := range e.active {
		activeByRule[a.Rule]++
	}
	out := make([]RuleStatus, 0, len(e.rules))
	for _, r := range e.rules {
		out = append(out, RuleStatus{
			Name:      r.Name,
			Evaluated: e.evaluated[r.Name],
			Active:    activeByRule[r.Name],
		})
	}
	return out
}

// Thresholds the default rules fire at. Grounded in the metrics the
// processes actually export; see DESIGN.md for the rationale of each.
const (
	// stragglerSkewFactor: a rank waiting this many times longer than the
	// mean of its peers is the straggler (DD-PPO's ~2x slack intuition).
	stragglerSkewFactor = 2.0
	// stragglerFloorFrac: ignore skew while absolute wait is under this
	// fraction of wall time — 2x of nothing is still nothing.
	stragglerFloorFrac = 0.05
	// queueSaturationFrac: inspect queue depth over capacity.
	queueSaturationFrac = 0.8
	// coalesceP99Burn: windowed p99 of the decision-wave coalesce delay,
	// seconds. The wave collector is tuned for sub-10ms waves; a p99 an
	// order of magnitude above that means the inspect path is burning
	// its latency budget.
	coalesceP99Burn = 0.1
	// promotionChurnCount: promotions inside one window that suggest the
	// online loop is flapping rather than improving.
	promotionChurnCount = 3
)

// DefaultRules is the grounded rule set the fleet subcommand ships with.
func DefaultRules() []Rule {
	return []Rule{
		{Name: "target-down", Eval: ruleTargetDown},
		{Name: "target-stale", Eval: ruleTargetStale},
		{Name: "rank-straggler", Eval: ruleRankStraggler},
		{Name: "queue-saturation", Eval: ruleQueueSaturation},
		{Name: "wave-latency-burn", Eval: ruleWaveLatencyBurn},
		{Name: "trace-sink-errors", Eval: ruleTraceSinkErrors},
		{Name: "trace-ring-evictions", Eval: ruleTraceRingEvictions},
		{Name: "audit-write-failures", Eval: ruleAuditWriteFailures},
		{Name: "promotion-churn", Eval: rulePromotionChurn},
	}
}

func ruleTargetDown(ctx *RuleContext) []Finding {
	var out []Finding
	for _, t := range ctx.Targets {
		if t.Up {
			continue
		}
		msg := "scrape failing"
		if t.LastErr != "" {
			msg = "scrape failing: " + t.LastErr
		}
		out = append(out, Finding{Target: t.Target.Name, Severity: SevCritical, Message: msg, Value: 0})
	}
	return out
}

func ruleTargetStale(ctx *RuleContext) []Finding {
	// A target can be nominally up but not scraped recently (backoff,
	// long timeouts): its derived numbers are fossils.
	staleAfter := 3 * ctx.IntervalSec
	if staleAfter < 10 {
		staleAfter = 10
	}
	var out []Finding
	for _, t := range ctx.Targets {
		if !t.Up || t.LastOKUnix == 0 {
			continue // target-down already covers it
		}
		age := ctx.NowUnix - t.LastOKUnix
		if age <= staleAfter {
			continue
		}
		out = append(out, Finding{
			Target:   t.Target.Name,
			Severity: SevWarning,
			Message:  fmt.Sprintf("last successful scrape %.0fs ago", age),
			Value:    age,
		})
	}
	return out
}

// ruleRankStraggler compares straggler-wait rates across the
// train-worker targets. Each worker histograms how long it idled at the
// shard barrier waiting on the slowest peer; a healthy mesh spreads that
// wait evenly, so one rank accumulating wait much faster than the mean
// of the others is being starved by (or is itself mis-sharded against)
// the rest of the fleet.
func ruleRankStraggler(ctx *RuleContext) []Finding {
	type rankRate struct {
		name string
		rate float64
	}
	var ranks []rankRate
	for _, t := range ctx.Targets {
		if t.Kind != "train-worker" || t.Hist == nil {
			continue
		}
		r := t.Hist.HistSumRate("schedinspector_dist_straggler_seconds", ctx.WindowSec)
		if math.IsNaN(r) {
			continue
		}
		ranks = append(ranks, rankRate{name: t.Target.Name, rate: r})
	}
	if len(ranks) < 2 {
		return nil
	}
	var out []Finding
	for i, r := range ranks {
		var others float64
		for j, o := range ranks {
			if j != i {
				others += o.rate
			}
		}
		mean := others / float64(len(ranks)-1)
		if r.rate < stragglerFloorFrac {
			continue
		}
		if r.rate > stragglerSkewFactor*mean {
			out = append(out, Finding{
				Target:   r.name,
				Severity: SevWarning,
				Message: fmt.Sprintf("straggler wait %.3fs/s vs peer mean %.3fs/s (%.1fx)",
					r.rate, mean, safeRatio(r.rate, mean)),
				Value: safeRatio(r.rate, mean),
			})
		}
	}
	return out
}

func safeRatio(a, b float64) float64 {
	if b <= 0 {
		return math.Inf(1)
	}
	return a / b
}

func ruleQueueSaturation(ctx *RuleContext) []Finding {
	var out []Finding
	for _, t := range ctx.Targets {
		if t.Hist == nil {
			continue
		}
		depth, ok1 := t.Hist.GaugeLatest("schedinspector_inspect_queue_depth")
		capacity, ok2 := t.Hist.GaugeLatest("schedinspector_inspect_queue_capacity")
		if !ok1 || !ok2 || capacity <= 0 {
			continue
		}
		frac := depth / capacity
		if frac <= queueSaturationFrac {
			continue
		}
		out = append(out, Finding{
			Target:   t.Target.Name,
			Severity: SevWarning,
			Message:  fmt.Sprintf("inspect queue %.0f/%.0f (%.0f%% full)", depth, capacity, frac*100),
			Value:    frac,
		})
	}
	return out
}

func ruleWaveLatencyBurn(ctx *RuleContext) []Finding {
	var out []Finding
	for _, t := range ctx.Targets {
		if t.Hist == nil {
			continue
		}
		p99 := t.Hist.HistQuantile("schedinspector_inspect_coalesce_seconds", 0.99, ctx.WindowSec)
		if math.IsNaN(p99) || p99 <= coalesceP99Burn {
			continue
		}
		out = append(out, Finding{
			Target:   t.Target.Name,
			Severity: SevWarning,
			Message:  fmt.Sprintf("decision-wave coalesce p99 %.3fs over the last %.0fs", p99, ctx.WindowSec),
			Value:    p99,
		})
	}
	return out
}

// counterDeltaRule builds the common "this error counter moved inside
// the window" shape.
func counterDeltaRule(family, what string, sev Severity) func(ctx *RuleContext) []Finding {
	return func(ctx *RuleContext) []Finding {
		var out []Finding
		for _, t := range ctx.Targets {
			if t.Hist == nil {
				continue
			}
			d := t.Hist.CounterDelta(family, ctx.WindowSec)
			if math.IsNaN(d) || d < 0.5 {
				continue
			}
			out = append(out, Finding{
				Target:   t.Target.Name,
				Severity: sev,
				Message:  fmt.Sprintf("%.0f %s in the last %.0fs", d, what, ctx.WindowSec),
				Value:    d,
			})
		}
		return out
	}
}

var (
	ruleTraceSinkErrors = counterDeltaRule(
		"schedinspector_ftrace_sink_errors_total", "trace sink write errors", SevWarning)
	ruleTraceRingEvictions = counterDeltaRule(
		"schedinspector_ftrace_ring_evicted_total", "trace records evicted unflushed", SevInfo)
	ruleAuditWriteFailures = counterDeltaRule(
		"schedinspector_audit_write_failures_total", "audit write failures", SevWarning)
)

func rulePromotionChurn(ctx *RuleContext) []Finding {
	var out []Finding
	for _, t := range ctx.Targets {
		if t.Hist == nil {
			continue
		}
		if rb := t.Hist.CounterDelta("schedinspector_online_rollbacks_total", ctx.WindowSec); !math.IsNaN(rb) && rb >= 0.5 {
			out = append(out, Finding{
				Target:   t.Target.Name,
				Severity: SevWarning,
				Message:  fmt.Sprintf("%.0f online rollbacks in the last %.0fs", rb, ctx.WindowSec),
				Value:    rb,
			})
			continue
		}
		if pr := t.Hist.CounterDelta("schedinspector_online_promotions_total", ctx.WindowSec); !math.IsNaN(pr) && pr >= promotionChurnCount {
			out = append(out, Finding{
				Target:   t.Target.Name,
				Severity: SevInfo,
				Message:  fmt.Sprintf("%.0f promotions in the last %.0fs — model is flapping", pr, ctx.WindowSec),
				Value:    pr,
			})
		}
	}
	return out
}
