package fleet

import (
	"fmt"
	"math"
	"testing"
)

// scrapeAt renders a tiny synthetic exposition: one counter, one gauge,
// one histogram whose observations are supplied.
func scrapeAt(t *testing.T, counter float64, gauge float64, histCum []uint64) *Scrape {
	t.Helper()
	exp := "# TYPE test_ops_total counter\n" +
		fmt.Sprintf("test_ops_total{shard=\"a\"} %g\n", counter) +
		fmt.Sprintf("test_ops_total{shard=\"b\"} %g\n", counter/2) +
		"# TYPE test_depth gauge\n" +
		fmt.Sprintf("test_depth %g\n", gauge) +
		"# TYPE test_lat_seconds histogram\n"
	bounds := []string{"0.1", "1", "+Inf"}
	for i, b := range bounds {
		exp += fmt.Sprintf("test_lat_seconds_bucket{le=%q} %d\n", b, histCum[i])
	}
	exp += fmt.Sprintf("test_lat_seconds_sum %g\n", float64(histCum[2])*0.05)
	exp += fmt.Sprintf("test_lat_seconds_count %d\n", histCum[2])
	s, err := ParseProm([]byte(exp))
	if err != nil {
		t.Fatalf("synthetic exposition: %v", err)
	}
	return s
}

func TestHistoryRates(t *testing.T) {
	h := NewHistory(8)
	if !math.IsNaN(h.CounterRate("test_ops_total", 0)) {
		t.Error("rate from empty ring should be NaN")
	}
	h.Add(100, scrapeAt(t, 1000, 5, []uint64{10, 20, 30}))
	if !math.IsNaN(h.CounterRate("test_ops_total", 0)) {
		t.Error("rate from one point should be NaN")
	}
	h.Add(110, scrapeAt(t, 1600, 9, []uint64{10, 40, 50}))

	// shard a: +600 over 10s = 60/s; shard b: +300 over 10s = 30/s.
	if got := h.CounterRate("test_ops_total", 0); math.Abs(got-90) > 1e-9 {
		t.Errorf("CounterRate = %v, want 90", got)
	}
	if got := h.CounterDelta("test_ops_total", 0); math.Abs(got-900) > 1e-9 {
		t.Errorf("CounterDelta = %v, want 900", got)
	}
	if got, ok := h.GaugeLatest("test_depth"); !ok || got != 9 {
		t.Errorf("GaugeLatest = %v,%v", got, ok)
	}
	sr := h.SeriesRates("test_ops_total", 0)
	if len(sr) != 2 {
		t.Fatalf("SeriesRates: %+v", sr)
	}

	// Windowed histogram quantile: 20 new observations, all in (0.1, 1].
	// Median interpolates inside that bucket.
	q := h.HistQuantile("test_lat_seconds", 0.5, 0)
	if math.IsNaN(q) || q <= 0.1 || q > 1 {
		t.Errorf("windowed p50 = %v, want within (0.1, 1]", q)
	}
	// Observation rate: 20 over 10s.
	if got := h.HistCountRate("test_lat_seconds", 0); math.Abs(got-2) > 1e-9 {
		t.Errorf("HistCountRate = %v, want 2", got)
	}
	// Sum rate: (2.5 - 1.5)/10.
	if got := h.HistSumRate("test_lat_seconds", 0); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("HistSumRate = %v, want 0.1", got)
	}
	if !math.IsNaN(h.CounterRate("nonexistent_total", 0)) {
		t.Error("missing family should be NaN")
	}
}

func TestHistoryCounterReset(t *testing.T) {
	h := NewHistory(8)
	h.Add(100, scrapeAt(t, 1000, 1, []uint64{5, 5, 5}))
	h.Add(110, scrapeAt(t, 40, 1, []uint64{1, 1, 1}))
	// Reset rule: the new value is the whole increase. shard a 40, shard
	// b 20 → 60 over 10s.
	if got := h.CounterRate("test_ops_total", 0); math.Abs(got-6) > 1e-9 {
		t.Errorf("post-reset rate = %v, want 6", got)
	}
	// Histogram reset falls back to the newest cumulative estimate
	// rather than negative deltas.
	if q := h.HistQuantile("test_lat_seconds", 0.5, 0); math.IsNaN(q) {
		t.Error("post-reset quantile should fall back, not NaN")
	}
}

func TestHistoryWindowSelection(t *testing.T) {
	h := NewHistory(16)
	// Counter grows 10/s for 100s; the last 20s it grows 100/s.
	for ts := 0; ts <= 80; ts += 10 {
		h.Add(float64(ts), scrapeAt(t, float64(ts)*10, 0, []uint64{0, 0, 0}))
	}
	h.Add(90, scrapeAt(t, 800+1000, 0, []uint64{0, 0, 0}))
	h.Add(100, scrapeAt(t, 800+2000, 0, []uint64{0, 0, 0}))
	// Full ring: shard a grew 2800 over 100s = 28/s (+half for shard b).
	full := h.CounterRate("test_ops_total", 0)
	// 20s window: shard a grew 2000 over 20s = 100/s (+half).
	recent := h.CounterRate("test_ops_total", 20)
	if math.Abs(full-42) > 1e-9 {
		t.Errorf("full-window rate = %v, want 42", full)
	}
	if math.Abs(recent-150) > 1e-9 {
		t.Errorf("20s-window rate = %v, want 150", recent)
	}
}

func TestHistoryRingBounded(t *testing.T) {
	h := NewHistory(4)
	for i := 0; i < 100; i++ {
		h.Add(float64(i), scrapeAt(t, float64(i), 0, []uint64{0, 0, 0}))
	}
	if h.Len() != 4 {
		t.Fatalf("Len = %d, want 4", h.Len())
	}
	if _, unix := h.Latest(); unix != 99 {
		t.Errorf("latest unix = %v, want 99", unix)
	}
	// Oldest retained point is t=96: full-ring rate spans 3s.
	if got := h.CounterRate("test_ops_total", 0); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("bounded-ring rate = %v, want 1.5", got)
	}
}
