package fleet

import (
	"encoding/json"
	"net/http"
)

// Handler serves the fleet plane's HTTP surface:
//
//	GET /           single-file HTML dashboard (no external assets)
//	GET /v1/fleet   the FleetStatus JSON document
//	GET /metrics    the plane's own exposition (so a fleet of fleets,
//	                or plain curl, can watch the watcher)
func (p *Poller) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(p.Status()); err != nil {
			// Too late for a status code; the encoder already wrote.
			p.cfg.Logf("fleet: encode /v1/fleet: %v", err)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := p.cfg.Registry.WriteProm(w); err != nil {
			p.cfg.Logf("fleet: write /metrics: %v", err)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(dashboardHTML))
	})
	return mux
}
