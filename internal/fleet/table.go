package fleet

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"
)

// WriteTable renders the status as aligned text for the -once mode and
// smoke scripts: a target table, the dist summary, then active alerts.
func WriteTable(w io.Writer, fs *FleetStatus) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TARGET\tKIND\tSTATE\tDECISIONS/S\tEPOCHS/S\tCOALESCE-P99\tEXCHANGE-P99\tQUEUE\tGEN\tDETAIL")
	for _, t := range fs.Targets {
		state := "up"
		detail := fmt.Sprintf("%d pts", t.Points)
		if !t.Up {
			state = "DOWN"
			detail = t.LastErr
		}
		queue := "-"
		if depth, ok := t.Latest["schedinspector_inspect_queue_depth"]; ok {
			if capacity, ok := t.Latest["schedinspector_inspect_queue_capacity"]; ok && capacity > 0 {
				queue = fmt.Sprintf("%.0f/%.0f", depth, capacity)
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			t.Name, t.Kind, state,
			fmtNum(t.Rates, "schedinspector_inspect_decisions_total"),
			fmtNum(t.Rates, "schedinspector_dist_epochs_total"),
			fmtSeconds(t.Quantiles, "schedinspector_inspect_coalesce_seconds/p99"),
			fmtSeconds(t.Quantiles, "schedinspector_dist_exchange_seconds/p99"),
			queue,
			fmtNum(t.Latest, "schedinspector_model_generation"),
			detail)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if d := fs.Dist; d != nil {
		fmt.Fprintf(w, "\ndist: %d workers, %.2f epochs/s fleet-wide, straggler skew %.2fx",
			d.Workers, d.EpochRate, d.SkewRatio)
		if d.MaxRank != "" {
			fmt.Fprintf(w, " (max: %s)", d.MaxRank)
		}
		fmt.Fprintln(w)
	}

	if len(fs.Alerts) == 0 {
		fmt.Fprintln(w, "\nalerts: none")
	} else {
		fmt.Fprintf(w, "\nalerts: %d active\n", len(fs.Alerts))
		atw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, a := range fs.Alerts {
			fmt.Fprintf(atw, "  %s\t%s\t%s\t x%d\t%s\n", a.Severity, a.Rule, a.Target, a.Count, a.Message)
		}
		if err := atw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// fmtNum renders a present, finite value as %.2f and anything else as
// "-" — a missing derivation must not read as a real zero.
func fmtNum(m map[string]float64, key string) string {
	v, ok := m[key]
	if !ok || math.IsNaN(v) || math.IsInf(v, 0) {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

func fmtSeconds(m map[string]float64, key string) string {
	v, ok := m[key]
	if !ok || math.IsNaN(v) || math.IsInf(v, 0) {
		return "-"
	}
	if v >= 1 {
		return fmt.Sprintf("%.2fs", v)
	}
	return fmt.Sprintf("%.1fms", v*1000)
}
