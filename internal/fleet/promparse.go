// Package fleet is the observability plane over a running schedinspector
// fleet: it scrapes the Prometheus text endpoints every process in the
// reproduction already exports (inspectord's /metrics, each train-worker's
// -metrics-addr), keeps a bounded time-series window per target, derives
// rates and histogram quantiles from the raw counters, evaluates grounded
// health rules (stragglers, queue saturation, sink errors, promotion
// churn) into deduplicated alerts, and serves the aggregate as one JSON
// document, one HTML dashboard, and one text table.
//
// Like the rest of the module it is standard library only: the scrape
// client and this parser are the repo's own, sized to round-trip exactly
// what obs.Registry renders (Prometheus text exposition format 0.0.4).
package fleet

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ErrTruncated marks an exposition that ends mid-line — the signature of a
// torn scrape (connection cut, partial write). Callers distinguish it from
// a malformed-but-complete document via errors.Is.
var ErrTruncated = errors.New("fleet: truncated exposition")

// ParseError is the typed failure of ParseProm: the 1-based line the
// parser gave up on and why. It wraps ErrTruncated when the document tore.
type ParseError struct {
	Line int
	Msg  string
	err  error // optional sentinel (ErrTruncated)
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("fleet: exposition line %d: %s", e.Line, e.Msg)
}

func (e *ParseError) Unwrap() error { return e.err }

// Sample is one non-histogram series sample: its label set and value.
type Sample struct {
	Labels map[string]string
	Value  float64
}

// Bucket is one cumulative histogram bucket. The +Inf bucket is always
// present and last.
type Bucket struct {
	Upper    float64 // upper bound (le), +Inf for the final bucket
	CumCount uint64  // observations <= Upper
}

// HistogramSample is one assembled histogram series: cumulative buckets
// (ending at +Inf), plus the _sum and _count samples.
type HistogramSample struct {
	Labels  map[string]string // without the synthetic le label
	Buckets []Bucket
	Sum     float64
	Count   uint64
}

// Uppers returns the finite bounds and cumulative counts in the shape
// obs.HistQuantile consumes (the final count is the +Inf total).
func (h *HistogramSample) Uppers() (uppers []float64, cum []uint64) {
	uppers = make([]float64, 0, len(h.Buckets)-1)
	cum = make([]uint64, 0, len(h.Buckets))
	for _, b := range h.Buckets {
		if !math.IsInf(b.Upper, 1) {
			uppers = append(uppers, b.Upper)
		}
		cum = append(cum, b.CumCount)
	}
	return uppers, cum
}

// Family is one metric family: name, HELP/TYPE metadata, and its series in
// document order. Histogram families populate Histograms; everything else
// populates Samples.
type Family struct {
	Name       string
	Help       string
	Type       string // "counter", "gauge", "histogram", "untyped"
	Samples    []Sample
	Histograms []HistogramSample
}

// Scrape is one parsed exposition: families in document order plus a name
// index.
type Scrape struct {
	Families []*Family
	byName   map[string]*Family
}

// Family returns the named family, or nil.
func (s *Scrape) Family(name string) *Family {
	if s == nil {
		return nil
	}
	return s.byName[name]
}

// histogram assembly state for one label signature.
type histBuild struct {
	labels  map[string]string
	buckets []Bucket
	sum     float64
	count   uint64
	hasSum  bool
	hasCnt  bool
	order   int
}

// ParseProm parses a Prometheus text exposition (format 0.0.4) into
// families, assembling histogram buckets/_sum/_count triples back into
// HistogramSamples. It accepts everything obs.Registry.WriteProm renders —
// and round-trips it byte-for-byte through Scrape.WriteTo — and rejects
// torn or malformed documents with a *ParseError (wrapping ErrTruncated
// when the document ends mid-line).
func ParseProm(data []byte) (*Scrape, error) {
	s := &Scrape{byName: make(map[string]*Family)}
	if len(data) == 0 {
		return s, nil
	}
	if data[len(data)-1] != '\n' {
		line := 1 + strings.Count(string(data), "\n")
		return nil, &ParseError{Line: line, Msg: "document ends mid-line", err: ErrTruncated}
	}

	// Histogram assembly buffers, keyed per family by label signature.
	builds := make(map[string]map[string]*histBuild)

	var cur *Family // family of the last TYPE/HELP line, for metadata order checks
	lineNo := 0
	rest := string(data)
	for len(rest) > 0 {
		lineNo++
		var line string
		idx := strings.IndexByte(rest, '\n')
		line, rest = rest[:idx], rest[idx+1:]
		if line == "" {
			continue
		}
		if line[0] == '#' {
			f, err := s.parseMeta(line, lineNo)
			if err != nil {
				return nil, err
			}
			if f != nil {
				cur = f
			}
			continue
		}
		if err := s.parseSample(line, lineNo, cur, builds); err != nil {
			return nil, err
		}
	}

	// Seal histogram families: every build must be a complete triple.
	for famName, perSig := range builds {
		f := s.byName[famName]
		ordered := make([]*histBuild, 0, len(perSig))
		for _, b := range perSig {
			ordered = append(ordered, b)
		}
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].order < ordered[j].order })
		for _, b := range ordered {
			hs, err := sealHistogram(famName, b)
			if err != nil {
				return nil, err
			}
			f.Histograms = append(f.Histograms, *hs)
		}
	}
	return s, nil
}

// parseMeta handles a "#" line: HELP and TYPE update family metadata,
// anything else is a comment. Returns the family a TYPE/HELP line names.
func (s *Scrape) parseMeta(line string, lineNo int) (*Family, error) {
	kind, rest, ok := cutMetaKeyword(line)
	if !ok {
		return nil, nil // plain comment
	}
	name, tail, _ := strings.Cut(rest, " ")
	if !validMetricName(name) {
		return nil, &ParseError{Line: lineNo, Msg: fmt.Sprintf("invalid metric name %q in %s line", name, kind)}
	}
	f := s.family(name)
	switch kind {
	case "HELP":
		f.Help = unescapeHelp(tail)
	case "TYPE":
		typ := strings.TrimSpace(tail)
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return nil, &ParseError{Line: lineNo, Msg: fmt.Sprintf("unknown TYPE %q for %s", typ, name)}
		}
		if f.Type != "" && f.Type != typ {
			return nil, &ParseError{Line: lineNo, Msg: fmt.Sprintf("family %s re-typed %s -> %s", name, f.Type, typ)}
		}
		if len(f.Samples)+len(f.Histograms) > 0 && f.Type == "" {
			return nil, &ParseError{Line: lineNo, Msg: fmt.Sprintf("TYPE for %s after its samples", name)}
		}
		f.Type = typ
	}
	return f, nil
}

// cutMetaKeyword splits "# HELP rest" / "# TYPE rest"; other comment
// shapes report !ok.
func cutMetaKeyword(line string) (kind, rest string, ok bool) {
	switch {
	case strings.HasPrefix(line, "# HELP "):
		return "HELP", line[len("# HELP "):], true
	case strings.HasPrefix(line, "# TYPE "):
		return "TYPE", line[len("# TYPE "):], true
	}
	return "", "", false
}

// family fetches or creates the named family in document order.
func (s *Scrape) family(name string) *Family {
	if f := s.byName[name]; f != nil {
		return f
	}
	f := &Family{Name: name}
	s.byName[name] = f
	s.Families = append(s.Families, f)
	return f
}

// parseSample parses one sample line into its family, routing histogram
// component samples (_bucket/_sum/_count of a TYPE histogram family) into
// the assembly buffers.
func (s *Scrape) parseSample(line string, lineNo int, _ *Family, builds map[string]map[string]*histBuild) error {
	name, labels, value, err := splitSample(line, lineNo)
	if err != nil {
		return err
	}

	// A histogram component belongs to the base family that was declared
	// TYPE histogram; everything else is a scalar sample of its own family.
	if base, comp := histogramComponent(s, name); base != "" {
		per := builds[base]
		if per == nil {
			per = make(map[string]*histBuild)
			builds[base] = per
		}
		le, sig := splitLE(labels)
		b := per[sig]
		if b == nil {
			lab := labels
			if comp == "bucket" {
				lab = cloneWithoutLE(labels)
			}
			b = &histBuild{labels: lab, order: len(per)}
			per[sig] = b
		}
		switch comp {
		case "bucket":
			if le == nil {
				return &ParseError{Line: lineNo, Msg: fmt.Sprintf("%s_bucket without le label", base)}
			}
			ub, perr := parseValue(*le)
			if perr != nil {
				return &ParseError{Line: lineNo, Msg: fmt.Sprintf("bad le %q: %v", *le, perr)}
			}
			if value < 0 || value != math.Trunc(value) || value >= 1<<63 {
				return &ParseError{Line: lineNo, Msg: fmt.Sprintf("bucket count %v is not a whole number", value)}
			}
			b.buckets = append(b.buckets, Bucket{Upper: ub, CumCount: uint64(value)})
		case "sum":
			if b.hasSum {
				return &ParseError{Line: lineNo, Msg: fmt.Sprintf("duplicate %s_sum", base)}
			}
			b.sum, b.hasSum = value, true
		case "count":
			if b.hasCnt {
				return &ParseError{Line: lineNo, Msg: fmt.Sprintf("duplicate %s_count", base)}
			}
			if value < 0 || value != math.Trunc(value) || value >= 1<<63 {
				return &ParseError{Line: lineNo, Msg: fmt.Sprintf("count %v is not a whole number", value)}
			}
			b.count, b.hasCnt = uint64(value), true
		}
		return nil
	}

	f := s.family(name)
	if f.Type == "histogram" {
		return &ParseError{Line: lineNo, Msg: fmt.Sprintf("bare sample %s of a histogram family", name)}
	}
	f.Samples = append(f.Samples, Sample{Labels: labels, Value: value})
	return nil
}

// histogramComponent reports the base family name and component kind when
// name is the _bucket/_sum/_count series of a family already declared
// TYPE histogram.
func histogramComponent(s *Scrape, name string) (base, comp string) {
	for _, suffix := range [...]string{"_bucket", "_sum", "_count"} {
		b, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if f := s.byName[b]; f != nil && f.Type == "histogram" {
			return b, suffix[1:]
		}
	}
	return "", ""
}

// splitLE extracts the le label (nil if absent) and builds a deterministic
// signature of the remaining labels, which identifies the series the
// component belongs to.
func splitLE(labels map[string]string) (le *string, sig string) {
	if v, ok := labels["le"]; ok {
		le = &v
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte(0)
		b.WriteString(labels[k])
		b.WriteByte(0)
	}
	return le, b.String()
}

func cloneWithoutLE(labels map[string]string) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(labels))
	for k, v := range labels {
		if k != "le" {
			out[k] = v
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// sealHistogram validates one assembled histogram: buckets sorted and
// cumulative, +Inf present and last, _count matching the +Inf bucket, and
// _sum present. A scrape torn mid-histogram fails here.
func sealHistogram(name string, b *histBuild) (*HistogramSample, error) {
	if len(b.buckets) == 0 {
		return nil, &ParseError{Line: 0, Msg: fmt.Sprintf("histogram %s has no buckets", name), err: ErrTruncated}
	}
	for i := 1; i < len(b.buckets); i++ {
		if !(b.buckets[i].Upper > b.buckets[i-1].Upper) {
			return nil, &ParseError{Line: 0, Msg: fmt.Sprintf("histogram %s buckets not increasing", name)}
		}
		if b.buckets[i].CumCount < b.buckets[i-1].CumCount {
			return nil, &ParseError{Line: 0, Msg: fmt.Sprintf("histogram %s bucket counts not cumulative", name)}
		}
	}
	last := b.buckets[len(b.buckets)-1]
	if !math.IsInf(last.Upper, 1) {
		return nil, &ParseError{Line: 0, Msg: fmt.Sprintf("histogram %s missing +Inf bucket", name), err: ErrTruncated}
	}
	if !b.hasCnt || !b.hasSum {
		return nil, &ParseError{Line: 0, Msg: fmt.Sprintf("histogram %s missing _sum/_count", name), err: ErrTruncated}
	}
	if b.count != last.CumCount {
		return nil, &ParseError{Line: 0, Msg: fmt.Sprintf("histogram %s _count %d != +Inf bucket %d", name, b.count, last.CumCount)}
	}
	return &HistogramSample{Labels: b.labels, Buckets: b.buckets, Sum: b.sum, Count: b.count}, nil
}

// splitSample tears one sample line into name, labels and value.
func splitSample(line string, lineNo int) (name string, labels map[string]string, value float64, err error) {
	i := 0
	for i < len(line) && isNameByte(line[i], i == 0) {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, 0, &ParseError{Line: lineNo, Msg: fmt.Sprintf("invalid sample name in %q", clip(line))}
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		var consumed int
		labels, consumed, err = parseLabels(rest, lineNo)
		if err != nil {
			return "", nil, 0, err
		}
		rest = rest[consumed:]
	}
	if !strings.HasPrefix(rest, " ") {
		return "", nil, 0, &ParseError{Line: lineNo, Msg: fmt.Sprintf("missing value separator in %q", clip(line))}
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return "", nil, 0, &ParseError{Line: lineNo, Msg: fmt.Sprintf("want `value [timestamp]` in %q", clip(line))}
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, &ParseError{Line: lineNo, Msg: fmt.Sprintf("bad value %q: %v", fields[0], err)}
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, &ParseError{Line: lineNo, Msg: fmt.Sprintf("bad timestamp %q", fields[1])}
		}
	}
	return name, labels, value, nil
}

// parseLabels consumes a {k="v",...} block and returns how many bytes it
// ate. Values are unescaped (\\, \", \n).
func parseLabels(s string, lineNo int) (map[string]string, int, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return nil, 0, &ParseError{Line: lineNo, Msg: "unterminated label block", err: ErrTruncated}
		}
		if s[i] == '}' {
			return labels, i + 1, nil
		}
		start := i
		for i < len(s) && isNameByte(s[i], i == start) {
			i++
		}
		key := s[start:i]
		if !validMetricName(key) {
			return nil, 0, &ParseError{Line: lineNo, Msg: fmt.Sprintf("invalid label name in %q", clip(s))}
		}
		if i+1 >= len(s) || s[i] != '=' || s[i+1] != '"' {
			return nil, 0, &ParseError{Line: lineNo, Msg: fmt.Sprintf("label %s missing =\"...\"", key)}
		}
		i += 2
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, 0, &ParseError{Line: lineNo, Msg: "unterminated label value", err: ErrTruncated}
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, 0, &ParseError{Line: lineNo, Msg: "dangling escape in label value", err: ErrTruncated}
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, 0, &ParseError{Line: lineNo, Msg: fmt.Sprintf("bad escape \\%c in label value", s[i+1])}
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[key]; dup {
			return nil, 0, &ParseError{Line: lineNo, Msg: fmt.Sprintf("duplicate label %s", key)}
		}
		labels[key] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// parseValue parses a sample value with the Prometheus spellings of the
// non-finite values.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func isNameByte(c byte, first bool) bool {
	alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
	return alpha || (!first && c >= '0' && c <= '9')
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameByte(s[i], i == 0) {
			return false
		}
	}
	return true
}

func unescapeHelp(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func clip(s string) string {
	if len(s) > 60 {
		return s[:60] + "..."
	}
	return s
}
