package fleet

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"schedinspector/internal/obs"
)

// buildTestRegistry assembles a registry covering every shape obs can
// render: bare and labeled counters, gauges, a scrape-time GaugeFunc,
// histograms with custom buckets (including empty and non-finite-sum
// cases), and label values that need escaping.
func buildTestRegistry(rng *rand.Rand) *obs.Registry {
	r := obs.NewRegistry()
	c := r.Counter("fleet_test_requests_total", "Requests served.", nil)
	c.Add(float64(rng.Intn(100000)))
	for _, code := range []string{"200", "500"} {
		cc := r.Counter("fleet_test_coded_total", "By code.", obs.Labels{"code": code, "route": "/v1/inspect"})
		cc.Add(float64(rng.Intn(1000)))
	}
	g := r.Gauge("fleet_test_depth", "A gauge.", nil)
	g.Set(rng.Float64()*1000 - 500)
	r.GaugeFunc("fleet_test_ratio", "Scrape-time derived gauge.", nil,
		func() float64 { return 0.25 })
	esc := r.Gauge("fleet_test_escaped", "Help with a \\ backslash\nand newline.",
		obs.Labels{"path": `C:\tmp "quoted"` + "\nnewline"})
	esc.Set(42)
	h := r.Histogram("fleet_test_latency_seconds", "Latency.", obs.DefBuckets(), nil)
	for i := 0; i < 200; i++ {
		h.Observe(rng.ExpFloat64() / 10)
	}
	hl := r.Histogram("fleet_test_sized", "Labeled histogram.",
		obs.ExponentialBuckets(1, 2, 6), obs.Labels{"kind": "wave"})
	for i := 0; i < 50; i++ {
		hl.Observe(float64(rng.Intn(100)))
	}
	r.Histogram("fleet_test_empty_seconds", "Histogram with no observations.",
		obs.LinearBuckets(0.5, 0.5, 3), nil)
	return r
}

func render(t *testing.T, r *obs.Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	return buf.Bytes()
}

// TestParsePromRoundTrip is the parser's oracle: everything the obs
// registry renders must parse and re-render byte-for-byte.
func TestParsePromRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		src := render(t, buildTestRegistry(rand.New(rand.NewSource(seed))))
		s, err := ParseProm(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		var out bytes.Buffer
		if _, err := s.WriteTo(&out); err != nil {
			t.Fatalf("seed %d: render: %v", seed, err)
		}
		if !bytes.Equal(src, out.Bytes()) {
			t.Fatalf("seed %d: round trip diverged\n--- original ---\n%s--- reparsed ---\n%s",
				seed, src, out.Bytes())
		}
	}
}

func TestParsePromContents(t *testing.T) {
	src := render(t, buildTestRegistry(rand.New(rand.NewSource(1))))
	s, err := ParseProm(src)
	if err != nil {
		t.Fatal(err)
	}

	f := s.Family("fleet_test_coded_total")
	if f == nil || f.Type != "counter" || len(f.Samples) != 2 {
		t.Fatalf("coded_total family: %+v", f)
	}
	for _, sm := range f.Samples {
		if sm.Labels["route"] != "/v1/inspect" {
			t.Errorf("labels lost: %+v", sm.Labels)
		}
	}

	esc := s.Family("fleet_test_escaped")
	if esc == nil || len(esc.Samples) != 1 {
		t.Fatalf("escaped family: %+v", esc)
	}
	if got := esc.Samples[0].Labels["path"]; got != `C:\tmp "quoted"`+"\nnewline" {
		t.Errorf("escaped label value mangled: %q", got)
	}
	if !strings.Contains(esc.Help, "\\ backslash\nand newline") {
		t.Errorf("HELP unescaping mangled: %q", esc.Help)
	}

	hf := s.Family("fleet_test_latency_seconds")
	if hf == nil || hf.Type != "histogram" || len(hf.Histograms) != 1 {
		t.Fatalf("latency family: %+v", hf)
	}
	h := hf.Histograms[0]
	if !math.IsInf(h.Buckets[len(h.Buckets)-1].Upper, 1) {
		t.Errorf("+Inf bucket not last: %+v", h.Buckets)
	}
	if h.Count != h.Buckets[len(h.Buckets)-1].CumCount || h.Count != 200 {
		t.Errorf("count mismatch: %d vs %d", h.Count, h.Buckets[len(h.Buckets)-1].CumCount)
	}
	uppers, cum := h.Uppers()
	if len(uppers) != len(obs.DefBuckets()) || len(cum) != len(uppers)+1 {
		t.Fatalf("Uppers shape: %d/%d", len(uppers), len(cum))
	}
	if q := obs.HistQuantile(0.5, uppers, cum); math.IsNaN(q) || q <= 0 {
		t.Errorf("median from parsed buckets: %v", q)
	}

	if e := s.Family("fleet_test_empty_seconds"); e == nil || e.Histograms[0].Count != 0 {
		t.Errorf("empty histogram: %+v", e)
	}
}

// TestParsePromTruncated cuts a rendered exposition at every byte offset:
// any cut that still parses must be a clean line boundary that does not
// tear a histogram; mid-line cuts must report ErrTruncated.
func TestParsePromTruncated(t *testing.T) {
	src := render(t, buildTestRegistry(rand.New(rand.NewSource(3))))
	for cut := 1; cut < len(src); cut++ {
		_, err := ParseProm(src[:cut])
		if src[cut-1] != '\n' {
			// Mid-line tear: must fail, and must say it was truncated.
			if err == nil {
				t.Fatalf("cut at %d (mid-line) parsed", cut)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("cut at %d: error %v is not a *ParseError", cut, err)
			}
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut at %d: mid-line tear not flagged ErrTruncated: %v", cut, err)
			}
		} else if err != nil {
			// Clean line boundary: only a torn histogram may complain, and
			// it must do so with a typed error.
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("cut at %d: error %v is not a *ParseError", cut, err)
			}
		}
	}
}

func TestParsePromMalformed(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"bad name", "1leading_digit 5\n"},
		{"no value", "metric_name\n"},
		{"bad value", "metric_name abc\n"},
		{"bad escape", `m{l="\q"} 1` + "\n"},
		{"unterminated labels", `m{l="v" 1` + "\n"},
		{"duplicate label", `m{l="a",l="b"} 1` + "\n"},
		{"retyped family", "# TYPE m counter\n# TYPE m gauge\nm 1\n"},
		{"unknown type", "# TYPE m flurble\nm 1\n"},
		{"bucket without le", "# TYPE h histogram\nh_bucket 3\nh_sum 1\nh_count 3\n"},
		{"missing +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_sum 1\nh_count 3\n"},
		{"missing count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\n"},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n"},
		{"non-cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"},
		{"fractional bucket count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1.5\nh_sum 1\nh_count 1\n"},
		{"bare histogram sample", "# TYPE h histogram\nh 3\n"},
		{"type after samples", "m 1\n# TYPE m counter\n"},
	}
	for _, tc := range cases {
		_, err := ParseProm([]byte(tc.in))
		if err == nil {
			t.Errorf("%s: parsed %q", tc.name, tc.in)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error %v is not a *ParseError", tc.name, err)
		}
	}
}

func TestParsePromTolerated(t *testing.T) {
	// Shapes a strict-but-interoperable parser should accept: comments,
	// blank lines, timestamps, untyped samples, non-finite values.
	in := "# a free comment\n\nm1 5 1712345678\nm2{a=\"b\"} +Inf\nm3 NaN\n"
	s, err := ParseProm([]byte(in))
	if err != nil {
		t.Fatalf("tolerated shapes rejected: %v", err)
	}
	if f := s.Family("m2"); f == nil || !math.IsInf(f.Samples[0].Value, 1) {
		t.Errorf("m2: %+v", s.Family("m2"))
	}
	if f := s.Family("m3"); f == nil || !math.IsNaN(f.Samples[0].Value) {
		t.Errorf("m3: %+v", s.Family("m3"))
	}
	if len(s.Families) != 3 {
		t.Errorf("families: %d", len(s.Families))
	}
	// Empty input is a valid, empty exposition.
	if s, err := ParseProm(nil); err != nil || len(s.Families) != 0 {
		t.Errorf("empty input: %v, %+v", err, s)
	}
}
