package fleet

import (
	"math"
	"sort"
	"strings"
	"sync"

	"schedinspector/internal/obs"
)

// History is a bounded ring of timestamped scrapes for one target. All
// derivation — counter rates, windowed histogram quantiles, latest gauge
// values — reads from this ring, so a fleet process holds at most
// cap × targets expositions in memory no matter how long it runs.
type History struct {
	mu   sync.Mutex
	buf  []timedScrape
	head int // next write slot
	n    int // live entries
}

type timedScrape struct {
	unix float64 // scrape completion time, seconds
	s    *Scrape
}

// DefaultHistoryCap bounds each target's ring when the caller does not
// choose: at a 2s poll interval it holds ~4 minutes of history.
const DefaultHistoryCap = 128

// NewHistory returns a ring holding at most capPoints scrapes.
func NewHistory(capPoints int) *History {
	if capPoints < 2 {
		capPoints = 2
	}
	return &History{buf: make([]timedScrape, capPoints)}
}

// Add records a scrape taken at the given unix time (seconds).
func (h *History) Add(unix float64, s *Scrape) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buf[h.head] = timedScrape{unix: unix, s: s}
	h.head = (h.head + 1) % len(h.buf)
	if h.n < len(h.buf) {
		h.n++
	}
}

// Len reports how many scrapes the ring currently holds.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Latest returns the newest scrape and its unix time, or nil when the
// ring is empty.
func (h *History) Latest() (*Scrape, float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return nil, 0
	}
	ts := h.buf[(h.head-1+len(h.buf))%len(h.buf)]
	return ts.s, ts.unix
}

// window returns the newest scrape and the oldest scrape not older than
// windowSec before it (the whole ring when windowSec <= 0). Both nil
// when fewer than two points exist — no interval, no derivative.
func (h *History) window(windowSec float64) (old, new_ *timedScrape) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n < 2 {
		return nil, nil
	}
	newest := h.buf[(h.head-1+len(h.buf))%len(h.buf)]
	oldest := newest
	for i := 1; i < h.n; i++ {
		ts := h.buf[(h.head-1-i+len(h.buf))%len(h.buf)]
		if windowSec > 0 && newest.unix-ts.unix > windowSec {
			break
		}
		oldest = ts
	}
	if oldest.unix >= newest.unix {
		return nil, nil
	}
	o, n := oldest, newest
	return &o, &n
}

// labelSig is the canonical series identity: sorted k=v pairs. The empty
// label set is "".
func labelSig(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// SeriesRate is a per-series counter derivative over the window, plus
// the latest absolute value.
type SeriesRate struct {
	Labels map[string]string `json:"labels,omitempty"`
	Rate   float64           `json:"rate"`
	Latest float64           `json:"latest"`
}

// counterIncrease applies the Prometheus reset rule: a counter that went
// backwards restarted, so the whole new value is the increase.
func counterIncrease(old, new_ float64) float64 {
	if new_ >= old {
		return new_ - old
	}
	return new_
}

// SeriesRates derives per-series rates for a counter family over the
// window. Series present only in the newest scrape are treated as having
// started from zero. Nil when the family is absent or the ring cannot
// supply an interval.
func (h *History) SeriesRates(family string, windowSec float64) []SeriesRate {
	old, newest := h.window(windowSec)
	if old == nil {
		return nil
	}
	nf := newest.s.Family(family)
	if nf == nil {
		return nil
	}
	dt := newest.unix - old.unix
	oldVals := make(map[string]float64)
	if of := old.s.Family(family); of != nil {
		for _, sm := range of.Samples {
			oldVals[labelSig(sm.Labels)] = sm.Value
		}
	}
	out := make([]SeriesRate, 0, len(nf.Samples))
	for _, sm := range nf.Samples {
		inc := counterIncrease(oldVals[labelSig(sm.Labels)], sm.Value)
		out = append(out, SeriesRate{Labels: sm.Labels, Rate: inc / dt, Latest: sm.Value})
	}
	return out
}

// CounterRate sums the per-series rates of a counter family. NaN when
// the family is absent or no interval exists yet.
func (h *History) CounterRate(family string, windowSec float64) float64 {
	series := h.SeriesRates(family, windowSec)
	if series == nil {
		return math.NaN()
	}
	var sum float64
	for _, s := range series {
		sum += s.Rate
	}
	return sum
}

// CounterDelta sums the per-series increases of a counter family over
// the window (reset-corrected). NaN when underivable.
func (h *History) CounterDelta(family string, windowSec float64) float64 {
	series := h.SeriesRates(family, windowSec)
	if series == nil {
		return math.NaN()
	}
	old, newest := h.window(windowSec)
	if old == nil {
		return math.NaN()
	}
	var sum float64
	for _, s := range series {
		sum += s.Rate * (newest.unix - old.unix)
	}
	return sum
}

// GaugeLatest returns the newest value of a single-series family
// (samples summed when labeled, which is what "depth across shards"
// means anyway). ok is false when the family is missing.
func (h *History) GaugeLatest(family string) (float64, bool) {
	s, _ := h.Latest()
	if s == nil {
		return 0, false
	}
	f := s.Family(family)
	if f == nil || len(f.Samples) == 0 {
		return 0, false
	}
	var sum float64
	for _, sm := range f.Samples {
		sum += sm.Value
	}
	return sum, true
}

// HistQuantile estimates the q-quantile of a histogram family over the
// window from bucket-count deltas, merging all series of the family. A
// counter reset inside the window falls back to the newest cumulative
// buckets (all-time estimate beats garbage). With no interval yet, the
// newest cumulative buckets are used directly. NaN when the family is
// absent or saw no observations in the window.
func (h *History) HistQuantile(family string, q float64, windowSec float64) float64 {
	latest, _ := h.Latest()
	if latest == nil {
		return math.NaN()
	}
	nf := latest.Family(family)
	if nf == nil || len(nf.Histograms) == 0 {
		return math.NaN()
	}
	uppers, cum := mergeHistograms(nf.Histograms)
	old, _ := h.window(windowSec)
	if old != nil {
		if of := old.s.Family(family); of != nil && len(of.Histograms) > 0 {
			ou, ocum := mergeHistograms(of.Histograms)
			if delta, ok := subtractCum(uppers, cum, ou, ocum); ok {
				// In-window estimate; an empty window means no fresh
				// observations, which the caller should see as NaN rather
				// than a stale all-time value.
				return obs.HistQuantile(q, uppers, delta)
			}
		}
	}
	return obs.HistQuantile(q, uppers, cum)
}

// HistCountRate is the observation rate of a histogram family over the
// window (merged across series). NaN when underivable.
func (h *History) HistCountRate(family string, windowSec float64) float64 {
	old, newest := h.window(windowSec)
	if old == nil {
		return math.NaN()
	}
	nf := newest.s.Family(family)
	if nf == nil || len(nf.Histograms) == 0 {
		return math.NaN()
	}
	var oldCount float64
	if of := old.s.Family(family); of != nil {
		for i := range of.Histograms {
			oldCount += float64(of.Histograms[i].Count)
		}
	}
	var newCount float64
	for i := range nf.Histograms {
		newCount += float64(nf.Histograms[i].Count)
	}
	return counterIncrease(oldCount, newCount) / (newest.unix - old.unix)
}

// HistSumRate is the rate of a histogram family's _sum over the window
// (merged across series) — for a seconds-valued histogram this is the
// fraction of wall time spent in the measured state. NaN when
// underivable or when the sum went backwards (reset).
func (h *History) HistSumRate(family string, windowSec float64) float64 {
	old, newest := h.window(windowSec)
	if old == nil {
		return math.NaN()
	}
	nf := newest.s.Family(family)
	of := old.s.Family(family)
	if nf == nil || of == nil || len(nf.Histograms) == 0 {
		return math.NaN()
	}
	var oldSum, newSum float64
	for i := range of.Histograms {
		oldSum += of.Histograms[i].Sum
	}
	for i := range nf.Histograms {
		newSum += nf.Histograms[i].Sum
	}
	if newSum < oldSum {
		return math.NaN()
	}
	return (newSum - oldSum) / (newest.unix - old.unix)
}

// mergeHistograms sums the cumulative buckets of every series in a
// family. Series whose bucket layout differs from the first are skipped
// — obs registries give one layout per family, so this only defends
// against foreign expositions.
func mergeHistograms(hs []HistogramSample) (uppers []float64, cum []uint64) {
	uppers, cum = hs[0].Uppers()
	for i := 1; i < len(hs); i++ {
		u2, c2 := hs[i].Uppers()
		if !sameUppers(uppers, u2) {
			continue
		}
		for j := range cum {
			cum[j] += c2[j]
		}
	}
	return uppers, cum
}

func sameUppers(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// subtractCum computes new-old bucket-wise; ok is false on layout
// mismatch or any negative delta (counter reset).
func subtractCum(uppers []float64, newCum []uint64, oldUppers []float64, oldCum []uint64) ([]uint64, bool) {
	if !sameUppers(uppers, oldUppers) || len(newCum) != len(oldCum) {
		return nil, false
	}
	out := make([]uint64, len(newCum))
	for i := range newCum {
		if newCum[i] < oldCum[i] {
			return nil, false
		}
		out[i] = newCum[i] - oldCum[i]
	}
	return out, true
}
