package fleet

// dashboardHTML is the whole dashboard: one self-contained page, no
// external scripts, fonts, or build step — it must render from an
// air-gapped cluster head node over plain HTTP. It polls /v1/fleet every
// two seconds and re-renders.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>schedinspector fleet</title>
<style>
  :root { color-scheme: dark; }
  body { font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, Consolas, monospace;
         background: #0d1117; color: #c9d1d9; margin: 0; padding: 1.2rem 1.6rem; }
  h1 { font-size: 1.05rem; margin: 0 0 .2rem; color: #e6edf3; }
  .sub { color: #8b949e; margin-bottom: 1rem; }
  table { border-collapse: collapse; margin: .6rem 0 1.2rem; width: 100%; }
  th, td { text-align: left; padding: .25rem .7rem .25rem 0; border-bottom: 1px solid #21262d;
           vertical-align: top; white-space: nowrap; }
  th { color: #8b949e; font-weight: 600; }
  td.num { font-variant-numeric: tabular-nums; }
  .up { color: #3fb950; } .down { color: #f85149; font-weight: 700; }
  .sev-critical { color: #f85149; font-weight: 700; }
  .sev-warning { color: #d29922; }
  .sev-info { color: #58a6ff; }
  .kind { color: #8b949e; }
  .ok { color: #3fb950; } .rej { color: #f85149; } .rb { color: #d29922; }
  .none { color: #484f58; font-style: italic; }
  section h2 { font-size: .95rem; color: #e6edf3; margin: 1.2rem 0 .2rem; }
  #err { color: #f85149; min-height: 1.2em; }
  .wrap { white-space: normal; max-width: 42rem; }
</style>
</head>
<body>
<h1>schedinspector fleet</h1>
<div class="sub">window <span id="win">–</span>s · <span id="stamp">connecting…</span></div>
<div id="err"></div>

<section><h2>targets</h2>
<table><thead><tr>
  <th>target</th><th>kind</th><th>state</th><th>decisions/s</th><th>epochs/s</th>
  <th>coalesce p99</th><th>exchange p99</th><th>queue</th><th>gen</th><th>detail</th>
</tr></thead><tbody id="targets"></tbody></table></section>

<section><h2>dist</h2><div id="dist" class="none">no train workers</div></section>

<section><h2>alerts</h2>
<table><thead><tr>
  <th>severity</th><th>rule</th><th>target</th><th>for</th><th>message</th>
</tr></thead><tbody id="alerts"></tbody></table></section>

<section><h2>online candidates</h2>
<table><thead><tr>
  <th>target</th><th>gen</th><th>verdict</th><th>cand</th><th>serving</th><th>margin</th><th>age</th>
</tr></thead><tbody id="online"></tbody></table></section>

<section><h2>rules</h2>
<table><thead><tr><th>rule</th><th>evaluated</th><th>active</th></tr></thead>
<tbody id="rules"></tbody></table></section>

<script>
"use strict";
const $ = id => document.getElementById(id);
const esc = s => String(s).replace(/[&<>"]/g,
  c => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));
const num = (v, d) => (v === undefined || v === null || !isFinite(v)) ? "–"
  : Number(v).toFixed(d === undefined ? 2 : d);
const ms = v => !isFinite(v) ? "–" : (v >= 1 ? num(v, 2) + "s" : num(v * 1000, 1) + "ms");
const ago = (now, t) => !t ? "–" : num(Math.max(0, now - t), 0) + "s";

function row(cells) { return "<tr>" + cells.map(c => "<td class=\"num\">" + c + "</td>").join("") + "</tr>"; }
function empty(tbody, cols, text) {
  tbody.innerHTML = "<tr><td colspan=\"" + cols + "\" class=\"none\">" + esc(text) + "</td></tr>";
}

function render(fs) {
  $("win").textContent = num(fs.window_sec, 0);
  $("stamp").textContent = "updated " + new Date().toLocaleTimeString();

  const tb = $("targets"); tb.innerHTML = "";
  for (const t of fs.targets || []) {
    const q = t.quantiles || {}, r = t.rates || {}, l = t.latest || {};
    const depth = l["schedinspector_inspect_queue_depth"], cap = l["schedinspector_inspect_queue_capacity"];
    const queue = (depth !== undefined && cap) ? num(depth, 0) + "/" + num(cap, 0) : "–";
    const state = t.up ? '<span class="up">up</span>' : '<span class="down">DOWN</span>';
    const detail = t.up ? ago(fs.now_unix, t.last_scrape_unix) + " ago, " + t.points + " pts"
                        : esc(t.last_error || "");
    tb.insertAdjacentHTML("beforeend", row([
      esc(t.name), '<span class="kind">' + esc(t.kind) + "</span>", state,
      num(r["schedinspector_inspect_decisions_total"]),
      num(r["schedinspector_dist_epochs_total"]),
      ms(q["schedinspector_inspect_coalesce_seconds/p99"]),
      ms(q["schedinspector_dist_exchange_seconds/p99"]),
      queue, num(l["schedinspector_model_generation"], 0),
      '<span class="wrap">' + detail + "</span>",
    ]));
  }
  if (!(fs.targets || []).length) empty(tb, 10, "no targets");

  const d = fs.dist;
  $("dist").innerHTML = !d ? '<span class="none">no train workers</span>' :
    d.workers + " workers · " + num(d.epoch_rate) + " epochs/s fleet-wide · skew " +
    num(d.skew_ratio) + "x" + (d.max_rank ? " (max: " + esc(d.max_rank) + ")" : "") +
    " · straggler s/s: " + Object.entries(d.straggler_rates || {})
      .map(([k, v]) => esc(k) + "=" + num(v, 3)).join(" ");

  const ab = $("alerts"); ab.innerHTML = "";
  for (const a of fs.alerts || []) {
    ab.insertAdjacentHTML("beforeend", row([
      '<span class="sev-' + esc(a.severity) + '">' + esc(a.severity) + "</span>",
      esc(a.rule), esc(a.target), ago(fs.now_unix, a.fired_at_unix),
      '<span class="wrap">' + esc(a.message) + "</span>",
    ]));
  }
  if (!(fs.alerts || []).length) empty(ab, 5, "none active");

  const ob = $("online"); ob.innerHTML = "";
  let any = false;
  for (const t of fs.targets || []) {
    const recs = (t.online_history && t.online_history.candidates) || [];
    for (const c of recs.slice().reverse()) {
      any = true;
      const cls = c.verdict === "promoted" || c.verdict === "confirmed" ? "ok"
        : c.verdict === "rolled-back" ? "rb" : "rej";
      ob.insertAdjacentHTML("beforeend", row([
        esc(t.name), num(c.generation, 0),
        '<span class="' + cls + '">' + esc(c.verdict) + "</span>",
        num(c.candidate_score, 4), num(c.serving_score, 4), num(c.margin, 4),
        ago(fs.now_unix, c.unix),
      ]));
    }
  }
  if (!any) empty(ob, 7, "no candidate verdicts yet");

  const rb = $("rules"); rb.innerHTML = "";
  for (const r of fs.rules || []) {
    rb.insertAdjacentHTML("beforeend",
      row([esc(r.name), r.evaluated, r.active ? '<span class="sev-warning">' + r.active + "</span>" : "0"]));
  }
}

async function tick() {
  try {
    const resp = await fetch("/v1/fleet");
    if (!resp.ok) throw new Error("HTTP " + resp.status);
    render(await resp.json());
    $("err").textContent = "";
  } catch (e) {
    $("err").textContent = "fetch /v1/fleet failed: " + e;
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`
