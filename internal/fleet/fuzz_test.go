package fleet

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzParseProm asserts two properties over arbitrary input: the parser
// never panics, and any input it accepts is a fixed point after one
// render — parse→render→parse→render must reproduce the first render
// byte-for-byte (the second pass must also succeed). Seeded with real
// obs.Registry output plus the malformed shapes the unit tests reject.
func FuzzParseProm(f *testing.F) {
	f.Add([]byte(renderSeed()))
	f.Add([]byte("# HELP m help\n# TYPE m counter\nm{a=\"b\"} 5\n"))
	f.Add([]byte("# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1.5\nh_count 3\n"))
	f.Add([]byte("m NaN\nm2 +Inf 1712345678\n"))
	f.Add([]byte("m{l=\"v\" 1\n"))
	f.Add([]byte("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1.5\n"))
	f.Add([]byte("torn line without newline"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseProm(data)
		if err != nil {
			return
		}
		var first bytes.Buffer
		if _, err := s.WriteTo(&first); err != nil {
			t.Fatalf("render of accepted input failed: %v", err)
		}
		s2, err := ParseProm(first.Bytes())
		if err != nil {
			t.Fatalf("re-parse of own render failed: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if _, err := s2.WriteTo(&second); err != nil {
			t.Fatalf("second render failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("render not a fixed point\n--- first ---\n%s--- second ---\n%s",
				first.Bytes(), second.Bytes())
		}
	})
}

func renderSeed() string {
	var buf bytes.Buffer
	if err := buildTestRegistry(rand.New(rand.NewSource(7))).WriteProm(&buf); err != nil {
		panic(err)
	}
	return buf.String()
}
