package fleet

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WriteTo re-renders the parsed scrape in the Prometheus text format,
// byte-identical to the obs.Registry.WriteProm output it was parsed from:
// same family order, same HELP/TYPE lines, same sorted-label rendering,
// same %g value formatting, histograms as cumulative buckets (le spliced
// last) followed by _sum and _count. The round-trip is the parser's
// correctness oracle — see TestParsePromRoundTrip — and makes a Scrape a
// lossless intermediate representation for re-export.
func (s *Scrape) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	for _, f := range s.Families {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		if f.Type != "" {
			fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type)
		}
		for _, sm := range f.Samples {
			fmt.Fprintf(bw, "%s%s %s\n", f.Name, renderLabels(sm.Labels, ""), formatValue(sm.Value))
		}
		for i := range f.Histograms {
			h := &f.Histograms[i]
			for _, b := range h.Buckets {
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.Name,
					renderLabels(h.Labels, formatValue(b.Upper)), b.CumCount)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", f.Name, renderLabels(h.Labels, ""), formatValue(h.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", f.Name, renderLabels(h.Labels, ""), h.Count)
		}
	}
	err := bw.Flush()
	return cw.n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// renderLabels renders the `{k="v",...}` suffix with sorted keys and
// escaped values, exactly as obs does; a non-empty le appends the
// synthetic bucket label last.
func renderLabels(labels map[string]string, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue matches obs: shortest %g round-trip decimal with the
// Prometheus spellings of the non-finite values.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}
