package fleet

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"schedinspector/internal/obs"
)

// Config wires a Poller.
type Config struct {
	Targets []Target
	// Interval between scrape cycles (default 2s).
	Interval time.Duration
	// Timeout per target scrape (default min(Interval, 5s)).
	Timeout time.Duration
	// Window over which rates and quantiles are derived (default 60s).
	Window time.Duration
	// HistoryCap bounds each target's scrape ring (default
	// DefaultHistoryCap).
	HistoryCap int
	// Rules evaluated each cycle; nil means DefaultRules().
	Rules []Rule
	// Registry receives the fleet plane's self-metrics; nil allocates a
	// private one.
	Registry *obs.Registry
	// Logf, when set, receives one line per target state transition.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
		if c.Timeout > c.Interval {
			c.Timeout = c.Interval
		}
	}
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.HistoryCap <= 0 {
		c.HistoryCap = DefaultHistoryCap
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Poller scrapes every target concurrently each cycle, feeds the rings,
// and runs the rule engine over the result. It is the whole fleet
// plane's write path; the HTTP surface and -once table only read.
type Poller struct {
	cfg    Config
	client Client
	engine *Engine
	states []*targetState

	cycles       *obs.Counter
	alertsFired  *obs.Counter
	alertsActive *obs.Gauge

	mu         sync.Mutex
	lastAlerts []Alert
}

type targetState struct {
	target Target
	hist   *History

	up            *obs.Gauge
	scrapeSeconds *obs.Gauge
	scrapeErrors  *obs.Counter

	mu            sync.Mutex
	isUp          bool
	lastErr       string
	lastOKUnix    float64
	consecFails   int
	backoffUntil  time.Time
	kind          string
	onlineHistory json.RawMessage // raw /v1/online/history body, inspectord only
}

// maxBackoff caps the per-target retry backoff so a rebooted process is
// picked back up within a minute no matter how long it was down.
const maxBackoff = time.Minute

// NewPoller builds the poller and registers its self-metrics.
func NewPoller(cfg Config) *Poller {
	cfg.fill()
	p := &Poller{
		cfg:    cfg,
		engine: NewEngine(cfg.Rules),
		cycles: cfg.Registry.Counter("schedinspector_fleet_cycles_total",
			"Scrape cycles completed by the fleet poller.", nil),
		alertsFired: cfg.Registry.Counter("schedinspector_fleet_alerts_fired_total",
			"Distinct alerts fired since the poller started.", nil),
		alertsActive: cfg.Registry.Gauge("schedinspector_fleet_alerts_active",
			"Alerts currently active.", nil),
	}
	for _, t := range cfg.Targets {
		lbl := obs.Labels{"target": t.Name}
		p.states = append(p.states, &targetState{
			target: t,
			hist:   NewHistory(cfg.HistoryCap),
			up: cfg.Registry.Gauge("schedinspector_fleet_target_up",
				"Whether the last scrape of the target succeeded.", lbl),
			scrapeSeconds: cfg.Registry.Gauge("schedinspector_fleet_scrape_seconds",
				"Duration of the target's last scrape attempt.", lbl),
			scrapeErrors: cfg.Registry.Counter("schedinspector_fleet_scrape_errors_total",
				"Failed scrapes of the target.", lbl),
		})
	}
	return p
}

// Registry exposes the self-metrics registry (for mounting at /metrics).
func (p *Poller) Registry() *obs.Registry { return p.cfg.Registry }

// Window reports the derivation window.
func (p *Poller) Window() time.Duration { return p.cfg.Window }

// Run polls until the context is cancelled. The first cycle starts
// immediately.
func (p *Poller) Run(ctx context.Context) {
	tick := time.NewTicker(p.cfg.Interval)
	defer tick.Stop()
	for {
		p.RunOnce(ctx)
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// RunOnce performs one full cycle: scrape every target concurrently,
// then evaluate the rules over the fresh state.
func (p *Poller) RunOnce(ctx context.Context) {
	now := time.Now()
	var wg sync.WaitGroup
	for _, st := range p.states {
		st.mu.Lock()
		skip := now.Before(st.backoffUntil)
		st.mu.Unlock()
		if skip {
			continue
		}
		wg.Add(1)
		go func(st *targetState) {
			defer wg.Done()
			p.scrapeTarget(ctx, st)
		}(st)
	}
	wg.Wait()
	p.evaluate(time.Now())
	p.cycles.Add(1)
}

func (p *Poller) scrapeTarget(ctx context.Context, st *targetState) {
	sctx, cancel := withTimeout(ctx, p.cfg.Timeout)
	defer cancel()
	t0 := time.Now()
	s, err := p.client.Scrape(sctx, st.target.MetricsURL())
	elapsed := time.Since(t0)
	st.scrapeSeconds.Set(elapsed.Seconds())

	if err != nil {
		st.scrapeErrors.Add(1)
		st.up.Set(0)
		st.mu.Lock()
		wasUp := st.isUp
		st.isUp = false
		st.lastErr = err.Error()
		st.consecFails++
		backoff := p.cfg.Interval << uint(min(st.consecFails-1, 10))
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
		st.backoffUntil = time.Now().Add(backoff)
		st.mu.Unlock()
		if wasUp {
			p.cfg.Logf("fleet: target %s down: %v", st.target.Name, err)
		}
		return
	}

	kind := inferKind(s)
	var online json.RawMessage
	if kind == "inspectord" {
		if base := st.target.BaseURL(); base != "" {
			hctx, hcancel := withTimeout(ctx, p.cfg.Timeout)
			body, herr := p.client.FetchJSON(hctx, base+"/v1/online/history")
			hcancel()
			if herr == nil && len(body) > 0 && json.Valid(body) {
				online = body
			}
		}
	}

	doneUnix := float64(time.Now().UnixNano()) / 1e9
	st.hist.Add(doneUnix, s)
	st.up.Set(1)
	st.mu.Lock()
	wasUp := st.isUp
	st.isUp = true
	st.lastErr = ""
	st.lastOKUnix = doneUnix
	st.consecFails = 0
	st.backoffUntil = time.Time{}
	st.kind = kind
	if online != nil {
		st.onlineHistory = online
	}
	st.mu.Unlock()
	if !wasUp {
		p.cfg.Logf("fleet: target %s up (%s, %s)", st.target.Name, kind, elapsed.Round(time.Millisecond))
	}
}

func (p *Poller) evaluate(now time.Time) {
	ctx := &RuleContext{
		NowUnix:     float64(now.UnixNano()) / 1e9,
		IntervalSec: p.cfg.Interval.Seconds(),
		WindowSec:   p.cfg.Window.Seconds(),
	}
	for _, st := range p.states {
		ctx.Targets = append(ctx.Targets, st.view())
	}
	alerts, fired := p.engine.Evaluate(ctx)
	if fired > 0 {
		p.alertsFired.Add(float64(fired))
		for _, a := range alerts {
			p.cfg.Logf("fleet: alert %s/%s [%s]: %s", a.Rule, a.Target, a.Severity, a.Message)
		}
	}
	p.alertsActive.Set(float64(len(alerts)))
	p.mu.Lock()
	p.lastAlerts = alerts
	p.mu.Unlock()
}

func (st *targetState) view() *TargetView {
	st.mu.Lock()
	defer st.mu.Unlock()
	return &TargetView{
		Target:     st.target,
		Kind:       st.kind,
		Up:         st.isUp,
		LastErr:    st.lastErr,
		LastOKUnix: st.lastOKUnix,
		Hist:       st.hist,
	}
}

// Alerts returns the active set from the most recent cycle.
func (p *Poller) Alerts() []Alert {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Alert(nil), p.lastAlerts...)
}

// inferKind classifies a target from what it exports: the inspect
// decision counter only lives in the serving daemon, the dist epoch
// counter only in train workers.
func inferKind(s *Scrape) string {
	if s == nil {
		return "unknown"
	}
	if s.Family("schedinspector_inspect_decisions_total") != nil {
		return "inspectord"
	}
	if s.Family("schedinspector_dist_epochs_total") != nil {
		return "train-worker"
	}
	return "unknown"
}
