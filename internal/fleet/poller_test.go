package fleet

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"schedinspector/internal/obs"
)

// fakeProcess serves an obs registry at /metrics like a real
// schedinspector process, plus an optional /v1/online/history document.
func fakeProcess(t *testing.T, r *obs.Registry, history string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if err := r.WriteProm(w); err != nil {
			t.Errorf("WriteProm: %v", err)
		}
	})
	if history != "" {
		mux.HandleFunc("/v1/online/history", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(history))
		})
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func hostport(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	u, err := url.Parse(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

func TestPollerEndToEnd(t *testing.T) {
	// An inspectord-shaped process...
	ir := obs.NewRegistry()
	decisions := ir.Counter("schedinspector_inspect_decisions_total", "", obs.Labels{"verdict": "accept"})
	depth := ir.Gauge("schedinspector_inspect_queue_depth", "", nil)
	ir.Gauge("schedinspector_inspect_queue_capacity", "", nil).Set(100)
	coalesce := ir.Histogram("schedinspector_inspect_coalesce_seconds", "", obs.ExponentialBuckets(1e-6, 4, 10), nil)
	insp := fakeProcess(t, ir,
		`{"candidates":[{"unix":123,"generation":2,"verdict":"promoted","candidate_score":1.5,"serving_score":1.2,"margin":0.3}]}`)

	// ...and a train-worker-shaped one.
	wr := obs.NewRegistry()
	epochs := wr.Counter("schedinspector_dist_epochs_total", "", nil)
	straggler := wr.Histogram("schedinspector_dist_straggler_seconds", "", obs.DefBuckets(), nil)
	worker := fakeProcess(t, wr, "")

	p := NewPoller(Config{
		Targets: []Target{
			{Name: "inspectord", Addr: hostport(t, insp)},
			{Name: "w0", Addr: hostport(t, worker)},
			{Name: "ghost", Addr: "127.0.0.1:1"}, // nothing listens here
		},
		Interval: 50 * time.Millisecond,
		Timeout:  2 * time.Second,
		Window:   time.Minute,
	})

	ctx := context.Background()
	decisions.Add(100)
	depth.Set(5)
	coalesce.Observe(0.001)
	epochs.Add(3)
	straggler.Observe(0.2)
	p.RunOnce(ctx)

	decisions.Add(50)
	epochs.Add(2)
	coalesce.Observe(0.002)
	straggler.Observe(0.3)
	time.Sleep(20 * time.Millisecond) // a real interval between the two points
	p.RunOnce(ctx)

	fs := p.Status()
	if len(fs.Targets) != 3 {
		t.Fatalf("targets: %d", len(fs.Targets))
	}
	byName := make(map[string]TargetStatus)
	for _, ts := range fs.Targets {
		byName[ts.Name] = ts
	}

	id := byName["inspectord"]
	if !id.Up || id.Kind != "inspectord" || id.Points != 2 {
		t.Fatalf("inspectord: %+v", id)
	}
	if r := id.Rates["schedinspector_inspect_decisions_total"]; r <= 0 {
		t.Errorf("decision rate: %v (rates: %v)", r, id.Rates)
	}
	if _, ok := id.Quantiles["schedinspector_inspect_coalesce_seconds/p99"]; !ok {
		t.Errorf("coalesce p99 missing: %v", id.Quantiles)
	}
	var hist struct {
		Candidates []struct {
			Verdict string `json:"verdict"`
		} `json:"candidates"`
	}
	if err := json.Unmarshal(id.OnlineHistory, &hist); err != nil || len(hist.Candidates) != 1 || hist.Candidates[0].Verdict != "promoted" {
		t.Errorf("online history passthrough: %s (err %v)", id.OnlineHistory, err)
	}

	w0 := byName["w0"]
	if !w0.Up || w0.Kind != "train-worker" {
		t.Fatalf("w0: %+v", w0)
	}
	if r := w0.Rates["schedinspector_dist_epochs_total"]; r <= 0 {
		t.Errorf("epoch rate: %v", r)
	}
	if fs.Dist == nil || fs.Dist.Workers != 1 || fs.Dist.EpochRate <= 0 {
		t.Fatalf("dist summary: %+v", fs.Dist)
	}

	ghost := byName["ghost"]
	if ghost.Up || ghost.LastErr == "" {
		t.Fatalf("ghost: %+v", ghost)
	}
	var downAlert bool
	for _, a := range fs.Alerts {
		if a.Rule == "target-down" && a.Target == "ghost" && a.Severity == SevCritical {
			downAlert = true
		}
	}
	if !downAlert {
		t.Errorf("no target-down alert for ghost: %+v", fs.Alerts)
	}
	var stragglerEvaluated bool
	for _, rs := range fs.Rules {
		if rs.Name == "rank-straggler" && rs.Evaluated >= 2 {
			stragglerEvaluated = true
		}
	}
	if !stragglerEvaluated {
		t.Errorf("rank-straggler not evaluated: %+v", fs.Rules)
	}

	// The document must be valid JSON (no NaN leaks) and the HTTP
	// surface must serve it.
	if _, err := json.Marshal(fs); err != nil {
		t.Fatalf("FleetStatus not marshalable: %v", err)
	}
	api := httptest.NewServer(p.Handler())
	defer api.Close()
	for _, path := range []string{"/v1/fleet", "/metrics", "/"} {
		resp, err := http.Get(api.URL + path)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %v %v", path, err, resp)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(api.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	self, err := ParseProm(mustRead(t, resp))
	if err != nil {
		t.Fatalf("self-exposition unparsable: %v", err)
	}
	upFam := self.Family("schedinspector_fleet_target_up")
	if upFam == nil || len(upFam.Samples) != 3 {
		t.Fatalf("fleet_target_up: %+v", upFam)
	}
	ups := make(map[string]float64)
	for _, sm := range upFam.Samples {
		ups[sm.Labels["target"]] = sm.Value
	}
	if ups["inspectord"] != 1 || ups["w0"] != 1 || ups["ghost"] != 0 {
		t.Errorf("up gauges: %v", ups)
	}

	// The -once table renders without touching the network again.
	var sb strings.Builder
	if err := WriteTable(&sb, fs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"inspectord", "train-worker", "DOWN", "target-down"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func mustRead(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}
