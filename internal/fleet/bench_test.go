package fleet

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"schedinspector/internal/obs"
)

func benchExposition(b *testing.B) []byte {
	b.Helper()
	var buf bytes.Buffer
	if err := buildBenchRegistry().WriteProm(&buf); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// buildBenchRegistry approximates a loaded inspectord exposition: a few
// dozen series across counters, gauges, and histograms.
func buildBenchRegistry() *obs.Registry {
	rng := rand.New(rand.NewSource(42))
	r := obs.NewRegistry()
	for _, route := range []string{"/v1/inspect", "/v1/simulate", "/v1/info", "/healthz"} {
		for _, code := range []string{"200", "400", "503"} {
			r.Counter("schedinspector_http_requests_total", "Requests.",
				obs.Labels{"route": route, "code": code}).Add(float64(rng.Intn(100000)))
		}
		h := r.Histogram("schedinspector_http_request_duration_seconds", "Latency.",
			obs.DefBuckets(), obs.Labels{"route": route})
		for i := 0; i < 500; i++ {
			h.Observe(rng.ExpFloat64() / 100)
		}
	}
	r.Counter("schedinspector_inspect_decisions_total", "", obs.Labels{"verdict": "accept"}).Add(5e6)
	r.Counter("schedinspector_inspect_decisions_total", "", obs.Labels{"verdict": "reject"}).Add(2e6)
	r.Gauge("schedinspector_inspect_queue_depth", "", nil).Set(17)
	r.Gauge("schedinspector_inspect_queue_capacity", "", nil).Set(1024)
	r.Gauge("schedinspector_model_generation", "", nil).Set(9)
	co := r.Histogram("schedinspector_inspect_coalesce_seconds", "",
		obs.ExponentialBuckets(1e-6, 4, 10), nil)
	for i := 0; i < 2000; i++ {
		co.Observe(rng.ExpFloat64() / 1000)
	}
	return r
}

// BenchmarkFleetParse measures ParseProm over a realistic exposition.
func BenchmarkFleetParse(b *testing.B) {
	src := benchExposition(b)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseProm(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetScrape measures one full scrape: HTTP round trip to a
// local server plus parse.
func BenchmarkFleetScrape(b *testing.B) {
	src := benchExposition(b)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write(src)
	}))
	defer srv.Close()
	var c Client
	ctx := context.Background()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Scrape(ctx, srv.URL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetAggregate measures Status() — the /v1/fleet build — over
// a poller with full history rings for several targets.
func BenchmarkFleetAggregate(b *testing.B) {
	src := benchExposition(b)
	s, err := ParseProm(src)
	if err != nil {
		b.Fatal(err)
	}
	p := NewPoller(Config{
		Targets: []Target{
			{Name: "inspectord", Addr: "127.0.0.1:1"},
			{Name: "w0", Addr: "127.0.0.1:2"},
			{Name: "w1", Addr: "127.0.0.1:3"},
		},
		Interval: time.Second,
		Window:   time.Minute,
	})
	for _, st := range p.states {
		for i := 0; i < DefaultHistoryCap; i++ {
			st.hist.Add(float64(i), s)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fs := p.Status(); len(fs.Targets) != 3 {
			b.Fatal("bad status")
		}
	}
}
