package fleet

import (
	"encoding/json"
	"math"
	"time"
)

// FleetStatus is the /v1/fleet document: per-target latest values and
// derived rates, the cross-rank dist summary, active alerts, and rule
// bookkeeping. Every float in it is finite — NaN/Inf derivations are
// omitted rather than breaking encoding/json.
type FleetStatus struct {
	NowUnix   float64        `json:"now_unix"`
	WindowSec float64        `json:"window_sec"`
	Targets   []TargetStatus `json:"targets"`
	Dist      *FleetDist     `json:"dist,omitempty"`
	Alerts    []Alert        `json:"alerts"`
	Rules     []RuleStatus   `json:"rules"`
}

// TargetStatus is one process's aggregated view.
type TargetStatus struct {
	Name       string  `json:"name"`
	Addr       string  `json:"addr"`
	Kind       string  `json:"kind"`
	Up         bool    `json:"up"`
	LastErr    string  `json:"last_error,omitempty"`
	LastOKUnix float64 `json:"last_scrape_unix,omitempty"`
	Points     int     `json:"points"`
	// Latest holds current gauge values, Rates per-second counter
	// derivatives over the window, Quantiles windowed histogram
	// estimates keyed "<family>/p50" and "<family>/p99".
	Latest    map[string]float64 `json:"latest,omitempty"`
	Rates     map[string]float64 `json:"rates,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
	// OnlineHistory is the target's /v1/online/history document, passed
	// through verbatim (inspectord only).
	OnlineHistory json.RawMessage `json:"online_history,omitempty"`
}

// FleetDist is the cross-rank view of the distributed trainer: one entry
// per train-worker target plus the skew ratio the straggler rule keys on.
type FleetDist struct {
	Workers        int                `json:"workers"`
	EpochRate      float64            `json:"epoch_rate,omitempty"`
	StragglerRates map[string]float64 `json:"straggler_rates,omitempty"`
	ExchangeP99s   map[string]float64 `json:"exchange_p99s,omitempty"`
	// SkewRatio is max straggler rate over the mean of the other ranks;
	// 1.0 is perfectly even, values past ~2 mean one rank is starving.
	// Capped at 1e6 when the peers report zero wait (the ratio is
	// otherwise unbounded and +Inf does not survive JSON).
	SkewRatio float64 `json:"skew_ratio,omitempty"`
	MaxRank   string  `json:"max_rank,omitempty"`
}

// Families aggregated per target. Gauges report their latest value;
// counters a windowed rate; histograms windowed p50/p99.
var (
	statusGauges = []string{
		"schedinspector_inspect_queue_depth",
		"schedinspector_inspect_queue_capacity",
		"schedinspector_inspect_reject_ratio",
		"schedinspector_model_generation",
		"schedinspector_online_state",
		"schedinspector_online_window_records",
		"schedinspector_ftrace_ring_records",
		"schedinspector_rollout_workers",
		"schedinspector_goroutines",
		"schedinspector_heap_alloc_bytes",
	}
	statusCounters = []string{
		"schedinspector_inspect_decisions_total",
		"schedinspector_http_requests_total",
		"schedinspector_dist_epochs_total",
		"schedinspector_dist_bytes_sent_total",
		"schedinspector_dist_bytes_received_total",
		"schedinspector_dist_peer_failures_total",
		"schedinspector_online_promotions_total",
		"schedinspector_online_rollbacks_total",
		"schedinspector_ftrace_sink_errors_total",
		"schedinspector_ftrace_ring_evicted_total",
		"schedinspector_audit_write_failures_total",
		"schedinspector_model_reloads_total",
	}
	statusHistograms = []string{
		"schedinspector_inspect_coalesce_seconds",
		"schedinspector_http_request_duration_seconds",
		"schedinspector_dist_exchange_seconds",
		"schedinspector_dist_straggler_seconds",
		"schedinspector_rollout_trajectory_seconds",
	}
)

func putFinite(m map[string]float64, key string, v float64) {
	if !math.IsNaN(v) && !math.IsInf(v, 0) {
		m[key] = v
	}
}

// Status snapshots the whole plane. Safe to call concurrently with the
// poll loop; each target's state is read under its own lock.
func (p *Poller) Status() *FleetStatus {
	winSec := p.cfg.Window.Seconds()
	fs := &FleetStatus{
		NowUnix:   float64(time.Now().UnixNano()) / 1e9,
		WindowSec: winSec,
		Alerts:    p.Alerts(),
		Rules:     p.engine.RuleStatuses(),
	}
	if fs.Alerts == nil {
		fs.Alerts = []Alert{}
	}
	dist := &FleetDist{
		StragglerRates: make(map[string]float64),
		ExchangeP99s:   make(map[string]float64),
	}
	for _, st := range p.states {
		st.mu.Lock()
		ts := TargetStatus{
			Name:       st.target.Name,
			Addr:       st.target.Addr,
			Kind:       st.kind,
			Up:         st.isUp,
			LastErr:    st.lastErr,
			LastOKUnix: st.lastOKUnix,
		}
		if st.onlineHistory != nil {
			ts.OnlineHistory = st.onlineHistory
		}
		st.mu.Unlock()
		if ts.Kind == "" {
			ts.Kind = "unknown"
		}

		h := st.hist
		ts.Points = h.Len()
		if ts.Points > 0 {
			ts.Latest = make(map[string]float64)
			ts.Rates = make(map[string]float64)
			ts.Quantiles = make(map[string]float64)
			for _, g := range statusGauges {
				if v, ok := h.GaugeLatest(g); ok {
					putFinite(ts.Latest, g, v)
				}
			}
			for _, c := range statusCounters {
				putFinite(ts.Rates, c, h.CounterRate(c, winSec))
			}
			for _, hf := range statusHistograms {
				putFinite(ts.Quantiles, hf+"/p50", h.HistQuantile(hf, 0.5, winSec))
				putFinite(ts.Quantiles, hf+"/p99", h.HistQuantile(hf, 0.99, winSec))
			}
		}
		if ts.Kind == "train-worker" {
			dist.Workers++
			putFinite(dist.StragglerRates, ts.Name,
				h.HistSumRate("schedinspector_dist_straggler_seconds", winSec))
			putFinite(dist.ExchangeP99s, ts.Name,
				h.HistQuantile("schedinspector_dist_exchange_seconds", 0.99, winSec))
			if r := h.CounterRate("schedinspector_dist_epochs_total", winSec); !math.IsNaN(r) {
				dist.EpochRate += r
			}
		}
		fs.Targets = append(fs.Targets, ts)
	}
	if dist.Workers > 0 {
		dist.SkewRatio, dist.MaxRank = distSkew(dist.StragglerRates)
		if math.IsNaN(dist.SkewRatio) || math.IsInf(dist.SkewRatio, 0) {
			dist.SkewRatio = 0
		}
		fs.Dist = dist
	}
	return fs
}

// distSkew returns the max rank's straggler rate over the mean of the
// remaining ranks, and that rank's name. Zero when fewer than two ranks
// report.
func distSkew(rates map[string]float64) (float64, string) {
	if len(rates) < 2 {
		return 0, ""
	}
	var maxName string
	maxRate := math.Inf(-1)
	var total float64
	for name, r := range rates {
		total += r
		if r > maxRate {
			maxRate, maxName = r, name
		}
	}
	others := (total - maxRate) / float64(len(rates)-1)
	if others <= 0 {
		if maxRate <= 0 {
			return 1, maxName
		}
		return 1e6, maxName // peers report zero wait: unbounded skew, capped
	}
	if r := maxRate / others; r <= 1e6 {
		return r, maxName
	}
	return 1e6, maxName
}
