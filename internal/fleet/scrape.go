package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// Target names one process the fleet plane watches. Addr is a host:port
// (scraped at http://addr/metrics) or a full URL when the exposition
// lives somewhere else.
type Target struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// MetricsURL is the exposition endpoint for the target.
func (t Target) MetricsURL() string {
	if strings.Contains(t.Addr, "://") {
		return t.Addr
	}
	return "http://" + t.Addr + "/metrics"
}

// BaseURL is the target's HTTP root, for sibling endpoints like
// /v1/online/history. Empty when the target was given as a full URL that
// does not end in /metrics — there is no root to derive.
func (t Target) BaseURL() string {
	if !strings.Contains(t.Addr, "://") {
		return "http://" + t.Addr
	}
	if base, ok := strings.CutSuffix(t.Addr, "/metrics"); ok {
		return base
	}
	return ""
}

// ParseTargets parses the -targets flag: comma-separated name=addr
// entries, e.g. "inspectord=127.0.0.1:9090,worker0=127.0.0.1:9100". A
// bare addr gets its addr as the name.
func ParseTargets(spec string) ([]Target, error) {
	var out []Target
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr, ok := strings.Cut(part, "=")
		if !ok {
			name, addr = part, part
		}
		name, addr = strings.TrimSpace(name), strings.TrimSpace(addr)
		if name == "" || addr == "" {
			return nil, fmt.Errorf("fleet: bad target entry %q", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("fleet: duplicate target name %q", name)
		}
		seen[name] = true
		out = append(out, Target{Name: name, Addr: addr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fleet: no targets in %q", spec)
	}
	return out, nil
}

// LoadTargetsFile reads targets from a file, one name=addr (or bare
// addr) per line; blank lines and #-comments are skipped.
func LoadTargetsFile(path string) ([]Target, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entries = append(entries, line)
	}
	return ParseTargets(strings.Join(entries, ","))
}

// maxScrapeBytes bounds how much exposition a single scrape will buffer;
// a healthy schedinspector process renders a few KiB.
const maxScrapeBytes = 8 << 20

// Client scrapes Prometheus text expositions over HTTP.
type Client struct {
	// HTTP is the underlying client; a zero Client uses a private one so
	// scrapes never share (or pollute) http.DefaultClient's pool.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{}
}

// Scrape fetches and parses one exposition. The context carries the
// per-target timeout.
func (c *Client) Scrape(ctx context.Context, url string) (*Scrape, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxScrapeBytes+1))
	if err != nil {
		return nil, fmt.Errorf("fleet: read %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: scrape %s: status %s", url, resp.Status)
	}
	if len(body) > maxScrapeBytes {
		return nil, fmt.Errorf("fleet: scrape %s: exposition exceeds %d bytes", url, maxScrapeBytes)
	}
	return ParseProm(body)
}

// FetchJSON GETs a sibling endpoint (e.g. /v1/online/history) and
// returns the raw body on 200, (nil, nil) on 404 — the endpoint simply
// not existing on this kind of target is not an error.
func (c *Client) FetchJSON(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxScrapeBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: fetch %s: status %s", url, resp.Status)
	}
	return body, nil
}

// withTimeout derives the per-scrape context.
func withTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		d = 5 * time.Second
	}
	return context.WithTimeout(ctx, d)
}
