package fleet

import (
	"fmt"
	"strings"
	"testing"
)

func parseExp(t *testing.T, exp string) *Scrape {
	t.Helper()
	s, err := ParseProm([]byte(exp))
	if err != nil {
		t.Fatalf("exposition: %v\n%s", err, exp)
	}
	return s
}

// workerScrape renders a train-worker exposition with the given
// cumulative straggler-wait seconds.
func workerScrape(t *testing.T, epochs uint64, stragglerSum float64) *Scrape {
	return parseExp(t, fmt.Sprintf(
		"# TYPE schedinspector_dist_epochs_total counter\n"+
			"schedinspector_dist_epochs_total %d\n"+
			"# TYPE schedinspector_dist_straggler_seconds histogram\n"+
			"schedinspector_dist_straggler_seconds_bucket{le=\"+Inf\"} %d\n"+
			"schedinspector_dist_straggler_seconds_sum %g\n"+
			"schedinspector_dist_straggler_seconds_count %d\n",
		epochs, epochs, stragglerSum, epochs))
}

func workerView(t *testing.T, name string, sums [2]float64) *TargetView {
	h := NewHistory(8)
	h.Add(100, workerScrape(t, 10, sums[0]))
	h.Add(110, workerScrape(t, 20, sums[1]))
	return &TargetView{
		Target: Target{Name: name, Addr: "x"},
		Kind:   "train-worker",
		Up:     true, LastOKUnix: 110, Hist: h,
	}
}

func TestRuleRankStraggler(t *testing.T) {
	// Three ranks: two accumulate 0.1s of wait over 10s, one accumulates
	// 5s — a 50x skew, well past the 2x factor and the absolute floor.
	ctx := &RuleContext{NowUnix: 110, IntervalSec: 2, WindowSec: 60, Targets: []*TargetView{
		workerView(t, "w0", [2]float64{1, 1.1}),
		workerView(t, "w1", [2]float64{1, 1.1}),
		workerView(t, "w2", [2]float64{1, 6}),
	}}
	fs := ruleRankStraggler(ctx)
	if len(fs) != 1 || fs[0].Target != "w2" {
		t.Fatalf("findings: %+v", fs)
	}
	if fs[0].Value < 10 {
		t.Errorf("skew ratio = %v, want >> 2", fs[0].Value)
	}

	// Balanced waits: no finding even though absolute wait is large.
	ctx.Targets = []*TargetView{
		workerView(t, "w0", [2]float64{1, 6}),
		workerView(t, "w1", [2]float64{1, 6.2}),
	}
	if fs := ruleRankStraggler(ctx); len(fs) != 0 {
		t.Fatalf("balanced fleet fired: %+v", fs)
	}

	// Skewed but tiny absolute wait: under the floor, stays quiet.
	ctx.Targets = []*TargetView{
		workerView(t, "w0", [2]float64{0, 0.001}),
		workerView(t, "w1", [2]float64{0, 0.1}),
	}
	if fs := ruleRankStraggler(ctx); len(fs) != 0 {
		t.Fatalf("sub-floor skew fired: %+v", fs)
	}

	// A single rank has no peers to be skewed against.
	ctx.Targets = ctx.Targets[:1]
	if fs := ruleRankStraggler(ctx); len(fs) != 0 {
		t.Fatalf("single rank fired: %+v", fs)
	}
}

func TestRuleQueueAndErrors(t *testing.T) {
	h := NewHistory(8)
	mk := func(depth float64, sinkErrs, auditFails uint64) *Scrape {
		return parseExp(t, fmt.Sprintf(
			"schedinspector_inspect_queue_depth %g\n"+
				"schedinspector_inspect_queue_capacity 100\n"+
				"schedinspector_ftrace_sink_errors_total %d\n"+
				"schedinspector_audit_write_failures_total %d\n",
			depth, sinkErrs, auditFails))
	}
	h.Add(100, mk(10, 0, 0))
	h.Add(110, mk(95, 3, 1))
	ctx := &RuleContext{NowUnix: 110, IntervalSec: 2, WindowSec: 60, Targets: []*TargetView{{
		Target: Target{Name: "d", Addr: "x"}, Kind: "inspectord",
		Up: true, LastOKUnix: 110, Hist: h,
	}}}

	if fs := ruleQueueSaturation(ctx); len(fs) != 1 || fs[0].Value != 0.95 {
		t.Errorf("queue saturation: %+v", fs)
	}
	if fs := ruleTraceSinkErrors(ctx); len(fs) != 1 || fs[0].Value != 3 {
		t.Errorf("sink errors: %+v", fs)
	}
	if fs := ruleAuditWriteFailures(ctx); len(fs) != 1 || fs[0].Value != 1 {
		t.Errorf("audit failures: %+v", fs)
	}
}

func TestEngineDedupAndResolve(t *testing.T) {
	down := &TargetView{Target: Target{Name: "w0", Addr: "x"}, Up: false, LastErr: "connection refused"}
	up := &TargetView{Target: Target{Name: "w0", Addr: "x"}, Up: true, LastOKUnix: 120, Hist: NewHistory(4)}
	e := NewEngine(nil)

	ctx := &RuleContext{NowUnix: 100, IntervalSec: 2, WindowSec: 60, Targets: []*TargetView{down}}
	alerts, fired := e.Evaluate(ctx)
	if fired != 1 || len(alerts) != 1 || alerts[0].Rule != "target-down" || alerts[0].Count != 1 {
		t.Fatalf("first cycle: fired=%d alerts=%+v", fired, alerts)
	}
	if !strings.Contains(alerts[0].Message, "connection refused") {
		t.Errorf("message lost cause: %q", alerts[0].Message)
	}

	// Same condition next cycle: deduped, count advances, nothing new fires.
	ctx.NowUnix = 102
	alerts, fired = e.Evaluate(ctx)
	if fired != 0 || len(alerts) != 1 || alerts[0].Count != 2 || alerts[0].FiredAtUnix != 100 || alerts[0].LastSeenUnix != 102 {
		t.Fatalf("second cycle: fired=%d alerts=%+v", fired, alerts)
	}

	// Target recovers: alert resolves.
	ctx.NowUnix = 104
	ctx.Targets = []*TargetView{up}
	alerts, fired = e.Evaluate(ctx)
	if fired != 0 || len(alerts) != 0 {
		t.Fatalf("recovery cycle: fired=%d alerts=%+v", fired, alerts)
	}
	if e.FiredTotal() != 1 {
		t.Errorf("FiredTotal = %d, want 1", e.FiredTotal())
	}

	// Every default rule was evaluated all three cycles.
	for _, rs := range e.RuleStatuses() {
		if rs.Evaluated != 3 {
			t.Errorf("rule %s evaluated %d times, want 3", rs.Name, rs.Evaluated)
		}
		if rs.Active != 0 {
			t.Errorf("rule %s still active: %d", rs.Name, rs.Active)
		}
	}
}

func TestRuleTargetStale(t *testing.T) {
	ctx := &RuleContext{NowUnix: 200, IntervalSec: 2, WindowSec: 60, Targets: []*TargetView{{
		Target: Target{Name: "w0", Addr: "x"}, Up: true, LastOKUnix: 100, Hist: NewHistory(4),
	}}}
	fs := ruleTargetStale(ctx)
	if len(fs) != 1 || fs[0].Value != 100 {
		t.Fatalf("stale: %+v", fs)
	}
	ctx.Targets[0].LastOKUnix = 198
	if fs := ruleTargetStale(ctx); len(fs) != 0 {
		t.Fatalf("fresh target flagged stale: %+v", fs)
	}
}

func TestParseTargets(t *testing.T) {
	ts, err := ParseTargets("inspectord=127.0.0.1:9090, w0=127.0.0.1:9100 ,bare:9200")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 || ts[0].Name != "inspectord" || ts[2].Name != "bare:9200" {
		t.Fatalf("targets: %+v", ts)
	}
	if got := ts[0].MetricsURL(); got != "http://127.0.0.1:9090/metrics" {
		t.Errorf("MetricsURL: %q", got)
	}
	if got := ts[0].BaseURL(); got != "http://127.0.0.1:9090" {
		t.Errorf("BaseURL: %q", got)
	}
	full := Target{Name: "x", Addr: "http://h:1/custom/metrics"}
	if got := full.MetricsURL(); got != "http://h:1/custom/metrics" {
		t.Errorf("full-URL MetricsURL: %q", got)
	}
	if got := full.BaseURL(); got != "http://h:1/custom" {
		t.Errorf("full-URL BaseURL: %q", got)
	}
	if _, err := ParseTargets("a=1,a=2"); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := ParseTargets(" , "); err == nil {
		t.Error("empty spec accepted")
	}
}
