package rollout

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"schedinspector/internal/sched"
)

// The worker pool fans independent simulation work out over goroutines.
// Work is handed out through an atomic index counter; results are written
// into per-index slots, so reduction order — and with it every statistic,
// PPO batch and serialized model — is independent of which worker ran which
// item. It used to live inside the training engine; the rollout driver now
// owns it so every layer (trainer, evaluator, RL-scheduler baseline) fans
// out through the same machinery.

// ResolveWorkers maps a configured worker count to an effective one: zero
// or negative means "one per CPU".
func ResolveWorkers(w int) int {
	if w <= 0 {
		return runtime.NumCPU()
	}
	return w
}

// RunIndexed executes fn(worker, i) for every i in [0, n) across at most
// workers goroutines. worker identifies the goroutine in [0, workers), so
// callers can hand each one private scratch state (a cloned policy
// snapshot). It returns the summed busy time across workers and the
// wall-clock elapsed, the inputs of the worker-utilization gauge.
func RunIndexed(workers, n int, fn func(worker, i int)) (busy, wall time.Duration) {
	if n <= 0 {
		return 0, 0
	}
	if workers > n {
		workers = n
	}
	start := time.Now()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		wall = time.Since(start)
		return wall, wall
	}
	var next atomic.Int64
	busyNs := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t0 := time.Now()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				fn(w, i)
			}
			busyNs[w] = time.Since(t0).Nanoseconds()
		}(w)
	}
	wg.Wait()
	wall = time.Since(start)
	for _, ns := range busyNs {
		busy += time.Duration(ns)
	}
	return busy, wall
}

// PolicyClones returns n scheduling-policy instances with the original at
// index 0. Stateless policies are shared; stateful ones (sched.Cloner) are
// cloned so concurrent simulations never race on their accounting. The
// second result is false when the policy is stateful but cannot be cloned
// in its current mode — the caller must then fall back to sequential
// execution on the shared instance.
func PolicyClones(p sched.Policy, n int) ([]sched.Policy, bool) {
	out := make([]sched.Policy, n)
	out[0] = p
	if n == 1 {
		return out, true
	}
	c, cloneable := p.(sched.Cloner)
	if !cloneable {
		if PolicyStateful(p) {
			return out[:1], false
		}
		for i := 1; i < n; i++ {
			out[i] = p
		}
		return out, true
	}
	for i := 1; i < n; i++ {
		cp := c.ClonePolicy()
		if cp == nil {
			return out[:1], false
		}
		out[i] = cp
	}
	return out, true
}

// PolicyStateful reports whether p carries per-run mutable state, judged by
// the stateful-policy interfaces the simulator drives.
func PolicyStateful(p sched.Policy) bool {
	if _, ok := p.(sched.Resetter); ok {
		return true
	}
	if _, ok := p.(sched.UsageObserver); ok {
		return true
	}
	if _, ok := p.(sched.Selector); ok {
		return true
	}
	return false
}
