// Package rollout is the one driver every simulation fan-out in the
// codebase goes through: the SchedInspector trainer, test-time evaluation,
// and the RL-scheduler baseline all submit batches of episodes here instead
// of carrying their own worker-pool and callback plumbing.
//
// The driver runs each episode on a resumable sim.Env and surfaces the
// scheduling decisions of ALL concurrently-running episodes together, one
// wave at a time, to a single Decide callback. A neural inspector can
// therefore evaluate an entire wave with one matrix-shaped forward pass
// instead of one scalar forward per decision.
//
// Determinism: an episode's outcome is a pure function of (its jobs, its
// policy instance, its decision sequence), and Decide implementations keyed
// on per-slot RNG streams make each decision sequence a pure function of
// the slot. Wave composition and worker count therefore never change any
// result — workers=1 and workers=N are bit-identical, which the
// equivalence suite pins.
package rollout

import (
	"fmt"
	"time"

	"schedinspector/internal/metrics"
	"schedinspector/internal/obs"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

// Episode is one simulation request.
type Episode struct {
	Jobs []workload.Job
	Cfg  sim.Config // Cfg.Inspector must be nil; decisions come from Decide

	// Interactive episodes yield every scheduling decision to Decide.
	// Non-interactive ones run straight to completion (the baseline /
	// uninspected arm of a comparison) and never appear in a wave.
	Interactive bool
}

// Pending is one episode slot awaiting a decision. State points into the
// slot's live environment: it is valid only during the Decide call that
// delivers it, so implementations must copy anything they keep (the
// batched sampler copies features out immediately).
type Pending struct {
	Slot  int
	State *sim.State
}

// Decide receives one wave — every interactive episode currently stopped at
// a scheduling point, in ascending slot order — and must fill rejects[i]
// with the decision for pending[i]. It is always called from the
// coordinating goroutine, never concurrently with itself or with episode
// stepping.
type Decide func(pending []Pending, rejects []bool)

// Config parameterizes one driver run.
type Config struct {
	// Workers is the stepping fan-out (0 = one per CPU). Workers == 1 is a
	// semantic switch, not just a parallelism knob: episodes run strictly
	// one at a time in slot order, with single-slot waves — required when
	// episodes share one stateful, uncloneable policy instance (the
	// RL-scheduler baseline while sampling), whose consultation order must
	// match a sequential loop. With Workers > 1 all episodes are live
	// concurrently, so stateful policies need per-episode instances (see
	// PolicyClones).
	Workers int

	// Decide supplies decisions for interactive episodes. Required if any
	// episode is interactive.
	Decide Decide

	// Spans attaches the flight recorder: each episode slot gets an
	// "episode" span (child of SpanRoot, ID derived from (SpanRoot, slot))
	// and its environment emits per-decision child spans. The driver owns
	// span attachment — it overrides any Spans/SpanParent set on episode
	// configs — so IDs stay a pure function of (SpanRoot, slot, decision
	// seq) and are identical at any worker count. Wall timestamps and ring
	// order remain execution-dependent; only identity is deterministic.
	Spans    *obs.SpanTracer
	SpanRoot obs.SpanID

	// Ring attaches the binary flight recorder alongside (or instead of)
	// Spans: episode and decision spans are encoded into the arena-backed
	// trace ring under the same ID derivation, so the deterministic-identity
	// guarantee carries over unchanged.
	Ring *obs.TraceRing

	// SlotBase offsets every slot identity the run exposes: Pending.Slot,
	// episode span IDs and slot attributes all report SlotBase+i for the
	// i-th episode of this call. A distributed trainer rolling out the
	// trajectory shard [lo, hi) passes SlotBase=lo so each episode keeps
	// its global trajectory index — the key its RNG stream, step log and
	// flight records are derived from — no matter which process runs it.
	// Zero (the single-process default) leaves slots equal to episode
	// positions.
	SlotBase int
}

// tracing reports whether any span sink is attached.
func (c *Config) tracing() bool { return c.Spans != nil || c.Ring != nil }

// emitSpan fans one completed span out to every attached sink.
func (c *Config) emitSpan(s obs.Span) {
	c.Ring.EmitSpan(&s)
	c.Spans.Emit(s)
}

// Report carries the run's timing observations for telemetry: summed
// worker busy time, wall-clock elapsed, and per-episode simulation seconds
// (indexed by slot).
type Report struct {
	Busy, Wall     time.Duration
	EpisodeSeconds []float64
}

// Run drives all episodes to completion and returns their results in slot
// order. Episodes that fail leave a zero Result; the first error in slot
// order is returned after every other episode has still been given the
// chance to finish, mirroring how the pre-driver engines reduced worker
// errors.
func Run(eps []Episode, cfg Config) ([]sim.Result, Report, error) {
	n := len(eps)
	rep := Report{EpisodeSeconds: make([]float64, n)}
	results := make([]sim.Result, n)
	errs := make([]error, n)
	for i := range eps {
		if eps[i].Cfg.Inspector != nil {
			return nil, rep, fmt.Errorf("rollout: episode %d sets Cfg.Inspector; decisions must come from Decide", i)
		}
		if eps[i].Interactive && cfg.Decide == nil {
			return nil, rep, fmt.Errorf("rollout: episode %d is interactive but Config.Decide is nil", i)
		}
	}
	if cfg.tracing() {
		// Copy the episode slice before attaching span plumbing so the
		// caller's Episodes are never mutated.
		eps = append([]Episode(nil), eps...)
		for i := range eps {
			eps[i].Cfg.Spans = cfg.Spans
			eps[i].Cfg.Ring = cfg.Ring
			eps[i].Cfg.SpanParent = obs.DeriveSpanID(uint64(cfg.SpanRoot), uint64(cfg.SlotBase+i))
		}
	}
	workers := ResolveWorkers(cfg.Workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		runSequential(eps, cfg, results, errs, &rep)
	} else {
		runWaves(eps, cfg, workers, results, errs, &rep)
	}
	for i := range errs {
		if errs[i] != nil {
			return results, rep, errs[i]
		}
	}
	return results, rep, nil
}

// ownResult detaches a Result from the env buffers that back it, so the env
// can be reset for the next episode.
func ownResult(r sim.Result) sim.Result {
	r.Results = append([]metrics.JobResult(nil), r.Results...)
	if r.Usage != nil {
		r.Usage = append([]sim.UsagePoint(nil), r.Usage...)
	}
	return r
}

// endEpisodeSpan closes the span bracketing one finished episode and emits
// it to every attached sink. Wall duration covers the episode's execution;
// sim duration its simulated makespan.
func endEpisodeSpan(cfg *Config, esp obs.Span, slot, jobs int, simEnd float64, res *sim.Result) {
	esp.Attrs = append(esp.Attrs,
		obs.Attr{Key: "slot", Num: float64(slot)},
		obs.Attr{Key: "jobs", Num: float64(jobs)},
		obs.Attr{Key: "inspections", Num: float64(res.Inspections)},
		obs.Attr{Key: "rejections", Num: float64(res.Rejections)},
	)
	esp.End(simEnd)
	cfg.emitSpan(esp)
}

// runSequential executes episodes one at a time in slot order on a single
// reused environment, yielding single-slot waves.
func runSequential(eps []Episode, cfg Config, results []sim.Result, errs []error, rep *Report) {
	start := time.Now()
	env := sim.NewEnv()
	pending := make([]Pending, 1)
	rejects := make([]bool, 1)
	for i := range eps {
		t0 := time.Now()
		var esp obs.Span
		if cfg.tracing() {
			esp = obs.StartSpan("episode", eps[i].Cfg.SpanParent, cfg.SpanRoot, 0)
		}
		if !eps[i].Interactive {
			r, err := sim.RunEnv(env, eps[i].Jobs, eps[i].Cfg)
			if err == nil {
				r = ownResult(r)
			}
			results[i], errs[i] = r, err
		} else if obsState, done, err := env.Reset(eps[i].Jobs, eps[i].Cfg); err != nil {
			errs[i] = err
		} else {
			for !done {
				pending[0] = Pending{Slot: cfg.SlotBase + i, State: obsState}
				cfg.Decide(pending, rejects)
				obsState, done = env.Step(rejects[0])
			}
			results[i] = ownResult(env.Result())
		}
		if cfg.tracing() && errs[i] == nil {
			endEpisodeSpan(&cfg, esp, cfg.SlotBase+i, len(eps[i].Jobs), env.Now(), &results[i])
		}
		rep.EpisodeSeconds[i] = time.Since(t0).Seconds()
	}
	rep.Wall = time.Since(start)
	rep.Busy = rep.Wall
}

// runWaves executes all episodes concurrently: a parallel init phase (full
// runs for non-interactive episodes, Reset-to-first-decision for
// interactive ones), then wave rounds — one Decide call over every pending
// slot followed by a parallel Step of each live environment.
func runWaves(eps []Episode, cfg Config, workers int, results []sim.Result, errs []error, rep *Report) {
	n := len(eps)
	envs := make([]*sim.Env, n)
	states := make([]*sim.State, n)
	done := make([]bool, n)
	seqEnvs := make([]*sim.Env, workers) // per-worker envs for non-interactive runs
	var espans []obs.Span                // open episode spans, indexed by slot
	if cfg.tracing() {
		espans = make([]obs.Span, n)
	}

	busy, wall := RunIndexed(workers, n, func(w, i int) {
		t0 := time.Now()
		if espans != nil {
			espans[i] = obs.StartSpan("episode", eps[i].Cfg.SpanParent, cfg.SpanRoot, 0)
		}
		if eps[i].Interactive {
			envs[i] = sim.NewEnv()
			states[i], done[i], errs[i] = envs[i].Reset(eps[i].Jobs, eps[i].Cfg)
		} else {
			if seqEnvs[w] == nil {
				seqEnvs[w] = sim.NewEnv()
			}
			r, err := sim.RunEnv(seqEnvs[w], eps[i].Jobs, eps[i].Cfg)
			if err == nil {
				r = ownResult(r)
			}
			results[i], errs[i] = r, err
			if espans != nil && err == nil {
				endEpisodeSpan(&cfg, espans[i], cfg.SlotBase+i, len(eps[i].Jobs), seqEnvs[w].Now(), &results[i])
			}
		}
		rep.EpisodeSeconds[i] += time.Since(t0).Seconds()
	})
	rep.Busy += busy
	rep.Wall += wall

	live := make([]int, 0, n)
	for i := range eps {
		if !eps[i].Interactive || errs[i] != nil {
			continue
		}
		if done[i] {
			results[i] = envs[i].Result()
			if espans != nil {
				endEpisodeSpan(&cfg, espans[i], cfg.SlotBase+i, len(eps[i].Jobs), envs[i].Now(), &results[i])
			}
			continue
		}
		live = append(live, i)
	}

	pending := make([]Pending, 0, len(live))
	rejects := make([]bool, len(live))
	for len(live) > 0 {
		pending = pending[:0]
		for _, i := range live {
			pending = append(pending, Pending{Slot: cfg.SlotBase + i, State: states[i]})
		}
		rejects = rejects[:len(pending)]
		cfg.Decide(pending, rejects)

		busy, wall := RunIndexed(workers, len(live), func(_, k int) {
			i := live[k]
			t0 := time.Now()
			states[i], done[i] = envs[i].Step(rejects[k])
			rep.EpisodeSeconds[i] += time.Since(t0).Seconds()
		})
		rep.Busy += busy
		rep.Wall += wall

		keep := live[:0]
		for _, i := range live {
			if done[i] {
				results[i] = envs[i].Result()
				if espans != nil {
					endEpisodeSpan(&cfg, espans[i], cfg.SlotBase+i, len(eps[i].Jobs), envs[i].Now(), &results[i])
				}
			} else {
				keep = append(keep, i)
			}
		}
		live = keep
	}
}
