package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(rng, []int{8, 32, 16, 8, 2}, Tanh, Identity)
	if m.InputSize() != 8 || m.OutputSize() != 2 {
		t.Errorf("in/out = %d/%d", m.InputSize(), m.OutputSize())
	}
	want := 8*32 + 32 + 32*16 + 16 + 16*8 + 8 + 8*2 + 2
	if got := m.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
	// paper network: 3 hidden layers 32/16/8, 1-dim output — parameter count
	// should be near the 938 the paper cites (exact value depends on input
	// width; with 7 inputs it is 7*32+32+512+16+128+8+8+1 = 929).
	p := New(rng, []int{7, 32, 16, 8, 1}, Tanh, Identity)
	if p.NumParams() != 929 {
		t.Errorf("paper-shaped net params = %d, want 929", p.NumParams())
	}
}

func TestNewPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sizes := range [][]int{{4}, {4, 0, 2}, {}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("sizes %v did not panic", sizes)
				}
			}()
			New(rng, sizes, Tanh, Identity)
		}()
	}
}

func TestForwardKnownValues(t *testing.T) {
	// 2-2-1 net with hand-set weights, identity activations.
	rng := rand.New(rand.NewSource(1))
	m := New(rng, []int{2, 2, 1}, Identity, Identity)
	m.W[0] = []float64{1, 2, 3, 4} // h0 = x0 + 2x1; h1 = 3x0 + 4x1
	m.B[0] = []float64{0.5, -0.5}
	m.W[1] = []float64{1, -1} // y = h0 - h1
	m.B[1] = []float64{0.25}
	out := m.Forward([]float64{1, 1}, nil)
	// h = (3.5, 6.5); y = 3.5 - 6.5 + 0.25 = -2.75
	if math.Abs(out[0]+2.75) > 1e-12 {
		t.Errorf("forward = %v, want -2.75", out[0])
	}

	// Tanh nonlinearity.
	m.Acts[0] = Tanh
	out = m.Forward([]float64{1, 1}, nil)
	want := math.Tanh(3.5) - math.Tanh(6.5) + 0.25
	if math.Abs(out[0]-want) > 1e-12 {
		t.Errorf("tanh forward = %v, want %v", out[0], want)
	}
}

func TestForwardInputSizePanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(rng, []int{3, 2}, Tanh, Identity)
	defer func() {
		if recover() == nil {
			t.Error("wrong input size did not panic")
		}
	}()
	m.Forward([]float64{1, 2}, nil)
}

// TestGradientCheck verifies backprop against finite differences for every
// parameter of a small network with mixed activations.
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, hidden := range []Activation{Tanh, ReLU} {
		m := New(rng, []int{4, 6, 5, 3}, hidden, Identity)
		x := []float64{0.3, -0.8, 1.2, 0.05}
		target := []float64{0.5, -1.0, 0.25}

		loss := func() float64 {
			out := m.Forward(x, nil)
			var l float64
			for i, o := range out {
				d := o - target[i]
				l += 0.5 * d * d
			}
			return l
		}

		var cache Cache
		out := m.Forward(x, &cache)
		dOut := make([]float64, len(out))
		for i := range out {
			dOut[i] = out[i] - target[i]
		}
		g := NewGrads(m)
		m.Backward(&cache, dOut, g)

		const eps = 1e-6
		check := func(p []float64, gp []float64, name string, l int) {
			for i := range p {
				orig := p[i]
				p[i] = orig + eps
				lp := loss()
				p[i] = orig - eps
				lm := loss()
				p[i] = orig
				num := (lp - lm) / (2 * eps)
				if math.Abs(num-gp[i]) > 1e-5*(1+math.Abs(num)) {
					t.Fatalf("%v %s[%d][%d]: analytic %v numeric %v", hidden, name, l, i, gp[i], num)
				}
			}
		}
		for l := range m.W {
			check(m.W[l], g.W[l], "W", l)
			check(m.B[l], g.B[l], "B", l)
		}
	}
}

func TestBackwardAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(rng, []int{2, 3, 1}, Tanh, Identity)
	var cache Cache
	g1 := NewGrads(m)
	m.Forward([]float64{1, 2}, &cache)
	m.Backward(&cache, []float64{1}, g1)
	g2 := NewGrads(m)
	m.Forward([]float64{1, 2}, &cache)
	m.Backward(&cache, []float64{1}, g2)
	m.Forward([]float64{1, 2}, &cache)
	m.Backward(&cache, []float64{1}, g2)
	for l := range g1.W {
		for i := range g1.W[l] {
			if math.Abs(g2.W[l][i]-2*g1.W[l][i]) > 1e-12 {
				t.Fatalf("gradients do not accumulate at layer %d idx %d", l, i)
			}
		}
	}
	g2.Zero()
	if g2.GlobalNorm() != 0 {
		t.Error("Zero did not clear grads")
	}
}

func TestGradScaleClip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(rng, []int{2, 2}, Identity, Identity)
	g := NewGrads(m)
	g.W[0] = []float64{3, 0, 0, 0}
	g.B[0] = []float64{4, 0}
	if math.Abs(g.GlobalNorm()-5) > 1e-12 {
		t.Fatalf("norm = %v, want 5", g.GlobalNorm())
	}
	g.ClipGlobalNorm(1)
	if math.Abs(g.GlobalNorm()-1) > 1e-12 {
		t.Errorf("clipped norm = %v, want 1", g.GlobalNorm())
	}
	g.Scale(2)
	if math.Abs(g.GlobalNorm()-2) > 1e-12 {
		t.Errorf("scaled norm = %v, want 2", g.GlobalNorm())
	}
	// clip below threshold is a no-op
	g.ClipGlobalNorm(10)
	if math.Abs(g.GlobalNorm()-2) > 1e-12 {
		t.Error("clip below threshold changed grads")
	}
}

// TestAdamConvergesRegression trains y = sin(x) on [-2, 2] and requires a
// small MSE, exercising forward, backward and Adam together.
func TestAdamConvergesRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := New(rng, []int{1, 16, 16, 1}, Tanh, Identity)
	opt := NewAdam(m, 5e-3)
	g := NewGrads(m)
	var cache Cache
	const batch = 32
	for epoch := 0; epoch < 800; epoch++ {
		g.Zero()
		for b := 0; b < batch; b++ {
			x := rng.Float64()*4 - 2
			out := m.Forward([]float64{x}, &cache)
			m.Backward(&cache, []float64{out[0] - math.Sin(x)}, g)
		}
		g.Scale(1.0 / batch)
		opt.Step(m, g)
	}
	var mse float64
	const n = 200
	for i := 0; i < n; i++ {
		x := -2 + 4*float64(i)/(n-1)
		out := m.Forward([]float64{x}, nil)
		d := out[0] - math.Sin(x)
		mse += d * d
	}
	mse /= n
	if mse > 1e-3 {
		t.Errorf("regression MSE = %v, want < 1e-3", mse)
	}
}

func TestSGDStep(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(rng, []int{1, 1}, Identity, Identity)
	m.W[0][0] = 1
	m.B[0][0] = 1
	g := NewGrads(m)
	g.W[0][0] = 0.5
	g.B[0][0] = -0.5
	SGD{LR: 0.1}.Step(m, g)
	if math.Abs(m.W[0][0]-0.95) > 1e-12 || math.Abs(m.B[0][0]-1.05) > 1e-12 {
		t.Errorf("SGD step wrong: W=%v B=%v", m.W[0][0], m.B[0][0])
	}
}

func TestSoftmaxAndLogSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 2, 3}, nil)
	var sum float64
	for _, v := range p {
		if v <= 0 || v >= 1 {
			t.Errorf("softmax out of range: %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sum = %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Error("softmax not monotone")
	}
	// numerical stability with huge logits
	p = Softmax([]float64{1000, 1000}, p)
	if math.Abs(p[0]-0.5) > 1e-12 {
		t.Errorf("big-logit softmax = %v", p[0])
	}
	// log-softmax consistency
	logits := []float64{0.3, -1.2, 2.2}
	sm := Softmax(logits, nil)
	for i := range logits {
		if math.Abs(LogSoftmax(logits, i)-math.Log(sm[i])) > 1e-9 {
			t.Errorf("LogSoftmax[%d] inconsistent", i)
		}
	}
	if LogSumExp(nil) != math.Inf(-1) {
		t.Error("LogSumExp(nil) should be -Inf")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New(rng, []int{3, 8, 2}, Tanh, Identity)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.5, 2}
	a := m.Forward(x, nil)
	b := got.Forward(x, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outputs differ after round trip: %v vs %v", a, b)
		}
	}
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage accepted by Load")
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New(rng, []int{2, 4, 1}, ReLU, Identity)
	path := t.TempDir() + "/net.gob"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumParams() != m.NumParams() {
		t.Error("param count changed")
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New(rng, []int{2, 3, 1}, Tanh, Identity)
	c := m.Clone()
	c.W[0][0] += 100
	if m.W[0][0] == c.W[0][0] {
		t.Error("Clone shares weights")
	}
	if c.NumParams() != m.NumParams() {
		t.Error("Clone wrong shape")
	}
}

// Property: softmax output is always a probability vector for finite logits.
func TestSoftmaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var logits []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				logits = append(logits, math.Mod(v, 500))
			}
		}
		if len(logits) == 0 {
			return true
		}
		p := Softmax(logits, nil)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestActivationString(t *testing.T) {
	if Identity.String() != "identity" || Tanh.String() != "tanh" || ReLU.String() != "relu" {
		t.Error("activation names wrong")
	}
	if Activation(42).String() != "unknown" {
		t.Error("unknown activation name")
	}
}

func TestBackwardSizePanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(rng, []int{2, 3, 2}, Tanh, Identity)
	var cache Cache
	m.Forward([]float64{1, 2}, &cache)
	defer func() {
		if recover() == nil {
			t.Error("wrong dOut size did not panic")
		}
	}()
	m.Backward(&cache, []float64{1}, NewGrads(m))
}

func TestForwardWithoutCacheMatchesCached(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := New(rng, []int{3, 5, 2}, Tanh, Identity)
	x := []float64{0.2, -0.7, 1.1}
	var cache Cache
	a := m.Forward(x, &cache)
	b := m.Forward(x, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cached vs uncached forward differ: %v vs %v", a, b)
		}
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := New(rng, []int{10, 20}, Tanh, Identity)
	limit := math.Sqrt(6.0 / 30.0)
	for _, w := range m.W[0] {
		if w < -limit || w > limit {
			t.Fatalf("weight %v outside Xavier bound %v", w, limit)
		}
	}
	for _, b := range m.B[0] {
		if b != 0 {
			t.Fatal("biases should start at zero")
		}
	}
}
