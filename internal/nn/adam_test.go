package nn

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomGrads fills a gradient accumulator with deterministic noise.
func randomGrads(rng *rand.Rand, m *MLP) *Grads {
	g := NewGrads(m)
	for l := range g.W {
		for i := range g.W[l] {
			g.W[l][i] = rng.NormFloat64()
		}
		for i := range g.B[l] {
			g.B[l][i] = rng.NormFloat64()
		}
	}
	return g
}

// TestAdamStateRoundTrip is the property checkpointing rests on: snapshot
// the optimizer mid-run, keep stepping, then restore the snapshot onto a
// fresh optimizer and replay the same gradients — the parameters must be
// bit-identical to the uninterrupted run.
func TestAdamStateRoundTrip(t *testing.T) {
	build := func() (*MLP, *Adam) {
		m := New(rand.New(rand.NewSource(5)), []int{4, 8, 2}, Tanh, Identity)
		return m, NewAdam(m, 1e-3)
	}
	gradStream := func() *rand.Rand { return rand.New(rand.NewSource(99)) }

	// Uninterrupted: 6 steps straight.
	mA, optA := build()
	rngA := gradStream()
	for i := 0; i < 6; i++ {
		optA.Step(mA, randomGrads(rngA, mA))
	}

	// Interrupted: 3 steps, snapshot weights+optimizer, resume on fresh
	// instances, 3 more steps with the same gradient stream.
	mB, optB := build()
	rngB := gradStream()
	for i := 0; i < 3; i++ {
		optB.Step(mB, randomGrads(rngB, mB))
	}
	weights := mB.Clone()
	state := optB.State()

	mC := weights.Clone()
	optC := NewAdam(mC, 1e-3)
	if err := optC.Restore(state); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		optC.Step(mC, randomGrads(rngB, mC))
	}

	if !reflect.DeepEqual(mA.W, mC.W) || !reflect.DeepEqual(mA.B, mC.B) {
		t.Fatal("restore+step diverged from uninterrupted stepping")
	}
}

// TestAdamStateIsDeepCopy checks the snapshot cannot be mutated by later
// optimizer steps (or vice versa).
func TestAdamStateIsDeepCopy(t *testing.T) {
	m := New(rand.New(rand.NewSource(1)), []int{3, 3}, Tanh, Identity)
	opt := NewAdam(m, 1e-2)
	rng := rand.New(rand.NewSource(2))
	opt.Step(m, randomGrads(rng, m))
	s := opt.State()
	before := append([]float64(nil), s.MW[0]...)
	opt.Step(m, randomGrads(rng, m))
	if !reflect.DeepEqual(before, s.MW[0]) {
		t.Error("State() aliases the live optimizer buffers")
	}
	if s.T != 1 {
		t.Errorf("snapshot step count %d, want 1", s.T)
	}
}

func TestAdamRestoreRejectsShapeMismatch(t *testing.T) {
	small := New(rand.New(rand.NewSource(1)), []int{3, 3}, Tanh, Identity)
	big := New(rand.New(rand.NewSource(1)), []int{3, 5, 3}, Tanh, Identity)
	s := NewAdam(small, 1e-3).State()
	if err := NewAdam(big, 1e-3).Restore(s); err == nil {
		t.Error("restore accepted a state with the wrong layer count")
	}
	// Same layer count, wrong widths.
	other := New(rand.New(rand.NewSource(1)), []int{3, 4}, Tanh, Identity)
	if err := NewAdam(other, 1e-3).Restore(s); err == nil {
		t.Error("restore accepted a state with the wrong layer widths")
	}
	s.T = -1
	if err := NewAdam(small, 1e-3).Restore(s); err == nil {
		t.Error("restore accepted a negative step count")
	}
}
