package nn

import (
	"fmt"
	"math"
)

// Adam implements the Adam optimizer (Kingma & Ba) over an MLP's parameters.
type Adam struct {
	LR      float64 // learning rate (paper: 1e-3)
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t      int
	mW, vW [][]float64
	mB, vB [][]float64
}

// NewAdam creates an optimizer for m with the given learning rate and
// standard moment decay rates (0.9, 0.999, eps 1e-8).
func NewAdam(m *MLP, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
	a.mW = make([][]float64, len(m.W))
	a.vW = make([][]float64, len(m.W))
	a.mB = make([][]float64, len(m.B))
	a.vB = make([][]float64, len(m.B))
	for l := range m.W {
		a.mW[l] = make([]float64, len(m.W[l]))
		a.vW[l] = make([]float64, len(m.W[l]))
		a.mB[l] = make([]float64, len(m.B[l]))
		a.vB[l] = make([]float64, len(m.B[l]))
	}
	return a
}

// Step applies one descent update to m using gradients g (of the loss to
// minimize).
func (a *Adam) Step(m *MLP, g *Grads) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for l := range m.W {
		adamUpdate(m.W[l], g.W[l], a.mW[l], a.vW[l], a.LR, a.Beta1, a.Beta2, a.Epsilon, c1, c2)
		adamUpdate(m.B[l], g.B[l], a.mB[l], a.vB[l], a.LR, a.Beta1, a.Beta2, a.Epsilon, c1, c2)
	}
}

func adamUpdate(p, g, mo, vo []float64, lr, b1, b2, eps, c1, c2 float64) {
	for i := range p {
		mo[i] = b1*mo[i] + (1-b1)*g[i]
		vo[i] = b2*vo[i] + (1-b2)*g[i]*g[i]
		mh := mo[i] / c1
		vh := vo[i] / c2
		p[i] -= lr * mh / (math.Sqrt(vh) + eps)
	}
}

// AdamState is the serializable optimizer state: the step counter and both
// moment estimates for every parameter. Together with the network weights
// it makes an interrupted training run resumable bit-for-bit — dropping
// the moments and restarting Adam cold changes every subsequent update.
type AdamState struct {
	T      int
	MW, VW [][]float64
	MB, VB [][]float64
}

// State returns a deep copy of the optimizer's mutable state, safe to
// serialize while training continues.
func (a *Adam) State() AdamState {
	cp := func(src [][]float64) [][]float64 {
		out := make([][]float64, len(src))
		for i := range src {
			out[i] = append([]float64(nil), src[i]...)
		}
		return out
	}
	return AdamState{T: a.t, MW: cp(a.mW), VW: cp(a.vW), MB: cp(a.mB), VB: cp(a.vB)}
}

// Restore installs a previously captured state, validating that its shape
// matches the optimizer's (i.e. the network it was created for). The
// state is copied in, so the caller's slices stay independent.
func (a *Adam) Restore(s AdamState) error {
	if s.T < 0 {
		return fmt.Errorf("nn: adam restore: negative step count %d", s.T)
	}
	check := func(name string, dst, src [][]float64) error {
		if len(src) != len(dst) {
			return fmt.Errorf("nn: adam restore: %s has %d layers, want %d", name, len(src), len(dst))
		}
		for l := range src {
			if len(src[l]) != len(dst[l]) {
				return fmt.Errorf("nn: adam restore: %s layer %d has %d values, want %d",
					name, l, len(src[l]), len(dst[l]))
			}
		}
		return nil
	}
	for _, c := range []struct {
		name     string
		dst, src [][]float64
	}{{"MW", a.mW, s.MW}, {"VW", a.vW, s.VW}, {"MB", a.mB, s.MB}, {"VB", a.vB, s.VB}} {
		if err := check(c.name, c.dst, c.src); err != nil {
			return err
		}
	}
	a.t = s.T
	install := func(dst, src [][]float64) {
		for l := range src {
			copy(dst[l], src[l])
		}
	}
	install(a.mW, s.MW)
	install(a.vW, s.VW)
	install(a.mB, s.MB)
	install(a.vB, s.VB)
	return nil
}

// SGD is a plain stochastic-gradient-descent optimizer, kept for ablations
// and tests.
type SGD struct {
	LR float64
}

// Step applies one descent update.
func (s SGD) Step(m *MLP, g *Grads) {
	for l := range m.W {
		for i := range m.W[l] {
			m.W[l][i] -= s.LR * g.W[l][i]
		}
		for i := range m.B[l] {
			m.B[l][i] -= s.LR * g.B[l][i]
		}
	}
}
