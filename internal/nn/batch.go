package nn

import "fmt"

// BatchCache holds the per-layer activation matrices of one ForwardBatch
// call. A zero BatchCache is ready; reusing one across calls amortizes the
// matrix allocations, growing only when a larger batch arrives.
type BatchCache struct {
	as [][]float64 // as[l] is rows x Sizes[l], row-major; as[0] is the input
}

func (c *BatchCache) ensure(m *MLP, rows int) {
	layers := len(m.W)
	if len(c.as) != layers+1 {
		c.as = make([][]float64, layers+1)
	}
	for l := 0; l <= layers; l++ {
		need := rows * m.Sizes[l]
		if cap(c.as[l]) < need {
			c.as[l] = make([]float64, need)
		}
		c.as[l] = c.as[l][:need]
	}
}

// ForwardBatch runs the network on rows stacked inputs (xs row-major,
// rows x InputSize) and returns the stacked outputs (rows x OutputSize).
// The returned slice aliases cache storage when a cache is supplied and is
// valid until the next ForwardBatch with the same cache.
//
// Row r of the result is bit-identical to Forward of row r alone: each
// row's dot products accumulate in exactly the element order Forward uses,
// so batching decisions — the rollout driver's one-forward-per-wave path —
// can never change a sampled action or logged probability.
func (m *MLP) ForwardBatch(xs []float64, rows int, cache *BatchCache) []float64 {
	if rows < 0 || len(xs) != rows*m.Sizes[0] {
		panic(fmt.Sprintf("nn: batch input length %d, want %d rows x %d", len(xs), rows, m.Sizes[0]))
	}
	var local BatchCache
	if cache == nil {
		cache = &local
	}
	cache.ensure(m, rows)
	copy(cache.as[0], xs)
	for l := range m.W {
		w := m.W[l]
		bias := m.B[l]
		act := m.Acts[l]
		nIn, nOut := m.Sizes[l], m.Sizes[l+1]
		inAll, outAll := cache.as[l], cache.as[l+1]
		for r := 0; r < rows; r++ {
			in := inAll[r*nIn : (r+1)*nIn]
			out := outAll[r*nOut : (r+1)*nOut]
			for o := range out {
				sum := bias[o]
				row := w[o*nIn : (o+1)*nIn]
				for i, v := range in {
					sum += row[i] * v
				}
				out[o] = act.apply(sum)
			}
		}
	}
	return cache.as[len(m.W)]
}
