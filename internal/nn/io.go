package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Save writes the network's architecture and parameters to w in gob format.
func (m *MLP) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m); err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	return nil
}

// Load reads a network previously written by Save.
func Load(r io.Reader) (*MLP, error) {
	var m MLP
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	if len(m.Sizes) < 2 || len(m.W) != len(m.Sizes)-1 || len(m.B) != len(m.W) || len(m.Acts) != len(m.W) {
		return nil, fmt.Errorf("nn: load: inconsistent network shape")
	}
	for l := range m.W {
		if len(m.W[l]) != m.Sizes[l]*m.Sizes[l+1] || len(m.B[l]) != m.Sizes[l+1] {
			return nil, fmt.Errorf("nn: load: layer %d has wrong parameter count", l)
		}
	}
	return &m, nil
}

// SaveFile writes the network to a file, creating or truncating it.
func (m *MLP) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: %w", err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a network from a file written by SaveFile.
func LoadFile(path string) (*MLP, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: %w", err)
	}
	defer f.Close()
	return Load(f)
}
