package nn

import (
	"math/rand"
	"testing"
)

// TestForwardBatchBitIdentical pins the batched forward to the scalar one:
// every row of a ForwardBatch result must equal Forward of that row alone,
// exactly — the rollout driver's correctness rests on it.
func TestForwardBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := New(rng, []int{9, 32, 16, 8, 2}, Tanh, Identity)
	var cache Cache
	var bcache BatchCache
	for _, rows := range []int{1, 3, 17, 64, 5} { // shrinking batch reuses the cache
		nIn, nOut := m.InputSize(), m.OutputSize()
		xs := make([]float64, rows*nIn)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		got := m.ForwardBatch(xs, rows, &bcache)
		if len(got) != rows*nOut {
			t.Fatalf("rows=%d: output length %d, want %d", rows, len(got), rows*nOut)
		}
		for r := 0; r < rows; r++ {
			want := m.Forward(xs[r*nIn:(r+1)*nIn], &cache)
			for o := 0; o < nOut; o++ {
				if got[r*nOut+o] != want[o] {
					t.Fatalf("rows=%d row=%d out=%d: batch %v != scalar %v",
						rows, r, o, got[r*nOut+o], want[o])
				}
			}
		}
	}
}

func TestForwardBatchZeroRows(t *testing.T) {
	m := New(rand.New(rand.NewSource(1)), []int{4, 3, 2}, Tanh, Identity)
	if out := m.ForwardBatch(nil, 0, nil); len(out) != 0 {
		t.Fatalf("zero-row batch returned %d values", len(out))
	}
}
