package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// MLP is a dense multi-layer perceptron. Layer l maps sizes[l] inputs to
// sizes[l+1] outputs through weights W[l] (row-major, out x in) and biases
// B[l], followed by the layer's activation. The output layer conventionally
// uses Identity so callers can apply softmax or use raw values.
type MLP struct {
	Sizes []int
	Acts  []Activation // one per weight layer
	W     [][]float64  // W[l][o*in+i]
	B     [][]float64
}

// New creates an MLP with the given layer sizes (input first, output last),
// hidden activation for every layer but the last, and out activation for the
// last. Weights use Xavier/Glorot uniform initialization from rng.
func New(rng *rand.Rand, sizes []int, hidden, out Activation) *MLP {
	if len(sizes) < 2 {
		panic("nn: need at least input and output sizes")
	}
	for _, s := range sizes {
		if s <= 0 {
			panic("nn: nonpositive layer size")
		}
	}
	m := &MLP{Sizes: append([]int(nil), sizes...)}
	layers := len(sizes) - 1
	m.Acts = make([]Activation, layers)
	m.W = make([][]float64, layers)
	m.B = make([][]float64, layers)
	for l := 0; l < layers; l++ {
		in, outN := sizes[l], sizes[l+1]
		m.Acts[l] = hidden
		if l == layers-1 {
			m.Acts[l] = out
		}
		limit := math.Sqrt(6.0 / float64(in+outN))
		w := make([]float64, in*outN)
		for i := range w {
			w[i] = (rng.Float64()*2 - 1) * limit
		}
		m.W[l] = w
		m.B[l] = make([]float64, outN)
	}
	return m
}

// NumParams returns the total number of weights and biases.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.W {
		n += len(m.W[l]) + len(m.B[l])
	}
	return n
}

// InputSize returns the network's input dimensionality.
func (m *MLP) InputSize() int { return m.Sizes[0] }

// OutputSize returns the network's output dimensionality.
func (m *MLP) OutputSize() int { return m.Sizes[len(m.Sizes)-1] }

// Cache stores per-layer pre-activations and activations of one forward
// pass, for use by Backward. A zero Cache is ready; it is reused across
// calls to avoid allocation.
type Cache struct {
	zs   [][]float64 // pre-activations per layer
	as   [][]float64 // activations per layer, as[0] is the input
	dCur []float64   // scratch for backprop
	dNxt []float64
}

func (c *Cache) ensure(m *MLP) {
	layers := len(m.W)
	if len(c.zs) == layers {
		return
	}
	c.zs = make([][]float64, layers)
	c.as = make([][]float64, layers+1)
	c.as[0] = make([]float64, m.Sizes[0])
	maxW := 0
	for l := 0; l < layers; l++ {
		c.zs[l] = make([]float64, m.Sizes[l+1])
		c.as[l+1] = make([]float64, m.Sizes[l+1])
		if m.Sizes[l+1] > maxW {
			maxW = m.Sizes[l+1]
		}
	}
	if m.Sizes[0] > maxW {
		maxW = m.Sizes[0]
	}
	c.dCur = make([]float64, maxW)
	c.dNxt = make([]float64, maxW)
}

// Forward runs the network on x, storing intermediates in cache (which may
// be nil for inference-only use) and returning the output activations. The
// returned slice aliases cache storage when a cache is supplied and is
// valid until the next Forward with the same cache.
func (m *MLP) Forward(x []float64, cache *Cache) []float64 {
	if len(x) != m.Sizes[0] {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), m.Sizes[0]))
	}
	var local Cache
	if cache == nil {
		cache = &local
	}
	cache.ensure(m)
	copy(cache.as[0], x)
	for l := range m.W {
		in := cache.as[l]
		z := cache.zs[l]
		a := cache.as[l+1]
		w := m.W[l]
		nIn := m.Sizes[l]
		for o := range z {
			sum := m.B[l][o]
			row := w[o*nIn : (o+1)*nIn]
			for i, v := range in {
				sum += row[i] * v
			}
			z[o] = sum
			a[o] = m.Acts[l].apply(sum)
		}
	}
	return cache.as[len(m.W)]
}

// Grads accumulates parameter gradients with the same shapes as the MLP.
type Grads struct {
	W [][]float64
	B [][]float64
}

// NewGrads allocates a zeroed gradient accumulator for m.
func NewGrads(m *MLP) *Grads {
	g := &Grads{W: make([][]float64, len(m.W)), B: make([][]float64, len(m.B))}
	for l := range m.W {
		g.W[l] = make([]float64, len(m.W[l]))
		g.B[l] = make([]float64, len(m.B[l]))
	}
	return g
}

// Zero clears the accumulator.
func (g *Grads) Zero() {
	for l := range g.W {
		clear(g.W[l])
		clear(g.B[l])
	}
}

// Scale multiplies all gradients by f (e.g. 1/batchSize).
func (g *Grads) Scale(f float64) {
	for l := range g.W {
		for i := range g.W[l] {
			g.W[l][i] *= f
		}
		for i := range g.B[l] {
			g.B[l][i] *= f
		}
	}
}

// GlobalNorm returns the L2 norm over all gradients.
func (g *Grads) GlobalNorm() float64 {
	var s float64
	for l := range g.W {
		for _, v := range g.W[l] {
			s += v * v
		}
		for _, v := range g.B[l] {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// ClipGlobalNorm rescales gradients so their global norm is at most c.
func (g *Grads) ClipGlobalNorm(c float64) {
	n := g.GlobalNorm()
	if n > c && n > 0 {
		g.Scale(c / n)
	}
}

// Backward accumulates into g the gradients of a scalar loss whose partial
// derivatives with respect to the network OUTPUT activations are dOut. The
// cache must hold the forward pass of the corresponding input. Call once per
// sample; gradients sum across calls.
func (m *MLP) Backward(cache *Cache, dOut []float64, g *Grads) {
	layers := len(m.W)
	if len(dOut) != m.Sizes[layers] {
		panic(fmt.Sprintf("nn: dOut size %d, want %d", len(dOut), m.Sizes[layers]))
	}
	// delta holds dL/dz for the current layer.
	delta := cache.dCur[:m.Sizes[layers]]
	for o := range delta {
		delta[o] = dOut[o] * m.Acts[layers-1].derivFromOutput(cache.as[layers][o], cache.zs[layers-1][o])
	}
	for l := layers - 1; l >= 0; l-- {
		in := cache.as[l]
		nIn := m.Sizes[l]
		gw := g.W[l]
		gb := g.B[l]
		for o, d := range delta {
			gb[o] += d
			row := gw[o*nIn : (o+1)*nIn]
			for i, v := range in {
				row[i] += d * v
			}
		}
		if l == 0 {
			break
		}
		// propagate delta to layer l-1
		prev := cache.dNxt[:nIn]
		clear(prev)
		w := m.W[l]
		for o, d := range delta {
			row := w[o*nIn : (o+1)*nIn]
			for i := range prev {
				prev[i] += d * row[i]
			}
		}
		for i := range prev {
			prev[i] *= m.Acts[l-1].derivFromOutput(cache.as[l][i], cache.zs[l-1][i])
		}
		cache.dCur, cache.dNxt = cache.dNxt, cache.dCur
		delta = cache.dCur[:nIn]
		copy(delta, prev)
	}
}

// Clone deep-copies the network.
func (m *MLP) Clone() *MLP {
	c := &MLP{
		Sizes: append([]int(nil), m.Sizes...),
		Acts:  append([]Activation(nil), m.Acts...),
		W:     make([][]float64, len(m.W)),
		B:     make([][]float64, len(m.B)),
	}
	for l := range m.W {
		c.W[l] = append([]float64(nil), m.W[l]...)
		c.B[l] = append([]float64(nil), m.B[l]...)
	}
	return c
}
