// Package nn is a small, dependency-free neural-network library sufficient
// for the paper's agent: dense multi-layer perceptrons (the 3-hidden-layer
// 32/16/8 network of §3.1), tanh/ReLU activations, softmax utilities, exact
// backpropagation, and the Adam optimizer. Everything is float64 and
// deterministic given a seeded RNG.
package nn

import "math"

// Activation selects a layer's nonlinearity.
type Activation int

const (
	// Identity is the linear activation, used for output layers.
	Identity Activation = iota
	// Tanh is the hyperbolic tangent.
	Tanh
	// ReLU is the rectified linear unit.
	ReLU
)

// String returns the activation's name.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case Tanh:
		return "tanh"
	case ReLU:
		return "relu"
	}
	return "unknown"
}

// apply computes the activation of z.
func (a Activation) apply(z float64) float64 {
	switch a {
	case Tanh:
		return math.Tanh(z)
	case ReLU:
		if z < 0 {
			return 0
		}
		return z
	default:
		return z
	}
}

// derivFromOutput returns da/dz expressed in terms of the activation output
// y = a(z) (cheap for tanh) and the pre-activation z (needed for ReLU).
func (a Activation) derivFromOutput(y, z float64) float64 {
	switch a {
	case Tanh:
		return 1 - y*y
	case ReLU:
		if z > 0 {
			return 1
		}
		return 0
	default:
		return 1
	}
}

// Softmax writes the softmax of logits into out (allocating if nil) and
// returns it. It is numerically stable under large logits.
func Softmax(logits, out []float64) []float64 {
	if out == nil {
		out = make([]float64, len(logits))
	}
	maxL := math.Inf(-1)
	for _, l := range logits {
		if l > maxL {
			maxL = l
		}
	}
	var sum float64
	for i, l := range logits {
		e := math.Exp(l - maxL)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// LogSumExp returns log(sum(exp(logits))) stably.
func LogSumExp(logits []float64) float64 {
	maxL := math.Inf(-1)
	for _, l := range logits {
		if l > maxL {
			maxL = l
		}
	}
	if math.IsInf(maxL, -1) {
		return maxL
	}
	var sum float64
	for _, l := range logits {
		sum += math.Exp(l - maxL)
	}
	return maxL + math.Log(sum)
}

// LogSoftmax returns log-softmax(logits)[idx].
func LogSoftmax(logits []float64, idx int) float64 {
	return logits[idx] - LogSumExp(logits)
}
