package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-Mean(xs)) > 1e-9 {
		t.Errorf("mean %v vs %v", w.Mean(), Mean(xs))
	}
	if math.Abs(w.Std()-Std(xs)) > 1e-9 {
		t.Errorf("std %v vs %v", w.Std(), Std(xs))
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if w.Min() != lo || w.Max() != hi {
		t.Errorf("min/max %v/%v vs %v/%v", w.Min(), w.Max(), lo, hi)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Std() != 0 || w.N() != 0 {
		t.Error("empty accumulator not zero")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Var() != 0 {
		t.Errorf("single obs: mean %v var %v", w.Mean(), w.Var())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// interpolation between order stats
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("interp = %v, want 5", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("nil percentile not 0")
	}
	// input must not be reordered
	if xs[0] != 4 {
		t.Error("Percentile mutated input")
	}
}

func TestSummarize(t *testing.T) {
	b := Summarize([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Mean != 3 || b.N != 5 {
		t.Errorf("bad box: %+v", b)
	}
	if b.String() == "" {
		t.Error("empty String()")
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty summarize not zero")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {9, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if got := c.Quantile(0.5); math.Abs(got-2) > 1e-12 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	xs, fs := c.Curve(5)
	if len(xs) != 5 || len(fs) != 5 {
		t.Fatalf("curve lengths %d/%d", len(xs), len(fs))
	}
	if fs[len(fs)-1] != 1 {
		t.Errorf("curve must end at 1, got %v", fs[len(fs)-1])
	}
	for i := 1; i < len(fs); i++ {
		if fs[i] < fs[i-1] {
			t.Error("CDF curve not monotone")
		}
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{10, 20, 30})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Errorf("Normalize[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if got := Normalize([]float64{7, 7}); got[0] != 0 || got[1] != 0 {
		t.Error("constant input should normalize to zeros")
	}
	if Normalize(nil) != nil {
		t.Error("nil input should return nil")
	}
}

// Property: CDF At is monotone and bounded for arbitrary inputs.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, probe []float64) bool {
		var clean []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		c := NewCDF(clean)
		sort.Float64s(probe)
		prev := -1.0
		for _, p := range probe {
			if math.IsNaN(p) {
				continue
			}
			v := c.At(p)
			if v < 0 || v > 1 || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: percentile of any non-empty slice lies within [min, max].
func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw []float64, p uint8) bool {
		var clean []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		v := Percentile(clean, float64(p%101))
		lo, hi := clean[0], clean[0]
		for _, x := range clean {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
