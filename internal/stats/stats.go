// Package stats provides the small descriptive-statistics toolkit used by
// the evaluation harness: streaming moments, percentiles, box-and-whisker
// summaries, and empirical CDFs (for the §5 "what SchedInspector learns"
// analysis).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates mean and variance in a single streaming pass.
type Welford struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance (0 if fewer than two observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 if empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 if empty).
func (w *Welford) Max() float64 { return w.max }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Box is a five-number box-and-whisker summary plus the mean, matching the
// box plots in Figures 8, 10 and 12 of the paper.
type Box struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// Summarize computes the box summary of xs.
func Summarize(xs []float64) Box {
	if len(xs) == 0 {
		return Box{}
	}
	return Box{
		Min:    Percentile(xs, 0),
		Q1:     Percentile(xs, 25),
		Median: Percentile(xs, 50),
		Q3:     Percentile(xs, 75),
		Max:    Percentile(xs, 100),
		Mean:   Mean(xs),
		N:      len(xs),
	}
}

// String renders the box compactly for report tables.
func (b Box) String() string {
	return fmt.Sprintf("n=%d mean=%.2f [min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f]",
		b.N, b.Mean, b.Min, b.Q1, b.Median, b.Q3, b.Max)
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	xs []float64 // sorted
}

// NewCDF builds an empirical CDF from observations (copied and sorted).
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{xs: s}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.xs))
}

// Quantile returns the q-th quantile (0..1).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	return Percentile(c.xs, q*100)
}

// N returns the number of observations in the CDF.
func (c *CDF) N() int { return len(c.xs) }

// Curve samples the CDF at n evenly spaced points across [min, max] and
// returns (x, F(x)) pairs — the format the Figure 13 reproduction prints.
func (c *CDF) Curve(n int) (xs, fs []float64) {
	if len(c.xs) == 0 || n < 2 {
		return nil, nil
	}
	lo, hi := c.xs[0], c.xs[len(c.xs)-1]
	xs = make([]float64, n)
	fs = make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		xs[i] = x
		fs[i] = c.At(x)
	}
	return xs, fs
}

// Normalize maps xs into [0,1] by min-max scaling, returning a new slice.
// Used to put features on the common x-axis of Figure 13.
func Normalize(xs []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	out := make([]float64, len(xs))
	if hi == lo {
		return out
	}
	for i, x := range xs {
		out[i] = (x - lo) / (hi - lo)
	}
	return out
}
