package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Paired-comparison statistics for evaluation results: the paper reports
// mean improvements over 50 paired sequences; these helpers quantify how
// solid such a comparison is.

// PairedDelta summarizes base[i] - insp[i] over paired observations:
// positive deltas mean the inspected run improved a minimized metric.
type PairedDelta struct {
	N          int
	MeanDelta  float64
	Wins       int // insp strictly better (delta > 0)
	Losses     int // insp strictly worse
	Ties       int
	CILow      float64 // bootstrap confidence interval on the mean delta
	CIHigh     float64
	SignPValue float64 // two-sided sign-test p-value on wins vs losses
}

// ComparePaired computes the paired summary with a percentile bootstrap of
// the mean delta at the given confidence (e.g. 0.95) using resamples drawn
// from rng. base and insp must have equal length.
func ComparePaired(base, insp []float64, confidence float64, resamples int, rng *rand.Rand) PairedDelta {
	n := min(len(base), len(insp))
	out := PairedDelta{N: n, SignPValue: 1}
	if n == 0 {
		return out
	}
	deltas := make([]float64, n)
	for i := 0; i < n; i++ {
		deltas[i] = base[i] - insp[i]
		out.MeanDelta += deltas[i] / float64(n)
		switch {
		case deltas[i] > 0:
			out.Wins++
		case deltas[i] < 0:
			out.Losses++
		default:
			out.Ties++
		}
	}
	out.SignPValue = signTest(out.Wins, out.Losses)

	if resamples <= 0 {
		resamples = 2000
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	means := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		var m float64
		for i := 0; i < n; i++ {
			m += deltas[rng.Intn(n)]
		}
		means[r] = m / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - confidence) / 2
	out.CILow = means[int(alpha*float64(resamples))]
	hi := int((1 - alpha) * float64(resamples))
	if hi >= resamples {
		hi = resamples - 1
	}
	out.CIHigh = means[hi]
	return out
}

// signTest returns the two-sided binomial sign-test p-value for wins vs
// losses (ties excluded), i.e. the probability of a split at least this
// extreme under a fair coin.
func signTest(wins, losses int) float64 {
	n := wins + losses
	if n == 0 {
		return 1
	}
	k := wins
	if losses < wins {
		k = losses
	}
	// P(X <= k) for X ~ Binomial(n, 0.5), doubled and capped at 1.
	var p float64
	for i := 0; i <= k; i++ {
		p += math.Exp(logChoose(n, i) - float64(n)*math.Ln2)
	}
	p *= 2
	if p > 1 {
		p = 1
	}
	return p
}

// logChoose returns log(n choose k) via log-gamma.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}
