package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestComparePairedBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := []float64{10, 12, 9, 11, 10, 13, 12, 10}
	insp := []float64{8, 9, 8, 9, 9, 10, 9, 8} // uniformly better by ~2
	d := ComparePaired(base, insp, 0.95, 2000, rng)
	if d.N != 8 || d.Wins != 8 || d.Losses != 0 || d.Ties != 0 {
		t.Fatalf("counts wrong: %+v", d)
	}
	if d.MeanDelta <= 0 {
		t.Errorf("mean delta %v, want positive", d.MeanDelta)
	}
	if d.CILow > d.MeanDelta || d.CIHigh < d.MeanDelta {
		t.Errorf("CI [%v,%v] excludes mean %v", d.CILow, d.CIHigh, d.MeanDelta)
	}
	if d.CILow <= 0 {
		t.Errorf("uniformly-better comparison should have CI above 0: [%v,%v]", d.CILow, d.CIHigh)
	}
	// 8-0 sign test: p = 2 * (1/2)^8 = 1/128
	if math.Abs(d.SignPValue-2.0/256) > 1e-9 {
		t.Errorf("sign p-value %v, want %v", d.SignPValue, 2.0/256)
	}
}

func TestComparePairedNullCase(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 100
	base := make([]float64, n)
	insp := make([]float64, n)
	for i := range base {
		base[i] = rng.NormFloat64()
		insp[i] = rng.NormFloat64()
	}
	d := ComparePaired(base, insp, 0.95, 2000, rng)
	if d.SignPValue < 0.01 {
		t.Errorf("null comparison significant: p = %v", d.SignPValue)
	}
	if d.CILow > 0 || d.CIHigh < 0 {
		t.Errorf("null CI [%v,%v] excludes 0", d.CILow, d.CIHigh)
	}
}

func TestComparePairedEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := ComparePaired(nil, nil, 0.95, 100, rng)
	if d.N != 0 || d.SignPValue != 1 {
		t.Errorf("empty comparison: %+v", d)
	}
	// all ties
	xs := []float64{5, 5, 5}
	d = ComparePaired(xs, xs, 0.95, 100, rng)
	if d.Ties != 3 || d.SignPValue != 1 || d.MeanDelta != 0 {
		t.Errorf("tie comparison: %+v", d)
	}
	// defaulted confidence/resamples
	d = ComparePaired([]float64{2, 3}, []float64{1, 1}, 0, 0, rng)
	if d.N != 2 || d.Wins != 2 {
		t.Errorf("defaults: %+v", d)
	}
}

func TestSignTestSymmetry(t *testing.T) {
	if signTest(3, 7) != signTest(7, 3) {
		t.Error("sign test not symmetric")
	}
	if p := signTest(5, 5); p < 0.99 {
		t.Errorf("even split p = %v, want ~1", p)
	}
	if p := signTest(50, 0); p > 1e-10 {
		t.Errorf("50-0 split p = %v, want ~0", p)
	}
	if signTest(0, 0) != 1 {
		t.Error("no data p != 1")
	}
}

func TestLogChoose(t *testing.T) {
	// C(10,3) = 120
	if got := math.Exp(logChoose(10, 3)); math.Abs(got-120) > 1e-6 {
		t.Errorf("C(10,3) = %v", got)
	}
	if !math.IsInf(logChoose(5, 9), -1) || !math.IsInf(logChoose(5, -1), -1) {
		t.Error("out-of-range choose not -Inf")
	}
}
