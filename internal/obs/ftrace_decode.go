package obs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
)

// Decoders for the .ftrace record bodies encoded in ring.go, plus the JSONL
// append helpers the offline converter uses to reproduce the legacy sinks'
// bytes exactly. Field order here must mirror the put* encoders; any
// divergence is an FTraceVersion bump.

// ftraceReader is a bounds-checked little-endian cursor over one record
// body. The first out-of-bounds read trips the err flag and poisons every
// later read, so decoders check the error once at the end.
type ftraceReader struct {
	b   []byte
	o   int
	err bool
}

func (d *ftraceReader) u32() uint32 {
	if d.err || d.o+4 > len(d.b) {
		d.err = true
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.o:])
	d.o += 4
	return v
}

func (d *ftraceReader) u64() uint64 {
	if d.err || d.o+8 > len(d.b) {
		d.err = true
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.o:])
	d.o += 8
	return v
}

func (d *ftraceReader) i64() int64 { return int64(d.u64()) }

func (d *ftraceReader) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *ftraceReader) str() string {
	n := int(d.u32())
	if d.err || n < 0 || d.o+n > len(d.b) {
		d.err = true
		return ""
	}
	s := string(d.b[d.o : d.o+n])
	d.o += n
	return s
}

func (d *ftraceReader) bool() bool {
	if d.err || d.o+1 > len(d.b) {
		d.err = true
		return false
	}
	v := d.b[d.o] != 0
	d.o++
	return v
}

// f64s decodes a counted float slice. A zero count yields nil, matching the
// nil slices the JSONL path round-trips.
func (d *ftraceReader) f64s() []float64 {
	n := int(d.u32())
	if d.err || n < 0 || d.o+8*n > len(d.b) {
		d.err = true
		return nil
	}
	if n == 0 {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = d.f64()
	}
	return vs
}

// done validates that the body was consumed exactly.
func (d *ftraceReader) done(kind string) error {
	if d.err {
		return fmt.Errorf("obs: truncated ftrace %s body (%d bytes)", kind, len(d.b))
	}
	if d.o != len(d.b) {
		return fmt.Errorf("obs: ftrace %s body has %d trailing bytes", kind, len(d.b)-d.o)
	}
	return nil
}

// DecodeFTraceSpan decodes one FTraceKindSpan body.
func DecodeFTraceSpan(body []byte) (Span, error) {
	d := ftraceReader{b: body}
	s := Span{
		ID:        SpanID(d.u64()),
		Parent:    SpanID(d.u64()),
		Name:      d.str(),
		WallStart: d.i64(),
		WallEnd:   d.i64(),
		SimStart:  d.f64(),
		SimEnd:    d.f64(),
	}
	// An attribute occupies at least 16 encoded bytes, bounding the count
	// a corrupt body can claim before allocation.
	n := int(d.u32())
	if !d.err && n > 0 && n <= (len(body)-d.o)/16 {
		s.Attrs = make([]Attr, n)
		for i := range s.Attrs {
			s.Attrs[i] = Attr{Key: d.str(), Num: d.f64(), Str: d.str()}
		}
	} else if n != 0 {
		d.err = true
	}
	return s, d.done("span")
}

// DecodeFTraceDecision decodes one FTraceKindDecision body.
func DecodeFTraceDecision(body []byte) (ExplainRecord, error) {
	d := ftraceReader{b: body}
	r := ExplainRecord{
		Epoch:         int(d.i64()),
		Traj:          int(d.i64()),
		Seq:           int(d.i64()),
		Time:          d.f64(),
		JobID:         int(d.i64()),
		Wait:          d.f64(),
		Procs:         int(d.i64()),
		Est:           d.f64(),
		Rejections:    int(d.i64()),
		MaxRejections: int(d.i64()),
		QueueLen:      int(d.i64()),
		FreeProcs:     int(d.i64()),
		TotalProcs:    int(d.i64()),
		Utilization:   d.f64(),
		Action:        int(d.i64()),
		Sampled:       d.bool(),
		Rejected:      d.bool(),
	}
	r.Features = d.f64s()
	r.Logits = d.f64s()
	r.Probs = d.f64s()
	return r, d.done("decision")
}

// DecodeFTraceHeader decodes one FTraceKindHeader body. The Kind field is
// restored to the JSONL discriminator "explain_header".
func DecodeFTraceHeader(body []byte) (ExplainHeader, error) {
	d := ftraceReader{b: body}
	h := ExplainHeader{Kind: "explain_header", Mode: d.str()}
	// A feature name occupies at least 4 encoded bytes, bounding the count.
	n := int(d.u32())
	if !d.err && n >= 0 && n <= (len(body)-d.o)/4 {
		if n > 0 {
			h.Features = make([]string, n)
			for i := range h.Features {
				h.Features[i] = d.str()
			}
		}
	} else {
		d.err = true
	}
	h.MaxRejections = int(d.i64())
	return h, d.done("header")
}

// DecodeFTraceProc decodes one FTraceKindProc body.
func DecodeFTraceProc(body []byte) (ProcStats, error) {
	d := ftraceReader{b: body}
	s := ProcStats{
		Wall:       d.i64(),
		Goroutines: int(d.i64()),
		HeapAlloc:  d.u64(),
		HeapSys:    d.u64(),
		NumGC:      d.u32(),
		PauseTotal: d.u64(),
	}
	return s, d.done("proc")
}

// --- JSONL wire-form append helpers ---------------------------------------
//
// These marshal through the exact wrapper types the live JSONL sinks use,
// so binary→JSONL conversion is byte-identical to the legacy sink by
// construction (json.Marshal is deterministic for a fixed struct type, and
// Encoder.Encode emits Marshal's bytes plus a trailing newline).

// AppendSpanJSONL appends the {"kind":"span",...} line for s, newline
// included.
func AppendSpanJSONL(dst []byte, s *Span) ([]byte, error) {
	b, err := json.Marshal(jsonSpan{Kind: "span", Span: *s})
	if err != nil {
		return dst, err
	}
	return append(append(dst, b...), '\n'), nil
}

// AppendDecisionJSONL appends the {"kind":"decision",...} line for r,
// newline included.
func AppendDecisionJSONL(dst []byte, r *ExplainRecord) ([]byte, error) {
	b, err := json.Marshal(jsonExplain{Kind: "decision", ExplainRecord: *r})
	if err != nil {
		return dst, err
	}
	return append(append(dst, b...), '\n'), nil
}

// AppendExplainHeaderJSONL appends the explain_header line for h, newline
// included. The Kind discriminator is forced regardless of h.Kind.
func AppendExplainHeaderJSONL(dst []byte, h ExplainHeader) ([]byte, error) {
	h.Kind = "explain_header"
	b, err := json.Marshal(h)
	if err != nil {
		return dst, err
	}
	return append(append(dst, b...), '\n'), nil
}

// jsonProc is the JSONL wire form of one runtime sample.
type jsonProc struct {
	Kind string `json:"kind"`
	ProcStats
}

// AppendProcJSONL appends the {"kind":"proc",...} line for s, newline
// included.
func AppendProcJSONL(dst []byte, s ProcStats) ([]byte, error) {
	b, err := json.Marshal(jsonProc{Kind: "proc", ProcStats: s})
	if err != nil {
		return dst, err
	}
	return append(append(dst, b...), '\n'), nil
}
