package obs

import (
	"math"
	"testing"
)

func TestHistQuantileUniform(t *testing.T) {
	// 100 observations spread evenly over (0, 10] in ten unit buckets: the
	// estimator must reproduce the underlying uniform distribution.
	uppers := LinearBuckets(1, 1, 10)
	cum := make([]uint64, 11)
	for i := range uppers {
		cum[i] = uint64((i + 1) * 10)
	}
	cum[10] = 100 // nothing above the last bound
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 5}, {0.9, 9}, {0.25, 2.5}, {1, 10}, {0, 0},
	} {
		if got := HistQuantile(tc.q, uppers, cum); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("q=%v: got %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestHistQuantileEdgeCases(t *testing.T) {
	uppers := []float64{1, 2}

	if got := HistQuantile(0.5, uppers, []uint64{0, 0, 0}); !math.IsNaN(got) {
		t.Errorf("empty histogram: got %v, want NaN", got)
	}
	if got := HistQuantile(0.5, uppers, []uint64{0, 0}); !math.IsNaN(got) {
		t.Errorf("malformed cum length: got %v, want NaN", got)
	}
	if got := HistQuantile(math.NaN(), uppers, []uint64{1, 2, 3}); !math.IsNaN(got) {
		t.Errorf("NaN q: got %v, want NaN", got)
	}
	// Everything in the +Inf bucket: the highest finite bound is the only
	// defensible estimate.
	if got := HistQuantile(0.99, uppers, []uint64{0, 0, 7}); got != 2 {
		t.Errorf("+Inf bucket: got %v, want 2", got)
	}
	// No finite bounds at all.
	if got := HistQuantile(0.5, nil, []uint64{5}); !math.IsNaN(got) {
		t.Errorf("no finite buckets: got %v, want NaN", got)
	}
	// q clamped.
	if got := HistQuantile(7, uppers, []uint64{1, 1, 1}); got != 1 {
		t.Errorf("q>1: got %v, want 1", got)
	}
	// First bucket with a non-positive bound reports the bound itself.
	if got := HistQuantile(0.1, []float64{-1, 5}, []uint64{4, 4, 4}); got != -1 {
		t.Errorf("non-positive first bound: got %v, want -1", got)
	}
}

func TestHistogramQuantileLive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_test_seconds", "", LinearBuckets(0.1, 0.1, 10), nil)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100) // 0.01..1.00 uniform
	}
	if got := h.Quantile(0.5); math.Abs(got-0.5) > 0.05 {
		t.Errorf("p50 = %v, want ~0.5", got)
	}
	if got := h.Quantile(0.99); math.Abs(got-0.99) > 0.05 {
		t.Errorf("p99 = %v, want ~0.99", got)
	}
	uppers, cum := h.Buckets()
	if len(uppers) != 10 || len(cum) != 11 {
		t.Fatalf("Buckets shape: %d uppers, %d cum", len(uppers), len(cum))
	}
	if cum[10] != 100 {
		t.Errorf("total = %d, want 100", cum[10])
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cum not monotone at %d: %v", i, cum)
		}
	}
}
