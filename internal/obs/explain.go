package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
)

// Explain records: the per-decision payload of the flight recorder. Where
// a span says *that* a decision happened and how long it took, the explain
// record says *why*: the exact feature vector the policy observed, its raw
// logits and action distribution, the sampled (or greedy) verdict, and the
// scheduling context (queue depth, utilization, the job's rejection count
// against MAX_REJECTION_TIMES) — everything the paper's §5 behavior
// analysis needs to reconstruct any individual decision after the fact.
//
// Records deliberately carry no wall-clock time: every field is a pure
// function of (seed, epoch, trajectory, decision sequence), so the set of
// records from a run is bit-identical at any worker count — order within
// the ring is the only thing scheduling may permute, which is why the
// analysis layer sorts by (Epoch, Traj, Seq) before computing anything.

// ExplainRecord is one fully-instrumented inspector decision. The job
// identified by JobID is the base policy's pick at this scheduling point —
// the decision under inspection.
type ExplainRecord struct {
	Epoch int     `json:"epoch,omitempty"` // training epoch (0 outside training)
	Traj  int     `json:"traj"`            // trajectory / episode slot
	Seq   int     `json:"seq"`             // decision index within the trajectory
	Time  float64 `json:"t"`               // simulation time of the decision

	// The inspected decision: the base policy's picked job.
	JobID int     `json:"job"`
	Wait  float64 `json:"wait"`
	Procs int     `json:"procs"`
	Est   float64 `json:"est"`

	// Rejection accounting against the MAX_REJECTION_TIMES cap.
	Rejections    int `json:"rejections"`
	MaxRejections int `json:"max_rejections"`

	// Cluster context. Utilization is the allocated fraction
	// 1 - free/total; QueueLen counts waiting jobs including the pick.
	QueueLen    int     `json:"queue"`
	FreeProcs   int     `json:"free"`
	TotalProcs  int     `json:"total"`
	Utilization float64 `json:"util"`

	// What the policy saw and produced. Slices are owned by the record.
	Features []float64 `json:"features"`
	Logits   []float64 `json:"logits"`
	Probs    []float64 `json:"probs"`
	Action   int       `json:"action"`
	Sampled  bool      `json:"sampled"` // sampled from the distribution vs greedy argmax
	Rejected bool      `json:"rejected"`
}

// jsonExplain is the JSONL wire form of one record.
type jsonExplain struct {
	Kind string `json:"kind"`
	ExplainRecord
}

// ExplainHeader is the meta line written once per JSONL trace, labeling
// the feature indices of every subsequent decision record.
type ExplainHeader struct {
	Kind          string   `json:"kind"` // "explain_header"
	Mode          string   `json:"mode"` // feature mode name
	Features      []string `json:"features"`
	MaxRejections int      `json:"max_rejections"`
}

// DefaultExplainCap is the ring capacity NewExplainRecorder uses for
// capacity <= 0.
const DefaultExplainCap = 4096

// ExplainRecorder holds the last decisions in a bounded ring and,
// optionally, streams every record to a JSONL sink. A nil *ExplainRecorder
// records nothing; all methods are nil-safe.
type ExplainRecorder struct {
	mu      sync.Mutex
	ring    []ExplainRecord
	start   int
	n       int
	total   uint64
	sink    io.Writer
	sinkErr error

	names         []string
	mode          string
	maxRejections int
	headerOut     bool

	// Reused JSONL encode state (see SpanTracer); guarded by mu.
	encBuf bytes.Buffer
	enc    *json.Encoder
	encRec jsonExplain
}

// NewExplainRecorder returns a recorder holding at most capacity records
// (DefaultExplainCap if capacity <= 0).
func NewExplainRecorder(capacity int) *ExplainRecorder {
	if capacity <= 0 {
		capacity = DefaultExplainCap
	}
	return &ExplainRecorder{ring: make([]ExplainRecord, 0, capacity)}
}

// SetMeta declares the feature names, feature-mode name and rejection cap
// of subsequent records. The first call after a sink is installed writes
// the explain_header line; a later call that actually changes the meta (a
// feature-mode-changing model reload) writes a fresh header, so a sink
// stream stays self-describing: every record decodes against the most
// recent preceding header. Calls that restate the current meta only update
// the in-memory copy (served by FeatureNames).
func (r *ExplainRecorder) SetMeta(names []string, mode string, maxRejections int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if metaChanged(r.names, r.mode, r.maxRejections, names, mode, maxRejections) {
		r.headerOut = false
	}
	r.names = names
	r.mode = mode
	r.maxRejections = maxRejections
	r.writeHeaderLocked()
	r.mu.Unlock()
}

// metaChanged reports whether a SetMeta call declares different meta than
// the recorder currently holds (a nil current name set counts as changed —
// the first declaration must emit a header).
func metaChanged(curNames []string, curMode string, curMax int, names []string, mode string, maxRejections int) bool {
	if curNames == nil || curMode != mode || curMax != maxRejections || len(curNames) != len(names) {
		return true
	}
	for i := range names {
		if curNames[i] != names[i] {
			return true
		}
	}
	return false
}

// FeatureNames returns the feature labels last declared with SetMeta.
func (r *ExplainRecorder) FeatureNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.names
}

// SetSink streams every subsequent record to w as one JSON object per
// line, preceded by the explain_header line when SetMeta has been called.
func (r *ExplainRecorder) SetSink(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = w
	r.sinkErr = nil
	r.headerOut = false
	r.writeHeaderLocked()
	r.mu.Unlock()
}

// writeHeaderLocked emits the header line once, as soon as both a sink and
// meta are present. Caller holds r.mu.
func (r *ExplainRecorder) writeHeaderLocked() {
	if r.sink == nil || r.sinkErr != nil || r.headerOut || r.names == nil {
		return
	}
	b, err := json.Marshal(ExplainHeader{
		Kind: "explain_header", Mode: r.mode, Features: r.names, MaxRejections: r.maxRejections,
	})
	if err == nil {
		b = append(b, '\n')
		_, err = r.sink.Write(b)
	}
	if err != nil {
		r.sinkErr = err
		r.sink = nil
		return
	}
	r.headerOut = true
}

// Record stores one decision. The recorder takes ownership of the record's
// slices. Safe on a nil recorder.
func (r *ExplainRecorder) Record(rec ExplainRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.total++
	if r.n < cap(r.ring) {
		r.ring = append(r.ring, rec)
		r.n++
	} else {
		r.ring[r.start] = rec
		r.start++
		if r.start == cap(r.ring) {
			r.start = 0
		}
	}
	if r.sink != nil && r.sinkErr == nil {
		if r.enc == nil {
			r.enc = json.NewEncoder(&r.encBuf)
			r.encRec.Kind = "decision"
		}
		r.encBuf.Reset()
		r.encRec.ExplainRecord = rec
		err := r.enc.Encode(&r.encRec)
		if err == nil {
			_, err = r.sink.Write(r.encBuf.Bytes())
		}
		if err != nil {
			r.sinkErr = err
			r.sink = nil
		}
	}
	r.mu.Unlock()
}

// Records returns the buffered records, oldest first.
func (r *ExplainRecorder) Records() []ExplainRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ExplainRecord, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.ring[(r.start+i)%cap(r.ring)])
	}
	return out
}

// Last returns the most recent min(n, held) records, oldest first.
func (r *ExplainRecorder) Last(n int) []ExplainRecord {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.n {
		n = r.n
	}
	out := make([]ExplainRecord, 0, n)
	for i := r.n - n; i < r.n; i++ {
		out = append(out, r.ring[(r.start+i)%cap(r.ring)])
	}
	return out
}

// Total returns how many records were recorded over the recorder's
// lifetime, including those the ring has since overwritten.
func (r *ExplainRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// SinkErr returns the first JSONL sink write error, if any.
func (r *ExplainRecorder) SinkErr() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinkErr
}

// FlightRecorder bundles the halves of the decision flight recorder behind
// one attach point (TrainConfig.Flight, EvalConfig.Flight): the legacy
// JSONL pair (span tracer + explain recorder) and/or the binary TraceRing.
// Emit sites go through EmitSpan/RecordDecision, which fan out to whichever
// halves are present — setting both is the golden-test configuration that
// produces a JSONL file and a .ftrace file from one run. A nil
// *FlightRecorder disables everything; accessors are nil-safe so call
// sites thread r.SpanTracer(), r.Explains() and r.TraceRing() without
// guards.
type FlightRecorder struct {
	Spans     *SpanTracer
	Decisions *ExplainRecorder
	Ring      *TraceRing
}

// NewFlightRecorder builds a JSONL recorder with the given ring capacities
// (<= 0 selects the package defaults).
func NewFlightRecorder(spanCap, decisionCap int) *FlightRecorder {
	return &FlightRecorder{Spans: NewSpanTracer(spanCap), Decisions: NewExplainRecorder(decisionCap)}
}

// NewBinaryFlightRecorder builds a recorder backed by a binary TraceRing of
// the given geometry (<= 0 selects the package defaults) — the
// production-cheap always-on configuration.
func NewBinaryFlightRecorder(slots, slotSize int) *FlightRecorder {
	return &FlightRecorder{Ring: NewTraceRing(slots, slotSize)}
}

// SetSink attaches the trace sink. With a binary ring present, w receives
// the .ftrace stream; otherwise both JSONL halves stream to w as
// interleaved JSON lines (distinguished by their "kind" field), serialized
// through one lock so lines never interleave mid-record.
func (f *FlightRecorder) SetSink(w io.Writer) {
	if f == nil {
		return
	}
	if f.Ring != nil {
		f.Ring.SetSink(w)
		return
	}
	lw := &lockedWriter{w: w}
	f.Spans.SetSink(lw)
	f.Decisions.SetSink(lw)
}

// SetMeta declares the feature names, feature-mode name and rejection cap
// of subsequent decision records on every present half.
func (f *FlightRecorder) SetMeta(names []string, mode string, maxRejections int) {
	if f == nil {
		return
	}
	f.Decisions.SetMeta(names, mode, maxRejections)
	f.Ring.SetMeta(names, mode, maxRejections)
}

// EmitSpan records one completed span on every present half. The legacy
// span tracer takes ownership of s.Attrs; the ring copies immediately.
func (f *FlightRecorder) EmitSpan(s Span) {
	if f == nil {
		return
	}
	f.Ring.EmitSpan(&s)
	f.Spans.Emit(s)
}

// RecordDecision records one explain record on every present half. The
// caller keeps ownership of rec and its slices: the ring copies into its
// arena, and the legacy recorder receives a deep copy of the slices — so
// hot paths may pass borrowed scratch storage.
func (f *FlightRecorder) RecordDecision(rec *ExplainRecord) {
	if f == nil {
		return
	}
	f.Ring.EmitDecision(rec)
	if f.Decisions != nil {
		cp := *rec
		cp.Features = append([]float64(nil), rec.Features...)
		cp.Logits = append([]float64(nil), rec.Logits...)
		cp.Probs = append([]float64(nil), rec.Probs...)
		f.Decisions.Record(cp)
	}
}

// TraceRing returns the binary half, nil when absent.
func (f *FlightRecorder) TraceRing() *TraceRing {
	if f == nil {
		return nil
	}
	return f.Ring
}

// Flush drains any buffered binary segment to the sink and returns the
// first sink error from any half. Call it before closing the sink file.
func (f *FlightRecorder) Flush() error {
	if f == nil {
		return nil
	}
	if err := f.Ring.Flush(); err != nil {
		return err
	}
	return f.SinkErr()
}

// SpanTracer returns the span half, nil when f is nil.
func (f *FlightRecorder) SpanTracer() *SpanTracer {
	if f == nil {
		return nil
	}
	return f.Spans
}

// Explains returns the explain-record half, nil when f is nil.
func (f *FlightRecorder) Explains() *ExplainRecorder {
	if f == nil {
		return nil
	}
	return f.Decisions
}

// SinkErr returns the first sink error from any half.
func (f *FlightRecorder) SinkErr() error {
	if f == nil {
		return nil
	}
	if err := f.Spans.SinkErr(); err != nil {
		return err
	}
	if err := f.Decisions.SinkErr(); err != nil {
		return err
	}
	return f.Ring.SinkErr()
}
