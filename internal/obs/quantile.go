package obs

import "math"

// HistQuantile estimates the q-quantile of a histogram from its cumulative
// bucket counts, the way Prometheus's histogram_quantile() does: find the
// bucket the rank falls in and interpolate linearly inside it. The
// estimator is shared by everything that turns bucket counts back into a
// latency number — the serve handler's scrape-time p99 gauges, the fleet
// plane's per-target quantiles, and any dashboard math over dist exchange
// histograms — so every surface reports the same estimate for the same
// buckets.
//
// uppers are the finite upper bounds, strictly increasing (may be empty).
// cum has len(uppers)+1 entries: cum[i] counts observations <= uppers[i],
// and the final entry is the total count including the implicit +Inf
// bucket. q is clamped to [0, 1].
//
// Conventions match Prometheus: an empty histogram (or malformed cum
// slice) estimates NaN; a rank landing in the +Inf bucket returns the
// highest finite bound (the estimate is a floor, not an extrapolation);
// the first bucket interpolates from zero, or returns its bound outright
// when that bound is not positive (latency-style histograms never are).
func HistQuantile(q float64, uppers []float64, cum []uint64) float64 {
	if len(cum) != len(uppers)+1 || math.IsNaN(q) {
		return math.NaN()
	}
	total := cum[len(cum)-1]
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	for i, ub := range uppers {
		if float64(cum[i]) < rank {
			continue
		}
		lower := 0.0
		var below uint64
		if i > 0 {
			lower = uppers[i-1]
			below = cum[i-1]
		}
		if ub <= 0 && i == 0 {
			return ub
		}
		in := cum[i] - below
		if in == 0 {
			return ub
		}
		return lower + (ub-lower)*(rank-float64(below))/float64(in)
	}
	// The rank lands in the +Inf bucket: the data gives no upper bound, so
	// report the largest bound we can still stand behind.
	if len(uppers) == 0 {
		return math.NaN()
	}
	return uppers[len(uppers)-1]
}

// Buckets returns a consistent snapshot of the histogram's finite upper
// bounds and cumulative counts, with the final count including the
// implicit +Inf bucket — the exact shape HistQuantile consumes. Counts are
// loaded bucket-by-bucket while observations continue, so the snapshot is
// monotone but may trail in-flight Observes, the same guarantee the
// rendered exposition has.
func (h *Histogram) Buckets() (uppers []float64, cum []uint64) {
	uppers = append([]float64(nil), h.upper...)
	cum = make([]uint64, len(h.upper)+1)
	var c uint64
	for i := range h.counts {
		c += h.counts[i].Load()
		cum[i] = c
	}
	cum[len(h.upper)] = c + h.inf.Load()
	return uppers, cum
}

// Quantile estimates the q-quantile of the live histogram via
// HistQuantile. NaN when the histogram has no observations.
func (h *Histogram) Quantile(q float64) float64 {
	uppers, cum := h.Buckets()
	return HistQuantile(q, uppers, cum)
}
