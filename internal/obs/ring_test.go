package obs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// decodeImage parses a complete .ftrace byte image (file header plus any
// number of CRC-framed segments) into (kind, body) record pairs. It is the
// test-side mirror of the encoder; the full offline reader lives in
// internal/explain, which cannot be imported from an in-package obs test.
func decodeImage(t *testing.T, img []byte) (kinds []byte, bodies [][]byte) {
	t.Helper()
	if _, err := ParseFTraceFileHeader(img); err != nil {
		t.Fatalf("file header: %v", err)
	}
	o := ftraceHeaderLen
	for o < len(img) {
		if o+ftraceSegHdrLen > len(img) {
			t.Fatalf("truncated segment header at %d", o)
		}
		length := int(binary.LittleEndian.Uint32(img[o:]))
		crc := binary.LittleEndian.Uint32(img[o+4:])
		o += ftraceSegHdrLen
		if o+length > len(img) {
			t.Fatalf("segment overruns image at %d", o)
		}
		payload := img[o : o+length]
		if got := FTraceSegmentCRC(payload); got != crc {
			t.Fatalf("segment CRC mismatch: got %08x want %08x", got, crc)
		}
		o += length
		p := 0
		for p < len(payload) {
			kind := payload[p]
			n := int(binary.LittleEndian.Uint32(payload[p+1:]))
			p += ftraceRecHdrLen
			kinds = append(kinds, kind)
			bodies = append(bodies, payload[p:p+n])
			p += n
		}
	}
	return kinds, bodies
}

func testDecision(seq int) ExplainRecord {
	return ExplainRecord{
		Epoch: 1, Traj: 2, Seq: seq, Time: 100.5, JobID: 40 + seq,
		Wait: 12.25, Procs: 4, Est: 600, Rejections: 1, MaxRejections: 72,
		QueueLen: 3, FreeProcs: 16, TotalProcs: 64, Utilization: 0.75,
		Action: 1, Sampled: true, Rejected: seq%2 == 0,
		Features: []float64{0.1, 0.2, 0.3},
		Logits:   []float64{0.5, -0.5},
		Probs:    []float64{0.73, 0.27},
	}
}

func TestTraceRingRoundTrip(t *testing.T) {
	r := NewTraceRing(16, 512)
	r.SetMeta([]string{"wait", "procs"}, "manual", 72)
	sp := Span{ID: 9, Parent: 2, Name: "decision", WallStart: 100, WallEnd: 150,
		SimStart: 10.5, SimEnd: 11, Attrs: []Attr{{Key: "job", Num: 7}, {Key: "verdict", Str: "reject"}}}
	r.EmitSpan(&sp)
	dec := testDecision(3)
	r.EmitDecision(&dec)
	ps := ProcStats{Wall: 1234, Goroutines: 8, HeapAlloc: 1 << 20, HeapSys: 1 << 22, NumGC: 3, PauseTotal: 5000}
	r.EmitProc(ps)

	kinds, bodies := decodeImage(t, r.Snapshot())
	if want := []byte{FTraceKindHeader, FTraceKindSpan, FTraceKindDecision, FTraceKindProc}; !bytes.Equal(kinds, want) {
		t.Fatalf("record kinds %v, want %v", kinds, want)
	}
	h, err := DecodeFTraceHeader(bodies[0])
	if err != nil {
		t.Fatal(err)
	}
	if h.Mode != "manual" || h.MaxRejections != 72 || !reflect.DeepEqual(h.Features, []string{"wait", "procs"}) {
		t.Fatalf("header mangled: %+v", h)
	}
	gotSpan, err := DecodeFTraceSpan(bodies[1])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSpan, sp) {
		t.Fatalf("span round-trip:\n got %+v\nwant %+v", gotSpan, sp)
	}
	gotDec, err := DecodeFTraceDecision(bodies[2])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotDec, dec) {
		t.Fatalf("decision round-trip:\n got %+v\nwant %+v", gotDec, dec)
	}
	gotProc, err := DecodeFTraceProc(bodies[3])
	if err != nil {
		t.Fatal(err)
	}
	if gotProc != ps {
		t.Fatalf("proc round-trip: got %+v want %+v", gotProc, ps)
	}
}

// TestTraceRingWraparound pins the eviction order: a full ring drops the
// oldest record per insert, the snapshot reads out oldest-first, and the
// lifetime counters account for every emit.
func TestTraceRingWraparound(t *testing.T) {
	r := NewTraceRing(3, 512)
	for seq := 1; seq <= 5; seq++ {
		dec := testDecision(seq)
		r.EmitDecision(&dec)
	}
	if r.Len() != 3 || r.Cap() != 3 {
		t.Fatalf("Len/Cap = %d/%d, want 3/3", r.Len(), r.Cap())
	}
	if r.Total() != 5 || r.Dropped() != 2 {
		t.Fatalf("Total/Dropped = %d/%d, want 5/2", r.Total(), r.Dropped())
	}
	_, bodies := decodeImage(t, r.Snapshot())
	if len(bodies) != 3 {
		t.Fatalf("snapshot holds %d records, want 3", len(bodies))
	}
	for i, want := range []int{3, 4, 5} {
		dec, err := DecodeFTraceDecision(bodies[i])
		if err != nil {
			t.Fatal(err)
		}
		if dec.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (oldest-first after wraparound)", i, dec.Seq, want)
		}
	}
}

// TestTraceRingOversize pins that a record too large for a slot is counted
// and skipped without disturbing the ring contents.
func TestTraceRingOversize(t *testing.T) {
	r := NewTraceRing(4, 256)
	small := testDecision(1)
	small.Features, small.Logits, small.Probs = nil, nil, nil
	r.EmitDecision(&small)
	big := testDecision(2)
	big.Features = make([]float64, 64) // >512-byte body in a 256-byte slot
	r.EmitDecision(&big)
	if r.Oversized() != 1 {
		t.Fatalf("Oversized = %d, want 1", r.Oversized())
	}
	if r.Len() != 1 || r.Total() != 1 {
		t.Fatalf("oversize record disturbed the ring: Len=%d Total=%d", r.Len(), r.Total())
	}
}

// failAfterWriter accepts the first ok writes, then fails every later one.
type failAfterWriter struct {
	ok     int
	writes int
	buf    bytes.Buffer
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.ok {
		return 0, errors.New("disk full")
	}
	return w.buf.Write(p)
}

// TestTraceRingSinkErrorMidTrace is the write-failure regression test: the
// sink dies after the file header, the first flush error sticks, the error
// counter fires once, and records keep landing in the ring regardless.
func TestTraceRingSinkErrorMidTrace(t *testing.T) {
	reg := NewRegistry()
	r := NewTraceRing(64, 512)
	r.Instrument(reg)
	w := &failAfterWriter{ok: 1} // header write succeeds, segment flushes fail
	r.SetSink(w)
	if r.SinkErr() != nil {
		t.Fatalf("header write should have succeeded: %v", r.SinkErr())
	}
	for seq := 0; seq < 8; seq++ {
		dec := testDecision(seq)
		r.EmitDecision(&dec)
	}
	if err := r.Flush(); err == nil {
		t.Fatal("flush against a dead sink returned nil")
	}
	if r.SinkErr() == nil {
		t.Fatal("sink error did not stick")
	}
	for seq := 8; seq < 12; seq++ {
		dec := testDecision(seq)
		r.EmitDecision(&dec) // must not panic or write
	}
	if err := r.Flush(); err == nil {
		t.Fatal("sticky error cleared by a later flush")
	}
	if w.writes != 2 {
		t.Fatalf("sink written %d times after error, want 2 (header + failed flush)", w.writes)
	}
	if r.Len() != 12 {
		t.Fatalf("ring stopped recording after sink error: Len=%d, want 12", r.Len())
	}
	var prom bytes.Buffer
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "schedinspector_ftrace_sink_errors_total 1") {
		t.Fatalf("sink error counter missing from exposition:\n%s", prom.String())
	}
	if !strings.Contains(prom.String(), "schedinspector_ftrace_ring_records 12") {
		t.Fatalf("occupancy gauge missing from exposition:\n%s", prom.String())
	}
}

// TestTraceRingHeaderPerSink pins the meta header discipline: one header
// record per sink generation, re-emitted when a fresh sink is attached so
// every .ftrace file is self-describing.
func TestTraceRingHeaderPerSink(t *testing.T) {
	r := NewTraceRing(16, 512)
	r.SetMeta([]string{"a"}, "manual", 72)
	r.SetMeta([]string{"a"}, "manual", 72) // idempotent: no second header

	var first bytes.Buffer
	r.SetSink(&first)
	dec := testDecision(0)
	r.EmitDecision(&dec)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	kinds, _ := decodeImage(t, first.Bytes())
	if want := []byte{FTraceKindHeader, FTraceKindDecision}; !bytes.Equal(kinds, want) {
		t.Fatalf("first sink kinds %v, want %v", kinds, want)
	}

	var second bytes.Buffer
	r.SetSink(&second)
	r.EmitDecision(&dec)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	kinds, _ = decodeImage(t, second.Bytes())
	if want := []byte{FTraceKindHeader, FTraceKindDecision}; !bytes.Equal(kinds, want) {
		t.Fatalf("second sink kinds %v, want %v (header must re-emit per sink)", kinds, want)
	}

	// The ring itself carries every header generation: the sink-less SetMeta
	// (so Snapshot is self-describing before any sink) plus one per SetSink.
	kinds, _ = decodeImage(t, r.Snapshot())
	headers := 0
	for _, k := range kinds {
		if k == FTraceKindHeader {
			headers++
		}
	}
	if headers != 3 {
		t.Fatalf("ring holds %d header records, want 3 (SetMeta + one per sink generation)", headers)
	}
}

func TestTraceRingEmptySnapshot(t *testing.T) {
	r := NewTraceRing(4, 64)
	snap := r.Snapshot()
	if _, err := ParseFTraceFileHeader(snap); err != nil {
		t.Fatal(err)
	}
	if len(snap) != ftraceHeaderLen {
		t.Fatalf("empty snapshot is %d bytes, want bare %d-byte file header", len(snap), ftraceHeaderLen)
	}
}

func TestNilTraceRingSafe(t *testing.T) {
	var r *TraceRing
	r.EmitSpan(&Span{ID: 1})
	r.EmitDecision(&ExplainRecord{})
	r.EmitProc(ProcStats{})
	r.SetMeta([]string{"a"}, "m", 1)
	r.SetSink(&bytes.Buffer{})
	r.Instrument(NewRegistry())
	if r.Len() != 0 || r.Cap() != 0 || r.Total() != 0 || r.Dropped() != 0 ||
		r.Oversized() != 0 || r.Flush() != nil || r.SinkErr() != nil || r.FeatureNames() != nil {
		t.Fatal("nil ring leaked state")
	}
	if _, err := ParseFTraceFileHeader(r.Snapshot()); err != nil {
		t.Fatalf("nil ring snapshot not a valid empty image: %v", err)
	}
}

// TestTraceRingBorrowedSlices pins the no-ownership contract: the ring
// copies slice contents into its arena at emit time, so the caller may
// mutate and reuse the backing arrays immediately.
func TestTraceRingBorrowedSlices(t *testing.T) {
	r := NewTraceRing(8, 512)
	feats := []float64{1, 2}
	dec := testDecision(0)
	dec.Features, dec.Logits, dec.Probs = feats, nil, nil
	r.EmitDecision(&dec)
	feats[0], feats[1] = -9, -9 // scratch reuse after emit
	_, bodies := decodeImage(t, r.Snapshot())
	got, err := DecodeFTraceDecision(bodies[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.Features[0] != 1 || got.Features[1] != 2 {
		t.Fatalf("arena aliased the caller's scratch: %v", got.Features)
	}
}

// TestEmitShapedSpanMatchesGeneric is the shaped-emit contract: a span sent
// through a precompiled SpanShape produces byte-for-byte the record the
// generic EmitSpan encoder writes for the equivalent Span — the template IS
// the generic encoding with the scalars patched in.
func TestEmitShapedSpanMatchesGeneric(t *testing.T) {
	shape := NewSpanShape("decision", "action", 6, []string{"job", "procs", "rejections", "free", "queue"})
	sp := Span{
		ID: 77, Parent: 13, Name: "decision", WallStart: 1111, WallEnd: 2222,
		SimStart: 10.5, SimEnd: 12.5,
		Attrs: []Attr{
			{Key: "action", Str: "reject"},
			{Key: "job", Num: 42}, {Key: "procs", Num: 8}, {Key: "rejections", Num: 1},
			{Key: "free", Num: 56}, {Key: "queue", Num: 3},
		},
	}
	generic := NewTraceRing(4, 512)
	generic.EmitSpan(&sp)
	shaped := NewTraceRing(4, 512)
	shaped.EmitShapedSpan(shape, sp.ID, sp.Parent, sp.WallStart, sp.WallEnd,
		sp.SimStart, sp.SimEnd, "reject", []float64{42, 8, 1, 56, 3})
	if !bytes.Equal(generic.Snapshot(), shaped.Snapshot()) {
		t.Fatal("shaped span record differs from the generic encoding")
	}
	_, bodies := decodeImage(t, shaped.Snapshot())
	got, err := DecodeFTraceSpan(bodies[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sp) {
		t.Fatalf("shaped span round-trip:\n got %+v\nwant %+v", got, sp)
	}
}

func TestEmitShapedSpanContractPanics(t *testing.T) {
	shape := NewSpanShape("decision", "action", 6, []string{"job"})
	r := NewTraceRing(4, 512)
	defer func() {
		if recover() == nil {
			t.Fatal("width-mismatched string value did not panic")
		}
	}()
	r.EmitShapedSpan(shape, 1, 2, 0, 0, 0, 0, "too long for six", []float64{1})
}

// TestTraceRingConcurrent hammers the emit paths and cold readers from many
// goroutines; under -race this pins the single-mutex discipline.
func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(32, 512)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				dec := testDecision(i)
				dec.Traj = g
				r.EmitDecision(&dec)
				if i%17 == 0 {
					_ = r.Snapshot()
					_ = r.Len()
					_ = r.Dropped()
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 1600 {
		t.Fatalf("Total = %d, want 1600", r.Total())
	}
	if r.Len() != 32 {
		t.Fatalf("ring holds %d, want 32", r.Len())
	}
}
