package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// EventKind classifies one simulator trace event.
type EventKind uint8

// Simulator event kinds, in rough lifecycle order.
const (
	// EventSchedPoint: the base policy picked a top-priority job at a
	// scheduling point (before any inspection).
	EventSchedPoint EventKind = iota
	// EventAccept: the inspector was consulted and let the decision proceed.
	EventAccept
	// EventReject: the inspector was consulted and rejected the decision.
	EventReject
	// EventBackfill: a job is about to start via backfilling.
	EventBackfill
	// EventJobStart: a job started executing.
	EventJobStart
	// EventJobEnd: a job completed and released its processors.
	EventJobEnd
)

var eventKindNames = [...]string{
	EventSchedPoint: "sched_point",
	EventAccept:     "accept",
	EventReject:     "reject",
	EventBackfill:   "backfill",
	EventJobStart:   "job_start",
	EventJobEnd:     "job_end",
}

// String returns the JSONL wire name of the kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Event is one structured simulator event. Time is simulation time in
// seconds; FreeProcs and QueueLen are sampled after the event took effect.
type Event struct {
	Kind       EventKind
	Time       float64
	JobID      int
	Procs      int     // processors the job requests
	Wait       float64 // how long the job has waited so far
	FreeProcs  int
	QueueLen   int
	Rejections int // accept/reject: prior rejections of this job
}

// jsonEvent is the JSONL wire form (kind by name, short keys).
type jsonEvent struct {
	Kind       string  `json:"kind"`
	Time       float64 `json:"t"`
	JobID      int     `json:"job"`
	Procs      int     `json:"procs"`
	Wait       float64 `json:"wait"`
	FreeProcs  int     `json:"free"`
	QueueLen   int     `json:"queue"`
	Rejections int     `json:"rejections,omitempty"`
}

// MarshalJSON renders the event with its kind spelled out.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonEvent{
		Kind: e.Kind.String(), Time: e.Time, JobID: e.JobID, Procs: e.Procs,
		Wait: e.Wait, FreeProcs: e.FreeProcs, QueueLen: e.QueueLen, Rejections: e.Rejections,
	})
}

// DefaultTraceCap is the ring capacity NewTracer uses for capacity <= 0.
const DefaultTraceCap = 4096

// Tracer records simulator events into a bounded ring buffer and,
// optionally, streams them to a JSONL sink. A nil *Tracer is valid and
// records nothing: every method is a no-op, and the simulator additionally
// guards each emit site with a nil check so disabled tracing costs one
// branch per event site.
type Tracer struct {
	mu      sync.Mutex
	ring    []Event
	start   int // index of the oldest event
	n       int // events currently held
	total   uint64
	sink    io.Writer
	sinkErr error

	// Reused JSONL encode state (see SpanTracer); guarded by mu.
	encBuf   bytes.Buffer
	enc      *json.Encoder
	encEvent jsonEvent
}

// NewTracer returns a tracer holding at most capacity events
// (DefaultTraceCap if capacity <= 0). Older events are overwritten.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// SetSink streams every subsequent event to w as one JSON object per line.
// The first write error sticks (see SinkErr) and disables the sink.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = w
	t.sinkErr = nil
	t.mu.Unlock()
}

// Emit records one event. Safe on a nil tracer.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.total++
	if t.n < cap(t.ring) {
		t.ring = append(t.ring, e)
		t.n++
	} else {
		t.ring[t.start] = e
		t.start++
		if t.start == cap(t.ring) {
			t.start = 0
		}
	}
	if t.sink != nil && t.sinkErr == nil {
		if t.enc == nil {
			t.enc = json.NewEncoder(&t.encBuf)
		}
		t.encBuf.Reset()
		t.encEvent = jsonEvent{
			Kind: e.Kind.String(), Time: e.Time, JobID: e.JobID, Procs: e.Procs,
			Wait: e.Wait, FreeProcs: e.FreeProcs, QueueLen: e.QueueLen, Rejections: e.Rejections,
		}
		err := t.enc.Encode(&t.encEvent)
		if err == nil {
			_, err = t.sink.Write(t.encBuf.Bytes())
		}
		if err != nil {
			t.sinkErr = err
			t.sink = nil
		}
	}
	t.mu.Unlock()
}

// Events returns the buffered events, oldest first. Safe on a nil tracer.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(t.start+i)%cap(t.ring)])
	}
	return out
}

// Total returns how many events were emitted over the tracer's lifetime,
// including those the ring has since overwritten.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events the ring overwrote.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(t.n)
}

// SinkErr returns the first JSONL sink write error, if any.
func (t *Tracer) SinkErr() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}
