package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span-based structured tracing: the decision flight recorder's skeleton.
// Where the event Tracer records flat simulator events, spans carry
// identity (an ID and a parent ID), duration in both wall-clock and
// simulation time, and free-form key/value attributes — enough to
// reconstruct "why did the model reject job X at 03:12" after the fact by
// walking run → epoch → episode → decision.
//
// Span IDs are caller-supplied and expected to come from DeriveSpanID, a
// SplitMix64 hash chain over stable tags (seed, epoch, episode slot,
// decision sequence). Identity therefore never depends on execution order:
// a workers=1 and a workers=8 rollout over the same seed emit the same
// span IDs, and only the (explicitly non-deterministic) wall timestamps
// and ring insertion order differ.

// SpanID identifies one span. Zero means "no span" (the root has parent 0).
type SpanID uint64

// DeriveSpanID hashes a chain of stable tags into a span ID using the
// SplitMix64 finalizer — the same derivation discipline as the rollout
// engine's RNG streams, so IDs are reproducible for any worker count.
func DeriveSpanID(tags ...uint64) SpanID {
	x := uint64(0x5370616e) // "Span"
	for _, t := range tags {
		x = mix64(x ^ t)
	}
	if x == 0 {
		x = 1 // 0 is reserved for "no span"
	}
	return SpanID(x)
}

// mix64 is the SplitMix64 finalizer (Steele, Lea, Flood 2014).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Attr is one key/value span attribute. Num carries numeric values, Str
// string ones; exactly one is meaningful per attribute.
type Attr struct {
	Key string  `json:"k"`
	Num float64 `json:"v,omitempty"`
	Str string  `json:"s,omitempty"`
}

// Span is one completed trace span. Wall times are Unix nanoseconds; sim
// times are simulation seconds (zero for spans outside a simulation, e.g.
// a training epoch).
type Span struct {
	ID        SpanID  `json:"id"`
	Parent    SpanID  `json:"parent,omitempty"`
	Name      string  `json:"name"`
	WallStart int64   `json:"wall0"`
	WallEnd   int64   `json:"wall1"`
	SimStart  float64 `json:"t0"`
	SimEnd    float64 `json:"t1"`
	Attrs     []Attr  `json:"attrs,omitempty"`
}

// wallNow is the wall clock, a package variable so tests can pin it.
var wallNow = func() int64 { return time.Now().UnixNano() }

// StartSpan opens a span: it stamps the wall-clock start and returns the
// value for the caller to finish with End and hand to SpanTracer.Emit.
// Spans are plain values — the tracer only sees completed ones — so
// starting a span costs nothing when tracing is disabled (callers gate on
// the tracer being non-nil before building one).
func StartSpan(name string, id, parent SpanID, simStart float64) Span {
	return Span{ID: id, Parent: parent, Name: name, WallStart: wallNow(), SimStart: simStart}
}

// End stamps the wall-clock end and the simulation end time.
func (s *Span) End(simEnd float64) {
	s.WallEnd = wallNow()
	s.SimEnd = simEnd
}

// jsonSpan is the JSONL wire form: a Span plus the line discriminator the
// flight-trace reader keys on.
type jsonSpan struct {
	Kind string `json:"kind"`
	Span
}

// DefaultSpanCap is the ring capacity NewSpanTracer uses for capacity <= 0.
const DefaultSpanCap = 4096

// SpanTracer records completed spans into a bounded ring and, optionally,
// streams them to a JSONL sink (one {"kind":"span",...} object per line).
// A nil *SpanTracer is valid and records nothing: every method is a no-op,
// and emit sites additionally guard with a nil check so disabled tracing
// costs one branch — the sim package's allocation tests pin that the nil
// tracer adds zero allocations to the Env.Step hot path.
type SpanTracer struct {
	mu      sync.Mutex
	ring    []Span
	start   int
	n       int
	total   uint64
	sink    io.Writer
	sinkErr error

	// Reused JSONL encode state: one buffer, encoder and wire wrapper per
	// tracer, so the sink path stops allocating a marshal buffer and an
	// interface box per span. Guarded by mu like the sink itself.
	encBuf  bytes.Buffer
	enc     *json.Encoder
	encSpan jsonSpan
}

// NewSpanTracer returns a tracer holding at most capacity completed spans
// (DefaultSpanCap if capacity <= 0). Older spans are overwritten.
func NewSpanTracer(capacity int) *SpanTracer {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &SpanTracer{ring: make([]Span, 0, capacity)}
}

// SetSink streams every subsequent span to w as one JSON object per line.
// The first write error sticks (see SinkErr) and disables the sink.
func (t *SpanTracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = w
	t.sinkErr = nil
	t.mu.Unlock()
}

// Emit records one completed span. The tracer takes ownership of the Attrs
// slice. Safe on a nil tracer.
func (t *SpanTracer) Emit(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.total++
	if t.n < cap(t.ring) {
		t.ring = append(t.ring, s)
		t.n++
	} else {
		t.ring[t.start] = s
		t.start++
		if t.start == cap(t.ring) {
			t.start = 0
		}
	}
	if t.sink != nil && t.sinkErr == nil {
		if t.enc == nil {
			t.enc = json.NewEncoder(&t.encBuf)
			t.encSpan.Kind = "span"
		}
		t.encBuf.Reset()
		t.encSpan.Span = s
		err := t.enc.Encode(&t.encSpan)
		if err == nil {
			_, err = t.sink.Write(t.encBuf.Bytes())
		}
		if err != nil {
			t.sinkErr = err
			t.sink = nil
		}
	}
	t.mu.Unlock()
}

// Spans returns the buffered spans, oldest first. Safe on a nil tracer.
func (t *SpanTracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(t.start+i)%cap(t.ring)])
	}
	return out
}

// Total returns how many spans were emitted over the tracer's lifetime,
// including those the ring has since overwritten.
func (t *SpanTracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many spans the ring overwrote.
func (t *SpanTracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(t.n)
}

// SinkErr returns the first JSONL sink write error, if any.
func (t *SpanTracer) SinkErr() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}

// lockedWriter serializes writes from multiple tracers sharing one sink
// file, so span and explain-record lines never interleave mid-line.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
