package obs

import (
	"runtime"
	"sync"
	"time"
)

// Runtime self-profiling: a lightweight sampler that periodically snapshots
// the Go runtime (goroutine count, heap, GC activity) into a bounded ring
// and mirrors the latest sample into registry gauges. It answers "was the
// daemon leaking goroutines / growing its heap before the incident" from
// /metrics alone, without attaching pprof — pprof stays available for deep
// dives, this is the always-on flight-recorder view.

// ProcStats is one runtime snapshot.
type ProcStats struct {
	Wall       int64  `json:"wall"` // Unix nanoseconds
	Goroutines int    `json:"goroutines"`
	HeapAlloc  uint64 `json:"heap_alloc"` // bytes of live heap objects
	HeapSys    uint64 `json:"heap_sys"`   // bytes obtained from the OS for the heap
	NumGC      uint32 `json:"num_gc"`
	PauseTotal uint64 `json:"gc_pause_total_ns"`
}

// DefaultProcCap is the ring capacity NewProcSampler uses for capacity <= 0.
const DefaultProcCap = 256

// ProcSampler snapshots runtime stats on demand or on a timer. The zero
// value is not usable; construct with NewProcSampler.
type ProcSampler struct {
	mu    sync.Mutex
	ring  []ProcStats
	start int
	n     int

	goroutines *Gauge
	heapAlloc  *Gauge
	heapSys    *Gauge
	numGC      *Gauge

	trace *TraceRing

	stop chan struct{}
	done chan struct{}
}

// NewProcSampler returns a sampler holding at most capacity snapshots
// (DefaultProcCap if capacity <= 0). If reg is non-nil the latest sample is
// mirrored into gauges (schedinspector_goroutines, schedinspector_heap_*).
func NewProcSampler(capacity int, reg *Registry) *ProcSampler {
	if capacity <= 0 {
		capacity = DefaultProcCap
	}
	p := &ProcSampler{ring: make([]ProcStats, 0, capacity)}
	if reg != nil {
		p.goroutines = reg.Gauge("schedinspector_goroutines", "Current goroutine count.", nil)
		p.heapAlloc = reg.Gauge("schedinspector_heap_alloc_bytes", "Bytes of live heap objects.", nil)
		p.heapSys = reg.Gauge("schedinspector_heap_sys_bytes", "Heap bytes obtained from the OS.", nil)
		p.numGC = reg.Gauge("schedinspector_gc_cycles_total", "Completed GC cycles (gauge mirror of runtime.NumGC).", nil)
	}
	return p
}

// TraceTo mirrors every subsequent sample into the binary trace ring as a
// proc record, so explain windows can correlate decisions with GC and heap
// pressure from the same .ftrace stream. A nil ring detaches.
func (p *ProcSampler) TraceTo(r *TraceRing) {
	p.mu.Lock()
	p.trace = r
	p.mu.Unlock()
}

// Sample takes one snapshot now, stores it in the ring, updates the gauges,
// and returns it.
func (p *ProcSampler) Sample() ProcStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := ProcStats{
		Wall:       wallNow(),
		Goroutines: runtime.NumGoroutine(),
		HeapAlloc:  ms.HeapAlloc,
		HeapSys:    ms.HeapSys,
		NumGC:      ms.NumGC,
		PauseTotal: ms.PauseTotalNs,
	}
	p.mu.Lock()
	if p.n < cap(p.ring) {
		p.ring = append(p.ring, s)
		p.n++
	} else {
		p.ring[p.start] = s
		p.start++
		if p.start == cap(p.ring) {
			p.start = 0
		}
	}
	trace := p.trace
	p.mu.Unlock()
	trace.EmitProc(s)
	if p.goroutines != nil {
		p.goroutines.Set(float64(s.Goroutines))
		p.heapAlloc.Set(float64(s.HeapAlloc))
		p.heapSys.Set(float64(s.HeapSys))
		p.numGC.Set(float64(s.NumGC))
	}
	return s
}

// Snapshots returns the buffered samples, oldest first.
func (p *ProcSampler) Snapshots() []ProcStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ProcStats, 0, p.n)
	for i := 0; i < p.n; i++ {
		out = append(out, p.ring[(p.start+i)%cap(p.ring)])
	}
	return out
}

// Start samples immediately and then every interval until the returned stop
// function is called (idempotent). Starting an already-started sampler
// panics.
func (p *ProcSampler) Start(interval time.Duration) (stop func()) {
	p.mu.Lock()
	if p.stop != nil {
		p.mu.Unlock()
		panic("obs: ProcSampler already started")
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	stopc, donec := p.stop, p.done
	p.mu.Unlock()

	p.Sample()
	go func() {
		defer close(donec)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.Sample()
			case <-stopc:
				return
			}
		}
	}()

	var once sync.Once
	return func() {
		once.Do(func() {
			close(stopc)
			<-donec
			p.mu.Lock()
			p.stop, p.done = nil, nil
			p.mu.Unlock()
		})
	}
}
