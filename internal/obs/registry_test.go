package obs

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests served.", nil)
	c.Inc()
	c.Add(2)
	out := expose(t, r)
	want := "# HELP requests_total Requests served.\n# TYPE requests_total counter\nrequests_total 3\n"
	if out != want {
		t.Errorf("exposition:\n%q\nwant:\n%q", out, want)
	}
	if c.Value() != 3 {
		t.Errorf("counter value %v", c.Value())
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	// Two series of one family plus an unrelated gauge; families render
	// sorted by name, HELP/TYPE once per family.
	r.Counter("http_requests_total", "By route.", Labels{"route": "/a", "code": "200"}).Add(5)
	r.Counter("http_requests_total", "By route.", Labels{"route": "/b", "code": "500"}).Inc()
	g := r.Gauge("build_info", "", Labels{"version": "1"})
	g.Set(1)
	out := expose(t, r)
	wantLines := []string{
		"# HELP http_requests_total By route.",
		"# TYPE http_requests_total counter",
		`http_requests_total{code="200",route="/a"} 5`,
		`http_requests_total{code="500",route="/b"} 1`,
		"# TYPE build_info gauge",
		`build_info{version="1"} 1`,
	}
	for _, l := range wantLines {
		if !strings.Contains(out, l+"\n") {
			t.Errorf("missing line %q in:\n%s", l, out)
		}
	}
	if strings.Index(out, "build_info") > strings.Index(out, "http_requests_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
	if strings.Count(out, "# TYPE http_requests_total") != 1 {
		t.Errorf("TYPE repeated per series:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "", Labels{"path": "a\\b\"c\nd"}).Set(1)
	out := expose(t, r)
	want := `g{path="a\\b\"c\nd"} 1`
	if !strings.Contains(out, want+"\n") {
		t.Errorf("escaping: got\n%s\nwant line %q", out, want)
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "line1\nline2 \\ end", nil)
	out := expose(t, r)
	if !strings.Contains(out, `# HELP c_total line1\nline2 \\ end`+"\n") {
		t.Errorf("help escaping:\n%s", out)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("temp", "", nil)
	g.Set(4.5)
	g.Add(-1.5)
	if g.Value() != 3 {
		t.Errorf("gauge %v", g.Value())
	}
	if out := expose(t, r); !strings.Contains(out, "temp 3\n") {
		t.Errorf("gauge exposition:\n%s", out)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10}, Labels{"route": "/x"})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := expose(t, r)
	wantLines := []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{route="/x",le="0.1"} 1`,
		`lat_seconds_bucket{route="/x",le="1"} 3`,
		`lat_seconds_bucket{route="/x",le="10"} 4`,
		`lat_seconds_bucket{route="/x",le="+Inf"} 5`,
		`lat_seconds_sum{route="/x"} 56.05`,
		`lat_seconds_count{route="/x"} 5`,
	}
	for _, l := range wantLines {
		if !strings.Contains(out, l+"\n") {
			t.Errorf("missing %q in:\n%s", l, out)
		}
	}
	if h.Count() != 5 || h.Sum() != 56.05 {
		t.Errorf("count %d sum %v", h.Count(), h.Sum())
	}
}

func TestHistogramUnlabeled(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1}, nil)
	h.Observe(0.5)
	out := expose(t, r)
	for _, l := range []string{`h_bucket{le="1"} 1`, `h_bucket{le="+Inf"} 1`, "h_sum 0.5", "h_count 1"} {
		if !strings.Contains(out, l+"\n") {
			t.Errorf("missing %q in:\n%s", l, out)
		}
	}
}

func TestHistogramBoundaryExact(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2}, nil)
	h.Observe(1) // le="1" is inclusive
	h.Observe(2)
	out := expose(t, r)
	if !strings.Contains(out, `h_bucket{le="1"} 1`+"\n") || !strings.Contains(out, `h_bucket{le="2"} 2`+"\n") {
		t.Errorf("boundary buckets:\n%s", out)
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("c_total", "", nil)
	mustPanic("duplicate", func() { r.Counter("c_total", "", nil) })
	mustPanic("type conflict", func() { r.Gauge("c_total", "", nil) })
	mustPanic("bad metric name", func() { r.Counter("1bad", "", nil) })
	mustPanic("bad label name", func() { r.Counter("ok_total", "", Labels{"1bad": "v"}) })
	mustPanic("negative counter add", func() { r.Counter("n_total", "", nil).Add(-1) })
	mustPanic("bad buckets", func() { r.Histogram("h", "", []float64{2, 1}, nil) })
	// Same name with different labels is one family, not a duplicate.
	r.Counter("c_total", "", Labels{"x": "1"})
}

func TestBucketHelpers(t *testing.T) {
	if got := LinearBuckets(0, 0.25, 4); got[3] != 0.75 {
		t.Errorf("linear %v", got)
	}
	if got := ExponentialBuckets(1, 10, 3); got[2] != 100 {
		t.Errorf("exponential %v", got)
	}
	if n := len(DefBuckets()); n != 11 {
		t.Errorf("def buckets %d", n)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", nil).Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "c_total 1\n") {
		t.Errorf("body:\n%s", rec.Body)
	}
}

// TestConcurrentObservation exercises the lock-free hot paths under the
// race detector (the Makefile verify path runs this package with -race).
func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", nil)
	g := r.Gauge("g", "", nil)
	h := r.Histogram("h", "", []float64{1, 2, 4}, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i % 5))
			}
		}(w)
	}
	// Render concurrently with observation.
	done := make(chan struct{})
	go func() {
		defer close(done)
		var b strings.Builder
		for i := 0; i < 50; i++ {
			b.Reset()
			r.WriteProm(&b)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 16000 {
		t.Errorf("counter %v after concurrent increments", c.Value())
	}
	if h.Count() != 16000 {
		t.Errorf("histogram count %d", h.Count())
	}
}

// TestConcurrentRegistration races series creation (what ProcSampler and
// build_info do at runtime) against renders and observations: registering
// while /metrics is being scraped must be safe and lose no series.
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				g := r.Gauge(fmt.Sprintf("g_%d_%d", w, i), "", nil)
				g.Set(float64(i))
				r.Counter(fmt.Sprintf("c_%d_total", w), "", Labels{"i": fmt.Sprint(i)}).Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var b strings.Builder
		for i := 0; i < 50; i++ {
			b.Reset()
			r.WriteProm(&b)
		}
	}()
	wg.Wait()
	<-done
	var b strings.Builder
	r.WriteProm(&b)
	out := b.String()
	for w := 0; w < 8; w++ {
		if !strings.Contains(out, fmt.Sprintf("g_%d_99 99\n", w)) {
			t.Errorf("worker %d's last gauge missing from render", w)
		}
	}
}
