package obs

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
	"time"
)

// TraceRing is the binary flight recorder: a preallocated byte arena of
// fixed-capacity record slots holding spans, explain records, proc samples
// and the explain meta header in a canonical little-endian layout (the
// .ftrace format below). Where SpanTracer/ExplainRecorder pay json.Marshal
// per record, the ring encodes into its arena with zero steady-state
// allocations under one short mutex hold — cheap enough to leave on for
// every production decision.
//
// The ring is the in-memory truth; two cold paths read it out. SetSink
// streams every subsequent record into CRC-checked segments of a .ftrace
// file, and Snapshot copies the live ring into a self-contained .ftrace
// byte image (the /v1/trace/snapshot payload). Either output converts to
// the exact JSONL of the legacy sinks via internal/explain.
//
// # .ftrace layout
//
// All integers little-endian; floats are IEEE-754 bits via math.Float64bits.
//
//	file   := magic(8) version(u32) segment*
//	segment := length(u32) crc32c(u32) payload(length bytes)
//	payload := record*
//	record := kind(u8) length(u32) body(length bytes)
//
// The segment CRC is CRC-32C (Castagnoli) over the payload, the same
// polynomial as internal/ckpt. Records never straddle segment boundaries.
// Unknown record kinds are skipped by length on decode (forward
// compatibility); a version bump signals an incompatible body layout.
//
// A nil *TraceRing is valid and records nothing; every method is nil-safe.
type TraceRing struct {
	mu       sync.Mutex
	arena    []byte // slots * slotSize bytes
	lens     []int  // framed bytes used per slot (0 = empty)
	slotSize int
	start    int // oldest slot
	n        int // slots in use
	total    uint64
	dropped  uint64
	oversize uint64

	metaNames  []string
	metaMode   string
	metaMaxRej int
	headerOut  bool

	sink    io.Writer
	sinkErr error
	seg     []byte // pending segment: 8-byte header space + framed records

	occupancy *Gauge
	evicted   *Counter
	oversizeC *Counter
	sinkErrs  *Counter
	flushHist *Histogram
}

// .ftrace container constants.
const (
	// FTraceVersion is the current container version, bumped on any
	// incompatible change to record body layouts.
	FTraceVersion = 1

	ftraceMagicLen  = 8
	ftraceHeaderLen = ftraceMagicLen + 4 // magic + version
	ftraceSegHdrLen = 8                  // u32 length + u32 crc32c
	ftraceRecHdrLen = 5                  // u8 kind + u32 length

	// MaxFTraceSegment caps a declared segment length on decode, so a
	// corrupt length field cannot drive an absurd allocation.
	MaxFTraceSegment = 1 << 26
)

// Record kinds of the .ftrace container.
const (
	FTraceKindHeader   = 1 // explain meta header (ExplainHeader)
	FTraceKindSpan     = 2 // completed span (Span)
	FTraceKindDecision = 3 // explain record (ExplainRecord)
	FTraceKindProc     = 4 // runtime sample (ProcStats)
)

// ftraceMagic opens every .ftrace file.
var ftraceMagic = [ftraceMagicLen]byte{'S', 'C', 'H', 'D', 'F', 'T', 'R', 1}

// ftraceCRC is the Castagnoli table, matching internal/ckpt's checksum
// discipline.
var ftraceCRC = crc32.MakeTable(crc32.Castagnoli)

// IsFTrace reports whether data begins with the .ftrace magic. It needs at
// least the first 8 bytes.
func IsFTrace(data []byte) bool {
	return len(data) >= ftraceMagicLen && string(data[:ftraceMagicLen]) == string(ftraceMagic[:])
}

// AppendFTraceFileHeader appends the 12-byte .ftrace file header (magic +
// version) to dst.
func AppendFTraceFileHeader(dst []byte) []byte {
	dst = append(dst, ftraceMagic[:]...)
	return binary.LittleEndian.AppendUint32(dst, FTraceVersion)
}

// ParseFTraceFileHeader validates a .ftrace file header and returns the
// container version.
func ParseFTraceFileHeader(b []byte) (version uint32, err error) {
	if len(b) < ftraceHeaderLen {
		return 0, fmt.Errorf("obs: ftrace header truncated: %d bytes", len(b))
	}
	if !IsFTrace(b) {
		return 0, fmt.Errorf("obs: not an ftrace file (bad magic)")
	}
	v := binary.LittleEndian.Uint32(b[ftraceMagicLen:])
	if v != FTraceVersion {
		return 0, fmt.Errorf("obs: unsupported ftrace version %d (want %d)", v, FTraceVersion)
	}
	return v, nil
}

// FTraceSegmentCRC returns the CRC-32C of a segment payload.
func FTraceSegmentCRC(payload []byte) uint32 {
	return crc32.Checksum(payload, ftraceCRC)
}

// Default ring geometry: 4096 slots of 512 bytes hold every span and the
// overwhelming majority of decision records (a record outgrows a slot only
// past ~45 feature+logit+prob values) in a 2 MiB arena.
const (
	DefaultRingSlots    = 4096
	DefaultRingSlotSize = 512
)

// segFlushBytes is the pending-segment size that triggers a sink flush.
const segFlushBytes = 32 << 10

// NewTraceRing returns a ring of the given geometry; values <= 0 select the
// package defaults. The arena is allocated once, up front.
func NewTraceRing(slots, slotSize int) *TraceRing {
	if slots <= 0 {
		slots = DefaultRingSlots
	}
	if slotSize <= 0 {
		slotSize = DefaultRingSlotSize
	}
	if slotSize < ftraceRecHdrLen+1 {
		slotSize = ftraceRecHdrLen + 1
	}
	return &TraceRing{
		arena:    make([]byte, slots*slotSize),
		lens:     make([]int, slots),
		slotSize: slotSize,
	}
}

// Instrument registers the ring's self-observability metrics on reg:
// occupancy and capacity gauges, eviction / oversize / sink-error counters,
// and the sink flush latency histogram.
func (r *TraceRing) Instrument(reg *Registry) {
	if r == nil || reg == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.occupancy = reg.Gauge("schedinspector_ftrace_ring_records",
		"Records currently held in the binary trace ring.", nil)
	reg.Gauge("schedinspector_ftrace_ring_slots",
		"Record capacity of the binary trace ring.", nil).Set(float64(len(r.lens)))
	r.evicted = reg.Counter("schedinspector_ftrace_ring_evicted_total",
		"Records evicted from the binary trace ring by wraparound.", nil)
	r.oversizeC = reg.Counter("schedinspector_ftrace_oversize_total",
		"Records dropped because they exceed the ring slot size.", nil)
	r.sinkErrs = reg.Counter("schedinspector_ftrace_sink_errors_total",
		"Binary trace sink write errors (the first error sticks and disables the sink).", nil)
	r.flushHist = reg.Histogram("schedinspector_ftrace_flush_seconds",
		"Latency of binary trace segment flushes to the sink.",
		ExponentialBuckets(1e-5, 4, 8), nil)
	r.occupancy.Set(float64(r.n))
}

// reserve claims the next slot for a record of payloadLen body bytes,
// writes the frame header, and returns the full framed slot (encode the
// body into frame[ftraceRecHdrLen:]), or nil when the framed record cannot
// fit a slot (counted as oversize). Caller holds r.mu.
func (r *TraceRing) reserve(kind byte, payloadLen int) []byte {
	framed := ftraceRecHdrLen + payloadLen
	if framed > r.slotSize {
		r.oversize++
		if r.oversizeC != nil {
			r.oversizeC.Inc()
		}
		return nil
	}
	r.total++
	var idx int
	if r.n < len(r.lens) {
		idx = r.start + r.n
		if idx >= len(r.lens) {
			idx -= len(r.lens)
		}
		r.n++
	} else {
		idx = r.start
		r.start++
		if r.start == len(r.lens) {
			r.start = 0
		}
		r.dropped++
		if r.evicted != nil {
			r.evicted.Inc()
		}
	}
	if r.occupancy != nil {
		r.occupancy.Set(float64(r.n))
	}
	r.lens[idx] = framed
	slot := r.arena[idx*r.slotSize : idx*r.slotSize+framed]
	slot[0] = kind
	binary.LittleEndian.PutUint32(slot[1:], uint32(payloadLen))
	return slot
}

// commit streams the just-encoded slot to the pending sink segment.
// Caller holds r.mu; framed is the full frame including header.
func (r *TraceRing) commit(framed []byte) {
	if r.sink == nil || r.sinkErr != nil {
		return
	}
	r.seg = append(r.seg, framed...)
	if len(r.seg)-ftraceSegHdrLen >= segFlushBytes {
		r.flushLocked()
	}
}

// EmitSpan records one completed span. The span's slices are copied into
// the arena immediately; the caller keeps ownership of Attrs. Safe on a nil
// ring.
func (r *TraceRing) EmitSpan(s *Span) {
	if r == nil {
		return
	}
	n := spanBodyLen(s)
	r.mu.Lock()
	if frame := r.reserve(FTraceKindSpan, n); frame != nil {
		putSpanBody(frame[ftraceRecHdrLen:], s)
		r.commit(frame)
	}
	r.mu.Unlock()
}

// EmitDecision records one explain record. Slices are copied into the
// arena immediately — unlike ExplainRecorder.Record, the ring does NOT take
// ownership, so hot paths may pass borrowed scratch slices. Safe on a nil
// ring.
func (r *TraceRing) EmitDecision(rec *ExplainRecord) {
	if r == nil {
		return
	}
	n := decisionBodyLen(rec)
	r.mu.Lock()
	if frame := r.reserve(FTraceKindDecision, n); frame != nil {
		putDecisionBody(frame[ftraceRecHdrLen:], rec)
		r.commit(frame)
	}
	r.mu.Unlock()
}

// EmitProc records one runtime sample. Safe on a nil ring.
func (r *TraceRing) EmitProc(s ProcStats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if frame := r.reserve(FTraceKindProc, procBodyLen); frame != nil {
		putProcBody(frame[ftraceRecHdrLen:], s)
		r.commit(frame)
	}
	r.mu.Unlock()
}

// WallNow returns the wall clock in UnixNano, through the same source the
// span tracer stamps spans with (swappable in tests). Hot paths that emit
// shaped spans sample it at their own cadence.
func WallNow() int64 { return wallNow() }

// SpanShape precompiles the wire image of a fixed-shape span record: a
// constant name, one leading string attribute with a constant key and
// constant-width value, and a run of numeric attributes with constant keys.
// Env's per-decision spans fit this shape; emitting through it costs one
// arena memcpy plus scalar patches instead of a field-by-field encode. The
// template is built by the generic span encoder itself, so a shaped record
// is byte-identical to the equivalent EmitSpan record by construction.
type SpanShape struct {
	frame    []byte // framed record template (kind + length + body)
	wallOff  int    // body offset of WallStart (WallEnd, SimStart, SimEnd follow)
	strOff   int    // body offset of the string attr's value bytes
	strWidth int
	numOffs  []int // body offsets of each numeric attr's value
}

// NewSpanShape compiles the template. Every EmitShapedSpan against it must
// pass a string value of exactly strWidth bytes and len(numKeys) numbers.
func NewSpanShape(name, strKey string, strWidth int, numKeys []string) *SpanShape {
	proto := Span{Name: name, Attrs: make([]Attr, 0, 1+len(numKeys))}
	proto.Attrs = append(proto.Attrs, Attr{Key: strKey, Str: string(make([]byte, strWidth))})
	for _, k := range numKeys {
		proto.Attrs = append(proto.Attrs, Attr{Key: k})
	}
	n := spanBodyLen(&proto)
	frame := make([]byte, ftraceRecHdrLen+n)
	frame[0] = FTraceKindSpan
	binary.LittleEndian.PutUint32(frame[1:], uint32(n))
	putSpanBody(frame[ftraceRecHdrLen:], &proto)

	sh := &SpanShape{
		frame:    frame,
		wallOff:  8 + 8 + strLen(name),
		strWidth: strWidth,
		numOffs:  make([]int, len(numKeys)),
	}
	// An attr encodes key | num | str, in that order. The string attr's
	// value is its Str field (the final element), so the cursor lands
	// directly after the value bytes.
	o := sh.wallOff + 8 + 8 + 8 + 8 + 4 // walls, sim times, attr count
	o += strLen(strKey) + 8             // string attr: key + unused num
	sh.strOff = o + 4                   // skip the value's length prefix
	o = sh.strOff + strWidth
	for i, k := range numKeys {
		o += strLen(k)
		sh.numOffs[i] = o
		o += 8 + 4 // num + empty str
	}
	if o != n {
		panic(fmt.Sprintf("obs: span shape template is %d bytes, cursor ended at %d", n, o))
	}
	return sh
}

// EmitShapedSpan records one span through a precompiled shape: template
// memcpy into the arena, then scalar patches. strVal must be exactly the
// shape's declared width and nums must match its numeric key count — the
// shape is a compiled contract, so a mismatch is a programming error and
// panics. Safe on a nil ring.
func (r *TraceRing) EmitShapedSpan(sh *SpanShape, id, parent SpanID, wallStart, wallEnd int64, simStart, simEnd float64, strVal string, nums []float64) {
	if r == nil {
		return
	}
	if len(strVal) != sh.strWidth || len(nums) != len(sh.numOffs) {
		panic("obs: EmitShapedSpan arguments do not match the compiled shape")
	}
	r.mu.Lock()
	if frame := r.reserve(FTraceKindSpan, len(sh.frame)-ftraceRecHdrLen); frame != nil {
		copy(frame, sh.frame)
		b := frame[ftraceRecHdrLen:]
		putU64At(b, 0, uint64(id))
		putU64At(b, 8, uint64(parent))
		o := putI64At(b, sh.wallOff, wallStart)
		o = putI64At(b, o, wallEnd)
		o = putF64At(b, o, simStart)
		putF64At(b, o, simEnd)
		copy(b[sh.strOff:sh.strOff+sh.strWidth], strVal)
		for i, off := range sh.numOffs {
			putF64At(b, off, nums[i])
		}
		r.commit(frame)
	}
	r.mu.Unlock()
}

// SetMeta declares the feature names, feature-mode name and rejection cap
// of subsequent decision records, mirroring ExplainRecorder.SetMeta: the
// first call after construction (or after SetSink) emits one header record,
// and a later call that actually changes the meta (a feature-mode-changing
// model reload) emits a fresh header record into the ring and sink stream,
// so every decision record decodes against the most recent preceding
// header. Calls restating the current meta only update the stored copy.
func (r *TraceRing) SetMeta(names []string, mode string, maxRejections int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if metaChanged(r.metaNames, r.metaMode, r.metaMaxRej, names, mode, maxRejections) {
		r.headerOut = false
	}
	r.metaNames = names
	r.metaMode = mode
	r.metaMaxRej = maxRejections
	r.emitHeaderLocked()
	r.mu.Unlock()
}

// FeatureNames returns the feature labels last declared with SetMeta.
func (r *TraceRing) FeatureNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metaNames
}

// emitHeaderLocked emits the meta header record once per sink generation,
// as soon as meta is present. Caller holds r.mu.
func (r *TraceRing) emitHeaderLocked() {
	if r.headerOut || r.metaNames == nil {
		return
	}
	h := ExplainHeader{Mode: r.metaMode, Features: r.metaNames, MaxRejections: r.metaMaxRej}
	if frame := r.reserve(FTraceKindHeader, headerBodyLen(&h)); frame != nil {
		putHeaderBody(frame[ftraceRecHdrLen:], &h)
		r.commit(frame)
		r.headerOut = true
	}
}

// SetSink streams every subsequent record to w in .ftrace segments. The
// file header is written immediately, followed by a fresh meta header
// record when SetMeta has been called. The first write error sticks (see
// SinkErr), bumps the sink-error counter, and disables the sink; records
// keep landing in the ring regardless.
func (r *TraceRing) SetSink(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = w
	r.sinkErr = nil
	if r.seg == nil {
		r.seg = make([]byte, ftraceSegHdrLen, ftraceSegHdrLen+segFlushBytes+r.slotSize)
	} else {
		r.seg = r.seg[:ftraceSegHdrLen]
	}
	if _, err := w.Write(AppendFTraceFileHeader(nil)); err != nil {
		r.failSinkLocked(err)
		r.mu.Unlock()
		return
	}
	// A new sink starts a new record stream: re-emit the meta header so the
	// file is self-describing even when meta predates the sink.
	r.headerOut = false
	r.emitHeaderLocked()
	r.mu.Unlock()
}

// failSinkLocked records the first sink error. Caller holds r.mu.
func (r *TraceRing) failSinkLocked(err error) {
	if r.sinkErr == nil {
		r.sinkErr = err
		if r.sinkErrs != nil {
			r.sinkErrs.Inc()
		}
	}
	r.sink = nil
}

// flushLocked writes the pending segment (if any) as one length+CRC framed
// write. Caller holds r.mu.
func (r *TraceRing) flushLocked() {
	if r.sink == nil || r.sinkErr != nil || len(r.seg) <= ftraceSegHdrLen {
		return
	}
	payload := r.seg[ftraceSegHdrLen:]
	binary.LittleEndian.PutUint32(r.seg[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(r.seg[4:], FTraceSegmentCRC(payload))
	start := time.Now()
	_, err := r.sink.Write(r.seg)
	if r.flushHist != nil {
		r.flushHist.Observe(time.Since(start).Seconds())
	}
	r.seg = r.seg[:ftraceSegHdrLen]
	if err != nil {
		r.failSinkLocked(err)
	}
}

// Flush writes any buffered segment to the sink and returns the sticky sink
// error, if any. Call it before closing the sink file.
func (r *TraceRing) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
	return r.sinkErr
}

// Snapshot returns the live ring as a self-contained .ftrace image — file
// header plus one CRC-framed segment holding every buffered record, oldest
// first. It allocates; it is the cold read-out path behind
// /v1/trace/snapshot, not part of the record hot path.
func (r *TraceRing) Snapshot() []byte {
	if r == nil {
		return AppendFTraceFileHeader(nil)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	size := 0
	for i := 0; i < r.n; i++ {
		idx := r.start + i
		if idx >= len(r.lens) {
			idx -= len(r.lens)
		}
		size += r.lens[idx]
	}
	out := make([]byte, 0, ftraceHeaderLen+ftraceSegHdrLen+size)
	out = AppendFTraceFileHeader(out)
	if r.n == 0 {
		return out
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(size))
	out = append(out, 0, 0, 0, 0) // CRC placeholder
	payloadStart := len(out)
	for i := 0; i < r.n; i++ {
		idx := r.start + i
		if idx >= len(r.lens) {
			idx -= len(r.lens)
		}
		out = append(out, r.arena[idx*r.slotSize:idx*r.slotSize+r.lens[idx]]...)
	}
	binary.LittleEndian.PutUint32(out[payloadStart-4:], FTraceSegmentCRC(out[payloadStart:]))
	return out
}

// Len returns how many records the ring currently holds.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Cap returns the ring's record capacity (slot count).
func (r *TraceRing) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.lens)
}

// Total returns how many records were emitted over the ring's lifetime,
// including evicted ones (oversize rejects are not counted).
func (r *TraceRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many records wraparound evicted.
func (r *TraceRing) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Oversized returns how many records were rejected for exceeding the slot
// size.
func (r *TraceRing) Oversized() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.oversize
}

// SinkErr returns the first binary sink write error, if any.
func (r *TraceRing) SinkErr() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinkErr
}

// --- binary record bodies -------------------------------------------------
//
// Encoding primitives. Integers widen to int64/uint64 little-endian; floats
// are Float64bits; strings and slices carry a u32 length/count prefix;
// bools are one byte. Encoders write into a pre-sized buffer via an offset
// cursor; the matching decoders live in ftrace_decode.go and must mirror
// field order exactly.

func putU32At(b []byte, o int, v uint32) int {
	binary.LittleEndian.PutUint32(b[o:], v)
	return o + 4
}

func putU64At(b []byte, o int, v uint64) int {
	binary.LittleEndian.PutUint64(b[o:], v)
	return o + 8
}

func putI64At(b []byte, o int, v int64) int {
	return putU64At(b, o, uint64(v))
}

func putF64At(b []byte, o int, v float64) int {
	return putU64At(b, o, math.Float64bits(v))
}

func putStrAt(b []byte, o int, s string) int {
	o = putU32At(b, o, uint32(len(s)))
	copy(b[o:], s)
	return o + len(s)
}

func putBoolAt(b []byte, o int, v bool) int {
	if v {
		b[o] = 1
	} else {
		b[o] = 0
	}
	return o + 1
}

func putF64sAt(b []byte, o int, vs []float64) int {
	o = putU32At(b, o, uint32(len(vs)))
	for _, v := range vs {
		o = putF64At(b, o, v)
	}
	return o
}

func strLen(s string) int { return 4 + len(s) }

func f64sLen(vs []float64) int { return 4 + 8*len(vs) }

// Span body: id u64 | parent u64 | name str | wall0 i64 | wall1 i64 |
// t0 f64 | t1 f64 | nattrs u32 | attrs{key str | num f64 | str str}.
func spanBodyLen(s *Span) int {
	n := 8 + 8 + strLen(s.Name) + 8 + 8 + 8 + 8 + 4
	for i := range s.Attrs {
		n += strLen(s.Attrs[i].Key) + 8 + strLen(s.Attrs[i].Str)
	}
	return n
}

func putSpanBody(b []byte, s *Span) {
	o := putU64At(b, 0, uint64(s.ID))
	o = putU64At(b, o, uint64(s.Parent))
	o = putStrAt(b, o, s.Name)
	o = putI64At(b, o, s.WallStart)
	o = putI64At(b, o, s.WallEnd)
	o = putF64At(b, o, s.SimStart)
	o = putF64At(b, o, s.SimEnd)
	o = putU32At(b, o, uint32(len(s.Attrs)))
	for i := range s.Attrs {
		a := &s.Attrs[i]
		o = putStrAt(b, o, a.Key)
		o = putF64At(b, o, a.Num)
		o = putStrAt(b, o, a.Str)
	}
}

// Decision body: epoch traj seq i64 | t f64 | job i64 | wait f64 |
// procs i64 | est f64 | rejections max_rejections queue free total i64 |
// util f64 | action i64 | sampled u8 | rejected u8 | features logits probs
// (u32 count + f64 each).
func decisionBodyLen(r *ExplainRecord) int {
	return 15*8 + 2 + f64sLen(r.Features) + f64sLen(r.Logits) + f64sLen(r.Probs)
}

func putDecisionBody(b []byte, r *ExplainRecord) {
	o := putI64At(b, 0, int64(r.Epoch))
	o = putI64At(b, o, int64(r.Traj))
	o = putI64At(b, o, int64(r.Seq))
	o = putF64At(b, o, r.Time)
	o = putI64At(b, o, int64(r.JobID))
	o = putF64At(b, o, r.Wait)
	o = putI64At(b, o, int64(r.Procs))
	o = putF64At(b, o, r.Est)
	o = putI64At(b, o, int64(r.Rejections))
	o = putI64At(b, o, int64(r.MaxRejections))
	o = putI64At(b, o, int64(r.QueueLen))
	o = putI64At(b, o, int64(r.FreeProcs))
	o = putI64At(b, o, int64(r.TotalProcs))
	o = putF64At(b, o, r.Utilization)
	o = putI64At(b, o, int64(r.Action))
	o = putBoolAt(b, o, r.Sampled)
	o = putBoolAt(b, o, r.Rejected)
	o = putF64sAt(b, o, r.Features)
	o = putF64sAt(b, o, r.Logits)
	putF64sAt(b, o, r.Probs)
}

// Header body: mode str | u32 count | feature names | max_rejections i64.
func headerBodyLen(h *ExplainHeader) int {
	n := strLen(h.Mode) + 4 + 8
	for _, f := range h.Features {
		n += strLen(f)
	}
	return n
}

func putHeaderBody(b []byte, h *ExplainHeader) {
	o := putStrAt(b, 0, h.Mode)
	o = putU32At(b, o, uint32(len(h.Features)))
	for _, f := range h.Features {
		o = putStrAt(b, o, f)
	}
	putI64At(b, o, int64(h.MaxRejections))
}

// Proc body: wall i64 | goroutines i64 | heap_alloc u64 | heap_sys u64 |
// num_gc u32 | gc_pause_total_ns u64.
const procBodyLen = 8 + 8 + 8 + 8 + 4 + 8

func putProcBody(b []byte, s ProcStats) {
	o := putI64At(b, 0, s.Wall)
	o = putI64At(b, o, int64(s.Goroutines))
	o = putU64At(b, o, s.HeapAlloc)
	o = putU64At(b, o, s.HeapSys)
	o = putU32At(b, o, s.NumGC)
	putU64At(b, o, s.PauseTotal)
}
