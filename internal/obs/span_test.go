package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDeriveSpanIDDeterministic(t *testing.T) {
	a := DeriveSpanID(7, 3, 1)
	b := DeriveSpanID(7, 3, 1)
	if a != b {
		t.Fatalf("same tags, different IDs: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatalf("derived ID is the reserved zero")
	}
	if DeriveSpanID(7, 3, 2) == a || DeriveSpanID(3, 7, 1) == a {
		t.Fatalf("distinct tag chains collided with %d", a)
	}
	if DeriveSpanID() == 0 {
		t.Fatalf("empty chain yielded zero")
	}
}

func TestSpanTracerRing(t *testing.T) {
	tr := NewSpanTracer(3)
	for i := 1; i <= 5; i++ {
		tr.Emit(Span{ID: SpanID(i), Name: "s"})
	}
	got := tr.Spans()
	if len(got) != 3 {
		t.Fatalf("ring held %d spans, want 3", len(got))
	}
	for i, want := range []SpanID{3, 4, 5} {
		if got[i].ID != want {
			t.Fatalf("span[%d].ID = %d, want %d (oldest-first after wraparound)", i, got[i].ID, want)
		}
	}
	if tr.Total() != 5 {
		t.Fatalf("Total = %d, want 5", tr.Total())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
}

func TestNilSpanTracerSafe(t *testing.T) {
	var tr *SpanTracer
	tr.Emit(Span{ID: 1})
	tr.SetSink(&bytes.Buffer{})
	if tr.Spans() != nil || tr.Total() != 0 || tr.Dropped() != 0 || tr.SinkErr() != nil {
		t.Fatalf("nil tracer leaked state")
	}
}

func TestSpanStartEnd(t *testing.T) {
	orig := wallNow
	now := int64(1000)
	wallNow = func() int64 { now += 5; return now }
	defer func() { wallNow = orig }()

	s := StartSpan("decision", 42, 7, 12.5)
	s.Attrs = append(s.Attrs, Attr{Key: "job", Num: 3})
	s.End(13.0)
	if s.ID != 42 || s.Parent != 7 || s.Name != "decision" {
		t.Fatalf("span identity mangled: %+v", s)
	}
	if s.WallEnd <= s.WallStart {
		t.Fatalf("wall clock did not advance: %d..%d", s.WallStart, s.WallEnd)
	}
	if s.SimStart != 12.5 || s.SimEnd != 13.0 {
		t.Fatalf("sim times wrong: %v..%v", s.SimStart, s.SimEnd)
	}
}

func TestSpanJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	tr := NewSpanTracer(8)
	tr.SetSink(&buf)
	s := StartSpan("episode", 9, 2, 0)
	s.Attrs = []Attr{{Key: "slot", Num: 4}, {Key: "mode", Str: "wave"}}
	s.End(99)
	tr.Emit(s)

	var line struct {
		Kind string `json:"kind"`
		Span
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("sink line not JSON: %v\n%s", err, buf.String())
	}
	if line.Kind != "span" || line.ID != 9 || line.Parent != 2 || line.SimEnd != 99 {
		t.Fatalf("round-trip mismatch: %+v", line)
	}
	if len(line.Attrs) != 2 || line.Attrs[0].Key != "slot" || line.Attrs[1].Str != "wave" {
		t.Fatalf("attrs mangled: %+v", line.Attrs)
	}
	if tr.SinkErr() != nil {
		t.Fatalf("unexpected sink error: %v", tr.SinkErr())
	}
}

func TestSpanSinkErrorSticks(t *testing.T) {
	tr := NewSpanTracer(4)
	tr.SetSink(&failWriter{})
	tr.Emit(Span{ID: 1})
	if tr.SinkErr() == nil {
		t.Fatalf("write error not recorded")
	}
	tr.Emit(Span{ID: 2}) // must not panic; ring keeps working
	if len(tr.Spans()) != 2 {
		t.Fatalf("ring stopped after sink error")
	}
}

// TestSpanTracerConcurrent hammers Emit and Spans from many goroutines; run
// under -race this pins that ring wraparound and reads during writes are
// safe.
func TestSpanTracerConcurrent(t *testing.T) {
	tr := NewSpanTracer(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Emit(Span{ID: DeriveSpanID(uint64(g), uint64(i)), Name: "x"})
				if i%17 == 0 {
					_ = tr.Spans()
					_ = tr.Dropped()
				}
			}
		}(g)
	}
	wg.Wait()
	if tr.Total() != 1600 {
		t.Fatalf("Total = %d, want 1600", tr.Total())
	}
	if got := len(tr.Spans()); got != 16 {
		t.Fatalf("ring holds %d, want 16", got)
	}
}

func TestExplainRecorderRingAndLast(t *testing.T) {
	r := NewExplainRecorder(3)
	for i := 1; i <= 5; i++ {
		r.Record(ExplainRecord{Seq: i})
	}
	recs := r.Records()
	if len(recs) != 3 || recs[0].Seq != 3 || recs[2].Seq != 5 {
		t.Fatalf("ring contents wrong: %+v", recs)
	}
	last := r.Last(2)
	if len(last) != 2 || last[0].Seq != 4 || last[1].Seq != 5 {
		t.Fatalf("Last(2) wrong: %+v", last)
	}
	if got := r.Last(10); len(got) != 3 {
		t.Fatalf("Last(10) returned %d records, want all 3", len(got))
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
}

func TestNilExplainRecorderSafe(t *testing.T) {
	var r *ExplainRecorder
	r.Record(ExplainRecord{})
	r.SetSink(&bytes.Buffer{})
	r.SetMeta([]string{"a"}, "manual", 72)
	if r.Records() != nil || r.Last(1) != nil || r.Total() != 0 || r.SinkErr() != nil || r.FeatureNames() != nil {
		t.Fatalf("nil recorder leaked state")
	}
}

func TestExplainHeaderAndDecisionLines(t *testing.T) {
	var buf bytes.Buffer
	r := NewExplainRecorder(8)
	// Meta before sink: header must still come out once the sink lands.
	r.SetMeta([]string{"wait", "procs"}, "manual", 72)
	r.SetSink(&buf)
	r.SetMeta([]string{"wait", "procs"}, "manual", 72) // idempotent: no second header
	r.Record(ExplainRecord{Traj: 1, Seq: 0, JobID: 42, Rejected: true,
		Features: []float64{0.5, 0.25}, Logits: []float64{0.1, -0.1}, Probs: []float64{0.55, 0.45}})

	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatalf("no header line")
	}
	var hdr ExplainHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("header not JSON: %v", err)
	}
	if hdr.Kind != "explain_header" || hdr.Mode != "manual" || hdr.MaxRejections != 72 || len(hdr.Features) != 2 {
		t.Fatalf("header mangled: %+v", hdr)
	}
	if !sc.Scan() {
		t.Fatalf("no decision line")
	}
	var dec struct {
		Kind string `json:"kind"`
		ExplainRecord
	}
	if err := json.Unmarshal(sc.Bytes(), &dec); err != nil {
		t.Fatalf("decision not JSON: %v", err)
	}
	if dec.Kind != "decision" || dec.JobID != 42 || !dec.Rejected || len(dec.Probs) != 2 {
		t.Fatalf("decision mangled: %+v", dec)
	}
	if sc.Scan() {
		t.Fatalf("unexpected extra line (duplicate header?): %s", sc.Text())
	}
}

func TestExplainRecorderConcurrent(t *testing.T) {
	r := NewExplainRecorder(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(ExplainRecord{Traj: g, Seq: i})
				if i%13 == 0 {
					_ = r.Records()
					_ = r.Last(4)
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("Total = %d, want 800", r.Total())
	}
}

func TestFlightRecorderSharedSink(t *testing.T) {
	var buf bytes.Buffer
	f := NewFlightRecorder(8, 8)
	f.Decisions.SetMeta([]string{"wait"}, "manual", 72)
	f.SetSink(&buf)
	f.Spans.Emit(Span{ID: 1, Name: "episode"})
	f.Decisions.Record(ExplainRecord{Seq: 7})

	kinds := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var k struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &k); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		kinds[k.Kind]++
	}
	if kinds["explain_header"] != 1 || kinds["span"] != 1 || kinds["decision"] != 1 {
		t.Fatalf("line kinds wrong: %v", kinds)
	}
	if f.SinkErr() != nil {
		t.Fatalf("unexpected sink error: %v", f.SinkErr())
	}
}

func TestNilFlightRecorderSafe(t *testing.T) {
	var f *FlightRecorder
	f.SetSink(&bytes.Buffer{})
	if f.SpanTracer() != nil || f.Explains() != nil || f.SinkErr() != nil {
		t.Fatalf("nil flight recorder leaked state")
	}
	// The nil-safe accessors must chain into nil-safe halves.
	f.SpanTracer().Emit(Span{})
	f.Explains().Record(ExplainRecord{})
}

func TestProcSampler(t *testing.T) {
	reg := NewRegistry()
	p := NewProcSampler(4, reg)
	s := p.Sample()
	if s.Goroutines <= 0 || s.HeapAlloc == 0 {
		t.Fatalf("implausible snapshot: %+v", s)
	}
	for i := 0; i < 6; i++ {
		p.Sample()
	}
	if got := len(p.Snapshots()); got != 4 {
		t.Fatalf("ring holds %d, want 4", got)
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := buf.String()
	for _, name := range []string{"schedinspector_goroutines", "schedinspector_heap_alloc_bytes", "schedinspector_heap_sys_bytes", "schedinspector_gc_cycles_total"} {
		if !strings.Contains(out, name) {
			t.Fatalf("gauge %s missing from exposition:\n%s", name, out)
		}
	}
}

func TestProcSamplerStartStop(t *testing.T) {
	p := NewProcSampler(8, nil)
	stop := p.Start(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for len(p.Snapshots()) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	if len(p.Snapshots()) < 2 {
		t.Fatalf("ticker never sampled")
	}
	// Restart after stop must be allowed.
	stop2 := p.Start(time.Hour)
	stop2()
}
