// Package obs is the observability substrate of the repository: a
// dependency-free metrics registry that renders the Prometheus text
// exposition format (counters, gauges, histograms with lock-free hot
// paths), and a structured event tracer for the cluster simulator with a
// bounded ring buffer and an optional JSONL sink.
//
// Everything here is standard library only, mirroring the rest of the
// module. The registry backs the /metrics endpoint of cmd/inspectord; the
// tracer plugs into sim.Config and costs a single nil check per event site
// when disabled.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Labels is a set of constant label pairs attached to a metric at
// registration time. Label values may contain any UTF-8; they are escaped
// at exposition time.
type Labels map[string]string

// renderLabels pre-renders a deterministic `{k="v",...}` suffix (empty
// string for no labels). Label names are validated; values escaped.
func renderLabels(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		if !validName(k) {
			panic(fmt.Sprintf("obs: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(ls[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text format:
// backslash, double quote and line feed.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and line feed only.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// validName reports whether s is a legal metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]* (colons are reserved for recording rules but
// legal in the grammar; we accept them).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest round-trip decimal, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}
