package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	accepts := reg.Counter("t_accepts_total", "", nil)
	rejects := reg.Counter("t_rejects_total", "", nil)
	reg.GaugeFunc("t_reject_ratio", "Computed at scrape time.", nil, func() float64 {
		total := accepts.Value() + rejects.Value()
		if total == 0 {
			return 0
		}
		return rejects.Value() / total
	})

	render := func() string {
		var sb strings.Builder
		if err := reg.WriteProm(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if page := render(); !strings.Contains(page, "t_reject_ratio 0\n") {
		t.Errorf("empty ratio sample missing:\n%s", page)
	}
	accepts.Inc()
	rejects.Inc()
	rejects.Inc()
	rejects.Inc()
	if page := render(); !strings.Contains(page, "t_reject_ratio 0.75\n") {
		t.Errorf("ratio not recomputed at scrape:\n%s", page)
	}
	if page := render(); !strings.Contains(page, "# TYPE t_reject_ratio gauge") {
		t.Errorf("TYPE line missing:\n%s", page)
	}
}

func TestGaugeFuncNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil GaugeFunc did not panic")
		}
	}()
	NewRegistry().GaugeFunc("t_bad", "", nil, nil)
}

// TestTraceRingMetaChangeReemitsHeader pins the sink-stream contract a
// feature-mode-changing model reload depends on: a SetMeta call that
// changes the meta emits a fresh header record, so every decision in the
// stream decodes against the most recent preceding header, while a SetMeta
// restating the current meta emits nothing.
func TestTraceRingMetaChangeReemitsHeader(t *testing.T) {
	r := NewTraceRing(16, 512)
	var sink bytes.Buffer
	r.SetSink(&sink)

	r.SetMeta([]string{"a", "b"}, "modeA", 3)
	rec := testDecision(0)
	rec.Features = []float64{1, 2}
	r.EmitDecision(&rec)

	r.SetMeta([]string{"a", "b"}, "modeA", 3) // restated: no new header
	r.EmitDecision(&rec)

	r.SetMeta([]string{"x", "y", "z"}, "modeB", 5) // changed: fresh header
	rec2 := testDecision(1)
	rec2.Features = []float64{1, 2, 3}
	r.EmitDecision(&rec2)

	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	kinds, bodies := decodeImage(t, sink.Bytes())
	wantKinds := []byte{FTraceKindHeader, FTraceKindDecision, FTraceKindDecision,
		FTraceKindHeader, FTraceKindDecision}
	if len(kinds) != len(wantKinds) {
		t.Fatalf("stream kinds %v, want %v", kinds, wantKinds)
	}
	var curFeatures int
	for i, k := range kinds {
		if k != wantKinds[i] {
			t.Fatalf("stream kinds %v, want %v", kinds, wantKinds)
		}
		switch k {
		case FTraceKindHeader:
			h, err := DecodeFTraceHeader(bodies[i])
			if err != nil {
				t.Fatal(err)
			}
			curFeatures = len(h.Features)
		case FTraceKindDecision:
			d, err := DecodeFTraceDecision(bodies[i])
			if err != nil {
				t.Fatal(err)
			}
			if len(d.Features) != curFeatures {
				t.Errorf("record %d carries %d features under a %d-feature header",
					i, len(d.Features), curFeatures)
			}
		}
	}

	// The live ring holds both headers too, in emission order.
	kinds, _ = decodeImage(t, r.Snapshot())
	headers := 0
	for _, k := range kinds {
		if k == FTraceKindHeader {
			headers++
		}
	}
	if headers != 2 {
		t.Errorf("ring snapshot holds %d headers, want 2", headers)
	}
}

// TestExplainRecorderMetaChangeReemitsHeader is the JSONL twin.
func TestExplainRecorderMetaChangeReemitsHeader(t *testing.T) {
	r := NewExplainRecorder(16)
	var sink strings.Builder
	r.SetSink(&sink)

	r.SetMeta([]string{"a", "b"}, "modeA", 3)
	r.Record(ExplainRecord{Features: []float64{1, 2}})
	r.SetMeta([]string{"a", "b"}, "modeA", 3) // restated
	r.SetMeta([]string{"x", "y", "z"}, "modeB", 5)
	r.Record(ExplainRecord{Features: []float64{1, 2, 3}})

	var kinds []string
	curFeatures := 0
	sc := bufio.NewScanner(strings.NewReader(sink.String()))
	for sc.Scan() {
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, probe.Kind)
		switch probe.Kind {
		case "explain_header":
			var h ExplainHeader
			if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
				t.Fatal(err)
			}
			curFeatures = len(h.Features)
		case "decision":
			var d struct {
				Features []float64 `json:"features"`
			}
			if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
				t.Fatal(err)
			}
			if len(d.Features) != curFeatures {
				t.Errorf("decision carries %d features under a %d-feature header",
					len(d.Features), curFeatures)
			}
		}
	}
	want := []string{"explain_header", "decision", "explain_header", "decision"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Errorf("stream kinds %v, want %v", kinds, want)
	}
}
