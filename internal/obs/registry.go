package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// A Registry holds metric families and renders them in the Prometheus text
// exposition format (version 0.0.4). Registration is expected at setup
// time and panics on misuse (invalid names, type conflicts, duplicate
// name+labels); observation methods on the returned metrics are lock-free
// and safe for concurrent use.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	series  []series
	byLabel map[string]int // rendered label string -> series index
}

// series is one labeled member of a family.
type series struct {
	labels string // pre-rendered {k="v"} suffix, "" if unlabeled
	metric renderer
}

// renderer writes the exposition lines of one series.
type renderer interface {
	render(w io.Writer, name, labels string)
}

// register adds (or fetches the family of) a metric and panics on misuse.
func (r *Registry) register(name, help, typ string, labels Labels, m renderer) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byLabel: make(map[string]int)}
		r.fams[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	if _, dup := f.byLabel[ls]; dup {
		panic(fmt.Sprintf("obs: duplicate registration of %s%s", name, ls))
	}
	f.byLabel[ls] = len(f.series)
	f.series = append(f.series, series{labels: ls, metric: m})
}

// Counter registers a monotonically increasing counter. By convention the
// name should end in _total.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", labels, c)
	return c
}

// Gauge registers a gauge: a value that can go up and down.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", labels, g)
	return g
}

// GaugeFunc registers a gauge whose value fn computes at scrape time — the
// right shape for values derived from other metrics (a ratio of two
// counters, a live queue depth), where per-event read-modify-write updates
// interleave under concurrency and publish torn values. fn must be safe for
// concurrent use and is called once per exposition.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	if fn == nil {
		panic(fmt.Sprintf("obs: nil GaugeFunc for metric %q", name))
	}
	r.register(name, help, "gauge", labels, gaugeFunc(fn))
}

// gaugeFunc renders a computed gauge sample.
type gaugeFunc func() float64

func (g gaugeFunc) render(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(g()))
}

// Histogram registers a histogram with the given upper bucket bounds (the
// +Inf bucket is implicit; bounds must be strictly increasing). A nil
// buckets slice uses DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if buckets == nil {
		buckets = DefBuckets()
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing", name))
		}
	}
	h := &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)),
	}
	r.register(name, help, "histogram", labels, h)
	return h
}

// WriteProm renders every registered family, sorted by name (series in
// registration order), in the Prometheus text exposition format.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			s.metric.render(bw, f.name, s.labels)
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the exposition — mount it at
// /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteProm(w)
	})
}

// atomicFloat is a float64 updated with CAS on its bit pattern — the
// standard lock-free float accumulator.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (a *atomicFloat) store(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) load() float64   { return math.Float64frombits(a.bits.Load()) }

// Counter is a monotonically increasing value. The zero value is ready to
// use but is normally obtained from Registry.Counter.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.add(1) }

// Add adds v, which must not be negative.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter decrease")
	}
	c.v.add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.load() }

func (c *Counter) render(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(c.Value()))
}

// Gauge is a value that can move in both directions.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Add shifts the value by v (negative to subtract).
func (g *Gauge) Add(v float64) { g.v.add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

func (g *Gauge) render(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(g.Value()))
}

// Histogram counts observations into cumulative buckets and tracks their
// sum. Buckets are fixed at registration; Observe is lock-free.
type Histogram struct {
	upper  []float64       // strictly increasing upper bounds, +Inf implicit
	counts []atomic.Uint64 // per-bucket (non-cumulative) counts
	inf    atomic.Uint64   // observations above the last bound
	sum    atomicFloat
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.upper)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.upper[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.upper) {
		h.counts[lo].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	n := h.inf.Load()
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

func (h *Histogram) render(w io.Writer, name, labels string) {
	// _bucket lines carry an extra le label; splice it into the suffix.
	prefix, suffix := "{", "}"
	if labels != "" {
		prefix = labels[:len(labels)-1] + ","
		suffix = "}"
	}
	var cum uint64
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%sle=\"%s\"%s %d\n", name, prefix, formatValue(ub), suffix, cum)
	}
	cum += h.inf.Load()
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"%s %d\n", name, prefix, suffix, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatValue(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, cum)
}

// DefBuckets returns the conventional latency buckets (seconds), matching
// the Prometheus client default.
func DefBuckets() []float64 {
	return []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

// LinearBuckets returns n bounds starting at start, spaced by width.
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// ExponentialBuckets returns n bounds starting at start, each factor times
// the previous. start and factor must make the sequence increasing.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}
