package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Kind: EventJobStart, JobID: i, Time: float64(i)})
	}
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(ev))
	}
	for i, e := range ev {
		if e.JobID != i+2 {
			t.Errorf("event %d: job %d, want %d (oldest-first after wrap)", i, e.JobID, i+2)
		}
	}
	if tr.Total() != 5 || tr.Dropped() != 2 {
		t.Errorf("total %d dropped %d, want 5/2", tr.Total(), tr.Dropped())
	}
}

func TestTracerDefaultCap(t *testing.T) {
	tr := NewTracer(0)
	if cap(tr.ring) != DefaultTraceCap {
		t.Errorf("default cap %d", cap(tr.ring))
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: EventReject})
	tr.SetSink(&strings.Builder{})
	if tr.Events() != nil || tr.Total() != 0 || tr.Dropped() != 0 || tr.SinkErr() != nil {
		t.Error("nil tracer not inert")
	}
}

func TestJSONLSink(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(2) // smaller than the event count: sink still sees all
	tr.SetSink(&buf)
	tr.Emit(Event{Kind: EventSchedPoint, Time: 10, JobID: 7, Procs: 4, Wait: 2.5, FreeProcs: 16, QueueLen: 3})
	tr.Emit(Event{Kind: EventReject, Time: 10, JobID: 7, Procs: 4, FreeProcs: 16, QueueLen: 3, Rejections: 1})
	tr.Emit(Event{Kind: EventJobEnd, Time: 99, JobID: 7})
	if err := tr.SinkErr(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 3 {
		t.Fatalf("%d JSONL lines, want 3", len(lines))
	}
	if lines[0]["kind"] != "sched_point" || lines[0]["t"] != 10.0 || lines[0]["wait"] != 2.5 {
		t.Errorf("first line %v", lines[0])
	}
	if lines[1]["kind"] != "reject" || lines[1]["rejections"] != 1.0 {
		t.Errorf("reject line %v", lines[1])
	}
	if _, has := lines[2]["rejections"]; has {
		t.Errorf("zero rejections not omitted: %v", lines[2])
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errors.New("disk full")
}

func TestSinkErrorSticks(t *testing.T) {
	tr := NewTracer(4)
	fw := &failWriter{}
	tr.SetSink(fw)
	tr.Emit(Event{})
	tr.Emit(Event{})
	if tr.SinkErr() == nil {
		t.Fatal("sink error not recorded")
	}
	if fw.n != 1 {
		t.Errorf("sink written %d times after error, want 1", fw.n)
	}
	if len(tr.Events()) != 2 {
		t.Errorf("ring stopped recording after sink error")
	}
}

func TestEventKindString(t *testing.T) {
	cases := map[EventKind]string{
		EventSchedPoint: "sched_point", EventAccept: "accept", EventReject: "reject",
		EventBackfill: "backfill", EventJobStart: "job_start", EventJobEnd: "job_end",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if s := EventKind(200).String(); !strings.Contains(s, "200") {
		t.Errorf("unknown kind %q", s)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Emit(Event{Kind: EventJobStart, JobID: i})
			}
		}()
	}
	go tr.Events()
	wg.Wait()
	if tr.Total() != 2000 {
		t.Errorf("total %d", tr.Total())
	}
}
