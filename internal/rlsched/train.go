package rlsched

import (
	"fmt"
	"math"
	"math/rand"

	"schedinspector/internal/metrics"
	"schedinspector/internal/nn"
	"schedinspector/internal/rollout"
	"schedinspector/internal/sched"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

// TrainConfig parameterizes RLScheduler training. The reward is the
// percentage improvement of the chosen metric over a reference heuristic
// (SJF by default) on the same job sequence, mirroring how the inspector is
// rewarded and keeping trajectory returns bounded.
type TrainConfig struct {
	Trace     *workload.Trace
	Metric    metrics.Metric
	Reference sched.Policy // baseline policy for the reward; default SJF
	Backfill  bool

	Hidden    []int
	SeqLen    int     // jobs per trajectory (default 128)
	Batch     int     // trajectories per epoch (default 40)
	LR        float64 // Adam learning rate (default 1e-3)
	Seed      int64
	TrainFrac float64 // default 0.2

	ClipRatio   float64 // PPO clip (default 0.2)
	PolicyIters int     // default 10
	ValueIters  int     // default 10
	TargetKL    float64 // default 0.015
	EntropyCoef float64 // default 0.01
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Reference == nil {
		c.Reference = sched.SJF()
	}
	if c.SeqLen == 0 {
		c.SeqLen = 128
	}
	if c.Batch == 0 {
		c.Batch = 40
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.TrainFrac == 0 {
		c.TrainFrac = 0.2
	}
	if c.ClipRatio == 0 {
		c.ClipRatio = 0.2
	}
	if c.PolicyIters == 0 {
		c.PolicyIters = 10
	}
	if c.ValueIters == 0 {
		c.ValueIters = 10
	}
	if c.TargetKL == 0 {
		c.TargetKL = 0.015
	}
	if c.EntropyCoef == 0 {
		c.EntropyCoef = 0.01
	}
	return c
}

// EpochStats reports one training epoch.
type EpochStats struct {
	Epoch              int
	MeanReward         float64 // mean pct improvement over the reference policy
	MeanPctImprovement float64 // alias of MeanReward, for symmetry with core
	ApproxKL           float64
	ValueLoss          float64
}

// Trainer optimizes an RLScheduler policy with PPO.
type Trainer struct {
	cfg    TrainConfig
	pol    *Policy
	kOpt   *nn.Adam
	vOpt   *nn.Adam
	kGrads *nn.Grads
	vGrads *nn.Grads
	rng    *rand.Rand
	epoch  int

	trainHi   int
	baseCache map[int]float64 // reference metric per window start
}

// NewTrainer validates the configuration and builds a trainer.
func NewTrainer(cfg TrainConfig) (*Trainer, error) {
	cfg = cfg.withDefaults()
	if cfg.Trace == nil {
		return nil, fmt.Errorf("rlsched: TrainConfig.Trace is required")
	}
	if err := cfg.Trace.Validate(); err != nil {
		return nil, fmt.Errorf("rlsched: %w", err)
	}
	hi := cfg.Trace.Split(cfg.TrainFrac) - cfg.SeqLen + 1
	if hi < 1 {
		return nil, fmt.Errorf("rlsched: training region too small for SeqLen=%d", cfg.SeqLen)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pol := New(rng, NormForTrace(cfg.Trace), cfg.Hidden)
	return &Trainer{
		cfg:       cfg,
		pol:       pol,
		kOpt:      nn.NewAdam(pol.Kernel, cfg.LR),
		vOpt:      nn.NewAdam(pol.Value, cfg.LR),
		kGrads:    nn.NewGrads(pol.Kernel),
		vGrads:    nn.NewGrads(pol.Value),
		rng:       rng,
		trainHi:   hi,
		baseCache: make(map[int]float64),
	}, nil
}

// Policy returns the policy being trained (live). Callers should put it in
// greedy mode (SetSampling(false, nil)) before evaluation.
func (t *Trainer) Policy() *Policy { return t.pol }

type trajectory struct {
	steps  []Step
	reward float64
}

// simConfig builds the simulator configuration for one episode. Per-job
// validation is skipped: every window comes from the trace, which
// NewTrainer validated once — re-checking each baseline-cache and rollout
// replay was pure overhead.
func (t *Trainer) simConfig(pol sched.Policy) sim.Config {
	return sim.Config{
		MaxProcs:   t.cfg.Trace.MaxProcs,
		Policy:     pol,
		Backfill:   t.cfg.Backfill,
		NoValidate: true,
	}
}

// episode runs one window through the rollout driver. The driver stays in
// its sequential mode (Workers: 1): the policy being trained shares one RNG
// between window draws and action sampling, so episodes must execute one at
// a time in draw order to keep the stream — and with it the trained model —
// bit-identical to a sequential loop.
func (t *Trainer) episode(jobs []workload.Job, pol sched.Policy) (sim.Result, error) {
	results, _, err := rollout.Run(
		[]rollout.Episode{{Jobs: jobs, Cfg: t.simConfig(pol)}},
		rollout.Config{Workers: 1},
	)
	if err != nil {
		return sim.Result{}, err
	}
	return results[0], nil
}

// reference returns the reference policy's metric value for a window.
func (t *Trainer) reference(start int) (float64, error) {
	if v, ok := t.baseCache[start]; ok {
		return v, nil
	}
	jobs := t.cfg.Trace.Window(start, t.cfg.SeqLen)
	res, err := t.episode(jobs, t.cfg.Reference)
	if err != nil {
		return 0, err
	}
	v := res.Summary(t.cfg.Trace.MaxProcs).Of(t.cfg.Metric)
	t.baseCache[start] = v
	return v, nil
}

// RunEpoch samples one batch of trajectories and performs a PPO update.
func (t *Trainer) RunEpoch() (EpochStats, error) {
	t.epoch++
	stats := EpochStats{Epoch: t.epoch}
	var batch []trajectory
	for b := 0; b < t.cfg.Batch; b++ {
		start := t.rng.Intn(t.trainHi)
		ref, err := t.reference(start)
		if err != nil {
			return stats, err
		}
		jobs := t.cfg.Trace.Window(start, t.cfg.SeqLen)
		var steps []Step
		t.pol.SetSampling(true, &steps)
		res, err := t.episode(jobs, t.pol)
		t.pol.SetSampling(false, nil)
		if err != nil {
			return stats, err
		}
		got := res.Summary(t.cfg.Trace.MaxProcs).Of(t.cfg.Metric)
		reward := 0.0
		if ref != 0 {
			reward = (ref - got) / ref
			if !t.cfg.Metric.Minimize() {
				reward = -reward
			}
		}
		reward = math.Max(-5, math.Min(5, reward))
		batch = append(batch, trajectory{steps: steps, reward: reward})
		stats.MeanReward += reward / float64(t.cfg.Batch)
	}
	stats.MeanPctImprovement = stats.MeanReward
	kl, vloss := t.update(batch)
	stats.ApproxKL = kl
	stats.ValueLoss = vloss
	return stats, nil
}

// Train runs epochs and returns the history.
func (t *Trainer) Train(epochs int, cb func(EpochStats)) ([]EpochStats, error) {
	var out []EpochStats
	for i := 0; i < epochs; i++ {
		st, err := t.RunEpoch()
		if err != nil {
			return out, err
		}
		out = append(out, st)
		if cb != nil {
			cb(st)
		}
	}
	return out, nil
}

// flat is one transition with its return and advantage.
type flat struct {
	step *Step
	ret  float64
	adv  float64
}

// update performs the PPO update over variable-size candidate sets. The
// surrogate gradient with respect to candidate i's logit is
// coef*(1[i==chosen] - p_i), which backpropagates through the shared kernel
// once per candidate.
func (t *Trainer) update(batch []trajectory) (kl, vloss float64) {
	var samples []flat
	for bi := range batch {
		for si := range batch[bi].steps {
			samples = append(samples, flat{step: &batch[bi].steps[si], ret: batch[bi].reward})
		}
	}
	if len(samples) == 0 {
		return 0, 0
	}
	var cache nn.Cache
	// advantages with value baseline, normalized
	var mean, m2 float64
	for i := range samples {
		v := t.pol.Value.Forward(samples[i].step.Pooled, &cache)[0]
		samples[i].adv = samples[i].ret - v
		d := samples[i].adv - mean
		mean += d / float64(i+1)
		m2 += d * (samples[i].adv - mean)
	}
	std := math.Sqrt(m2/float64(len(samples))) + 1e-8
	for i := range samples {
		samples[i].adv = (samples[i].adv - mean) / std
	}

	logits := make([]float64, MaxObserve)
	probs := make([]float64, MaxObserve)
	for iter := 0; iter < t.cfg.PolicyIters; iter++ {
		t.kGrads.Zero()
		var klSum float64
		for i := range samples {
			s := samples[i].step
			n := len(s.Cands)
			lg := logits[:n]
			for c := 0; c < n; c++ {
				lg[c] = t.pol.Kernel.Forward(s.Cands[c], &cache)[0]
			}
			pr := nn.Softmax(lg, probs[:n])
			logpNew := math.Log(math.Max(pr[s.Chosen], 1e-12))
			ratio := math.Exp(logpNew - s.LogP)
			klSum += s.LogP - logpNew
			adv := samples[i].adv
			coef := 0.0
			if adv >= 0 && ratio < 1+t.cfg.ClipRatio || adv < 0 && ratio > 1-t.cfg.ClipRatio {
				coef = -ratio * adv
			}
			var h float64
			for _, q := range pr {
				if q > 0 {
					h -= q * math.Log(q)
				}
			}
			for c := 0; c < n; c++ {
				ind := 0.0
				if c == s.Chosen {
					ind = 1
				}
				dLogit := coef * (ind - pr[c])
				if pr[c] > 0 {
					dLogit += t.cfg.EntropyCoef * pr[c] * (math.Log(pr[c]) + h)
				}
				if dLogit == 0 {
					continue
				}
				t.pol.Kernel.Forward(s.Cands[c], &cache) // refresh cache for this candidate
				t.pol.Kernel.Backward(&cache, []float64{dLogit}, t.kGrads)
			}
		}
		kl = klSum / float64(len(samples))
		if kl > 1.5*t.cfg.TargetKL && iter > 0 {
			break
		}
		t.kGrads.Scale(1 / float64(len(samples)))
		t.kGrads.ClipGlobalNorm(1)
		t.kOpt.Step(t.pol.Kernel, t.kGrads)
	}

	for iter := 0; iter < t.cfg.ValueIters; iter++ {
		t.vGrads.Zero()
		vloss = 0
		for i := range samples {
			s := samples[i]
			v := t.pol.Value.Forward(s.step.Pooled, &cache)[0]
			d := v - s.ret
			vloss += 0.5 * d * d
			t.pol.Value.Backward(&cache, []float64{d}, t.vGrads)
		}
		vloss /= float64(len(samples))
		t.vGrads.Scale(1 / float64(len(samples)))
		t.vGrads.ClipGlobalNorm(1)
		t.vOpt.Step(t.pol.Value, t.vGrads)
	}
	return kl, vloss
}
