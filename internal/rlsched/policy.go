// Package rlsched implements an RLScheduler-style learned batch scheduling
// policy (Zhang et al., SC'20) — the "intelligent scheduling policy" the
// SchedInspector paper compares against in related work and names as a
// future-work integration target (§7).
//
// Unlike the heuristics of Table 3, this policy scores every waiting job
// with a shared kernel network and picks among them with a softmax (during
// training) or argmax (at evaluation time). It plugs into the same
// simulator as the heuristics via sched.Policy + sched.Selector, which also
// means a SchedInspector can be trained on top of it unchanged — the
// repository's "inspector over a learned scheduler" extension experiment.
package rlsched

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"

	"schedinspector/internal/nn"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

// MaxObserve caps how many waiting jobs the policy scores per decision
// (RLScheduler observes a fixed window of the queue; excess jobs are
// considered only after the observed ones drain).
const MaxObserve = 64

// kernelFeatures is the per-job input dimensionality of the kernel network:
// waiting time, estimated runtime, requested processors, runnable bit, and
// the cluster's free fraction.
const kernelFeatures = 5

// Norm holds the feature scaling constants (a small subset of the
// inspector's normalizer, kept local to avoid a dependency cycle).
type Norm struct {
	MaxEst   float64
	MeanEst  float64
	MaxProcs int
}

// NormForTrace derives scaling constants from a trace.
func NormForTrace(t *workload.Trace) Norm {
	s := workload.ComputeStats(t)
	n := Norm{MaxEst: s.MaxEst, MeanEst: s.MeanEst, MaxProcs: s.MaxProcs}
	if n.MaxEst <= 0 {
		n.MaxEst = 1
	}
	if n.MeanEst <= 0 {
		n.MeanEst = 1
	}
	if n.MaxProcs <= 0 {
		n.MaxProcs = 1
	}
	return n
}

// features writes the kernel input for job j into dst.
func (n Norm) features(dst []float64, j *workload.Job, now float64, free, total int) {
	wait := now - j.Submit
	dst[0] = wait / (wait + n.MeanEst)
	dst[1] = math.Min(j.Est/n.MaxEst, 1)
	dst[2] = math.Min(float64(j.Procs)/float64(n.MaxProcs), 1)
	if j.Procs <= free {
		dst[3] = 1
	} else {
		dst[3] = 0
	}
	dst[4] = float64(free) / float64(total)
}

// Step is one recorded scheduling decision for PPO: the candidate feature
// matrix, the chosen index, and the behavior log-probability.
type Step struct {
	Cands  [][]float64 // per-candidate kernel inputs
	Pooled []float64   // value-network input
	Chosen int
	LogP   float64
}

// Policy is the learned scheduler. It implements sched.Policy (Score orders
// backfill candidates deterministically) and sched.Selector (Select makes
// the scheduling decision).
type Policy struct {
	Kernel *nn.MLP // kernelFeatures -> 1 logit
	Value  *nn.MLP // kernelFeatures (pooled) -> 1
	Norm   Norm

	rng      *rand.Rand
	sampling bool    // softmax sampling + recording vs argmax
	rec      *[]Step // set during training

	// scratch
	cache  nn.Cache
	feat   []float64
	logits []float64
	probs  []float64

	lastFree, lastTotal int // cluster view from the latest Select, used by Score
}

// New creates an untrained policy with the given hidden sizes (default
// 32/16/8, matching the inspector's scale).
func New(rng *rand.Rand, norm Norm, hidden []int) *Policy {
	if len(hidden) == 0 {
		hidden = []int{32, 16, 8}
	}
	kSizes := append(append([]int{kernelFeatures}, hidden...), 1)
	return &Policy{
		Kernel: nn.New(rng, kSizes, nn.Tanh, nn.Identity),
		Value:  nn.New(rng, kSizes, nn.Tanh, nn.Identity),
		Norm:   norm,
		rng:    rng,
		feat:   make([]float64, kernelFeatures),
	}
}

// Name implements sched.Policy.
func (p *Policy) Name() string { return "RLSched" }

// ClonePolicy implements sched.Cloner for frozen (argmax) use: the copy
// shares the trained networks — read-only in Forward — but owns every
// scratch buffer and the per-run Select state. A policy in sampling or
// recording mode cannot be copied safely (clones would race on the shared
// RNG and step recorder), so ClonePolicy returns nil then and callers fall
// back to sequential simulation.
func (p *Policy) ClonePolicy() sched.Policy {
	if p.sampling || p.rec != nil {
		return nil
	}
	return &Policy{
		Kernel: p.Kernel,
		Value:  p.Value,
		Norm:   p.Norm,
		feat:   make([]float64, kernelFeatures),
	}
}

// SetSampling toggles softmax exploration (training) vs argmax (greedy).
func (p *Policy) SetSampling(on bool, rec *[]Step) {
	p.sampling = on
	p.rec = rec
}

// Score implements sched.Policy for backfill ordering: the negated kernel
// logit, so higher-scoring jobs backfill first. It uses the cluster view of
// the most recent Select call.
func (p *Policy) Score(j *workload.Job, now float64) float64 {
	free, total := p.lastFree, p.lastTotal
	if total == 0 {
		total = p.Norm.MaxProcs
		free = total
	}
	p.Norm.features(p.feat, j, now, free, total)
	return -p.Kernel.Forward(p.feat, &p.cache)[0]
}

// Select implements sched.Selector: score every observed candidate, then
// sample (training) or argmax (evaluation).
func (p *Policy) Select(queue []workload.Job, now float64, free, total int) int {
	p.lastFree, p.lastTotal = free, total
	n := len(queue)
	if n == 0 {
		return -1
	}
	if n > MaxObserve {
		n = MaxObserve
	}
	if cap(p.logits) < n {
		p.logits = make([]float64, n)
		p.probs = make([]float64, n)
	}
	logits := p.logits[:n]

	var cands [][]float64
	if p.sampling && p.rec != nil {
		cands = make([][]float64, n)
	}
	for i := 0; i < n; i++ {
		p.Norm.features(p.feat, &queue[i], now, free, total)
		logits[i] = p.Kernel.Forward(p.feat, &p.cache)[0]
		if cands != nil {
			cands[i] = append([]float64(nil), p.feat...)
		}
	}

	if !p.sampling {
		best := 0
		for i := 1; i < n; i++ {
			if logits[i] > logits[best] {
				best = i
			}
		}
		return best
	}

	probs := nn.Softmax(logits, p.probs[:n])
	u := p.rng.Float64()
	chosen := n - 1
	acc := 0.0
	for i, q := range probs {
		acc += q
		if u <= acc {
			chosen = i
			break
		}
	}
	if p.rec != nil {
		*p.rec = append(*p.rec, Step{
			Cands:  cands,
			Pooled: pool(cands, p.feat),
			Chosen: chosen,
			LogP:   math.Log(math.Max(probs[chosen], 1e-12)),
		})
	}
	return chosen
}

// pool aggregates candidate features into the value-network input: the
// element-wise mean of the candidate matrix (scratch is only used for
// sizing; the result is freshly allocated since it is retained in Steps).
func pool(cands [][]float64, scratch []float64) []float64 {
	out := make([]float64, len(scratch))
	if len(cands) == 0 {
		return out
	}
	for _, c := range cands {
		for k, v := range c {
			out[k] += v
		}
	}
	for k := range out {
		out[k] /= float64(len(cands))
	}
	return out
}

// savedPolicy is the on-disk format.
type savedPolicy struct {
	Kernel *nn.MLP
	Value  *nn.MLP
	Norm   Norm
}

// Save serializes the policy.
func (p *Policy) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(&savedPolicy{p.Kernel, p.Value, p.Norm}); err != nil {
		return fmt.Errorf("rlsched: save: %w", err)
	}
	return nil
}

// Load reads a policy written by Save.
func Load(r io.Reader, rng *rand.Rand) (*Policy, error) {
	var s savedPolicy
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("rlsched: load: %w", err)
	}
	if s.Kernel == nil || s.Value == nil || s.Kernel.InputSize() != kernelFeatures {
		return nil, fmt.Errorf("rlsched: load: malformed policy")
	}
	return &Policy{
		Kernel: s.Kernel, Value: s.Value, Norm: s.Norm,
		rng: rng, feat: make([]float64, kernelFeatures),
	}, nil
}

// SaveFile writes the policy to path.
func (p *Policy) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("rlsched: %w", err)
	}
	defer f.Close()
	if err := p.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a policy from path.
func LoadFile(path string, rng *rand.Rand) (*Policy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("rlsched: %w", err)
	}
	defer f.Close()
	return Load(f, rng)
}
