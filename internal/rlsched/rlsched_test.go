package rlsched

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"schedinspector/internal/metrics"
	"schedinspector/internal/sched"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

func testPolicy(seed int64) *Policy {
	rng := rand.New(rand.NewSource(seed))
	return New(rng, Norm{MaxEst: 36000, MeanEst: 6000, MaxProcs: 128}, nil)
}

func queue3(now float64) []workload.Job {
	return []workload.Job{
		{ID: 1, Submit: now - 100, Est: 600, Run: 300, Procs: 4},
		{ID: 2, Submit: now - 50, Est: 7200, Run: 7000, Procs: 64},
		{ID: 3, Submit: now - 10, Est: 60, Run: 50, Procs: 1},
	}
}

func TestSelectBounds(t *testing.T) {
	p := testPolicy(1)
	if got := p.Select(nil, 0, 10, 10); got != -1 {
		t.Errorf("empty queue select = %d", got)
	}
	q := queue3(1000)
	got := p.Select(q, 1000, 64, 128)
	if got < 0 || got >= len(q) {
		t.Fatalf("select out of range: %d", got)
	}
	// Greedy mode is deterministic.
	for i := 0; i < 5; i++ {
		if p.Select(q, 1000, 64, 128) != got {
			t.Fatal("greedy select not deterministic")
		}
	}
}

func TestSelectSamplingRecords(t *testing.T) {
	p := testPolicy(2)
	var steps []Step
	p.SetSampling(true, &steps)
	q := queue3(1000)
	counts := map[int]int{}
	for i := 0; i < 300; i++ {
		idx := p.Select(q, 1000, 64, 128)
		counts[idx]++
	}
	if len(steps) != 300 {
		t.Fatalf("recorded %d steps", len(steps))
	}
	if len(counts) < 2 {
		t.Error("sampling never explored a second action (possible but wildly unlikely untrained)")
	}
	for _, s := range steps {
		if len(s.Cands) != 3 || len(s.Pooled) != kernelFeatures {
			t.Fatalf("malformed step: %d cands, pooled %d", len(s.Cands), len(s.Pooled))
		}
		if s.Chosen < 0 || s.Chosen >= 3 || s.LogP > 0 {
			t.Fatalf("bad step %+v", s)
		}
	}
}

func TestSelectCapsObservation(t *testing.T) {
	p := testPolicy(3)
	var q []workload.Job
	for i := 0; i < MaxObserve+20; i++ {
		q = append(q, workload.Job{ID: i + 1, Submit: 0, Est: float64(60 + i), Run: 30, Procs: 1})
	}
	var steps []Step
	p.SetSampling(true, &steps)
	idx := p.Select(q, 100, 64, 128)
	if idx >= MaxObserve {
		t.Errorf("selected unobserved job %d", idx)
	}
	if len(steps[0].Cands) != MaxObserve {
		t.Errorf("observed %d candidates, want %d", len(steps[0].Cands), MaxObserve)
	}
}

func TestScoreUsesKernel(t *testing.T) {
	p := testPolicy(4)
	q := queue3(1000)
	// Prime the cluster view.
	p.Select(q, 1000, 64, 128)
	a := p.Score(&q[0], 1000)
	b := p.Score(&q[1], 1000)
	if math.IsNaN(a) || math.IsNaN(b) {
		t.Fatal("NaN scores")
	}
	// Score must be the negated logit of Select's ranking: the greedy-chosen
	// job has the lowest Score among candidates.
	chosen := p.Select(q, 1000, 64, 128)
	best := 0
	bestScore := p.Score(&q[0], 1000)
	for i := 1; i < len(q); i++ {
		if s := p.Score(&q[i], 1000); s < bestScore {
			best, bestScore = i, s
		}
	}
	if best != chosen {
		t.Errorf("Score ranking (%d) disagrees with Select (%d)", best, chosen)
	}
}

func TestPolicyInSimulator(t *testing.T) {
	tr := workload.SDSCSP2Like(2000, 7)
	p := New(rand.New(rand.NewSource(5)), NormForTrace(tr), nil)
	jobs := tr.Window(0, 200)
	res, err := sim.Run(jobs, sim.Config{MaxProcs: tr.MaxProcs, Policy: p, Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 200 {
		t.Fatalf("scheduled %d of 200", len(res.Results))
	}
	for _, r := range res.Results {
		if r.Start < r.Submit {
			t.Fatalf("job %d starts before submit", r.ID)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p := testPolicy(6)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	q := queue3(500)
	if got.Select(q, 500, 64, 128) != p.Select(q, 500, 64, 128) {
		t.Error("loaded policy selects differently")
	}
	if _, err := Load(bytes.NewReader([]byte("junk")), nil); err == nil {
		t.Error("garbage accepted")
	}
	path := t.TempDir() + "/p.gob"
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path, rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path+".x", nil); err == nil {
		t.Error("missing file accepted")
	}
}

func TestNewTrainerValidation(t *testing.T) {
	if _, err := NewTrainer(TrainConfig{}); err == nil {
		t.Error("nil trace accepted")
	}
	small := workload.SDSCSP2Like(200, 1)
	if _, err := NewTrainer(TrainConfig{Trace: small, SeqLen: 128}); err == nil {
		t.Error("too-small trace accepted")
	}
}

func TestTrainerEpoch(t *testing.T) {
	tr := workload.SDSCSP2Like(4000, 8)
	trainer, err := NewTrainer(TrainConfig{
		Trace: tr, Metric: metrics.BSLD, Batch: 4, SeqLen: 64, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := trainer.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 {
		t.Errorf("epoch %d", st.Epoch)
	}
	if math.IsNaN(st.MeanReward) || math.Abs(st.MeanReward) > 5 {
		t.Errorf("reward %v outside clamp", st.MeanReward)
	}
	hist, err := trainer.Train(2, nil)
	if err != nil || len(hist) != 2 {
		t.Fatalf("Train: %v, %d epochs", err, len(hist))
	}
}

// TestRLSchedulerLearns: with a modest budget the learned policy should
// close most of the gap to (or beat) the SJF reference it is rewarded
// against, starting from a random kernel that performs far worse.
func TestRLSchedulerLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short mode")
	}
	tr := workload.SDSCSP2Like(12000, 21)
	trainer, err := NewTrainer(TrainConfig{
		Trace: tr, Metric: metrics.BSLD, Batch: 30, SeqLen: 128, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := trainer.Train(25, nil)
	if err != nil {
		t.Fatal(err)
	}
	early := (hist[0].MeanReward + hist[1].MeanReward + hist[2].MeanReward) / 3
	var late float64
	for _, h := range hist[len(hist)-3:] {
		late += h.MeanReward / 3
	}
	if late <= early {
		t.Errorf("no learning: early %.3f late %.3f", early, late)
	}
	// Greedy evaluation vs SJF on held-out windows: the learned policy
	// should be within 40% of SJF or better (a random policy is many times
	// worse on bsld).
	pol := trainer.Policy()
	pol.SetSampling(false, nil)
	rng := rand.New(rand.NewSource(9))
	lo := tr.Split(0.2)
	var sjfSum, rlSum float64
	const seqs = 15
	for i := 0; i < seqs; i++ {
		jobs := tr.RandomWindow(rng, 256, lo, 0)
		a, err := sim.Run(jobs, sim.Config{MaxProcs: tr.MaxProcs, Policy: sched.SJF()})
		if err != nil {
			t.Fatal(err)
		}
		b, err := sim.Run(jobs, sim.Config{MaxProcs: tr.MaxProcs, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		sjfSum += a.Summary(tr.MaxProcs).AvgBSLD
		rlSum += b.Summary(tr.MaxProcs).AvgBSLD
	}
	if rlSum > sjfSum*1.4 {
		t.Errorf("learned policy bsld %.1f vs SJF %.1f: worse than 1.4x", rlSum/seqs, sjfSum/seqs)
	}
	t.Logf("RLSched bsld %.1f vs SJF %.1f over %d sequences", rlSum/seqs, sjfSum/seqs, seqs)
}

func TestNormForTraceDefaults(t *testing.T) {
	n := NormForTrace(&workload.Trace{MaxProcs: 0})
	if n.MaxEst <= 0 || n.MeanEst <= 0 || n.MaxProcs <= 0 {
		t.Errorf("degenerate norm: %+v", n)
	}
}

func TestScoreWithoutPriorSelect(t *testing.T) {
	// Score must be well-defined before any Select call (backfill ordering
	// can run first): it falls back to an empty-cluster view.
	p := testPolicy(11)
	j := workload.Job{ID: 1, Submit: 0, Est: 100, Run: 50, Procs: 4}
	if s := p.Score(&j, 10); math.IsNaN(s) || math.IsInf(s, 0) {
		t.Errorf("score without select: %v", s)
	}
}

func TestPoolAggregation(t *testing.T) {
	cands := [][]float64{{1, 2, 3, 4, 5}, {3, 4, 5, 6, 7}}
	got := pool(cands, make([]float64, 5))
	want := []float64{2, 3, 4, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pool[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	zero := pool(nil, make([]float64, 5))
	for _, v := range zero {
		if v != 0 {
			t.Fatal("empty pool not zero")
		}
	}
}

func TestPolicyName(t *testing.T) {
	if testPolicy(1).Name() != "RLSched" {
		t.Error("wrong policy name")
	}
}
