package sched

import (
	"math"

	"schedinspector/internal/workload"
)

// Slurm is the multifactor priority policy of §4.5:
//
//	priority = w_age*age_factor + w_fairshare*fairshare_factor +
//	           w_jattr*job_attribute_factor + w_partition*partition_factor
//
// Higher priority runs first (Score negates it to fit the lower-is-first
// convention). Following the paper's setup:
//
//   - age_factor is the job's waiting time normalized by 7 days, capped at 1.
//   - fairshare_factor uses Slurm's "normal" model 2^(-usage/share), where a
//     user's assigned share is their actual CPU usage across the whole trace
//     and usage is the core-seconds the user has consumed so far in the run.
//   - job_attribute_factor is the job's requested execution time (normalized
//     by the largest estimate in the trace; Slurm favors declared small
//     jobs, so shorter requests rank higher).
//   - partition_factor is the job queue's share of total CPU usage across
//     the trace.
//
// All weights default to 1000 as in the paper.
type Slurm struct {
	WeightAge       float64
	WeightFairshare float64
	WeightJobAttr   float64
	WeightPartition float64

	maxEst     float64
	userShare  map[int]float64 // fraction of total core-seconds per user across the trace
	queueShare map[int]float64 // fraction of total core-seconds per queue
	totalWork  float64         // total core-seconds in the trace
	usage      map[int]float64 // core-seconds consumed so far per user (reset per run)
}

const slurmAgeNorm = 7 * 24 * 3600.0 // 7 days

// NewSlurm builds the policy, precomputing user and queue shares from the
// full trace (the paper estimates assigned shares and queue priorities from
// actual usage because archive logs carry no allocation data).
func NewSlurm(t *workload.Trace) *Slurm {
	s := &Slurm{
		WeightAge: 1000, WeightFairshare: 1000, WeightJobAttr: 1000, WeightPartition: 1000,
		userShare:  make(map[int]float64),
		queueShare: make(map[int]float64),
		usage:      make(map[int]float64),
	}
	for _, j := range t.Jobs {
		w := j.Run * float64(j.Procs)
		s.userShare[j.User] += w
		s.queueShare[j.Queue] += w
		s.totalWork += w
		if j.Est > s.maxEst {
			s.maxEst = j.Est
		}
	}
	if s.totalWork > 0 {
		for u := range s.userShare {
			s.userShare[u] /= s.totalWork
		}
		var maxQ float64
		for q := range s.queueShare {
			s.queueShare[q] /= s.totalWork
			if s.queueShare[q] > maxQ {
				maxQ = s.queueShare[q]
			}
		}
		if maxQ > 0 {
			for q := range s.queueShare {
				s.queueShare[q] /= maxQ // normalize top queue to 1
			}
		}
	}
	if s.maxEst <= 0 {
		s.maxEst = 1
	}
	return s
}

// Name implements Policy.
func (s *Slurm) Name() string { return "Slurm" }

// Score implements Policy. Lower is scheduled first, so the multifactor
// priority is negated.
func (s *Slurm) Score(j *workload.Job, now float64) float64 {
	return -s.Priority(j, now)
}

// Priority returns the raw (higher-is-better) multifactor priority.
func (s *Slurm) Priority(j *workload.Job, now float64) float64 {
	age := math.Min(math.Max(now-j.Submit, 0)/slurmAgeNorm, 1)

	share := s.userShare[j.User]
	fair := 0.0
	if share > 0 {
		used := s.usage[j.User] / math.Max(s.totalWork, 1)
		fair = math.Exp2(-used / share)
	}

	// Smaller requested time ⇒ larger attribute factor.
	jattr := 1 - math.Min(j.Est/s.maxEst, 1)

	part := s.queueShare[j.Queue]

	return s.WeightAge*age + s.WeightFairshare*fair + s.WeightJobAttr*jattr + s.WeightPartition*part
}

// ObserveStart implements UsageObserver: bill the user the job's estimated
// area when it starts, moving their fairshare factor down.
func (s *Slurm) ObserveStart(j *workload.Job, _ float64) {
	s.usage[j.User] += j.Est * float64(j.Procs)
}

// Reset implements Resetter: clears accumulated usage between runs.
func (s *Slurm) Reset() {
	for u := range s.usage {
		delete(s.usage, u)
	}
}

// ClonePolicy implements Cloner: the copy shares the precomputed trace
// shares (read-only after NewSlurm) but owns its per-run usage accounting,
// so concurrent simulations never race.
func (s *Slurm) ClonePolicy() Policy {
	c := *s
	c.usage = make(map[int]float64, len(s.usage))
	return &c
}
