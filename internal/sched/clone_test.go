package sched

import (
	"testing"

	"schedinspector/internal/workload"
)

func cloneTestTrace() *workload.Trace {
	return &workload.Trace{
		Name:     "clone-test",
		MaxProcs: 64,
		Jobs: []workload.Job{
			{ID: 1, User: 1, Queue: 0, Submit: 0, Run: 100, Est: 120, Procs: 8},
			{ID: 2, User: 2, Queue: 1, Submit: 10, Run: 200, Est: 240, Procs: 16},
			{ID: 3, User: 1, Queue: 0, Submit: 20, Run: 50, Est: 60, Procs: 4},
		},
	}
}

// TestSlurmClonePolicy checks the property the parallel rollout engine needs
// from a stateful policy: clones share the precomputed trace shares but own
// their per-run usage accounting, so one simulation's fairshare billing
// never leaks into another's priorities.
func TestSlurmClonePolicy(t *testing.T) {
	tr := cloneTestTrace()
	orig := NewSlurm(tr)
	clone, ok := orig.ClonePolicy().(*Slurm)
	if !ok {
		t.Fatal("ClonePolicy did not return a *Slurm")
	}
	if clone == orig {
		t.Fatal("ClonePolicy returned the same instance")
	}

	j := &tr.Jobs[0]
	before := clone.Priority(j, 1000)
	if got := orig.Priority(j, 1000); got != before {
		t.Fatalf("fresh clone disagrees with original: %v vs %v", got, before)
	}

	// Billing usage on the original must not change the clone's priorities,
	// and vice versa.
	orig.ObserveStart(j, 0)
	if got := clone.Priority(j, 1000); got != before {
		t.Errorf("original's usage leaked into clone: %v != %v", got, before)
	}
	if got := orig.Priority(j, 1000); got == before {
		t.Error("usage billing had no effect on the original's fairshare")
	}
	clone.ObserveStart(j, 0)
	clone.ObserveStart(j, 0)
	if got, want := orig.Priority(j, 1000), clone.Priority(j, 1000); got == want {
		t.Error("clone's usage leaked back into the original")
	}

	// Reset restores both to identical fresh-run state.
	orig.Reset()
	clone.Reset()
	if a, b := orig.Priority(j, 1000), clone.Priority(j, 1000); a != b || a != before {
		t.Errorf("after Reset priorities differ: orig %v, clone %v, fresh %v", a, b, before)
	}
}
