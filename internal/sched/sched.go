// Package sched implements the base batch-job scheduling policies of
// Table 3 in the paper — FCFS, LCFS, SJF, SQF, SAF, SRF and the
// machine-learned F1 heuristic of Carastan-Santos & de Camargo — plus the
// Slurm multifactor priority policy used in §4.5. SchedInspector never
// modifies these policies; it only accepts or rejects their decisions.
package sched

import (
	"fmt"
	"math"

	"schedinspector/internal/workload"
)

// Policy assigns a priority score to each waiting job. The job with the
// LOWEST score is scheduled first; the simulator breaks ties by smaller job
// ID, as the paper's motivating example does.
type Policy interface {
	Name() string
	// Score rates job j at the current simulation time. Lower runs first.
	Score(j *workload.Job, now float64) float64
}

// UsageObserver is implemented by stateful policies (Slurm fairshare) that
// must see jobs start to update accounting. The simulator calls ObserveStart
// exactly once per started job.
type UsageObserver interface {
	ObserveStart(j *workload.Job, now float64)
}

// Selector is implemented by policies that pick the next job directly from
// the whole waiting queue instead of through a per-job score — learned
// policies such as the RLScheduler-style kernel network. When a Policy also
// implements Selector, the simulator calls Select for the scheduling
// decision (Score is still used to order backfill candidates). Select
// returns an index into queue; out-of-range values fall back to the
// score-based pick.
type Selector interface {
	Select(queue []workload.Job, now float64, freeProcs, totalProcs int) int
}

// Resetter is implemented by stateful policies whose accounting must be
// cleared between independent simulation runs.
type Resetter interface {
	Reset()
}

// Cloner is implemented by stateful policies that can hand out independent
// copies for concurrent simulation runs: the copy shares read-only data
// (trained weights, precomputed shares) but owns all mutable state.
// ClonePolicy returns nil when the policy is in a mode that cannot be
// copied safely (e.g. recording training samples); callers must then fall
// back to sequential use. Stateless policies need not implement this —
// they are shared as-is.
type Cloner interface {
	ClonePolicy() Policy
}

type simple struct {
	name  string
	score func(j *workload.Job, now float64) float64
}

func (p simple) Name() string                               { return p.name }
func (p simple) Score(j *workload.Job, now float64) float64 { return p.score(j, now) }

// FCFS schedules the job that has waited longest (first come, first served).
func FCFS() Policy {
	return simple{"FCFS", func(j *workload.Job, _ float64) float64 { return j.Submit }}
}

// LCFS schedules the most recently submitted job first.
func LCFS() Policy {
	return simple{"LCFS", func(j *workload.Job, _ float64) float64 { return -j.Submit }}
}

// SJF schedules the job with the smallest estimated runtime first.
func SJF() Policy {
	return simple{"SJF", func(j *workload.Job, _ float64) float64 { return j.Est }}
}

// SQF schedules the job with the smallest resource request first.
func SQF() Policy {
	return simple{"SQF", func(j *workload.Job, _ float64) float64 { return float64(j.Procs) }}
}

// SAF schedules the job with the smallest estimated area (est*procs) first.
func SAF() Policy {
	return simple{"SAF", func(j *workload.Job, _ float64) float64 { return j.Area() }}
}

// SRF schedules the job with the smallest estimated ratio (est/procs) first.
func SRF() Policy {
	return simple{"SRF", func(j *workload.Job, _ float64) float64 { return j.Ratio() }}
}

// F1 is the learned non-linear heuristic of Carastan-Santos & de Camargo
// (SC'17): score = log10(est)*procs + 870*log10(submit). It is the
// state-of-the-art baseline the paper compares against for bsld.
func F1() Policy {
	return simple{"F1", func(j *workload.Job, _ float64) float64 {
		return math.Log10(math.Max(j.Est, 1))*float64(j.Procs) +
			870*math.Log10(math.Max(j.Submit, 1))
	}}
}

// ByName returns a fresh stateless policy by its Table 3 abbreviation.
func ByName(name string) (Policy, error) {
	switch name {
	case "FCFS":
		return FCFS(), nil
	case "LCFS":
		return LCFS(), nil
	case "SJF":
		return SJF(), nil
	case "SQF":
		return SQF(), nil
	case "SAF":
		return SAF(), nil
	case "SRF":
		return SRF(), nil
	case "F1":
		return F1(), nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q", name)
}

// PaperPolicies lists the Table 3 policies in paper order.
func PaperPolicies() []string { return []string{"FCFS", "LCFS", "SJF", "SAF", "SRF", "F1"} }
