package sched

import (
	"math"
	"testing"

	"schedinspector/internal/workload"
)

func job(id int, submit, est float64, procs int) workload.Job {
	return workload.Job{ID: id, Submit: submit, Est: est, Run: est, Procs: procs}
}

// lowestOf returns the job the policy would schedule first.
func lowestOf(p Policy, now float64, jobs ...workload.Job) int {
	best := 0
	bestScore := p.Score(&jobs[0], now)
	for i := 1; i < len(jobs); i++ {
		if sc := p.Score(&jobs[i], now); sc < bestScore {
			best, bestScore = i, sc
		}
	}
	return jobs[best].ID
}

func TestPolicyOrdering(t *testing.T) {
	early := job(1, 0, 500, 8)  // earliest, long, wide
	late := job(2, 100, 50, 16) // latest, short, widest
	mid := job(3, 50, 200, 1)   // middle, medium, narrow

	cases := []struct {
		policy Policy
		want   int
	}{
		{FCFS(), 1}, // earliest submit
		{LCFS(), 2}, // latest submit
		{SJF(), 2},  // est 50
		{SQF(), 3},  // 1 proc
		{SAF(), 3},  // 200*1=200 < 50*16=800 < 500*8=4000
		{SRF(), 2},  // 50/16 ≈ 3.1 smallest
	}
	for _, c := range cases {
		if got := lowestOf(c.policy, 200, early, late, mid); got != c.want {
			t.Errorf("%s: picked job %d, want %d", c.policy.Name(), got, c.want)
		}
	}
}

func TestF1Score(t *testing.T) {
	p := F1()
	j := job(1, 1000, 3600, 10)
	want := math.Log10(3600)*10 + 870*math.Log10(1000)
	if got := p.Score(&j, 0); math.Abs(got-want) > 1e-9 {
		t.Errorf("F1 score = %v, want %v", got, want)
	}
	// F1 favors small/short jobs submitted earlier.
	small := job(2, 100, 60, 1)
	big := job(3, 100, 86400, 256)
	if lowestOf(p, 0, small, big) != 2 {
		t.Error("F1 should prefer the small short job")
	}
	// zero submit must not produce -Inf
	z := job(4, 0, 100, 1)
	if math.IsInf(p.Score(&z, 0), 0) {
		t.Error("F1 score infinite at submit=0")
	}
}

func TestByName(t *testing.T) {
	for _, name := range PaperPolicies() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("Name = %s, want %s", p.Name(), name)
		}
	}
	if p, err := ByName("SQF"); err != nil || p.Name() != "SQF" {
		t.Errorf("SQF lookup failed: %v", err)
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func slurmTrace() *workload.Trace {
	return &workload.Trace{
		Name: "t", MaxProcs: 64,
		Jobs: []workload.Job{
			{ID: 1, Submit: 0, Run: 1000, Est: 1200, Procs: 8, User: 1, Queue: 1},
			{ID: 2, Submit: 10, Run: 100, Est: 120, Procs: 2, User: 2, Queue: 2},
			{ID: 3, Submit: 20, Run: 5000, Est: 6000, Procs: 16, User: 1, Queue: 1},
		},
	}
}

func TestSlurmFactors(t *testing.T) {
	tr := slurmTrace()
	s := NewSlurm(tr)

	// Age factor: a job that waited 7 days has age factor 1, contributing
	// exactly WeightAge more than a job that just arrived.
	j := workload.Job{ID: 9, Submit: 0, Est: 120, Procs: 1, User: 2, Queue: 2}
	p0 := s.Priority(&j, 0)
	p7 := s.Priority(&j, 7*24*3600)
	if math.Abs((p7-p0)-s.WeightAge) > 1e-9 {
		t.Errorf("age contribution = %v, want %v", p7-p0, s.WeightAge)
	}
	// Age saturates at 7 days.
	p14 := s.Priority(&j, 14*24*3600)
	if math.Abs(p14-p7) > 1e-9 {
		t.Error("age factor should cap at 1")
	}

	// Fairshare: before any usage, factor is 2^0 = 1 for a user with share.
	// After the user consumes their entire share, it halves.
	heavy := workload.Job{ID: 10, Submit: 0, Est: 120, Procs: 1, User: 1, Queue: 1}
	before := s.Priority(&heavy, 0)
	// user 1's trace work: 1000*8 + 5000*16 = 88000 core-s of 88200 total
	s.usage[1] = s.userShare[1] * s.totalWork // exactly their share
	after := s.Priority(&heavy, 0)
	if math.Abs((before-after)-s.WeightFairshare*0.5) > 1e-6 {
		t.Errorf("fairshare drop = %v, want %v", before-after, s.WeightFairshare*0.5)
	}

	// Job attribute: shorter requested time gives higher priority.
	short := workload.Job{ID: 11, Submit: 0, Est: 60, Procs: 1, User: 2, Queue: 2}
	long := workload.Job{ID: 12, Submit: 0, Est: 6000, Procs: 1, User: 2, Queue: 2}
	if s.Priority(&short, 0) <= s.Priority(&long, 0) {
		t.Error("shorter request should have higher priority")
	}

	// Partition: queue 1 dominates usage, so its factor is 1 (normalized).
	q1 := workload.Job{ID: 13, Submit: 0, Est: 6000, Procs: 1, User: 3, Queue: 1}
	q2 := workload.Job{ID: 14, Submit: 0, Est: 6000, Procs: 1, User: 3, Queue: 2}
	if s.Priority(&q1, 0) <= s.Priority(&q2, 0) {
		t.Error("busier queue should carry higher partition factor")
	}
}

func TestSlurmScoreNegatesPriority(t *testing.T) {
	s := NewSlurm(slurmTrace())
	j := workload.Job{ID: 9, Submit: 0, Est: 120, Procs: 1, User: 2, Queue: 2}
	if s.Score(&j, 100) != -s.Priority(&j, 100) {
		t.Error("Score must be the negated priority")
	}
	if s.Name() != "Slurm" {
		t.Error("bad name")
	}
}

func TestSlurmObserveAndReset(t *testing.T) {
	s := NewSlurm(slurmTrace())
	j := workload.Job{ID: 9, Submit: 0, Est: 100, Procs: 4, User: 1, Queue: 1}
	base := s.Priority(&j, 0)
	s.ObserveStart(&j, 0)
	if s.usage[1] != 400 {
		t.Errorf("usage after start = %v, want 400", s.usage[1])
	}
	if s.Priority(&j, 0) >= base {
		t.Error("priority should drop after consuming usage")
	}
	s.Reset()
	if len(s.usage) != 0 {
		t.Error("Reset did not clear usage")
	}
	if got := s.Priority(&j, 0); math.Abs(got-base) > 1e-12 {
		t.Errorf("priority after Reset = %v, want %v", got, base)
	}
}

func TestSlurmUnknownUserQueue(t *testing.T) {
	s := NewSlurm(slurmTrace())
	// Users/queues absent from the trace have zero share; priority must be
	// finite and well-defined.
	j := workload.Job{ID: 9, Submit: 0, Est: 100, Procs: 1, User: 999, Queue: 999}
	p := s.Priority(&j, 50)
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Errorf("priority for unknown user = %v", p)
	}
}
