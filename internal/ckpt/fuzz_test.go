package ckpt

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzLoadCheckpoint throws arbitrary bytes at the container decoder: it
// must never panic, never return a payload that fails re-verification, and
// classify every rejection as corruption (a typed *CorruptError). Seeds
// cover the empty file, bare/typo'd magic, forged lengths and a valid
// container. Run with `go test -fuzz FuzzLoadCheckpoint ./internal/ckpt`
// (the CI fuzz-smoke job does); the seeds run in the normal test suite.
func FuzzLoadCheckpoint(f *testing.F) {
	f.Add([]byte{})
	f.Add(magic[:])
	f.Add([]byte("SCHDCKP\x02 wrong container version"))
	f.Add(bytes.Repeat([]byte{0xFF}, headerSize))
	var valid bytes.Buffer
	if err := Encode(&valid, 3, []byte("payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()-1])
	truncatedHeader := append([]byte(nil), valid.Bytes()[:headerSize-2]...)
	f.Add(truncatedHeader)

	f.Fuzz(func(t *testing.T, data []byte) {
		version, payload, err := Decode(data)
		if err != nil {
			var ce *CorruptError
			if !errors.Is(err, ErrCorrupt) || !errors.As(err, &ce) {
				t.Fatalf("rejection is not a typed corruption error: %v", err)
			}
			return
		}
		// Whatever decodes must re-encode to the same bytes and decode
		// again to the same payload.
		var buf bytes.Buffer
		if err := Encode(&buf, version, payload); err != nil {
			t.Fatalf("re-encode of accepted payload failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("accepted container is not canonical: %x vs %x", buf.Bytes(), data)
		}
		v2, p2, err := Decode(buf.Bytes())
		if err != nil || v2 != version || !bytes.Equal(p2, payload) {
			t.Fatalf("round trip diverged: v=%d err=%v", v2, err)
		}
	})
}
