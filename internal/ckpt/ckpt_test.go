package ckpt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName(3))
	payload := []byte("the trainer state would go here")
	if err := Write(path, 7, payload); err != nil {
		t.Fatal(err)
	}
	version, got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if version != 7 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: version=%d payload=%q", version, got)
	}
	// No temp files may survive a successful write.
	des, _ := os.ReadDir(dir)
	for _, de := range des {
		if strings.Contains(de.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", de.Name())
		}
	}
}

func TestEmptyPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName(0))
	if err := Write(path, 1, nil); err != nil {
		t.Fatal(err)
	}
	version, payload, err := Read(path)
	if err != nil || version != 1 || len(payload) != 0 {
		t.Fatalf("empty payload: version=%d payload=%v err=%v", version, payload, err)
	}
}

// TestTornWrites truncates a valid container at every interesting offset
// and checks the loader reports corruption — never a partial payload.
func TestTornWrites(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, FileName(1))
	payload := bytes.Repeat([]byte("state"), 100)
	if err := Write(good, 2, payload); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	offsets := []int{0, 1, 7, 8, 11, 12, 19, 20, 23, 24, len(data) / 2, len(data) - 1}
	for _, off := range offsets {
		torn := filepath.Join(dir, "torn.ckpt")
		if err := os.WriteFile(torn, data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := Read(torn)
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes loaded successfully", off, len(data))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation at %d: error %v does not match ErrCorrupt", off, err)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("truncation at %d: error %T is not a *CorruptError", off, err)
		}
	}
}

// TestBitFlips corrupts single bytes across the container and checks each
// flip is caught (magic, version is CRC-free but length/CRC/payload are
// all covered).
func TestBitFlips(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, FileName(1))
	payload := bytes.Repeat([]byte{0xAB}, 512)
	if err := Write(good, 3, payload); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 5, 13, 19, 21, headerSize, headerSize + 100, len(data) - 1} {
		flipped := append([]byte(nil), data...)
		flipped[off] ^= 0x40
		bad := filepath.Join(dir, "flipped.ckpt")
		if err := os.WriteFile(bad, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Read(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("flip at offset %d: err=%v, want ErrCorrupt", off, err)
		}
	}
	// A flip in the version field alone is not detectable (the version is
	// outside the CRC so schema evolution can read it first) — but the
	// payload must still verify.
	flipped := append([]byte(nil), data...)
	flipped[9] ^= 0x01
	bad := filepath.Join(dir, "version.ckpt")
	if err := os.WriteFile(bad, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	version, got, err := Read(bad)
	if err != nil {
		t.Fatalf("version flip: %v", err)
	}
	if version == 3 || !bytes.Equal(got, payload) {
		t.Errorf("version flip: version=%d payload intact=%v", version, bytes.Equal(got, payload))
	}
}

func TestOversizedLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Forge a huge length field.
	for i := 12; i < 20; i++ {
		data[i] = 0xFF
	}
	if _, _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("forged length: err=%v, want ErrCorrupt", err)
	}
}

// TestLatestFallsBack pins the crash-safety property resume depends on:
// when the newest checkpoint is torn, Latest skips it and returns the
// previous good one.
func TestLatestFallsBack(t *testing.T) {
	dir := t.TempDir()
	for seq, body := range map[int]string{4: "epoch4", 9: "epoch9"} {
		if err := Write(filepath.Join(dir, FileName(seq)), 1, []byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	// Newest checkpoint: torn mid-payload.
	full := &bytes.Buffer{}
	if err := Encode(full, 1, []byte("epoch12, torn")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, FileName(12)), full.Bytes()[:full.Len()-4], 0o644); err != nil {
		t.Fatal(err)
	}

	e, version, payload, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != 9 || version != 1 || string(payload) != "epoch9" {
		t.Fatalf("Latest = seq %d payload %q, want the previous good checkpoint (9)", e.Seq, payload)
	}

	// All corrupt -> ErrNoCheckpoint, with the per-file corruption joined.
	for _, de := range []int{4, 9} {
		good := filepath.Join(dir, FileName(de))
		if err := os.WriteFile(good, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, _, _, err = Latest(dir)
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("all-corrupt dir: err=%v, want ErrNoCheckpoint", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("all-corrupt dir: joined error should carry the corruption details: %v", err)
	}

	// Empty dir -> ErrNoCheckpoint too.
	if _, _, _, err := Latest(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: err=%v, want ErrNoCheckpoint", err)
	}
}

func TestListIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"model.gob", "ckpt-notanumber.ckpt", "ckpt-1.tmp123", "readme.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := Write(filepath.Join(dir, FileName(5)), 1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	entries, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Seq != 5 {
		t.Fatalf("List = %+v, want just seq 5", entries)
	}
}

func TestPrune(t *testing.T) {
	dir := t.TempDir()
	for seq := 1; seq <= 6; seq++ {
		if err := Write(filepath.Join(dir, FileName(seq)), 1, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	entries, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Seq != 5 || entries[1].Seq != 6 {
		t.Fatalf("after prune: %+v, want seqs 5 and 6", entries)
	}
	// keep <= 0 is a no-op, not a wipe.
	if err := Prune(dir, 0); err != nil {
		t.Fatal(err)
	}
	if entries, _ = List(dir); len(entries) != 2 {
		t.Fatalf("Prune(0) deleted files: %+v", entries)
	}
}

func TestWriteReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName(1))
	if err := Write(path, 1, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := Write(path, 2, []byte("new")); err != nil {
		t.Fatal(err)
	}
	version, payload, err := Read(path)
	if err != nil || version != 2 || string(payload) != "new" {
		t.Fatalf("overwrite: version=%d payload=%q err=%v", version, payload, err)
	}
}

// TestWriteSweepsStaleTemps: a crash between CreateTemp and Rename strands
// a *.tmp* file that List/Prune ignore; the next successful Write clears
// strays older than tempMaxAge while leaving fresh temps (a concurrent
// writer's in-flight file) and unrelated names alone.
func TestWriteSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, FileName(1)+".tmp123456789")
	fresh := filepath.Join(dir, FileName(2)+".tmp987654321")
	unrelated := filepath.Join(dir, "notes.tmpfile")
	for _, p := range []string{stale, fresh, unrelated} {
		if err := os.WriteFile(p, []byte("stranded"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	past := time.Now().Add(-2 * tempMaxAge)
	for _, p := range []string{stale, unrelated} {
		if err := os.Chtimes(p, past, past); err != nil {
			t.Fatal(err)
		}
	}

	if err := Write(filepath.Join(dir, FileName(3)), 1, []byte("x")); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("stale temp %s survived the sweep (stat err=%v)", stale, err)
	}
	for _, p := range []string{fresh, unrelated} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("%s should have survived the sweep: %v", p, err)
		}
	}
}

func TestIsTempName(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"ckpt-00000001.ckpt.tmp123456789", true},
		{"model.gob.tmp42", true},
		{"ckpt-00000001.ckpt", false},
		{"notes.tmpfile", false},
		{"ckpt-00000001.ckpt.tmp", false}, // CreateTemp always appends digits
		{".tmp123", false},                // no base name
	}
	for _, tc := range cases {
		if got := isTempName(tc.name); got != tc.want {
			t.Errorf("isTempName(%q) = %v, want %v", tc.name, got, tc.want)
		}
	}
}
