package ckpt

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("first"), {}, []byte("third frame with more bytes")}
	for i, p := range payloads {
		if err := WriteFrame(&buf, uint32(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		version, got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if version != uint32(i+1) || !bytes.Equal(got, p) {
			t.Fatalf("frame %d: version=%d payload=%q, want version=%d payload=%q",
				i, version, got, i+1, p)
		}
	}
	// A cleanly exhausted stream reports io.EOF, not corruption.
	if _, _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("end of stream: err=%v, want io.EOF", err)
	}
}

func TestFrameCorruption(t *testing.T) {
	frame := func() []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, 1, []byte("payload bytes")); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"truncated header", func(b []byte) []byte { return b[:headerSize-3] }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-2] }},
		{"flipped payload bit", func(b []byte) []byte { b[headerSize+4] ^= 0x01; return b }},
		{"flipped CRC", func(b []byte) []byte { b[20] ^= 0x10; return b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadFrame(bytes.NewReader(tc.mut(frame())), 0)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err=%v, want ErrCorrupt", err)
			}
		})
	}
}

func TestFrameLengthBound(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 1, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	// A tight bound rejects the frame before allocating its payload.
	if _, _, err := ReadFrame(bytes.NewReader(buf.Bytes()), 16); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err=%v, want ErrCorrupt for oversized frame", err)
	}
	// The exact size passes.
	if _, _, err := ReadFrame(bytes.NewReader(buf.Bytes()), 64); err != nil {
		t.Fatal(err)
	}
}
