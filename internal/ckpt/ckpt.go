// Package ckpt implements the durable on-disk checkpoint container the
// trainer and the serving daemon rely on. It is deliberately dumb about
// contents — the payload is an opaque byte slice produced by the caller's
// canonical codec (the trainer's deterministic binary encoding; see
// internal/core) — and strict about durability:
//
//   - Writes are atomic. The container is written to a temporary file in
//     the destination directory, fsynced, renamed over the final path, and
//     the directory is fsynced. A crash at any point leaves either the old
//     file or the new one, never a hybrid.
//   - Reads are all-or-nothing. The container carries a magic string, a
//     format version, the payload length, and a CRC-32C of the payload; a
//     torn, truncated or bit-flipped file fails with a *CorruptError
//     (errors.Is ErrCorrupt) instead of yielding a partial payload.
//
// Layout (all integers big-endian):
//
//	offset  size  field
//	0       8     magic "SCHDCKP\x01"
//	8       4     payload version (caller-defined schema number)
//	12      8     payload length N
//	20      4     CRC-32C (Castagnoli) of the payload bytes
//	24      N     payload
//
// Checkpoint files in a directory are named ckpt-<seq>.ckpt with a
// zero-padded decimal sequence number (the trainer uses the epoch), so
// lexical order is chronological order. Latest scans newest-first and
// skips corrupt files, which is what makes a torn final checkpoint fall
// back to the previous good one on resume.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// IsContainer reports whether data begins with the checkpoint container
// magic, letting callers sniff a file's format before committing to a
// decoder. It says nothing about the rest of the file being intact.
func IsContainer(data []byte) bool {
	return len(data) >= len(magic) && [8]byte(data[:8]) == magic
}

// magic identifies a checkpoint container. The trailing byte doubles as a
// container-layout version, separate from the caller's payload version.
var magic = [8]byte{'S', 'C', 'H', 'D', 'C', 'K', 'P', 1}

// headerSize is the fixed prefix before the payload.
const headerSize = 8 + 4 + 8 + 4

// MaxPayload caps how large a payload Read will believe. It exists so a
// corrupt length field cannot demand an absurd allocation; 1 GiB is orders
// of magnitude above any real trainer state.
const MaxPayload = 1 << 30

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is the sentinel every corruption failure matches via
// errors.Is, whatever the specific reason (bad magic, short file, CRC
// mismatch, ...).
var ErrCorrupt = errors.New("corrupt checkpoint")

// CorruptError reports a checkpoint that failed validation. It matches
// ErrCorrupt with errors.Is.
type CorruptError struct {
	Path   string // file path, "" for in-memory decodes
	Reason string
}

func (e *CorruptError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("ckpt: corrupt checkpoint: %s", e.Reason)
	}
	return fmt.Sprintf("ckpt: corrupt checkpoint %s: %s", e.Path, e.Reason)
}

// Is reports whether target is ErrCorrupt.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

func corrupt(path, format string, args ...any) error {
	return &CorruptError{Path: path, Reason: fmt.Sprintf(format, args...)}
}

// Encode writes one container (header + payload) to w.
func Encode(w io.Writer, version uint32, payload []byte) error {
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	binary.BigEndian.PutUint32(hdr[8:12], version)
	binary.BigEndian.PutUint64(hdr[12:20], uint64(len(payload)))
	binary.BigEndian.PutUint32(hdr[20:24], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

// Decode validates data as one container and returns its payload version
// and payload. The returned payload aliases data. Every validation failure
// is a *CorruptError.
func Decode(data []byte) (version uint32, payload []byte, err error) {
	return decode(data, "")
}

func decode(data []byte, path string) (uint32, []byte, error) {
	if len(data) < headerSize {
		return 0, nil, corrupt(path, "%d bytes, need at least the %d-byte header", len(data), headerSize)
	}
	if [8]byte(data[:8]) != magic {
		return 0, nil, corrupt(path, "bad magic %q", data[:8])
	}
	version := binary.BigEndian.Uint32(data[8:12])
	n := binary.BigEndian.Uint64(data[12:20])
	if n > MaxPayload {
		return 0, nil, corrupt(path, "payload length %d exceeds limit %d", n, MaxPayload)
	}
	if uint64(len(data)-headerSize) != n {
		return 0, nil, corrupt(path, "payload length %d, header promises %d (truncated or padded)",
			len(data)-headerSize, n)
	}
	payload := data[headerSize:]
	if sum := crc32.Checksum(payload, castagnoli); sum != binary.BigEndian.Uint32(data[20:24]) {
		return 0, nil, corrupt(path, "CRC mismatch (stored %08x, computed %08x)",
			binary.BigEndian.Uint32(data[20:24]), sum)
	}
	return version, payload, nil
}

// WriteFrame writes one container as a stream frame to w. The container
// layout doubles as a self-delimiting wire format — the header carries the
// payload length, so frames can be concatenated on a socket and read back
// with ReadFrame. internal/dist frames every peer message this way, which
// gives the wire the same magic + CRC-32C corruption detection as the
// on-disk checkpoints.
func WriteFrame(w io.Writer, version uint32, payload []byte) error {
	return Encode(w, version, payload)
}

// ReadFrame reads exactly one container frame from r and returns its
// payload version and payload. maxPayload bounds the allocation a frame
// header can demand (<= 0 means MaxPayload); a longer length field, bad
// magic or CRC mismatch yields a *CorruptError, while plain I/O failures
// (including a cleanly closed stream before any header byte, io.EOF) pass
// through. A stream truncated mid-frame surfaces as corruption, not EOF.
func ReadFrame(r io.Reader, maxPayload int) (version uint32, payload []byte, err error) {
	limit := uint64(MaxPayload)
	if maxPayload > 0 {
		limit = uint64(maxPayload)
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF // clean end of stream between frames
		}
		return 0, nil, fmt.Errorf("ckpt: read frame header: %w", err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, corrupt("", "frame truncated in %d-byte header: %v", headerSize, err)
	}
	if [8]byte(hdr[:8]) != magic {
		return 0, nil, corrupt("", "bad frame magic %q", hdr[:8])
	}
	version = binary.BigEndian.Uint32(hdr[8:12])
	n := binary.BigEndian.Uint64(hdr[12:20])
	if n > limit {
		return 0, nil, corrupt("", "frame payload length %d exceeds limit %d", n, limit)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, corrupt("", "frame truncated in %d-byte payload: %v", n, err)
	}
	if sum := crc32.Checksum(payload, castagnoli); sum != binary.BigEndian.Uint32(hdr[20:24]) {
		return 0, nil, corrupt("", "frame CRC mismatch (stored %08x, computed %08x)",
			binary.BigEndian.Uint32(hdr[20:24]), sum)
	}
	return version, payload, nil
}

// Write atomically replaces path with a container holding payload: the
// bytes land in a temporary file in the same directory, are fsynced,
// renamed over path, and the directory entry is fsynced. Concurrent
// writers to the same path are safe (last rename wins, each file whole).
func Write(path string, version uint32, payload []byte) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = Encode(tmp, version, payload); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("ckpt: fsync %s: %w", tmp.Name(), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close %s: %w", tmp.Name(), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	// Persist the rename itself. Directory fsync is advisory on some
	// platforms (and unsupported on others); failure to open the directory
	// is not a durability hole we can fix, so only real sync errors count.
	if d, derr := os.Open(dir); derr == nil {
		err = d.Sync()
		d.Close()
		if err != nil && !errors.Is(err, errors.ErrUnsupported) {
			return fmt.Errorf("ckpt: fsync dir %s: %w", dir, err)
		}
		err = nil
	}
	// A crash between CreateTemp and Rename strands a *.tmp* file nobody
	// will ever rename; List ignores them, so without a sweep they pile up
	// forever. Each successful save clears old strays. Best-effort — a
	// failed sweep never fails the save that just landed.
	sweepTemps(dir)
	return nil
}

// tempMaxAge is how old a *.tmp* file must be before sweepTemps considers
// it abandoned. Generous on purpose: a concurrent writer's in-flight temp
// file is seconds old, a crash leftover is from a previous run.
const tempMaxAge = time.Hour

// sweepTemps removes abandoned checkpoint temp files from dir: files whose
// name matches os.CreateTemp's <base>.tmp<digits> pattern and whose mtime
// is older than tempMaxAge. The age threshold is what makes it safe against
// concurrent Writes to the same directory.
func sweepTemps(dir string) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, de := range des {
		if de.IsDir() || !isTempName(de.Name()) {
			continue
		}
		info, err := de.Info()
		if err != nil || time.Since(info.ModTime()) < tempMaxAge {
			continue
		}
		os.Remove(filepath.Join(dir, de.Name()))
	}
}

// isTempName reports whether name looks like a Write temp file:
// "<base>.tmp" followed by os.CreateTemp's random decimal suffix.
func isTempName(name string) bool {
	i := strings.LastIndex(name, ".tmp")
	if i <= 0 {
		return false
	}
	suffix := name[i+len(".tmp"):]
	if suffix == "" {
		return false
	}
	for _, r := range suffix {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// Read loads and validates the container at path. Corruption (including
// truncation) yields a *CorruptError; I/O failures pass through.
func Read(path string) (version uint32, payload []byte, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, fmt.Errorf("ckpt: %w", err)
	}
	return decode(data, path)
}

// FileName returns the canonical checkpoint file name for a sequence
// number (the trainer passes the epoch): ckpt-00000042.ckpt.
func FileName(seq int) string {
	return fmt.Sprintf("ckpt-%08d.ckpt", seq)
}

// Entry is one checkpoint file found in a directory.
type Entry struct {
	Path string
	Seq  int
}

// List returns the checkpoint files in dir in ascending sequence order.
// Files not matching the ckpt-<seq>.ckpt pattern are ignored.
func List(dir string) ([]Entry, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var out []Entry
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		seq, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".ckpt"))
		if err != nil {
			continue
		}
		out = append(out, Entry{Path: filepath.Join(dir, name), Seq: seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// ErrNoCheckpoint reports a directory with no loadable checkpoint.
var ErrNoCheckpoint = errors.New("ckpt: no valid checkpoint found")

// Latest returns the newest checkpoint in dir that validates, scanning
// backwards past corrupt files (a torn final write must not strand the
// run). If every candidate is corrupt — or there are none — the error
// wraps ErrNoCheckpoint, with the per-file failures joined in.
func Latest(dir string) (Entry, uint32, []byte, error) {
	entries, err := List(dir)
	if err != nil {
		return Entry{}, 0, nil, err
	}
	var fails []error
	for i := len(entries) - 1; i >= 0; i-- {
		version, payload, err := Read(entries[i].Path)
		if err == nil {
			return entries[i], version, payload, nil
		}
		fails = append(fails, err)
	}
	return Entry{}, 0, nil, errors.Join(append([]error{fmt.Errorf("%w in %s", ErrNoCheckpoint, dir)}, fails...)...)
}

// Prune deletes the oldest checkpoints in dir, keeping the newest keep
// files (keep <= 0 keeps everything). Deletion failures are reported but
// do not stop the sweep.
func Prune(dir string, keep int) error {
	if keep <= 0 {
		return nil
	}
	entries, err := List(dir)
	if err != nil {
		return err
	}
	var errs []error
	for i := 0; i+keep < len(entries); i++ {
		if err := os.Remove(entries[i].Path); err != nil {
			errs = append(errs, fmt.Errorf("ckpt: prune: %w", err))
		}
	}
	return errors.Join(errs...)
}
