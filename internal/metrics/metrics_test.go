package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJobResultBasics(t *testing.T) {
	r := JobResult{Submit: 10, Start: 25, End: 125, Run: 100, Est: 150, Procs: 4}
	if got := r.Wait(); got != 15 {
		t.Errorf("Wait = %v, want 15", got)
	}
	// (15+100)/max(100,10) = 1.15
	if got := r.BoundedSlowdown(); math.Abs(got-1.15) > 1e-12 {
		t.Errorf("BoundedSlowdown = %v, want 1.15", got)
	}
}

func TestBoundedSlowdownThresholdAndFloor(t *testing.T) {
	// short job: exe=2 < 10 → denominator is 10
	r := JobResult{Submit: 0, Start: 8, End: 10, Run: 2}
	if got := r.BoundedSlowdown(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("short job bsld = %v, want floor 1.0 ((8+2)/10=1)", got)
	}
	r = JobResult{Submit: 0, Start: 18, End: 20, Run: 2}
	if got := r.BoundedSlowdown(); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("short job bsld = %v, want 2.0 ((18+2)/10)", got)
	}
	// zero-wait job: floor at 1
	r = JobResult{Submit: 0, Start: 0, End: 100, Run: 100}
	if got := r.BoundedSlowdown(); got != 1 {
		t.Errorf("no-wait bsld = %v, want 1", got)
	}
}

func TestMetricStringParse(t *testing.T) {
	for _, m := range []Metric{BSLD, Wait, MBSLD, Util} {
		got, err := ParseMetric(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %v: got %v err %v", m, got, err)
		}
	}
	if _, err := ParseMetric("nope"); err == nil {
		t.Error("unknown metric accepted")
	}
	if Metric(99).String() == "" {
		t.Error("unknown metric String empty")
	}
	if !BSLD.Minimize() || !Wait.Minimize() || !MBSLD.Minimize() || Util.Minimize() {
		t.Error("Minimize direction wrong")
	}
}

func TestComputeSummary(t *testing.T) {
	// Table 1 Case(a)-NoInspect from the paper: jobs J0,J1,J2 on 5 nodes.
	// J0: submit 0, start 0, run 4 (est 4), 3 nodes (shortest)
	// J2: submit 1, start 4+? ... use the simpler direct check instead:
	results := []JobResult{
		{ID: 1, Submit: 0, Start: 0, End: 50, Run: 50, Est: 50, Procs: 2},
		{ID: 2, Submit: 0, Start: 50, End: 150, Run: 100, Est: 100, Procs: 4},
	}
	s := Compute(results, 4)
	if s.Jobs != 2 {
		t.Fatalf("Jobs = %d", s.Jobs)
	}
	if got := s.AvgWait; got != 25 {
		t.Errorf("AvgWait = %v, want 25", got)
	}
	// bsld1 = 1, bsld2 = (50+100)/100 = 1.5 → avg 1.25, max 1.5
	if math.Abs(s.AvgBSLD-1.25) > 1e-12 || math.Abs(s.MaxBSLD-1.5) > 1e-12 {
		t.Errorf("bsld avg=%v max=%v, want 1.25/1.5", s.AvgBSLD, s.MaxBSLD)
	}
	if s.Makespan != 150 {
		t.Errorf("Makespan = %v, want 150", s.Makespan)
	}
	// work = 50*2 + 100*4 = 500; capacity = 150*4 = 600
	if math.Abs(s.Util-500.0/600.0) > 1e-12 {
		t.Errorf("Util = %v, want %v", s.Util, 500.0/600.0)
	}
	if z := Compute(nil, 4); z.Jobs != 0 || z.Util != 0 {
		t.Error("empty compute not zero")
	}
}

func TestSummaryOf(t *testing.T) {
	s := Summary{AvgBSLD: 1, AvgWait: 2, MaxBSLD: 3, Util: 0.4}
	if s.Of(BSLD) != 1 || s.Of(Wait) != 2 || s.Of(MBSLD) != 3 || s.Of(Util) != 0.4 {
		t.Error("Of dispatch wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Of(unknown) did not panic")
		}
	}()
	s.Of(Metric(42))
}

func TestImprovement(t *testing.T) {
	orig := Summary{AvgBSLD: 100, AvgWait: 200, Util: 0.5}
	insp := Summary{AvgBSLD: 50, AvgWait: 300, Util: 0.6}
	if got := Improvement(BSLD, orig, insp); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("bsld improvement = %v, want 0.5", got)
	}
	if got := Improvement(Wait, orig, insp); math.Abs(got+0.5) > 1e-12 {
		t.Errorf("wait improvement = %v, want -0.5", got)
	}
	// util is maximized: 0.5→0.6 is +20%
	if got := Improvement(Util, orig, insp); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("util improvement = %v, want 0.2", got)
	}
	// zero baselines must not divide by zero
	if got := Improvement(BSLD, Summary{}, Summary{}); got != 0 {
		t.Errorf("0/0 improvement = %v", got)
	}
	if got := Improvement(BSLD, Summary{}, Summary{AvgBSLD: 5}); got >= 0 {
		t.Errorf("worse-than-zero baseline should be negative, got %v", got)
	}
}

func TestDeltaPerWaitingJob(t *testing.T) {
	if got := DeltaPerWaitingJob(BSLD, 100, 50); got != 2 {
		t.Errorf("bsld delta = %v, want 2", got)
	}
	if got := DeltaPerWaitingJob(BSLD, 100, 2); got != 10 {
		t.Errorf("bsld delta short est = %v, want 10 (threshold)", got)
	}
	if got := DeltaPerWaitingJob(Wait, 100, 50); got != 100 {
		t.Errorf("wait delta = %v, want 100", got)
	}
	if got := DeltaPerWaitingJob(MBSLD, 50, 25); got != 2 {
		t.Errorf("mbsld delta = %v, want 2", got)
	}
}

// Property: bounded slowdown is always >= 1 and increases with waiting time.
func TestBoundedSlowdownProperties(t *testing.T) {
	f := func(wait, run uint32) bool {
		w := float64(wait % 1000000)
		r := 1 + float64(run%1000000)
		j1 := JobResult{Submit: 0, Start: w, End: w + r, Run: r}
		j2 := JobResult{Submit: 0, Start: w + 10, End: w + 10 + r, Run: r}
		return j1.BoundedSlowdown() >= 1 && j2.BoundedSlowdown() >= j1.BoundedSlowdown()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: utilization is within (0, 1] when jobs never overlap illegally
// (sequential single-proc schedule on a 1-proc cluster with no idle time).
func TestUtilProperty(t *testing.T) {
	f := func(runs []uint16) bool {
		if len(runs) == 0 {
			return true
		}
		var rs []JobResult
		now := 0.0
		for i, r := range runs {
			d := 1 + float64(r%10000)
			rs = append(rs, JobResult{ID: i, Submit: 0, Start: now, End: now + d, Run: d, Procs: 1})
			now += d
		}
		u := Compute(rs, 1).Util
		return math.Abs(u-1.0) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
