package metrics

import (
	"math"
	"testing"
)

// with builds a Summary carrying v in metric m's slot.
func with(m Metric, v float64) Summary {
	var s Summary
	switch m {
	case BSLD:
		s.AvgBSLD = v
	case Wait:
		s.AvgWait = v
	case MBSLD:
		s.MaxBSLD = v
	case Util:
		s.Util = v
	}
	return s
}

func TestImprovementEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		m          Metric
		orig, insp float64
		want       float64
	}{
		// Healthy baselines: plain percentages.
		{"minimize win", Wait, 100, 80, 0.2},
		{"minimize loss", Wait, 100, 125, -0.25},
		{"maximize win", Util, 0.5, 0.6, 0.2},
		{"maximize loss", Util, 0.5, 0.4, -0.2},

		// Exact-zero baselines: the historical sentinel behavior.
		{"zero baseline, zero result", Wait, 0, 0, 0},
		{"zero baseline, worse result", Wait, 0, 10, -1},
		{"zero util baseline, better result", Util, 0, 0.3, 1},

		// Near-zero baselines: previously divided through and exploded;
		// must now degrade to the same sentinels.
		{"tiny baseline, tiny result", Wait, 1e-12, 1e-13, 0},
		{"tiny baseline, real result", Wait, 1e-12, 50, -1},
		{"tiny negative baseline", Wait, -1e-12, 50, -1},
		{"tiny util baseline, real result", Util, 1e-15, 0.4, 1},

		// Just above the guard: the percentage path still applies.
		{"threshold baseline", Wait, 2e-9, 1e-9, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Improvement(tc.m, with(tc.m, tc.orig), with(tc.m, tc.insp))
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Improvement(%v, %v, %v) = %v, want %v", tc.m, tc.orig, tc.insp, got, tc.want)
			}
		})
	}
}

// TestImprovementBounded pins the regression: a denominator of floating-point
// dust must never blow the "percentage" past the sentinel range when the
// inspected value is ordinary.
func TestImprovementBounded(t *testing.T) {
	for _, orig := range []float64{1e-10, 1e-12, 1e-15, -1e-10} {
		got := Improvement(Wait, with(Wait, orig), with(Wait, 30))
		if math.Abs(got) > 1 {
			t.Errorf("baseline %v produced improvement %v, escaped [-1, 1]", orig, got)
		}
	}
}
