// Package metrics implements the job-execution performance metrics the
// paper optimizes and reports: average bounded slowdown (bsld), average
// waiting time (wait), maximal bounded slowdown (mbsld), and system
// utilization (util). See §2.1 and §4.4.3–4.4.4.
package metrics

import (
	"fmt"
	"math"
)

// InteractiveThreshold is the bounded-slowdown threshold in seconds: jobs
// shorter than this are treated as 10-second jobs so tiny jobs do not
// dominate the slowdown average (§2.1).
const InteractiveThreshold = 10.0

// JobResult records the outcome of one scheduled job.
type JobResult struct {
	ID     int
	Submit float64 // arrival time
	Start  float64 // execution start time
	End    float64 // completion time (Start + actual runtime)
	Run    float64 // actual runtime
	Est    float64 // estimated runtime
	Procs  int
}

// Wait returns the job's waiting time.
func (r JobResult) Wait() float64 { return r.Start - r.Submit }

// BoundedSlowdown returns max((wait+exe)/max(exe, 10), 1), using the actual
// execution time as the paper does.
func (r JobResult) BoundedSlowdown() float64 {
	s := (r.Wait() + r.Run) / math.Max(r.Run, InteractiveThreshold)
	return math.Max(s, 1)
}

// Metric identifies a job execution performance metric. The zero value is
// BSLD, the paper's default.
type Metric int

const (
	// BSLD is the average bounded job slowdown (minimize).
	BSLD Metric = iota
	// Wait is the average job waiting time in seconds (minimize).
	Wait
	// MBSLD is the maximal bounded job slowdown of the sequence (minimize).
	MBSLD
	// Util is the system utilization in [0,1] (maximize).
	Util
)

// String returns the metric's short name as used in the paper.
func (m Metric) String() string {
	switch m {
	case BSLD:
		return "bsld"
	case Wait:
		return "wait"
	case MBSLD:
		return "mbsld"
	case Util:
		return "util"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// Minimize reports whether smaller values of the metric are better.
func (m Metric) Minimize() bool { return m != Util }

// ParseMetric converts a short name ("bsld", "wait", "mbsld", "util") into a
// Metric.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "bsld":
		return BSLD, nil
	case "wait":
		return Wait, nil
	case "mbsld":
		return MBSLD, nil
	case "util":
		return Util, nil
	}
	return 0, fmt.Errorf("metrics: unknown metric %q", s)
}

// Summary aggregates every metric over one scheduled job sequence.
type Summary struct {
	Jobs     int
	AvgBSLD  float64
	AvgWait  float64
	MaxBSLD  float64
	Util     float64
	Makespan float64 // last completion - first submit
}

// Of returns the requested metric value from the summary.
func (s Summary) Of(m Metric) float64 {
	switch m {
	case BSLD:
		return s.AvgBSLD
	case Wait:
		return s.AvgWait
	case MBSLD:
		return s.MaxBSLD
	case Util:
		return s.Util
	}
	panic("metrics: unknown metric " + m.String())
}

// Compute summarizes the results of a scheduled job sequence. Utilization is
// core-seconds of actual execution divided by cluster capacity over the
// horizon from the first submission to the last completion, so idle gaps
// introduced by rejections lower it — the trade-off Table 5 studies.
func Compute(results []JobResult, maxProcs int) Summary {
	if len(results) == 0 {
		return Summary{}
	}
	var s Summary
	s.Jobs = len(results)
	first := math.Inf(1)
	last := math.Inf(-1)
	var work float64
	for _, r := range results {
		bsld := r.BoundedSlowdown()
		s.AvgBSLD += bsld
		s.AvgWait += r.Wait()
		if bsld > s.MaxBSLD {
			s.MaxBSLD = bsld
		}
		if r.Submit < first {
			first = r.Submit
		}
		if r.End > last {
			last = r.End
		}
		work += r.Run * float64(r.Procs)
	}
	n := float64(len(results))
	s.AvgBSLD /= n
	s.AvgWait /= n
	s.Makespan = last - first
	if s.Makespan > 0 && maxProcs > 0 {
		s.Util = work / (s.Makespan * float64(maxProcs))
	}
	return s
}

// tinyBaseline guards Improvement's denominator. An exactly-zero baseline
// already fell back to the ±1 sentinel, but a merely tiny one (e.g. an
// average wait of 1e-12 s from floating-point dust) would divide through
// and blow the "percentage" up to astronomic magnitudes — spiking the
// MeanPctImprovement telemetry and the percentage reward. Baselines below
// this threshold are treated as zero.
const tinyBaseline = 1e-9

// Improvement returns how much better "insp" is than "orig" on metric m, as
// the paper's percentage reward defines it: positive means the inspected run
// wins. For minimized metrics it is (orig-insp)/orig; for util, the sign
// flips. A zero or near-zero baseline (|orig| < 1e-9) cannot anchor a
// percentage, so the result degrades to a win/loss sentinel: 0 when the
// inspected value is also (near) zero, otherwise ±1 by whether it beat the
// baseline.
func Improvement(m Metric, orig, insp Summary) float64 {
	o, i := orig.Of(m), insp.Of(m)
	if math.Abs(o) < tinyBaseline {
		if math.Abs(i) < tinyBaseline {
			return 0
		}
		if m.Minimize() {
			return math.Copysign(1, -i)
		}
		return math.Copysign(1, i)
	}
	if m.Minimize() {
		return (o - i) / o
	}
	return (i - o) / o
}

// DeltaPerWaitingJob returns the expected per-job penalty of idling the
// cluster for dt seconds while a job with the given estimated runtime waits,
// under metric m (§3.3 "Queue delays"): dt/max(est,10) for slowdown metrics
// and dt itself for wait.
func DeltaPerWaitingJob(m Metric, dt, est float64) float64 {
	switch m {
	case BSLD, MBSLD:
		return dt / math.Max(est, InteractiveThreshold)
	default:
		return dt
	}
}
