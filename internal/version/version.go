// Package version carries the build identity stamped into the binaries via
// -ldflags (see the Makefile's VERSION handling) and registers it as the
// conventional build_info metric, so a /metrics scrape identifies exactly
// which build is serving.
package version

import (
	"runtime"

	"schedinspector/internal/obs"
)

// Version is the stamped build version. The Makefile overrides it with
//
//	-ldflags "-X schedinspector/internal/version.Version=$(VERSION)"
//
// (git describe output); unstamped builds report "dev".
var Version = "dev"

// String returns "version (go version)".
func String() string {
	return Version + " (" + runtime.Version() + ")"
}

// Register adds the schedinspector_build_info gauge — constant 1, with the
// build identity as labels — to reg. features names the served/trained
// feature mode; pass "" when no model is bound and the label is omitted
// from meaning (rendered empty).
func Register(reg *obs.Registry, features string) {
	reg.Gauge("schedinspector_build_info",
		"Build identity of this binary; constant 1, identity in the labels.",
		obs.Labels{
			"version":    Version,
			"go_version": runtime.Version(),
			"features":   features,
		}).Set(1)
}
