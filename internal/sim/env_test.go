package sim

import (
	"container/heap"
	"math"
	"reflect"
	"sort"
	"testing"

	"schedinspector/internal/metrics"
	"schedinspector/internal/obs"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

// ---------------------------------------------------------------------------
// Legacy reference implementation.
//
// This is the pre-refactor run-to-completion simulator, copied verbatim from
// the seed (callback-driven, container/heap, per-call allocations), kept as
// the golden reference the Env-driven paths are pinned against. Do not
// "improve" it: its entire value is being the old behavior, bit for bit.
// ---------------------------------------------------------------------------

type legacyRunHeap []runningJob

func (h legacyRunHeap) Len() int           { return len(h) }
func (h legacyRunHeap) Less(i, k int) bool { return h[i].end < h[k].end }
func (h legacyRunHeap) Swap(i, k int)      { h[i], h[k] = h[k], h[i] }
func (h *legacyRunHeap) Push(x any)        { *h = append(*h, x.(runningJob)) }
func (h *legacyRunHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

type legacySim struct {
	cfg     Config
	pending []workload.Job
	queue   []waiting
	running legacyRunHeap
	free    int
	now     float64
	out     Result
	state   State
}

func legacyRun(jobs []workload.Job, cfg Config) (Result, error) {
	if cfg.MaxInterval == 0 {
		cfg.MaxInterval = DefaultMaxInterval
	}
	if cfg.MaxRejections == 0 {
		cfg.MaxRejections = DefaultMaxRejections
	}
	if cfg.MaxRejections < 0 {
		cfg.MaxRejections = 0
	}
	if err := ValidateJobs(jobs, cfg.MaxProcs); err != nil {
		return Result{}, err
	}
	if r, ok := cfg.Policy.(sched.Resetter); ok {
		r.Reset()
	}
	s := &legacySim{cfg: cfg, pending: jobs, free: cfg.MaxProcs}
	s.run()
	return s.out, nil
}

func (s *legacySim) run() {
	s.ingestArrivals()
	s.recordUsage()
	for {
		s.ingestArrivals()
		if len(s.queue) == 0 || s.free == 0 {
			t, ok := s.nextEvent()
			if !ok {
				return
			}
			s.advanceTo(t)
			continue
		}
		idx := s.pickTop()
		if t := s.cfg.Tracer; t != nil {
			w := &s.queue[idx]
			t.Emit(obs.Event{
				Kind: obs.EventSchedPoint, Time: s.now, JobID: w.job.ID, Procs: w.job.Procs,
				Wait: s.now - w.job.Submit, FreeProcs: s.free, QueueLen: len(s.queue),
			})
		}
		if s.rejectDecision(idx) {
			s.queue[idx].rejects++
			s.out.Rejections++
			before := s.now
			t := s.now + s.cfg.MaxInterval
			if e, ok := s.nextEvent(); ok && e < t {
				t = e
			}
			s.out.IdleDelay += t - before
			s.advanceTo(t)
			continue
		}
		s.scheduleJob(idx)
	}
}

func (s *legacySim) rejectDecision(idx int) bool {
	if s.cfg.Inspector == nil {
		return false
	}
	w := &s.queue[idx]
	if w.rejects >= s.cfg.MaxRejections {
		return false
	}
	s.fillState(idx)
	s.out.Inspections++
	rejected := s.cfg.Inspector(&s.state)
	if t := s.cfg.Tracer; t != nil {
		kind := obs.EventAccept
		if rejected {
			kind = obs.EventReject
		}
		t.Emit(obs.Event{
			Kind: kind, Time: s.now, JobID: w.job.ID, Procs: w.job.Procs,
			Wait: s.now - w.job.Submit, FreeProcs: s.free, QueueLen: len(s.queue),
			Rejections: w.rejects,
		})
	}
	return rejected
}

func (s *legacySim) fillState(idx int) {
	w := &s.queue[idx]
	st := &s.state
	st.Now = s.now
	st.Job = w.job
	st.JobWait = s.now - w.job.Submit
	st.Rejections = w.rejects
	st.FreeProcs = s.free
	st.TotalProcs = s.cfg.MaxProcs
	st.Runnable = w.job.Procs <= s.free
	st.BackfillEnabled = s.cfg.Backfill
	st.BackfillCount = 0
	if s.cfg.Backfill {
		st.BackfillCount = s.countBackfillable(idx)
	}
	st.Queue = st.Queue[:0]
	for i := range s.queue {
		if i == idx {
			continue
		}
		q := &s.queue[i]
		st.Queue = append(st.Queue, QueueItem{
			Wait:  s.now - q.job.Submit,
			Est:   q.job.Est,
			Procs: q.job.Procs,
		})
	}
}

func (s *legacySim) pickTop() int {
	if sel, ok := s.cfg.Policy.(sched.Selector); ok {
		jobs := make([]workload.Job, len(s.queue))
		for i := range s.queue {
			jobs[i] = s.queue[i].job
		}
		if idx := sel.Select(jobs, s.now, s.free, s.cfg.MaxProcs); idx >= 0 && idx < len(s.queue) {
			return idx
		}
	}
	best := 0
	bestScore := s.cfg.Policy.Score(&s.queue[0].job, s.now)
	for i := 1; i < len(s.queue); i++ {
		sc := s.cfg.Policy.Score(&s.queue[i].job, s.now)
		if sc < bestScore || (sc == bestScore && s.queue[i].job.ID < s.queue[best].job.ID) {
			best, bestScore = i, sc
		}
	}
	return best
}

func (s *legacySim) scheduleJob(idx int) {
	if s.queue[idx].job.Procs <= s.free {
		s.startJob(idx)
		return
	}
	reservedID := s.queue[idx].job.ID
	for {
		i := s.indexOf(reservedID)
		if s.queue[i].job.Procs <= s.free {
			s.startJob(i)
			return
		}
		if s.cfg.Backfill {
			if s.cfg.Conservative {
				s.backfillConservative(reservedID)
			} else {
				s.backfill(reservedID)
			}
			i = s.indexOf(reservedID)
			if s.queue[i].job.Procs <= s.free {
				s.startJob(i)
				return
			}
		}
		t, ok := s.nextEvent()
		if !ok {
			panic("legacy: reserved job starved with no future events")
		}
		s.advanceTo(t)
	}
}

func (s *legacySim) indexOf(id int) int {
	for i := range s.queue {
		if s.queue[i].job.ID == id {
			return i
		}
	}
	panic("legacy: reserved job vanished from queue")
}

func (s *legacySim) startJob(idx int) {
	w := s.queue[idx]
	j := w.job
	if j.Procs > s.free {
		panic("legacy: startJob without resources")
	}
	s.free -= j.Procs
	heap.Push(&s.running, runningJob{end: s.now + j.Run, estEnd: s.now + j.Est, procs: j.Procs, id: j.ID})
	s.out.Results = append(s.out.Results, metrics.JobResult{
		ID: j.ID, Submit: j.Submit, Start: s.now, End: s.now + j.Run,
		Run: j.Run, Est: j.Est, Procs: j.Procs,
	})
	if obs, ok := s.cfg.Policy.(sched.UsageObserver); ok {
		obs.ObserveStart(&j, s.now)
	}
	s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
	if t := s.cfg.Tracer; t != nil {
		t.Emit(obs.Event{
			Kind: obs.EventJobStart, Time: s.now, JobID: j.ID, Procs: j.Procs,
			Wait: s.now - j.Submit, FreeProcs: s.free, QueueLen: len(s.queue),
		})
	}
	s.recordUsage()
}

func (s *legacySim) recordUsage() {
	if !s.cfg.TrackUsage {
		return
	}
	used := s.cfg.MaxProcs - s.free
	q := len(s.queue)
	n := len(s.out.Usage)
	if n > 0 {
		last := &s.out.Usage[n-1]
		if last.UsedProc == used && last.QueueLen == q {
			return
		}
		if last.Time == s.now {
			last.UsedProc, last.QueueLen = used, q
			return
		}
	}
	s.out.Usage = append(s.out.Usage, UsagePoint{Time: s.now, UsedProc: used, QueueLen: q})
}

func (s *legacySim) reservation(reservedProcs int) (shadow float64, extra int) {
	if reservedProcs <= s.free {
		return s.now, s.free - reservedProcs
	}
	ends := make([]runningJob, len(s.running))
	copy(ends, s.running)
	for i := range ends {
		if ends[i].estEnd < s.now {
			ends[i].estEnd = s.now
		}
	}
	sortByEstEnd(ends)
	avail := s.free
	for _, r := range ends {
		avail += r.procs
		if avail >= reservedProcs {
			return r.estEnd, avail - reservedProcs
		}
	}
	return math.Inf(1), 0
}

func (s *legacySim) backfill(reservedID int) {
	i := s.indexOf(reservedID)
	shadow, extra := s.reservation(s.queue[i].job.Procs)
	for {
		idx := s.pickBackfillable(reservedID, shadow, extra)
		if idx < 0 {
			return
		}
		procs := s.queue[idx].job.Procs
		if procs <= extra {
			extra -= procs
		}
		s.emitBackfill(idx)
		s.startJob(idx)
		s.out.Backfills++
	}
}

func (s *legacySim) emitBackfill(idx int) {
	t := s.cfg.Tracer
	if t == nil {
		return
	}
	j := &s.queue[idx].job
	t.Emit(obs.Event{
		Kind: obs.EventBackfill, Time: s.now, JobID: j.ID, Procs: j.Procs,
		Wait: s.now - j.Submit, FreeProcs: s.free, QueueLen: len(s.queue),
	})
}

func (s *legacySim) pickBackfillable(reservedID int, shadow float64, extra int) int {
	best := -1
	var bestScore float64
	for i := range s.queue {
		j := &s.queue[i].job
		if j.ID == reservedID || j.Procs > s.free {
			continue
		}
		if s.now+j.Est > shadow && j.Procs > extra {
			continue
		}
		sc := s.cfg.Policy.Score(j, s.now)
		if best < 0 || sc < bestScore || (sc == bestScore && j.ID < s.queue[best].job.ID) {
			best, bestScore = i, sc
		}
	}
	return best
}

func (s *legacySim) countBackfillable(idx int) int {
	shadow, extra := s.reservation(s.queue[idx].job.Procs)
	free := s.free
	if s.queue[idx].job.Procs <= s.free {
		free -= s.queue[idx].job.Procs
	}
	n := 0
	for i := range s.queue {
		if i == idx {
			continue
		}
		j := &s.queue[i].job
		if j.Procs > free {
			continue
		}
		if s.now+j.Est <= shadow || j.Procs <= extra {
			n++
		}
	}
	return n
}

// legacy conservative backfilling, verbatim from the seed (profile.go held
// the planner; the driver loop lived alongside backfill).
func (s *legacySim) backfillConservative(reservedID int) {
	for {
		if !s.conservativePass(reservedID) {
			return
		}
	}
}

func (s *legacySim) conservativePass(reservedID int) bool {
	p := newProfile(s.now, s.free, s.running)
	order := make([]int, 0, len(s.queue))
	ri := s.indexOf(reservedID)
	order = append(order, ri)
	type scored struct {
		idx   int
		score float64
		id    int
	}
	rest := make([]scored, 0, len(s.queue)-1)
	for i := range s.queue {
		if i == ri {
			continue
		}
		rest = append(rest, scored{i, s.cfg.Policy.Score(&s.queue[i].job, s.now), s.queue[i].job.ID})
	}
	sort.Slice(rest, func(a, b int) bool {
		if rest[a].score != rest[b].score {
			return rest[a].score < rest[b].score
		}
		return rest[a].id < rest[b].id
	})
	for _, r := range rest {
		order = append(order, r.idx)
	}
	for _, idx := range order {
		j := &s.queue[idx].job
		start := p.earliestStart(j.Procs, j.Est)
		if start <= s.now && j.Procs <= s.free && j.ID != reservedID {
			s.emitBackfill(idx)
			s.startJob(idx)
			s.out.Backfills++
			return true
		}
		p.reserve(start, j.Procs, j.Est)
	}
	return false
}

func (s *legacySim) nextEvent() (float64, bool) {
	t := math.Inf(1)
	if len(s.pending) > 0 {
		t = s.pending[0].Submit
	}
	if len(s.running) > 0 && s.running[0].end < t {
		t = s.running[0].end
	}
	if math.IsInf(t, 1) {
		return 0, false
	}
	return t, true
}

func (s *legacySim) advanceTo(t float64) {
	if t < s.now {
		panic("legacy: time going backwards")
	}
	s.now = t
	for len(s.running) > 0 && s.running[0].end <= t {
		r := heap.Pop(&s.running).(runningJob)
		s.free += r.procs
		if tr := s.cfg.Tracer; tr != nil {
			tr.Emit(obs.Event{
				Kind: obs.EventJobEnd, Time: r.end, JobID: r.id, Procs: r.procs,
				FreeProcs: s.free, QueueLen: len(s.queue),
			})
		}
	}
	s.ingestArrivals()
	s.recordUsage()
}

func (s *legacySim) ingestArrivals() {
	for len(s.pending) > 0 && s.pending[0].Submit <= s.now {
		s.queue = append(s.queue, waiting{job: s.pending[0]})
		s.pending = s.pending[1:]
	}
}

// ---------------------------------------------------------------------------
// Golden equivalence suite.
// ---------------------------------------------------------------------------

// scriptedInspector is a deterministic non-trivial decision rule that
// exercises the rejection machinery, including repeat rejections of the
// same job.
func scriptedInspector() Inspector {
	return func(s *State) bool {
		if s.Rejections >= 3 {
			return false
		}
		if !s.Runnable {
			return s.Job.ID%2 == 0
		}
		return s.Job.ID%5 == 0 && len(s.Queue) > 2
	}
}

func equivPolicies(t *testing.T, tr *workload.Trace) map[string]func() sched.Policy {
	t.Helper()
	return map[string]func() sched.Policy{
		"FCFS":  sched.FCFS,
		"SJF":   sched.SJF,
		"F1":    sched.F1,
		"Slurm": func() sched.Policy { return sched.NewSlurm(tr) },
	}
}

// TestEquivEnvVsLegacyRun pins the Env-driven simulator against the
// verbatim pre-refactor implementation across all base policies, backfill
// variants and inspection settings: identical Result structs and identical
// trace event streams.
func TestEquivEnvVsLegacyRun(t *testing.T) {
	tr := workload.SDSCSP2Like(3000, 11)
	jobs := tr.Window(40, 220)
	for name, mk := range equivPolicies(t, tr) {
		for _, bf := range []struct {
			name                   string
			backfill, conservative bool
		}{
			{"nobf", false, false},
			{"easy", true, false},
			{"conservative", true, true},
		} {
			for _, insp := range []struct {
				name string
				mk   func() Inspector
			}{
				{"noinsp", func() Inspector { return nil }},
				{"scripted", scriptedInspector},
			} {
				t.Run(name+"/"+bf.name+"/"+insp.name, func(t *testing.T) {
					mkCfg := func(tracer *obs.Tracer, ins Inspector) Config {
						return Config{
							MaxProcs: tr.MaxProcs, Policy: mk(), Backfill: bf.backfill,
							Conservative: bf.conservative, Inspector: ins,
							TrackUsage: true, Tracer: tracer,
						}
					}
					legacyTr, newTr := obs.NewTracer(1<<16), obs.NewTracer(1<<16)
					want, err := legacyRun(jobs, mkCfg(legacyTr, insp.mk()))
					if err != nil {
						t.Fatal(err)
					}
					got, err := Run(jobs, mkCfg(newTr, insp.mk()))
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Errorf("Run result diverged from legacy\nlegacy: %+v\nnew:    %+v",
							summarizeResult(want), summarizeResult(got))
					}
					if !reflect.DeepEqual(legacyTr.Events(), newTr.Events()) {
						t.Errorf("trace events diverged: legacy %d events, new %d events",
							len(legacyTr.Events()), len(newTr.Events()))
					}

					// The caller-driven Env path must match too: answer every
					// yield with the same decision rule Run used.
					ins := insp.mk()
					env := NewEnv()
					obsState, done, err := env.Reset(jobs, mkCfg(nil, nil))
					if err != nil {
						t.Fatal(err)
					}
					for !done {
						reject := ins != nil && ins(obsState)
						obsState, done = env.Step(reject)
					}
					envRes := env.Result()
					if ins == nil {
						// Env always yields; Run with a nil inspector never
						// consults. Only the inspection counters may differ.
						envRes.Inspections, envRes.Rejections = 0, 0
					}
					if !reflect.DeepEqual(want, envRes) {
						t.Errorf("Env-driven result diverged from legacy\nlegacy: %+v\nenv:    %+v",
							summarizeResult(want), summarizeResult(envRes))
					}
				})
			}
		}
	}
}

func summarizeResult(r Result) map[string]any {
	return map[string]any{
		"jobs": len(r.Results), "inspections": r.Inspections, "rejections": r.Rejections,
		"backfills": r.Backfills, "idle": r.IdleDelay, "usage": len(r.Usage),
	}
}

// TestEnvReuseAcrossEpisodes verifies a reused Env produces results
// identical to fresh ones (buffer reuse must never leak state between
// episodes).
func TestEnvReuseAcrossEpisodes(t *testing.T) {
	tr := workload.SDSCSP2Like(2000, 3)
	env := NewEnv()
	ins := scriptedInspector()
	for _, start := range []int{0, 100, 300, 100} {
		jobs := tr.Window(start, 150)
		want, err := Run(jobs, Config{MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Backfill: true, Inspector: scriptedInspector()})
		if err != nil {
			t.Fatal(err)
		}
		obsState, done, err := env.Reset(jobs, Config{MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Backfill: true})
		if err != nil {
			t.Fatal(err)
		}
		for !done {
			obsState, done = env.Step(ins(obsState))
		}
		got := env.Result()
		if !reflect.DeepEqual(want.Results, got.Results) || want.Rejections != got.Rejections {
			t.Fatalf("reused env diverged at window %d", start)
		}
	}
}

// TestEnvSnapshotRestore verifies that restoring a mid-episode snapshot and
// replaying the same decisions is bit-identical to the uninterrupted run,
// and that one snapshot supports multiple divergent branches.
func TestEnvSnapshotRestore(t *testing.T) {
	tr := workload.SDSCSP2Like(2000, 7)
	jobs := tr.Window(50, 180)
	cfg := Config{MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Backfill: true, TrackUsage: true}
	ins := scriptedInspector()

	// Straight-through reference run.
	env := NewEnv()
	obsState, done, err := env.Reset(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var decisions []bool
	for !done {
		d := ins(obsState)
		decisions = append(decisions, d)
		obsState, done = env.Step(d)
	}
	want := env.Result()
	wantCopy := Result{
		Results:     append([]metrics.JobResult(nil), want.Results...),
		Inspections: want.Inspections, Rejections: want.Rejections,
		Backfills: want.Backfills, IdleDelay: want.IdleDelay,
		Usage: append([]UsagePoint(nil), want.Usage...),
	}
	if len(decisions) < 10 {
		t.Fatalf("test needs a meaningful decision count, got %d", len(decisions))
	}

	// Re-run to the midpoint, snapshot, finish; then restore twice and check
	// both the identical replay and a divergent branch.
	mid := len(decisions) / 2
	env2 := NewEnv()
	obsState, done, err = env2.Reset(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < mid; i++ {
		obsState, done = env2.Step(decisions[i])
	}
	if done {
		t.Fatal("episode ended before midpoint")
	}
	snap := env2.Snapshot()
	for i := mid; !done; i++ {
		obsState, done = env2.Step(decisions[i])
	}
	if !reflect.DeepEqual(wantCopy, env2.Result()) {
		t.Fatal("straight-through replay diverged before any restore")
	}

	// Branch 1: restore and replay the original tail — must be identical.
	obsState, done = env2.Restore(snap)
	for i := mid; !done; i++ {
		obsState, done = env2.Step(decisions[i])
	}
	if !reflect.DeepEqual(wantCopy, env2.Result()) {
		t.Fatal("restored replay diverged from the uninterrupted run")
	}

	// Branch 2: restore and invert every remaining decision — a genuinely
	// different trajectory must still complete and start every job.
	obsState, done = env2.Restore(snap)
	inverted := 0
	rejLimited := func(s *State) bool {
		// stay under the cap so inversion cannot starve the episode
		return s.Rejections < 2 && !ins(s)
	}
	for !done {
		d := rejLimited(obsState)
		if d {
			inverted++
		}
		obsState, done = env2.Step(d)
	}
	branch := env2.Result()
	if len(branch.Results) != len(jobs) {
		t.Fatalf("divergent branch started %d of %d jobs", len(branch.Results), len(jobs))
	}
	if inverted > 0 && reflect.DeepEqual(wantCopy.Results, branch.Results) {
		t.Error("divergent branch produced identical schedule; snapshot state is suspect")
	}
}

// TestEnvStepPanicsWithoutDecision documents the Step contract.
func TestEnvStepPanicsWithoutDecision(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Step before Reset did not panic")
		}
	}()
	NewEnv().Step(false)
}

// TestNewStateDerivesRunnable covers the shared construction helper.
func TestNewStateDerivesRunnable(t *testing.T) {
	j := workload.Job{ID: 1, Est: 100, Procs: 8}
	q := []QueueItem{{Wait: 5, Est: 50, Procs: 2}}
	st := NewState(j, 30, 2, 16, 64, true, 3, q)
	if !st.Runnable || st.JobWait != 30 || st.Rejections != 2 || st.BackfillCount != 3 || len(st.Queue) != 1 {
		t.Fatalf("NewState fields wrong: %+v", st)
	}
	if st2 := NewState(j, 0, 0, 4, 64, false, 0, nil); st2.Runnable {
		t.Fatal("NewState derived Runnable=true for an oversubscribed job")
	}
}

// TestValidateJobs covers the hoisted validation helper.
func TestValidateJobs(t *testing.T) {
	good := []workload.Job{
		{ID: 1, Submit: 0, Run: 10, Est: 10, Procs: 2},
		{ID: 2, Submit: 5, Run: 10, Est: 10, Procs: 2},
	}
	if err := ValidateJobs(good, 4); err != nil {
		t.Fatal(err)
	}
	unsorted := []workload.Job{good[1], good[0]}
	if err := ValidateJobs(unsorted, 4); err == nil {
		t.Fatal("unsorted jobs passed validation")
	}
	if err := ValidateJobs(good, 1); err == nil {
		t.Fatal("oversized job passed validation")
	}
	// NoValidate must skip the check entirely (the caller vouches).
	if _, err := Run(unsorted, Config{MaxProcs: 4, Policy: sched.FCFS(), NoValidate: true}); err != nil {
		t.Fatalf("NoValidate still validated: %v", err)
	}
}

// TestEnvStepAllocs is the steady-state allocation guard: after a warm-up
// episode, a full Env episode — every scheduling point, backfill pass and
// job start — must perform zero heap allocations.
func TestEnvStepAllocs(t *testing.T) {
	tr := workload.SDSCSP2Like(3000, 13)
	jobs := tr.Window(100, 256)
	cfg := Config{MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Backfill: true, NoValidate: true}
	env := NewEnv()
	episode := func() {
		obsState, done, err := env.Reset(jobs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for !done {
			obsState, done = env.Step(obsState.Job.ID%7 == 0 && obsState.Rejections < 2)
		}
	}
	episode() // warm up buffers
	if allocs := testing.AllocsPerRun(5, episode); allocs > 0 {
		t.Fatalf("steady-state episode allocated %.1f times, want 0", allocs)
	}
}
