package sim

import (
	"math"

	"schedinspector/internal/metrics"
	"schedinspector/internal/obs"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

// envPhase is the resumable state machine position of an Env.
type envPhase uint8

const (
	envIdle  envPhase = iota // before the first Reset
	envYield                 // paused at a scheduling decision; Step expected
	envDone                  // episode complete; Result is final
)

// Env is the resumable simulator core: a step-based environment that pauses
// at every inspectable scheduling decision and hands control to the caller,
// instead of invoking a callback from inside a run-to-completion loop.
//
//	var env sim.Env
//	obs, done, err := env.Reset(jobs, cfg)
//	for !done {
//	    obs, done = env.Step(decide(obs)) // true rejects the decision
//	}
//	res := env.Result()
//
// The observation returned by Reset/Step is the same State an Inspector
// callback would receive; it is owned by the Env and valid until the next
// Step, Reset or Restore. An Env is not safe for concurrent use, but any
// number of Envs may run concurrently (each with its own Config.Policy
// instance when the policy is stateful).
//
// All internal buffers are retained across Reset, so a reused Env reaches a
// steady state where a full episode performs no heap allocations. The
// flip side: the Result returned by a previous episode aliases those
// buffers and is invalidated by the next Reset — copy it first if it must
// outlive the reuse.
type Env struct {
	cfg     Config
	jobs    []workload.Job // full episode sequence, sorted by submit (read-only)
	nextArr int            // index into jobs of the next future arrival
	queue   []waiting
	running runHeap
	free    int
	now     float64
	out     Result
	state   State // reused observation, refreshed at each yield

	interactive bool // yield at decision points (vs run straight through)
	phase       envPhase
	decision    int      // queue index awaiting a verdict while phase == envYield
	pendSpan    obs.Span // decision span opened at the yield (only with cfg.Spans/cfg.Ring)

	// Scratch buffers, retained across episodes.
	resScratch []runningJob   // reservation's clamped estimated-end copy
	jobScratch workload.Job   // escape-free pointer handoff to UsageObservers
	selScratch []workload.Job // queue view handed to sched.Selector policies
	numScratch [5]float64     // shaped-span numeric attrs on the ring-only path

	// Coarse wall clock for ring-only decision spans: refreshed every 32
	// decisions so the hot path pays ~1/32 of a time.Now per span.
	wallCoarse int64
	wallTick   uint32
}

// decisionShape is the precompiled wire image of the Env's per-decision
// span: constant name and attr keys, a 6-byte action value ("accept" and
// "reject" are deliberately the same width) and five numeric attrs. Keys
// must match the generic dual-emit path in Step exactly.
var decisionShape = obs.NewSpanShape("decision", "action", 6,
	[]string{"job", "procs", "rejections", "free", "queue"})

// NewEnv returns an empty environment; Reset starts the first episode.
func NewEnv() *Env { return &Env{} }

// Reset starts a new episode over jobs and advances to the first scheduling
// decision. It returns the first observation, or done=true when the episode
// ran to completion without ever needing a decision (no waiting jobs, or a
// negative MaxRejections cap). Config.Inspector is ignored: the caller is
// the inspector. Buffers from previous episodes are reused, invalidating
// any previously returned Result and State.
//
// It panics on invalid configuration and returns an error for invalid jobs
// (skipped when cfg.NoValidate is set).
func (e *Env) Reset(jobs []workload.Job, cfg Config) (*State, bool, error) {
	cfg.Inspector = nil
	return e.reset(jobs, cfg, true)
}

// reset is the shared initialization behind Reset (interactive) and Run
// (interactive only when a callback inspector is present).
func (e *Env) reset(jobs []workload.Job, cfg Config, interactive bool) (*State, bool, error) {
	if cfg.MaxProcs <= 0 {
		panic("sim: Config.MaxProcs must be positive")
	}
	if cfg.Policy == nil {
		panic("sim: Config.Policy is required")
	}
	if cfg.MaxInterval == 0 {
		cfg.MaxInterval = DefaultMaxInterval
	}
	if cfg.MaxRejections == 0 {
		cfg.MaxRejections = DefaultMaxRejections
	}
	if cfg.MaxRejections < 0 {
		cfg.MaxRejections = 0
	}
	if !cfg.NoValidate {
		if err := ValidateJobs(jobs, cfg.MaxProcs); err != nil {
			return nil, true, err
		}
	}
	if r, ok := cfg.Policy.(sched.Resetter); ok {
		r.Reset()
	}
	e.cfg = cfg
	e.jobs = jobs
	e.nextArr = 0
	e.queue = e.queue[:0]
	e.running = e.running[:0]
	e.free = cfg.MaxProcs
	e.now = 0
	results := e.out.Results[:0]
	if cap(results) < len(jobs) {
		results = make([]metrics.JobResult, 0, len(jobs))
	}
	e.out = Result{Results: results, Usage: e.out.Usage[:0]}
	e.interactive = interactive
	e.phase = envIdle
	e.decision = -1

	e.ingestArrivals()
	e.recordUsage() // initial sample at t=0 for the usage timeline
	if e.advance() {
		return &e.state, false, nil
	}
	return nil, true, nil
}

// Step answers the pending decision — reject=true sends the picked job back
// to the waiting queue, reject=false lets it proceed — and advances the
// simulation to the next decision point. It returns the next observation,
// or done=true when the episode completed. It panics when no decision is
// pending (before Reset, or after done).
func (e *Env) Step(reject bool) (*State, bool) {
	if e.phase != envYield {
		panic("sim: Step without a pending decision")
	}
	idx := e.decision
	w := &e.queue[idx]
	if e.cfg.Spans != nil {
		// Close the decision span opened at the yield: its wall duration is
		// the caller's decision latency (policy inference plus driver
		// overhead); its sim duration is zero — decisions are instantaneous
		// in simulation time.
		action := "accept"
		if reject {
			action = "reject"
		}
		e.pendSpan.Attrs = append(e.pendSpan.Attrs,
			obs.Attr{Key: "action", Str: action},
			obs.Attr{Key: "job", Num: float64(w.job.ID)},
			obs.Attr{Key: "procs", Num: float64(w.job.Procs)},
			obs.Attr{Key: "rejections", Num: float64(w.rejects)},
			obs.Attr{Key: "free", Num: float64(e.free)},
			obs.Attr{Key: "queue", Num: float64(len(e.queue))},
		)
		e.pendSpan.End(e.now)
		e.cfg.Ring.EmitSpan(&e.pendSpan)
		// The legacy tracer takes ownership of the (heap) Attrs slice.
		e.cfg.Spans.Emit(e.pendSpan)
		e.pendSpan = obs.Span{}
	} else if e.cfg.Ring != nil {
		// Ring-only tracing is the always-on production path: the span goes
		// out through the precompiled decision shape (one arena memcpy plus
		// scalar patches, no attr structs) with the coarse wall clock, so
		// Step stays allocation-free and syscall-free.
		action := "accept"
		if reject {
			action = "reject"
		}
		e.numScratch[0] = float64(w.job.ID)
		e.numScratch[1] = float64(w.job.Procs)
		e.numScratch[2] = float64(w.rejects)
		e.numScratch[3] = float64(e.free)
		e.numScratch[4] = float64(len(e.queue))
		e.cfg.Ring.EmitShapedSpan(decisionShape, e.pendSpan.ID, e.cfg.SpanParent,
			e.pendSpan.WallStart, e.wallCoarse, e.pendSpan.SimStart, e.now,
			action, e.numScratch[:])
	}
	if t := e.cfg.Tracer; t != nil {
		kind := obs.EventAccept
		if reject {
			kind = obs.EventReject
		}
		t.Emit(obs.Event{
			Kind: kind, Time: e.now, JobID: w.job.ID, Procs: w.job.Procs,
			Wait: e.now - w.job.Submit, FreeProcs: e.free, QueueLen: len(e.queue),
			Rejections: w.rejects,
		})
	}
	if reject {
		w.rejects++
		e.out.Rejections++
		before := e.now
		t := e.now + e.cfg.MaxInterval
		if ev, ok := e.nextEvent(); ok && ev < t {
			t = ev
		}
		e.out.IdleDelay += t - before
		e.advanceTo(t)
	} else {
		e.scheduleJob(idx)
	}
	if e.advance() {
		return &e.state, false
	}
	return nil, true
}

// Result returns the episode outcome accumulated so far; it is final once
// Step (or Reset) reported done. The slices alias Env-owned buffers and are
// invalidated by the next Reset.
func (e *Env) Result() Result { return e.out }

// Done reports whether the current episode has run to completion.
func (e *Env) Done() bool { return e.phase == envDone }

// Now returns the current simulation time — the clock value callers stamp
// into spans that bracket env activity (episode and epoch spans).
func (e *Env) Now() float64 { return e.now }

// advance runs the simulation forward until the next inspectable scheduling
// decision (returning true, with e.state filled and e.decision set) or the
// end of the episode (returning false). Non-interactive episodes never
// yield; decisions whose job already hit the rejection cap proceed without
// consultation, exactly as the MAX_REJECTION_TIMES rule of §3.2 prescribes.
func (e *Env) advance() bool {
	for {
		e.ingestArrivals()
		// A scheduling decision requires waiting jobs and at least one free
		// processor; a saturated cluster makes no picks (this matches the
		// paper's Figure 1 example, where J1 is not considered while the
		// cluster is full and loses to the later-arriving J2).
		if len(e.queue) == 0 || e.free == 0 {
			t, ok := e.nextEvent()
			if !ok {
				e.phase = envDone
				return false // all jobs started; running ones have recorded results
			}
			e.advanceTo(t)
			continue
		}
		idx := e.pickTop()
		if t := e.cfg.Tracer; t != nil {
			w := &e.queue[idx]
			t.Emit(obs.Event{
				Kind: obs.EventSchedPoint, Time: e.now, JobID: w.job.ID, Procs: w.job.Procs,
				Wait: e.now - w.job.Submit, FreeProcs: e.free, QueueLen: len(e.queue),
			})
		}
		if e.interactive && e.queue[idx].rejects < e.cfg.MaxRejections {
			e.fillState(idx)
			if e.cfg.Spans != nil {
				// Decision index (Inspections so far) keys the span ID, so
				// identity is a pure function of (episode span, decision seq)
				// — identical at any worker count.
				id := obs.DeriveSpanID(uint64(e.cfg.SpanParent), uint64(e.out.Inspections))
				e.pendSpan = obs.StartSpan("decision", id, e.cfg.SpanParent, e.now)
			} else if e.cfg.Ring != nil {
				// Ring-only: same identity, but the wall clock is sampled
				// coarsely — one time.Now per 32 decisions — because a
				// sub-microsecond hot path cannot afford a syscall per span.
				// Decision-span wall times are correlation timestamps (drift
				// bounded by 32 decision latencies), not durations.
				if e.wallTick&31 == 0 {
					e.wallCoarse = obs.WallNow()
				}
				e.wallTick++
				e.pendSpan.ID = obs.DeriveSpanID(uint64(e.cfg.SpanParent), uint64(e.out.Inspections))
				e.pendSpan.WallStart = e.wallCoarse
				e.pendSpan.SimStart = e.now
			}
			e.out.Inspections++
			e.decision = idx
			e.phase = envYield
			return true
		}
		e.scheduleJob(idx)
	}
}

// fillState refreshes the reusable observation for queue[idx].
func (e *Env) fillState(idx int) {
	w := &e.queue[idx]
	st := &e.state
	st.Now = e.now
	st.Job = w.job
	st.JobWait = e.now - w.job.Submit
	st.Rejections = w.rejects
	st.FreeProcs = e.free
	st.TotalProcs = e.cfg.MaxProcs
	st.Runnable = w.job.Procs <= e.free
	st.BackfillEnabled = e.cfg.Backfill
	st.BackfillCount = 0
	if e.cfg.Backfill {
		st.BackfillCount = e.countBackfillable(idx)
	}
	st.Queue = st.Queue[:0]
	for i := range e.queue {
		if i == idx {
			continue
		}
		q := &e.queue[i]
		st.Queue = append(st.Queue, QueueItem{
			Wait:  e.now - q.job.Submit,
			Est:   q.job.Est,
			Procs: q.job.Procs,
		})
	}
}

// pickTop returns the index of the queue job the base policy schedules
// next. Policies implementing sched.Selector choose directly from the
// queue; otherwise the pick is lowest score, ties broken by smaller job ID.
func (e *Env) pickTop() int {
	if sel, ok := e.cfg.Policy.(sched.Selector); ok {
		jobs := e.selScratch[:0]
		for i := range e.queue {
			jobs = append(jobs, e.queue[i].job)
		}
		e.selScratch = jobs
		if idx := sel.Select(jobs, e.now, e.free, e.cfg.MaxProcs); idx >= 0 && idx < len(e.queue) {
			return idx
		}
	}
	best := 0
	bestScore := e.cfg.Policy.Score(&e.queue[0].job, e.now)
	for i := 1; i < len(e.queue); i++ {
		sc := e.cfg.Policy.Score(&e.queue[i].job, e.now)
		if sc < bestScore || (sc == bestScore && e.queue[i].job.ID < e.queue[best].job.ID) {
			best, bestScore = i, sc
		}
	}
	return best
}

// scheduleJob commits to starting queue[idx]: immediately if resources
// allow, otherwise it reserves the job and waits for completions, running
// EASY backfilling meanwhile.
func (e *Env) scheduleJob(idx int) {
	if e.queue[idx].job.Procs <= e.free {
		e.startJob(idx)
		return
	}
	// The job cannot run yet. It holds a reservation; other queue jobs may
	// backfill around it until enough resources free up.
	reservedID := e.queue[idx].job.ID
	for {
		i := e.indexOf(reservedID)
		if e.queue[i].job.Procs <= e.free {
			e.startJob(i)
			return
		}
		if e.cfg.Backfill {
			if e.cfg.Conservative {
				e.backfillConservative(reservedID)
			} else {
				e.backfill(reservedID)
			}
			i = e.indexOf(reservedID)
			if e.queue[i].job.Procs <= e.free {
				e.startJob(i)
				return
			}
		}
		t, ok := e.nextEvent()
		if !ok {
			// Cannot happen with valid jobs: free < procs <= MaxProcs implies
			// something is running, so a completion event exists.
			panic("sim: reserved job starved with no future events")
		}
		e.advanceTo(t)
	}
}

// indexOf finds a queued job by ID. The queue is small; linear scan is fine.
func (e *Env) indexOf(id int) int {
	for i := range e.queue {
		if e.queue[i].job.ID == id {
			return i
		}
	}
	panic("sim: reserved job vanished from queue")
}

// startJob starts queue[idx] at the current time and removes it from the
// queue.
func (e *Env) startJob(idx int) {
	w := e.queue[idx]
	j := w.job
	if j.Procs > e.free {
		panic("sim: startJob without resources")
	}
	e.free -= j.Procs
	e.running.push(runningJob{end: e.now + j.Run, estEnd: e.now + j.Est, procs: j.Procs, id: j.ID})
	e.out.Results = append(e.out.Results, metrics.JobResult{
		ID: j.ID, Submit: j.Submit, Start: e.now, End: e.now + j.Run,
		Run: j.Run, Est: j.Est, Procs: j.Procs,
	})
	if ob, ok := e.cfg.Policy.(sched.UsageObserver); ok {
		// Hand the observer a pointer to an env-owned scratch copy: a local
		// escaping through the interface call would cost one heap allocation
		// per started job. Observers must not retain the pointer.
		e.jobScratch = j
		ob.ObserveStart(&e.jobScratch, e.now)
	}
	e.queue = append(e.queue[:idx], e.queue[idx+1:]...)
	if t := e.cfg.Tracer; t != nil {
		t.Emit(obs.Event{
			Kind: obs.EventJobStart, Time: e.now, JobID: j.ID, Procs: j.Procs,
			Wait: e.now - j.Submit, FreeProcs: e.free, QueueLen: len(e.queue),
		})
	}
	e.recordUsage()
}

// reservation computes the EASY shadow time and extra processors for the
// reserved job: the earliest time (by estimates) it could start, and how
// many processors would remain free at that time after it starts. The
// clamped copy of the running set lives in a reusable scratch buffer —
// reservation runs at every backfill pass and every BackfillCount feature,
// so a per-call allocation here is what used to dominate the decision hot
// path.
func (e *Env) reservation(reservedProcs int) (shadow float64, extra int) {
	if reservedProcs <= e.free {
		return e.now, e.free - reservedProcs
	}
	ends := append(e.resScratch[:0], e.running...)
	e.resScratch = ends
	// sort by estimated end; a running job that exceeded its estimate frees
	// its processors "now" for planning purposes (it may end any moment).
	for i := range ends {
		if ends[i].estEnd < e.now {
			ends[i].estEnd = e.now
		}
	}
	sortByEstEnd(ends)
	avail := e.free
	for _, r := range ends {
		avail += r.procs
		if avail >= reservedProcs {
			return r.estEnd, avail - reservedProcs
		}
	}
	// All estimates insufficient (cannot happen when procs <= MaxProcs).
	return math.Inf(1), 0
}

func sortByEstEnd(rs []runningJob) {
	// insertion sort: running sets are small and mostly ordered
	for i := 1; i < len(rs); i++ {
		for k := i; k > 0 && rs[k].estEnd < rs[k-1].estEnd; k-- {
			rs[k], rs[k-1] = rs[k-1], rs[k]
		}
	}
}

// backfill starts every waiting job (in base-policy order) that fits in the
// currently free processors and does not delay the reserved job's shadow
// start: it must either finish (by estimate) before the shadow time or use
// only the extra processors.
func (e *Env) backfill(reservedID int) {
	i := e.indexOf(reservedID)
	shadow, extra := e.reservation(e.queue[i].job.Procs)
	for {
		idx := e.pickBackfillable(reservedID, shadow, extra)
		if idx < 0 {
			return
		}
		procs := e.queue[idx].job.Procs
		if procs <= extra {
			extra -= procs
		}
		e.emitBackfill(idx)
		e.startJob(idx)
		e.out.Backfills++
	}
}

// emitBackfill traces that queue[idx] is about to start via backfilling
// (followed by its job_start event).
func (e *Env) emitBackfill(idx int) {
	t := e.cfg.Tracer
	if t == nil {
		return
	}
	j := &e.queue[idx].job
	t.Emit(obs.Event{
		Kind: obs.EventBackfill, Time: e.now, JobID: j.ID, Procs: j.Procs,
		Wait: e.now - j.Submit, FreeProcs: e.free, QueueLen: len(e.queue),
	})
}

// pickBackfillable returns the best-priority queue index eligible for
// backfilling, or -1.
func (e *Env) pickBackfillable(reservedID int, shadow float64, extra int) int {
	best := -1
	var bestScore float64
	for i := range e.queue {
		j := &e.queue[i].job
		if j.ID == reservedID || j.Procs > e.free {
			continue
		}
		if e.now+j.Est > shadow && j.Procs > extra {
			continue
		}
		sc := e.cfg.Policy.Score(j, e.now)
		if best < 0 || sc < bestScore || (sc == bestScore && j.ID < e.queue[best].job.ID) {
			best, bestScore = i, sc
		}
	}
	return best
}

// countBackfillable counts waiting jobs (excluding queue[idx]) that could
// backfill if queue[idx]'s decision proceeded — the "Backfilling
// Contributions" feature of §3.3. It is a static count against the current
// shadow window; no jobs are started.
func (e *Env) countBackfillable(idx int) int {
	shadow, extra := e.reservation(e.queue[idx].job.Procs)
	free := e.free
	if e.queue[idx].job.Procs <= e.free {
		free -= e.queue[idx].job.Procs // the job starts; others see the rest
	}
	n := 0
	for i := range e.queue {
		if i == idx {
			continue
		}
		j := &e.queue[i].job
		if j.Procs > free {
			continue
		}
		if e.now+j.Est <= shadow || j.Procs <= extra {
			n++
		}
	}
	return n
}

// nextEvent returns the earliest future event time (arrival or completion).
func (e *Env) nextEvent() (float64, bool) {
	t := math.Inf(1)
	if e.nextArr < len(e.jobs) {
		t = e.jobs[e.nextArr].Submit
	}
	if len(e.running) > 0 && e.running[0].end < t {
		t = e.running[0].end
	}
	if math.IsInf(t, 1) {
		return 0, false
	}
	return t, true
}

// advanceTo moves the clock to t, completing jobs and ingesting arrivals on
// the way.
func (e *Env) advanceTo(t float64) {
	if t < e.now {
		panic("sim: time going backwards")
	}
	e.now = t
	for len(e.running) > 0 && e.running[0].end <= t {
		r := e.running.pop()
		e.free += r.procs
		if tr := e.cfg.Tracer; tr != nil {
			tr.Emit(obs.Event{
				Kind: obs.EventJobEnd, Time: r.end, JobID: r.id, Procs: r.procs,
				FreeProcs: e.free, QueueLen: len(e.queue),
			})
		}
	}
	e.ingestArrivals()
	e.recordUsage()
}

// ingestArrivals moves pending jobs submitted at or before now into the
// waiting queue.
func (e *Env) ingestArrivals() {
	for e.nextArr < len(e.jobs) && e.jobs[e.nextArr].Submit <= e.now {
		e.queue = append(e.queue, waiting{job: e.jobs[e.nextArr]})
		e.nextArr++
	}
}

// runHeap is a binary min-heap on actual completion time. Push and pop are
// hand-rolled with the exact sift order of container/heap — the array
// layout must match the legacy implementation bit-for-bit because
// reservation stable-sorts a copy of it, where tie order matters — but on
// the concrete element type, so pushing a runningJob does not box it into
// an interface. That boxing was one heap allocation per started job, which
// the steady-state zero-allocation contract of Env cannot afford.
type runHeap []runningJob

func (h *runHeap) push(r runningJob) {
	*h = append(*h, r)
	s := *h
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(s[j].end < s[i].end) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func (h *runHeap) pop() runningJob {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s[j2].end < s[j].end {
			j = j2
		}
		if !(s[j].end < s[i].end) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	v := s[n]
	*h = s[:n]
	return v
}
