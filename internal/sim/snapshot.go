package sim

import (
	"schedinspector/internal/metrics"
	"schedinspector/internal/workload"
)

// Snapshot is a deep copy of an Env's mutable simulation state, taken at a
// yield point or at episode end. Restoring it rewinds an Env to that exact
// point: the clock, the waiting queue (with per-job rejection counts), the
// running set, and every accumulated Result field, so replaying the same
// decisions from a restored snapshot is bit-identical to the original run.
//
// What a snapshot does NOT capture is external state: the Config.Policy
// instance (stateful policies such as Slurm fairshare keep their own
// accounting — restore across a stateful policy only at episode boundaries,
// or pair the snapshot with a policy clone) and the Config.Tracer (restored
// runs re-emit events from the restore point onward).
type Snapshot struct {
	cfg     Config
	jobs    []workload.Job // shared read-only with the source Env
	nextArr int
	queue   []waiting
	running []runningJob
	free    int
	now     float64
	out     Result

	interactive bool
	phase       envPhase
	decision    int
}

// Snapshot captures the env's current state. It panics before the first
// Reset. Taking a snapshot allocates (deep copies); it is meant for
// checkpoint/branch workloads — e.g. caching the mid-window state a
// baseline replay shares with many inspected replays — not for the
// per-decision hot path.
func (e *Env) Snapshot() *Snapshot {
	if e.phase == envIdle {
		panic("sim: Snapshot before Reset")
	}
	return &Snapshot{
		cfg:     e.cfg,
		jobs:    e.jobs,
		nextArr: e.nextArr,
		queue:   append([]waiting(nil), e.queue...),
		running: append([]runningJob(nil), e.running...),
		free:    e.free,
		now:     e.now,
		out: Result{
			Results:     append([]metrics.JobResult(nil), e.out.Results...),
			Inspections: e.out.Inspections,
			Rejections:  e.out.Rejections,
			Backfills:   e.out.Backfills,
			IdleDelay:   e.out.IdleDelay,
			Usage:       append([]UsagePoint(nil), e.out.Usage...),
		},
		interactive: e.interactive,
		phase:       e.phase,
		decision:    e.decision,
	}
}

// Restore rewinds the env to a snapshot (its own or one taken from another
// Env over the same jobs) and returns the pending observation, mirroring
// Reset: done is false with the refilled decision state when the snapshot
// was taken at a yield point, true when it was taken at episode end. The
// snapshot itself is not consumed and may be restored any number of times.
func (e *Env) Restore(s *Snapshot) (*State, bool) {
	e.cfg = s.cfg
	e.jobs = s.jobs
	e.nextArr = s.nextArr
	e.queue = append(e.queue[:0], s.queue...)
	e.running = append(e.running[:0], s.running...)
	e.free = s.free
	e.now = s.now
	e.out = Result{
		Results:     append(e.out.Results[:0], s.out.Results...),
		Inspections: s.out.Inspections,
		Rejections:  s.out.Rejections,
		Backfills:   s.out.Backfills,
		IdleDelay:   s.out.IdleDelay,
		Usage:       append(e.out.Usage[:0], s.out.Usage...),
	}
	e.interactive = s.interactive
	e.phase = s.phase
	e.decision = s.decision
	if e.phase == envYield {
		e.fillState(e.decision)
		return &e.state, false
	}
	return nil, true
}
